#!/usr/bin/env bash
# Multi-process loopback deployment gate: starts three cgq_sited
# processes on ephemeral 127.0.0.1 ports (partitioning the five TPC-H
# locations as {0,1} / {2,3} / {4}), assembles the coordinator's hosts
# file from their --port-file reports, and runs cgq_coord's 24-cell
# equivalence suite (distributed-over-TCP vs in-process row backend:
# result digests and ship accounting must agree exactly).
#
# Every sited runs with --data-dir, so deployed fragments are durable.
# After the first coordinator pass, one sited is SIGKILLed and restarted
# on the same directory, and the suite is re-run with --no-deploy: the
# restarted server must recover its fragments from disk and reproduce
# the same digests and ship accounting. That second pass is the storage
# crash-recovery gate.
#
#   ci/run_loopback.sh [BUILD_DIR] [OUT_DIR]
#
# Exit status is non-zero if either coordinator pass fails. Server logs,
# the hosts file and the coordinator's trace land in OUT_DIR (uploaded
# as CI artifacts on failure). All children are reaped on every exit
# path.

set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-loopback-artifacts}"
SITED="$BUILD_DIR/examples/cgq_sited"
COORD="$BUILD_DIR/examples/cgq_coord"
HOSTINGS=("0,1" "2,3" "4")

for bin in "$SITED" "$COORD"; do
  if [ ! -x "$bin" ]; then
    echo "run_loopback: missing binary $bin (build cgq_sited and" \
         "cgq_coord first)" >&2
    exit 2
  fi
done

mkdir -p "$OUT_DIR"
PIDS=()

cleanup() {
  local status=$?
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  for pid in "${PIDS[@]:-}"; do
    wait "$pid" 2>/dev/null || true
  done
  exit "$status"
}
trap cleanup EXIT INT TERM

# Starts server $1 (hosting HOSTINGS[$1]) on an ephemeral port with a
# persistent data directory, recording its pid in PIDS[$1]. Each bind
# reports the kernel's port choice via the port file; no port is
# hardcoded anywhere.
start_sited() {
  local i="$1"
  local port_file="$OUT_DIR/sited-$i.port"
  rm -f "$port_file"
  "$SITED" --locations="${HOSTINGS[$i]}" --port-file="$port_file" \
    --data-dir="$OUT_DIR/data-$i" \
    >> "$OUT_DIR/sited-$i.log" 2>&1 &
  PIDS[$i]=$!
}

# A non-empty port file means the server is accepting connections.
wait_for_port() {
  local i="$1"
  local port_file="$OUT_DIR/sited-$i.port"
  for _ in $(seq 1 100); do
    [ -s "$port_file" ] && return 0
    sleep 0.1
  done
  echo "run_loopback: server $i never reported a port" >&2
  cat "$OUT_DIR/sited-$i.log" >&2 || true
  return 1
}

write_hosts_file() {
  : > "$HOSTS_FILE"
  local i=0
  for locs in "${HOSTINGS[@]}"; do
    echo "127.0.0.1:$(cat "$OUT_DIR/sited-$i.port") $locs" >> "$HOSTS_FILE"
    i=$((i + 1))
  done
  echo "run_loopback: hosts file:"
  cat "$HOSTS_FILE"
}

# Fresh data directories: this run must exercise deploy-then-recover,
# not whatever a previous run left behind.
for i in 0 1 2; do
  rm -rf "$OUT_DIR/data-$i"
  rm -f "$OUT_DIR/sited-$i.log"
done

for i in 0 1 2; do
  start_sited "$i"
done
HOSTS_FILE="$OUT_DIR/hosts.txt"
for i in 0 1 2; do
  wait_for_port "$i"
done
write_hosts_file

echo "run_loopback: pass 1 (deploy + 24-cell equivalence)"
"$COORD" --hosts="$HOSTS_FILE" --trace-out="$OUT_DIR/coord-trace.json" \
  | tee "$OUT_DIR/coord.log"

# Crash-recovery gate: SIGKILL the middle server (locations {2,3}), so
# no clean shutdown path runs, then restart it on the same data
# directory. The second coordinator pass skips deployment entirely —
# every fragment the restarted server serves must come from its
# recovered on-disk store.
VICTIM=1
echo "run_loopback: SIGKILLing sited-$VICTIM (pid ${PIDS[$VICTIM]})"
kill -9 "${PIDS[$VICTIM]}" 2>/dev/null || true
wait "${PIDS[$VICTIM]}" 2>/dev/null || true

start_sited "$VICTIM"
wait_for_port "$VICTIM"
write_hosts_file

echo "run_loopback: pass 2 (restart recovery, --no-deploy)"
"$COORD" --hosts="$HOSTS_FILE" --no-deploy \
  | tee "$OUT_DIR/coord-recovery.log"
