#!/usr/bin/env bash
# Multi-process loopback deployment gate: starts three cgq_sited
# processes on ephemeral 127.0.0.1 ports (partitioning the five TPC-H
# locations as {0,1} / {2,3} / {4}), assembles the coordinator's hosts
# file from their --port-file reports, and runs cgq_coord's 24-cell
# equivalence suite (distributed-over-TCP vs in-process row backend:
# result digests and ship accounting must agree exactly).
#
#   ci/run_loopback.sh [BUILD_DIR] [OUT_DIR]
#
# Exit status is cgq_coord's. Server logs, the hosts file and the
# coordinator's trace land in OUT_DIR (uploaded as CI artifacts on
# failure). All children are reaped on every exit path.

set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-loopback-artifacts}"
SITED="$BUILD_DIR/examples/cgq_sited"
COORD="$BUILD_DIR/examples/cgq_coord"
HOSTINGS=("0,1" "2,3" "4")

for bin in "$SITED" "$COORD"; do
  if [ ! -x "$bin" ]; then
    echo "run_loopback: missing binary $bin (build cgq_sited and" \
         "cgq_coord first)" >&2
    exit 2
  fi
done

mkdir -p "$OUT_DIR"
PIDS=()

cleanup() {
  local status=$?
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  for pid in "${PIDS[@]:-}"; do
    wait "$pid" 2>/dev/null || true
  done
  exit "$status"
}
trap cleanup EXIT INT TERM

# Start the servers; each binds port 0 and reports the kernel's choice
# via its port file. No port is hardcoded anywhere.
i=0
for locs in "${HOSTINGS[@]}"; do
  port_file="$OUT_DIR/sited-$i.port"
  rm -f "$port_file"
  "$SITED" --locations="$locs" --port-file="$port_file" \
    > "$OUT_DIR/sited-$i.log" 2>&1 &
  PIDS+=($!)
  i=$((i + 1))
done

# A non-empty port file means the server is accepting connections.
HOSTS_FILE="$OUT_DIR/hosts.txt"
: > "$HOSTS_FILE"
i=0
for locs in "${HOSTINGS[@]}"; do
  port_file="$OUT_DIR/sited-$i.port"
  for _ in $(seq 1 100); do
    [ -s "$port_file" ] && break
    sleep 0.1
  done
  if [ ! -s "$port_file" ]; then
    echo "run_loopback: server $i never reported a port" >&2
    cat "$OUT_DIR/sited-$i.log" >&2 || true
    exit 1
  fi
  echo "127.0.0.1:$(cat "$port_file") $locs" >> "$HOSTS_FILE"
  i=$((i + 1))
done

echo "run_loopback: hosts file:"
cat "$HOSTS_FILE"

"$COORD" --hosts="$HOSTS_FILE" --trace-out="$OUT_DIR/coord-trace.json" \
  | tee "$OUT_DIR/coord.log"
