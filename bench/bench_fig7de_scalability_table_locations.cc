// Figure 7(d,e): scalability with the number of table locations (§7.5).
//
// Customer and Orders are horizontally fragmented over 1..5 locations
// (GAV-style: scan t => UNION ALL of fragment scans). Reported:
// optimization time of Q3 and Q10 under the CR+A curated set, split into
// plan annotator (phase 1, incl. memo exploration) and site selector
// (phase 2). Expected shape: roughly linear growth driven by the larger
// plan space of the UNION rewrites; site selection stays in the low
// milliseconds.

#include <cstdio>

#include "bench_util.h"
#include "core/optimizer.h"
#include "net/network_model.h"
#include "tpch/tpch.h"

using namespace cgq;  // NOLINT

int main() {
  const int queries[] = {3, 10};
  for (int q : queries) {
    bench::PrintHeader("Fig 7(d,e) (Q" + std::to_string(q) +
                       "): optimization time vs #table locations "
                       "(customer & orders fragmented)");
    std::printf("%-8s %-22s %-14s %-12s\n", "#locs", "total [ms]",
                "annotate [ms]", "site [ms]");
    for (size_t k = 1; k <= 5; ++k) {
      tpch::TpchConfig config;
      config.scale_factor = 10;
      auto catalog = tpch::BuildCatalog(config);
      if (!catalog.ok()) return 1;

      std::vector<TableFragment> fragments;
      for (size_t i = 0; i < k; ++i) {
        fragments.push_back(
            TableFragment{static_cast<LocationId>(i), 1.0 / k});
      }
      if (!catalog->SetFragments("customer", fragments).ok()) return 1;
      if (!catalog->SetFragments("orders", fragments).ok()) return 1;

      PolicyCatalog policies(&*catalog);
      if (!tpch::InstallPolicySet("CRA", &policies).ok()) return 1;
      // Fragments of the logical l1 database may repatriate their rows to
      // the l1 headquarters (keeps e.g. Q10's acctbal output feasible when
      // customer is fragmented).
      for (size_t i = 1; i < k; ++i) {
        std::string loc = "l" + std::to_string(i + 1);
        if (!policies.AddPolicyText(loc, "ship * from customer to l1").ok())
          return 1;
        if (!policies.AddPolicyText(loc, "ship * from orders to l1").ok())
          return 1;
      }
      NetworkModel net = NetworkModel::DefaultGeo(5);
      QueryOptimizer optimizer(&*catalog, &policies, &net, {});
      std::string sql = *tpch::Query(q);

      auto probe = optimizer.Optimize(sql);
      double annotate = 0, site = 0;
      if (probe.ok()) {
        annotate = probe->stats.explore_ms + probe->stats.annotate_ms;
        site = probe->stats.site_ms;
      } else {
        std::printf("%-8zu rejected: %s\n", k,
                    probe.status().ToString().c_str());
        continue;
      }
      bench::TimingStats t =
          bench::TimeRepeated([&] { (void)optimizer.Optimize(sql); });
      std::printf("%-8zu %10.2f +- %-8.2f %-14.2f %-12.2f\n", k, t.mean_ms,
                  t.stderr_ms, annotate, site);
    }
  }
  return 0;
}
