// bench_service: open-loop load generator for the multi-tenant
// QueryService front door.
//
// N client threads, each bound to a tenant session, submit queries drawn
// from a zipfian template mix with fresh random literals at a fixed
// offered rate (open loop: arrivals do not wait for completions). A
// waiter thread per client drains tickets in FIFO order and records
// end-to-end latency. The offered rate is swept across levels; for each
// level the bench reports achieved QPS, p50/p99/p999 latency, plan-cache
// exact/parameterized hit rates, admission rejects, and Jain's fairness
// index over per-tenant completions. The saturation point is the highest
// offered rate the service still achieves to >= 95%.
//
//   --clients=N      client threads (default 8)
//   --tenants=N      tenants, clients round-robin over them (default 4)
//   --workers=N      service worker threads (default 4)
//   --weight=N       scheduling weight of tenant 0, others 1 (default 1)
//   --max-queued=N   per-tenant queue quota, 0 = uncapped (default 0)
//   --duration-ms=N  measured window per level (default 2000)
//   --qps=A,B,...    offered-rate sweep (default 100,200,400,800,1600)
//   --tiny           CI smoke mode: 2 levels, 400 ms windows
//   --json=PATH      write one JSON object per level (+ summary) to PATH

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "service/query_service.h"
#include "tpch/tpch.h"

namespace cgq {
namespace {

using Clock = std::chrono::steady_clock;

struct ServiceBenchOptions {
  int clients = 8;
  int tenants = 4;
  int workers = 4;
  int weight = 1;
  int max_queued = 0;
  double duration_ms = 2000;
  std::vector<double> qps_levels = {100, 200, 400, 800, 1600};
  bool tiny = false;
  std::string json_path;

  static ServiceBenchOptions Parse(int argc, char** argv) {
    ServiceBenchOptions o;
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strncmp(a, "--clients=", 10) == 0) {
        o.clients = std::atoi(a + 10);
      } else if (std::strncmp(a, "--tenants=", 10) == 0) {
        o.tenants = std::atoi(a + 10);
      } else if (std::strncmp(a, "--workers=", 10) == 0) {
        o.workers = std::atoi(a + 10);
      } else if (std::strncmp(a, "--weight=", 9) == 0) {
        o.weight = std::atoi(a + 9);
      } else if (std::strncmp(a, "--max-queued=", 13) == 0) {
        o.max_queued = std::atoi(a + 13);
      } else if (std::strncmp(a, "--duration-ms=", 14) == 0) {
        o.duration_ms = std::atof(a + 14);
      } else if (std::strncmp(a, "--qps=", 6) == 0) {
        o.qps_levels.clear();
        for (const char* p = a + 6; *p != '\0';) {
          o.qps_levels.push_back(std::strtod(p, nullptr));
          while (*p != '\0' && *p != ',') ++p;
          if (*p == ',') ++p;
        }
      } else if (std::strcmp(a, "--tiny") == 0) {
        o.tiny = true;
      } else if (std::strncmp(a, "--json=", 7) == 0) {
        o.json_path = a + 7;
      } else {
        std::fprintf(stderr,
                     "unknown argument '%s' (--clients=N --tenants=N "
                     "--workers=N --weight=N --max-queued=N "
                     "--duration-ms=N --qps=A,B,... --tiny --json=PATH)\n",
                     a);
        std::exit(2);
      }
    }
    if (o.clients < 1) o.clients = 1;
    if (o.tenants < 1) o.tenants = 1;
    if (o.workers < 1) o.workers = 1;
    if (o.weight < 1) o.weight = 1;
    if (o.tiny) {
      o.duration_ms = 400;
      o.qps_levels = {200, 800};
    }
    return o;
  }
};

/// The template mix: same-shape queries with fresh literals, so steady
/// state is almost entirely parameterized cache hits. Ordered hottest
/// first; the zipfian mix sends rank r traffic proportional to 1/(r+1).
std::string InstantiateTemplate(size_t rank, std::mt19937* rng) {
  char buf[256];
  switch (rank) {
    case 0:
      std::snprintf(buf, sizeof(buf),
                    "SELECT count(*) AS n FROM nation WHERE regionkey = %d",
                    static_cast<int>((*rng)() % 5));
      break;
    case 1:
      std::snprintf(buf, sizeof(buf),
                    "SELECT name FROM customer WHERE custkey = %d",
                    static_cast<int>((*rng)() % 300));
      break;
    case 2:
      std::snprintf(
          buf, sizeof(buf),
          "SELECT count(*) AS n FROM orders WHERE totalprice > %d.25",
          static_cast<int>((*rng)() % 9000));
      break;
    default:
      std::snprintf(
          buf, sizeof(buf),
          "SELECT name FROM supplier WHERE nationkey IN (%d, %d)",
          static_cast<int>((*rng)() % 12),
          static_cast<int>(12 + (*rng)() % 13));
      break;
  }
  return buf;
}

constexpr size_t kTemplates = 4;

size_t ZipfRank(std::mt19937* rng) {
  // Normalized harmonic weights over kTemplates ranks (s = 1).
  static const std::vector<double> cdf = [] {
    std::vector<double> w;
    double sum = 0;
    for (size_t r = 0; r < kTemplates; ++r) {
      sum += 1.0 / static_cast<double>(r + 1);
      w.push_back(sum);
    }
    for (double& x : w) x /= sum;
    return w;
  }();
  std::uniform_real_distribution<double> u(0, 1);
  const double x = u(*rng);
  for (size_t r = 0; r < cdf.size(); ++r) {
    if (x <= cdf[r]) return r;
  }
  return cdf.size() - 1;
}

double Percentile(std::vector<double>* sorted_ms, double p) {
  if (sorted_ms->empty()) return 0;
  const double idx = p * static_cast<double>(sorted_ms->size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, sorted_ms->size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return (*sorted_ms)[lo] * (1 - frac) + (*sorted_ms)[hi] * frac;
}

double JainIndex(const std::vector<int64_t>& xs) {
  double sum = 0, sq = 0;
  for (int64_t x : xs) {
    sum += static_cast<double>(x);
    sq += static_cast<double>(x) * static_cast<double>(x);
  }
  if (sq == 0) return 1.0;
  return sum * sum / (static_cast<double>(xs.size()) * sq);
}

struct LevelResult {
  double offered_qps = 0;
  double achieved_qps = 0;
  double p50_ms = 0, p99_ms = 0, p999_ms = 0;
  int64_t completed = 0;
  int64_t rejected = 0;
  int64_t failed = 0;
  double hit_rate = 0;
  double param_hit_rate = 0;
  double fairness = 1.0;
};

/// FIFO hand-off between one client's submitter and its waiter.
struct TicketQueue {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::pair<QueryService::TicketId, Clock::time_point>> q;
  bool closed = false;
};

LevelResult RunLevel(QueryService* service,
                     const std::vector<std::string>& tokens,
                     const ServiceBenchOptions& opts, double qps,
                     uint64_t seed) {
  const int n = opts.clients;
  const auto window =
      std::chrono::duration<double, std::milli>(opts.duration_ms);

  const ServiceStats before = service->stats();
  const PlanCacheStats cache_before = service->plan_cache()->stats();
  std::vector<TenantServiceStats> tenants_before = service->tenant_stats();

  std::vector<std::vector<double>> latencies(static_cast<size_t>(n));
  std::vector<int64_t> rejected(static_cast<size_t>(n), 0);
  std::vector<std::thread> submitters, waiters;
  std::vector<std::unique_ptr<TicketQueue>> queues;
  std::vector<std::unique_ptr<QueryService::Session>> sessions;
  for (int c = 0; c < n; ++c) {
    queues.push_back(std::make_unique<TicketQueue>());
    auto s = service->OpenSession(
        tokens[static_cast<size_t>(c) % tokens.size()]);
    if (!s.ok()) {
      std::fprintf(stderr, "OpenSession: %s\n",
                   s.status().ToString().c_str());
      std::exit(1);
    }
    sessions.push_back(
        std::make_unique<QueryService::Session>(std::move(*s)));
  }

  const auto start = Clock::now();
  for (int c = 0; c < n; ++c) {
    submitters.emplace_back([&, c] {
      std::mt19937 rng(static_cast<uint32_t>(seed + 1000003u *
                                             static_cast<uint64_t>(c)));
      const auto interval = std::chrono::duration<double>(
          static_cast<double>(n) / qps);
      // Stagger client phases so arrivals interleave evenly.
      auto next = start + interval * (static_cast<double>(c) / n);
      const auto end = start + window;
      TicketQueue& tq = *queues[static_cast<size_t>(c)];
      while (next < end) {
        std::this_thread::sleep_until(next);
        next += std::chrono::duration_cast<Clock::duration>(interval);
        std::string sql = InstantiateTemplate(ZipfRank(&rng), &rng);
        const auto t0 = Clock::now();
        auto ticket = sessions[static_cast<size_t>(c)]->Submit(sql);
        if (!ticket.ok()) {
          ++rejected[static_cast<size_t>(c)];
          continue;
        }
        {
          std::lock_guard<std::mutex> lock(tq.mu);
          tq.q.emplace_back(*ticket, t0);
        }
        tq.cv.notify_one();
      }
      {
        std::lock_guard<std::mutex> lock(tq.mu);
        tq.closed = true;
      }
      tq.cv.notify_one();
    });
    waiters.emplace_back([&, c] {
      TicketQueue& tq = *queues[static_cast<size_t>(c)];
      for (;;) {
        std::pair<QueryService::TicketId, Clock::time_point> item;
        {
          std::unique_lock<std::mutex> lock(tq.mu);
          tq.cv.wait(lock, [&] { return !tq.q.empty() || tq.closed; });
          if (tq.q.empty()) return;
          item = tq.q.front();
          tq.q.pop_front();
        }
        auto r = sessions[static_cast<size_t>(c)]->Wait(item.first);
        if (r.ok()) {
          latencies[static_cast<size_t>(c)].push_back(
              std::chrono::duration<double, std::milli>(Clock::now() -
                                                        item.second)
                  .count());
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  for (std::thread& t : waiters) t.join();
  const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                Clock::now() - start)
                                .count();

  LevelResult out;
  out.offered_qps = qps;
  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  out.p50_ms = Percentile(&all, 0.50);
  out.p99_ms = Percentile(&all, 0.99);
  out.p999_ms = Percentile(&all, 0.999);

  const ServiceStats after = service->stats();
  const PlanCacheStats cache_after = service->plan_cache()->stats();
  out.completed = after.completed - before.completed;
  out.failed = after.failed - before.failed;
  for (int64_t r : rejected) out.rejected += r;
  // Achieved rate counts completions over the whole window including
  // drain: an overloaded service takes visibly longer than the window.
  out.achieved_qps = out.completed / (elapsed_ms / 1000.0);
  const int64_t lookups = (cache_after.hits - cache_before.hits) +
                          (cache_after.misses - cache_before.misses);
  if (lookups > 0) {
    out.hit_rate =
        static_cast<double>(cache_after.hits - cache_before.hits) / lookups;
    out.param_hit_rate =
        static_cast<double>(cache_after.param_hits -
                            cache_before.param_hits) /
        lookups;
  }
  std::vector<int64_t> per_tenant;
  std::vector<TenantServiceStats> tenants_after = service->tenant_stats();
  for (const TenantServiceStats& t : tenants_after) {
    if (t.tenant == kDefaultTenantId) continue;
    int64_t prior = 0;
    for (const TenantServiceStats& b : tenants_before) {
      if (b.tenant == t.tenant) prior = b.completed;
    }
    per_tenant.push_back(t.completed - prior);
  }
  out.fairness = JainIndex(per_tenant);
  return out;
}

}  // namespace
}  // namespace cgq

int main(int argc, char** argv) {
  using namespace cgq;  // NOLINT
  ServiceBenchOptions opts = ServiceBenchOptions::Parse(argc, argv);

  tpch::TpchConfig config;
  config.scale_factor = 0.002;
  auto catalog = tpch::BuildCatalog(config);
  if (!catalog.ok()) return 1;
  Engine engine(std::move(*catalog), NetworkModel::DefaultGeo(5));
  if (!tpch::InstallUnrestrictedPolicies(&engine.policies()).ok()) return 1;
  if (!tpch::GenerateData(engine.catalog(), config, &engine.store()).ok()) {
    return 1;
  }

  ServiceOptions sopts;
  sopts.max_inflight = opts.workers;
  sopts.queue_capacity = 512;
  sopts.queue_timeout_ms = 0;  // latency is measured, not bounded
  QueryService service(&engine, sopts);
  std::vector<std::string> tokens;
  for (int t = 0; t < opts.tenants; ++t) {
    TenantQuotas q;
    q.weight = t == 0 ? opts.weight : 1;
    q.max_queued = opts.max_queued;
    std::string name = "t" + std::to_string(t);
    std::string token = "tok-" + name;
    auto id = service.tenants().Register(name, token, q);
    if (!id.ok()) return 1;
    tokens.push_back(token);
  }

  // Warm the parameterized cache: one instance per template, so the
  // measured windows exercise the steady state (bind-on-hit path).
  {
    auto session = service.OpenSession();
    std::mt19937 rng(1);
    for (size_t r = 0; r < kTemplates; ++r) {
      auto res = session.Run(InstantiateTemplate(r, &rng));
      if (!res.ok()) {
        std::fprintf(stderr, "warmup: %s\n",
                     res.status().ToString().c_str());
        return 1;
      }
    }
  }

  bench::PrintHeader(
      "bench_service — open-loop multi-tenant service load "
      "(clients " + std::to_string(opts.clients) +
      ", tenants " + std::to_string(opts.tenants) +
      ", workers " + std::to_string(opts.workers) + ")");
  std::printf("%10s %12s %9s %9s %9s %10s %9s %9s %9s\n", "offered",
              "achieved", "p50 ms", "p99 ms", "p999 ms", "completed",
              "rejected", "hit rate", "fairness");

  bench::JsonReport report(opts.json_path);
  double saturation_qps = 0;
  std::vector<LevelResult> results;
  for (size_t i = 0; i < opts.qps_levels.size(); ++i) {
    LevelResult r = RunLevel(&service, tokens, opts, opts.qps_levels[i],
                             /*seed=*/20260809 + 7919 * i);
    results.push_back(r);
    if (r.achieved_qps >= 0.95 * r.offered_qps) {
      saturation_qps = std::max(saturation_qps, r.achieved_qps);
    }
    std::printf("%10.0f %12.1f %9.3f %9.3f %9.3f %10lld %9lld %8.1f%% "
                "%9.3f\n",
                r.offered_qps, r.achieved_qps, r.p50_ms, r.p99_ms,
                r.p999_ms, static_cast<long long>(r.completed),
                static_cast<long long>(r.rejected), 100 * r.hit_rate,
                r.fairness);
    bench::JsonRow row;
    row.Set("bench", "service")
        .Set("offered_qps", r.offered_qps)
        .Set("achieved_qps", r.achieved_qps)
        .Set("p50_ms", r.p50_ms)
        .Set("p99_ms", r.p99_ms)
        .Set("p999_ms", r.p999_ms)
        .Set("completed", r.completed)
        .Set("rejected", r.rejected)
        .Set("failed", r.failed)
        .Set("hit_rate", r.hit_rate)
        .Set("param_hit_rate", r.param_hit_rate)
        .Set("fairness", r.fairness)
        .Set("clients", opts.clients)
        .Set("tenants", opts.tenants)
        .Set("workers", opts.workers)
        .Set("duration_ms", opts.duration_ms)
        .Set("tiny", opts.tiny);
    report.Add(row);
  }

  PlanCacheStats cs = service.plan_cache()->stats();
  const int64_t lookups = cs.hits + cs.misses;
  const double overall_hit =
      lookups > 0 ? static_cast<double>(cs.hits) / lookups : 0;
  const double overall_param =
      lookups > 0 ? static_cast<double>(cs.param_hits) / lookups : 0;
  std::printf("\nsaturation: %.1f QPS; plan cache: %lld exact + %lld "
              "parameterized hits / %lld lookups (%.1f%% hit rate)\n",
              saturation_qps, static_cast<long long>(cs.exact_hits),
              static_cast<long long>(cs.param_hits),
              static_cast<long long>(lookups), 100 * overall_hit);

  bench::JsonRow summary;
  summary.Set("bench", "service_summary")
      .Set("saturation_qps", saturation_qps)
      .Set("exact_hits", cs.exact_hits)
      .Set("param_hits", cs.param_hits)
      .Set("misses", cs.misses)
      .Set("hit_rate", overall_hit)
      .Set("param_hit_rate", overall_param)
      .Set("clients", opts.clients)
      .Set("tenants", opts.tenants)
      .Set("workers", opts.workers)
      .Set("tiny", opts.tiny);
  report.Add(summary);
  if (!report.Flush()) return 1;
  return 0;
}
