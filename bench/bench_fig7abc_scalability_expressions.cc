// Figure 7(a-c): scalability with the number of policy expressions.
//
// Section 1 reproduces the paper's shape: optimization time of TPC-H Q2,
// Q3, and Q10 under generated CR+A policy sets of 12, 25, 50 and 100
// expressions. Each row also reports eta — the number of times a policy
// expression is *considered* by the optimizer (ship attributes intersect +
// implication holds; Algorithm 1 line 4) — because time scales with eta,
// not with the raw set size.
//
// Section 2 stresses far past the paper's scales and compares the
// single-threaded uncached evaluator against the parallel evaluator with
// the implication-result cache, asserting both produce identical
// compliance decisions. The selection-heavy Q6 (five range conjuncts on
// one table) is where implication testing dominates optimization.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/optimizer.h"
#include "expr/implication.h"
#include "net/network_model.h"
#include "tpch/tpch.h"
#include "workload/policy_generator.h"

using namespace cgq;  // NOLINT

namespace {

// The decision surface of one optimization, for cross-configuration
// equality checks.
struct Decision {
  LocationId result_location = 0;
  bool compliant = false;
  double phase1_cost = 0;
  double comm_cost_ms = 0;

  bool operator==(const Decision&) const = default;
};

Decision DecisionOf(const OptimizedQuery& q) {
  return Decision{q.result_location, q.compliant, q.phase1_cost,
                  q.comm_cost_ms};
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::BenchOptions::Parse(argc, argv);
  bench::JsonReport report(opts.json_path);

  tpch::TpchConfig config;
  config.scale_factor = 10;
  auto catalog = tpch::BuildCatalog(config);
  if (!catalog.ok()) return 1;
  NetworkModel net = NetworkModel::DefaultGeo(5);
  WorkloadProperties properties = TpchWorkloadProperties();

  auto install = [&](size_t n, PolicyCatalog* policies) {
    PolicyGeneratorConfig pconfig;
    pconfig.template_name = "CRA";
    pconfig.count = n;
    pconfig.seed = 99;
    PolicyExpressionGenerator pgen(&*catalog, &properties, pconfig);
    return pgen.InstallInto(policies).ok();
  };

  // --- Section 1: the paper's figure -------------------------------------
  std::vector<size_t> sizes = {12, 25, 50, 100};
  std::vector<int> queries = {2, 3, 10};
  if (opts.tiny) sizes = {12, 25};

  for (int q : queries) {
    bench::PrintHeader("Fig 7 (Q" + std::to_string(q) +
                       "): optimization time vs #policy expressions "
                       "(CR+A template)");
    std::printf("%-8s %-22s %-14s %-10s %-8s\n", "#expr",
                "Compliant QO [ms]", "policy [ms]", "eta", "groups");
    std::string sql = *tpch::Query(q);
    for (size_t n : sizes) {
      PolicyCatalog policies(&*catalog);
      if (!install(n, &policies)) return 1;

      QueryOptimizer optimizer(&*catalog, &policies, &net, {});
      // One instrumented run for eta, then timed runs.
      auto probe = optimizer.Optimize(sql);
      long eta = probe.ok() ? static_cast<long>(probe->stats.policy.eta) : -1;
      size_t groups = probe.ok() ? probe->stats.memo_groups : 0;
      double policy_ms = probe.ok() ? probe->stats.policy.eval_ms : 0;
      bench::TimingStats t = bench::TimeRepeated(
          [&] { (void)optimizer.Optimize(sql); }, opts.reps);
      std::printf("%-8zu %10.2f +- %-8.2f %-14.3f %-10ld %-8zu\n", n,
                  t.mean_ms, t.stderr_ms, policy_ms, eta, groups);
      report.Add(bench::JsonRow()
                     .Set("bench", "fig7abc")
                     .Set("section", "paper")
                     .Set("query", q)
                     .Set("num_expressions", n)
                     .Set("mean_ms", t.mean_ms)
                     .Set("stderr_ms", t.stderr_ms)
                     .Set("policy_ms", policy_ms)
                     .Set("eta", static_cast<int64_t>(eta)));
    }
  }
  std::printf("\n(time grows with eta — the expressions actually affecting "
              "the query's search space — not with the raw set size)\n");

  // --- Section 2: parallel + cached evaluator speedup --------------------
  std::vector<size_t> stress_sizes = {200, 800, 3200};
  std::vector<int> stress_queries = {2, 6};
  if (opts.tiny) {
    stress_sizes = {50, 100};
  }

  bool decisions_equal = true;
  double largest_scale_speedup = 0;
  for (int q : stress_queries) {
    bench::PrintHeader(
        "Fig 7 stress (Q" + std::to_string(q) +
        "): 1 thread / no cache  vs  " + std::to_string(opts.threads) +
        " threads / implication cache");
    std::printf("%-8s %-14s %-14s %-9s %-9s %-10s %-8s\n", "#expr",
                "base [ms]", "opt [ms]", "speedup", "hitrate", "tests",
                "same");
    std::string sql = *tpch::Query(q);
    for (size_t n : stress_sizes) {
      PolicyCatalog policies(&*catalog);
      if (!install(n, &policies)) return 1;

      OptimizerOptions base_opts;
      base_opts.threads = 1;
      base_opts.implication_cache = false;
      QueryOptimizer base(&*catalog, &policies, &net, base_opts);

      OptimizerOptions par_opts;
      par_opts.threads = opts.threads;
      par_opts.implication_cache = true;
      QueryOptimizer par(&*catalog, &policies, &net, par_opts);

      auto bres = base.Optimize(sql);
      auto pres = par.Optimize(sql);
      if (!bres.ok() || !pres.ok()) return 1;
      bool same = DecisionOf(*bres) == DecisionOf(*pres);
      // Identical decisions at every thread count, not just the headline
      // configuration.
      for (int extra_threads : {2, 8}) {
        OptimizerOptions o;
        o.threads = extra_threads;
        QueryOptimizer alt(&*catalog, &policies, &net, o);
        auto ares = alt.Optimize(sql);
        same &= ares.ok() && DecisionOf(*ares) == DecisionOf(*bres);
      }
      decisions_equal &= same;

      bench::TimingStats tb = bench::TimeRepeated(
          [&] { (void)base.Optimize(sql); }, opts.reps);
      bench::TimingStats tp = bench::TimeRepeated(
          [&] { (void)par.Optimize(sql); }, opts.reps);
      auto probe = par.Optimize(sql);
      const PolicyEvalStats& st = probe->stats.policy;
      double hits = static_cast<double>(st.implication_cache_hits);
      double total = hits + static_cast<double>(st.implication_cache_misses);
      double hit_rate = total > 0 ? hits / total : 0;
      double speedup = tp.min_ms > 0 ? tb.min_ms / tp.min_ms : 0;
      if (q == stress_queries.back() && n == stress_sizes.back()) {
        largest_scale_speedup = speedup;
      }
      std::printf("%-8zu %-14.2f %-14.2f %-9.2f %-9.1f%% %-10lld %-8s\n", n,
                  tb.min_ms, tp.min_ms, speedup, 100.0 * hit_rate,
                  static_cast<long long>(st.implication_tests),
                  same ? "yes" : "NO");
      report.Add(bench::JsonRow()
                     .Set("bench", "fig7abc")
                     .Set("section", "stress")
                     .Set("query", q)
                     .Set("num_expressions", n)
                     .Set("threads", opts.threads)
                     .Set("base_ms", tb.min_ms)
                     .Set("optimized_ms", tp.min_ms)
                     .Set("speedup", speedup)
                     .Set("cache_hit_rate", hit_rate)
                     .Set("implication_tests", st.implication_tests)
                     .Set("decisions_equal", same));
    }
  }

  std::printf("\nlargest-scale speedup: %.2fx (Q%d, %zu expressions); "
              "decisions identical across thread counts: %s\n",
              largest_scale_speedup, stress_queries.back(),
              stress_sizes.back(), decisions_equal ? "yes" : "NO");

  if (!report.Flush()) return 1;
  return decisions_equal ? 0 : 1;
}
