// Figure 7(a-c): scalability with the number of policy expressions.
//
// Optimization time of TPC-H Q2, Q3, and Q10 under generated CR+A policy
// sets of 12, 25, 50 and 100 expressions. Each bar also reports eta — the
// number of times a policy expression is *considered* by the optimizer
// (ship attributes intersect + implication holds; Algorithm 1 line 4) —
// because time scales with eta, not with the raw set size.

#include <cstdio>

#include "bench_util.h"
#include "core/optimizer.h"
#include "net/network_model.h"
#include "tpch/tpch.h"
#include "workload/policy_generator.h"

using namespace cgq;  // NOLINT

int main() {
  tpch::TpchConfig config;
  config.scale_factor = 10;
  auto catalog = tpch::BuildCatalog(config);
  if (!catalog.ok()) return 1;
  NetworkModel net = NetworkModel::DefaultGeo(5);
  WorkloadProperties properties = TpchWorkloadProperties();

  const size_t sizes[] = {12, 25, 50, 100};
  const int queries[] = {2, 3, 10};

  for (int q : queries) {
    bench::PrintHeader("Fig 7 (Q" + std::to_string(q) +
                       "): optimization time vs #policy expressions "
                       "(CR+A template)");
    std::printf("%-8s %-22s %-14s %-10s %-8s\n", "#expr",
                "Compliant QO [ms]", "policy [ms]", "eta", "groups");
    std::string sql = *tpch::Query(q);
    for (size_t n : sizes) {
      PolicyGeneratorConfig pconfig;
      pconfig.template_name = "CRA";
      pconfig.count = n;
      pconfig.seed = 99;
      PolicyExpressionGenerator pgen(&*catalog, &properties, pconfig);
      PolicyCatalog policies(&*catalog);
      if (!pgen.InstallInto(&policies).ok()) return 1;

      QueryOptimizer optimizer(&*catalog, &policies, &net, {});
      // One instrumented run for eta, then timed runs.
      auto probe = optimizer.Optimize(sql);
      long eta = probe.ok() ? static_cast<long>(probe->stats.policy.eta) : -1;
      size_t groups = probe.ok() ? probe->stats.memo_groups : 0;
      double policy_ms = probe.ok() ? probe->stats.policy.eval_ms : 0;
      bench::TimingStats t =
          bench::TimeRepeated([&] { (void)optimizer.Optimize(sql); });
      std::printf("%-8zu %10.2f +- %-8.2f %-14.3f %-10ld %-8zu\n", n,
                  t.mean_ms, t.stderr_ms, policy_ms, eta, groups);
    }
  }
  std::printf("\n(time grows with eta — the expressions actually affecting "
              "the query's search space — not with the raw set size)\n");
  return 0;
}
