// Figure 5 of the paper: effectiveness on the six TPC-H queries.
//
// (a) For every (policy set, query) variant: does the traditional
//     cost-based optimizer produce a compliant (C) or non-compliant (NC)
//     plan? The compliance-based optimizer must produce C everywhere.
// (b)-(e) Plan excerpts for Q2 (set CR) and Q3 (set CRA), traditional vs
//     compliant, mirroring the figures.

#include <cstdio>
#include <map>
#include <string>

#include "bench_util.h"
#include "core/optimizer.h"
#include "net/network_model.h"
#include "tpch/tpch.h"

using namespace cgq;  // NOLINT

int main() {
  tpch::TpchConfig config;
  config.scale_factor = 10;  // statistics only; matches the paper's SF
  auto catalog = tpch::BuildCatalog(config);
  if (!catalog.ok()) return 1;
  NetworkModel net = NetworkModel::DefaultGeo(5);
  PolicyCatalog policies(&*catalog);

  const char* sets[] = {"T", "C", "CR", "CRA"};

  bench::PrintHeader(
      "Fig 5(a): plans produced by the TRADITIONAL optimizer "
      "(C = compliant, NC = non-compliant)");
  std::printf("%-10s", "Expr. set");
  for (int q : tpch::QueryNumbers()) std::printf("  Q%-4d", q);
  std::printf("\n");

  std::map<std::string, std::map<int, bool>> traditional_verdicts;
  for (const char* set : sets) {
    if (!tpch::InstallPolicySet(set, &policies).ok()) return 1;
    std::printf("%-10s", set);
    for (int q : tpch::QueryNumbers()) {
      OptimizerOptions opts;
      opts.compliant = false;
      QueryOptimizer optimizer(&*catalog, &policies, &net, opts);
      auto r = optimizer.Optimize(*tpch::Query(q));
      bool compliant = r.ok() && r->compliant;
      traditional_verdicts[set][q] = compliant;
      std::printf("  %-5s", compliant ? "C" : "NC");
    }
    std::printf("\n");
  }

  bench::PrintHeader(
      "Fig 5(a) continued: the COMPLIANCE-BASED optimizer on the same "
      "24 variants (expected: all C)");
  std::printf("%-10s", "Expr. set");
  for (int q : tpch::QueryNumbers()) std::printf("  Q%-4d", q);
  std::printf("\n");
  int failures = 0;
  for (const char* set : sets) {
    if (!tpch::InstallPolicySet(set, &policies).ok()) return 1;
    std::printf("%-10s", set);
    for (int q : tpch::QueryNumbers()) {
      QueryOptimizer optimizer(&*catalog, &policies, &net, {});
      auto r = optimizer.Optimize(*tpch::Query(q));
      bool compliant = r.ok() && r->compliant;
      failures += compliant ? 0 : 1;
      std::printf("  %-5s", compliant ? "C" : (r.ok() ? "NC" : "REJ"));
    }
    std::printf("\n");
  }

  // Plan excerpts.
  auto print_plans = [&](const char* set, int q, const char* label) {
    if (!tpch::InstallPolicySet(set, &policies).ok()) return;
    OptimizerOptions trad;
    trad.compliant = false;
    QueryOptimizer traditional(&*catalog, &policies, &net, trad);
    QueryOptimizer compliant(&*catalog, &policies, &net, {});
    auto t = traditional.Optimize(*tpch::Query(q));
    auto c = compliant.Optimize(*tpch::Query(q));
    bench::PrintHeader(std::string("Fig 5") + label + ": Q" +
                       std::to_string(q) + " under set " + set);
    if (t.ok()) {
      std::printf("-- traditional (%s):\n%s",
                  t->compliant ? "compliant" : "NON-COMPLIANT",
                  PlanToString(*t->plan, &catalog->locations()).c_str());
      for (const std::string& v : t->violations) {
        std::printf("   violation: %s\n", v.c_str());
      }
    }
    if (c.ok()) {
      std::printf("-- compliant optimizer:\n%s",
                  PlanToString(*c->plan, &catalog->locations()).c_str());
    }
  };
  print_plans("CR", 2, "(b,c)");
  print_plans("CRA", 3, "(d,e)");

  std::printf("\nSummary: compliance-based optimizer produced a compliant "
              "plan for %s of the 24 variants.\n",
              failures == 0 ? "ALL" : "NOT ALL (bug!)");
  return failures == 0 ? 0 : 1;
}
