// Policy scale-out: hierarchical policy index vs the flat reference.
//
// Sweeps catalog size {100, 1k, 10k} x regions {5, 20} (tiny: {100, 1k}),
// generating fine-grained ("F" template) expression sets, and compares the
// flat per-(location, table) index against the hierarchical
// signature-bucket index on
//
//   - AddPolicy throughput (catalog construction, incl. online merge),
//   - policy-evaluation time summed over a 12-query workload
//     (TPC-H Q2/Q6/Q10 + nine ad-hoc PK-FK join queries),
//   - end-to-end optimization time,
//
// asserting per-query identical compliance decisions between the two
// layouts. The JSON rows seed BENCH_policy.json, pinned by the CI
// `policy-scale` job: >15% regression of the hier/flat eval ratio or any
// decision mismatch fails the gate.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/optimizer.h"
#include "net/network_model.h"
#include "tpch/tpch.h"
#include "workload/policy_generator.h"
#include "workload/query_generator.h"

using namespace cgq;  // NOLINT

namespace {

struct Decision {
  bool ok = false;
  StatusCode code = StatusCode::kOk;
  LocationId result_location = 0;
  bool compliant = false;
  double phase1_cost = 0;
  double comm_cost_ms = 0;

  bool operator==(const Decision&) const = default;
};

Decision DecisionOf(const Result<OptimizedQuery>& q) {
  Decision d;
  d.ok = q.ok();
  d.code = q.status().code();
  if (q.ok()) {
    d.result_location = q->result_location;
    d.compliant = q->compliant;
    d.phase1_cost = q->phase1_cost;
    d.comm_cost_ms = q->comm_cost_ms;
  }
  return d;
}

/// One pass of the whole workload; returns summed Evaluate() time and
/// end-to-end optimize wall time, plus per-query decisions.
struct PassResult {
  double eval_ms = 0;
  double opt_ms = 0;
  int64_t evaluations = 0;
  int64_t candidates = 0;
  int64_t implication_tests = 0;
  int64_t prefilter_skips = 0;
  std::vector<Decision> decisions;
};

PassResult RunWorkload(const QueryOptimizer& optimizer,
                       const std::vector<std::string>& workload) {
  PassResult pass;
  for (const std::string& sql : workload) {
    auto t0 = std::chrono::steady_clock::now();
    Result<OptimizedQuery> r = optimizer.Optimize(sql);
    auto t1 = std::chrono::steady_clock::now();
    pass.opt_ms +=
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (r.ok()) {
      pass.eval_ms += r->stats.policy.eval_ms;
      pass.evaluations += r->stats.policy.evaluations;
      pass.candidates += r->stats.policy.candidates;
      pass.implication_tests += r->stats.policy.implication_tests;
      pass.prefilter_skips += r->stats.policy.prefilter_skips;
    }
    pass.decisions.push_back(DecisionOf(r));
  }
  return pass;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::BenchOptions::Parse(argc, argv);
  bench::JsonReport report(opts.json_path);

  std::vector<size_t> sizes = {100, 1000, 10000};
  if (opts.tiny) sizes = {100, 1000};
  const std::vector<size_t> regions = {5, 20};

  bool all_equal = true;
  double largest_speedup = 0;

  for (size_t num_regions : regions) {
    tpch::TpchConfig config;
    config.scale_factor = 10;
    config.num_locations = num_regions;
    auto catalog = tpch::BuildCatalog(config);
    if (!catalog.ok()) return 1;
    NetworkModel net = NetworkModel::DefaultGeo(num_regions);
    WorkloadProperties properties = TpchWorkloadProperties();

    // Fixed 12-query workload: the most/least join-heavy paper queries, a
    // scan-heavy one, and nine generated PK-FK join queries.
    std::vector<std::string> workload;
    for (int q : {2, 6, 10}) workload.push_back(*tpch::Query(q));
    QueryGeneratorConfig qconfig;
    qconfig.seed = 13;
    AdhocQueryGenerator qgen(&*catalog, &properties, qconfig);
    for (int i = 0; i < 9; ++i) workload.push_back(qgen.Next());

    for (size_t size : sizes) {
      bench::PrintHeader(
          "policy_scale: " + std::to_string(size) + " policies, " +
          std::to_string(num_regions) + " regions (template F, " +
          std::to_string(workload.size()) + "-query workload)");

      PolicyGeneratorConfig pconfig;
      pconfig.template_name = "F";
      pconfig.count = size;
      pconfig.seed = 11 + size;
      pconfig.locations_per_expr = 3;
      pconfig.hub = static_cast<LocationId>(num_regions - 1);

      // Catalog construction is measured once per mode (the AddPolicy
      // throughput row) and deliberately kept out of the evaluation
      // timings below.
      PolicyCatalog flat(&*catalog, PolicyIndexMode::kFlat);
      PolicyCatalog hier(&*catalog, PolicyIndexMode::kHierarchical);
      double add_ms[2] = {0, 0};
      PolicyCatalog* cats[2] = {&flat, &hier};
      for (int m = 0; m < 2; ++m) {
        PolicyExpressionGenerator pgen(&*catalog, &properties, pconfig);
        auto t0 = std::chrono::steady_clock::now();
        if (!pgen.InstallInto(cats[m]).ok()) return 1;
        auto t1 = std::chrono::steady_clock::now();
        add_ms[m] =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
      }
      PolicyCatalog::IndexStats istats = hier.Stats();

      OptimizerOptions oopts;
      oopts.threads = 1;
      QueryOptimizer flat_opt(&*catalog, &flat, &net, oopts);
      QueryOptimizer hier_opt(&*catalog, &hier, &net, oopts);

      // Warm-up pass per mode (also the decision-equality check), then
      // `reps` timed passes; report the minimum.
      PassResult flat_probe = RunWorkload(flat_opt, workload);
      PassResult hier_probe = RunWorkload(hier_opt, workload);
      size_t mismatches = 0;
      for (size_t i = 0; i < workload.size(); ++i) {
        if (!(flat_probe.decisions[i] == hier_probe.decisions[i])) {
          ++mismatches;
          std::printf("  DECISION MISMATCH on workload query %zu\n", i);
        }
      }
      all_equal &= mismatches == 0;

      PassResult flat_best = flat_probe, hier_best = hier_probe;
      for (int rep = 0; rep < opts.reps; ++rep) {
        PassResult f = RunWorkload(flat_opt, workload);
        PassResult h = RunWorkload(hier_opt, workload);
        if (f.eval_ms < flat_best.eval_ms) flat_best = f;
        if (h.eval_ms < hier_best.eval_ms) hier_best = h;
      }

      double speedup = hier_best.eval_ms > 0
                           ? flat_best.eval_ms / hier_best.eval_ms
                           : 0;
      if (size == sizes.back() && num_regions == regions.back()) {
        largest_speedup = speedup;
      }

      std::printf("%-6s %-12s %-12s %-12s %-8s %-12s %-10s\n", "mode",
                  "add [ms]", "eval [ms]", "opt [ms]", "evals",
                  "candidates", "impl tests");
      std::printf("%-6s %-12.2f %-12.3f %-12.2f %-8lld %-12lld %-10lld\n",
                  "flat", add_ms[0], flat_best.eval_ms, flat_best.opt_ms,
                  static_cast<long long>(flat_best.evaluations),
                  static_cast<long long>(flat_best.candidates),
                  static_cast<long long>(flat_best.implication_tests));
      std::printf("%-6s %-12.2f %-12.3f %-12.2f %-8lld %-12lld %-10lld\n",
                  "hier", add_ms[1], hier_best.eval_ms, hier_best.opt_ms,
                  static_cast<long long>(hier_best.evaluations),
                  static_cast<long long>(hier_best.candidates),
                  static_cast<long long>(hier_best.implication_tests));
      std::printf(
          "eval speedup %.2fx | active %zu merged %zu buckets %zu "
          "(max %zu) | prefilter skips %lld | decisions %s\n",
          speedup, istats.active, istats.absorbed, istats.buckets,
          istats.max_bucket,
          static_cast<long long>(hier_best.prefilter_skips),
          mismatches == 0 ? "identical" : "MISMATCH");

      report.Add(
          bench::JsonRow()
              .Set("bench", "policy_scale")
              .Set("section", "sweep")
              .Set("policies", size)
              .Set("regions", num_regions)
              .Set("queries", workload.size())
              .Set("flat_add_ms", add_ms[0])
              .Set("hier_add_ms", add_ms[1])
              .Set("flat_eval_ms", flat_best.eval_ms)
              .Set("hier_eval_ms", hier_best.eval_ms)
              .Set("flat_opt_ms", flat_best.opt_ms)
              .Set("hier_opt_ms", hier_best.opt_ms)
              .Set("flat_candidates", flat_best.candidates)
              .Set("hier_candidates", hier_best.candidates)
              .Set("prefilter_skips", hier_best.prefilter_skips)
              .Set("eval_speedup", speedup)
              .Set("active", istats.active)
              .Set("absorbed", istats.absorbed)
              .Set("buckets", istats.buckets)
              .Set("max_bucket", istats.max_bucket)
              .Set("decisions_equal", mismatches == 0));

      // AddPolicy throughput row (policies/second, parse included).
      for (int m = 0; m < 2; ++m) {
        double rate = add_ms[m] > 0 ? 1000.0 * static_cast<double>(size) /
                                          add_ms[m]
                                    : 0;
        report.Add(bench::JsonRow()
                       .Set("bench", "policy_scale")
                       .Set("section", "addpolicy")
                       .Set("mode", m == 0 ? "flat" : "hier")
                       .Set("policies", size)
                       .Set("regions", num_regions)
                       .Set("add_ms", add_ms[m])
                       .Set("policies_per_sec", rate));
      }
    }
  }

  std::printf("\nlargest-scale eval speedup (hier vs flat): %.2fx; "
              "decisions identical: %s\n",
              largest_speedup, all_equal ? "yes" : "NO");

  if (!report.Flush()) return 1;
  return all_equal ? 0 : 1;
}
