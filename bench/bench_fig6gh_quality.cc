// Figure 6(g,h): plan quality — execution (communication) cost of the
// compliant plan scaled to the traditional plan's, under policy sets C and
// CR. Both plans are *executed* on generated TPC-H data; shipping is
// charged with the message cost model alpha_ij + beta_ij * bytes, with
// alpha/beta derived from inter-region RTT and throughput (§7.4).
//
// Annotations per query: whether each plan is compliant (C/NC) and whether
// the two plans are identical (=) or different (/=). Expected shape: equal
// cost whenever the traditional plan is already compliant; overhead (up to
// ~20x for Q2, which must ship the big Supplier side) otherwise.

#include <cstdio>

#include "bench_util.h"
#include "core/optimizer.h"
#include "exec/executor.h"
#include "net/network_model.h"
#include "tpch/tpch.h"

using namespace cgq;  // NOLINT

int main() {
  tpch::TpchConfig config;
  config.scale_factor = 0.01;  // executed for real: keep it small
  auto catalog = tpch::BuildCatalog(config);
  if (!catalog.ok()) return 1;
  NetworkModel net = NetworkModel::DefaultGeo(5);
  PolicyCatalog policies(&*catalog);

  TableStore store;
  if (!tpch::GenerateData(*catalog, config, &store).ok()) return 1;
  Executor executor(&store, &net);

  for (const char* set : {"C", "CR"}) {
    if (!tpch::InstallPolicySet(set, &policies).ok()) return 1;
    bench::PrintHeader(
        std::string("Fig 6(") + (set[1] == 'R' ? 'h' : 'g') +
        "): scaled execution cost under set " + set +
        " (network ms, traditional = 1x)");
    std::printf("%-6s %-14s %-14s %-12s %-10s %-6s\n", "Query",
                "trad [net ms]", "compl [net ms]", "scaled cost", "verdicts",
                "plans");

    for (int q : tpch::QueryNumbers()) {
      std::string sql = *tpch::Query(q);
      OptimizerOptions trad_opts;
      trad_opts.compliant = false;
      QueryOptimizer traditional(&*catalog, &policies, &net, trad_opts);
      QueryOptimizer compliant(&*catalog, &policies, &net, {});

      auto t = traditional.Optimize(sql);
      auto c = compliant.Optimize(sql);
      if (!t.ok() || !c.ok()) {
        std::printf("Q%-5d optimization failed\n", q);
        continue;
      }
      auto rt = executor.Execute(*t);
      auto rc = executor.Execute(*c);
      if (!rt.ok() || !rc.ok()) {
        std::printf("Q%-5d execution failed\n", q);
        continue;
      }
      bool same_plan = PlanToString(*t->plan, nullptr) ==
                       PlanToString(*c->plan, nullptr);
      double scaled = rt->metrics.network_ms > 0
                          ? rc->metrics.network_ms / rt->metrics.network_ms
                          : 1.0;
      std::printf("Q%-5d %-14.1f %-14.1f %-12.2f %s->%s     %s\n", q,
                  rt->metrics.network_ms, rc->metrics.network_ms, scaled,
                  t->compliant ? "C" : "NC", c->compliant ? "C" : "NC",
                  same_plan ? "=" : "/=");
    }
  }
  std::printf("\n(scaled cost 1.00 with '=' reproduces the paper's "
              "observation: identical plans whenever the traditional plan "
              "is compliant)\n");
  return 0;
}
