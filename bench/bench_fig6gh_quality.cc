// Figure 6(g,h): plan quality — execution (communication) cost of the
// compliant plan scaled to the traditional plan's, under policy sets C and
// CR. Both plans are *executed* on generated TPC-H data; shipping is
// charged with the message cost model alpha_ij + beta_ij * bytes, with
// alpha/beta derived from inter-region RTT and throughput (§7.4).
//
// Annotations per query: whether each plan is compliant (C/NC) and whether
// the two plans are identical (=) or different (/=). Expected shape: equal
// cost whenever the traditional plan is already compliant; overhead (up to
// ~20x for Q2, which must ship the big Supplier side) otherwise.
//
// Every cell runs under the backends selected by --exec-mode; when both
// run, the bench exits non-zero unless the fragmented runtime reproduced
// the row interpreter's rows and ship metrics exactly.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/optimizer.h"
#include "exec/executor.h"
#include "net/network_model.h"
#include "tpch/tpch.h"

using namespace cgq;  // NOLINT

namespace {

struct Measured {
  double network_ms = 0;
  int64_t rows = 0;
  int64_t ships = 0;
  int64_t rows_shipped = 0;
  double bytes_shipped = 0;
  bool ok = false;
};

Measured Measure(const Executor& executor, const OptimizedQuery& q) {
  Measured m;
  auto r = executor.Execute(q);
  if (!r.ok()) return m;
  m.network_ms = r->metrics.network_ms;
  m.rows = static_cast<int64_t>(r->rows.size());
  m.ships = r->metrics.ships;
  m.rows_shipped = r->metrics.rows_shipped;
  m.bytes_shipped = r->metrics.bytes_shipped;
  m.ok = true;
  return m;
}

bool Agree(const Measured& a, const Measured& b) {
  return a.ok && b.ok && a.rows == b.rows && a.ships == b.ships &&
         a.rows_shipped == b.rows_shipped &&
         a.bytes_shipped == b.bytes_shipped;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::BenchOptions::Parse(argc, argv);
  bench::JsonReport report(opts.json_path);

  tpch::TpchConfig config;
  config.scale_factor = 0.01;  // executed for real: keep it small
  auto catalog = tpch::BuildCatalog(config);
  if (!catalog.ok()) return 1;
  NetworkModel net = NetworkModel::DefaultGeo(5);
  PolicyCatalog policies(&*catalog);

  TableStore store;
  if (!tpch::GenerateData(*catalog, config, &store).ok()) return 1;

  int mismatches = 0;
  for (const char* set : {"C", "CR"}) {
    if (!tpch::InstallPolicySet(set, &policies).ok()) return 1;

    for (const char* mode : opts.ExecModes()) {
      ExecutorOptions eopts;
      eopts.mode = std::string(mode) == "row"      ? ExecMode::kRow
                   : std::string(mode) == "vector" ? ExecMode::kVector
                                                   : ExecMode::kFragment;
      eopts.batch_size = opts.batch_size;
      eopts.threads = opts.threads;
      Executor executor(&store, &net, eopts);
      // The reference row interpreter, for the cross-backend check.
      Executor row_executor(&store, &net);

      bench::PrintHeader(
          std::string("Fig 6(") + (set[1] == 'R' ? 'h' : 'g') +
          "): scaled execution cost under set " + set + ", backend '" +
          mode + "' (network ms, traditional = 1x)");
      std::printf("%-6s %-14s %-14s %-12s %-10s %-6s\n", "Query",
                  "trad [net ms]", "compl [net ms]", "scaled cost",
                  "verdicts", "plans");

      for (int q : tpch::QueryNumbers()) {
        std::string sql = *tpch::Query(q);
        OptimizerOptions trad_opts;
        trad_opts.compliant = false;
        QueryOptimizer traditional(&*catalog, &policies, &net, trad_opts);
        QueryOptimizer compliant(&*catalog, &policies, &net, {});

        auto t = traditional.Optimize(sql);
        auto c = compliant.Optimize(sql);
        if (!t.ok() || !c.ok()) {
          std::printf("Q%-5d optimization failed\n", q);
          continue;
        }
        Measured mt = Measure(executor, *t);
        Measured mc = Measure(executor, *c);
        if (!mt.ok || !mc.ok) {
          std::printf("Q%-5d execution failed\n", q);
          ++mismatches;
          continue;
        }
        // The fragmented and vectorized runtimes must agree with the
        // row interpreter on rows and ship metrics for both plans.
        if (eopts.mode != ExecMode::kRow) {
          if (!Agree(mt, Measure(row_executor, *t)) ||
              !Agree(mc, Measure(row_executor, *c))) {
            std::printf("Q%-5d BACKEND MISMATCH under set %s\n", q, set);
            ++mismatches;
          }
        }
        bool same_plan = PlanToString(*t->plan, nullptr) ==
                         PlanToString(*c->plan, nullptr);
        double scaled =
            mt.network_ms > 0 ? mc.network_ms / mt.network_ms : 1.0;
        std::printf("Q%-5d %-14.1f %-14.1f %-12.2f %s->%s     %s\n", q,
                    mt.network_ms, mc.network_ms, scaled,
                    t->compliant ? "C" : "NC", c->compliant ? "C" : "NC",
                    same_plan ? "=" : "/=");

        bench::JsonRow jrow;
        jrow.Set("bench", "fig6gh")
            .Set("policy_set", set)
            .Set("exec_mode", mode)
            .Set("query", q)
            .Set("trad_network_ms", mt.network_ms)
            .Set("compliant_network_ms", mc.network_ms)
            .Set("scaled_cost", scaled)
            .Set("rows", mc.rows)
            .Set("ships", mc.ships)
            .Set("rows_shipped", mc.rows_shipped)
            .Set("bytes_shipped", mc.bytes_shipped)
            .Set("trad_compliant", t->compliant)
            .Set("same_plan", same_plan);
        report.Add(jrow);
      }
    }
  }
  std::printf("\n(scaled cost 1.00 with '=' reproduces the paper's "
              "observation: identical plans whenever the traditional plan "
              "is compliant)\n");
  if (!report.Flush()) return 1;
  return mismatches == 0 ? 0 : 1;
}
