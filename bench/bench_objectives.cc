// Extension benchmarks (DESIGN.md §7): phase-2 objective (total
// communication cost vs response time, §3.3 Discussion) and physical join
// method (hash vs sort-merge), on the six TPC-H queries under set CR.
// Plans are executed at a small scale factor; reported network time uses
// the message cost model.

#include <cstdio>

#include "bench_util.h"
#include "core/optimizer.h"
#include "exec/executor.h"
#include "net/network_model.h"
#include "tpch/tpch.h"

using namespace cgq;  // NOLINT

int main() {
  tpch::TpchConfig config;
  config.scale_factor = 0.01;
  auto catalog = tpch::BuildCatalog(config);
  if (!catalog.ok()) return 1;
  PolicyCatalog policies(&*catalog);
  if (!tpch::InstallPolicySet("CR", &policies).ok()) return 1;
  NetworkModel net = NetworkModel::DefaultGeo(5);
  TableStore store;
  if (!tpch::GenerateData(*catalog, config, &store).ok()) return 1;
  Executor executor(&store, &net);

  bench::PrintHeader(
      "Phase-2 objective: estimated cost under total-cost vs response-time "
      "placement (compliant optimizer, set CR)");
  std::printf("%-6s %-18s %-20s %-8s\n", "Query", "total-cost [ms]",
              "response-time [ms]", "site");
  for (int q : tpch::QueryNumbers()) {
    std::string sql = *tpch::Query(q);
    OptimizerOptions total;
    OptimizerOptions response;
    response.response_time_objective = true;
    QueryOptimizer opt_total(&*catalog, &policies, &net, total);
    QueryOptimizer opt_resp(&*catalog, &policies, &net, response);
    auto a = opt_total.Optimize(sql);
    auto b = opt_resp.Optimize(sql);
    if (!a.ok() || !b.ok()) continue;
    std::printf("Q%-5d %-18.1f %-20.1f %s/%s\n", q, a->comm_cost_ms,
                b->comm_cost_ms,
                catalog->locations().GetName(a->result_location).c_str(),
                catalog->locations().GetName(b->result_location).c_str());
  }

  bench::PrintHeader(
      "Join method: measured network time executing with hash vs "
      "sort-merge equi-joins (identical results asserted in tests)");
  std::printf("%-6s %-18s %-18s\n", "Query", "hash [net ms]",
              "merge [net ms]");
  for (int q : tpch::QueryNumbers()) {
    std::string sql = *tpch::Query(q);
    OptimizerOptions hash;
    OptimizerOptions merge;
    merge.prefer_sort_merge_join = true;
    QueryOptimizer opt_hash(&*catalog, &policies, &net, hash);
    QueryOptimizer opt_merge(&*catalog, &policies, &net, merge);
    auto a = opt_hash.Optimize(sql);
    auto b = opt_merge.Optimize(sql);
    if (!a.ok() || !b.ok()) continue;
    auto ra = executor.Execute(*a);
    auto rb = executor.Execute(*b);
    if (!ra.ok() || !rb.ok()) {
      std::printf("Q%-5d execution failed\n", q);
      continue;
    }
    std::printf("Q%-5d %-18.1f %-18.1f\n", q, ra->metrics.network_ms,
                rb->metrics.network_ms);
  }
  std::printf("\n(join method never changes shipped bytes — transfers are "
              "whole intermediate results — so the two columns agree; the "
              "panel documents that physical choice and placement are "
              "orthogonal, as in the paper's two-phase design)\n");
  return 0;
}
