// Ablation: the eager-aggregation rules (aggregate masking).
//
// §6.4 observes that completeness depends on the transformation rules: the
// optimizer "may safely but incorrectly reject a legal query" when a
// needed rewrite (aggregation past a join) is missing. This ablation turns
// the eager-aggregation rules off and reports, per policy set, how many of
// the six TPC-H queries are then rejected or lose their compliant plan,
// along with the optimization-time saving.

#include <cstdio>

#include "bench_util.h"
#include "core/optimizer.h"
#include "net/network_model.h"
#include "tpch/tpch.h"

using namespace cgq;  // NOLINT

int main() {
  tpch::TpchConfig config;
  config.scale_factor = 10;
  auto catalog = tpch::BuildCatalog(config);
  if (!catalog.ok()) return 1;
  NetworkModel net = NetworkModel::DefaultGeo(5);
  PolicyCatalog policies(&*catalog);

  bench::PrintHeader(
      "Ablation: compliance-based optimizer with/without the "
      "eager-aggregation rules");
  std::printf("%-6s %-6s %-16s %-16s %-14s %-14s\n", "Set", "Query",
              "with agg rules", "without", "t_with [ms]", "t_without [ms]");

  for (const char* set : {"T", "C", "CR", "CRA"}) {
    if (!tpch::InstallPolicySet(set, &policies).ok()) return 1;
    for (int q : tpch::QueryNumbers()) {
      std::string sql = *tpch::Query(q);

      OptimizerOptions with;
      QueryOptimizer opt_with(&*catalog, &policies, &net, with);
      OptimizerOptions without;
      without.enable_agg_pushdown = false;
      QueryOptimizer opt_without(&*catalog, &policies, &net, without);

      auto a = opt_with.Optimize(sql);
      auto b = opt_without.Optimize(sql);
      bench::TimingStats ta =
          bench::TimeRepeated([&] { (void)opt_with.Optimize(sql); }, 3);
      bench::TimingStats tb =
          bench::TimeRepeated([&] { (void)opt_without.Optimize(sql); }, 3);

      auto verdict = [](const Result<OptimizedQuery>& r) {
        if (!r.ok()) return "REJECTED";
        return r->compliant ? "compliant" : "non-compliant";
      };
      std::printf("%-6s Q%-5d %-16s %-16s %-14.2f %-14.2f\n", set, q,
                  verdict(a), verdict(b), ta.mean_ms, tb.mean_ms);
    }
  }
  std::printf("\n(REJECTED under 'without' = the compliant plan needed an "
              "aggregate-masking rewrite, cf. §6.4's completeness "
              "discussion)\n");
  return 0;
}
