// Micro benchmarks of the core components: the implication test, policy
// evaluation (Algorithm 1), end-to-end optimization of selected queries,
// and cross-backend execution of the multi-site TPC-H workload.
//
// The execution section runs every query under the selected backends
// (--exec-mode=row|fragment|vector|both) and reports each backend's
// speedup over the row interpreter, plus the ship metrics and a result
// digest so CI can assert that all backends agree byte-for-byte. The
// per-backend geomean speedups land in one micro_exec_summary row per
// backend (the vector one feeds the CI perf-regression gate, see
// BENCH_micro.json).

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/trace.h"
#include "core/engine.h"
#include "net/cluster_client.h"
#include "net/server.h"
#include "core/optimizer.h"
#include "core/policy_evaluator.h"
#include "exec/executor.h"
#include "expr/implication.h"
#include "net/network_model.h"
#include "plan/binder.h"
#include "plan/builder.h"
#include "plan/summary.h"
#include "service/query_service.h"
#include "sql/parser.h"
#include "storage/storage_engine.h"
#include "tpch/tpch.h"

using namespace cgq;  // NOLINT

namespace {

ExecMode ModeFromName(const std::string& mode) {
  if (mode == "row") return ExecMode::kRow;
  if (mode == "vector") return ExecMode::kVector;
  if (mode == "distributed") return ExecMode::kDistributed;
  return ExecMode::kFragment;
}

// FNV-1a over the full-precision serialization of the result rows, order
// included: equal digests mean byte-identical results.
uint64_t ResultDigest(const QueryResult& r) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](const std::string& s) {
    for (char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
  };
  for (const std::string& name : r.column_names) mix(name + ";");
  for (const Row& row : r.rows) {
    for (const Value& v : row) {
      if (v.is_null()) {
        mix("NULL|");
      } else if (v.is_double()) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g|", v.dbl());
        mix(buf);
      } else {
        mix(v.ToString() + "|");
      }
    }
    mix("\n");
  }
  return h;
}

void OptimizerMicro(const bench::BenchOptions& opts,
                    bench::JsonReport* report) {
  tpch::TpchConfig config;
  config.scale_factor = 10;  // stats only; no data generated
  auto catalog = tpch::BuildCatalog(config);
  CGQ_CHECK(catalog.ok());
  PolicyCatalog policies(&*catalog);
  CGQ_CHECK(tpch::InstallPolicySet("CRA", &policies).ok());
  NetworkModel net = NetworkModel::DefaultGeo(5);

  bench::PrintHeader("Optimizer micro benchmarks (mean over " +
                     std::to_string(opts.reps) + " reps)");

  auto record = [&](const std::string& name, const bench::TimingStats& t) {
    std::printf("%-28s %10.3f ms  (+/- %.3f)\n", name.c_str(), t.mean_ms,
                t.stderr_ms);
    bench::JsonRow row;
    row.Set("bench", "micro_optimizer")
        .Set("name", name)
        .Set("mean_ms", t.mean_ms)
        .Set("stderr_ms", t.stderr_ms);
    report->Add(row);
  };

  {
    auto q = ParseQuery(
        "SELECT a FROM t WHERE size > 41 AND mkt = 'BUILDING' AND "
        "price BETWEEN 10 AND 20");
    auto e = ParseQuery(
        "SELECT a FROM t WHERE size > 40 OR ctype LIKE '%COPPER%'");
    std::vector<ExprPtr> premise = SplitConjuncts(q->where);
    std::vector<ExprPtr> conclusion = SplitConjuncts(e->where);
    record("implication_test",
           bench::TimeRepeated(
               [&] {
                 for (int i = 0; i < 1000; ++i) {
                   (void)PredicateImplies(premise, conclusion);
                 }
               },
               opts.reps));
  }

  {
    auto ast = ParseQuery(
        "SELECT l.orderkey, SUM(l.extendedprice * (1 - l.discount)) "
        "FROM lineitem l WHERE l.shipdate > DATE '1995-06-01' "
        "GROUP BY l.orderkey");
    PlannerContext ctx(&*catalog);
    auto bound = BindQuery(*ast, &ctx);
    auto plan = BuildLogicalPlan(*bound, &ctx);
    QuerySummary summary = SummarizePlan(*(*plan).root);
    PolicyEvaluator evaluator(&*catalog, &policies);
    record("policy_evaluation",
           bench::TimeRepeated(
               [&] {
                 for (int i = 0; i < 100; ++i) {
                   (void)evaluator.Evaluate(summary, 3);
                 }
               },
               opts.reps));
  }

  for (int q : {2, 3, 5, 10}) {
    QueryOptimizer optimizer(&*catalog, &policies, &net, {});
    std::string sql = *tpch::Query(q);
    record("optimize_q" + std::to_string(q),
           bench::TimeRepeated([&] { (void)optimizer.Optimize(sql); },
                               opts.reps));
  }
}

int ExecutionBench(const bench::BenchOptions& opts,
                   bench::JsonReport* report) {
  tpch::TpchConfig config;
  config.scale_factor = opts.tiny ? 0.005 : 0.05;
  auto catalog = tpch::BuildCatalog(config);
  CGQ_CHECK(catalog.ok());
  NetworkModel net = NetworkModel::DefaultGeo(5);
  PolicyCatalog policies(&*catalog);
  CGQ_CHECK(tpch::InstallUnrestrictedPolicies(&policies).ok());
  TableStore store;
  CGQ_CHECK(tpch::GenerateData(*catalog, config, &store).ok());

  // --storage=disk: the same workload with every scan streaming
  // checksummed blocks from the per-location storage engine instead of
  // reading pinned RAM fragments (digest assertions unchanged).
  std::string storage_dir;
  if (opts.storage == "disk") {
    storage_dir = (std::filesystem::temp_directory_path() /
                   ("cgq-bench-store-" + std::to_string(::getpid())))
                      .string();
    std::error_code ec;
    std::filesystem::remove_all(storage_dir, ec);
    CGQ_CHECK(store.EnableDiskStorage(storage_dir).ok());
  }

  // --exec-mode=distributed: run against real location servers. With
  // --connect the servers are external (multi-process, e.g. the CI
  // loopback deployment); without it the bench stands up an in-process
  // loopback deployment on ephemeral ports.
  bool wants_distributed = false;
  for (const char* mode : opts.ExecModes()) {
    wants_distributed |= std::strcmp(mode, "distributed") == 0;
  }
  std::vector<std::unique_ptr<net::SiteServer>> loopback;
  net::ClusterClient cluster;
  if (wants_distributed) {
    std::map<LocationId, net::Endpoint> endpoints;
    if (!opts.connect_hosts.empty()) {
      auto parsed = net::ParseHostsFile(opts.connect_hosts);
      CGQ_CHECK(parsed.ok()) << parsed.status();
      endpoints = *parsed;
    } else {
      const std::vector<std::vector<LocationId>> hosting = {
          {0, 1}, {2, 3}, {4}};
      for (const std::vector<LocationId>& locations : hosting) {
        net::SiteServer::Options sopts;
        sopts.locations = locations;
        auto server = std::make_unique<net::SiteServer>(sopts);
        CGQ_CHECK(server->Start().ok());
        for (LocationId l : locations) {
          endpoints[l] = {"127.0.0.1", server->port()};
        }
        loopback.push_back(std::move(server));
      }
    }
    CGQ_CHECK(cluster.Connect(endpoints).ok());
    CGQ_CHECK(cluster.Deploy(store).ok());
  }

  // The lossy profile drops 5% of batches on every cross-site link; the
  // retry budget makes exhaustion (0.05^9) impossible in practice, so
  // both backends recover every run and their digests must still agree.
  const bool lossy =
      opts.fault_profile == bench::FaultProfileArg::kLossy;
  if (lossy) {
    net.ApplyLossyProfile(/*drop_probability=*/0.05,
                          /*extra_latency_ms=*/2.0);
  }

  bench::PrintHeader(
      "Execution: row vs fragment vs vector backends (sf " +
      std::to_string(config.scale_factor) + ", " +
      std::to_string(opts.threads) + " threads, batch " +
      std::to_string(opts.batch_size) + ", faults " +
      bench::FaultProfileArgToString(opts.fault_profile) + ")");
  std::printf("%-6s %-10s %12s %10s %8s %14s %10s\n", "Query", "mode",
              "mean [ms]", "rows", "ships", "bytes shipped", "speedup");

  int failures = 0;
  // Per-backend speedups over the row baseline, keyed by mode name.
  std::vector<std::pair<std::string, std::vector<double>>> speedups;
  auto speedups_of = [&speedups](const std::string& mode)
      -> std::vector<double>& {
    for (auto& [name, values] : speedups) {
      if (name == mode) return values;
    }
    speedups.emplace_back(mode, std::vector<double>());
    return speedups.back().second;
  };
  for (int q : tpch::QueryNumbers()) {
    QueryOptimizer optimizer(&*catalog, &policies, &net, {});
    auto opt = optimizer.Optimize(*tpch::Query(q));
    if (!opt.ok()) {
      std::printf("Q%-5d optimization failed: %s\n", q,
                  opt.status().ToString().c_str());
      ++failures;
      continue;
    }

    double row_mean = 0;
    uint64_t row_digest = 0;
    for (const char* mode : opts.ExecModes()) {
      ExecutorOptions eopts;
      eopts.mode = ModeFromName(mode);
      eopts.batch_size = opts.batch_size;
      eopts.threads = opts.threads;
      if (eopts.mode == ExecMode::kDistributed) eopts.cluster = &cluster;
      if (lossy) {
        eopts.retry.max_retries = 8;
        eopts.retry.fault_seed = opts.fault_seed;
      }
      Executor executor(&store, &net, eopts);

      auto result = executor.Execute(*opt);
      if (!result.ok()) {
        std::printf("Q%-5d %s execution failed: %s\n", q, mode,
                    result.status().ToString().c_str());
        ++failures;
        continue;
      }
      bench::TimingStats t = bench::TimeRepeated(
          [&] { (void)executor.Execute(*opt); }, opts.reps);

      uint64_t digest = ResultDigest(*result);
      double speedup = 0;
      if (eopts.mode == ExecMode::kRow) {
        row_mean = t.mean_ms;
        row_digest = digest;
      } else if (row_mean > 0) {
        speedup = row_mean / t.mean_ms;
        if (row_digest != 0 && digest != row_digest) {
          std::printf("Q%-5d BACKEND MISMATCH: %s result differs "
                      "from row result\n", q, mode);
          ++failures;
        }
      }

      char speedup_str[16] = "-";
      if (speedup > 0) {
        std::snprintf(speedup_str, sizeof(speedup_str), "%.2fx", speedup);
      }
      std::printf("Q%-5d %-10s %12.2f %10zu %8lld %14.0f %10s\n", q, mode,
                  t.mean_ms, result->rows.size(),
                  static_cast<long long>(result->metrics.ships),
                  result->metrics.bytes_shipped, speedup_str);

      bench::JsonRow jrow;
      jrow.Set("bench", "micro_exec")
          .Set("query", q)
          .Set("exec_mode", mode)
          .Set("storage", opts.storage)
          .Set("threads", opts.threads)
          .Set("batch_size", opts.batch_size)
          .Set("scale_factor", config.scale_factor)
          .Set("mean_ms", t.mean_ms)
          .Set("stderr_ms", t.stderr_ms)
          .Set("rows", result->rows.size())
          .Set("ships", result->metrics.ships)
          .Set("rows_shipped", result->metrics.rows_shipped)
          .Set("bytes_shipped", result->metrics.bytes_shipped)
          .Set("result_digest", std::to_string(digest))
          .Set("fault_profile",
               bench::FaultProfileArgToString(opts.fault_profile))
          .Set("send_retries", result->metrics.send_retries)
          .Set("dropped_batches", result->metrics.dropped_batches)
          .Set("timeouts", result->metrics.send_timeouts +
                               result->metrics.recv_timeouts)
          .Set("fragment_restarts", result->metrics.fragment_restarts);
      bench::SetPhaseTimings(jrow, result->opt_stats, result->metrics);
      if (speedup > 0) {
        jrow.Set("speedup", speedup);
        speedups_of(mode).push_back(speedup);
      }
      report->Add(jrow);
    }
  }

  for (const auto& [mode, values] : speedups) {
    if (values.empty()) continue;
    double log_sum = 0;
    for (double s : values) log_sum += std::log(s);
    double geomean = std::exp(log_sum / static_cast<double>(values.size()));
    std::printf("\ngeomean %s speedup over %zu queries: %.2fx\n",
                mode.c_str(), values.size(), geomean);
    bench::JsonRow summary;
    summary.Set("bench", "micro_exec_summary")
        .Set("exec_mode", mode)
        .Set("threads", opts.threads)
        .Set("batch_size", opts.batch_size)
        .Set("queries", values.size())
        .Set("geomean_speedup", geomean);
    report->Add(summary);
  }

  // One representative Chrome trace (Q3, fragment backend) for tooling
  // and the CI artifact check. With CGQ_TRACING=OFF the spans compile
  // out and the file still holds valid (empty) trace_event JSON.
  if (!opts.trace_out.empty()) {
    const std::string sql = *tpch::Query(3);
    TraceSession session(sql, TraceClock::kDeterministic);
    {
      ScopedTraceContext ctx(&session);
      TraceSpan root("query");
      QueryOptimizer optimizer(&*catalog, &policies, &net, {});
      auto opt = optimizer.Optimize(sql);
      if (!opt.ok()) {
        root.AddArg("status", opt.status().ToString());
      } else {
        ExecutorOptions eopts;
        eopts.mode = ExecMode::kFragment;
        eopts.batch_size = opts.batch_size;
        eopts.threads = opts.threads;
        Executor executor(&store, &net, eopts);
        auto result = executor.Execute(*opt);
        if (result.ok()) {
          root.AddArg("rows", static_cast<int64_t>(result->rows.size()));
        }
      }
    }
    std::string json = session.ToChromeJson();
    std::FILE* f = std::fopen(opts.trace_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", opts.trace_out.c_str());
      ++failures;
    } else {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("\ntrace (%zu spans) written to %s\n",
                  session.span_count(), opts.trace_out.c_str());
    }
  }
  if (!storage_dir.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(storage_dir, ec);
  }
  return failures;
}

// Storage bench: every query on the same data twice — pinned RAM
// fragments vs block-streaming disk scans — on the row and vector
// backends. Digests must agree; the per-mode geomean of
// disk_ms / memory_ms lands in a micro_storage_summary row that the CI
// bench-smoke job gates (>15% regression against the checked-in
// baseline fails).
int StorageBench(const bench::BenchOptions& opts,
                 bench::JsonReport* report) {
  tpch::TpchConfig config;
  config.scale_factor = opts.tiny ? 0.005 : 0.05;
  auto catalog = tpch::BuildCatalog(config);
  CGQ_CHECK(catalog.ok());
  NetworkModel net = NetworkModel::DefaultGeo(5);
  PolicyCatalog policies(&*catalog);
  CGQ_CHECK(tpch::InstallUnrestrictedPolicies(&policies).ok());
  TableStore memory_store;
  CGQ_CHECK(tpch::GenerateData(*catalog, config, &memory_store).ok());

  TableStore disk_store(memory_store);
  std::string dir = (std::filesystem::temp_directory_path() /
                     ("cgq-bench-storage-" + std::to_string(::getpid())))
                        .string();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  storage::StorageOptions soptions;
  soptions.block_target_bytes = 64 * 1024;  // several blocks per fragment
  CGQ_CHECK(disk_store.EnableDiskStorage(dir, soptions).ok());

  bench::PrintHeader("Storage: in-memory vs disk-backed scans (sf " +
                     std::to_string(config.scale_factor) + ")");
  std::printf("%-6s %-8s %-8s %12s %10s %8s\n", "Query", "mode", "storage",
              "mean [ms]", "blocks", "match");

  int failures = 0;
  std::vector<std::pair<std::string, std::vector<double>>> ratios;
  auto ratios_of = [&ratios](const std::string& mode)
      -> std::vector<double>& {
    for (auto& [name, values] : ratios) {
      if (name == mode) return values;
    }
    ratios.emplace_back(mode, std::vector<double>());
    return ratios.back().second;
  };
  for (int q : tpch::QueryNumbers()) {
    QueryOptimizer optimizer(&*catalog, &policies, &net, {});
    auto opt = optimizer.Optimize(*tpch::Query(q));
    if (!opt.ok()) {
      std::printf("Q%-5d optimization failed: %s\n", q,
                  opt.status().ToString().c_str());
      ++failures;
      continue;
    }
    for (const char* mode : {"row", "vector"}) {
      double memory_mean = 0;
      uint64_t memory_digest = 0;
      for (const char* storage : {"memory", "disk"}) {
        const bool is_disk = std::strcmp(storage, "disk") == 0;
        ExecutorOptions eopts;
        eopts.mode = ModeFromName(mode);
        eopts.batch_size = opts.batch_size;
        Executor executor(is_disk ? &disk_store : &memory_store, &net,
                          eopts);
        auto result = executor.Execute(*opt);
        if (!result.ok()) {
          std::printf("Q%-5d %s/%s failed: %s\n", q, mode, storage,
                      result.status().ToString().c_str());
          ++failures;
          continue;
        }
        bench::TimingStats t = bench::TimeRepeated(
            [&] { (void)executor.Execute(*opt); }, opts.reps);
        uint64_t digest = ResultDigest(*result);
        bool match = true;
        if (!is_disk) {
          memory_mean = t.mean_ms;
          memory_digest = digest;
        } else {
          match = digest == memory_digest;
          if (!match) ++failures;
          if (result->metrics.storage_blocks_read <= 0) {
            std::printf("Q%-5d %s disk run read no blocks\n", q, mode);
            ++failures;
          }
          if (memory_mean > 0 && t.mean_ms > 0) {
            ratios_of(mode).push_back(t.mean_ms / memory_mean);
          }
        }
        std::printf("Q%-5d %-8s %-8s %12.2f %10lld %8s\n", q, mode,
                    storage, t.mean_ms,
                    static_cast<long long>(
                        result->metrics.storage_blocks_read),
                    match ? "OK" : "MISMATCH");
        bench::JsonRow jrow;
        jrow.Set("bench", "micro_storage")
            .Set("query", q)
            .Set("exec_mode", mode)
            .Set("storage", storage)
            .Set("scale_factor", config.scale_factor)
            .Set("mean_ms", t.mean_ms)
            .Set("stderr_ms", t.stderr_ms)
            .Set("rows", result->rows.size())
            .Set("storage_blocks_read",
                 result->metrics.storage_blocks_read)
            .Set("result_digest", std::to_string(digest))
            .Set("digest_match", match);
        report->Add(jrow);
      }
    }
  }

  for (const auto& [mode, values] : ratios) {
    if (values.empty()) continue;
    double log_sum = 0;
    for (double r : values) log_sum += std::log(r);
    double geomean = std::exp(log_sum / static_cast<double>(values.size()));
    std::printf("\ngeomean %s disk/memory slowdown over %zu queries: "
                "%.2fx\n",
                mode.c_str(), values.size(), geomean);
    bench::JsonRow summary;
    summary.Set("bench", "micro_storage_summary")
        .Set("exec_mode", mode)
        .Set("queries", values.size())
        .Set("disk_over_memory", geomean);
    report->Add(summary);
  }
  std::filesystem::remove_all(dir, ec);
  return failures;
}

// Spill sweep: join-heavy queries under memory_budget_bytes of infinity,
// 25% and 5% of the largest hash-join build side (measured on the
// unbounded row run). Finite budgets must actually spill
// (spill_partitions > 0) and every cell must reproduce the unbounded
// digest on every in-process backend.
int SpillSweepBench(const bench::BenchOptions& opts,
                    bench::JsonReport* report) {
  tpch::TpchConfig config;
  config.scale_factor = opts.tiny ? 0.005 : 0.05;
  auto catalog = tpch::BuildCatalog(config);
  CGQ_CHECK(catalog.ok());
  NetworkModel net = NetworkModel::DefaultGeo(5);
  PolicyCatalog policies(&*catalog);
  CGQ_CHECK(tpch::InstallUnrestrictedPolicies(&policies).ok());
  TableStore store;
  CGQ_CHECK(tpch::GenerateData(*catalog, config, &store).ok());

  bench::PrintHeader("Spill sweep: memory budget inf / 25% / 5% of the "
                     "build side (sf " +
                     std::to_string(config.scale_factor) + ")");
  std::printf("%-6s %-10s %-8s %12s %12s %12s %8s\n", "Query", "mode",
              "budget", "bytes", "mean [ms]", "partitions", "match");

  int failures = 0;
  for (int q : {3, 5, 10}) {
    QueryOptimizer optimizer(&*catalog, &policies, &net, {});
    auto opt = optimizer.Optimize(*tpch::Query(q));
    if (!opt.ok()) {
      std::printf("Q%-5d optimization failed: %s\n", q,
                  opt.status().ToString().c_str());
      ++failures;
      continue;
    }

    // Unbounded row run: reference digest + the build-side measurement
    // the finite budgets are derived from.
    ExecutorOptions ref_opts;
    ref_opts.mode = ExecMode::kRow;
    ref_opts.batch_size = opts.batch_size;
    Executor ref_exec(&store, &net, ref_opts);
    auto ref = ref_exec.Execute(*opt);
    if (!ref.ok() || ref->metrics.max_build_bytes <= 0) {
      std::printf("Q%-5d unbounded reference failed\n", q);
      ++failures;
      continue;
    }
    const uint64_t ref_digest = ResultDigest(*ref);
    const int64_t build = ref->metrics.max_build_bytes;

    const struct {
      const char* label;
      uint64_t bytes;
    } budgets[] = {{"inf", 0},
                   {"25pct", static_cast<uint64_t>(build / 4)},
                   {"5pct", static_cast<uint64_t>(build / 20)}};
    for (const char* mode : {"row", "fragment", "vector"}) {
      for (const auto& budget : budgets) {
        ExecutorOptions eopts;
        eopts.mode = ModeFromName(mode);
        eopts.batch_size = opts.batch_size;
        eopts.memory_budget_bytes = budget.bytes;
        Executor executor(&store, &net, eopts);
        auto result = executor.Execute(*opt);
        if (!result.ok()) {
          std::printf("Q%-5d %s/%s failed: %s\n", q, mode, budget.label,
                      result.status().ToString().c_str());
          ++failures;
          continue;
        }
        bench::TimingStats t = bench::TimeRepeated(
            [&] { (void)executor.Execute(*opt); }, opts.reps);
        uint64_t digest = ResultDigest(*result);
        bool match = digest == ref_digest;
        if (!match) ++failures;
        if (budget.bytes > 0 && result->metrics.spill_partitions <= 0) {
          std::printf("Q%-5d %s/%s did not spill under a finite budget\n",
                      q, mode, budget.label);
          ++failures;
        }
        std::printf("Q%-5d %-10s %-8s %12llu %12.2f %12lld %8s\n", q,
                    mode, budget.label,
                    static_cast<unsigned long long>(budget.bytes),
                    t.mean_ms,
                    static_cast<long long>(
                        result->metrics.spill_partitions),
                    match ? "OK" : "MISMATCH");
        bench::JsonRow jrow;
        jrow.Set("bench", "micro_spill")
            .Set("query", q)
            .Set("exec_mode", mode)
            .Set("budget", budget.label)
            .Set("budget_bytes",
                 static_cast<int64_t>(budget.bytes))
            .Set("build_bytes", build)
            .Set("scale_factor", config.scale_factor)
            .Set("mean_ms", t.mean_ms)
            .Set("stderr_ms", t.stderr_ms)
            .Set("rows", result->rows.size())
            .Set("spill_partitions", result->metrics.spill_partitions)
            .Set("spill_bytes", result->metrics.spill_bytes)
            .Set("result_digest", std::to_string(digest))
            .Set("digest_match", match);
        report->Add(jrow);
      }
    }
  }
  return failures;
}

// Plan-cache service bench (--plan-cache): N concurrent clients replay
// the workload through a QueryService. Reports the cache hit rate,
// client-observed p50/p99 latency, and the optimizer time a hit saves —
// with a cold-vs-cached decision check (digests and ship metrics must be
// identical) that CI's bench-smoke job asserts on.
int PlanCacheBench(const bench::BenchOptions& opts,
                   bench::JsonReport* report) {
  tpch::TpchConfig config;
  config.scale_factor = opts.tiny ? 0.005 : 0.05;
  auto catalog = tpch::BuildCatalog(config);
  CGQ_CHECK(catalog.ok());
  Engine engine(std::move(*catalog), NetworkModel::DefaultGeo(5));
  CGQ_CHECK(tpch::InstallUnrestrictedPolicies(&engine.policies()).ok());
  CGQ_CHECK(
      tpch::GenerateData(engine.catalog(), config, &engine.store()).ok());
  engine.set_exec_mode(opts.exec_mode == bench::ExecModeArg::kRow
                           ? ExecMode::kRow
                       : opts.exec_mode == bench::ExecModeArg::kVector
                           ? ExecMode::kVector
                           : ExecMode::kFragment);
  engine.default_exec_options().batch_size = opts.batch_size;
  engine.default_exec_options().threads = opts.threads;

  bench::PrintHeader("Plan cache: " + std::to_string(opts.clients) +
                     " concurrent clients, sf " +
                     std::to_string(config.scale_factor));

  std::vector<std::string> sqls;
  for (int q : tpch::QueryNumbers()) sqls.push_back(*tpch::Query(q));

  // Cold baseline: no cache installed, per-query optimizer time and
  // result digest.
  struct Cold {
    double opt_ms = 0;
    uint64_t digest = 0;
    int64_t ships = 0;
    int64_t rows_shipped = 0;
  };
  std::vector<Cold> cold(sqls.size());
  int failures = 0;
  for (size_t i = 0; i < sqls.size(); ++i) {
    for (int rep = 0; rep < opts.reps; ++rep) {
      auto r = engine.Run(sqls[i]);
      if (!r.ok()) {
        std::printf("cold run failed: %s\n", r.status().ToString().c_str());
        return failures + 1;
      }
      cold[i].opt_ms += r->opt_stats.total_ms;
      cold[i].digest = ResultDigest(*r);
      cold[i].ships = r->metrics.ships;
      cold[i].rows_shipped = r->metrics.rows_shipped;
    }
    cold[i].opt_ms /= opts.reps;
  }

  ServiceOptions sopts;
  sopts.max_inflight = opts.clients;
  sopts.queue_capacity = opts.clients * static_cast<int>(sqls.size()) + 16;
  QueryService service(&engine, sopts);

  // Warming pass fills the cache; the serial measured pass compares the
  // cached decisions against the cold baseline.
  {
    QueryService::Session session = service.OpenSession();
    for (const std::string& sql : sqls) {
      auto r = session.Run(sql);
      CGQ_CHECK(r.ok());
    }
  }
  std::printf("%-6s %14s %14s %10s %8s\n", "Query", "cold opt [ms]",
              "hit opt [ms]", "speedup", "match");
  double saved_ms_per_round = 0;
  double log_speedup_sum = 0;
  size_t speedup_count = 0;
  for (size_t i = 0; i < sqls.size(); ++i) {
    double warm_ms = 0;
    uint64_t warm_digest = 0;
    bool hit = true;
    bool match = true;
    for (int rep = 0; rep < opts.reps; ++rep) {
      auto r = engine.Run(sqls[i]);  // cache is installed on the engine
      if (!r.ok()) {
        std::printf("warm run failed: %s\n", r.status().ToString().c_str());
        return failures + 1;
      }
      hit = hit && r->opt_stats.cache_hit;
      warm_ms += r->opt_stats.total_ms;
      warm_digest = ResultDigest(*r);
      match = match && warm_digest == cold[i].digest &&
              r->metrics.ships == cold[i].ships &&
              r->metrics.rows_shipped == cold[i].rows_shipped;
    }
    warm_ms /= opts.reps;
    if (!hit || !match) ++failures;
    saved_ms_per_round += cold[i].opt_ms - warm_ms;
    double speedup = warm_ms > 0 ? cold[i].opt_ms / warm_ms : 0;
    if (speedup > 0) {
      log_speedup_sum += std::log(speedup);
      ++speedup_count;
    }
    std::printf("Q%-5d %14.3f %14.3f %9.1fx %8s\n",
                tpch::QueryNumbers()[i], cold[i].opt_ms, warm_ms, speedup,
                !match ? "MISMATCH" : (hit ? "yes" : "MISS"));
    bench::JsonRow row;
    row.Set("bench", "plan_cache")
        .Set("query", tpch::QueryNumbers()[i])
        .Set("cold_opt_ms", cold[i].opt_ms)
        .Set("cached_opt_ms", warm_ms)
        .Set("opt_speedup", speedup)
        .Set("cache_hit", hit)
        .Set("decisions_match", match)
        .Set("cold_digest", std::to_string(cold[i].digest))
        .Set("cached_digest", std::to_string(warm_digest))
        .Set("ships", cold[i].ships)
        .Set("rows_shipped", cold[i].rows_shipped);
    report->Add(row);
  }

  // Concurrent phase: clients replay the (now cached) workload; every
  // client-observed latency lands in one pool for the percentiles.
  PlanCacheStats before = service.plan_cache()->stats();
  std::mutex lat_mu;
  std::vector<double> latencies;
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(opts.clients));
  for (int c = 0; c < opts.clients; ++c) {
    clients.emplace_back([&] {
      QueryService::Session session = service.OpenSession();
      std::vector<double> local;
      for (int rep = 0; rep < opts.reps; ++rep) {
        for (const std::string& sql : sqls) {
          auto start = std::chrono::steady_clock::now();
          auto r = session.Run(sql);
          double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
          if (r.ok()) local.push_back(ms);
        }
      }
      std::lock_guard<std::mutex> lock(lat_mu);
      latencies.insert(latencies.end(), local.begin(), local.end());
    });
  }
  for (std::thread& t : clients) t.join();

  PlanCacheStats after = service.plan_cache()->stats();
  int64_t lookups = (after.hits - before.hits) +
                    (after.misses - before.misses) +
                    (after.invalidations - before.invalidations);
  double hit_rate =
      lookups > 0
          ? static_cast<double>(after.hits - before.hits) / lookups
          : 0;
  std::sort(latencies.begin(), latencies.end());
  auto percentile = [&](double p) {
    if (latencies.empty()) return 0.0;
    size_t idx = static_cast<size_t>(p * (latencies.size() - 1));
    return latencies[idx];
  };
  const size_t expected =
      sqls.size() * static_cast<size_t>(opts.reps) *
      static_cast<size_t>(opts.clients);
  if (latencies.size() != expected) ++failures;

  double geomean_speedup =
      speedup_count > 0
          ? std::exp(log_speedup_sum / static_cast<double>(speedup_count))
          : 0;
  std::printf(
      "\n%zu queries over %d clients: hit rate %.1f%%, p50 %.2f ms, "
      "p99 %.2f ms, optimizer time saved per workload round %.2f ms "
      "(geomean hit speedup %.1fx)\n",
      latencies.size(), opts.clients, 100 * hit_rate, percentile(0.5),
      percentile(0.99), saved_ms_per_round, geomean_speedup);
  bench::JsonRow summary;
  summary.Set("bench", "plan_cache_summary")
      .Set("clients", opts.clients)
      .Set("queries", latencies.size())
      .Set("hit_rate", hit_rate)
      .Set("p50_ms", percentile(0.5))
      .Set("p99_ms", percentile(0.99))
      .Set("optimizer_time_saved_ms", saved_ms_per_round)
      .Set("geomean_opt_speedup", geomean_speedup)
      .Set("cache_entries", after.entries)
      .Set("cache_bytes", after.bytes)
      .Set("revalidations", after.revalidations);
  report->Add(summary);
  return failures;
}

}  // namespace

// --listen=L[,L...]: act as a location server instead of benchmarking.
// Binds an ephemeral port, prints it, serves until stdin closes. Lets a
// multi-process deployment be assembled from this binary alone (the CI
// loopback job uses the dedicated cgq_sited binary instead).
int ListenMode(const bench::BenchOptions& opts) {
  net::SiteServer::Options sopts;
  std::stringstream locs(opts.listen_locations);
  std::string token;
  while (std::getline(locs, token, ',')) {
    sopts.locations.push_back(
        static_cast<LocationId>(std::strtoul(token.c_str(), nullptr, 10)));
  }
  if (sopts.locations.empty()) {
    std::fprintf(stderr, "--listen needs at least one location id\n");
    return 2;
  }
  net::SiteServer server(sopts);
  Status s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("listening on 127.0.0.1:%u locations=%s\n", server.port(),
              opts.listen_locations.c_str());
  std::fflush(stdout);
  // Serve until the parent closes our stdin (the loopback harness
  // contract; also makes Ctrl-D work interactively).
  std::string line;
  while (std::getline(std::cin, line)) {
  }
  server.Stop();
  return 0;
}

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::BenchOptions::Parse(argc, argv);
  if (!opts.listen_locations.empty()) return ListenMode(opts);
  bench::JsonReport report(opts.json_path);

  OptimizerMicro(opts, &report);
  int failures = ExecutionBench(opts, &report);
  failures += StorageBench(opts, &report);
  failures += SpillSweepBench(opts, &report);
  if (opts.plan_cache) failures += PlanCacheBench(opts, &report);

  if (!report.Flush()) return 1;
  return failures == 0 ? 0 : 1;
}
