// Google-benchmark micro benchmarks of the core components: policy
// evaluation (Algorithm 1), the implication test, memo exploration, and
// end-to-end optimization of selected queries.

#include <benchmark/benchmark.h>

#include "core/optimizer.h"
#include "core/policy_evaluator.h"
#include "expr/implication.h"
#include "net/network_model.h"
#include "plan/binder.h"
#include "plan/builder.h"
#include "plan/summary.h"
#include "sql/parser.h"
#include "tpch/tpch.h"

namespace cgq {
namespace {

struct Fixture {
  Fixture() {
    tpch::TpchConfig config;
    config.scale_factor = 10;
    catalog = std::make_unique<Catalog>(*tpch::BuildCatalog(config));
    policies = std::make_unique<PolicyCatalog>(catalog.get());
    (void)tpch::InstallPolicySet("CRA", policies.get());
    net = std::make_unique<NetworkModel>(NetworkModel::DefaultGeo(5));
  }
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<PolicyCatalog> policies;
  std::unique_ptr<NetworkModel> net;
};

Fixture& F() {
  static Fixture* f = new Fixture();
  return *f;
}

void BM_ImplicationTest(benchmark::State& state) {
  auto q = ParseQuery(
      "SELECT a FROM t WHERE size > 41 AND mkt = 'BUILDING' AND "
      "price BETWEEN 10 AND 20");
  auto e = ParseQuery(
      "SELECT a FROM t WHERE size > 40 OR ctype LIKE '%COPPER%'");
  std::vector<ExprPtr> premise = SplitConjuncts(q->where);
  std::vector<ExprPtr> conclusion = SplitConjuncts(e->where);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PredicateImplies(premise, conclusion));
  }
}
BENCHMARK(BM_ImplicationTest);

void BM_PolicyEvaluation(benchmark::State& state) {
  Fixture& f = F();
  auto ast = ParseQuery(
      "SELECT l.orderkey, SUM(l.extendedprice * (1 - l.discount)) "
      "FROM lineitem l WHERE l.shipdate > DATE '1995-06-01' "
      "GROUP BY l.orderkey");
  PlannerContext ctx(f.catalog.get());
  auto bound = BindQuery(*ast, &ctx);
  auto plan = BuildLogicalPlan(*bound, &ctx);
  QuerySummary summary = SummarizePlan(*(*plan).root);
  PolicyEvaluator evaluator(f.catalog.get(), f.policies.get());
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.Evaluate(summary, 3));
  }
}
BENCHMARK(BM_PolicyEvaluation);

void BM_OptimizeQuery(benchmark::State& state) {
  Fixture& f = F();
  int q = static_cast<int>(state.range(0));
  QueryOptimizer optimizer(f.catalog.get(), f.policies.get(), f.net.get(),
                           {});
  std::string sql = *tpch::Query(q);
  for (auto _ : state) {
    auto r = optimizer.Optimize(sql);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_OptimizeQuery)->Arg(2)->Arg(3)->Arg(5)->Arg(10);

void BM_OptimizeTraditional(benchmark::State& state) {
  Fixture& f = F();
  OptimizerOptions opts;
  opts.compliant = false;
  QueryOptimizer optimizer(f.catalog.get(), f.policies.get(), f.net.get(),
                           opts);
  std::string sql = *tpch::Query(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto r = optimizer.Optimize(sql);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_OptimizeTraditional)->Arg(2)->Arg(3)->Arg(5)->Arg(10);

}  // namespace
}  // namespace cgq

BENCHMARK_MAIN();
