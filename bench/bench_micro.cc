// Micro benchmarks of the core components: the implication test, policy
// evaluation (Algorithm 1), end-to-end optimization of selected queries,
// and row-vs-fragment execution of the multi-site TPC-H workload.
//
// The execution section runs every query under the selected backends
// (--exec-mode=row|fragment|both) and reports the fragment backend's
// speedup over the row interpreter at --threads workers, plus the ship
// metrics and a result digest so CI can assert that the two backends
// agree.

#include <cstdint>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/trace.h"
#include "core/optimizer.h"
#include "core/policy_evaluator.h"
#include "exec/executor.h"
#include "expr/implication.h"
#include "net/network_model.h"
#include "plan/binder.h"
#include "plan/builder.h"
#include "plan/summary.h"
#include "sql/parser.h"
#include "tpch/tpch.h"

using namespace cgq;  // NOLINT

namespace {

// FNV-1a over the full-precision serialization of the result rows, order
// included: equal digests mean byte-identical results.
uint64_t ResultDigest(const QueryResult& r) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](const std::string& s) {
    for (char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
  };
  for (const std::string& name : r.column_names) mix(name + ";");
  for (const Row& row : r.rows) {
    for (const Value& v : row) {
      if (v.is_null()) {
        mix("NULL|");
      } else if (v.is_double()) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g|", v.dbl());
        mix(buf);
      } else {
        mix(v.ToString() + "|");
      }
    }
    mix("\n");
  }
  return h;
}

void OptimizerMicro(const bench::BenchOptions& opts,
                    bench::JsonReport* report) {
  tpch::TpchConfig config;
  config.scale_factor = 10;  // stats only; no data generated
  auto catalog = tpch::BuildCatalog(config);
  CGQ_CHECK(catalog.ok());
  PolicyCatalog policies(&*catalog);
  CGQ_CHECK(tpch::InstallPolicySet("CRA", &policies).ok());
  NetworkModel net = NetworkModel::DefaultGeo(5);

  bench::PrintHeader("Optimizer micro benchmarks (mean over " +
                     std::to_string(opts.reps) + " reps)");

  auto record = [&](const std::string& name, const bench::TimingStats& t) {
    std::printf("%-28s %10.3f ms  (+/- %.3f)\n", name.c_str(), t.mean_ms,
                t.stderr_ms);
    bench::JsonRow row;
    row.Set("bench", "micro_optimizer")
        .Set("name", name)
        .Set("mean_ms", t.mean_ms)
        .Set("stderr_ms", t.stderr_ms);
    report->Add(row);
  };

  {
    auto q = ParseQuery(
        "SELECT a FROM t WHERE size > 41 AND mkt = 'BUILDING' AND "
        "price BETWEEN 10 AND 20");
    auto e = ParseQuery(
        "SELECT a FROM t WHERE size > 40 OR ctype LIKE '%COPPER%'");
    std::vector<ExprPtr> premise = SplitConjuncts(q->where);
    std::vector<ExprPtr> conclusion = SplitConjuncts(e->where);
    record("implication_test",
           bench::TimeRepeated(
               [&] {
                 for (int i = 0; i < 1000; ++i) {
                   (void)PredicateImplies(premise, conclusion);
                 }
               },
               opts.reps));
  }

  {
    auto ast = ParseQuery(
        "SELECT l.orderkey, SUM(l.extendedprice * (1 - l.discount)) "
        "FROM lineitem l WHERE l.shipdate > DATE '1995-06-01' "
        "GROUP BY l.orderkey");
    PlannerContext ctx(&*catalog);
    auto bound = BindQuery(*ast, &ctx);
    auto plan = BuildLogicalPlan(*bound, &ctx);
    QuerySummary summary = SummarizePlan(*(*plan).root);
    PolicyEvaluator evaluator(&*catalog, &policies);
    record("policy_evaluation",
           bench::TimeRepeated(
               [&] {
                 for (int i = 0; i < 100; ++i) {
                   (void)evaluator.Evaluate(summary, 3);
                 }
               },
               opts.reps));
  }

  for (int q : {2, 3, 5, 10}) {
    QueryOptimizer optimizer(&*catalog, &policies, &net, {});
    std::string sql = *tpch::Query(q);
    record("optimize_q" + std::to_string(q),
           bench::TimeRepeated([&] { (void)optimizer.Optimize(sql); },
                               opts.reps));
  }
}

int ExecutionBench(const bench::BenchOptions& opts,
                   bench::JsonReport* report) {
  tpch::TpchConfig config;
  config.scale_factor = opts.tiny ? 0.005 : 0.05;
  auto catalog = tpch::BuildCatalog(config);
  CGQ_CHECK(catalog.ok());
  NetworkModel net = NetworkModel::DefaultGeo(5);
  PolicyCatalog policies(&*catalog);
  CGQ_CHECK(tpch::InstallUnrestrictedPolicies(&policies).ok());
  TableStore store;
  CGQ_CHECK(tpch::GenerateData(*catalog, config, &store).ok());

  // The lossy profile drops 5% of batches on every cross-site link; the
  // retry budget makes exhaustion (0.05^9) impossible in practice, so
  // both backends recover every run and their digests must still agree.
  const bool lossy =
      opts.fault_profile == bench::FaultProfileArg::kLossy;
  if (lossy) {
    net.ApplyLossyProfile(/*drop_probability=*/0.05,
                          /*extra_latency_ms=*/2.0);
  }

  bench::PrintHeader(
      "Execution: row interpreter vs fragmented runtime (sf " +
      std::to_string(config.scale_factor) + ", " +
      std::to_string(opts.threads) + " threads, batch " +
      std::to_string(opts.batch_size) + ", faults " +
      bench::FaultProfileArgToString(opts.fault_profile) + ")");
  std::printf("%-6s %-10s %12s %10s %8s %14s %10s\n", "Query", "mode",
              "mean [ms]", "rows", "ships", "bytes shipped", "speedup");

  int failures = 0;
  std::vector<double> speedups;
  for (int q : tpch::QueryNumbers()) {
    QueryOptimizer optimizer(&*catalog, &policies, &net, {});
    auto opt = optimizer.Optimize(*tpch::Query(q));
    if (!opt.ok()) {
      std::printf("Q%-5d optimization failed: %s\n", q,
                  opt.status().ToString().c_str());
      ++failures;
      continue;
    }

    double row_mean = 0;
    uint64_t row_digest = 0;
    for (const char* mode : opts.ExecModes()) {
      ExecutorOptions eopts;
      eopts.mode = std::string(mode) == "row" ? ExecMode::kRow
                                              : ExecMode::kFragment;
      eopts.batch_size = opts.batch_size;
      eopts.threads = opts.threads;
      if (lossy) {
        eopts.retry.max_retries = 8;
        eopts.retry.fault_seed = opts.fault_seed;
      }
      Executor executor(&store, &net, eopts);

      auto result = executor.Execute(*opt);
      if (!result.ok()) {
        std::printf("Q%-5d %s execution failed: %s\n", q, mode,
                    result.status().ToString().c_str());
        ++failures;
        continue;
      }
      bench::TimingStats t = bench::TimeRepeated(
          [&] { (void)executor.Execute(*opt); }, opts.reps);

      uint64_t digest = ResultDigest(*result);
      double speedup = 0;
      if (eopts.mode == ExecMode::kRow) {
        row_mean = t.mean_ms;
        row_digest = digest;
      } else if (row_mean > 0) {
        speedup = row_mean / t.mean_ms;
        if (row_digest != 0 && digest != row_digest) {
          std::printf("Q%-5d BACKEND MISMATCH: fragment result differs "
                      "from row result\n", q);
          ++failures;
        }
      }

      char speedup_str[16] = "-";
      if (speedup > 0) {
        std::snprintf(speedup_str, sizeof(speedup_str), "%.2fx", speedup);
      }
      std::printf("Q%-5d %-10s %12.2f %10zu %8lld %14.0f %10s\n", q, mode,
                  t.mean_ms, result->rows.size(),
                  static_cast<long long>(result->metrics.ships),
                  result->metrics.bytes_shipped, speedup_str);

      bench::JsonRow jrow;
      jrow.Set("bench", "micro_exec")
          .Set("query", q)
          .Set("exec_mode", mode)
          .Set("threads", opts.threads)
          .Set("batch_size", opts.batch_size)
          .Set("scale_factor", config.scale_factor)
          .Set("mean_ms", t.mean_ms)
          .Set("stderr_ms", t.stderr_ms)
          .Set("rows", result->rows.size())
          .Set("ships", result->metrics.ships)
          .Set("rows_shipped", result->metrics.rows_shipped)
          .Set("bytes_shipped", result->metrics.bytes_shipped)
          .Set("result_digest", std::to_string(digest))
          .Set("fault_profile",
               bench::FaultProfileArgToString(opts.fault_profile))
          .Set("send_retries", result->metrics.send_retries)
          .Set("dropped_batches", result->metrics.dropped_batches)
          .Set("timeouts", result->metrics.send_timeouts +
                               result->metrics.recv_timeouts)
          .Set("fragment_restarts", result->metrics.fragment_restarts);
      bench::SetPhaseTimings(jrow, result->opt_stats, result->metrics);
      if (speedup > 0) {
        jrow.Set("speedup", speedup);
        speedups.push_back(speedup);
      }
      report->Add(jrow);
    }
  }

  if (!speedups.empty()) {
    double log_sum = 0;
    for (double s : speedups) log_sum += std::log(s);
    double geomean = std::exp(log_sum / static_cast<double>(speedups.size()));
    std::printf("\ngeomean fragment speedup over %zu queries: %.2fx\n",
                speedups.size(), geomean);
    bench::JsonRow summary;
    summary.Set("bench", "micro_exec_summary")
        .Set("threads", opts.threads)
        .Set("batch_size", opts.batch_size)
        .Set("queries", speedups.size())
        .Set("geomean_speedup", geomean);
    report->Add(summary);
  }

  // One representative Chrome trace (Q3, fragment backend) for tooling
  // and the CI artifact check. With CGQ_TRACING=OFF the spans compile
  // out and the file still holds valid (empty) trace_event JSON.
  if (!opts.trace_out.empty()) {
    const std::string sql = *tpch::Query(3);
    TraceSession session(sql, TraceClock::kDeterministic);
    {
      ScopedTraceContext ctx(&session);
      TraceSpan root("query");
      QueryOptimizer optimizer(&*catalog, &policies, &net, {});
      auto opt = optimizer.Optimize(sql);
      if (!opt.ok()) {
        root.AddArg("status", opt.status().ToString());
      } else {
        ExecutorOptions eopts;
        eopts.mode = ExecMode::kFragment;
        eopts.batch_size = opts.batch_size;
        eopts.threads = opts.threads;
        Executor executor(&store, &net, eopts);
        auto result = executor.Execute(*opt);
        if (result.ok()) {
          root.AddArg("rows", static_cast<int64_t>(result->rows.size()));
        }
      }
    }
    std::string json = session.ToChromeJson();
    std::FILE* f = std::fopen(opts.trace_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", opts.trace_out.c_str());
      ++failures;
    } else {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("\ntrace (%zu spans) written to %s\n",
                  session.span_count(), opts.trace_out.c_str());
    }
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::BenchOptions::Parse(argc, argv);
  bench::JsonReport report(opts.json_path);

  OptimizerMicro(opts, &report);
  int failures = ExecutionBench(opts, &report);

  if (!report.Flush()) return 1;
  return failures == 0 ? 0 : 1;
}
