// Figure 6(a): effectiveness on 400 ad-hoc queries.
//
// Four groups of 100 generated PK-FK join queries; each group runs under
// one generated policy-expression set: T(8), C(50), CR(50), CR+A(50).
// Reported: the fraction of queries for which each optimizer produced a
// compliant plan. Expected shape: compliant optimizer = 1.0 everywhere;
// traditional ~0.3-0.6.

#include <cstdio>

#include "bench_util.h"
#include "core/optimizer.h"
#include "net/network_model.h"
#include "tpch/tpch.h"
#include "workload/policy_generator.h"
#include "workload/query_generator.h"

using namespace cgq;  // NOLINT

int main() {
  tpch::TpchConfig config;
  config.scale_factor = 10;
  auto catalog = tpch::BuildCatalog(config);
  if (!catalog.ok()) return 1;
  NetworkModel net = NetworkModel::DefaultGeo(5);
  WorkloadProperties properties = TpchWorkloadProperties();

  struct SetSpec {
    const char* templ;
    size_t count;
  };
  const SetSpec sets[] = {{"T", 8}, {"C", 50}, {"CR", 50}, {"CRA", 50}};
  const int kQueriesPerGroup = 100;

  bench::PrintHeader(
      "Fig 6(a): fraction of ad-hoc queries with a compliant QEP "
      "(400 queries, 100 per expression set)");
  std::printf("%-14s %-22s %-22s\n", "Set(#expr)", "Traditional QO",
              "Compliant QO");

  int bug = 0;
  for (const SetSpec& spec : sets) {
    PolicyGeneratorConfig pconfig;
    pconfig.template_name = spec.templ;
    pconfig.count = spec.count;
    pconfig.seed = 1234;
    PolicyExpressionGenerator pgen(&*catalog, &properties, pconfig);
    PolicyCatalog policies(&*catalog);
    if (!pgen.InstallInto(&policies).ok()) return 1;

    QueryGeneratorConfig qconfig;
    qconfig.seed = 42;
    AdhocQueryGenerator qgen(&*catalog, &properties, qconfig);

    OptimizerOptions trad_opts;
    trad_opts.compliant = false;
    QueryOptimizer traditional(&*catalog, &policies, &net, trad_opts);
    QueryOptimizer compliant(&*catalog, &policies, &net, {});

    int trad_ok = 0, comp_ok = 0;
    for (int i = 0; i < kQueriesPerGroup; ++i) {
      std::string sql = qgen.Next();
      auto t = traditional.Optimize(sql);
      trad_ok += (t.ok() && t->compliant) ? 1 : 0;
      auto c = compliant.Optimize(sql);
      if (c.ok() && c->compliant) {
        ++comp_ok;
      } else {
        ++bug;
        std::printf("  !! compliant optimizer failed: %s\n", sql.c_str());
      }
    }
    char label[32];
    std::snprintf(label, sizeof(label), "%s(%zu)", spec.templ, spec.count);
    std::printf("%-14s %-22.2f %-22.2f\n", label,
                trad_ok / static_cast<double>(kQueriesPerGroup),
                comp_ok / static_cast<double>(kQueriesPerGroup));
  }
  std::printf("\n(the generated sets are feasible by construction, so the "
              "compliant fractions must be 1.00)\n");
  return bug == 0 ? 0 : 1;
}
