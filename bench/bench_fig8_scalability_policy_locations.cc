// Figure 8: impact of the number of `to` locations per policy expression.
//
// Section 1 reproduces the paper's shape: a 20-location deployment; eight
// expressions of the form
//   ship * from t to l1, ..., ln
// with n in {3, 5, 10, 15, 20}. Reported: optimization time of Q2 and Q3
// (the most and least join-heavy queries) plus the site-selection share.
// Expected shape: time grows mildly with n (set operations while deriving
// traits), more pronounced for Q2; site selection is a small fraction.
//
// Section 2 keeps the 20-location deployment and the maximal
// locations-per-expression setting but scales the CR+A policy count far
// up, comparing the single-threaded uncached evaluator against the
// parallel evaluator with the implication-result cache and asserting
// identical compliance decisions.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/optimizer.h"
#include "expr/implication.h"
#include "net/network_model.h"
#include "tpch/tpch.h"
#include "workload/policy_generator.h"

using namespace cgq;  // NOLINT

namespace {

struct Decision {
  LocationId result_location = 0;
  bool compliant = false;
  double phase1_cost = 0;
  double comm_cost_ms = 0;

  bool operator==(const Decision&) const = default;
};

Decision DecisionOf(const OptimizedQuery& q) {
  return Decision{q.result_location, q.compliant, q.phase1_cost,
                  q.comm_cost_ms};
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::BenchOptions::Parse(argc, argv);
  bench::JsonReport report(opts.json_path);

  tpch::TpchConfig config;
  config.scale_factor = 10;
  config.num_locations = 20;
  auto catalog = tpch::BuildCatalog(config);
  if (!catalog.ok()) return 1;
  NetworkModel net = NetworkModel::DefaultGeo(20);
  WorkloadProperties properties = TpchWorkloadProperties();

  // --- Section 1: the paper's figure -------------------------------------
  std::vector<size_t> ns = {3, 5, 10, 15, 20};
  if (opts.tiny) ns = {3, 20};
  const int queries[] = {2, 3};
  const char* tables[] = {"nation",   "region",   "customer", "orders",
                          "supplier", "partsupp", "part",     "lineitem"};

  // Catalogs are built once per n, up front — never inside a timed region
  // and never rebuilt per query. Construction itself is reported as the
  // AddPolicy throughput row below.
  std::vector<std::unique_ptr<PolicyCatalog>> catalogs;
  bench::PrintHeader(
      "Fig 8 setup: AddPolicy throughput (8 expressions per catalog)");
  std::printf("%-8s %-14s %-16s\n", "n", "build [ms]", "policies/sec");
  for (size_t n : ns) {
    std::string to_list;
    for (size_t i = 1; i <= n; ++i) {
      if (i > 1) to_list += ", ";
      to_list += "l" + std::to_string(i);
    }
    auto policies = std::make_unique<PolicyCatalog>(&*catalog);
    size_t installed = 0;
    auto t0 = std::chrono::steady_clock::now();
    for (const char* t : tables) {
      auto def = catalog->GetTable(t);
      if (!def.ok()) continue;
      std::string home = catalog->locations().GetName((*def)->home());
      if (!policies
               ->AddPolicyText(home, std::string("ship * from ") + t +
                                         " to " + to_list)
               .ok()) {
        return 1;
      }
      ++installed;
    }
    auto t1 = std::chrono::steady_clock::now();
    double build_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    double rate = build_ms > 0
                      ? 1000.0 * static_cast<double>(installed) / build_ms
                      : 0;
    std::printf("%-8zu %-14.3f %-16.0f\n", n, build_ms, rate);
    report.Add(bench::JsonRow()
                   .Set("bench", "fig8")
                   .Set("section", "addpolicy")
                   .Set("locations_per_expr", n)
                   .Set("num_expressions", installed)
                   .Set("build_ms", build_ms)
                   .Set("policies_per_sec", rate));
    catalogs.push_back(std::move(policies));
  }

  for (int q : queries) {
    bench::PrintHeader("Fig 8 (Q" + std::to_string(q) +
                       "): optimization time vs #locations per policy "
                       "expression (20-site deployment)");
    std::printf("%-8s %-22s %-12s\n", "n", "Compliant QO [ms]",
                "site [ms]");
    std::string sql = *tpch::Query(q);
    for (size_t i = 0; i < ns.size(); ++i) {
      size_t n = ns[i];
      QueryOptimizer optimizer(&*catalog, catalogs[i].get(), &net, {});
      auto probe = optimizer.Optimize(sql);
      double site = probe.ok() ? probe->stats.site_ms : -1;
      bench::TimingStats t = bench::TimeRepeated(
          [&] { (void)optimizer.Optimize(sql); }, opts.reps);
      std::printf("%-8zu %10.2f +- %-8.2f %-12.2f\n", n, t.mean_ms,
                  t.stderr_ms, site);
      report.Add(bench::JsonRow()
                     .Set("bench", "fig8")
                     .Set("section", "paper")
                     .Set("query", q)
                     .Set("locations_per_expr", n)
                     .Set("mean_ms", t.mean_ms)
                     .Set("stderr_ms", t.stderr_ms)
                     .Set("site_ms", site));
    }
  }

  // --- Section 2: parallel + cached evaluator speedup --------------------
  std::vector<size_t> counts = {256, 1024, 4096};
  std::vector<int> stress_queries = {2, 6};
  if (opts.tiny) counts = {64, 128};

  bool decisions_equal = true;
  double largest_scale_speedup = 0;
  for (int q : stress_queries) {
    bench::PrintHeader(
        "Fig 8 stress (Q" + std::to_string(q) +
        ", 20 locations/expr): 1 thread / no cache  vs  " +
        std::to_string(opts.threads) + " threads / implication cache");
    std::printf("%-8s %-14s %-14s %-9s %-9s %-8s\n", "#expr", "base [ms]",
                "opt [ms]", "speedup", "hitrate", "same");
    std::string sql = *tpch::Query(q);
    for (size_t count : counts) {
      PolicyGeneratorConfig pconfig;
      pconfig.template_name = "CRA";
      pconfig.count = count;
      pconfig.seed = 7;
      pconfig.locations_per_expr = 20;
      PolicyExpressionGenerator pgen(&*catalog, &properties, pconfig);
      PolicyCatalog policies(&*catalog);
      if (!pgen.InstallInto(&policies).ok()) return 1;

      OptimizerOptions base_opts;
      base_opts.threads = 1;
      base_opts.implication_cache = false;
      QueryOptimizer base(&*catalog, &policies, &net, base_opts);

      OptimizerOptions par_opts;
      par_opts.threads = opts.threads;
      par_opts.implication_cache = true;
      QueryOptimizer par(&*catalog, &policies, &net, par_opts);

      auto bres = base.Optimize(sql);
      auto pres = par.Optimize(sql);
      if (!bres.ok() || !pres.ok()) return 1;
      bool same = DecisionOf(*bres) == DecisionOf(*pres);
      decisions_equal &= same;

      bench::TimingStats tb = bench::TimeRepeated(
          [&] { (void)base.Optimize(sql); }, opts.reps);
      bench::TimingStats tp = bench::TimeRepeated(
          [&] { (void)par.Optimize(sql); }, opts.reps);
      auto probe = par.Optimize(sql);
      const PolicyEvalStats& st = probe->stats.policy;
      double hits = static_cast<double>(st.implication_cache_hits);
      double total = hits + static_cast<double>(st.implication_cache_misses);
      double hit_rate = total > 0 ? hits / total : 0;
      double speedup = tp.min_ms > 0 ? tb.min_ms / tp.min_ms : 0;
      if (q == stress_queries.back() && count == counts.back()) {
        largest_scale_speedup = speedup;
      }
      std::printf("%-8zu %-14.2f %-14.2f %-9.2f %-9.1f%% %-8s\n", count,
                  tb.min_ms, tp.min_ms, speedup, 100.0 * hit_rate,
                  same ? "yes" : "NO");
      report.Add(bench::JsonRow()
                     .Set("bench", "fig8")
                     .Set("section", "stress")
                     .Set("query", q)
                     .Set("num_expressions", count)
                     .Set("threads", opts.threads)
                     .Set("base_ms", tb.min_ms)
                     .Set("optimized_ms", tp.min_ms)
                     .Set("speedup", speedup)
                     .Set("cache_hit_rate", hit_rate)
                     .Set("decisions_equal", same));
    }
  }

  std::printf("\nlargest-scale speedup: %.2fx (Q%d, %zu expressions); "
              "decisions identical: %s\n",
              largest_scale_speedup, stress_queries.back(), counts.back(),
              decisions_equal ? "yes" : "NO");

  if (!report.Flush()) return 1;
  return decisions_equal ? 0 : 1;
}
