// Figure 8: impact of the number of `to` locations per policy expression.
//
// A 20-location deployment; eight expressions of the form
//   ship * from t to l1, ..., ln
// with n in {3, 5, 10, 15, 20}. Reported: optimization time of Q2 and Q3
// (the most and least join-heavy queries) plus the site-selection share.
// Expected shape: time grows mildly with n (set operations while deriving
// traits), more pronounced for Q2; site selection is a small fraction.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/optimizer.h"
#include "net/network_model.h"
#include "tpch/tpch.h"

using namespace cgq;  // NOLINT

int main() {
  tpch::TpchConfig config;
  config.scale_factor = 10;
  config.num_locations = 20;
  auto catalog = tpch::BuildCatalog(config);
  if (!catalog.ok()) return 1;
  NetworkModel net = NetworkModel::DefaultGeo(20);

  const size_t ns[] = {3, 5, 10, 15, 20};
  const int queries[] = {2, 3};
  const char* tables[] = {"nation", "region",   "customer", "orders",
                          "supplier", "partsupp", "part",     "lineitem"};

  for (int q : queries) {
    bench::PrintHeader("Fig 8 (Q" + std::to_string(q) +
                       "): optimization time vs #locations per policy "
                       "expression (20-site deployment)");
    std::printf("%-8s %-22s %-12s\n", "n", "Compliant QO [ms]",
                "site [ms]");
    std::string sql = *tpch::Query(q);
    for (size_t n : ns) {
      PolicyCatalog policies(&*catalog);
      std::string to_list;
      for (size_t i = 1; i <= n; ++i) {
        if (i > 1) to_list += ", ";
        to_list += "l" + std::to_string(i);
      }
      bool ok = true;
      for (const char* t : tables) {
        auto def = catalog->GetTable(t);
        if (!def.ok()) continue;
        std::string home =
            catalog->locations().GetName((*def)->home());
        ok &= policies
                  .AddPolicyText(home, std::string("ship * from ") + t +
                                           " to " + to_list)
                  .ok();
      }
      if (!ok) return 1;

      QueryOptimizer optimizer(&*catalog, &policies, &net, {});
      auto probe = optimizer.Optimize(sql);
      double site = probe.ok() ? probe->stats.site_ms : -1;
      bench::TimingStats t =
          bench::TimeRepeated([&] { (void)optimizer.Optimize(sql); });
      std::printf("%-8zu %10.2f +- %-8.2f %-12.2f\n", n, t.mean_ms,
                  t.stderr_ms, site);
    }
  }
  return 0;
}
