#ifndef CGQ_BENCH_BENCH_UTIL_H_
#define CGQ_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace cgq {
namespace bench {

struct TimingStats {
  double mean_ms = 0;
  double stderr_ms = 0;
};

/// Runs `fn` `reps` times (default 7, as in the paper) and reports the mean
/// and standard error in milliseconds.
inline TimingStats TimeRepeated(const std::function<void()>& fn,
                                int reps = 7) {
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    auto start = std::chrono::steady_clock::now();
    fn();
    samples.push_back(std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count());
  }
  TimingStats out;
  for (double s : samples) out.mean_ms += s;
  out.mean_ms /= reps;
  double var = 0;
  for (double s : samples) var += (s - out.mean_ms) * (s - out.mean_ms);
  if (reps > 1) {
    out.stderr_ms = std::sqrt(var / (reps - 1)) / std::sqrt(reps);
  }
  return out;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace bench
}  // namespace cgq

#endif  // CGQ_BENCH_BENCH_UTIL_H_
