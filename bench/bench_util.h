#ifndef CGQ_BENCH_BENCH_UTIL_H_
#define CGQ_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

namespace cgq {
namespace bench {

struct TimingStats {
  double mean_ms = 0;
  double stderr_ms = 0;
  double min_ms = 0;
};

/// Runs `fn` `reps` times (default 7, as in the paper) and reports the mean
/// and standard error in milliseconds.
inline TimingStats TimeRepeated(const std::function<void()>& fn,
                                int reps = 7) {
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    auto start = std::chrono::steady_clock::now();
    fn();
    samples.push_back(std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count());
  }
  TimingStats out;
  out.min_ms = samples.empty() ? 0 : samples[0];
  for (double s : samples) {
    out.mean_ms += s;
    if (s < out.min_ms) out.min_ms = s;
  }
  out.mean_ms /= reps;
  double var = 0;
  for (double s : samples) var += (s - out.mean_ms) * (s - out.mean_ms);
  if (reps > 1) {
    out.stderr_ms = std::sqrt(var / (reps - 1)) / std::sqrt(reps);
  }
  return out;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

/// Which executor backends an execution bench measures. `kBoth` means
/// every *in-process* backend (row, fragment and vector); the
/// distributed backend is opt-in (it needs servers — a --connect hosts
/// file or the bench's own loopback deployment).
enum class ExecModeArg { kRow, kFragment, kVector, kDistributed, kBoth };

inline const char* ExecModeArgToString(ExecModeArg m) {
  switch (m) {
    case ExecModeArg::kRow:
      return "row";
    case ExecModeArg::kFragment:
      return "fragment";
    case ExecModeArg::kVector:
      return "vector";
    case ExecModeArg::kDistributed:
      return "distributed";
    case ExecModeArg::kBoth:
      return "both";
  }
  return "?";
}

/// Injected-fault profile for execution benches: `none` runs on healthy
/// links; `lossy` drops a small fraction of batches on every cross-site
/// link (plus a little extra latency), with retries sized so both
/// backends always recover — results stay byte-identical while the
/// recovery counters show the reattempted traffic.
enum class FaultProfileArg { kNone, kLossy };

inline const char* FaultProfileArgToString(FaultProfileArg p) {
  return p == FaultProfileArg::kLossy ? "lossy" : "none";
}

/// Shared bench command line:
///   --threads=N        pool width for the parallel configuration (default 4)
///   --reps=N           timed repetitions per cell (default 7)
///   --tiny             CI smoke mode: smallest scales only, fewer reps
///   --json=PATH        append one JSON object per result row to PATH
///   --exec-mode=M      row | fragment | vector | distributed | both
///                      (default both = the in-process backends)
///   --connect=PATH     hosts file (host:port loc[,loc] lines) for
///                      --exec-mode=distributed; without it the bench
///                      deploys its own loopback servers
///   --listen=L[,L...]  run as a location server for the given location
///                      ids instead of benchmarking (ephemeral port,
///                      printed on stdout; exits on stdin EOF)
///   --batch-size=N     rows per batch / selection-vector chunk size
///   --storage=S        memory | disk (default memory): where the bench
///                      store keeps its fragments. disk routes every
///                      scan through the per-location storage engine
///                      (checksummed blocks under a temp dir)
///   --fault-profile=P  none | lossy (default none)
///   --fault-seed=N     seed of the deterministic fault schedule
///   --trace-out=PATH   write one Chrome trace_event JSON file to PATH
///   --plan-cache       also run the plan-cache service bench (bench_micro)
///   --clients=N        concurrent service clients for --plan-cache (default 4)
struct BenchOptions {
  int threads = 4;
  int reps = 7;
  bool tiny = false;
  std::string json_path;
  ExecModeArg exec_mode = ExecModeArg::kBoth;
  std::string connect_hosts;
  std::string listen_locations;
  int batch_size = 1024;
  std::string storage = "memory";
  FaultProfileArg fault_profile = FaultProfileArg::kNone;
  uint64_t fault_seed = 20260807;
  std::string trace_out;
  bool plan_cache = false;
  int clients = 4;

  static BenchOptions Parse(int argc, char** argv) {
    BenchOptions o;
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strncmp(a, "--threads=", 10) == 0) {
        o.threads = std::atoi(a + 10);
      } else if (std::strncmp(a, "--reps=", 7) == 0) {
        o.reps = std::atoi(a + 7);
      } else if (std::strcmp(a, "--tiny") == 0) {
        o.tiny = true;
        o.reps = 3;
      } else if (std::strncmp(a, "--json=", 7) == 0) {
        o.json_path = a + 7;
      } else if (std::strncmp(a, "--exec-mode=", 12) == 0) {
        const char* m = a + 12;
        if (std::strcmp(m, "row") == 0) {
          o.exec_mode = ExecModeArg::kRow;
        } else if (std::strcmp(m, "fragment") == 0) {
          o.exec_mode = ExecModeArg::kFragment;
        } else if (std::strcmp(m, "vector") == 0) {
          o.exec_mode = ExecModeArg::kVector;
        } else if (std::strcmp(m, "distributed") == 0) {
          o.exec_mode = ExecModeArg::kDistributed;
        } else if (std::strcmp(m, "both") == 0) {
          o.exec_mode = ExecModeArg::kBoth;
        } else {
          std::fprintf(
              stderr,
              "bad --exec-mode '%s' "
              "(row|fragment|vector|distributed|both)\n",
              m);
          std::exit(2);
        }
      } else if (std::strncmp(a, "--connect=", 10) == 0) {
        o.connect_hosts = a + 10;
      } else if (std::strncmp(a, "--listen=", 9) == 0) {
        o.listen_locations = a + 9;
      } else if (std::strncmp(a, "--batch-size=", 13) == 0) {
        o.batch_size = std::atoi(a + 13);
      } else if (std::strncmp(a, "--storage=", 10) == 0) {
        o.storage = a + 10;
        if (o.storage != "memory" && o.storage != "disk") {
          std::fprintf(stderr, "bad --storage '%s' (memory|disk)\n",
                       o.storage.c_str());
          std::exit(2);
        }
      } else if (std::strncmp(a, "--fault-profile=", 16) == 0) {
        const char* p = a + 16;
        if (std::strcmp(p, "none") == 0) {
          o.fault_profile = FaultProfileArg::kNone;
        } else if (std::strcmp(p, "lossy") == 0) {
          o.fault_profile = FaultProfileArg::kLossy;
        } else {
          std::fprintf(stderr, "bad --fault-profile '%s' (none|lossy)\n",
                       p);
          std::exit(2);
        }
      } else if (std::strncmp(a, "--fault-seed=", 13) == 0) {
        o.fault_seed = std::strtoull(a + 13, nullptr, 10);
      } else if (std::strncmp(a, "--trace-out=", 12) == 0) {
        o.trace_out = a + 12;
      } else if (std::strcmp(a, "--plan-cache") == 0) {
        o.plan_cache = true;
      } else if (std::strncmp(a, "--clients=", 10) == 0) {
        o.clients = std::atoi(a + 10);
      } else {
        std::fprintf(stderr,
                     "unknown argument '%s' "
                     "(--threads=N --reps=N --tiny --json=PATH "
                     "--exec-mode=row|fragment|vector|distributed|both "
                     "--connect=PATH --listen=L[,L] --batch-size=N "
                     "--storage=memory|disk "
                     "--fault-profile=none|lossy --fault-seed=N "
                     "--trace-out=PATH --plan-cache --clients=N)\n",
                     a);
        std::exit(2);
      }
    }
    if (o.threads < 1) o.threads = 1;
    if (o.reps < 1) o.reps = 1;
    if (o.batch_size < 1) o.batch_size = 1;
    if (o.clients < 1) o.clients = 1;
    return o;
  }

  /// The ExecModeArg expanded to concrete backends.
  std::vector<const char*> ExecModes() const {
    switch (exec_mode) {
      case ExecModeArg::kRow:
        return {"row"};
      case ExecModeArg::kFragment:
        return {"fragment"};
      case ExecModeArg::kVector:
        return {"vector"};
      case ExecModeArg::kDistributed:
        return {"distributed"};
      case ExecModeArg::kBoth:
        // Deliberately excludes "distributed": the in-process trio is
        // what the default bench (and the checked-in BENCH_micro.json
        // baseline) covers; distributed runs land in their own JSON.
        return {"row", "fragment", "vector"};
    }
    return {};
  }
};

class JsonRow;

/// Adds the per-phase timing breakdown of one optimized + executed query
/// to a result row (alongside, never instead of, the aggregate fields a
/// bench already emits). `opt` is an OptimizationStats, `metrics` an
/// ExecMetrics; templated so this header stays free of engine includes.
template <typename Row, typename OptStats, typename Metrics>
inline void SetPhaseTimings(Row& row, const OptStats& opt,
                            const Metrics& metrics) {
  row.Set("opt_prepare_ms", opt.prepare_ms)
      .Set("opt_explore_ms", opt.explore_ms)
      .Set("opt_annotate_ms", opt.annotate_ms)
      .Set("opt_site_ms", opt.site_ms)
      .Set("opt_total_ms", opt.total_ms)
      .Set("exec_wall_ms", metrics.exec_wall_ms)
      .Set("network_ms", metrics.network_ms);
}

/// Builds one flat JSON object ({"k": v, ...}); values typed per setter.
class JsonRow {
 public:
  JsonRow& Set(const std::string& key, const std::string& value) {
    return Raw(key, "\"" + Escaped(value) + "\"");
  }
  JsonRow& Set(const std::string& key, const char* value) {
    return Set(key, std::string(value));
  }
  JsonRow& Set(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return Raw(key, buf);
  }
  JsonRow& Set(const std::string& key, int64_t value) {
    return Raw(key, std::to_string(value));
  }
  JsonRow& Set(const std::string& key, size_t value) {
    return Raw(key, std::to_string(value));
  }
  JsonRow& Set(const std::string& key, int value) {
    return Raw(key, std::to_string(value));
  }
  JsonRow& Set(const std::string& key, bool value) {
    return Raw(key, value ? "true" : "false");
  }

  std::string ToString() const { return "{" + body_ + "}"; }

 private:
  JsonRow& Raw(const std::string& key, const std::string& value) {
    if (!body_.empty()) body_ += ", ";
    body_ += "\"" + Escaped(key) + "\": " + value;
    return *this;
  }
  static std::string Escaped(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }
  std::string body_;
};

/// Collects rows and writes them as a JSON array on Flush (no-op when the
/// path is empty, i.e. --json was not given).
class JsonReport {
 public:
  explicit JsonReport(std::string path) : path_(std::move(path)) {}

  void Add(const JsonRow& row) { rows_.push_back(row.ToString()); }

  /// Returns false when the file could not be written.
  bool Flush() const {
    if (path_.empty()) return true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      return false;
    }
    std::fprintf(f, "[\n");
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "  %s%s\n", rows_[i].c_str(),
                   i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    return true;
  }

 private:
  std::string path_;
  std::vector<std::string> rows_;
};

}  // namespace bench
}  // namespace cgq

#endif  // CGQ_BENCH_BENCH_UTIL_H_
