// Figure 6(b)-(f): optimization-time overhead of the compliance-based
// optimizer vs the traditional cost-based optimizer, on the six TPC-H
// queries:
//   (b) minimal overhead — unrestricted `ship * from t to *` policies;
//   (c) set T (8 whole-table expressions);
//   (d) set C (10 column expressions);
//   (e) set CR (10 column+row expressions);
//   (f) set CR+A (10 column+row+aggregate expressions).
// Each measurement is the mean of 7 runs with the standard error, as in
// the paper.

#include <cstdio>
#include <functional>

#include "bench_util.h"
#include "core/optimizer.h"
#include "net/network_model.h"
#include "tpch/tpch.h"

using namespace cgq;  // NOLINT

namespace {

void RunPanel(const Catalog& catalog, PolicyCatalog* policies,
              const NetworkModel& net, const char* title,
              const std::function<Status()>& install) {
  if (!install().ok()) {
    std::printf("policy installation failed for %s\n", title);
    return;
  }
  bench::PrintHeader(title);
  std::printf("%-6s %-26s %-26s %-9s\n", "Query", "Traditional QO [ms]",
              "Compliant QO [ms]", "factor");
  for (int q : tpch::QueryNumbers()) {
    std::string sql = *tpch::Query(q);
    OptimizerOptions trad_opts;
    trad_opts.compliant = false;
    QueryOptimizer traditional(&catalog, policies, &net, trad_opts);
    QueryOptimizer compliant(&catalog, policies, &net, {});

    bench::TimingStats trad = bench::TimeRepeated(
        [&] { (void)traditional.Optimize(sql); });
    bench::TimingStats comp = bench::TimeRepeated(
        [&] { (void)compliant.Optimize(sql); });
    std::printf("Q%-5d %10.2f +- %-10.2f %10.2f +- %-10.2f %8.2fx\n", q,
                trad.mean_ms, trad.stderr_ms, comp.mean_ms, comp.stderr_ms,
                trad.mean_ms > 0 ? comp.mean_ms / trad.mean_ms : 0.0);
  }
}

}  // namespace

int main() {
  tpch::TpchConfig config;
  config.scale_factor = 10;
  auto catalog = tpch::BuildCatalog(config);
  if (!catalog.ok()) return 1;
  NetworkModel net = NetworkModel::DefaultGeo(5);
  PolicyCatalog policies(&*catalog);

  RunPanel(*catalog, &policies, net,
           "Fig 6(b): minimal overhead (unrestricted policies, 8 "
           "expressions)",
           [&] { return tpch::InstallUnrestrictedPolicies(&policies); });
  RunPanel(*catalog, &policies, net,
           "Fig 6(c): optimization time under set T (8 expressions)",
           [&] { return tpch::InstallPolicySet("T", &policies); });
  RunPanel(*catalog, &policies, net,
           "Fig 6(d): optimization time under set C (10 expressions)",
           [&] { return tpch::InstallPolicySet("C", &policies); });
  RunPanel(*catalog, &policies, net,
           "Fig 6(e): optimization time under set CR (10 expressions)",
           [&] { return tpch::InstallPolicySet("CR", &policies); });
  RunPanel(*catalog, &policies, net,
           "Fig 6(f): optimization time under set CR+A (10 expressions)",
           [&] { return tpch::InstallPolicySet("CRA", &policies); });
  return 0;
}
