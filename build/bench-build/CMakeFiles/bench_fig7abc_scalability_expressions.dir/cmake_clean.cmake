file(REMOVE_RECURSE
  "../bench/bench_fig7abc_scalability_expressions"
  "../bench/bench_fig7abc_scalability_expressions.pdb"
  "CMakeFiles/bench_fig7abc_scalability_expressions.dir/bench_fig7abc_scalability_expressions.cc.o"
  "CMakeFiles/bench_fig7abc_scalability_expressions.dir/bench_fig7abc_scalability_expressions.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7abc_scalability_expressions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
