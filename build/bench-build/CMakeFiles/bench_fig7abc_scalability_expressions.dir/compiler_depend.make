# Empty compiler generated dependencies file for bench_fig7abc_scalability_expressions.
# This may be replaced when dependencies are built.
