# Empty compiler generated dependencies file for bench_fig6bcdef_overhead.
# This may be replaced when dependencies are built.
