file(REMOVE_RECURSE
  "../bench/bench_objectives"
  "../bench/bench_objectives.pdb"
  "CMakeFiles/bench_objectives.dir/bench_objectives.cc.o"
  "CMakeFiles/bench_objectives.dir/bench_objectives.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_objectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
