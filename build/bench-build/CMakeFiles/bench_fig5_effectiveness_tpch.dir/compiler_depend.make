# Empty compiler generated dependencies file for bench_fig5_effectiveness_tpch.
# This may be replaced when dependencies are built.
