file(REMOVE_RECURSE
  "../bench/bench_fig5_effectiveness_tpch"
  "../bench/bench_fig5_effectiveness_tpch.pdb"
  "CMakeFiles/bench_fig5_effectiveness_tpch.dir/bench_fig5_effectiveness_tpch.cc.o"
  "CMakeFiles/bench_fig5_effectiveness_tpch.dir/bench_fig5_effectiveness_tpch.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_effectiveness_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
