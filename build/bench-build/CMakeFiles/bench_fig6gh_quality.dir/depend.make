# Empty dependencies file for bench_fig6gh_quality.
# This may be replaced when dependencies are built.
