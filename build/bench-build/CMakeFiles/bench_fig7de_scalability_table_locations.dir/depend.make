# Empty dependencies file for bench_fig7de_scalability_table_locations.
# This may be replaced when dependencies are built.
