file(REMOVE_RECURSE
  "../bench/bench_fig7de_scalability_table_locations"
  "../bench/bench_fig7de_scalability_table_locations.pdb"
  "CMakeFiles/bench_fig7de_scalability_table_locations.dir/bench_fig7de_scalability_table_locations.cc.o"
  "CMakeFiles/bench_fig7de_scalability_table_locations.dir/bench_fig7de_scalability_table_locations.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7de_scalability_table_locations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
