# Empty compiler generated dependencies file for bench_fig6a_effectiveness_adhoc.
# This may be replaced when dependencies are built.
