file(REMOVE_RECURSE
  "../bench/bench_fig6a_effectiveness_adhoc"
  "../bench/bench_fig6a_effectiveness_adhoc.pdb"
  "CMakeFiles/bench_fig6a_effectiveness_adhoc.dir/bench_fig6a_effectiveness_adhoc.cc.o"
  "CMakeFiles/bench_fig6a_effectiveness_adhoc.dir/bench_fig6a_effectiveness_adhoc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6a_effectiveness_adhoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
