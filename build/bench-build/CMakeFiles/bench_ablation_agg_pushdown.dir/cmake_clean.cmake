file(REMOVE_RECURSE
  "../bench/bench_ablation_agg_pushdown"
  "../bench/bench_ablation_agg_pushdown.pdb"
  "CMakeFiles/bench_ablation_agg_pushdown.dir/bench_ablation_agg_pushdown.cc.o"
  "CMakeFiles/bench_ablation_agg_pushdown.dir/bench_ablation_agg_pushdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_agg_pushdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
