# Empty dependencies file for bench_ablation_agg_pushdown.
# This may be replaced when dependencies are built.
