file(REMOVE_RECURSE
  "../bench/bench_fig8_scalability_policy_locations"
  "../bench/bench_fig8_scalability_policy_locations.pdb"
  "CMakeFiles/bench_fig8_scalability_policy_locations.dir/bench_fig8_scalability_policy_locations.cc.o"
  "CMakeFiles/bench_fig8_scalability_policy_locations.dir/bench_fig8_scalability_policy_locations.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_scalability_policy_locations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
