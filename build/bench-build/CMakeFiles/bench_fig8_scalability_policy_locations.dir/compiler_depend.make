# Empty compiler generated dependencies file for bench_fig8_scalability_policy_locations.
# This may be replaced when dependencies are built.
