
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/cgq.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/cgq.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/catalog/deployment.cc" "src/CMakeFiles/cgq.dir/catalog/deployment.cc.o" "gcc" "src/CMakeFiles/cgq.dir/catalog/deployment.cc.o.d"
  "/root/repo/src/catalog/location.cc" "src/CMakeFiles/cgq.dir/catalog/location.cc.o" "gcc" "src/CMakeFiles/cgq.dir/catalog/location.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/cgq.dir/common/status.cc.o" "gcc" "src/CMakeFiles/cgq.dir/common/status.cc.o.d"
  "/root/repo/src/common/str_util.cc" "src/CMakeFiles/cgq.dir/common/str_util.cc.o" "gcc" "src/CMakeFiles/cgq.dir/common/str_util.cc.o.d"
  "/root/repo/src/core/compliance_checker.cc" "src/CMakeFiles/cgq.dir/core/compliance_checker.cc.o" "gcc" "src/CMakeFiles/cgq.dir/core/compliance_checker.cc.o.d"
  "/root/repo/src/core/deny_rules.cc" "src/CMakeFiles/cgq.dir/core/deny_rules.cc.o" "gcc" "src/CMakeFiles/cgq.dir/core/deny_rules.cc.o.d"
  "/root/repo/src/core/explain.cc" "src/CMakeFiles/cgq.dir/core/explain.cc.o" "gcc" "src/CMakeFiles/cgq.dir/core/explain.cc.o.d"
  "/root/repo/src/core/optimizer.cc" "src/CMakeFiles/cgq.dir/core/optimizer.cc.o" "gcc" "src/CMakeFiles/cgq.dir/core/optimizer.cc.o.d"
  "/root/repo/src/core/plan_annotator.cc" "src/CMakeFiles/cgq.dir/core/plan_annotator.cc.o" "gcc" "src/CMakeFiles/cgq.dir/core/plan_annotator.cc.o.d"
  "/root/repo/src/core/policy.cc" "src/CMakeFiles/cgq.dir/core/policy.cc.o" "gcc" "src/CMakeFiles/cgq.dir/core/policy.cc.o.d"
  "/root/repo/src/core/policy_evaluator.cc" "src/CMakeFiles/cgq.dir/core/policy_evaluator.cc.o" "gcc" "src/CMakeFiles/cgq.dir/core/policy_evaluator.cc.o.d"
  "/root/repo/src/core/policy_lint.cc" "src/CMakeFiles/cgq.dir/core/policy_lint.cc.o" "gcc" "src/CMakeFiles/cgq.dir/core/policy_lint.cc.o.d"
  "/root/repo/src/core/site_selector.cc" "src/CMakeFiles/cgq.dir/core/site_selector.cc.o" "gcc" "src/CMakeFiles/cgq.dir/core/site_selector.cc.o.d"
  "/root/repo/src/exec/analyze.cc" "src/CMakeFiles/cgq.dir/exec/analyze.cc.o" "gcc" "src/CMakeFiles/cgq.dir/exec/analyze.cc.o.d"
  "/root/repo/src/exec/csv.cc" "src/CMakeFiles/cgq.dir/exec/csv.cc.o" "gcc" "src/CMakeFiles/cgq.dir/exec/csv.cc.o.d"
  "/root/repo/src/exec/executor.cc" "src/CMakeFiles/cgq.dir/exec/executor.cc.o" "gcc" "src/CMakeFiles/cgq.dir/exec/executor.cc.o.d"
  "/root/repo/src/exec/table_store.cc" "src/CMakeFiles/cgq.dir/exec/table_store.cc.o" "gcc" "src/CMakeFiles/cgq.dir/exec/table_store.cc.o.d"
  "/root/repo/src/expr/eval.cc" "src/CMakeFiles/cgq.dir/expr/eval.cc.o" "gcc" "src/CMakeFiles/cgq.dir/expr/eval.cc.o.d"
  "/root/repo/src/expr/expr.cc" "src/CMakeFiles/cgq.dir/expr/expr.cc.o" "gcc" "src/CMakeFiles/cgq.dir/expr/expr.cc.o.d"
  "/root/repo/src/expr/implication.cc" "src/CMakeFiles/cgq.dir/expr/implication.cc.o" "gcc" "src/CMakeFiles/cgq.dir/expr/implication.cc.o.d"
  "/root/repo/src/net/network_model.cc" "src/CMakeFiles/cgq.dir/net/network_model.cc.o" "gcc" "src/CMakeFiles/cgq.dir/net/network_model.cc.o.d"
  "/root/repo/src/optimizer/cardinality.cc" "src/CMakeFiles/cgq.dir/optimizer/cardinality.cc.o" "gcc" "src/CMakeFiles/cgq.dir/optimizer/cardinality.cc.o.d"
  "/root/repo/src/optimizer/memo.cc" "src/CMakeFiles/cgq.dir/optimizer/memo.cc.o" "gcc" "src/CMakeFiles/cgq.dir/optimizer/memo.cc.o.d"
  "/root/repo/src/optimizer/rules.cc" "src/CMakeFiles/cgq.dir/optimizer/rules.cc.o" "gcc" "src/CMakeFiles/cgq.dir/optimizer/rules.cc.o.d"
  "/root/repo/src/plan/binder.cc" "src/CMakeFiles/cgq.dir/plan/binder.cc.o" "gcc" "src/CMakeFiles/cgq.dir/plan/binder.cc.o.d"
  "/root/repo/src/plan/builder.cc" "src/CMakeFiles/cgq.dir/plan/builder.cc.o" "gcc" "src/CMakeFiles/cgq.dir/plan/builder.cc.o.d"
  "/root/repo/src/plan/plan_dot.cc" "src/CMakeFiles/cgq.dir/plan/plan_dot.cc.o" "gcc" "src/CMakeFiles/cgq.dir/plan/plan_dot.cc.o.d"
  "/root/repo/src/plan/plan_node.cc" "src/CMakeFiles/cgq.dir/plan/plan_node.cc.o" "gcc" "src/CMakeFiles/cgq.dir/plan/plan_node.cc.o.d"
  "/root/repo/src/plan/planner_context.cc" "src/CMakeFiles/cgq.dir/plan/planner_context.cc.o" "gcc" "src/CMakeFiles/cgq.dir/plan/planner_context.cc.o.d"
  "/root/repo/src/plan/query_planner.cc" "src/CMakeFiles/cgq.dir/plan/query_planner.cc.o" "gcc" "src/CMakeFiles/cgq.dir/plan/query_planner.cc.o.d"
  "/root/repo/src/plan/summary.cc" "src/CMakeFiles/cgq.dir/plan/summary.cc.o" "gcc" "src/CMakeFiles/cgq.dir/plan/summary.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/cgq.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/cgq.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/cgq.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/cgq.dir/sql/parser.cc.o.d"
  "/root/repo/src/tpch/tpch.cc" "src/CMakeFiles/cgq.dir/tpch/tpch.cc.o" "gcc" "src/CMakeFiles/cgq.dir/tpch/tpch.cc.o.d"
  "/root/repo/src/tpch/tpch_gen.cc" "src/CMakeFiles/cgq.dir/tpch/tpch_gen.cc.o" "gcc" "src/CMakeFiles/cgq.dir/tpch/tpch_gen.cc.o.d"
  "/root/repo/src/tpch/tpch_policies.cc" "src/CMakeFiles/cgq.dir/tpch/tpch_policies.cc.o" "gcc" "src/CMakeFiles/cgq.dir/tpch/tpch_policies.cc.o.d"
  "/root/repo/src/tpch/tpch_queries.cc" "src/CMakeFiles/cgq.dir/tpch/tpch_queries.cc.o" "gcc" "src/CMakeFiles/cgq.dir/tpch/tpch_queries.cc.o.d"
  "/root/repo/src/types/date.cc" "src/CMakeFiles/cgq.dir/types/date.cc.o" "gcc" "src/CMakeFiles/cgq.dir/types/date.cc.o.d"
  "/root/repo/src/types/schema.cc" "src/CMakeFiles/cgq.dir/types/schema.cc.o" "gcc" "src/CMakeFiles/cgq.dir/types/schema.cc.o.d"
  "/root/repo/src/types/value.cc" "src/CMakeFiles/cgq.dir/types/value.cc.o" "gcc" "src/CMakeFiles/cgq.dir/types/value.cc.o.d"
  "/root/repo/src/workload/policy_generator.cc" "src/CMakeFiles/cgq.dir/workload/policy_generator.cc.o" "gcc" "src/CMakeFiles/cgq.dir/workload/policy_generator.cc.o.d"
  "/root/repo/src/workload/properties.cc" "src/CMakeFiles/cgq.dir/workload/properties.cc.o" "gcc" "src/CMakeFiles/cgq.dir/workload/properties.cc.o.d"
  "/root/repo/src/workload/query_generator.cc" "src/CMakeFiles/cgq.dir/workload/query_generator.cc.o" "gcc" "src/CMakeFiles/cgq.dir/workload/query_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
