file(REMOVE_RECURSE
  "libcgq.a"
)
