# Empty dependencies file for cgq.
# This may be replaced when dependencies are built.
