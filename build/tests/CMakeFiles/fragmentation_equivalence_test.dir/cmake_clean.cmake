file(REMOVE_RECURSE
  "CMakeFiles/fragmentation_equivalence_test.dir/fragmentation_equivalence_test.cc.o"
  "CMakeFiles/fragmentation_equivalence_test.dir/fragmentation_equivalence_test.cc.o.d"
  "fragmentation_equivalence_test"
  "fragmentation_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fragmentation_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
