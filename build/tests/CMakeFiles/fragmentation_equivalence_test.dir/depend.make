# Empty dependencies file for fragmentation_equivalence_test.
# This may be replaced when dependencies are built.
