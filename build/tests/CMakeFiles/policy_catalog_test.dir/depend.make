# Empty dependencies file for policy_catalog_test.
# This may be replaced when dependencies are built.
