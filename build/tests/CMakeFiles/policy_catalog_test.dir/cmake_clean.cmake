file(REMOVE_RECURSE
  "CMakeFiles/policy_catalog_test.dir/policy_catalog_test.cc.o"
  "CMakeFiles/policy_catalog_test.dir/policy_catalog_test.cc.o.d"
  "policy_catalog_test"
  "policy_catalog_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
