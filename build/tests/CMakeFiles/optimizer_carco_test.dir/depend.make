# Empty dependencies file for optimizer_carco_test.
# This may be replaced when dependencies are built.
