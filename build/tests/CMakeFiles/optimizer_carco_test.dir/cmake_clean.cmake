file(REMOVE_RECURSE
  "CMakeFiles/optimizer_carco_test.dir/optimizer_carco_test.cc.o"
  "CMakeFiles/optimizer_carco_test.dir/optimizer_carco_test.cc.o.d"
  "optimizer_carco_test"
  "optimizer_carco_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimizer_carco_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
