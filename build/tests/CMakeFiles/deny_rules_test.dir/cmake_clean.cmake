file(REMOVE_RECURSE
  "CMakeFiles/deny_rules_test.dir/deny_rules_test.cc.o"
  "CMakeFiles/deny_rules_test.dir/deny_rules_test.cc.o.d"
  "deny_rules_test"
  "deny_rules_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deny_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
