# Empty compiler generated dependencies file for deny_rules_test.
# This may be replaced when dependencies are built.
