# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for deny_rules_test.
