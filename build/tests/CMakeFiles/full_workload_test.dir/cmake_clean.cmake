file(REMOVE_RECURSE
  "CMakeFiles/full_workload_test.dir/full_workload_test.cc.o"
  "CMakeFiles/full_workload_test.dir/full_workload_test.cc.o.d"
  "full_workload_test"
  "full_workload_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
