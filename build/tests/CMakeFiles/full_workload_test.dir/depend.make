# Empty dependencies file for full_workload_test.
# This may be replaced when dependencies are built.
