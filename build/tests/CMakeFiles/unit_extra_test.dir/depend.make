# Empty dependencies file for unit_extra_test.
# This may be replaced when dependencies are built.
