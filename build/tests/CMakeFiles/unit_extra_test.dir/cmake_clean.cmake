file(REMOVE_RECURSE
  "CMakeFiles/unit_extra_test.dir/unit_extra_test.cc.o"
  "CMakeFiles/unit_extra_test.dir/unit_extra_test.cc.o.d"
  "unit_extra_test"
  "unit_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unit_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
