# Empty dependencies file for colocated_block_test.
# This may be replaced when dependencies are built.
