file(REMOVE_RECURSE
  "CMakeFiles/colocated_block_test.dir/colocated_block_test.cc.o"
  "CMakeFiles/colocated_block_test.dir/colocated_block_test.cc.o.d"
  "colocated_block_test"
  "colocated_block_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colocated_block_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
