# Empty dependencies file for policy_lint_test.
# This may be replaced when dependencies are built.
