file(REMOVE_RECURSE
  "CMakeFiles/policy_lint_test.dir/policy_lint_test.cc.o"
  "CMakeFiles/policy_lint_test.dir/policy_lint_test.cc.o.d"
  "policy_lint_test"
  "policy_lint_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_lint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
