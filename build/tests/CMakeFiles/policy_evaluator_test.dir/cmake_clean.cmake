file(REMOVE_RECURSE
  "CMakeFiles/policy_evaluator_test.dir/policy_evaluator_test.cc.o"
  "CMakeFiles/policy_evaluator_test.dir/policy_evaluator_test.cc.o.d"
  "policy_evaluator_test"
  "policy_evaluator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_evaluator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
