file(REMOVE_RECURSE
  "CMakeFiles/deployment_csv_test.dir/deployment_csv_test.cc.o"
  "CMakeFiles/deployment_csv_test.dir/deployment_csv_test.cc.o.d"
  "deployment_csv_test"
  "deployment_csv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deployment_csv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
