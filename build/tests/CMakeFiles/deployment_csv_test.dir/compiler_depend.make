# Empty compiler generated dependencies file for deployment_csv_test.
# This may be replaced when dependencies are built.
