file(REMOVE_RECURSE
  "CMakeFiles/union_masking_test.dir/union_masking_test.cc.o"
  "CMakeFiles/union_masking_test.dir/union_masking_test.cc.o.d"
  "union_masking_test"
  "union_masking_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/union_masking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
