# Empty compiler generated dependencies file for tpch_extended_test.
# This may be replaced when dependencies are built.
