file(REMOVE_RECURSE
  "CMakeFiles/tpch_extended_test.dir/tpch_extended_test.cc.o"
  "CMakeFiles/tpch_extended_test.dir/tpch_extended_test.cc.o.d"
  "tpch_extended_test"
  "tpch_extended_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_extended_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
