# Empty dependencies file for laundering_test.
# This may be replaced when dependencies are built.
