file(REMOVE_RECURSE
  "CMakeFiles/laundering_test.dir/laundering_test.cc.o"
  "CMakeFiles/laundering_test.dir/laundering_test.cc.o.d"
  "laundering_test"
  "laundering_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laundering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
