file(REMOVE_RECURSE
  "CMakeFiles/analyze_explain_test.dir/analyze_explain_test.cc.o"
  "CMakeFiles/analyze_explain_test.dir/analyze_explain_test.cc.o.d"
  "analyze_explain_test"
  "analyze_explain_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyze_explain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
