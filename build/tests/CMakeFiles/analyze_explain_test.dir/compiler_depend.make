# Empty compiler generated dependencies file for analyze_explain_test.
# This may be replaced when dependencies are built.
