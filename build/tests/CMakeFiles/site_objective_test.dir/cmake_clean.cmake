file(REMOVE_RECURSE
  "CMakeFiles/site_objective_test.dir/site_objective_test.cc.o"
  "CMakeFiles/site_objective_test.dir/site_objective_test.cc.o.d"
  "site_objective_test"
  "site_objective_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/site_objective_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
