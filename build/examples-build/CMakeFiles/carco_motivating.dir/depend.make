# Empty dependencies file for carco_motivating.
# This may be replaced when dependencies are built.
