file(REMOVE_RECURSE
  "../examples/carco_motivating"
  "../examples/carco_motivating.pdb"
  "CMakeFiles/carco_motivating.dir/carco_motivating.cpp.o"
  "CMakeFiles/carco_motivating.dir/carco_motivating.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carco_motivating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
