file(REMOVE_RECURSE
  "../examples/policy_playground"
  "../examples/policy_playground.pdb"
  "CMakeFiles/policy_playground.dir/policy_playground.cpp.o"
  "CMakeFiles/policy_playground.dir/policy_playground.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
