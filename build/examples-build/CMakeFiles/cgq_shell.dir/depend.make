# Empty dependencies file for cgq_shell.
# This may be replaced when dependencies are built.
