file(REMOVE_RECURSE
  "../examples/cgq_shell"
  "../examples/cgq_shell.pdb"
  "CMakeFiles/cgq_shell.dir/cgq_shell.cpp.o"
  "CMakeFiles/cgq_shell.dir/cgq_shell.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgq_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
