# Empty compiler generated dependencies file for tpch_geo_analytics.
# This may be replaced when dependencies are built.
