file(REMOVE_RECURSE
  "../examples/tpch_geo_analytics"
  "../examples/tpch_geo_analytics.pdb"
  "CMakeFiles/tpch_geo_analytics.dir/tpch_geo_analytics.cpp.o"
  "CMakeFiles/tpch_geo_analytics.dir/tpch_geo_analytics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_geo_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
