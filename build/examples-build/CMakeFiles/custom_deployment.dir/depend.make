# Empty dependencies file for custom_deployment.
# This may be replaced when dependencies are built.
