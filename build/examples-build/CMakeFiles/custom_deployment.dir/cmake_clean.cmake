file(REMOVE_RECURSE
  "../examples/custom_deployment"
  "../examples/custom_deployment.pdb"
  "CMakeFiles/custom_deployment.dir/custom_deployment.cpp.o"
  "CMakeFiles/custom_deployment.dir/custom_deployment.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
