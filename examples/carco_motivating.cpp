// The motivating CarCo scenario of Section 2 of the paper.
//
// A car manufacturer with Customer data in North America, Orders in
// Europe, and Supply data in Asia runs the three-way aggregation query
// Q_ex. Dataflow policies P_N, P_E, P_A restrict what may cross each
// border. The example prints:
//   (a) the traditional cost-based plan — non-compliant (Fig. 1a), with
//       the concrete policy violations;
//   (b) the compliant plan chosen by the compliance-based optimizer
//       (Fig. 1b), with its execution/shipping traits;
// and then executes the compliant plan on synthetic data.

#include <cstdio>

#include "common/rng.h"
#include "core/engine.h"

using namespace cgq;  // NOLINT: example brevity

namespace {

Catalog BuildCatalog() {
  Catalog catalog;
  (void)*catalog.mutable_locations().AddLocation("northamerica");
  (void)*catalog.mutable_locations().AddLocation("europe");
  (void)*catalog.mutable_locations().AddLocation("asia");

  TableDef customer;
  customer.name = "customer";
  customer.schema = Schema({{"custkey", DataType::kInt64},
                            {"name", DataType::kString},
                            {"acctbal", DataType::kDouble},
                            {"mktseg", DataType::kString},
                            {"region", DataType::kString}});
  customer.fragments = {TableFragment{0, 1.0}};
  customer.stats.row_count = 50;
  customer.stats.columns["custkey"] = {50, 1, 50, 8};
  (void)catalog.AddTable(customer);

  TableDef orders;
  orders.name = "orders";
  orders.schema = Schema({{"custkey", DataType::kInt64},
                          {"ordkey", DataType::kInt64},
                          {"totprice", DataType::kDouble}});
  orders.fragments = {TableFragment{1, 1.0}};
  orders.stats.row_count = 200;
  orders.stats.columns["custkey"] = {50, 1, 50, 8};
  orders.stats.columns["ordkey"] = {200, 1, 200, 8};
  (void)catalog.AddTable(orders);

  TableDef supply;
  supply.name = "supply";
  supply.schema = Schema({{"ordkey", DataType::kInt64},
                          {"quantity", DataType::kInt64},
                          {"extprice", DataType::kDouble}});
  supply.fragments = {TableFragment{2, 1.0}};
  supply.stats.row_count = 400;
  supply.stats.columns["ordkey"] = {200, 1, 200, 8};
  (void)catalog.AddTable(supply);
  return catalog;
}

void LoadData(Engine* engine) {
  Rng rng(2021);
  std::vector<Row> customers, orders, supply;
  const char* segs[] = {"commercial", "retail"};
  for (int64_t c = 1; c <= 50; ++c) {
    customers.push_back({Value::Int64(c),
                         Value::String("cust-" + std::to_string(c)),
                         Value::Double(rng.Uniform(0, 9999) / 10.0),
                         Value::String(segs[rng.Uniform(0, 1)]),
                         Value::String("r" + std::to_string(rng.Uniform(1, 5)))});
  }
  for (int64_t o = 1; o <= 200; ++o) {
    orders.push_back({Value::Int64(rng.Uniform(1, 50)), Value::Int64(o),
                      Value::Double(rng.Uniform(100, 99999) / 100.0)});
    int64_t lines = rng.Uniform(1, 3);
    for (int64_t i = 0; i < lines; ++i) {
      supply.push_back({Value::Int64(o), Value::Int64(rng.Uniform(1, 50)),
                        Value::Double(rng.Uniform(100, 9999) / 100.0)});
    }
  }
  engine->store().Put(0, "customer", std::move(customers));
  engine->store().Put(1, "orders", std::move(orders));
  engine->store().Put(2, "supply", std::move(supply));
}

}  // namespace

int main() {
  Engine engine(BuildCatalog(), NetworkModel::DefaultGeo(3));

  // P_N: customer data leaves only with the account balance suppressed.
  (void)engine.AddPolicy(
      "northamerica",
      "ship custkey, name, mktseg, region from customer to *");
  // P_E: non-price order data may go to North America; only aggregated
  // order data may go to Asia.
  (void)engine.AddPolicy("europe",
                         "ship custkey, ordkey from orders to northamerica");
  (void)engine.AddPolicy(
      "europe",
      "ship totprice as aggregates sum, avg from orders to asia "
      "group by custkey, ordkey");
  // P_A: only per-order aggregates of supply may go to Europe.
  (void)engine.AddPolicy(
      "asia",
      "ship quantity, extprice as aggregates sum from supply to europe "
      "group by ordkey");

  LoadData(&engine);

  const char* q_ex =
      "SELECT c.name, SUM(o.totprice) AS total_price, "
      "SUM(s.quantity) AS total_quantity "
      "FROM customer AS c, orders AS o, supply AS s "
      "WHERE c.custkey = o.custkey AND o.ordkey = s.ordkey "
      "GROUP BY c.name";

  std::printf("Q_ex:\n  %s\n\n", q_ex);

  // (a) What a traditional cost-based optimizer would do.
  OptimizerOptions traditional;
  traditional.compliant = false;
  auto fig1a = engine.Optimize(q_ex, traditional);
  if (!fig1a.ok()) return 1;
  std::printf("== traditional cost-based plan (Fig. 1a) — %s ==\n%s",
              fig1a->compliant ? "compliant" : "NON-COMPLIANT",
              PlanToString(*fig1a->plan, &engine.catalog().locations())
                  .c_str());
  for (const std::string& v : fig1a->violations) {
    std::printf("  violation: %s\n", v.c_str());
  }

  // (b) The compliance-based optimizer.
  auto fig1b = engine.Optimize(q_ex);
  if (!fig1b.ok()) {
    std::printf("rejected: %s\n", fig1b.status().ToString().c_str());
    return 1;
  }
  std::printf("\n== compliant plan (Fig. 1b) ==\n%s\n",
              PlanToString(*fig1b->plan, &engine.catalog().locations())
                  .c_str());

  auto result = engine.Run(q_ex);
  if (!result.ok()) return 1;
  std::printf("executed compliant plan: %zu result groups, %lld rows "
              "shipped, %.2f ms simulated network time\n",
              result->rows.size(),
              static_cast<long long>(result->metrics.rows_shipped),
              result->metrics.network_ms);
  for (size_t i = 0; i < result->rows.size() && i < 5; ++i) {
    for (const Value& v : result->rows[i]) {
      std::printf("  %s", v.ToString().c_str());
    }
    std::printf("\n");
  }
  std::printf("  ... (first 5 of %zu)\n", result->rows.size());
  return 0;
}
