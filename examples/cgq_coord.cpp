// cgq_coord: the coordinator side of a deployed cluster, and the CI
// loopback-equivalence gate. It generates TPC-H, deploys each
// location's slice to the cgq_sited servers named in a hosts file, then
// runs the full 24-cell compliance workload ({T, CR} policy sets x the
// 12 TPC-H queries) twice per cell — once on the in-process row backend
// and once distributed over the wire — and fails (exit 1) unless every
// cell agrees on the FNV-1a result digest AND the ship accounting
// (ships, rows_shipped, bytes_shipped, rows_scanned) exactly.
//
//   cgq_coord --hosts=PATH [--scale=F] [--batch-size=N] [--threads=N]
//             [--trace-out=PATH] [--no-deploy]
//
// The hosts file is one `host:port loc[,loc...]` line per server (see
// net::ParseHostsFile); ci/run_loopback.sh assembles it from the
// servers' ephemeral --port-file reports. --no-deploy skips the
// LoadTable push and trusts the servers to already hold their slices —
// the restart gate uses it to prove that disk-backed servers
// (--data-dir) recover their fragments after a SIGKILL without
// re-deployment.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/engine.h"
#include "exec/executor.h"
#include "net/cluster_client.h"
#include "net/wire_protocol.h"
#include "tpch/tpch.h"

namespace {

using namespace cgq;  // a driver binary, not a library

// Full-precision row serialization feeding the digest: equal digests
// mean byte-identical results, order included.
uint64_t ResultDigest(const QueryResult& r) {
  std::string flat;
  for (const Row& row : r.rows) {
    for (const Value& v : row) {
      if (v.is_null()) {
        flat += "NULL|";
      } else if (v.is_double()) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g|", v.dbl());
        flat += buf;
      } else {
        flat += v.ToString() + "|";
      }
    }
    flat += "\n";
  }
  return wire::Fnv1a(reinterpret_cast<const uint8_t*>(flat.data()),
                     flat.size());
}

struct Cell {
  const char* policy_set;
  int qnum;
};

}  // namespace

int main(int argc, char** argv) {
  std::string hosts_path;
  std::string trace_out;
  double scale = 0.002;
  int batch_size = 1024;
  int threads = 1;
  bool no_deploy = false;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--hosts=", 8) == 0) {
      hosts_path = a + 8;
    } else if (std::strncmp(a, "--scale=", 8) == 0) {
      scale = std::atof(a + 8);
    } else if (std::strncmp(a, "--batch-size=", 13) == 0) {
      batch_size = std::atoi(a + 13);
    } else if (std::strncmp(a, "--threads=", 10) == 0) {
      threads = std::atoi(a + 10);
    } else if (std::strncmp(a, "--trace-out=", 12) == 0) {
      trace_out = a + 12;
    } else if (std::strcmp(a, "--no-deploy") == 0) {
      no_deploy = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s --hosts=PATH [--scale=F] [--batch-size=N] "
                   "[--threads=N] [--trace-out=PATH] [--no-deploy]\n",
                   argv[0]);
      return 2;
    }
  }
  if (hosts_path.empty()) {
    std::fprintf(stderr, "cgq_coord: --hosts=PATH is required\n");
    return 2;
  }

  tpch::TpchConfig config;
  config.scale_factor = scale;
  Catalog catalog = *tpch::BuildCatalog(config);
  NetworkModel net = NetworkModel::DefaultGeo(5);
  TableStore store;
  Status gen = tpch::GenerateData(catalog, config, &store);
  if (!gen.ok()) {
    std::fprintf(stderr, "cgq_coord: %s\n", gen.ToString().c_str());
    return 1;
  }

  auto endpoints = net::ParseHostsFile(hosts_path);
  if (!endpoints.ok()) {
    std::fprintf(stderr, "cgq_coord: %s\n",
                 endpoints.status().ToString().c_str());
    return 1;
  }
  net::ClusterClient cluster;
  Status connected = cluster.Connect(*endpoints);
  if (!connected.ok()) {
    std::fprintf(stderr, "cgq_coord: connect: %s\n",
                 connected.ToString().c_str());
    return 1;
  }
  if (no_deploy) {
    std::printf(
        "cgq_coord: --no-deploy, trusting %zu location(s) to hold "
        "their sf=%g slices\n",
        cluster.endpoints().size(), scale);
  } else {
    Status deployed = cluster.Deploy(store);
    if (!deployed.ok()) {
      std::fprintf(stderr, "cgq_coord: deploy: %s\n",
                   deployed.ToString().c_str());
      return 1;
    }
    std::printf("cgq_coord: deployed sf=%g store to %zu location(s)\n",
                scale, cluster.endpoints().size());
  }

  std::vector<Cell> cells;
  for (const char* policy_set : {"T", "CR"}) {
    for (int q : tpch::QueryNumbers()) cells.push_back({policy_set, q});
    for (int q : tpch::ExtendedQueryNumbers()) {
      cells.push_back({policy_set, q});
    }
  }

  int failures = 0;
  for (const Cell& cell : cells) {
    PolicyCatalog policies(&catalog);
    Status installed = tpch::InstallPolicySet(cell.policy_set, &policies);
    if (!installed.ok()) {
      std::fprintf(stderr, "cgq_coord: %s\n",
                   installed.ToString().c_str());
      return 1;
    }
    QueryOptimizer optimizer(&catalog, &policies, &net,
                             OptimizerOptions());
    auto sql = tpch::Query(cell.qnum);
    if (!sql.ok()) {
      std::fprintf(stderr, "cgq_coord: %s\n",
                   sql.status().ToString().c_str());
      return 1;
    }
    auto q = optimizer.Optimize(*sql);
    if (!q.ok()) {
      std::fprintf(stderr, "cgq_coord: %s Q%d: optimize: %s\n",
                   cell.policy_set, cell.qnum,
                   q.status().ToString().c_str());
      ++failures;
      continue;
    }

    ExecutorOptions row_opts;
    row_opts.mode = ExecMode::kRow;
    row_opts.batch_size = static_cast<size_t>(batch_size);
    Executor row_exec(&store, &net, row_opts);
    auto row = row_exec.Execute(*q);
    if (!row.ok()) {
      std::fprintf(stderr, "cgq_coord: %s Q%d: row: %s\n",
                   cell.policy_set, cell.qnum,
                   row.status().ToString().c_str());
      ++failures;
      continue;
    }

    ExecutorOptions dist_opts;
    dist_opts.mode = ExecMode::kDistributed;
    dist_opts.batch_size = static_cast<size_t>(batch_size);
    dist_opts.threads = threads;
    dist_opts.cluster = &cluster;
    Executor dist_exec(&store, &net, dist_opts);
    auto dist = dist_exec.Execute(*q);
    if (!dist.ok()) {
      std::fprintf(stderr, "cgq_coord: %s Q%d: distributed: %s\n",
                   cell.policy_set, cell.qnum,
                   dist.status().ToString().c_str());
      ++failures;
      continue;
    }

    const uint64_t row_digest = ResultDigest(*row);
    const uint64_t dist_digest = ResultDigest(*dist);
    bool ok = row_digest == dist_digest &&
              row->metrics.ships == dist->metrics.ships &&
              row->metrics.rows_shipped == dist->metrics.rows_shipped &&
              row->metrics.bytes_shipped == dist->metrics.bytes_shipped &&
              row->metrics.rows_scanned == dist->metrics.rows_scanned;
    std::printf(
        "cgq_coord: %-2s Q%-2d rows=%-5zu digest=%016llx ships=%lld "
        "rows_shipped=%lld bytes_shipped=%.0f %s\n",
        cell.policy_set, cell.qnum, dist->rows.size(),
        static_cast<unsigned long long>(dist_digest),
        static_cast<long long>(dist->metrics.ships),
        static_cast<long long>(dist->metrics.rows_shipped),
        dist->metrics.bytes_shipped, ok ? "OK" : "MISMATCH");
    if (!ok) {
      std::fprintf(
          stderr,
          "cgq_coord: %s Q%d MISMATCH: row digest=%016llx ships=%lld "
          "rows_shipped=%lld bytes_shipped=%.0f rows_scanned=%lld vs "
          "distributed digest=%016llx ships=%lld rows_shipped=%lld "
          "bytes_shipped=%.0f rows_scanned=%lld\n",
          cell.policy_set, cell.qnum,
          static_cast<unsigned long long>(row_digest),
          static_cast<long long>(row->metrics.ships),
          static_cast<long long>(row->metrics.rows_shipped),
          row->metrics.bytes_shipped,
          static_cast<long long>(row->metrics.rows_scanned),
          static_cast<unsigned long long>(dist_digest),
          static_cast<long long>(dist->metrics.ships),
          static_cast<long long>(dist->metrics.rows_shipped),
          dist->metrics.bytes_shipped,
          static_cast<long long>(dist->metrics.rows_scanned));
      ++failures;
    }
  }

  if (!trace_out.empty()) {
    // One traced distributed run for the CI artifact: Q3 under CR.
    Engine engine(Catalog(catalog), NetworkModel::DefaultGeo(5));
    (void)tpch::InstallPolicySet("CR", &engine.policies());
    if (tpch::GenerateData(engine.catalog(), config, &engine.store())
            .ok() &&
        engine.ConnectCluster(cluster.endpoints()).ok() &&
        engine.DeployStore().ok()) {
      engine.set_exec_mode(ExecMode::kDistributed);
      engine.set_tracing(true);
      auto sql = tpch::Query(3);
      if (sql.ok() && engine.Run(*sql).ok()) {
        Status dumped = engine.DumpTraceToFile(trace_out);
        if (dumped.ok()) {
          std::printf("cgq_coord: trace written to %s\n",
                      trace_out.c_str());
        }
      }
    }
  }

  std::printf("cgq_coord: %zu cell(s), %d failure(s)\n", cells.size(),
              failures);
  return failures == 0 ? 0 : 1;
}
