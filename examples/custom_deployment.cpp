// Custom deployment: the full adoption path without touching the TPC-H
// substrate. A hospital group's deployment is described in the text
// format, data arrives as CSV, statistics come from ANALYZE, policies mix
// positive expressions, an aggregate-only rule and a closed-world deny —
// then queries run with compliance provenance and the policy catalog is
// linted.

#include <cstdio>

#include "catalog/deployment.h"
#include "core/engine.h"
#include "core/explain.h"
#include "core/policy_lint.h"
#include "exec/analyze.h"
#include "exec/csv.h"

using namespace cgq;  // NOLINT

namespace {

constexpr const char* kDeployment = R"(
# Hospital group: clinical data in Geneva, billing in Zurich,
# research analytics in Boston.
location geneva
location zurich
location boston

table patients @ geneva : pid int64, name string, yob int64, icd string
table invoices @ zurich : pid int64, amount double, paid int64
replicated table icd_codes @ geneva, boston : icd string, descr string

# Clinical data: names have no egress expression at all (default-deny:
# they can never leave); year-of-birth leaves only as per-diagnosis
# aggregates for research; billing sees pid + diagnosis only.
policy geneva : ship yob as aggregates min, max, avg, count \
                from patients to boston group by icd
policy geneva : ship pid, icd from patients to zurich
# Billing may travel within the group.
policy zurich : ship * from invoices to geneva, boston
# The reference table is public.
policy geneva : ship * from icd_codes to *
policy boston : ship * from icd_codes to *
)";

}  // namespace

int main() {
  auto parsed = ParseDeployment(kDeployment);
  if (!parsed.ok()) {
    std::printf("deployment error: %s\n",
                parsed.status().ToString().c_str());
    return 1;
  }
  Engine engine(std::move(parsed->catalog), NetworkModel::DefaultGeo(3));
  Deployment policy_source{Catalog(engine.catalog()), parsed->policies};
  if (Status s = InstallDeploymentPolicies(policy_source, &engine.policies());
      !s.ok()) {
    std::printf("policy error: %s\n", s.ToString().c_str());
    return 1;
  }

  // CSV data per site.
  (void)LoadCsv(engine.catalog(), "patients", 0,
                "1,alice,1970,E11\n2,bob,1985,E11\n3,carol,1992,I10\n"
                "4,dave,1961,I10\n5,erin,2001,E11\n",
                &engine.store());
  (void)LoadCsv(engine.catalog(), "invoices", 1,
                "1,120.5,1\n2,75.0,0\n2,33.5,1\n4,940.0,1\n",
                &engine.store());
  const char* codes = "E11,\"type 2 diabetes\"\nI10,\"hypertension\"\n";
  (void)LoadCsv(engine.catalog(), "icd_codes", 0, codes, &engine.store());
  (void)LoadCsv(engine.catalog(), "icd_codes", 2, codes, &engine.store());
  (void)AnalyzeAll(engine.store(), &engine.catalog());

  std::printf("== policy lint ==\n");
  for (const PolicyLintFinding& f :
       LintPolicies(engine.catalog(), engine.policies())) {
    std::printf("  %s\n", f.ToString().c_str());
  }

  // Research query in Boston: per-diagnosis cohort statistics. Compliant
  // because only aggregates leave Geneva; the replicated code table is
  // read from the Boston copy.
  OptimizerOptions to_boston;
  to_boston.required_result = LocationSet::Single(2);
  const char* research =
      "SELECT c.descr, COUNT(*) AS cohort, MIN(p.yob) AS oldest "
      "FROM patients p, icd_codes c WHERE p.icd = c.icd "
      "GROUP BY c.descr ORDER BY descr";
  std::printf("\n== research cohorts (result required in boston) ==\n");
  auto plan = engine.Optimize(research, to_boston);
  if (!plan.ok()) {
    std::printf("rejected: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", PlanToString(*plan->plan,
                                 &engine.catalog().locations())
                        .c_str());
  PolicyEvaluator evaluator(&engine.catalog(), &engine.policies());
  std::printf("\n%s\n", ExplainCompliance(*plan->plan, evaluator,
                                          engine.catalog().locations())
                            .c_str());
  auto rows = engine.Run(research, to_boston);
  if (rows.ok()) {
    for (const Row& row : rows->rows) {
      for (const Value& v : row) std::printf("  %s", v.ToString().c_str());
      std::printf("\n");
    }
  }

  // Identity-revealing research is rejected outright.
  auto leak = engine.Run(
      "SELECT p.name, c.descr FROM patients p, icd_codes c "
      "WHERE p.icd = c.icd",
      to_boston);
  std::printf("\nidentity query in boston -> %s\n",
              leak.ok() ? "executed (unexpected!)"
                        : leak.status().ToString().c_str());

  // Billing reconciliation in Geneva works: pid+icd may go to Zurich, or
  // invoices may come to Geneva.
  auto billing = engine.Run(
      "SELECT p.pid, SUM(i.amount) AS owed FROM patients p, invoices i "
      "WHERE p.pid = i.pid AND i.paid = 0 GROUP BY p.pid");
  std::printf("billing query -> %s (%zu rows)\n",
              billing.ok() ? "ok" : billing.status().ToString().c_str(),
              billing.ok() ? billing->rows.size() : 0);
  return leak.ok() ? 1 : 0;
}
