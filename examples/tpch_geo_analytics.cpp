// Geo-distributed TPC-H analytics (the paper's §7 setup).
//
// Distributes the TPC-H tables over five locations (Table 2), installs the
// CR policy set, generates a small data set, and contrasts the traditional
// and compliance-based optimizers on the six workload queries: compliance
// verdict, optimization time, and — for the compliant plans — actual
// execution with measured bytes over the simulated WAN.

#include <cstdio>

#include "core/optimizer.h"
#include "exec/executor.h"
#include "net/network_model.h"
#include "tpch/tpch.h"

using namespace cgq;  // NOLINT: example brevity

int main() {
  tpch::TpchConfig config;
  config.scale_factor = 0.005;

  auto catalog = tpch::BuildCatalog(config);
  if (!catalog.ok()) return 1;
  PolicyCatalog policies(&*catalog);
  if (!tpch::InstallPolicySet("CR", &policies).ok()) return 1;
  NetworkModel net = NetworkModel::DefaultGeo(5);

  TableStore store;
  if (!tpch::GenerateData(*catalog, config, &store).ok()) return 1;
  Executor executor(&store, &net);

  std::printf("geo-distributed TPC-H, SF=%.3f, policy set CR\n\n",
              config.scale_factor);
  std::printf("%-4s %-12s %-12s %-10s %-12s %-10s\n", "Q", "traditional",
              "compliant", "opt ms", "shipped KB", "rows");

  for (int q : tpch::QueryNumbers()) {
    OptimizerOptions trad_opts;
    trad_opts.compliant = false;
    QueryOptimizer traditional(&*catalog, &policies, &net, trad_opts);
    OptimizerOptions comp_opts;
    QueryOptimizer compliant(&*catalog, &policies, &net, comp_opts);

    std::string sql = *tpch::Query(q);
    auto t = traditional.Optimize(sql);
    auto c = compliant.Optimize(sql);
    if (!t.ok() || !c.ok()) {
      std::printf("Q%-3d optimization failed\n", q);
      continue;
    }
    auto result = executor.Execute(*c);
    if (!result.ok()) {
      std::printf("Q%-3d execution failed: %s\n", q,
                  result.status().ToString().c_str());
      continue;
    }
    std::printf("Q%-3d %-12s %-12s %-10.1f %-12.1f %zu\n", q,
                t->compliant ? "compliant" : "NON-COMPLIANT",
                c->compliant ? "compliant" : "BUG",
                c->stats.total_ms, result->metrics.bytes_shipped / 1024.0,
                result->rows.size());
  }

  std::printf("\nexcerpt of the compliant plan for Q3 (cf. Fig. 5e):\n");
  QueryOptimizer compliant(&*catalog, &policies, &net, {});
  auto q3 = compliant.Optimize(*tpch::Query(3));
  if (q3.ok()) {
    std::printf("%s", PlanToString(*q3->plan, &catalog->locations()).c_str());
  }
  return 0;
}
