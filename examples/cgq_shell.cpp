// cgq_shell: an interactive console for the compliant query processor.
//
// Starts with the geo-distributed TPC-H instance (5 sites, Table-2
// placement, small generated data set, policy set CR) and reads commands
// from stdin — run `help;` for the full list: querying (SELECT / explain /
// why / dot / baseline), policy management (policy / policies / set /
// lint / dump), and deployments (source <file> / load <table> <loc> <csv>
// / analyze / tables).
//
// Pipe a script in, or run interactively. EOF exits.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <set>
#include <sstream>
#include <string>

#include "catalog/deployment.h"
#include "common/str_util.h"
#include "core/engine.h"
#include "core/explain.h"
#include "core/policy_lint.h"
#include "exec/analyze.h"
#include "exec/csv.h"
#include "plan/plan_dot.h"
#include "service/plan_cache.h"
#include "service/query_service.h"
#include "tpch/tpch.h"

using namespace cgq;  // NOLINT

namespace {

void PrintResult(const QueryResult& result,
                 const LocationCatalog* locations) {
  for (const std::string& name : result.column_names) {
    std::printf("%-20s", name.c_str());
  }
  std::printf("\n");
  size_t shown = 0;
  for (const Row& row : result.rows) {
    if (shown++ == 20) {
      std::printf("... (%zu rows total)\n", result.rows.size());
      break;
    }
    for (const Value& v : row) std::printf("%-20s", v.ToString().c_str());
    std::printf("\n");
  }
  std::printf("-- %zu row(s)\n", result.rows.size());
  std::printf("%s", FormatExecMetrics(result.metrics, locations).c_str());
  std::printf("%s", FormatPhaseTimings(result.opt_stats,
                                       result.metrics).c_str());
}

void Help() {
  std::printf(
      "commands:\n"
      "  SELECT ...;                  run a query (compliant or rejected)\n"
      "  explain SELECT ...;          show the compliant plan\n"
      "  why SELECT ...;              compliance provenance per SHIP\n"
      "  dot SELECT ...;              Graphviz export of the compliant plan\n"
      "  baseline SELECT ...;         traditional optimizer + verdict\n"
      "  analyze;                     recompute statistics from the data\n"
      "  dump;                        print the deployment (round-trippable)\n"
      "  source <file>;               load a deployment file (see docs)\n"
      "  load <table> <loc> <csv>;    load CSV data into a fragment\n"
      "  lint;                        static analysis of the policy catalog\n"
      "  policy <location>: ship ...; add a policy expression\n"
      "  policy drop <id>;            drop a policy (ids: 'policies;')\n"
      "  policies;                    list installed policies with ids\n"
      "  set <T|C|CR|CRA|open>;       switch policy set\n"
      "  cache <on|off|stats>;        compliant plan cache in front of the\n"
      "                               optimizer; stats break down exact vs\n"
      "                               parameterized hits + tenant counters\n"
      "  tenant <name> <token> [weight [max-inflight [max-queued]]];\n"
      "                               register a tenant (0 = uncapped)\n"
      "  tenants;                     list tenants, quotas, admission stats\n"
      "  quota <name> <weight> <max-inflight> <max-queued>;  update quotas\n"
      "  auth <token|off>;            switch the session's tenant\n"
      "  exec <row|fragment|vector|distributed>;  switch backend\n"
      "  storage <dir|off>;           disk-backed store under <dir> (durable\n"
      "                               + out-of-core scans; 'off' reads all\n"
      "                               fragments back into RAM)\n"
      "  budget <bytes|off>;          per-query memory budget; hash joins\n"
      "                               over it spill to disk (grace join)\n"
      "  deploy <hosts-file>;         connect + push data to location\n"
      "                               servers (host:port loc[,loc] lines)\n"
      "  faults <p|off>;              lossy links: drop probability p\n"
      "  trace <file|off>;            write Chrome trace JSON per query\n"
      "  tables;                      list tables\n"
      "  help; quit;\n");
}

void PrintTenantCounters(QueryService& service) {
  std::printf("  %-10s %6s %9s %9s %9s %8s %8s %9s\n", "tenant", "weight",
              "submitted", "completed", "rejected", "failed", "queued",
              "scheduled");
  for (const TenantServiceStats& t : service.tenant_stats()) {
    std::printf("  %-10s %6d %9lld %9lld %9lld %8lld %8lld %9lld\n",
                t.name.c_str(), t.weight, static_cast<long long>(t.submitted),
                static_cast<long long>(t.completed),
                static_cast<long long>(t.rejected),
                static_cast<long long>(t.failed),
                static_cast<long long>(t.queued),
                static_cast<long long>(t.scheduled));
  }
}

}  // namespace

namespace {

// Builds a fresh engine from a deployment file (see catalog/deployment.h).
Result<std::unique_ptr<Engine>> EngineFromFile(const std::string& path,
                                               PolicyIndexMode index_mode) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::stringstream buffer;
  buffer << in.rdbuf();
  CGQ_ASSIGN_OR_RETURN(Deployment d, ParseDeployment(buffer.str()));
  size_t locations = d.catalog.locations().num_locations();
  auto engine = std::make_unique<Engine>(
      std::move(d.catalog), NetworkModel::DefaultGeo(locations));
  CGQ_RETURN_NOT_OK(engine->set_policy_index_mode(index_mode));
  CGQ_RETURN_NOT_OK(InstallDeploymentPolicies(
      Deployment{Catalog(engine->catalog()), d.policies},
      &engine->policies()));
  return engine;
}

}  // namespace

int main(int argc, char** argv) {
  PolicyIndexMode index_mode = PolicyIndexMode::kFlat;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--policy-index=flat") {
      index_mode = PolicyIndexMode::kFlat;
    } else if (arg == "--policy-index=hier") {
      index_mode = PolicyIndexMode::kHierarchical;
    } else {
      std::printf("usage: %s [--policy-index=flat|hier]\n", argv[0]);
      return 1;
    }
  }

  tpch::TpchConfig config;
  config.scale_factor = 0.002;
  auto catalog = tpch::BuildCatalog(config);
  if (!catalog.ok()) return 1;

  auto engine_ptr = std::make_unique<Engine>(std::move(*catalog),
                                             NetworkModel::DefaultGeo(5));
  if (!engine_ptr->set_policy_index_mode(index_mode).ok()) return 1;
  if (!tpch::InstallPolicySet("CR", &engine_ptr->policies()).ok()) return 1;
  if (!tpch::GenerateData(engine_ptr->catalog(), config,
                          &engine_ptr->store())
           .ok()) {
    return 1;
  }

  std::printf("cgq shell — geo-distributed TPC-H (SF %.3f, policy set CR, "
              "%s policy index)\n"
              "type 'help;' for commands.\n",
              config.scale_factor,
              index_mode == PolicyIndexMode::kHierarchical ? "hier" : "flat");

  // The shell fronts the engine with a single-worker QueryService so
  // tenant registration / auth / quotas behave exactly as they do in a
  // real deployment; the plan cache stays engine-owned ('cache on;').
  ServiceOptions svc_opts;
  svc_opts.max_inflight = 1;
  svc_opts.queue_capacity = 256;
  svc_opts.queue_timeout_ms = 0;  // interactive queries never time out
  svc_opts.enable_plan_cache = false;
  auto service =
      std::make_unique<QueryService>(engine_ptr.get(), svc_opts);
  auto session = std::make_unique<QueryService::Session>(
      service->OpenSession());

  std::string buffer, line;
  std::string trace_path;
  std::unique_ptr<PlanCache> plan_cache;
  while (true) {
    std::printf(buffer.empty() ? "cgq> " : "...> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    buffer += line + "\n";
    if (Trim(buffer).empty()) buffer.clear();
    size_t semi = buffer.find(';');
    while (semi != std::string::npos) {
      std::string command(Trim(buffer.substr(0, semi)));
      buffer.erase(0, semi + 1);
      if (Trim(buffer).empty()) buffer.clear();
      semi = buffer.find(';');
      if (command.empty()) continue;
      std::string lower = ToLower(command);
      Engine& engine = *engine_ptr;

      if (lower == "quit" || lower == "exit") return 0;
      if (lower.rfind("source ", 0) == 0) {
        std::string path(Trim(command.substr(7)));
        auto fresh = EngineFromFile(path, index_mode);
        if (!fresh.ok()) {
          std::printf("%s\n", fresh.status().ToString().c_str());
          continue;
        }
        session.reset();
        service.reset();  // the service must not outlive its engine
        engine_ptr = std::move(*fresh);
        if (plan_cache != nullptr) {
          plan_cache->Clear();  // keyed plans belong to the old deployment
          engine_ptr->set_plan_cache(plan_cache.get());
        }
        service = std::make_unique<QueryService>(engine_ptr.get(), svc_opts);
        session = std::make_unique<QueryService::Session>(
            service->OpenSession());
        std::printf("loaded deployment '%s' (%zu locations, %zu tables); "
                    "use 'load <table> <location> <csv>;' for data\n",
                    path.c_str(),
                    engine_ptr->catalog().locations().num_locations(),
                    engine_ptr->catalog().TableNames().size());
        continue;
      }
      if (lower.rfind("load ", 0) == 0) {
        std::istringstream args(command.substr(5));
        std::string table, location, path;
        args >> table >> location >> path;
        if (path.empty()) {
          std::printf("usage: load <table> <location> <csv-file>;\n");
          continue;
        }
        auto loc = engine.catalog().locations().GetId(location);
        if (!loc.ok()) {
          std::printf("%s\n", loc.status().ToString().c_str());
          continue;
        }
        std::ifstream in(path);
        if (!in) {
          std::printf("cannot open '%s'\n", path.c_str());
          continue;
        }
        std::stringstream csv;
        csv << in.rdbuf();
        auto n = LoadCsv(engine.catalog(), table, *loc, csv.str(),
                         &engine.store());
        std::printf("%s\n", n.ok()
                                ? (std::to_string(*n) + " rows loaded").c_str()
                                : n.status().ToString().c_str());
        continue;
      }
      if (lower == "help") {
        Help();
        continue;
      }
      if (lower == "tables") {
        for (const std::string& t : engine.catalog().TableNames()) {
          auto def = engine.catalog().GetTable(t);
          std::printf("  %-10s @ %s (%0.f rows at SF)\n", t.c_str(),
                      engine.catalog()
                          .locations()
                          .SetToString((*def)->LocationsOf())
                          .c_str(),
                      (*def)->stats.row_count);
        }
        continue;
      }
      if (lower == "policies") {
        const LocationCatalog& locs = engine.catalog().locations();
        for (LocationId l = 0; l < locs.num_locations(); ++l) {
          for (const PolicyExpression& e : engine.policies().For(l)) {
            std::printf("  #%-3lld [%s] %s\n",
                        static_cast<long long>(e.id), locs.GetName(l).c_str(),
                        e.ToString(locs).c_str());
          }
          for (const PolicyCatalog::AbsorbedPolicy& a :
               engine.policies().Absorbed(l)) {
            std::printf("  #%-3lld [%s] %s (merged into #%lld)\n",
                        static_cast<long long>(a.expr.id),
                        locs.GetName(l).c_str(),
                        a.expr.ToString(locs).c_str(),
                        static_cast<long long>(a.absorbed_by));
          }
        }
        const PolicyCatalog::IndexStats istats = engine.policies().Stats();
        std::printf("  (policy epoch %llu | index %s: %zu active, "
                    "%zu merged, %zu buckets, largest %zu)\n",
                    static_cast<unsigned long long>(
                        engine.policies().epoch()),
                    engine.policies().index_mode() ==
                            PolicyIndexMode::kHierarchical
                        ? "hier"
                        : "flat",
                    istats.active, istats.absorbed, istats.buckets,
                    istats.max_bucket);
        continue;
      }
      if (lower.rfind("set ", 0) == 0) {
        std::string name = ToUpper(std::string(Trim(command.substr(4))));
        Status s = (name == "OPEN")
                       ? tpch::InstallUnrestrictedPolicies(&engine.policies())
                       : tpch::InstallPolicySet(name, &engine.policies());
        std::printf("%s\n", s.ok() ? "ok" : s.ToString().c_str());
        continue;
      }
      if (lower.rfind("policy drop ", 0) == 0) {
        std::string arg(Trim(command.substr(12)));
        char* end = nullptr;
        long long id = std::strtoll(arg.c_str(), &end, 10);
        if (arg.empty() || end == nullptr || *end != '\0') {
          std::printf("usage: policy drop <id>; (ids: 'policies;')\n");
          continue;
        }
        Status s = engine.policies().RemovePolicy(id);
        std::printf("%s\n", s.ok() ? "ok (cached plans depending on it are "
                                     "invalid from this epoch)"
                                   : s.ToString().c_str());
        continue;
      }
      if (lower.rfind("policy ", 0) == 0) {
        size_t colon = command.find(':');
        if (colon == std::string::npos) {
          std::printf("usage: policy <location>: ship ...;\n");
          continue;
        }
        std::string loc(Trim(command.substr(7, colon - 7)));
        std::string text(Trim(command.substr(colon + 1)));
        Status s = engine.AddPolicy(loc, text);
        std::printf("%s\n", s.ok() ? "ok" : s.ToString().c_str());
        continue;
      }
      if (lower == "lint") {
        auto findings = LintPolicies(engine.catalog(), engine.policies());
        if (findings.empty()) std::printf("no findings\n");
        for (const PolicyLintFinding& f : findings) {
          std::printf("  %s\n", f.ToString().c_str());
        }
        continue;
      }
      if (lower == "dump") {
        std::printf("%s",
                    WriteDeployment(engine.catalog(), engine.policies())
                        .c_str());
        continue;
      }
      if (lower == "analyze") {
        Status s = AnalyzeAll(engine.store(), &engine.catalog());
        std::printf("%s\n", s.ok() ? "statistics refreshed"
                                   : s.ToString().c_str());
        continue;
      }
      if (lower.rfind("dot ", 0) == 0) {
        auto r = engine.Optimize(command.substr(4));
        if (!r.ok()) {
          std::printf("%s\n", r.status().ToString().c_str());
          continue;
        }
        std::printf("%s",
                    PlanToDot(*r->plan, &engine.catalog().locations())
                        .c_str());
        continue;
      }
      if (lower.rfind("why ", 0) == 0) {
        auto r = engine.Optimize(command.substr(4));
        if (!r.ok()) {
          std::printf("%s\n", r.status().ToString().c_str());
          continue;
        }
        PolicyEvaluator evaluator(&engine.catalog(), &engine.policies());
        std::printf("%s",
                    ExplainCompliance(*r->plan, evaluator,
                                      engine.catalog().locations())
                        .c_str());
        continue;
      }
      if (lower.rfind("explain ", 0) == 0 ||
          lower.rfind("baseline ", 0) == 0) {
        bool baseline = lower[0] == 'b';
        std::string sql = command.substr(baseline ? 9 : 8);
        OptimizerOptions opts;
        opts.compliant = !baseline;
        auto r = engine.Optimize(sql, opts);
        if (!r.ok()) {
          std::printf("%s\n", r.status().ToString().c_str());
          continue;
        }
        std::printf("%s plan (%s), est. communication %.1f ms:\n%s",
                    baseline ? "traditional" : "compliant",
                    r->compliant ? "compliant" : "NON-COMPLIANT",
                    r->comm_cost_ms,
                    PlanToString(*r->plan, &engine.catalog().locations())
                        .c_str());
        for (const std::string& v : r->violations) {
          std::printf("  violation: %s\n", v.c_str());
        }
        std::printf("%s", FormatPhaseTimings(r->stats, ExecMetrics()).c_str());
        continue;
      }
      if (lower.rfind("select", 0) == 0) {
        auto r = session->Run(command);
        if (engine.tracing() && !trace_path.empty()) {
          Status ts = engine.DumpTraceToFile(trace_path);
          std::printf("%s\n",
                      ts.ok() ? ("trace written to " + trace_path).c_str()
                              : ts.ToString().c_str());
        }
        if (!r.ok()) {
          std::printf("%s\n", r.status().ToString().c_str());
          continue;
        }
        PrintResult(*r, &engine.catalog().locations());
        continue;
      }
      if (lower.rfind("exec ", 0) == 0) {
        std::string mode(Trim(command.substr(5)));
        if (mode == "row") {
          engine.set_exec_mode(ExecMode::kRow);
        } else if (mode == "fragment") {
          engine.set_exec_mode(ExecMode::kFragment);
        } else if (mode == "vector") {
          engine.set_exec_mode(ExecMode::kVector);
        } else if (mode == "distributed") {
          if (!engine.cluster().connected()) {
            std::printf(
                "no cluster connected; run 'deploy <hosts-file>;' first\n");
            continue;
          }
          engine.set_exec_mode(ExecMode::kDistributed);
        } else {
          std::printf(
              "unknown backend '%s' (row|fragment|vector|distributed)\n",
              mode.c_str());
          continue;
        }
        // Sessions snapshot executor options at open time; follow the
        // engine-level switch so subsequent queries use the new backend.
        session->executor_options() = engine.default_exec_options();
        std::printf("execution backend: %s\n",
                    ExecModeToString(engine.default_exec_options().mode));
        continue;
      }
      if (lower.rfind("storage", 0) == 0) {
        std::string arg(Trim(command.substr(7)));
        if (arg.empty()) {
          std::printf("storage: %s\n",
                      engine.store().storage_mode() == StorageMode::kDisk
                          ? ("disk (" + engine.store().data_dir() + ")")
                                .c_str()
                          : "memory");
        } else if (arg == "off") {
          Status s = engine.DisableDiskStorage();
          std::printf("%s\n", s.ok() ? "storage: memory (disk state left "
                                       "intact on disk)"
                                     : s.ToString().c_str());
        } else {
          Status s = engine.EnableDiskStorage(arg);
          std::printf("%s\n",
                      s.ok() ? ("storage: disk (" + arg +
                                "); loads are durable, scans stream "
                                "blocks — see the 'storage:' result "
                                "footer line")
                                   .c_str()
                             : s.ToString().c_str());
        }
        continue;
      }
      if (lower.rfind("budget", 0) == 0) {
        std::string arg(Trim(command.substr(6)));
        if (arg.empty() || arg == "off") {
          engine.default_exec_options().memory_budget_bytes = 0;
          std::printf("memory budget: unlimited\n");
        } else {
          char* end = nullptr;
          unsigned long long bytes = std::strtoull(arg.c_str(), &end, 10);
          if (end == nullptr || *end != '\0' || bytes == 0) {
            std::printf("usage: budget <bytes|off>;\n");
            continue;
          }
          engine.default_exec_options().memory_budget_bytes = bytes;
          std::printf("memory budget: %llu bytes per query (hash joins "
                      "over it grace-spill; see the 'storage:' footer)\n",
                      bytes);
        }
        session->executor_options() = engine.default_exec_options();
        continue;
      }
      if (lower.rfind("deploy ", 0) == 0) {
        std::string path(Trim(command.substr(7)));
        auto endpoints = net::ParseHostsFile(path);
        if (!endpoints.ok()) {
          std::printf("%s\n", endpoints.status().ToString().c_str());
          continue;
        }
        Status s = engine.ConnectCluster(*endpoints);
        if (s.ok()) s = engine.DeployStore();
        if (!s.ok()) {
          std::printf("%s\n", s.ToString().c_str());
          continue;
        }
        std::printf(
            "deployed %zu location(s) across %zu server(s); "
            "'exec distributed;' to use them\n",
            endpoints->size(),
            [&] {
              std::set<net::Endpoint> servers;
              for (const auto& [loc, ep] : *endpoints) servers.insert(ep);
              return servers.size();
            }());
        continue;
      }
      if (lower.rfind("cache", 0) == 0) {
        std::string arg(Trim(command.substr(5)));
        if (arg == "on") {
          if (plan_cache == nullptr) {
            plan_cache = std::make_unique<PlanCache>();
          }
          engine.set_plan_cache(plan_cache.get());
          std::printf("plan cache on (%zu MB budget); repeated queries skip "
                      "the optimizer until a relevant policy changes\n",
                      plan_cache->options().max_bytes >> 20);
        } else if (arg == "off") {
          engine.set_plan_cache(nullptr);
          std::printf("plan cache off\n");
        } else if (arg == "stats") {
          if (plan_cache == nullptr) {
            std::printf("plan cache was never enabled\n");
          } else {
            PlanCacheStats cs = plan_cache->stats();
            std::printf(
                "plan cache: %lld hit(s) (%lld exact, %lld parameterized), "
                "%lld miss(es), %lld invalidation(s), %lld revalidation(s), "
                "%lld eviction(s); %zu entr%s / %.1f KB resident; policy "
                "epoch %llu\n",
                static_cast<long long>(cs.hits),
                static_cast<long long>(cs.exact_hits),
                static_cast<long long>(cs.param_hits),
                static_cast<long long>(cs.misses),
                static_cast<long long>(cs.invalidations),
                static_cast<long long>(cs.revalidations),
                static_cast<long long>(cs.evictions), cs.entries,
                cs.entries == 1 ? "y" : "ies", cs.bytes / 1024.0,
                static_cast<unsigned long long>(engine.policies().epoch()));
            PrintTenantCounters(*service);
          }
        } else {
          std::printf("usage: cache <on|off|stats>;\n");
        }
        continue;
      }
      if (lower == "tenants") {
        PrintTenantCounters(*service);
        continue;
      }
      if (lower.rfind("tenant ", 0) == 0) {
        std::istringstream args(command.substr(7));
        std::string name, token;
        TenantQuotas q;
        args >> name >> token >> q.weight >> q.max_inflight >> q.max_queued;
        if (name.empty() || token.empty()) {
          std::printf("usage: tenant <name> <token> "
                      "[weight [max-inflight [max-queued]]];\n");
          continue;
        }
        auto id = service->tenants().Register(name, token, q);
        if (!id.ok()) {
          std::printf("%s\n", id.status().ToString().c_str());
          continue;
        }
        std::printf("tenant '%s' registered (id %lld); "
                    "'auth %s;' to run as it\n",
                    name.c_str(), static_cast<long long>(*id),
                    token.c_str());
        continue;
      }
      if (lower.rfind("quota ", 0) == 0) {
        std::istringstream args(command.substr(6));
        std::string name;
        TenantQuotas q;
        args >> name >> q.weight >> q.max_inflight >> q.max_queued;
        if (name.empty() || args.fail()) {
          std::printf(
              "usage: quota <name> <weight> <max-inflight> <max-queued>;\n");
          continue;
        }
        Status s = Status::NotFound("unknown tenant '" + name + "'");
        for (const TenantInfo& t : service->tenants().List()) {
          if (t.name == name) {
            s = service->tenants().SetQuotas(t.id, q);
            break;
          }
        }
        std::printf("%s\n", s.ok() ? "ok" : s.ToString().c_str());
        continue;
      }
      if (lower.rfind("auth", 0) == 0) {
        std::string token(Trim(command.substr(4)));
        if (token.empty() || token == "off") {
          session = std::make_unique<QueryService::Session>(
              service->OpenSession());
          std::printf("session tenant: default\n");
          continue;
        }
        auto opened = service->OpenSession(token);
        if (!opened.ok()) {
          std::printf("%s\n", opened.status().ToString().c_str());
          continue;
        }
        session = std::make_unique<QueryService::Session>(std::move(*opened));
        session->executor_options() = engine.default_exec_options();
        std::printf("session tenant: %s\n", session->tenant_name().c_str());
        continue;
      }
      if (lower.rfind("trace", 0) == 0) {
        std::string arg(Trim(command.substr(5)));
        if (arg.empty() || arg == "off") {
          engine.set_tracing(false);
          trace_path.clear();
          std::printf("tracing off\n");
        } else {
          trace_path = arg;
          engine.set_tracing(true);
          std::printf("tracing on: every query writes Chrome trace JSON "
                      "to '%s' (open in chrome://tracing or "
                      "ui.perfetto.dev)\n", trace_path.c_str());
        }
        continue;
      }
      if (lower.rfind("faults", 0) == 0) {
        std::string arg(Trim(command.substr(6)));
        if (arg.empty() || arg == "off") {
          engine.mutable_net().ClearLinkFaults();
          std::printf("link faults cleared\n");
        } else {
          double p = std::atof(arg.c_str());
          if (p < 0 || p >= 1) {
            std::printf("faults: drop probability must be in [0, 1), "
                        "got '%s'\n", arg.c_str());
            continue;
          }
          engine.mutable_net().ApplyLossyProfile(p, /*extra_latency_ms=*/5);
          std::printf(
              "lossy profile: every cross-site link drops %.0f%% of "
              "batches (retries show in the result footer)\n", p * 100);
        }
        continue;
      }
      std::printf("unknown command (try 'help;')\n");
    }
  }
  std::printf("\n");
  return 0;
}
