// Quickstart: a two-site deployment with one dataflow policy.
//
// Demonstrates the end-to-end API: build a catalog, register policies,
// load data, and run queries through the compliance-based query processor.
// A query whose only plans would violate the policy is rejected.

#include <cstdio>

#include "core/engine.h"

using namespace cgq;  // NOLINT: example brevity

int main() {
  // 1. Two locations and one table per location.
  Catalog catalog;
  LocationId berlin = *catalog.mutable_locations().AddLocation("berlin");
  LocationId tokyo = *catalog.mutable_locations().AddLocation("tokyo");

  TableDef users;
  users.name = "users";
  users.schema = Schema({{"id", DataType::kInt64},
                         {"name", DataType::kString},
                         {"email", DataType::kString}});
  users.fragments = {TableFragment{berlin, 1.0}};
  users.stats.row_count = 4;
  if (Status s = catalog.AddTable(users); !s.ok()) return 1;

  TableDef clicks;
  clicks.name = "clicks";
  clicks.schema = Schema({{"user_id", DataType::kInt64},
                          {"url", DataType::kString},
                          {"ms", DataType::kInt64}});
  clicks.fragments = {TableFragment{tokyo, 1.0}};
  clicks.stats.row_count = 6;
  if (Status s = catalog.AddTable(clicks); !s.ok()) return 1;

  Engine engine(std::move(catalog), NetworkModel::DefaultGeo(2));

  // 2. Dataflow policies: user ids and names may leave Berlin, email
  //    addresses may not; click URLs and dwell times may leave Tokyo but
  //    the user ids they reference may not.
  if (!engine.AddPolicy("berlin", "ship id, name from users to tokyo").ok())
    return 1;
  if (!engine.AddPolicy("tokyo", "ship url, ms from clicks to berlin").ok())
    return 1;

  // 3. Load data.
  engine.store().Put(berlin, "users",
                     {{Value::Int64(1), Value::String("ada"),
                       Value::String("ada@example.com")},
                      {Value::Int64(2), Value::String("alan"),
                       Value::String("alan@example.com")}});
  engine.store().Put(tokyo, "clicks",
                     {{Value::Int64(1), Value::String("/home"),
                       Value::Int64(120)},
                      {Value::Int64(1), Value::String("/buy"),
                       Value::Int64(80)},
                      {Value::Int64(2), Value::String("/home"),
                       Value::Int64(95)}});

  // 4. A legal query: only compliant columns cross the border.
  const char* legal =
      "SELECT u.name, c.url FROM users u, clicks c WHERE u.id = c.user_id";
  auto plan = engine.Optimize(legal);
  if (!plan.ok()) {
    std::printf("unexpected rejection: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("== compliant plan ==\n%s\n",
              PlanToString(*plan->plan, &engine.catalog().locations())
                  .c_str());
  auto result = engine.Run(legal);
  std::printf("rows:\n");
  for (const Row& row : result->rows) {
    for (const Value& v : row) std::printf("  %s", v.ToString().c_str());
    std::printf("\n");
  }
  std::printf("shipped %.0f bytes, simulated network time %.2f ms\n\n",
              result->metrics.bytes_shipped, result->metrics.network_ms);

  // 5. An illegal query: emails would have to leave Berlin (the join can
  //    only run where both inputs may be shipped).
  const char* illegal =
      "SELECT u.email, c.url FROM users u, clicks c WHERE u.id = c.user_id";
  auto rejected = engine.Run(illegal);
  std::printf("query selecting email -> %s\n",
              rejected.ok() ? "executed (unexpected!)"
                            : rejected.status().ToString().c_str());
  return rejected.ok() ? 1 : 0;
}
