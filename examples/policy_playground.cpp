// Policy playground: reproduces Table 1 of the paper interactively.
//
// Builds relation T(A..G) at l1 with policy expressions e1-e4, then runs
// the policy evaluation algorithm (Algorithm 1) on a set of queries and
// prints the legal ship-to location set for each.

#include <cstdio>

#include "core/policy.h"
#include "core/policy_evaluator.h"
#include "plan/binder.h"
#include "plan/builder.h"
#include "plan/summary.h"
#include "sql/parser.h"

using namespace cgq;  // NOLINT: example brevity

int main() {
  Catalog catalog;
  for (const char* l : {"l1", "l2", "l3", "l4"}) {
    (void)*catalog.mutable_locations().AddLocation(l);
  }
  TableDef t;
  t.name = "t";
  std::vector<ColumnDef> cols;
  for (const char* c : {"a", "b", "c", "d", "e", "f", "g"}) {
    cols.push_back({c, DataType::kInt64});
  }
  t.schema = Schema(cols);
  t.fragments = {TableFragment{0, 1.0}};
  t.stats.row_count = 1000;
  (void)catalog.AddTable(t);

  PolicyCatalog policies(&catalog);
  const char* expressions[] = {
      "ship a, b, c from t to l2, l3",
      "ship a, b from t to l1, l2, l3, l4",
      "ship a, d from t to l1, l3 where b > 10",
      "ship f, g as aggregates sum, avg from t to l1, l2 group by e, c",
  };
  std::printf("policy expressions over T(a..g) at l1:\n");
  int i = 1;
  for (const char* e : expressions) {
    if (Status s = policies.AddPolicyText("l1", e); !s.ok()) {
      std::printf("bad expression: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("  e%d = %s\n", i++, e);
  }

  PolicyEvaluator evaluator(&catalog, &policies);
  const char* queries[] = {
      // Table 1's q1 and q2.
      "SELECT a, c, d FROM t WHERE b > 15",
      "SELECT c, SUM(f * (1 - g)) FROM t GROUP BY c",
      // More probes.
      "SELECT a, b FROM t",
      "SELECT a, d FROM t WHERE b > 5",
      "SELECT f FROM t",
      "SELECT e, SUM(f) FROM t GROUP BY e",
      "SELECT e, MIN(f) FROM t GROUP BY e",
      "SELECT SUM(g) FROM t",
  };

  std::printf("\n%-50s  legal ship-to set\n", "query");
  for (const char* sql : queries) {
    auto ast = ParseQuery(sql);
    if (!ast.ok()) continue;
    PlannerContext ctx(&catalog);
    auto bound = BindQuery(*ast, &ctx);
    if (!bound.ok()) continue;
    auto plan = BuildLogicalPlan(*bound, &ctx);
    if (!plan.ok()) continue;
    QuerySummary summary = SummarizePlan(*plan->root);
    LocationSet legal = evaluator.Evaluate(summary, 0);
    std::printf("%-50s  %s\n", sql,
                catalog.locations().SetToString(legal).c_str());
  }
  std::printf("\n(η = %lld expressions were considered in total)\n",
              static_cast<long long>(evaluator.stats().eta));
  return 0;
}
