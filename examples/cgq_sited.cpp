// cgq_sited: a standalone location server. Hosts the table-store slices
// of one or more locations and executes plan fragments dispatched by a
// coordinator (cgq_coord, the shell's `deploy` statement, or bench_micro
// --connect) over the length-prefixed wire protocol.
//
//   cgq_sited --locations=0,1 [--port=0] [--host=127.0.0.1]
//             [--port-file=PATH] [--data-dir=DIR]
//
// The server binds an ephemeral port by default (--port=0) and reports
// the kernel's choice on stdout and, when --port-file is given, as a
// single line in that file — which is how ci/run_loopback.sh assembles
// the coordinator's hosts file without hardcoding a port anywhere. Data
// arrives via the coordinator's deployment (LoadTable frames); without
// --data-dir the process starts empty. With --data-dir=DIR the store
// runs disk-backed (src/storage/): every loaded fragment is durable
// before its LoadAck, and a restart on the same DIR recovers the hosted
// fragments without re-deployment. It serves until SIGINT/SIGTERM.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/server.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --locations=L[,L...] [--port=N] [--host=H] "
               "[--port-file=PATH] [--data-dir=DIR]\n",
               argv0);
  std::exit(2);
}

std::vector<cgq::LocationId> ParseLocations(const std::string& spec) {
  std::vector<cgq::LocationId> out;
  std::string token;
  for (size_t i = 0; i <= spec.size(); ++i) {
    if (i == spec.size() || spec[i] == ',') {
      if (token.empty()) continue;
      out.push_back(
          static_cast<cgq::LocationId>(std::strtoul(token.c_str(),
                                                    nullptr, 10)));
      token.clear();
    } else {
      token += spec[i];
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  cgq::net::SiteServer::Options options;
  std::string port_file;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--locations=", 12) == 0) {
      options.locations = ParseLocations(a + 12);
    } else if (std::strncmp(a, "--port=", 7) == 0) {
      options.port = static_cast<uint16_t>(std::atoi(a + 7));
    } else if (std::strncmp(a, "--host=", 7) == 0) {
      options.host = a + 7;
    } else if (std::strncmp(a, "--port-file=", 12) == 0) {
      port_file = a + 12;
    } else if (std::strncmp(a, "--data-dir=", 11) == 0) {
      options.data_dir = a + 11;
    } else {
      Usage(argv[0]);
    }
  }
  if (options.locations.empty()) Usage(argv[0]);

  cgq::net::SiteServer server(options);
  cgq::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cgq_sited: %s\n", started.ToString().c_str());
    return 1;
  }

  std::string locs;
  for (cgq::LocationId l : server.locations()) {
    if (!locs.empty()) locs += ",";
    locs += "l" + std::to_string(l);
  }
  std::printf("cgq_sited listening on %s:%u locations=%s\n",
              options.host.c_str(), server.port(), locs.c_str());
  std::fflush(stdout);
  if (!port_file.empty()) {
    // Written last, in one shot: a non-empty port file means the server
    // is accepting connections on that port.
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cgq_sited: cannot write %s\n",
                   port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%u\n", server.port());
    std::fclose(f);
  }

  // Serve until asked to stop.
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
  int sig = 0;
  sigwait(&set, &sig);

  std::printf("cgq_sited: signal %d, %lld fragment(s) served, stopping\n",
              sig, static_cast<long long>(server.fragments_completed()));
  server.Stop();
  return 0;
}
