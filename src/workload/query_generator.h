#ifndef CGQ_WORKLOAD_QUERY_GENERATOR_H_
#define CGQ_WORKLOAD_QUERY_GENERATOR_H_

#include <string>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "workload/properties.h"

namespace cgq {

/// Configuration of the ad-hoc query generator (§7.2): random PK-FK join
/// queries spanning two or more locations; 55% reference two tables, 35%
/// three, 10% four; ~30% aggregate; ~4 output columns; 3-4 predicates.
struct QueryGeneratorConfig {
  uint64_t seed = 7;
  double two_table_fraction = 0.55;
  double three_table_fraction = 0.35;
  double aggregate_fraction = 0.30;
  int min_predicates = 3;
  int max_predicates = 4;
  int output_columns = 4;
};

/// Generates random ad-hoc SQL queries over a geo-distributed schema,
/// walking the PK-FK join graph so every query is connected and spans at
/// least two locations.
class AdhocQueryGenerator {
 public:
  AdhocQueryGenerator(const Catalog* catalog,
                      const WorkloadProperties* properties,
                      QueryGeneratorConfig config)
      : catalog_(catalog),
        properties_(properties),
        config_(config),
        rng_(config.seed) {}

  /// Next random query as SQL text. Deterministic given the seed.
  std::string Next();

 private:
  int PickTableCount();

  const Catalog* catalog_;
  const WorkloadProperties* properties_;
  QueryGeneratorConfig config_;
  Rng rng_;
};

}  // namespace cgq

#endif  // CGQ_WORKLOAD_QUERY_GENERATOR_H_
