#ifndef CGQ_WORKLOAD_PROPERTIES_H_
#define CGQ_WORKLOAD_PROPERTIES_H_

#include <string>
#include <vector>

namespace cgq {

/// How the workload generators may use one column (the paper's "property
/// file", §7.1: which attributes can be aggregated or serve as grouping
/// key, which range predicates can be imposed, ...).
struct ColumnProperty {
  std::string table;
  std::string column;
  bool aggregatable = false;  ///< may appear under SUM/AVG/MIN/MAX
  bool groupable = false;     ///< may appear in GROUP BY

  enum class PredicateKind {
    kNone,        ///< never used in predicates
    kIntRange,    ///< integer range/equality predicates
    kDoubleRange,
    kDateRange,   ///< values are day numbers
    kCategorical  ///< equality/IN over `categories`
  };
  PredicateKind predicate = PredicateKind::kNone;
  double min = 0;
  double max = 0;
  std::vector<std::string> categories;
};

/// A PK-FK join edge usable by the ad-hoc query generator.
struct JoinEdge {
  std::string table1, column1;
  std::string table2, column2;
};

/// Schema knowledge driving both workload generators.
struct WorkloadProperties {
  std::vector<JoinEdge> edges;
  std::vector<ColumnProperty> columns;

  const ColumnProperty* Find(const std::string& table,
                             const std::string& column) const {
    for (const ColumnProperty& c : columns) {
      if (c.table == table && c.column == column) return &c;
    }
    return nullptr;
  }
};

/// The property file for the geo-distributed TPC-H schema.
WorkloadProperties TpchWorkloadProperties();

}  // namespace cgq

#endif  // CGQ_WORKLOAD_PROPERTIES_H_
