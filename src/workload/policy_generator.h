#ifndef CGQ_WORKLOAD_POLICY_GENERATOR_H_
#define CGQ_WORKLOAD_POLICY_GENERATOR_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "core/policy.h"
#include "workload/properties.h"

namespace cgq {

/// Configuration of the policy-expression generator (§7.1): instantiates
/// the T / C / CR / CR+A templates against a schema and its property file.
struct PolicyGeneratorConfig {
  uint64_t seed = 11;
  /// "T" (whole table), "C" (+columns), "CR" (+rows), "CRA" (+aggregates),
  /// or "F" (fine-grained: 1..max_columns columns, row conditions on
  /// `predicate_fraction` of expressions — the production-scale shape that
  /// 10k-policy catalogs are made of).
  std::string template_name = "CRA";
  size_t count = 10;
  /// Number of locations in each expression's `to` list (Fig. 8 sweeps
  /// this). Clamped to the number of catalog locations.
  size_t locations_per_expr = 2;
  /// Emit one `ship * from t to <hub>` per table first, so every query
  /// keeps at least one compliant plan (the paper's generated sets are of
  /// this form: "there always exists at least one compliant QEP").
  bool ensure_feasible = true;
  LocationId hub = 3;
  /// Template F only: columns per expression are drawn from
  /// [1, max_columns] (clamped to the schema width).
  size_t max_columns = 2;
  /// Template F only: probability an expression carries a row condition.
  double predicate_fraction = 0.9;
};

/// One generated policy expression and the location whose data it governs.
struct GeneratedPolicy {
  std::string location;
  std::string text;
};

/// Random but reproducible policy-expression sets.
class PolicyExpressionGenerator {
 public:
  PolicyExpressionGenerator(const Catalog* catalog,
                            const WorkloadProperties* properties,
                            PolicyGeneratorConfig config)
      : catalog_(catalog),
        properties_(properties),
        config_(config),
        rng_(config.seed) {}

  std::vector<GeneratedPolicy> Generate();

  /// Generates and installs into `policies` (clearing it first).
  Status InstallInto(PolicyCatalog* policies);

 private:
  std::string RandomLocations(LocationSet* chosen);
  std::string RandomExpression(const TableDef& table);

  const Catalog* catalog_;
  const WorkloadProperties* properties_;
  PolicyGeneratorConfig config_;
  Rng rng_;
};

}  // namespace cgq

#endif  // CGQ_WORKLOAD_POLICY_GENERATOR_H_
