#include "workload/query_generator.h"

#include <algorithm>
#include <set>

#include "common/str_util.h"
#include "types/date.h"

namespace cgq {

namespace {

using PK = ColumnProperty::PredicateKind;

std::string FormatLiteral(const ColumnProperty& col, double v) {
  switch (col.predicate) {
    case PK::kIntRange:
      return std::to_string(static_cast<int64_t>(v));
    case PK::kDoubleRange: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f", v);
      return buf;
    }
    case PK::kDateRange:
      return "DATE '" + FormatDate(static_cast<int64_t>(v)) + "'";
    default:
      return std::to_string(v);
  }
}

}  // namespace

int AdhocQueryGenerator::PickTableCount() {
  double r = rng_.NextDouble();
  if (r < config_.two_table_fraction) return 2;
  if (r < config_.two_table_fraction + config_.three_table_fraction) return 3;
  return 4;
}

std::string AdhocQueryGenerator::Next() {
  // Choose the table count once: retries (e.g. same-location table pairs)
  // must not skew the 55/35/10 distribution.
  const int want = PickTableCount();
  for (int attempt = 0; attempt < 100; ++attempt) {

    // Random connected subgraph of the PK-FK graph.
    std::vector<std::string> tables;
    std::vector<const JoinEdge*> used_edges;
    {
      const JoinEdge& first = properties_->edges[static_cast<size_t>(
          rng_.Uniform(0, static_cast<int64_t>(properties_->edges.size()) -
                              1))];
      tables = {first.table1, first.table2};
      used_edges = {&first};
      while (static_cast<int>(tables.size()) < want) {
        std::vector<const JoinEdge*> candidates;
        for (const JoinEdge& e : properties_->edges) {
          bool has1 = std::find(tables.begin(), tables.end(), e.table1) !=
                      tables.end();
          bool has2 = std::find(tables.begin(), tables.end(), e.table2) !=
                      tables.end();
          if (has1 != has2) candidates.push_back(&e);
        }
        if (candidates.empty()) break;
        const JoinEdge* e = rng_.Pick(candidates);
        used_edges.push_back(e);
        tables.push_back(std::find(tables.begin(), tables.end(),
                                   e->table1) == tables.end()
                             ? e->table1
                             : e->table2);
      }
    }
    if (static_cast<int>(tables.size()) < 2) continue;

    // Must span >= 2 locations.
    std::set<LocationId> locations;
    for (const std::string& t : tables) {
      auto def = catalog_->GetTable(t);
      if (!def.ok()) continue;
      for (LocationId l : (*def)->LocationsOf().ToVector()) {
        locations.insert(l);
      }
    }
    if (locations.size() < 2) continue;

    bool aggregate = rng_.Bernoulli(config_.aggregate_fraction);

    // Candidate columns of the chosen tables.
    std::vector<const ColumnProperty*> in_scope;
    for (const ColumnProperty& c : properties_->columns) {
      if (std::find(tables.begin(), tables.end(), c.table) != tables.end()) {
        in_scope.push_back(&c);
      }
    }
    if (in_scope.empty()) continue;

    // Output columns.
    std::vector<std::string> select_items;
    std::vector<std::string> group_by;
    if (aggregate) {
      std::vector<const ColumnProperty*> measures, keys;
      for (const ColumnProperty* c : in_scope) {
        if (c->aggregatable) measures.push_back(c);
        if (c->groupable) keys.push_back(c);
      }
      if (measures.empty() || keys.empty()) continue;
      int num_keys = static_cast<int>(rng_.Uniform(1, 2));
      for (size_t i : rng_.SampleIndices(keys.size(),
                                         static_cast<size_t>(num_keys))) {
        std::string col = keys[i]->table + "." + keys[i]->column;
        if (std::find(group_by.begin(), group_by.end(), col) ==
            group_by.end()) {
          group_by.push_back(col);
          select_items.push_back(col);
        }
      }
      static const char* kFns[] = {"SUM", "AVG", "MIN", "MAX"};
      int num_aggs = static_cast<int>(rng_.Uniform(1, 2));
      for (size_t i :
           rng_.SampleIndices(measures.size(), static_cast<size_t>(num_aggs))) {
        select_items.push_back(
            std::string(kFns[rng_.Uniform(0, 3)]) + "(" +
            measures[i]->table + "." + measures[i]->column + ") AS agg" +
            std::to_string(select_items.size()));
      }
    } else {
      size_t want_cols = static_cast<size_t>(config_.output_columns);
      for (size_t i : rng_.SampleIndices(in_scope.size(), want_cols)) {
        select_items.push_back(in_scope[i]->table + "." +
                               in_scope[i]->column);
      }
    }
    if (select_items.empty()) continue;

    // Join predicates from the used edges.
    std::vector<std::string> conjuncts;
    for (const JoinEdge* e : used_edges) {
      conjuncts.push_back(e->table1 + "." + e->column1 + " = " + e->table2 +
                          "." + e->column2);
    }

    // Filter predicates.
    std::vector<const ColumnProperty*> filterable;
    for (const ColumnProperty* c : in_scope) {
      if (c->predicate != PK::kNone) filterable.push_back(c);
    }
    int want_preds = static_cast<int>(
        rng_.Uniform(config_.min_predicates, config_.max_predicates));
    for (size_t i : rng_.SampleIndices(filterable.size(),
                                       static_cast<size_t>(want_preds))) {
      const ColumnProperty& c = *filterable[i];
      std::string ref = c.table + "." + c.column;
      if (c.predicate == PK::kCategorical) {
        conjuncts.push_back(ref + " = '" + rng_.Pick(c.categories) + "'");
      } else {
        double span = c.max - c.min;
        double lo = c.min + rng_.NextDouble() * span * 0.6;
        switch (rng_.Uniform(0, 2)) {
          case 0:
            conjuncts.push_back(ref + " >= " + FormatLiteral(c, lo));
            break;
          case 1:
            conjuncts.push_back(ref + " < " +
                                FormatLiteral(c, lo + span * 0.3));
            break;
          default:
            conjuncts.push_back(ref + " BETWEEN " + FormatLiteral(c, lo) +
                                " AND " +
                                FormatLiteral(c, lo + span * 0.3));
            break;
        }
      }
    }

    std::string sql = "SELECT " + Join(select_items, ", ") + " FROM " +
                      Join(tables, ", ");
    if (!conjuncts.empty()) sql += " WHERE " + Join(conjuncts, " AND ");
    if (!group_by.empty()) sql += " GROUP BY " + Join(group_by, ", ");
    return sql;
  }
  // Pathological schema; return a trivial query rather than looping.
  return "SELECT nation.name FROM nation, region "
         "WHERE nation.regionkey = region.regionkey";
}

}  // namespace cgq
