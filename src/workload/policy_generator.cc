#include "workload/policy_generator.h"

#include <algorithm>

#include "common/str_util.h"
#include "types/date.h"

namespace cgq {

namespace {

using PK = ColumnProperty::PredicateKind;

std::string Literal(const ColumnProperty& col, double v) {
  switch (col.predicate) {
    case PK::kIntRange:
      return std::to_string(static_cast<int64_t>(v));
    case PK::kDateRange:
      return "date '" + FormatDate(static_cast<int64_t>(v)) + "'";
    default: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f", v);
      return buf;
    }
  }
}

}  // namespace

std::string PolicyExpressionGenerator::RandomLocations(LocationSet* chosen) {
  const LocationCatalog& locs = catalog_->locations();
  size_t n = std::min(config_.locations_per_expr, locs.num_locations());
  std::vector<std::string> names;
  for (size_t i : rng_.SampleIndices(locs.num_locations(), n)) {
    names.push_back(locs.GetName(static_cast<LocationId>(i)));
    if (chosen != nullptr) chosen->Add(static_cast<LocationId>(i));
  }
  return Join(names, ", ");
}

std::string PolicyExpressionGenerator::RandomExpression(
    const TableDef& table) {
  const std::string& templ = config_.template_name;

  // Column subset (template C and richer).
  std::vector<std::string> columns;
  if (templ == "T") {
    // whole table
  } else if (templ == "F") {
    // Fine-grained: narrow column lists make for many distinct
    // signature buckets and tiny per-policy grants.
    size_t total = table.schema.num_columns();
    size_t cap = std::min(std::max<size_t>(config_.max_columns, 1), total);
    size_t k = static_cast<size_t>(
        rng_.Uniform(1, static_cast<int64_t>(cap)));
    for (size_t i : rng_.SampleIndices(total, k)) {
      columns.push_back(ToLower(table.schema.column(i).name));
    }
  } else {
    size_t total = table.schema.num_columns();
    size_t k = static_cast<size_t>(
        rng_.Uniform(1, static_cast<int64_t>(total)));
    for (size_t i : rng_.SampleIndices(total, k)) {
      columns.push_back(ToLower(table.schema.column(i).name));
    }
  }

  // Aggregate clause (template CRA, ~40% of expressions).
  std::vector<std::string> agg_fns;
  std::vector<std::string> group_by;
  if (templ == "CRA" && rng_.Bernoulli(0.4)) {
    std::vector<const ColumnProperty*> measures, keys;
    for (const ColumnProperty& c : properties_->columns) {
      if (c.table != table.name) continue;
      if (c.aggregatable) measures.push_back(&c);
      if (c.groupable) keys.push_back(&c);
    }
    if (!measures.empty() && !keys.empty()) {
      columns.clear();
      size_t m = static_cast<size_t>(
          rng_.Uniform(1, static_cast<int64_t>(measures.size())));
      for (size_t i : rng_.SampleIndices(measures.size(), m)) {
        columns.push_back(measures[i]->column);
      }
      static const char* kFns[] = {"sum", "avg", "min", "max"};
      for (size_t i : rng_.SampleIndices(4, static_cast<size_t>(
                                                rng_.Uniform(1, 3)))) {
        agg_fns.push_back(kFns[i]);
      }
      size_t g = static_cast<size_t>(
          rng_.Uniform(1, std::min<int64_t>(3, keys.size())));
      for (size_t i : rng_.SampleIndices(keys.size(), g)) {
        group_by.push_back(keys[i]->column);
      }
    }
  }

  // Row condition (templates CR and CRA, ~50% of basic expressions;
  // template F at its configured fraction).
  std::string condition;
  const double cond_prob = templ == "F" ? config_.predicate_fraction : 0.5;
  if ((templ == "CR" || templ == "CRA" || templ == "F") && agg_fns.empty() &&
      rng_.Bernoulli(cond_prob)) {
    std::vector<const ColumnProperty*> filterable;
    for (const ColumnProperty& c : properties_->columns) {
      if (c.table == table.name && c.predicate != PK::kNone) {
        filterable.push_back(&c);
      }
    }
    if (!filterable.empty()) {
      const ColumnProperty& c = *rng_.Pick(filterable);
      if (c.predicate == PK::kCategorical) {
        condition = c.column + " = '" + rng_.Pick(c.categories) + "'";
      } else {
        double lo = c.min + rng_.NextDouble() * (c.max - c.min) * 0.5;
        condition = c.column +
                    (rng_.Bernoulli(0.5) ? std::string(" > ")
                                         : std::string(" < ")) +
                    Literal(c, lo);
      }
    }
  }

  std::string text = "ship ";
  text += columns.empty() ? "*" : Join(columns, ", ");
  if (!agg_fns.empty()) text += " as aggregates " + Join(agg_fns, ", ");
  text += " from " + table.name + " to " + RandomLocations(nullptr);
  if (!condition.empty()) text += " where " + condition;
  if (!group_by.empty()) text += " group by " + Join(group_by, ", ");
  return text;
}

std::vector<GeneratedPolicy> PolicyExpressionGenerator::Generate() {
  std::vector<GeneratedPolicy> out;
  std::vector<std::string> tables = catalog_->TableNames();
  const LocationCatalog& locs = catalog_->locations();

  if (config_.ensure_feasible) {
    std::string hub = locs.GetName(config_.hub);
    for (const std::string& t : tables) {
      if (out.size() >= config_.count) break;
      auto def = catalog_->GetTable(t);
      if (!def.ok()) continue;
      for (LocationId l : (*def)->LocationsOf().ToVector()) {
        out.push_back(GeneratedPolicy{
            locs.GetName(l), "ship * from " + t + " to " + hub});
      }
    }
  }

  while (out.size() < config_.count) {
    const std::string& name = rng_.Pick(tables);
    auto def = catalog_->GetTable(name);
    if (!def.ok()) continue;
    std::string text = RandomExpression(**def);
    for (LocationId l : (*def)->LocationsOf().ToVector()) {
      out.push_back(GeneratedPolicy{locs.GetName(l), text});
      if (out.size() >= config_.count) break;
    }
  }
  return out;
}

Status PolicyExpressionGenerator::InstallInto(PolicyCatalog* policies) {
  policies->Clear();
  for (const GeneratedPolicy& p : Generate()) {
    CGQ_RETURN_NOT_OK(policies->AddPolicyText(p.location, p.text));
  }
  return Status::OK();
}

}  // namespace cgq
