#include "workload/properties.h"

#include "types/date.h"

namespace cgq {

namespace {

using PK = ColumnProperty::PredicateKind;

ColumnProperty Col(const char* table, const char* column, bool agg,
                   bool group, PK pred = PK::kNone, double min = 0,
                   double max = 0,
                   std::vector<std::string> categories = {}) {
  ColumnProperty c;
  c.table = table;
  c.column = column;
  c.aggregatable = agg;
  c.groupable = group;
  c.predicate = pred;
  c.min = min;
  c.max = max;
  c.categories = std::move(categories);
  return c;
}

}  // namespace

WorkloadProperties TpchWorkloadProperties() {
  WorkloadProperties p;
  p.edges = {
      {"nation", "regionkey", "region", "regionkey"},
      {"supplier", "nationkey", "nation", "nationkey"},
      {"customer", "nationkey", "nation", "nationkey"},
      {"partsupp", "partkey", "part", "partkey"},
      {"partsupp", "suppkey", "supplier", "suppkey"},
      {"orders", "custkey", "customer", "custkey"},
      {"lineitem", "orderkey", "orders", "orderkey"},
      {"lineitem", "partkey", "part", "partkey"},
      {"lineitem", "suppkey", "supplier", "suppkey"},
  };

  const double kD92 = static_cast<double>(DaysFromCivil(1992, 1, 1));
  const double kD98 = static_cast<double>(DaysFromCivil(1998, 8, 2));

  p.columns = {
      Col("region", "regionkey", false, true),
      Col("region", "name", false, true, PK::kCategorical, 0, 0,
          {"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}),
      Col("nation", "nationkey", false, true),
      Col("nation", "name", false, true, PK::kCategorical, 0, 0,
          {"FRANCE", "GERMANY", "CHINA", "JAPAN", "UNITED STATES", "KENYA"}),
      Col("nation", "regionkey", false, true, PK::kIntRange, 0, 4),

      Col("supplier", "suppkey", false, true),
      Col("supplier", "name", false, true),
      Col("supplier", "nationkey", false, true, PK::kIntRange, 0, 24),
      Col("supplier", "acctbal", true, false, PK::kDoubleRange, -999, 9999),

      Col("part", "partkey", false, true),
      Col("part", "mfgr", false, true, PK::kCategorical, 0, 0,
          {"Manufacturer#1", "Manufacturer#2", "Manufacturer#3",
           "Manufacturer#4", "Manufacturer#5"}),
      Col("part", "brand", false, true),
      Col("part", "type", false, true),
      Col("part", "size", true, true, PK::kIntRange, 1, 50),
      Col("part", "retailprice", true, false, PK::kDoubleRange, 900, 2100),

      Col("partsupp", "partkey", false, true),
      Col("partsupp", "suppkey", false, true),
      Col("partsupp", "availqty", true, false, PK::kIntRange, 1, 9999),
      Col("partsupp", "supplycost", true, false, PK::kDoubleRange, 1, 1000),

      Col("customer", "custkey", false, true),
      Col("customer", "name", false, true),
      Col("customer", "nationkey", false, true, PK::kIntRange, 0, 24),
      Col("customer", "acctbal", true, false, PK::kDoubleRange, -999, 9999),
      Col("customer", "mktsegment", false, true, PK::kCategorical, 0, 0,
          {"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
           "HOUSEHOLD"}),

      Col("orders", "orderkey", false, true),
      Col("orders", "custkey", false, true),
      Col("orders", "totalprice", true, false, PK::kDoubleRange, 850,
          550000),
      Col("orders", "orderdate", false, true, PK::kDateRange, kD92, kD98),
      Col("orders", "orderpriority", false, true, PK::kCategorical, 0, 0,
          {"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}),

      Col("lineitem", "orderkey", false, true),
      Col("lineitem", "partkey", false, true),
      Col("lineitem", "suppkey", false, true),
      Col("lineitem", "quantity", true, false, PK::kIntRange, 1, 50),
      Col("lineitem", "extendedprice", true, false, PK::kDoubleRange, 900,
          105000),
      Col("lineitem", "discount", true, false, PK::kDoubleRange, 0, 0.10),
      Col("lineitem", "returnflag", false, true, PK::kCategorical, 0, 0,
          {"R", "A", "N"}),
      Col("lineitem", "shipdate", false, true, PK::kDateRange, kD92 + 1,
          kD98 + 121),
      Col("lineitem", "shipmode", false, true, PK::kCategorical, 0, 0,
          {"AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}),
  };
  return p;
}

}  // namespace cgq
