#ifndef CGQ_TYPES_DATE_H_
#define CGQ_TYPES_DATE_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace cgq {

/// Days since 1970-01-01 for a proleptic-Gregorian civil date
/// (Howard Hinnant's algorithm).
int64_t DaysFromCivil(int year, int month, int day);

/// Inverse of DaysFromCivil.
void CivilFromDays(int64_t days, int* year, int* month, int* day);

/// Parses 'YYYY-MM-DD'.
Result<int64_t> ParseDate(const std::string& text);

/// Formats as 'YYYY-MM-DD'.
std::string FormatDate(int64_t days);

}  // namespace cgq

#endif  // CGQ_TYPES_DATE_H_
