#include "types/date.h"

#include <cstdio>

namespace cgq {

int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      (153 * (static_cast<unsigned>(m) + (m > 2 ? -3 : 9)) + 2) / 5 +
      static_cast<unsigned>(d) - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return static_cast<int64_t>(era) * 146097 +
         static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* year, int* month, int* day) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : static_cast<unsigned>(-9));
  *year = static_cast<int>(y + (m <= 2));
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

Result<int64_t> ParseDate(const std::string& text) {
  int y = 0, m = 0, d = 0;
  if (std::sscanf(text.c_str(), "%d-%d-%d", &y, &m, &d) != 3 || m < 1 ||
      m > 12 || d < 1 || d > 31) {
    return Status::InvalidArgument("bad date literal '" + text + "'");
  }
  return DaysFromCivil(y, m, d);
}

std::string FormatDate(int64_t days) {
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

}  // namespace cgq
