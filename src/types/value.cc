#include "types/value.h"

#include <functional>
#include <sstream>

namespace cgq {

const char* DataTypeToString(DataType t) {
  switch (t) {
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
    case DataType::kDate:
      return "DATE";
  }
  return "UNKNOWN";
}

int Value::Compare(const Value& other) const {
  CGQ_CHECK(!is_null() && !other.is_null())
      << "Compare() requires non-null values";
  if (is_numeric() && other.is_numeric()) {
    if (is_int64() && other.is_int64()) {
      int64_t a = int64(), b = other.int64();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = AsDouble(), b = other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  CGQ_CHECK(is_string() && other.is_string())
      << "Incomparable value families";
  return str().compare(other.str()) < 0 ? -1
                                        : (str() == other.str() ? 0 : 1);
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int64()) return std::to_string(int64());
  if (is_double()) {
    std::ostringstream os;
    os << dbl();
    return os.str();
  }
  return "'" + str() + "'";
}

size_t Value::Hash() const {
  if (is_null()) return 0x9E3779B9u;
  if (is_int64()) return std::hash<int64_t>()(int64());
  if (is_double()) return std::hash<double>()(dbl());
  return std::hash<std::string>()(str());
}

size_t Value::ByteSize() const {
  if (is_null()) return 1;
  if (is_string()) return str().size() + 4;
  return 8;
}

size_t HashRow(const Row& row) {
  size_t h = 0x345678u;
  for (const Value& v : row) {
    h = h * 1000003u ^ v.Hash();
  }
  return h;
}

bool RowsStructurallyEqual(const Row& a, const Row& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i].StructurallyEquals(b[i])) return false;
  }
  return true;
}

}  // namespace cgq
