#ifndef CGQ_TYPES_SCHEMA_H_
#define CGQ_TYPES_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "types/value.h"

namespace cgq {

/// One output column of an operator or one column of a base table.
struct ColumnDef {
  std::string name;
  DataType type = DataType::kInt64;

  bool operator==(const ColumnDef& other) const = default;
};

/// Ordered list of named, typed columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns)
      : columns_(std::move(columns)) {}

  const std::vector<ColumnDef>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }

  /// Index of the column named `name` (case-insensitive), if present.
  std::optional<size_t> IndexOf(const std::string& name) const;

  /// "name:TYPE, name:TYPE, ..."
  std::string ToString() const;

  bool operator==(const Schema& other) const = default;

 private:
  std::vector<ColumnDef> columns_;
};

}  // namespace cgq

#endif  // CGQ_TYPES_SCHEMA_H_
