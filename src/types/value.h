#ifndef CGQ_TYPES_VALUE_H_
#define CGQ_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/logging.h"

namespace cgq {

/// Column data types of the engine's relational model.
enum class DataType {
  kInt64,
  kDouble,
  kString,
  kDate,  ///< Stored as int64 days since 1970-01-01.
};

const char* DataTypeToString(DataType t);

/// A single SQL value: NULL, INT64, DOUBLE, STRING, or DATE.
///
/// DATE shares the int64 representation; the schema distinguishes the two.
/// Comparison follows SQL semantics for non-null values of the same family
/// (int64 and double compare numerically); NULLs are handled by callers
/// (three-valued logic lives in the expression evaluator).
class Value {
 public:
  Value() : repr_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Int64(int64_t v) { return Value(Repr(v)); }
  static Value Double(double v) { return Value(Repr(v)); }
  static Value String(std::string v) { return Value(Repr(std::move(v))); }
  /// A date as days since the Unix epoch.
  static Value Date(int64_t days) { return Value(Repr(days)); }

  bool is_null() const { return std::holds_alternative<std::monostate>(repr_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(repr_); }
  bool is_double() const { return std::holds_alternative<double>(repr_); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }
  bool is_numeric() const { return is_int64() || is_double(); }

  int64_t int64() const {
    CGQ_DCHECK(is_int64());
    return std::get<int64_t>(repr_);
  }
  double dbl() const {
    CGQ_DCHECK(is_double());
    return std::get<double>(repr_);
  }
  const std::string& str() const {
    CGQ_DCHECK(is_string());
    return std::get<std::string>(repr_);
  }

  /// Numeric value as double (int64 widened). Requires is_numeric().
  double AsDouble() const {
    CGQ_DCHECK(is_numeric());
    return is_int64() ? static_cast<double>(int64()) : dbl();
  }

  /// Total order over same-family non-null values: -1, 0, +1.
  /// Numeric vs numeric compares as double; string vs string lexicographic.
  /// Aborts on incomparable families (schema bug).
  int Compare(const Value& other) const;

  /// SQL-style equality of non-null values (numeric families unified).
  bool Equals(const Value& other) const {
    if (is_null() || other.is_null()) return false;
    if (is_string() != other.is_string()) return false;
    return Compare(other) == 0;
  }

  /// Exact structural equality, including NULL == NULL (for tests & hashing).
  bool StructurallyEquals(const Value& other) const { return repr_ == other.repr_; }

  /// Renders like SQL output: NULL, 42, 3.14, 'text'.
  std::string ToString() const;

  /// Hash for group-by / join keys. NULLs hash to a fixed value; int64 and
  /// equal-valued double hash differently (keys are same-typed per column).
  size_t Hash() const;

  /// Approximate serialized width in bytes (for the message cost model).
  size_t ByteSize() const;

 private:
  using Repr = std::variant<std::monostate, int64_t, double, std::string>;
  explicit Value(Repr repr) : repr_(std::move(repr)) {}
  Repr repr_;
};

/// A tuple of values. Layout is defined by the operator's output schema.
using Row = std::vector<Value>;

/// Hash of a full row (order-sensitive).
size_t HashRow(const Row& row);

/// Structural row equality (NULL == NULL), used for hash-table keys.
bool RowsStructurallyEqual(const Row& a, const Row& b);

}  // namespace cgq

#endif  // CGQ_TYPES_VALUE_H_
