#ifndef CGQ_NET_NETWORK_MODEL_H_
#define CGQ_NET_NETWORK_MODEL_H_

#include <vector>

#include "catalog/location.h"

namespace cgq {

/// Message cost model for geo-distributed data transfer (§7.4, following
/// Deshpande & Hellerstein): shipping b bytes from site i to site j costs
/// `alpha(i,j) + beta(i,j) * b`, where alpha is the start-up (latency) cost
/// and beta the per-byte cost. Costs are in milliseconds. Intra-site
/// transfers are free.
class NetworkModel {
 public:
  /// Uniform model: same alpha/beta between any two distinct sites.
  NetworkModel(size_t num_locations, double alpha_ms, double beta_ms_per_byte);

  /// Fully specified matrices (must be num_locations^2, diagonal ignored).
  NetworkModel(std::vector<std::vector<double>> alpha,
               std::vector<std::vector<double>> beta);

  /// A 5+ site geography with asymmetric, realistic WAN numbers
  /// (inter-continental RTTs of 30-300 ms; 5-50 MB/s effective throughput).
  /// Sites beyond the 5 canonical regions reuse the pattern cyclically so
  /// the model extends to the 20-location experiments (Fig. 8).
  static NetworkModel DefaultGeo(size_t num_locations);

  double alpha(LocationId from, LocationId to) const;
  double beta(LocationId from, LocationId to) const;

  /// alpha + beta * bytes; 0 when from == to.
  double Cost(LocationId from, LocationId to, double bytes) const;

  /// Per-byte cost only (beta * bytes; 0 when from == to): the marginal
  /// cost of one more batch on a transfer whose start-up latency was
  /// already paid. The batched executor charges alpha once per ship edge
  /// and this for every subsequent batch.
  double MarginalCost(LocationId from, LocationId to, double bytes) const;

  size_t num_locations() const { return alpha_.size(); }

 private:
  std::vector<std::vector<double>> alpha_;
  std::vector<std::vector<double>> beta_;
};

}  // namespace cgq

#endif  // CGQ_NET_NETWORK_MODEL_H_
