#ifndef CGQ_NET_NETWORK_MODEL_H_
#define CGQ_NET_NETWORK_MODEL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "catalog/location.h"

namespace cgq {

/// Injectable failure behavior of one directed link, for testing the
/// executor's recovery path. All fields default to a healthy link.
struct LinkFault {
  /// Probability that one send attempt over the link is lost (the sender
  /// times out and must retransmit, re-paying the start-up latency).
  double drop_probability = 0;
  /// Extra per-attempt latency in ms, added on top of the alpha/beta cost
  /// (a stalled or congested link).
  double extra_latency_ms = 0;
  /// Hard link failure: every attempt fails; retries cannot succeed.
  bool down = false;

  bool Healthy() const {
    return drop_probability == 0 && extra_latency_ms == 0 && !down;
  }
};

/// Message cost model for geo-distributed data transfer (§7.4, following
/// Deshpande & Hellerstein): shipping b bytes from site i to site j costs
/// `alpha(i,j) + beta(i,j) * b`, where alpha is the start-up (latency) cost
/// and beta the per-byte cost. Costs are in milliseconds. Intra-site
/// transfers are free.
class NetworkModel {
 public:
  /// Uniform model: same alpha/beta between any two distinct sites.
  NetworkModel(size_t num_locations, double alpha_ms, double beta_ms_per_byte);

  /// Fully specified matrices (must be num_locations^2, diagonal ignored).
  NetworkModel(std::vector<std::vector<double>> alpha,
               std::vector<std::vector<double>> beta);

  /// A 5+ site geography with asymmetric, realistic WAN numbers
  /// (inter-continental RTTs of 30-300 ms; 5-50 MB/s effective throughput).
  /// Sites beyond the 5 canonical regions reuse the pattern cyclically so
  /// the model extends to the 20-location experiments (Fig. 8).
  static NetworkModel DefaultGeo(size_t num_locations);

  double alpha(LocationId from, LocationId to) const;
  double beta(LocationId from, LocationId to) const;

  /// alpha + beta * bytes; 0 when from == to.
  double Cost(LocationId from, LocationId to, double bytes) const;

  /// Per-byte cost only (beta * bytes; 0 when from == to): the marginal
  /// cost of one more batch on a transfer whose start-up latency was
  /// already paid. The batched executor charges alpha once per ship edge
  /// and this for every subsequent batch.
  double MarginalCost(LocationId from, LocationId to, double bytes) const;

  size_t num_locations() const { return alpha_.size(); }

  /// Installs (or replaces) the fault model of the directed link
  /// `from -> to`. A Healthy() fault erases the entry. Configure faults
  /// before handing the model to an executor; the executors only read.
  void SetLinkFault(LocationId from, LocationId to, LinkFault fault);

  /// Removes all injected faults.
  void ClearLinkFaults();

  /// Fault model of a link, or nullptr for a healthy link. O(1) when no
  /// fault is installed anywhere (the executors' fast path).
  const LinkFault* link_fault(LocationId from, LocationId to) const {
    if (faults_.empty()) return nullptr;
    auto it = faults_.find(LinkKey(from, to));
    return it == faults_.end() ? nullptr : &it->second;
  }

  bool has_link_faults() const { return !faults_.empty(); }

  /// Lossy-WAN profile: every cross-site link drops each attempt with
  /// probability `drop_probability` and stalls `extra_latency_ms` extra.
  /// The bench harness's `--fault-profile=lossy`.
  void ApplyLossyProfile(double drop_probability, double extra_latency_ms);

 private:
  static uint64_t LinkKey(LocationId from, LocationId to) {
    return (static_cast<uint64_t>(from) << 32) | to;
  }

  std::vector<std::vector<double>> alpha_;
  std::vector<std::vector<double>> beta_;
  std::unordered_map<uint64_t, LinkFault> faults_;
};

}  // namespace cgq

#endif  // CGQ_NET_NETWORK_MODEL_H_
