#include "net/wire_protocol.h"

#include <cstring>
#include <utility>

namespace cgq {
namespace wire {

const char* FrameTypeToString(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "HELLO";
    case FrameType::kHelloAck: return "HELLO_ACK";
    case FrameType::kLoadTable: return "LOAD_TABLE";
    case FrameType::kLoadAck: return "LOAD_ACK";
    case FrameType::kStartFragment: return "START_FRAGMENT";
    case FrameType::kStartAck: return "START_ACK";
    case FrameType::kInputBatch: return "INPUT_BATCH";
    case FrameType::kInputEnd: return "INPUT_END";
    case FrameType::kOutputBatch: return "OUTPUT_BATCH";
    case FrameType::kOutputEnd: return "OUTPUT_END";
    case FrameType::kError: return "ERROR";
    case FrameType::kCancel: return "CANCEL";
  }
  return "UNKNOWN";
}

uint64_t Fnv1a(const uint8_t* data, size_t len) {
  uint64_t h = 14695981039346656037ull;
  for (size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

namespace {

void AppendLe(std::string* out, uint64_t v, size_t bytes) {
  for (size_t i = 0; i < bytes; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint64_t ReadLe(const uint8_t* data, size_t bytes) {
  uint64_t v = 0;
  for (size_t i = 0; i < bytes; ++i) {
    v |= static_cast<uint64_t>(data[i]) << (8 * i);
  }
  return v;
}

}  // namespace

std::string EncodeFrame(FrameType type, const std::string& payload) {
  std::string out;
  out.reserve(kHeaderSize + payload.size());
  AppendLe(&out, kMagic, 4);
  AppendLe(&out, kVersion, 2);
  AppendLe(&out, static_cast<uint16_t>(type), 2);
  AppendLe(&out, static_cast<uint32_t>(payload.size()), 4);
  AppendLe(&out,
           Fnv1a(reinterpret_cast<const uint8_t*>(payload.data()),
                 payload.size()),
           8);
  out.append(payload);
  return out;
}

Result<FrameHeader> DecodeFrameHeader(const uint8_t* data, size_t len) {
  if (len < kHeaderSize) {
    return Status::InvalidArgument("truncated frame header (" +
                                   std::to_string(len) + " bytes)");
  }
  uint32_t magic = static_cast<uint32_t>(ReadLe(data, 4));
  if (magic != kMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  FrameHeader h;
  h.version = static_cast<uint16_t>(ReadLe(data + 4, 2));
  h.type = static_cast<uint16_t>(ReadLe(data + 6, 2));
  h.payload_len = static_cast<uint32_t>(ReadLe(data + 8, 4));
  h.checksum = ReadLe(data + 12, 8);
  if (h.version != kVersion) {
    return Status::Unsupported(
        "wire protocol version mismatch: peer speaks v" +
        std::to_string(h.version) + ", this build speaks v" +
        std::to_string(kVersion));
  }
  if (h.payload_len > kMaxPayloadBytes) {
    return Status::InvalidArgument(
        "oversized frame: " + std::to_string(h.payload_len) +
        " bytes exceeds the " + std::to_string(kMaxPayloadBytes) +
        "-byte limit");
  }
  return h;
}

Status VerifyPayload(const FrameHeader& header, const uint8_t* payload) {
  if (Fnv1a(payload, header.payload_len) != header.checksum) {
    return Status::InvalidArgument("frame checksum mismatch");
  }
  return Status::OK();
}

// --- Writer ---------------------------------------------------------------

void Writer::PutU16(uint16_t v) { AppendLe(&buf_, v, 2); }
void Writer::PutU32(uint32_t v) { AppendLe(&buf_, v, 4); }
void Writer::PutU64(uint64_t v) { AppendLe(&buf_, v, 8); }

void Writer::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void Writer::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.append(s);
}

void Writer::PutValue(const Value& v) {
  if (v.is_null()) {
    PutU8(0);
  } else if (v.is_int64()) {
    PutU8(1);
    PutI64(v.int64());
  } else if (v.is_double()) {
    PutU8(2);
    PutDouble(v.dbl());
  } else {
    PutU8(3);
    PutString(v.str());
  }
}

void Writer::PutRow(const Row& row) {
  PutU32(static_cast<uint32_t>(row.size()));
  for (const Value& v : row) PutValue(v);
}

void Writer::PutBatch(const RowBatch& batch) {
  PutU32(static_cast<uint32_t>(batch.layout.attrs().size()));
  for (AttrId id : batch.layout.attrs()) PutU32(id);
  PutU32(static_cast<uint32_t>(batch.rows.size()));
  for (const Row& row : batch.rows) PutRow(row);
}

void Writer::PutExpr(const Expr& e) {
  switch (e.op()) {
    case ExprOp::kLiteral:
      PutU8(0);
      PutValue(e.literal());
      return;
    case ExprOp::kColumnRef:
      PutU8(1);
      PutU32(e.attr_id());
      PutString(e.qualifier());
      PutString(e.column());
      PutString(e.base_table());
      PutU8(static_cast<uint8_t>(e.type()));
      return;
    case ExprOp::kNot:
      PutU8(2);
      PutU8(static_cast<uint8_t>(e.op()));
      PutExpr(*e.child(0));
      return;
    case ExprOp::kIn:
      PutU8(4);
      PutExpr(*e.child(0));
      PutU32(static_cast<uint32_t>(e.in_list().size()));
      for (const Value& v : e.in_list()) PutValue(v);
      return;
    default:
      PutU8(3);
      PutU8(static_cast<uint8_t>(e.op()));
      PutExpr(*e.child(0));
      PutExpr(*e.child(1));
      return;
  }
}

namespace {

void PutOutputs(Writer* w, const std::vector<OutputCol>& outputs) {
  w->PutU32(static_cast<uint32_t>(outputs.size()));
  for (const OutputCol& c : outputs) {
    w->PutU32(c.id);
    w->PutString(c.name);
    w->PutU8(static_cast<uint8_t>(c.type));
  }
}

}  // namespace

Status Writer::PutPlan(
    const PlanNode& node,
    const std::unordered_map<const PlanNode*, int>& channel_of_ship) {
  PutU8(static_cast<uint8_t>(node.kind()));
  PutU32(node.location);
  PutU64(node.exec_trait.bits());
  PutU64(node.ship_trait.bits());
  if (node.kind() == PlanKind::kShip) {
    // SHIP leaves carry their *child's* output columns (the layout of the
    // batches that will arrive on the channel) — the producing subtree
    // belongs to another fragment and is not shipped.
    PutOutputs(this, node.child(0)->outputs);
  } else {
    PutOutputs(this, node.outputs);
  }
  switch (node.kind()) {
    case PlanKind::kScan:
      PutString(node.table);
      PutU32(node.scan_location);
      break;
    case PlanKind::kFilter:
      PutU32(static_cast<uint32_t>(node.conjuncts.size()));
      for (const ExprPtr& c : node.conjuncts) PutExpr(*c);
      break;
    case PlanKind::kProject:
      PutU32(static_cast<uint32_t>(node.project_ids.size()));
      for (AttrId id : node.project_ids) PutU32(id);
      PutU32(static_cast<uint32_t>(node.project_names.size()));
      for (const std::string& name : node.project_names) PutString(name);
      break;
    case PlanKind::kJoin:
      PutU8(static_cast<uint8_t>(node.join_method));
      PutU32(static_cast<uint32_t>(node.conjuncts.size()));
      for (const ExprPtr& c : node.conjuncts) PutExpr(*c);
      break;
    case PlanKind::kAggregate:
      PutU32(static_cast<uint32_t>(node.group_ids.size()));
      for (AttrId id : node.group_ids) PutU32(id);
      PutU32(static_cast<uint32_t>(node.agg_calls.size()));
      for (const AggCall& call : node.agg_calls) {
        PutU8(static_cast<uint8_t>(call.fn));
        PutExpr(*call.arg);
      }
      PutU32(static_cast<uint32_t>(node.agg_out_ids.size()));
      for (AttrId id : node.agg_out_ids) PutU32(id);
      PutU8(node.is_partial_agg ? 1 : 0);
      break;
    case PlanKind::kUnion:
      break;
    case PlanKind::kShip: {
      auto it = channel_of_ship.find(&node);
      if (it == channel_of_ship.end()) {
        return Status::Internal("SHIP node has no assigned channel");
      }
      PutU32(node.ship_from);
      PutU32(node.ship_to);
      PutI32(it->second);
      break;
    }
  }
  if (node.kind() == PlanKind::kShip) {
    PutU32(0);  // childless on the wire
    return Status::OK();
  }
  PutU32(static_cast<uint32_t>(node.children().size()));
  for (const PlanNodePtr& child : node.children()) {
    CGQ_RETURN_NOT_OK(PutPlan(*child, channel_of_ship));
  }
  return Status::OK();
}

// --- Reader ---------------------------------------------------------------

Status Reader::Need(size_t n) {
  if (len_ - pos_ < n) {
    return Status::InvalidArgument("truncated payload");
  }
  return Status::OK();
}

Result<uint8_t> Reader::U8() {
  CGQ_RETURN_NOT_OK(Need(1));
  return data_[pos_++];
}

Result<uint16_t> Reader::U16() {
  CGQ_RETURN_NOT_OK(Need(2));
  uint16_t v = static_cast<uint16_t>(ReadLe(data_ + pos_, 2));
  pos_ += 2;
  return v;
}

Result<uint32_t> Reader::U32() {
  CGQ_RETURN_NOT_OK(Need(4));
  uint32_t v = static_cast<uint32_t>(ReadLe(data_ + pos_, 4));
  pos_ += 4;
  return v;
}

Result<uint64_t> Reader::U64() {
  CGQ_RETURN_NOT_OK(Need(8));
  uint64_t v = ReadLe(data_ + pos_, 8);
  pos_ += 8;
  return v;
}

Result<int32_t> Reader::I32() {
  CGQ_ASSIGN_OR_RETURN(uint32_t v, U32());
  return static_cast<int32_t>(v);
}

Result<int64_t> Reader::I64() {
  CGQ_ASSIGN_OR_RETURN(uint64_t v, U64());
  return static_cast<int64_t>(v);
}

Result<double> Reader::Double() {
  CGQ_ASSIGN_OR_RETURN(uint64_t bits, U64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> Reader::String() {
  CGQ_ASSIGN_OR_RETURN(uint32_t len, U32());
  CGQ_RETURN_NOT_OK(Need(len));
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return s;
}

Result<Value> Reader::ReadValue() {
  CGQ_ASSIGN_OR_RETURN(uint8_t tag, U8());
  switch (tag) {
    case 0:
      return Value::Null();
    case 1: {
      CGQ_ASSIGN_OR_RETURN(int64_t v, I64());
      return Value::Int64(v);
    }
    case 2: {
      CGQ_ASSIGN_OR_RETURN(double v, Double());
      return Value::Double(v);
    }
    case 3: {
      CGQ_ASSIGN_OR_RETURN(std::string v, String());
      return Value::String(std::move(v));
    }
    default:
      return Status::InvalidArgument("bad value tag " + std::to_string(tag));
  }
}

Result<Row> Reader::ReadRow() {
  CGQ_ASSIGN_OR_RETURN(uint32_t n, U32());
  if (remaining() < n) {
    return Status::InvalidArgument("truncated payload");
  }
  Row row;
  row.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    CGQ_ASSIGN_OR_RETURN(Value v, ReadValue());
    row.push_back(std::move(v));
  }
  return row;
}

Result<RowBatch> Reader::ReadBatch() {
  CGQ_ASSIGN_OR_RETURN(uint32_t num_attrs, U32());
  if (remaining() < num_attrs) {
    return Status::InvalidArgument("truncated payload");
  }
  std::vector<AttrId> attrs;
  attrs.reserve(num_attrs);
  for (uint32_t i = 0; i < num_attrs; ++i) {
    CGQ_ASSIGN_OR_RETURN(uint32_t id, U32());
    attrs.push_back(id);
  }
  RowBatch batch;
  batch.layout = RowLayout(std::move(attrs));
  CGQ_ASSIGN_OR_RETURN(uint32_t num_rows, U32());
  if (remaining() < num_rows) {
    return Status::InvalidArgument("truncated payload");
  }
  batch.rows.reserve(num_rows);
  for (uint32_t i = 0; i < num_rows; ++i) {
    CGQ_ASSIGN_OR_RETURN(Row row, ReadRow());
    batch.rows.push_back(std::move(row));
  }
  return batch;
}

Result<ExprPtr> Reader::ReadExpr() {
  CGQ_ASSIGN_OR_RETURN(uint8_t tag, U8());
  switch (tag) {
    case 0: {
      CGQ_ASSIGN_OR_RETURN(Value v, ReadValue());
      return Expr::Literal(std::move(v));
    }
    case 1: {
      CGQ_ASSIGN_OR_RETURN(uint32_t attr_id, U32());
      CGQ_ASSIGN_OR_RETURN(std::string qualifier, String());
      CGQ_ASSIGN_OR_RETURN(std::string column, String());
      CGQ_ASSIGN_OR_RETURN(std::string base_table, String());
      CGQ_ASSIGN_OR_RETURN(uint8_t type, U8());
      if (type > static_cast<uint8_t>(DataType::kDate)) {
        return Status::InvalidArgument("bad data type " +
                                       std::to_string(type));
      }
      return Expr::BoundColumn(attr_id, std::move(qualifier),
                               std::move(column), std::move(base_table),
                               static_cast<DataType>(type));
    }
    case 2: {
      CGQ_ASSIGN_OR_RETURN(uint8_t op, U8());
      if (op != static_cast<uint8_t>(ExprOp::kNot)) {
        return Status::InvalidArgument("bad unary operator " +
                                       std::to_string(op));
      }
      CGQ_ASSIGN_OR_RETURN(ExprPtr child, ReadExpr());
      return Expr::Unary(ExprOp::kNot, std::move(child));
    }
    case 3: {
      CGQ_ASSIGN_OR_RETURN(uint8_t op, U8());
      if (op > static_cast<uint8_t>(ExprOp::kIn) ||
          op == static_cast<uint8_t>(ExprOp::kLiteral) ||
          op == static_cast<uint8_t>(ExprOp::kColumnRef) ||
          op == static_cast<uint8_t>(ExprOp::kNot) ||
          op == static_cast<uint8_t>(ExprOp::kIn)) {
        return Status::InvalidArgument("bad binary operator " +
                                       std::to_string(op));
      }
      CGQ_ASSIGN_OR_RETURN(ExprPtr left, ReadExpr());
      CGQ_ASSIGN_OR_RETURN(ExprPtr right, ReadExpr());
      return Expr::Binary(static_cast<ExprOp>(op), std::move(left),
                          std::move(right));
    }
    case 4: {
      CGQ_ASSIGN_OR_RETURN(ExprPtr needle, ReadExpr());
      CGQ_ASSIGN_OR_RETURN(uint32_t n, U32());
      if (remaining() < n) {
        return Status::InvalidArgument("truncated payload");
      }
      std::vector<Value> literals;
      literals.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        CGQ_ASSIGN_OR_RETURN(Value v, ReadValue());
        literals.push_back(std::move(v));
      }
      return Expr::InList(std::move(needle), std::move(literals));
    }
    default:
      return Status::InvalidArgument("bad expression tag " +
                                     std::to_string(tag));
  }
}

namespace {

Result<std::vector<OutputCol>> ReadOutputs(Reader* r) {
  CGQ_ASSIGN_OR_RETURN(uint32_t n, r->U32());
  if (r->remaining() < n) {
    return Status::InvalidArgument("truncated payload");
  }
  std::vector<OutputCol> outputs;
  outputs.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    OutputCol c;
    CGQ_ASSIGN_OR_RETURN(c.id, r->U32());
    CGQ_ASSIGN_OR_RETURN(c.name, r->String());
    CGQ_ASSIGN_OR_RETURN(uint8_t type, r->U8());
    if (type > static_cast<uint8_t>(DataType::kDate)) {
      return Status::InvalidArgument("bad data type " + std::to_string(type));
    }
    c.type = static_cast<DataType>(type);
    outputs.push_back(std::move(c));
  }
  return outputs;
}

}  // namespace

Result<PlanNodePtr> Reader::ReadPlan(std::vector<int>* input_channels) {
  CGQ_ASSIGN_OR_RETURN(uint8_t kind_tag, U8());
  if (kind_tag > static_cast<uint8_t>(PlanKind::kShip)) {
    return Status::InvalidArgument("bad plan kind " +
                                   std::to_string(kind_tag));
  }
  const PlanKind kind = static_cast<PlanKind>(kind_tag);
  auto node = std::make_shared<PlanNode>(kind);
  CGQ_ASSIGN_OR_RETURN(node->location, U32());
  CGQ_ASSIGN_OR_RETURN(uint64_t exec_bits, U64());
  node->exec_trait = LocationSet(exec_bits);
  CGQ_ASSIGN_OR_RETURN(uint64_t ship_bits, U64());
  node->ship_trait = LocationSet(ship_bits);
  CGQ_ASSIGN_OR_RETURN(node->outputs, ReadOutputs(this));
  switch (kind) {
    case PlanKind::kScan: {
      CGQ_ASSIGN_OR_RETURN(node->table, String());
      CGQ_ASSIGN_OR_RETURN(node->scan_location, U32());
      break;
    }
    case PlanKind::kFilter: {
      CGQ_ASSIGN_OR_RETURN(uint32_t n, U32());
      if (remaining() < n) {
        return Status::InvalidArgument("truncated payload");
      }
      for (uint32_t i = 0; i < n; ++i) {
        CGQ_ASSIGN_OR_RETURN(ExprPtr c, ReadExpr());
        node->conjuncts.push_back(std::move(c));
      }
      break;
    }
    case PlanKind::kProject: {
      CGQ_ASSIGN_OR_RETURN(uint32_t n, U32());
      if (remaining() < 4ull * n) {
        return Status::InvalidArgument("truncated payload");
      }
      for (uint32_t i = 0; i < n; ++i) {
        CGQ_ASSIGN_OR_RETURN(uint32_t id, U32());
        node->project_ids.push_back(id);
      }
      CGQ_ASSIGN_OR_RETURN(uint32_t num_names, U32());
      if (remaining() < num_names) {
        return Status::InvalidArgument("truncated payload");
      }
      for (uint32_t i = 0; i < num_names; ++i) {
        CGQ_ASSIGN_OR_RETURN(std::string name, String());
        node->project_names.push_back(std::move(name));
      }
      break;
    }
    case PlanKind::kJoin: {
      CGQ_ASSIGN_OR_RETURN(uint8_t method, U8());
      if (method > static_cast<uint8_t>(JoinMethod::kNestedLoop)) {
        return Status::InvalidArgument("bad join method " +
                                       std::to_string(method));
      }
      node->join_method = static_cast<JoinMethod>(method);
      CGQ_ASSIGN_OR_RETURN(uint32_t n, U32());
      if (remaining() < n) {
        return Status::InvalidArgument("truncated payload");
      }
      for (uint32_t i = 0; i < n; ++i) {
        CGQ_ASSIGN_OR_RETURN(ExprPtr c, ReadExpr());
        node->conjuncts.push_back(std::move(c));
      }
      break;
    }
    case PlanKind::kAggregate: {
      CGQ_ASSIGN_OR_RETURN(uint32_t num_groups, U32());
      if (remaining() < 4ull * num_groups) {
        return Status::InvalidArgument("truncated payload");
      }
      for (uint32_t i = 0; i < num_groups; ++i) {
        CGQ_ASSIGN_OR_RETURN(uint32_t id, U32());
        node->group_ids.push_back(id);
      }
      CGQ_ASSIGN_OR_RETURN(uint32_t num_calls, U32());
      if (remaining() < num_calls) {
        return Status::InvalidArgument("truncated payload");
      }
      for (uint32_t i = 0; i < num_calls; ++i) {
        CGQ_ASSIGN_OR_RETURN(uint8_t fn, U8());
        if (fn > static_cast<uint8_t>(AggFn::kCount)) {
          return Status::InvalidArgument("bad aggregate function " +
                                         std::to_string(fn));
        }
        AggCall call;
        call.fn = static_cast<AggFn>(fn);
        CGQ_ASSIGN_OR_RETURN(call.arg, ReadExpr());
        node->agg_calls.push_back(std::move(call));
      }
      CGQ_ASSIGN_OR_RETURN(uint32_t num_outs, U32());
      if (remaining() < 4ull * num_outs) {
        return Status::InvalidArgument("truncated payload");
      }
      for (uint32_t i = 0; i < num_outs; ++i) {
        CGQ_ASSIGN_OR_RETURN(uint32_t id, U32());
        node->agg_out_ids.push_back(id);
      }
      CGQ_ASSIGN_OR_RETURN(uint8_t partial, U8());
      node->is_partial_agg = partial != 0;
      break;
    }
    case PlanKind::kUnion:
      break;
    case PlanKind::kShip: {
      CGQ_ASSIGN_OR_RETURN(node->ship_from, U32());
      CGQ_ASSIGN_OR_RETURN(node->ship_to, U32());
      CGQ_ASSIGN_OR_RETURN(int32_t channel, I32());
      // The channel id rides in fragment_ordinal (unused by SHIP nodes):
      // the server's ship-source factory reads it back to pick the right
      // input queue without a side table.
      node->fragment_ordinal = channel;
      if (input_channels != nullptr) input_channels->push_back(channel);
      break;
    }
  }
  CGQ_ASSIGN_OR_RETURN(uint32_t num_children, U32());
  if (remaining() < num_children) {
    return Status::InvalidArgument("truncated payload");
  }
  for (uint32_t i = 0; i < num_children; ++i) {
    CGQ_ASSIGN_OR_RETURN(PlanNodePtr child, ReadPlan(input_channels));
    node->children().push_back(std::move(child));
  }
  return PlanNodePtr(std::move(node));
}

// --- Typed payloads -------------------------------------------------------

std::string Hello::Encode() const {
  Writer w;
  w.PutU16(version);
  return w.Take();
}

Result<Hello> Hello::Decode(const std::string& payload) {
  Reader r(payload);
  Hello h;
  CGQ_ASSIGN_OR_RETURN(h.version, r.U16());
  return h;
}

std::string HelloAck::Encode() const {
  Writer w;
  w.PutU16(version);
  w.PutU32(static_cast<uint32_t>(locations.size()));
  for (LocationId l : locations) w.PutU32(l);
  return w.Take();
}

Result<HelloAck> HelloAck::Decode(const std::string& payload) {
  Reader r(payload);
  HelloAck ack;
  CGQ_ASSIGN_OR_RETURN(ack.version, r.U16());
  CGQ_ASSIGN_OR_RETURN(uint32_t n, r.U32());
  if (r.remaining() < 4ull * n) {
    return Status::InvalidArgument("truncated payload");
  }
  for (uint32_t i = 0; i < n; ++i) {
    CGQ_ASSIGN_OR_RETURN(uint32_t l, r.U32());
    ack.locations.push_back(l);
  }
  return ack;
}

std::string LoadTable::Encode() const {
  Writer w;
  w.PutU32(location);
  w.PutString(table);
  w.PutU8(replace ? 1 : 0);
  w.PutU32(static_cast<uint32_t>(rows.size()));
  for (const Row& row : rows) w.PutRow(row);
  return w.Take();
}

Result<LoadTable> LoadTable::Decode(const std::string& payload) {
  Reader r(payload);
  LoadTable load;
  CGQ_ASSIGN_OR_RETURN(load.location, r.U32());
  CGQ_ASSIGN_OR_RETURN(load.table, r.String());
  CGQ_ASSIGN_OR_RETURN(uint8_t replace, r.U8());
  load.replace = replace != 0;
  CGQ_ASSIGN_OR_RETURN(uint32_t n, r.U32());
  if (r.remaining() < n) {
    return Status::InvalidArgument("truncated payload");
  }
  load.rows.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    CGQ_ASSIGN_OR_RETURN(Row row, r.ReadRow());
    load.rows.push_back(std::move(row));
  }
  return load;
}

std::string LoadAck::Encode() const {
  Writer w;
  w.PutI64(fragment_rows);
  return w.Take();
}

Result<LoadAck> LoadAck::Decode(const std::string& payload) {
  Reader r(payload);
  LoadAck ack;
  CGQ_ASSIGN_OR_RETURN(ack.fragment_rows, r.I64());
  return ack;
}

Result<std::string> StartFragment::Encode(
    const std::unordered_map<const PlanNode*, int>& channel_of_ship) const {
  Writer w;
  w.PutI32(fragment_id);
  w.PutU32(site);
  w.PutU32(batch_size);
  w.PutU8(has_output_ship ? 1 : 0);
  w.PutU32(ship_to);
  w.PutU64(ship_trait_bits);
  CGQ_RETURN_NOT_OK(w.PutPlan(*root, channel_of_ship));
  return w.Take();
}

Result<StartFragment> StartFragment::Decode(const std::string& payload) {
  Reader r(payload);
  StartFragment start;
  CGQ_ASSIGN_OR_RETURN(start.fragment_id, r.I32());
  CGQ_ASSIGN_OR_RETURN(start.site, r.U32());
  CGQ_ASSIGN_OR_RETURN(start.batch_size, r.U32());
  CGQ_ASSIGN_OR_RETURN(uint8_t has_ship, r.U8());
  start.has_output_ship = has_ship != 0;
  CGQ_ASSIGN_OR_RETURN(start.ship_to, r.U32());
  CGQ_ASSIGN_OR_RETURN(start.ship_trait_bits, r.U64());
  CGQ_ASSIGN_OR_RETURN(start.root, r.ReadPlan(&start.input_channels));
  return start;
}

std::string InputBatch::Encode() const {
  Writer w;
  w.PutI32(channel);
  w.PutBatch(batch);
  return w.Take();
}

Result<InputBatch> InputBatch::Decode(const std::string& payload) {
  Reader r(payload);
  InputBatch in;
  CGQ_ASSIGN_OR_RETURN(in.channel, r.I32());
  CGQ_ASSIGN_OR_RETURN(in.batch, r.ReadBatch());
  return in;
}

std::string InputEnd::Encode() const {
  Writer w;
  w.PutI32(channel);
  return w.Take();
}

Result<InputEnd> InputEnd::Decode(const std::string& payload) {
  Reader r(payload);
  InputEnd end;
  CGQ_ASSIGN_OR_RETURN(end.channel, r.I32());
  return end;
}

std::string OutputBatch::Encode() const {
  Writer w;
  w.PutBatch(batch);
  return w.Take();
}

Result<OutputBatch> OutputBatch::Decode(const std::string& payload) {
  Reader r(payload);
  OutputBatch out;
  CGQ_ASSIGN_OR_RETURN(out.batch, r.ReadBatch());
  return out;
}

std::string OutputEnd::Encode() const {
  Writer w;
  w.PutI64(rows_out);
  w.PutI64(rows_scanned);
  return w.Take();
}

Result<OutputEnd> OutputEnd::Decode(const std::string& payload) {
  Reader r(payload);
  OutputEnd end;
  CGQ_ASSIGN_OR_RETURN(end.rows_out, r.I64());
  CGQ_ASSIGN_OR_RETURN(end.rows_scanned, r.I64());
  return end;
}

std::string ErrorMsg::Encode() const {
  Writer w;
  w.PutU16(code);
  w.PutString(message);
  return w.Take();
}

Result<ErrorMsg> ErrorMsg::Decode(const std::string& payload) {
  Reader r(payload);
  ErrorMsg err;
  CGQ_ASSIGN_OR_RETURN(err.code, r.U16());
  CGQ_ASSIGN_OR_RETURN(err.message, r.String());
  return err;
}

Status ErrorMsg::ToStatus() const {
  if (code == static_cast<uint16_t>(StatusCode::kOk) ||
      code > static_cast<uint16_t>(StatusCode::kDataLoss)) {
    return Status::Internal("malformed error frame (code " +
                            std::to_string(code) + "): " + message);
  }
  return Status(static_cast<StatusCode>(code), message);
}

ErrorMsg ErrorMsg::FromStatus(const Status& s) {
  ErrorMsg err;
  err.code = static_cast<uint16_t>(s.code());
  err.message = s.message();
  return err;
}

}  // namespace wire
}  // namespace cgq
