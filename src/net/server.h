#ifndef CGQ_NET_SERVER_H_
#define CGQ_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "catalog/location.h"
#include "common/result.h"
#include "exec/table_store.h"
#include "net/socket.h"

namespace cgq {
namespace net {

struct ConnectionState;

/// A location server: hosts the TableStore slice of one or more locations
/// and executes plan fragments dispatched by the coordinator, behind a
/// small poll() event loop with per-connection read/write buffers.
///
/// Protocol per connection (the coordinator dials a fresh connection per
/// fragment *attempt*, so a connection carries at most one fragment):
///
///   Hello -> HelloAck                    version handshake
///   LoadTable -> LoadAck (repeated)      deployment: push store slices
///   StartFragment -> StartAck | Error    placement re-checked HERE, on
///                                        the receiving end, before any
///                                        row is produced
///   InputBatch*/InputEnd  (per channel)  rows for the fragment's SHIP
///                                        leaves, relayed by the
///                                        coordinator
///   OutputBatch* + OutputEnd | Error     the fragment's result stream
///   Cancel                               cooperative cancellation
///
/// Frames are parsed on the event-loop thread; each fragment runs on its
/// own worker thread against the *same* operator core
/// (exec_internal::BuildBatchOp) the in-process backends use, which is
/// what makes loopback results byte-identical to ExecMode::kFragment.
/// Input channels buffer without bound (the coordinator's sequential
/// schedule may relay a whole intermediate before the consumer drains
/// it); output frames append to the connection's write buffer, flushed as
/// the socket accepts them.
class SiteServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    /// 0 = ephemeral: the kernel picks, port() reports. Nothing in the
    /// tree hardcodes a port (CI runs many builds on one machine).
    uint16_t port = 0;
    /// Locations whose store slices this server hosts (a deployment may
    /// map several locations onto one server process).
    std::vector<LocationId> locations;
    int io_timeout_ms = kDefaultIoTimeoutMs;
    /// When non-empty, the hosted store runs in StorageMode::kDisk on
    /// this directory: LoadTable chunks are durable before kLoadAck, and
    /// Start() recovers previously persisted fragments, so a restarted
    /// server serves its hosted fragments without redeployment.
    std::string data_dir;
  };

  explicit SiteServer(Options options);
  ~SiteServer();

  SiteServer(const SiteServer&) = delete;
  SiteServer& operator=(const SiteServer&) = delete;

  /// Binds, starts the event loop. port() is valid afterwards.
  Status Start();

  /// Stops the loop, aborts in-flight fragments, joins every worker.
  /// Idempotent.
  void Stop();

  /// The actually-bound port (ephemeral when Options::port was 0).
  uint16_t port() const { return port_; }

  const std::vector<LocationId>& locations() const {
    return options_.locations;
  }

  /// The hosted store slice. Local pre-loading is allowed before Start();
  /// after that, mutation arrives via LoadTable frames only.
  TableStore* mutable_store() { return &store_; }

  /// Fragments executed to completion (diagnostics / tests).
  int64_t fragments_completed() const {
    return fragments_completed_.load(std::memory_order_relaxed);
  }

 private:
  void LoopThread();
  void HandleFrame(ConnectionState* conn, uint16_t type,
                   std::string payload);
  void StartFragmentWorker(ConnectionState* conn, std::string payload);
  void CloseConnection(size_t index);
  void Wake();

  Options options_;
  Socket listener_;
  uint16_t port_ = 0;
  int wake_pipe_[2] = {-1, -1};
  std::thread loop_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  TableStore store_;
  std::vector<std::unique_ptr<ConnectionState>> connections_;
  std::atomic<int64_t> fragments_completed_{0};
};

}  // namespace net
}  // namespace cgq

#endif  // CGQ_NET_SERVER_H_
