#include "net/network_model.h"

#include "common/logging.h"

namespace cgq {

NetworkModel::NetworkModel(size_t num_locations, double alpha_ms,
                           double beta_ms_per_byte) {
  alpha_.assign(num_locations, std::vector<double>(num_locations, alpha_ms));
  beta_.assign(num_locations,
               std::vector<double>(num_locations, beta_ms_per_byte));
}

NetworkModel::NetworkModel(std::vector<std::vector<double>> alpha,
                           std::vector<std::vector<double>> beta)
    : alpha_(std::move(alpha)), beta_(std::move(beta)) {
  CGQ_CHECK(alpha_.size() == beta_.size());
  for (size_t i = 0; i < alpha_.size(); ++i) {
    CGQ_CHECK(alpha_[i].size() == alpha_.size());
    CGQ_CHECK(beta_[i].size() == beta_.size());
  }
}

NetworkModel NetworkModel::DefaultGeo(size_t n) {
  // Canonical 5 regions, mirroring §7.4: L1 Europe, L2 Africa, L3 Asia,
  // L4 North America, L5 Middle East. RTT-derived start-up costs in ms.
  static const double kAlpha5[5][5] = {
      // E     Af    As    NA    ME
      {0, 60, 110, 45, 55},    // Europe
      {60, 0, 160, 120, 90},   // Africa
      {110, 160, 0, 140, 70},  // Asia
      {45, 120, 140, 0, 120},  // North America
      {55, 90, 70, 120, 0},    // Middle East
  };
  // Effective throughput in MB/s, converted to ms per byte.
  static const double kThroughput5[5][5] = {
      {0, 12, 8, 25, 15},  //
      {12, 0, 5, 7, 10},   //
      {8, 5, 0, 10, 12},   //
      {25, 7, 10, 0, 8},   //
      {15, 10, 12, 8, 0},
  };
  std::vector<std::vector<double>> alpha(n, std::vector<double>(n, 0));
  std::vector<std::vector<double>> beta(n, std::vector<double>(n, 0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      size_t a = i % 5, b = j % 5;
      if (a == b) {
        // Same canonical region, different site: fast regional link.
        alpha[i][j] = 20;
        beta[i][j] = 1000.0 / (40 * 1e6);
      } else {
        alpha[i][j] = kAlpha5[a][b];
        beta[i][j] = 1000.0 / (kThroughput5[a][b] * 1e6);
      }
    }
  }
  return NetworkModel(std::move(alpha), std::move(beta));
}

double NetworkModel::alpha(LocationId from, LocationId to) const {
  CGQ_CHECK(from < alpha_.size() && to < alpha_.size());
  return alpha_[from][to];
}

double NetworkModel::beta(LocationId from, LocationId to) const {
  CGQ_CHECK(from < beta_.size() && to < beta_.size());
  return beta_[from][to];
}

double NetworkModel::Cost(LocationId from, LocationId to,
                          double bytes) const {
  if (from == to) return 0;
  return alpha(from, to) + beta(from, to) * bytes;
}

double NetworkModel::MarginalCost(LocationId from, LocationId to,
                                  double bytes) const {
  if (from == to) return 0;
  return beta(from, to) * bytes;
}

void NetworkModel::SetLinkFault(LocationId from, LocationId to,
                                LinkFault fault) {
  CGQ_CHECK(from < alpha_.size() && to < alpha_.size());
  if (fault.Healthy()) {
    faults_.erase(LinkKey(from, to));
  } else {
    faults_[LinkKey(from, to)] = fault;
  }
}

void NetworkModel::ClearLinkFaults() { faults_.clear(); }

void NetworkModel::ApplyLossyProfile(double drop_probability,
                                     double extra_latency_ms) {
  LinkFault fault;
  fault.drop_probability = drop_probability;
  fault.extra_latency_ms = extra_latency_ms;
  for (size_t i = 0; i < alpha_.size(); ++i) {
    for (size_t j = 0; j < alpha_.size(); ++j) {
      if (i == j) continue;
      SetLinkFault(static_cast<LocationId>(i), static_cast<LocationId>(j),
                   fault);
    }
  }
}

}  // namespace cgq
