#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstring>

namespace cgq {
namespace net {

namespace {

Status Unavailable(const std::string& what) {
  return Status::Unavailable(what + ": " + std::strerror(errno));
}

Result<sockaddr_in> MakeAddr(const std::string& host, uint16_t port) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 address: " + host);
  }
  return addr;
}

/// Waits for `events` on `fd`, mapping timeout/error to kUnavailable.
Status PollFor(int fd, short events, int timeout_ms, const char* what) {
  pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Unavailable(what);
  if (rc == 0) {
    return Status::Unavailable(std::string(what) + ": timed out after " +
                               std::to_string(timeout_ms) + "ms");
  }
  if (pfd.revents & (POLLERR | POLLNVAL)) {
    return Status::Unavailable(std::string(what) + ": socket error");
  }
  return Status::OK();
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Socket> Socket::Listen(const std::string& host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Unavailable("socket");
  Socket s(fd);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  CGQ_ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddr(host, port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Unavailable("bind");
  }
  if (::listen(fd, 64) != 0) return Unavailable("listen");
  return s;
}

Result<uint16_t> Socket::LocalPort() const {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Unavailable("getsockname");
  }
  return ntohs(addr.sin_port);
}

Result<Socket> Socket::Accept() const {
  int fd;
  do {
    fd = ::accept(fd_, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return Unavailable("accept");
  Socket s(fd);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return s;
}

Result<Socket> Socket::Connect(const std::string& host, uint16_t port,
                               int timeout_ms) {
  CGQ_ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddr(host, port));
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Unavailable("socket");
  Socket s(fd);
  CGQ_RETURN_NOT_OK(s.SetNonBlocking(true));
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) return Unavailable("connect");
  if (rc != 0) {
    CGQ_RETURN_NOT_OK(PollFor(fd, POLLOUT, timeout_ms, "connect"));
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      return Status::Unavailable(std::string("connect: ") +
                                 std::strerror(err ? err : errno));
    }
  }
  CGQ_RETURN_NOT_OK(s.SetNonBlocking(false));
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return s;
}

Status Socket::SetNonBlocking(bool nonblocking) const {
  int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) return Unavailable("fcntl(F_GETFL)");
  flags = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd_, F_SETFL, flags) < 0) return Unavailable("fcntl(F_SETFL)");
  return Status::OK();
}

Status Socket::SendAll(const void* data, size_t len, int timeout_ms) const {
  const char* p = static_cast<const char*>(data);
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::send(fd_, p + off, len - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      CGQ_RETURN_NOT_OK(PollFor(fd_, POLLOUT, timeout_ms, "send"));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Unavailable("send");
  }
  return Status::OK();
}

Status Socket::RecvAll(void* data, size_t len, int timeout_ms) const {
  char* p = static_cast<char*>(data);
  size_t off = 0;
  while (off < len) {
    CGQ_RETURN_NOT_OK(PollFor(fd_, POLLIN, timeout_ms, "recv"));
    ssize_t n = ::recv(fd_, p + off, len - off, 0);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      return Status::Unavailable("recv: connection closed by peer");
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return Unavailable("recv");
  }
  return Status::OK();
}

Status SendFrame(const Socket& socket, wire::FrameType type,
                 const std::string& payload, int timeout_ms) {
  std::string frame = wire::EncodeFrame(type, payload);
  return socket.SendAll(frame.data(), frame.size(), timeout_ms);
}

Result<Frame> RecvFrame(const Socket& socket, int timeout_ms) {
  uint8_t header_bytes[wire::kHeaderSize];
  CGQ_RETURN_NOT_OK(
      socket.RecvAll(header_bytes, wire::kHeaderSize, timeout_ms));
  CGQ_ASSIGN_OR_RETURN(
      wire::FrameHeader header,
      wire::DecodeFrameHeader(header_bytes, wire::kHeaderSize));
  Frame frame;
  frame.payload.resize(header.payload_len);
  if (header.payload_len > 0) {
    CGQ_RETURN_NOT_OK(
        socket.RecvAll(&frame.payload[0], header.payload_len, timeout_ms));
  }
  CGQ_RETURN_NOT_OK(wire::VerifyPayload(
      header, reinterpret_cast<const uint8_t*>(frame.payload.data())));
  if (header.type < static_cast<uint16_t>(wire::FrameType::kHello) ||
      header.type > static_cast<uint16_t>(wire::FrameType::kCancel)) {
    return Status::InvalidArgument("unknown frame type " +
                                   std::to_string(header.type));
  }
  frame.type = static_cast<wire::FrameType>(header.type);
  return frame;
}

int EffectiveTimeoutMs(double policy_ms) {
  if (policy_ms < 0) return kDefaultIoTimeoutMs;
  return std::max(1, static_cast<int>(std::ceil(policy_ms)));
}

}  // namespace net
}  // namespace cgq
