#include "net/cluster_client.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/failpoint.h"
#include "net/wire_protocol.h"

namespace cgq {
namespace net {

namespace {

/// Hello -> HelloAck over a fresh socket; returns the server's hosted
/// locations.
Result<std::vector<LocationId>> Handshake(const Socket& socket,
                                          int timeout_ms) {
  wire::Hello hello;
  CGQ_RETURN_NOT_OK(SendFrame(socket, wire::FrameType::kHello,
                              hello.Encode(), timeout_ms));
  CGQ_ASSIGN_OR_RETURN(Frame frame, RecvFrame(socket, timeout_ms));
  if (frame.type == wire::FrameType::kError) {
    CGQ_ASSIGN_OR_RETURN(wire::ErrorMsg err,
                         wire::ErrorMsg::Decode(frame.payload));
    return err.ToStatus();
  }
  if (frame.type != wire::FrameType::kHelloAck) {
    return Status::InvalidArgument(
        "handshake: expected HelloAck, got " +
        std::string(wire::FrameTypeToString(frame.type)));
  }
  CGQ_ASSIGN_OR_RETURN(wire::HelloAck ack,
                       wire::HelloAck::Decode(frame.payload));
  if (ack.version != wire::kVersion) {
    return Status::Unsupported(
        "wire protocol version mismatch: server speaks v" +
        std::to_string(ack.version) + ", client v" +
        std::to_string(wire::kVersion));
  }
  return std::move(ack.locations);
}

}  // namespace

Result<Socket> ClusterClient::DialEndpoint(const Endpoint& endpoint,
                                           int timeout_ms) const {
  if (CGQ_FAILPOINT("net.client.connect")) {
    return Status::Unavailable("injected failure: connection refused by " +
                               endpoint.host + ":" +
                               std::to_string(endpoint.port));
  }
  CGQ_ASSIGN_OR_RETURN(
      Socket socket,
      Socket::Connect(endpoint.host, endpoint.port, timeout_ms));
  CGQ_ASSIGN_OR_RETURN(std::vector<LocationId> hosted,
                       Handshake(socket, timeout_ms));
  (void)hosted;
  return socket;
}

Status ClusterClient::Connect(
    const std::map<LocationId, Endpoint>& endpoints) {
  if (endpoints.empty()) {
    return Status::InvalidArgument("empty cluster endpoint map");
  }
  // Handshake each distinct server once and learn its hosted set.
  std::map<Endpoint, std::vector<LocationId>> hosted_by_server;
  for (const auto& [site, endpoint] : endpoints) {
    if (hosted_by_server.count(endpoint) > 0) continue;
    CGQ_ASSIGN_OR_RETURN(
        Socket socket,
        Socket::Connect(endpoint.host, endpoint.port, io_timeout_ms));
    CGQ_ASSIGN_OR_RETURN(std::vector<LocationId> hosted,
                         Handshake(socket, io_timeout_ms));
    hosted_by_server.emplace(endpoint, std::move(hosted));
  }
  for (const auto& [site, endpoint] : endpoints) {
    const std::vector<LocationId>& hosted = hosted_by_server[endpoint];
    if (std::find(hosted.begin(), hosted.end(), site) == hosted.end()) {
      return Status::InvalidArgument(
          "server " + endpoint.host + ":" +
          std::to_string(endpoint.port) + " does not host location l" +
          std::to_string(site));
    }
  }
  endpoints_ = endpoints;
  return Status::OK();
}

Status ClusterClient::Deploy(const TableStore& store) {
  if (!connected()) {
    return Status::InvalidArgument("deploy: not connected to a cluster");
  }
  // One connection per distinct server, pushing all its fragments.
  std::map<Endpoint, Socket> sessions;
  for (const TableStore::FragmentRef& fragment : store.ListFragments()) {
    auto endpoint_it = endpoints_.find(fragment.location);
    if (endpoint_it == endpoints_.end()) {
      return Status::InvalidArgument(
          "deploy: no server mapped for location l" +
          std::to_string(fragment.location));
    }
    const Endpoint& endpoint = endpoint_it->second;
    auto session_it = sessions.find(endpoint);
    if (session_it == sessions.end()) {
      CGQ_ASSIGN_OR_RETURN(Socket socket,
                           DialEndpoint(endpoint, io_timeout_ms));
      session_it = sessions.emplace(endpoint, std::move(socket)).first;
    }
    const Socket& socket = session_it->second;
    // Chunked push streamed from the store's cursor (disk-backed stores
    // never materialize the fragment); an empty fragment still sends one
    // (replacing) chunk so the server learns the table exists at the
    // location.
    bool first = true;
    auto send_chunk = [&](std::vector<Row> chunk_rows) -> Status {
      wire::LoadTable chunk;
      chunk.location = fragment.location;
      chunk.table = fragment.table;
      chunk.replace = first;
      chunk.rows = std::move(chunk_rows);
      first = false;
      CGQ_RETURN_NOT_OK(SendFrame(socket, wire::FrameType::kLoadTable,
                                  chunk.Encode(), io_timeout_ms));
      CGQ_ASSIGN_OR_RETURN(Frame reply,
                           RecvFrame(socket, io_timeout_ms));
      if (reply.type == wire::FrameType::kError) {
        CGQ_ASSIGN_OR_RETURN(wire::ErrorMsg err,
                             wire::ErrorMsg::Decode(reply.payload));
        return err.ToStatus();
      }
      if (reply.type != wire::FrameType::kLoadAck) {
        return Status::InvalidArgument(
            "deploy: expected LoadAck, got " +
            std::string(wire::FrameTypeToString(reply.type)));
      }
      return Status::OK();
    };
    CGQ_ASSIGN_OR_RETURN(TableStore::Cursor cursor,
                         store.Scan(fragment.location, fragment.table));
    std::vector<Row> buffer;
    std::vector<Row> block;
    while (true) {
      CGQ_ASSIGN_OR_RETURN(bool more, cursor.Next(&block));
      if (!more) break;
      for (Row& row : block) {
        buffer.push_back(std::move(row));
        if (buffer.size() == kLoadChunkRows) {
          CGQ_RETURN_NOT_OK(send_chunk(std::move(buffer)));
          buffer.clear();
        }
      }
    }
    if (!buffer.empty() || first) {
      CGQ_RETURN_NOT_OK(send_chunk(std::move(buffer)));
    }
  }
  return Status::OK();
}

Result<Socket> ClusterClient::Dial(LocationId site,
                                   int timeout_ms) const {
  auto it = endpoints_.find(site);
  if (it == endpoints_.end()) {
    return Status::InvalidArgument("no server mapped for location l" +
                                   std::to_string(site));
  }
  return DialEndpoint(it->second, timeout_ms);
}

Result<std::map<LocationId, Endpoint>> ParseHostsFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open hosts file: " + path);
  }
  std::map<LocationId, Endpoint> out;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::string address, locations;
    if (!(fields >> address)) continue;  // blank line
    if (!(fields >> locations)) {
      return Status::InvalidArgument(
          path + ":" + std::to_string(lineno) +
          ": expected 'host:port loc[,loc...]'");
    }
    const size_t colon = address.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= address.size()) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": bad address '" + address + "'");
    }
    Endpoint endpoint;
    endpoint.host = address.substr(0, colon);
    try {
      const unsigned long port = std::stoul(address.substr(colon + 1));
      if (port == 0 || port > 65535) throw std::out_of_range("port");
      endpoint.port = static_cast<uint16_t>(port);
    } catch (const std::exception&) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": bad port in '" + address + "'");
    }
    std::istringstream locs(locations);
    std::string token;
    while (std::getline(locs, token, ',')) {
      try {
        const unsigned long id = std::stoul(token);
        if (id >= 64) throw std::out_of_range("location");
        out[static_cast<LocationId>(id)] = endpoint;
      } catch (const std::exception&) {
        return Status::InvalidArgument(
            path + ":" + std::to_string(lineno) + ": bad location '" +
            token + "'");
      }
    }
  }
  if (out.empty()) {
    return Status::InvalidArgument("hosts file maps no locations: " +
                                   path);
  }
  return out;
}

}  // namespace net
}  // namespace cgq
