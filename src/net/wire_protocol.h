#ifndef CGQ_NET_WIRE_PROTOCOL_H_
#define CGQ_NET_WIRE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/location.h"
#include "common/result.h"
#include "exec/batch.h"
#include "plan/plan_node.h"

namespace cgq {
namespace wire {

/// The length-prefixed binary wire protocol of the deployment layer
/// (DESIGN.md §13). Every message is one *frame*:
///
///   offset  size  field
///        0     4  magic     0x57514743 ("CGQW" as little-endian bytes)
///        4     2  version   protocol version (kVersion)
///        6     2  type      FrameType
///        8     4  len       payload length in bytes
///       12     8  checksum  FNV-1a over the payload bytes
///       20   len  payload
///
/// All integers are little-endian; doubles travel as their IEEE-754 bit
/// pattern (lossless); strings as u32 length + bytes. The encoding is
/// byte-stable across platforms — the golden tests pin exact frames.
inline constexpr uint32_t kMagic = 0x57514743u;
inline constexpr uint16_t kVersion = 1;
inline constexpr size_t kHeaderSize = 20;
/// Upper bound on one payload; larger frames are rejected as corrupt
/// before any allocation happens (a resource guard against garbage
/// length prefixes).
inline constexpr uint32_t kMaxPayloadBytes = 64u << 20;

/// Message kinds of the coordinator <-> location-server protocol.
enum class FrameType : uint16_t {
  kHello = 1,          ///< client -> server: version handshake
  kHelloAck = 2,       ///< server -> client: version + hosted locations
  kLoadTable = 3,      ///< client -> server: one chunk of a table fragment
  kLoadAck = 4,        ///< server -> client: chunk applied
  kStartFragment = 5,  ///< client -> server: execute a plan fragment
  kStartAck = 6,       ///< server -> client: placement checked, running
  kInputBatch = 7,     ///< client -> server: rows for one input channel
  kInputEnd = 8,       ///< client -> server: input channel exhausted
  kOutputBatch = 9,    ///< server -> client: fragment output rows
  kOutputEnd = 10,     ///< server -> client: fragment done + accounting
  kError = 11,         ///< either way: typed abort
  kCancel = 12,        ///< client -> server: cooperative cancellation
};

const char* FrameTypeToString(FrameType type);

/// FNV-1a over `len` bytes (the payload checksum function).
uint64_t Fnv1a(const uint8_t* data, size_t len);

/// Decoded frame header. `type` is left as raw u16 so unknown types can
/// be diagnosed (the payload checks reject them).
struct FrameHeader {
  uint16_t version = 0;
  uint16_t type = 0;
  uint32_t payload_len = 0;
  uint64_t checksum = 0;
};

/// One complete frame: header + payload, ready to write to a socket.
std::string EncodeFrame(FrameType type, const std::string& payload);

/// Parses a frame header from exactly kHeaderSize bytes. Rejects bad
/// magic and oversized payloads with kInvalidArgument and a version
/// mismatch with kUnsupported (the handshake refusal).
Result<FrameHeader> DecodeFrameHeader(const uint8_t* data, size_t len);

/// Verifies the payload checksum against the header.
Status VerifyPayload(const FrameHeader& header, const uint8_t* payload);

/// Append-only little-endian encoder for payloads.
class Writer {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutDouble(double v);
  void PutString(const std::string& s);
  void PutValue(const Value& v);
  void PutRow(const Row& row);
  /// Layout attrs + rows (the serialized form of a RowBatch).
  void PutBatch(const RowBatch& batch);
  void PutExpr(const Expr& e);
  /// A fragment subtree. SHIP leaves are encoded childless, carrying
  /// their channel id (from `channel_of_ship`) and their child's output
  /// columns, so the receiving server can stand up an input source with
  /// the right layout without the producing subtree.
  Status PutPlan(const PlanNode& node,
                 const std::unordered_map<const PlanNode*, int>&
                     channel_of_ship);

  const std::string& buffer() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked little-endian decoder; every read fails with
/// kInvalidArgument on truncation (never reads past the payload).
class Reader {
 public:
  Reader(const uint8_t* data, size_t len) : data_(data), len_(len) {}
  explicit Reader(const std::string& payload)
      : Reader(reinterpret_cast<const uint8_t*>(payload.data()),
               payload.size()) {}

  Result<uint8_t> U8();
  Result<uint16_t> U16();
  Result<uint32_t> U32();
  Result<uint64_t> U64();
  Result<int32_t> I32();
  Result<int64_t> I64();
  Result<double> Double();
  Result<std::string> String();
  Result<Value> ReadValue();
  Result<Row> ReadRow();
  Result<RowBatch> ReadBatch();
  Result<ExprPtr> ReadExpr();
  /// Inverse of Writer::PutPlan. Decoded SHIP leaves have no children;
  /// their channel id is appended to `*input_channels` in encounter
  /// (pre-order) order and also stored in the node's fragment_ordinal.
  Result<PlanNodePtr> ReadPlan(std::vector<int>* input_channels);

  bool AtEnd() const { return pos_ >= len_; }
  size_t remaining() const { return len_ - pos_; }

 private:
  Status Need(size_t n);

  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

// --- Typed payloads -------------------------------------------------------

struct Hello {
  uint16_t version = kVersion;

  std::string Encode() const;
  static Result<Hello> Decode(const std::string& payload);
};

struct HelloAck {
  uint16_t version = kVersion;
  std::vector<LocationId> locations;  ///< locations hosted by the server

  std::string Encode() const;
  static Result<HelloAck> Decode(const std::string& payload);
};

/// One chunk of a table fragment pushed to the hosting server. The first
/// chunk of a fragment sets `replace`; later chunks append.
struct LoadTable {
  LocationId location = 0;
  std::string table;
  bool replace = true;
  std::vector<Row> rows;

  std::string Encode() const;
  static Result<LoadTable> Decode(const std::string& payload);
};

struct LoadAck {
  int64_t fragment_rows = 0;  ///< rows now stored for the fragment

  std::string Encode() const;
  static Result<LoadAck> Decode(const std::string& payload);
};

/// Everything a location server needs to run one fragment attempt:
/// identity, placement facts for the receiving-end compliance re-check,
/// and the operator subtree (SHIP leaves childless, see Writer::PutPlan).
struct StartFragment {
  int32_t fragment_id = 0;
  LocationId site = 0;
  uint32_t batch_size = 0;
  /// The SHIP this fragment feeds, if any: the server re-checks
  /// ship_to against the shipping trait before acknowledging.
  bool has_output_ship = false;
  LocationId ship_to = 0;
  uint64_t ship_trait_bits = 0;
  PlanNodePtr root;
  /// Channel ids of the SHIP leaves inside `root`, pre-order.
  std::vector<int> input_channels;

  Result<std::string> Encode(
      const std::unordered_map<const PlanNode*, int>& channel_of_ship)
      const;
  static Result<StartFragment> Decode(const std::string& payload);
};

struct InputBatch {
  int32_t channel = 0;
  RowBatch batch;

  std::string Encode() const;
  static Result<InputBatch> Decode(const std::string& payload);
};

struct InputEnd {
  int32_t channel = 0;

  std::string Encode() const;
  static Result<InputEnd> Decode(const std::string& payload);
};

struct OutputBatch {
  RowBatch batch;

  std::string Encode() const;
  static Result<OutputBatch> Decode(const std::string& payload);
};

/// End of a fragment's output stream, carrying the accounting the
/// coordinator folds into FragmentMetrics.
struct OutputEnd {
  int64_t rows_out = 0;
  int64_t rows_scanned = 0;

  std::string Encode() const;
  static Result<OutputEnd> Decode(const std::string& payload);
};

/// A typed Status on the wire.
struct ErrorMsg {
  uint16_t code = 0;  ///< StatusCode
  std::string message;

  std::string Encode() const;
  static Result<ErrorMsg> Decode(const std::string& payload);
  /// The transported status (kInternal for out-of-range codes).
  Status ToStatus() const;
  static ErrorMsg FromStatus(const Status& s);
};

}  // namespace wire
}  // namespace cgq

#endif  // CGQ_NET_WIRE_PROTOCOL_H_
