#ifndef CGQ_NET_SOCKET_H_
#define CGQ_NET_SOCKET_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "net/wire_protocol.h"

namespace cgq {
namespace net {

/// Bound on one blocking socket operation when the retry policy leaves
/// timeouts unbounded (< 0). A genuinely hung peer must surface as a
/// typed kUnavailable instead of wedging the coordinator (or CI) forever.
inline constexpr int kDefaultIoTimeoutMs = 30000;

/// Thin RAII wrapper over a POSIX TCP socket. Blocking calls are bounded
/// by poll() timeouts; every transport-level failure (refused connection,
/// reset, timeout, EOF mid-frame) maps to StatusCode::kUnavailable — the
/// retryable category the executors' recovery machinery already handles —
/// while protocol-level corruption (bad magic/checksum) stays
/// kInvalidArgument and version skew stays kUnsupported.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();
  /// Releases ownership of the descriptor without closing it.
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Binds and listens on `host:port`. Port 0 asks the kernel for an
  /// ephemeral port — the only mode the test/CI harness uses — which
  /// LocalPort() then reports (the ephemeral-port discipline: nothing in
  /// the tree hardcodes a port).
  static Result<Socket> Listen(const std::string& host, uint16_t port);

  /// The actually-bound local port (getsockname), for port-0 listeners.
  Result<uint16_t> LocalPort() const;

  /// Accepts one connection (the caller polled for readability).
  Result<Socket> Accept() const;

  /// Connects to `host:port`, bounded by `timeout_ms`.
  static Result<Socket> Connect(const std::string& host, uint16_t port,
                                int timeout_ms);

  Status SetNonBlocking(bool nonblocking) const;

  /// Sends all `len` bytes; polls for writability up to `timeout_ms` per
  /// stall. MSG_NOSIGNAL keeps a dead peer from raising SIGPIPE.
  Status SendAll(const void* data, size_t len, int timeout_ms) const;

  /// Receives exactly `len` bytes. EOF maps to kUnavailable ("connection
  /// closed by peer"), as does an idle period of `timeout_ms`.
  Status RecvAll(void* data, size_t len, int timeout_ms) const;

 private:
  int fd_ = -1;
};

/// One decoded frame off a socket.
struct Frame {
  wire::FrameType type = wire::FrameType::kError;
  std::string payload;
};

/// Writes one whole frame (header + payload).
Status SendFrame(const Socket& socket, wire::FrameType type,
                 const std::string& payload, int timeout_ms);

/// Reads one whole frame, verifying magic, version, size bound and
/// checksum. A connection closed cleanly *between* frames still returns
/// kUnavailable — the deployment protocol always terminates streams with
/// an explicit end/ack frame, so EOF is never expected here.
Result<Frame> RecvFrame(const Socket& socket, int timeout_ms);

/// Effective IO timeout: `policy_ms` when non-negative (rounded up to a
/// whole millisecond), else kDefaultIoTimeoutMs.
int EffectiveTimeoutMs(double policy_ms);

}  // namespace net
}  // namespace cgq

#endif  // CGQ_NET_SOCKET_H_
