#include "net/server.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/failpoint.h"
#include "exec/batch_ops.h"
#include "exec/exec_internal.h"
#include "exec/fragmenter.h"
#include "net/wire_protocol.h"

namespace cgq {
namespace net {

namespace {

using exec_internal::BatchOp;
using exec_internal::BatchOpEnv;
using exec_internal::BatchOpPtr;
using exec_internal::BuildBatchOp;
using exec_internal::LayoutOf;
using exec_internal::OptBatch;

/// Unbounded buffer of one input channel's batches. Unbounded is a
/// deliberate deadlock-avoidance choice: under the coordinator's
/// sequential schedule a producer fragment finishes (and its whole
/// intermediate is relayed here) before the consumer starts pulling.
class InputQueue {
 public:
  void Push(RowBatch batch) {
    std::lock_guard<std::mutex> lock(mu_);
    batches_.push_back(std::move(batch));
    cv_.notify_all();
  }

  void CloseQueue() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    cv_.notify_all();
  }

  void Abort(const Status& status) {
    std::lock_guard<std::mutex> lock(mu_);
    if (abort_.ok()) abort_ = status;
    closed_ = true;
    cv_.notify_all();
  }

  /// Blocks until a batch, end-of-stream (nullopt) or abort (error).
  Result<OptBatch> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return !batches_.empty() || closed_; });
    if (!batches_.empty()) {
      RowBatch batch = std::move(batches_.front());
      batches_.pop_front();
      return OptBatch(std::move(batch));
    }
    if (!abort_.ok()) return abort_;
    return OptBatch();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<RowBatch> batches_;
  bool closed_ = false;
  Status abort_;
};

/// BatchOp over an InputQueue: the server-side stand-in for a SHIP leaf.
/// Its layout is the producing subtree's output layout, which travels on
/// the wire as the SHIP leaf's own output columns.
class QueueSourceOp : public BatchOp {
 public:
  QueueSourceOp(const PlanNode* ship, InputQueue* queue)
      : queue_(queue), layout_(LayoutOf(*ship)) {}

  Result<OptBatch> Next() override { return queue_->Pop(); }
  const RowLayout& layout() const override { return layout_; }

 private:
  InputQueue* queue_;
  RowLayout layout_;
};

/// One in-flight fragment (at most one per connection: the coordinator
/// dials a fresh connection per attempt).
struct FragmentSession {
  wire::StartFragment start;
  std::unordered_map<int, std::unique_ptr<InputQueue>> inputs;
  std::atomic<bool> cancel{false};
  std::thread worker;

  void AbortInputs(const Status& status) {
    cancel.store(true, std::memory_order_release);
    for (auto& [channel, queue] : inputs) queue->Abort(status);
  }
};

}  // namespace

/// Per-connection state of the event loop. The loop thread owns inbuf
/// and frame parsing; the fragment worker appends output frames to
/// outbuf under out_mu and wakes the loop to flush.
struct ConnectionState {
  Socket socket;
  std::string inbuf;
  std::mutex out_mu;
  std::string outbuf;
  size_t out_off = 0;
  bool dead = false;
  std::unique_ptr<FragmentSession> session;

  void EnqueueFrame(wire::FrameType type, const std::string& payload) {
    std::string frame = wire::EncodeFrame(type, payload);
    std::lock_guard<std::mutex> lock(out_mu);
    outbuf.append(frame);
  }

  /// Writes as much buffered output as the socket accepts (non-blocking).
  /// Returns false when the connection broke.
  bool Flush() {
    std::lock_guard<std::mutex> lock(out_mu);
    while (out_off < outbuf.size()) {
      ssize_t n = ::send(socket.fd(), outbuf.data() + out_off,
                         outbuf.size() - out_off, MSG_NOSIGNAL);
      if (n > 0) {
        out_off += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    if (out_off == outbuf.size()) {
      outbuf.clear();
      out_off = 0;
    }
    return true;
  }

  bool HasPendingOutput() {
    std::lock_guard<std::mutex> lock(out_mu);
    return out_off < outbuf.size();
  }
};

SiteServer::SiteServer(Options options) : options_(std::move(options)) {}

SiteServer::~SiteServer() { Stop(); }

Status SiteServer::Start() {
  if (!options_.data_dir.empty()) {
    // Recover-or-create before accepting connections: queries hitting a
    // restarted server see the persisted fragments immediately.
    CGQ_RETURN_NOT_OK(store_.EnableDiskStorage(options_.data_dir));
  }
  CGQ_ASSIGN_OR_RETURN(listener_,
                       Socket::Listen(options_.host, options_.port));
  CGQ_ASSIGN_OR_RETURN(port_, listener_.LocalPort());
  CGQ_RETURN_NOT_OK(listener_.SetNonBlocking(true));
  if (::pipe(wake_pipe_) != 0) {
    return Status::Unavailable(std::string("pipe: ") +
                               ::strerror(errno));
  }
  // Non-blocking read end: the loop drains whatever wake bytes piled up
  // without ever blocking inside the drain.
  int flags = ::fcntl(wake_pipe_[0], F_GETFL, 0);
  ::fcntl(wake_pipe_[0], F_SETFL, flags | O_NONBLOCK);
  stopping_.store(false);
  loop_ = std::thread([this] { LoopThread(); });
  started_ = true;
  return Status::OK();
}

void SiteServer::Stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);
  Wake();
  if (loop_.joinable()) loop_.join();
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  listener_.Close();
  started_ = false;
}

void SiteServer::Wake() {
  if (wake_pipe_[1] >= 0) {
    char byte = 1;
    ssize_t ignored = ::write(wake_pipe_[1], &byte, 1);
    (void)ignored;
  }
}

void SiteServer::CloseConnection(size_t index) {
  ConnectionState* conn = connections_[index].get();
  if (conn->session != nullptr) {
    conn->session->AbortInputs(
        Status::Unavailable("connection closed by coordinator"));
    if (conn->session->worker.joinable()) conn->session->worker.join();
  }
  connections_.erase(connections_.begin() +
                     static_cast<ptrdiff_t>(index));
}

void SiteServer::LoopThread() {
  std::vector<pollfd> pfds;
  while (!stopping_.load(std::memory_order_acquire)) {
    pfds.clear();
    pfds.push_back({wake_pipe_[0], POLLIN, 0});
    pfds.push_back({listener_.fd(), POLLIN, 0});
    for (const auto& conn : connections_) {
      short events = POLLIN;
      if (conn->HasPendingOutput()) events |= POLLOUT;
      pfds.push_back({conn->socket.fd(), events, 0});
    }
    int rc = ::poll(pfds.data(), pfds.size(), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pfds[0].revents & POLLIN) {
      char drain[64];
      while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
      }
    }
    if (pfds[1].revents & POLLIN) {
      while (true) {
        Result<Socket> accepted = listener_.Accept();
        if (!accepted.ok()) break;
        if (CGQ_FAILPOINT("sited.accept")) continue;  // refuse: drop it
        auto conn = std::make_unique<ConnectionState>();
        conn->socket = std::move(accepted).ValueOrDie();
        (void)conn->socket.SetNonBlocking(true);
        connections_.push_back(std::move(conn));
      }
    }
    // Service existing connections (pfds[i + 2] belongs to
    // connections_[i]; both vectors are stable during this pass).
    const size_t n = connections_.size();
    for (size_t i = 0; i < n && i + 2 < pfds.size(); ++i) {
      ConnectionState* conn = connections_[i].get();
      short revents = pfds[i + 2].revents;
      if (revents & (POLLERR | POLLHUP | POLLNVAL)) conn->dead = true;
      if (!conn->dead && (revents & POLLOUT)) {
        if (!conn->Flush()) conn->dead = true;
      }
      if (!conn->dead && (revents & POLLIN)) {
        char buf[64 * 1024];
        while (true) {
          ssize_t got = ::recv(conn->socket.fd(), buf, sizeof(buf), 0);
          if (got > 0) {
            conn->inbuf.append(buf, static_cast<size_t>(got));
            continue;
          }
          if (got == 0) conn->dead = true;
          if (got < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
              errno != EINTR) {
            conn->dead = true;
          }
          break;
        }
        // Parse complete frames off the front of the buffer.
        size_t consumed = 0;
        while (!conn->dead &&
               conn->inbuf.size() - consumed >= wire::kHeaderSize) {
          const uint8_t* base = reinterpret_cast<const uint8_t*>(
              conn->inbuf.data() + consumed);
          Result<wire::FrameHeader> header =
              wire::DecodeFrameHeader(base, wire::kHeaderSize);
          if (!header.ok()) {
            // Unrecoverable framing error (bad magic / version skew):
            // report and drop the connection — there is no resync point.
            conn->EnqueueFrame(
                wire::FrameType::kError,
                wire::ErrorMsg::FromStatus(header.status()).Encode());
            conn->Flush();
            conn->dead = true;
            break;
          }
          const size_t frame_size =
              wire::kHeaderSize + header->payload_len;
          if (conn->inbuf.size() - consumed < frame_size) break;
          std::string payload = conn->inbuf.substr(
              consumed + wire::kHeaderSize, header->payload_len);
          consumed += frame_size;
          Status ok = wire::VerifyPayload(
              *header,
              reinterpret_cast<const uint8_t*>(payload.data()));
          if (!ok.ok()) {
            conn->EnqueueFrame(wire::FrameType::kError,
                               wire::ErrorMsg::FromStatus(ok).Encode());
            conn->Flush();
            conn->dead = true;
            break;
          }
          HandleFrame(conn, header->type, std::move(payload));
        }
        if (consumed > 0) conn->inbuf.erase(0, consumed);
      }
      if (!conn->dead) conn->Flush();
    }
    for (size_t i = connections_.size(); i-- > 0;) {
      if (connections_[i]->dead) CloseConnection(i);
    }
  }
  // Shutdown: abort everything still in flight.
  for (size_t i = connections_.size(); i-- > 0;) CloseConnection(i);
}

void SiteServer::HandleFrame(ConnectionState* conn, uint16_t type,
                             std::string payload) {
  auto fail = [conn](const Status& status) {
    conn->EnqueueFrame(wire::FrameType::kError,
                       wire::ErrorMsg::FromStatus(status).Encode());
  };
  switch (static_cast<wire::FrameType>(type)) {
    case wire::FrameType::kHello: {
      Result<wire::Hello> hello = wire::Hello::Decode(payload);
      if (!hello.ok()) return fail(hello.status());
      wire::HelloAck ack;
      ack.locations = options_.locations;
      conn->EnqueueFrame(wire::FrameType::kHelloAck, ack.Encode());
      return;
    }
    case wire::FrameType::kLoadTable: {
      Result<wire::LoadTable> load = wire::LoadTable::Decode(payload);
      if (!load.ok()) return fail(load.status());
      wire::LoadTable& msg = *load;
      if (std::find(options_.locations.begin(), options_.locations.end(),
                    msg.location) == options_.locations.end()) {
        return fail(Status::InvalidArgument(
            "location l" + std::to_string(msg.location) +
            " is not hosted by this server"));
      }
      // Persist before acknowledging: with --data-dir the chunk is in
      // the commit log (flushed) when kLoadAck leaves, so a SIGKILL
      // after the ack never loses acknowledged rows.
      Status stored =
          msg.replace
              ? store_.Put(msg.location, msg.table, std::move(msg.rows))
              : store_.AppendRows(msg.location, msg.table,
                                  std::move(msg.rows));
      if (!stored.ok()) return fail(stored);
      wire::LoadAck ack;
      Result<size_t> rows = store_.FragmentRows(msg.location, msg.table);
      ack.fragment_rows = rows.ok() ? static_cast<int64_t>(*rows) : 0;
      conn->EnqueueFrame(wire::FrameType::kLoadAck, ack.Encode());
      return;
    }
    case wire::FrameType::kStartFragment:
      return StartFragmentWorker(conn, std::move(payload));
    case wire::FrameType::kInputBatch: {
      Result<wire::InputBatch> input = wire::InputBatch::Decode(payload);
      if (!input.ok()) return fail(input.status());
      if (conn->session == nullptr) {
        return fail(Status::Internal("input batch without a fragment"));
      }
      auto it = conn->session->inputs.find(input->channel);
      if (it == conn->session->inputs.end()) {
        return fail(Status::Internal(
            "input batch for unknown channel " +
            std::to_string(input->channel)));
      }
      it->second->Push(std::move(input->batch));
      return;
    }
    case wire::FrameType::kInputEnd: {
      Result<wire::InputEnd> end = wire::InputEnd::Decode(payload);
      if (!end.ok()) return fail(end.status());
      if (conn->session == nullptr) return;
      auto it = conn->session->inputs.find(end->channel);
      if (it != conn->session->inputs.end()) it->second->CloseQueue();
      return;
    }
    case wire::FrameType::kCancel: {
      if (conn->session != nullptr) {
        conn->session->AbortInputs(
            Status::Cancelled("query cancelled by caller"));
      }
      return;
    }
    default:
      return fail(Status::InvalidArgument(
          "unexpected frame type " + std::to_string(type) +
          " on a server connection"));
  }
}

void SiteServer::StartFragmentWorker(ConnectionState* conn,
                                     std::string payload) {
  auto fail = [conn](const Status& status) {
    conn->EnqueueFrame(wire::FrameType::kError,
                       wire::ErrorMsg::FromStatus(status).Encode());
  };
  Result<wire::StartFragment> decoded =
      wire::StartFragment::Decode(payload);
  if (!decoded.ok()) return fail(decoded.status());
  if (conn->session != nullptr) {
    return fail(Status::Internal(
        "connection already carries a fragment (one per connection)"));
  }
  // Simulated crash: the process "dies" between receiving the fragment
  // and acknowledging it — the coordinator sees the connection drop with
  // no ack and must restart the attempt.
  if (CGQ_FAILPOINT("sited.crash_before_ack")) {
    conn->dead = true;
    return;
  }
  auto session = std::make_unique<FragmentSession>();
  session->start = std::move(decoded).ValueOrDie();
  const wire::StartFragment& start = session->start;

  // Receiving-end compliance re-check: the server refuses to run a
  // fragment whose placement violates its traits, independently of the
  // coordinator having checked the same thing before dispatch.
  if (std::find(options_.locations.begin(), options_.locations.end(),
                start.site) == options_.locations.end()) {
    return fail(Status::InvalidArgument(
        "fragment #" + std::to_string(start.fragment_id) +
        " dispatched to a server not hosting l" +
        std::to_string(start.site)));
  }
  Status placement = CheckFragmentPlacement(
      start.fragment_id, start.site, start.root->exec_trait, nullptr);
  if (placement.ok() && start.has_output_ship) {
    const LocationSet ship_trait(start.ship_trait_bits);
    if (!ship_trait.empty() && !ship_trait.Contains(start.ship_to)) {
      placement = Status::Internal(
          "compliance violation: fragment #" +
          std::to_string(start.fragment_id) + " ships to l" +
          std::to_string(start.ship_to) +
          " outside its shipping trait");
    }
  }
  if (!placement.ok()) return fail(placement);

  for (int channel : start.input_channels) {
    session->inputs.emplace(channel, std::make_unique<InputQueue>());
  }
  conn->session = std::move(session);
  conn->EnqueueFrame(wire::FrameType::kStartAck, std::string());

  FragmentSession* fs = conn->session.get();
  SiteServer* server = this;
  fs->worker = std::thread([server, conn, fs] {
    int64_t rows_scanned = 0;
    int64_t rows_out = 0;
    BatchOpEnv env;
    env.store = &server->store_;
    env.batch_size = std::max<size_t>(1, fs->start.batch_size);
    env.cancel = &fs->cancel;
    env.rows_scanned = &rows_scanned;
    env.ship_source = [fs](const PlanNode& ship) -> Result<BatchOpPtr> {
      auto it = fs->inputs.find(ship.fragment_ordinal);
      if (it == fs->inputs.end()) {
        return Status::Internal("no input queue for channel " +
                                std::to_string(ship.fragment_ordinal));
      }
      return BatchOpPtr(new QueueSourceOp(&ship, it->second.get()));
    };
    auto run = [&]() -> Status {
      CGQ_ASSIGN_OR_RETURN(BatchOpPtr op,
                           BuildBatchOp(*fs->start.root, env));
      while (true) {
        CGQ_ASSIGN_OR_RETURN(OptBatch batch, op->Next());
        if (!batch) break;
        // Empty batches are skipped before they reach the wire, exactly
        // as RunFragment skips them before ShipChannel::Send — keeping
        // per-edge batch (and so ship accounting) parity.
        if (batch->Empty()) continue;
        rows_out += static_cast<int64_t>(batch->NumRows());
        wire::OutputBatch out;
        out.batch = std::move(*batch);
        conn->EnqueueFrame(wire::FrameType::kOutputBatch, out.Encode());
        server->Wake();
      }
      return Status::OK();
    };
    Status s = run();
    if (s.ok()) {
      wire::OutputEnd end;
      end.rows_out = rows_out;
      end.rows_scanned = rows_scanned;
      conn->EnqueueFrame(wire::FrameType::kOutputEnd, end.Encode());
      server->fragments_completed_.fetch_add(1,
                                             std::memory_order_relaxed);
    } else {
      conn->EnqueueFrame(wire::FrameType::kError,
                         wire::ErrorMsg::FromStatus(s).Encode());
    }
    server->Wake();
  });
}

}  // namespace net
}  // namespace cgq
