#ifndef CGQ_NET_CLUSTER_CLIENT_H_
#define CGQ_NET_CLUSTER_CLIENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "catalog/location.h"
#include "common/result.h"
#include "exec/table_store.h"
#include "net/socket.h"

namespace cgq {
namespace net {

/// Address of one location server.
struct Endpoint {
  std::string host;
  uint16_t port = 0;

  bool operator==(const Endpoint& other) const = default;
  bool operator<(const Endpoint& other) const {
    return host != other.host ? host < other.host : port < other.port;
  }
};

/// The coordinator's view of a deployed cluster: which server hosts which
/// location, verified against each server's handshake. Connections are
/// not pooled — the distributed executor dials a fresh connection per
/// fragment attempt, which is what maps socket-level failures cleanly
/// onto the executors' restart machinery.
class ClusterClient {
 public:
  /// Handshakes every distinct endpoint in `endpoints` and verifies each
  /// mapped location is actually hosted there (per the server's
  /// HelloAck). A version-skewed server fails with kUnsupported; an
  /// unreachable one with kUnavailable.
  Status Connect(const std::map<LocationId, Endpoint>& endpoints);

  bool connected() const { return !endpoints_.empty(); }
  bool HasServer(LocationId site) const {
    return endpoints_.count(site) > 0;
  }
  const std::map<LocationId, Endpoint>& endpoints() const {
    return endpoints_;
  }

  /// Pushes every fragment of `store` to the server hosting its location
  /// (chunked LoadTable frames, each acknowledged). Fragments whose
  /// location has no mapped server are an error — the deployment must
  /// cover the data.
  Status Deploy(const TableStore& store);

  /// Opens and handshakes a fresh connection to `site`'s server for one
  /// fragment attempt.
  Result<Socket> Dial(LocationId site, int timeout_ms) const;

  /// Rows per LoadTable chunk during Deploy.
  static constexpr size_t kLoadChunkRows = 4096;

  int io_timeout_ms = kDefaultIoTimeoutMs;

 private:
  Result<Socket> DialEndpoint(const Endpoint& endpoint,
                              int timeout_ms) const;

  std::map<LocationId, Endpoint> endpoints_;
};

/// Parses a hosts file (the `deploy` shell statement and cgq_coord
/// --hosts format): one line per server, `host:port loc[,loc...]`,
/// '#' comments and blank lines ignored. Example:
///
///   127.0.0.1:41001 0,1
///   127.0.0.1:41002 2,3
///   127.0.0.1:41003 4
Result<std::map<LocationId, Endpoint>> ParseHostsFile(
    const std::string& path);

}  // namespace net
}  // namespace cgq

#endif  // CGQ_NET_CLUSTER_CLIENT_H_
