#ifndef CGQ_COMMON_TRACE_H_
#define CGQ_COMMON_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace cgq {

/// Process-wide registry of named monotonic counters and gauges.
///
/// Cost model: `CGQ_COUNTER_ADD("exec.ships", n)` resolves the counter
/// cell once per call site (function-local static) and then performs a
/// single relaxed atomic add — no lock, no map lookup on the fast path.
/// With CGQ_TRACING=OFF the macros compile to nothing and the registry
/// stays empty, mirroring the failpoint design.
///
/// Naming scheme: `<component>.<metric>` with lowercase snake_case
/// metric names — e.g. `exec.rows_shipped`, `optimizer.implication_tests`,
/// `site_selector.memo_hits`. Counters are monotonic sums; gauges hold
/// the most recently Set() value.
class MetricsRegistry {
 public:
  class Counter {
   public:
    void Add(int64_t delta) {
      value_.fetch_add(delta, std::memory_order_relaxed);
    }
    int64_t Get() const { return value_.load(std::memory_order_relaxed); }

   private:
    friend class MetricsRegistry;
    std::atomic<int64_t> value_{0};
  };

  class Gauge {
   public:
    void Set(int64_t value) {
      value_.store(value, std::memory_order_relaxed);
    }
    int64_t Get() const { return value_.load(std::memory_order_relaxed); }

   private:
    friend class MetricsRegistry;
    std::atomic<int64_t> value_{0};
  };

  /// Returns the (process-lifetime) cell for `name`, registering it on
  /// first use. A name is either a counter or a gauge, never both.
  static Counter* GetCounter(const std::string& name);
  static Gauge* GetGauge(const std::string& name);

  /// Current value of `name`; 0 when the metric was never registered.
  static int64_t Value(const std::string& name);

  /// All registered metrics with their current values, sorted by name.
  static std::vector<std::pair<std::string, int64_t>> Snapshot();

  /// Resets every registered metric to 0 (cells stay registered so
  /// cached pointers remain valid). Test-only.
  static void ResetForTest();
};

/// Which timestamps a TraceSession records.
enum class TraceClock {
  /// Virtual time: at dump time spans are renumbered by a deterministic
  /// depth-first walk (children ordered by (ordinal, begin id)), so the
  /// serialized trace is byte-stable across runs with the same seed and
  /// thread count. This is the default: the repo's NetworkModel simulates
  /// WAN latency, so virtual ticks are the meaningful axis.
  kDeterministic,
  /// Wall-clock microseconds since the session started. Use when real
  /// latency attribution matters more than reproducibility.
  kWall,
};

/// One recorded span, resolved into canonical (deterministic) order.
struct CanonicalSpan {
  std::string name;
  std::string path;   ///< "/"-joined names, e.g. "query/optimize/bind".
  int depth = 0;      ///< 0 for roots.
  int ordinal = -1;   ///< Sibling sort key; -1 = creation order.
  int track = 0;      ///< Chrome "tid": 0 = driver, 1+N = worker lanes.
  int64_t ts = 0;     ///< Canonical begin (ticks or microseconds).
  int64_t dur = 1;    ///< Canonical duration (>= 1 tick).
  /// Argument key → pre-rendered JSON value ("3", "1.5", "\"CA\"").
  std::vector<std::pair<std::string, std::string>> args;
};

/// A per-query trace: a tree of timed spans plus their arguments.
///
/// Thread safety: BeginSpan/EndSpan/AddSpanArg may be called from any
/// thread (one mutex, off the per-row hot path — spans are per phase,
/// per fragment and per ship edge, never per batch). Determinism: span
/// ids are handed out in creation order; concurrent siblings (fragments,
/// prewarm items) pass an explicit `ordinal` so the canonical order is
/// independent of thread interleaving.
class TraceSession {
 public:
  explicit TraceSession(std::string label,
                        TraceClock clock = TraceClock::kDeterministic);

  /// Starts a span and returns its id. `parent` is the id of the
  /// enclosing span (-1 for a root). Prefer the RAII `TraceSpan`.
  int64_t BeginSpan(const char* name, int64_t parent, int ordinal,
                    int track);
  void EndSpan(int64_t id);
  void AddSpanArg(int64_t id, const char* key, int64_t value);
  void AddSpanArg(int64_t id, const char* key, double value);
  void AddSpanArg(int64_t id, const char* key, const std::string& value);

  /// Spans in canonical order (deterministic preorder). Ends any span
  /// still open at the time of the call.
  std::vector<CanonicalSpan> CanonicalSpans() const;

  /// Serializes the session as Chrome trace_event JSON (load via
  /// chrome://tracing or https://ui.perfetto.dev). With
  /// TraceClock::kDeterministic the output is byte-identical across runs
  /// with the same seed and thread count.
  std::string ToChromeJson() const;

  size_t span_count() const;
  const std::string& label() const { return label_; }
  TraceClock clock() const { return clock_; }

  /// The session installed on the calling thread by ScopedTraceContext
  /// (nullptr when tracing is off or no context is installed).
  static TraceSession* Current();
  /// Id of the innermost open span on the calling thread (-1 if none).
  static int64_t CurrentSpanId();
  /// Track (worker lane) installed on the calling thread.
  static int CurrentTrack();

 private:
  friend class TraceSpan;
  friend class ScopedTraceContext;

  struct SpanRecord {
    std::string name;
    int64_t parent = -1;
    int ordinal = -1;
    int track = 0;
    int64_t begin_us = 0;
    int64_t end_us = -1;  ///< -1 while open.
    std::vector<std::pair<std::string, std::string>> args;
  };

  int64_t NowUs() const;

  std::string label_;
  TraceClock clock_;
  std::chrono::steady_clock::time_point start_;
  mutable std::mutex mu_;
  mutable std::vector<SpanRecord> spans_;
};

#ifdef CGQ_TRACING

/// Installs `session` as the calling thread's trace context for the
/// current scope. Worker threads do not inherit the spawning thread's
/// context, so parallel regions re-install it inside the worker body:
///
///   TraceSession* t = TraceSession::Current();
///   int64_t parent = TraceSession::CurrentSpanId();
///   pool->ParallelFor(n, w, [&](size_t i) {
///     ScopedTraceContext ctx(t, parent, /*track=*/int(i) + 1);
///     TraceSpan span("fragment", /*ordinal=*/int(i));
///     ...
///   });
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceSession* session, int64_t parent = -1,
                              int track = 0);
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceSession* prev_session_;
  int64_t prev_span_;
  int prev_track_;
};

/// RAII span: begins at construction against the thread's current trace
/// context and ends at destruction (or an earlier End()). A no-op when
/// no context is installed, so instrumented code needs no tracing-mode
/// checks. Spans on one thread must end in LIFO order.
///
/// `ordinal` orders concurrent siblings deterministically; leave it -1
/// for spans created sequentially on one thread.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, int ordinal = -1);
  ~TraceSpan() { End(); }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void AddArg(const char* key, int64_t value);
  void AddArg(const char* key, int value) {
    AddArg(key, static_cast<int64_t>(value));
  }
  void AddArg(const char* key, double value);
  void AddArg(const char* key, const std::string& value);
  void End();

  bool active() const { return session_ != nullptr; }
  int64_t id() const { return id_; }

 private:
  TraceSession* session_ = nullptr;
  int64_t id_ = -1;
  int64_t prev_span_ = -1;
  bool ended_ = false;
};

/// Adds `delta` to the named process-wide counter. `name` must be a
/// string literal (the resolved cell is cached per call site).
#define CGQ_COUNTER_ADD(name, delta)                                  \
  do {                                                                \
    static ::cgq::MetricsRegistry::Counter* const cgq_counter_cell_ = \
        ::cgq::MetricsRegistry::GetCounter(name);                     \
    cgq_counter_cell_->Add(delta);                                    \
  } while (0)

/// Sets the named process-wide gauge. `name` must be a string literal.
#define CGQ_GAUGE_SET(name, value)                                \
  do {                                                            \
    static ::cgq::MetricsRegistry::Gauge* const cgq_gauge_cell_ = \
        ::cgq::MetricsRegistry::GetGauge(name);                   \
    cgq_gauge_cell_->Set(value);                                  \
  } while (0)

#else  // !CGQ_TRACING

class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceSession*, int64_t = -1, int = 0) {}
};

class TraceSpan {
 public:
  explicit TraceSpan(const char*, int = -1) {}
  void AddArg(const char*, int64_t) {}
  void AddArg(const char*, int) {}
  void AddArg(const char*, double) {}
  void AddArg(const char*, const std::string&) {}
  void End() {}
  bool active() const { return false; }
  int64_t id() const { return -1; }
};

#define CGQ_COUNTER_ADD(name, delta) \
  do {                               \
  } while (0)
#define CGQ_GAUGE_SET(name, value) \
  do {                             \
  } while (0)

#endif  // CGQ_TRACING

}  // namespace cgq

#endif  // CGQ_COMMON_TRACE_H_
