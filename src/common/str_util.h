#ifndef CGQ_COMMON_STR_UTIL_H_
#define CGQ_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace cgq {

/// ASCII-lowercases a copy of `s`.
std::string ToLower(std::string_view s);

/// ASCII-uppercases a copy of `s`.
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Splits on `sep`, trimming ASCII whitespace from each piece; empty pieces
/// are kept.
std::vector<std::string> SplitAndTrim(std::string_view s, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// SQL LIKE match with '%' (any run) and '_' (any single char) wildcards.
/// Case-sensitive, no escape character.
bool LikeMatch(std::string_view value, std::string_view pattern);

}  // namespace cgq

#endif  // CGQ_COMMON_STR_UTIL_H_
