#ifndef CGQ_COMMON_LOGGING_H_
#define CGQ_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace cgq {
namespace internal_logging {

/// Terminates the process after streaming a failure description to stderr.
/// Used by CGQ_CHECK; never returns.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition) {
    stream_ << "FATAL " << file << ":" << line << " Check failed: "
            << condition << " ";
  }
  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace cgq

/// Aborts with a message when `condition` is false. For invariants whose
/// violation indicates a bug, not a user error (user errors use Status).
#define CGQ_CHECK(condition)                                              \
  if (!(condition))                                                       \
  ::cgq::internal_logging::FatalLogMessage(__FILE__, __LINE__, #condition) \
      .stream()

#ifdef NDEBUG
#define CGQ_DCHECK(condition) CGQ_CHECK(true || (condition))
#else
#define CGQ_DCHECK(condition) CGQ_CHECK(condition)
#endif

#endif  // CGQ_COMMON_LOGGING_H_
