#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace cgq {

namespace {

thread_local bool t_in_worker = false;

}  // namespace

ThreadPool::ThreadPool(size_t threads) {
  threads = std::max<size_t>(1, threads);
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  t_in_worker = true;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

bool ThreadPool::InWorkerThread() { return t_in_worker; }

void ThreadPool::ParallelFor(size_t n, size_t width,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Nested calls (a task fanning out again) run inline: workers must never
  // block on the pool.
  if (n == 1 || width <= 1 || InWorkerThread() || workers_.empty()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  struct ForState {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  auto state = std::make_shared<ForState>();
  const std::function<void(size_t)>* body = &fn;  // outlives: caller blocks
  auto runner = [state, body, n] {
    while (true) {
      size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      (*body)(i);
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->cv.notify_all();
      }
    }
  };

  size_t helpers = std::min({width - 1, workers_.size(), n - 1});
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < helpers; ++i) queue_.emplace_back(runner);
  }
  if (helpers == 1) {
    cv_.notify_one();
  } else {
    cv_.notify_all();
  }

  runner();  // the calling thread participates
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->done.load() == n; });
}

ThreadPool* ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool(
      std::max<unsigned>(2, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace cgq
