#ifndef CGQ_COMMON_STATUS_H_
#define CGQ_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace cgq {

/// Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Malformed input (bad SQL, bad policy expression).
  kNotFound,          ///< Missing table/column/location/etc.
  kAlreadyExists,     ///< Duplicate registration in a catalog.
  kNonCompliant,      ///< No compliant execution plan exists (query rejected).
  kUnsupported,       ///< Feature outside the supported subset.
  kInternal,          ///< Invariant violation; indicates a bug.
  kUnavailable,       ///< Transient infrastructure failure (link/site down,
                      ///< retries exhausted). Retryable, unlike kInternal.
  kResourceExhausted, ///< Admission control rejected the work (queue full or
                      ///< queue-wait timeout). Retryable after backing off.
  kCancelled,         ///< The caller cancelled the query before it finished.
  kPermissionDenied,  ///< Authentication/authorization failure (unknown
                      ///< tenant token). Not retryable with the same
                      ///< credentials.
  kDataLoss,          ///< Unrecoverable storage corruption: a checksum
                      ///< mismatch, a missing manifest over live blocks,
                      ///< or a commit-log record torn somewhere other
                      ///< than the tail. Never returned for states that
                      ///< clean recovery can replay through.
};

/// Returns a short human-readable name, e.g. "Invalid argument".
const char* StatusCodeToString(StatusCode code);

/// Error-or-success outcome of an operation, in the style of Arrow/RocksDB.
///
/// A `Status` is cheap to copy in the success case (no allocation) and owns
/// an error message otherwise. The library never throws; every fallible
/// public API returns `Status` or `Result<T>`.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(message)});
    }
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status NonCompliant(std::string msg) {
    return Status(StatusCode::kNonCompliant, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const {
    return state_ == nullptr ? StatusCode::kOk : state_->code;
  }
  /// Error message; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ == nullptr ? kEmpty : state_->message;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsNonCompliant() const { return code() == StatusCode::kNonCompliant; }
  bool IsUnsupported() const { return code() == StatusCode::kUnsupported; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsPermissionDenied() const {
    return code() == StatusCode::kPermissionDenied;
  }
  bool IsDataLoss() const { return code() == StatusCode::kDataLoss; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // Shared so Status copies are cheap; error states are immutable.
  std::shared_ptr<const State> state_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status to the caller.
#define CGQ_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::cgq::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                  \
  } while (false)

}  // namespace cgq

#endif  // CGQ_COMMON_STATUS_H_
