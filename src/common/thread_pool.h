#ifndef CGQ_COMMON_THREAD_POOL_H_
#define CGQ_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cgq {

/// Small reusable fixed-size worker pool for fanning out independent CPU
/// work (policy implication checks, AR4 evaluations). Tasks must not block
/// on the pool: workers never wait for other tasks, and `ParallelFor`
/// called from a worker thread degrades to inline execution instead of
/// deadlocking.
///
/// The pool is intentionally minimal — no futures, no priorities. Callers
/// that need results write them into pre-sized slots (index-addressed), so
/// the output is deterministic regardless of scheduling order.
class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Runs `fn(i)` for every i in [0, n), spread over at most `width`
  /// workers plus the calling thread, and returns when all iterations are
  /// done. `width <= 1`, n <= 1, or a call from inside a worker thread runs
  /// everything inline on the caller.
  void ParallelFor(size_t n, size_t width,
                   const std::function<void(size_t)>& fn);

  /// True when the current thread is one of this pool's workers.
  static bool InWorkerThread();

  /// Process-wide shared pool, created on first use with
  /// `std::thread::hardware_concurrency()` workers (min 2 so parallel code
  /// paths stay exercised on single-core machines). Never destroyed.
  static ThreadPool* Shared();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace cgq

#endif  // CGQ_COMMON_THREAD_POOL_H_
