#include "common/trace.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <sstream>

#include "common/logging.h"

namespace cgq {

namespace {

// ----------------------------------------------------------------------
// Metrics registry storage.

struct MetricCell {
  MetricsRegistry::Counter counter;
  MetricsRegistry::Gauge gauge;
  bool is_gauge = false;
};

struct MetricsStore {
  std::mutex mu;
  // std::map keeps Snapshot() sorted by name for free.
  std::map<std::string, MetricCell*> cells;
};

// Leaked singleton: cells must outlive the static-destruction phase
// because call sites cache raw pointers in function-local statics.
MetricsStore& TheMetrics() {
  static MetricsStore* store = new MetricsStore();
  return *store;
}

MetricCell* GetCell(const std::string& name, bool gauge) {
  MetricsStore& store = TheMetrics();
  std::lock_guard<std::mutex> lock(store.mu);
  auto it = store.cells.find(name);
  if (it == store.cells.end()) {
    auto* cell = new MetricCell();
    cell->is_gauge = gauge;
    it = store.cells.emplace(name, cell).first;
  }
  CGQ_CHECK(it->second->is_gauge == gauge)
      << "metric '" << name << "' registered as both counter and gauge";
  return it->second;
}

// ----------------------------------------------------------------------
// Thread-local trace context (installed by ScopedTraceContext).

#ifdef CGQ_TRACING
struct TraceTls {
  TraceSession* session = nullptr;
  int64_t span = -1;
  int track = 0;
};

TraceTls& Tls() {
  thread_local TraceTls tls;
  return tls;
}
#endif  // CGQ_TRACING

// ----------------------------------------------------------------------
// JSON rendering helpers.

std::string RenderInt(int64_t v) { return std::to_string(v); }

// %.17g round-trips doubles exactly, so traced byte counts reconcile
// bit-for-bit with ExecMetrics totals.
std::string RenderDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return std::string(buf);
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string RenderString(const std::string& v) {
  return "\"" + EscapeJson(v) + "\"";
}

}  // namespace

// ----------------------------------------------------------------------
// MetricsRegistry.

MetricsRegistry::Counter* MetricsRegistry::GetCounter(
    const std::string& name) {
  return &GetCell(name, /*gauge=*/false)->counter;
}

MetricsRegistry::Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  return &GetCell(name, /*gauge=*/true)->gauge;
}

int64_t MetricsRegistry::Value(const std::string& name) {
  MetricsStore& store = TheMetrics();
  std::lock_guard<std::mutex> lock(store.mu);
  auto it = store.cells.find(name);
  if (it == store.cells.end()) return 0;
  return it->second->is_gauge ? it->second->gauge.Get()
                              : it->second->counter.Get();
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::Snapshot() {
  MetricsStore& store = TheMetrics();
  std::lock_guard<std::mutex> lock(store.mu);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(store.cells.size());
  for (const auto& [name, cell] : store.cells) {
    out.emplace_back(name, cell->is_gauge ? cell->gauge.Get()
                                          : cell->counter.Get());
  }
  return out;
}

void MetricsRegistry::ResetForTest() {
  MetricsStore& store = TheMetrics();
  std::lock_guard<std::mutex> lock(store.mu);
  for (auto& [name, cell] : store.cells) {
    cell->counter.value_.store(0, std::memory_order_relaxed);
    cell->gauge.value_.store(0, std::memory_order_relaxed);
  }
}

// ----------------------------------------------------------------------
// TraceSession.

TraceSession::TraceSession(std::string label, TraceClock clock)
    : label_(std::move(label)),
      clock_(clock),
      start_(std::chrono::steady_clock::now()) {}

int64_t TraceSession::NowUs() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

int64_t TraceSession::BeginSpan(const char* name, int64_t parent,
                                int ordinal, int track) {
  std::lock_guard<std::mutex> lock(mu_);
  SpanRecord rec;
  rec.name = name;
  rec.parent = parent;
  rec.ordinal = ordinal;
  rec.track = track;
  rec.begin_us = NowUs();
  spans_.push_back(std::move(rec));
  return static_cast<int64_t>(spans_.size()) - 1;
}

void TraceSession::EndSpan(int64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<int64_t>(spans_.size())) return;
  SpanRecord& rec = spans_[static_cast<size_t>(id)];
  if (rec.end_us < 0) rec.end_us = NowUs();
}

void TraceSession::AddSpanArg(int64_t id, const char* key, int64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<int64_t>(spans_.size())) return;
  spans_[static_cast<size_t>(id)].args.emplace_back(key, RenderInt(value));
}

void TraceSession::AddSpanArg(int64_t id, const char* key, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<int64_t>(spans_.size())) return;
  spans_[static_cast<size_t>(id)].args.emplace_back(key,
                                                    RenderDouble(value));
}

void TraceSession::AddSpanArg(int64_t id, const char* key,
                              const std::string& value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<int64_t>(spans_.size())) return;
  spans_[static_cast<size_t>(id)].args.emplace_back(key,
                                                    RenderString(value));
}

size_t TraceSession::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::vector<CanonicalSpan> TraceSession::CanonicalSpans() const {
  std::vector<SpanRecord> spans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    int64_t now = NowUs();
    for (SpanRecord& rec : spans_) {
      if (rec.end_us < 0) rec.end_us = now;
    }
    spans = spans_;
  }

  // Children sorted by (ordinal, begin id): concurrent siblings carry an
  // explicit ordinal, sequential siblings fall back to creation order.
  size_t n = spans.size();
  std::vector<std::vector<size_t>> children(n);
  std::vector<size_t> roots;
  for (size_t i = 0; i < n; ++i) {
    int64_t p = spans[i].parent;
    if (p >= 0 && p < static_cast<int64_t>(n)) {
      children[static_cast<size_t>(p)].push_back(i);
    } else {
      roots.push_back(i);
    }
  }
  auto by_ordinal = [&spans](size_t a, size_t b) {
    if (spans[a].ordinal != spans[b].ordinal) {
      return spans[a].ordinal < spans[b].ordinal;
    }
    return a < b;
  };
  std::sort(roots.begin(), roots.end(), by_ordinal);
  for (auto& c : children) std::sort(c.begin(), c.end(), by_ordinal);

  std::vector<CanonicalSpan> out;
  out.reserve(n);
  const bool deterministic = clock_ == TraceClock::kDeterministic;
  int64_t tick = 0;
  // Preorder walk. In deterministic mode each span's begin is the next
  // virtual tick and its duration is its subtree's tick count, so a
  // parent exactly covers its children (plus one tick for itself).
  std::function<void(size_t, int, const std::string&)> visit =
      [&](size_t idx, int depth, const std::string& parent_path) {
        const SpanRecord& rec = spans[idx];
        CanonicalSpan c;
        c.name = rec.name;
        c.path = parent_path.empty() ? rec.name : parent_path + "/" + rec.name;
        c.depth = depth;
        c.ordinal = rec.ordinal;
        c.track = rec.track;
        c.args = rec.args;
        if (deterministic) {
          c.ts = tick++;
        } else {
          c.ts = rec.begin_us;
          c.dur = std::max<int64_t>(rec.end_us - rec.begin_us, 0);
        }
        size_t pos = out.size();
        out.push_back(std::move(c));
        for (size_t child : children[idx]) {
          visit(child, depth + 1, out[pos].path);
        }
        if (deterministic) out[pos].dur = tick - out[pos].ts;
      };
  for (size_t r : roots) visit(r, 0, "");
  return out;
}

std::string TraceSession::ToChromeJson() const {
  std::vector<CanonicalSpan> spans = CanonicalSpans();
  std::ostringstream os;
  os << "{\"traceEvents\":[\n";
  os << " {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
        "\"args\":{\"name\":\"cgq\"}}";
  for (const CanonicalSpan& s : spans) {
    os << ",\n {\"name\":\"" << EscapeJson(s.name)
       << "\",\"cat\":\"cgq\",\"ph\":\"X\",\"pid\":0,\"tid\":" << s.track
       << ",\"ts\":" << s.ts << ",\"dur\":" << s.dur;
    if (!s.args.empty()) {
      os << ",\"args\":{";
      bool first = true;
      for (const auto& [key, value] : s.args) {
        if (!first) os << ",";
        first = false;
        os << "\"" << EscapeJson(key) << "\":" << value;
      }
      os << "}";
    }
    os << "}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock\":\""
     << (clock_ == TraceClock::kDeterministic ? "deterministic" : "wall")
     << "\",\"label\":\"" << EscapeJson(label_) << "\"}}\n";
  return os.str();
}

TraceSession* TraceSession::Current() {
#ifdef CGQ_TRACING
  return Tls().session;
#else
  return nullptr;
#endif
}

int64_t TraceSession::CurrentSpanId() {
#ifdef CGQ_TRACING
  return Tls().span;
#else
  return -1;
#endif
}

int TraceSession::CurrentTrack() {
#ifdef CGQ_TRACING
  return Tls().track;
#else
  return 0;
#endif
}

// ----------------------------------------------------------------------
// ScopedTraceContext / TraceSpan (compiled-in variants).

#ifdef CGQ_TRACING

ScopedTraceContext::ScopedTraceContext(TraceSession* session,
                                       int64_t parent, int track) {
  TraceTls& tls = Tls();
  prev_session_ = tls.session;
  prev_span_ = tls.span;
  prev_track_ = tls.track;
  tls.session = session;
  tls.span = parent;
  tls.track = track;
}

ScopedTraceContext::~ScopedTraceContext() {
  TraceTls& tls = Tls();
  tls.session = prev_session_;
  tls.span = prev_span_;
  tls.track = prev_track_;
}

TraceSpan::TraceSpan(const char* name, int ordinal) {
  TraceTls& tls = Tls();
  if (tls.session == nullptr) return;
  session_ = tls.session;
  prev_span_ = tls.span;
  id_ = session_->BeginSpan(name, prev_span_, ordinal, tls.track);
  tls.span = id_;
}

void TraceSpan::End() {
  if (session_ == nullptr || ended_) return;
  ended_ = true;
  session_->EndSpan(id_);
  Tls().span = prev_span_;
}

void TraceSpan::AddArg(const char* key, int64_t value) {
  if (session_ != nullptr) session_->AddSpanArg(id_, key, value);
}

void TraceSpan::AddArg(const char* key, double value) {
  if (session_ != nullptr) session_->AddSpanArg(id_, key, value);
}

void TraceSpan::AddArg(const char* key, const std::string& value) {
  if (session_ != nullptr) session_->AddSpanArg(id_, key, value);
}

#endif  // CGQ_TRACING

}  // namespace cgq
