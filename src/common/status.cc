#include "common/status.h"

namespace cgq {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kNonCompliant:
      return "Non-compliant";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kPermissionDenied:
      return "Permission denied";
    case StatusCode::kDataLoss:
      return "Data loss";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code());
  result += ": ";
  result += message();
  return result;
}

}  // namespace cgq
