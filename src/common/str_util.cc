#include "common/str_util.h"

#include <cctype>

namespace cgq {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> SplitAndTrim(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    std::string_view piece = (pos == std::string_view::npos)
                                 ? s.substr(start)
                                 : s.substr(start, pos - start);
    out.emplace_back(Trim(piece));
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool LikeMatch(std::string_view value, std::string_view pattern) {
  // Iterative two-pointer algorithm with backtracking on the last '%'.
  size_t v = 0, p = 0;
  size_t star_p = std::string_view::npos;
  size_t star_v = 0;
  while (v < value.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == value[v])) {
      ++v;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_v = v;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      v = ++star_v;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

}  // namespace cgq
