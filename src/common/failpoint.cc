#include "common/failpoint.h"

#include <algorithm>
#include <mutex>
#include <unordered_map>

#include "common/logging.h"
#include "common/rng.h"

namespace cgq {

std::atomic<int> Failpoints::armed_count_{0};

namespace {

struct Policy {
  enum class Kind { kOnce, kEveryN, kProbability };
  Kind kind = Kind::kOnce;
  int64_t every_n = 1;
  double probability = 0;
  Rng rng{0};
  int64_t evaluations = 0;
  int64_t fires = 0;
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Policy> sites;
};

// Leaked singleton: failpoints may be consulted from detached worker
// threads during process shutdown.
Registry& TheRegistry() {
  static Registry* r = new Registry();
  return *r;
}

}  // namespace

void Failpoints::ArmOnce(const std::string& site) {
  Policy p;
  p.kind = Policy::Kind::kOnce;
  bool inserted;
  {
    Registry& r = TheRegistry();
    std::lock_guard<std::mutex> lock(r.mu);
    inserted = r.sites.insert_or_assign(site, std::move(p)).second;
  }
  if (inserted) armed_count_.fetch_add(1, std::memory_order_relaxed);
}

void Failpoints::ArmEveryN(const std::string& site, int64_t n) {
  CGQ_CHECK(n >= 1) << "every-N failpoint needs n >= 1, got " << n;
  Policy p;
  p.kind = Policy::Kind::kEveryN;
  p.every_n = n;
  bool inserted;
  {
    Registry& r = TheRegistry();
    std::lock_guard<std::mutex> lock(r.mu);
    inserted = r.sites.insert_or_assign(site, std::move(p)).second;
  }
  if (inserted) armed_count_.fetch_add(1, std::memory_order_relaxed);
}

void Failpoints::ArmProbability(const std::string& site, double p,
                                uint64_t seed) {
  CGQ_CHECK(p >= 0 && p <= 1) << "failpoint probability out of range: " << p;
  Policy policy;
  policy.kind = Policy::Kind::kProbability;
  policy.probability = p;
  policy.rng = Rng(seed);
  bool inserted;
  {
    Registry& r = TheRegistry();
    std::lock_guard<std::mutex> lock(r.mu);
    inserted = r.sites.insert_or_assign(site, std::move(policy)).second;
  }
  if (inserted) armed_count_.fetch_add(1, std::memory_order_relaxed);
}

void Failpoints::Disarm(const std::string& site) {
  Registry& r = TheRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (r.sites.erase(site) > 0) {
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Failpoints::DisarmAll() {
  Registry& r = TheRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  armed_count_.fetch_sub(static_cast<int>(r.sites.size()),
                         std::memory_order_relaxed);
  r.sites.clear();
}

bool Failpoints::Fire(const char* site) {
  Registry& r = TheRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(site);
  if (it == r.sites.end()) return false;
  Policy& p = it->second;
  p.evaluations += 1;
  bool fire = false;
  switch (p.kind) {
    case Policy::Kind::kOnce:
      fire = p.evaluations == 1;
      break;
    case Policy::Kind::kEveryN:
      fire = p.evaluations % p.every_n == 0;
      break;
    case Policy::Kind::kProbability:
      fire = p.rng.Bernoulli(p.probability);
      break;
  }
  if (fire) p.fires += 1;
  return fire;
}

int64_t Failpoints::Evaluations(const std::string& site) {
  Registry& r = TheRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.evaluations;
}

int64_t Failpoints::Fires(const std::string& site) {
  Registry& r = TheRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.fires;
}

std::vector<std::string> Failpoints::ArmedSites() {
  Registry& r = TheRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::string> out;
  out.reserve(r.sites.size());
  for (const auto& [name, policy] : r.sites) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace cgq
