#ifndef CGQ_COMMON_RNG_H_
#define CGQ_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace cgq {

/// Deterministic 64-bit PRNG (splitmix64 + xorshift mix).
///
/// Used by the TPC-H generator and the workload generators so that every
/// experiment is reproducible from a seed. Not cryptographically secure.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) : state_(seed) {
    // Avoid the all-zero state.
    if (state_ == 0) state_ = 0x9E3779B97F4A7C15ULL;
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    // splitmix64.
    state_ += 0x9E3779B97F4A7C15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    CGQ_DCHECK(lo <= hi);
    uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<int64_t>(Next());  // full range
    return lo + static_cast<int64_t>(Next() % range);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Picks an element of `v` uniformly at random. Requires non-empty v.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    CGQ_CHECK(!v.empty());
    return v[static_cast<size_t>(Uniform(0, static_cast<int64_t>(v.size()) - 1))];
  }

  /// Samples k distinct indices from [0, n) (k capped at n).
  std::vector<size_t> SampleIndices(size_t n, size_t k) {
    if (k > n) k = n;
    std::vector<size_t> idx(n);
    for (size_t i = 0; i < n; ++i) idx[i] = i;
    // Partial Fisher-Yates.
    for (size_t i = 0; i < k; ++i) {
      size_t j = i + static_cast<size_t>(
                         Uniform(0, static_cast<int64_t>(n - i) - 1));
      std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    return idx;
  }

 private:
  uint64_t state_;
};

}  // namespace cgq

#endif  // CGQ_COMMON_RNG_H_
