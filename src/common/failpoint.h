#ifndef CGQ_COMMON_FAILPOINT_H_
#define CGQ_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace cgq {

/// Process-wide deterministic failpoint registry.
///
/// A *failpoint site* is a named branch compiled into production code
/// (e.g. "channel.send", "fragment.start") that normally does nothing.
/// Tests arm a site with a firing policy; the code under test then asks
/// `CGQ_FAILPOINT("site")` whether to simulate a failure at that spot.
///
/// Cost model: when no site is armed, the macro is a single relaxed
/// atomic load plus an untaken branch — nothing is looked up, counted or
/// locked, so failpoint sites may sit on hot paths. When compiled with
/// CGQ_FAILPOINTS=OFF the macro is the constant `false` and the branch
/// vanishes entirely.
///
/// Determinism: every armed policy is evaluated under one registry lock,
/// so the k-th evaluation of a site (process-wide, regardless of which
/// thread performs it) consumes the k-th step of the policy's state. For
/// the seeded-probability policy this makes the *number* of fires over N
/// evaluations a pure function of (seed, p, N) even under concurrency.
class Failpoints {
 public:
  /// Fires on the first evaluation only.
  static void ArmOnce(const std::string& site);
  /// Fires on every n-th evaluation (n >= 1; n == 1 fires always).
  static void ArmEveryN(const std::string& site, int64_t n);
  /// Fires with probability `p` per evaluation, from a deterministic
  /// stream seeded with `seed`.
  static void ArmProbability(const std::string& site, double p,
                             uint64_t seed);

  static void Disarm(const std::string& site);
  static void DisarmAll();

  /// True when at least one site is armed (the fast-path gate).
  static bool AnyArmed() {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  /// Slow path behind AnyArmed(): returns whether the policy armed for
  /// `site` fires now. Unarmed sites never fire and are not counted.
  static bool Fire(const char* site);

  /// Evaluations / fires of `site` since it was (re-)armed; 0 when the
  /// site is not armed. Only the slow path counts, so these double as the
  /// zero-overhead witness: a site evaluated while nothing was armed
  /// reports 0 evaluations after arming.
  static int64_t Evaluations(const std::string& site);
  static int64_t Fires(const std::string& site);

  /// Names of the currently armed sites (sorted), for diagnostics.
  static std::vector<std::string> ArmedSites();

 private:
  static std::atomic<int> armed_count_;
};

}  // namespace cgq

#ifdef CGQ_FAILPOINTS
/// True when the named failpoint site fires now. Usable as
/// `if (CGQ_FAILPOINT("channel.send")) return SimulatedDrop();`.
#define CGQ_FAILPOINT(site) \
  (::cgq::Failpoints::AnyArmed() && ::cgq::Failpoints::Fire(site))
#else
#define CGQ_FAILPOINT(site) false
#endif

#endif  // CGQ_COMMON_FAILPOINT_H_
