#ifndef CGQ_COMMON_RESULT_H_
#define CGQ_COMMON_RESULT_H_

#include <cstdlib>
#include <utility>
#include <variant>

#include "common/status.h"

namespace cgq {

/// Value-or-error, in the style of arrow::Result.
///
/// Holds either a `T` or a non-OK `Status`. Accessing the value of an
/// errored result aborts (programming error), so callers must check `ok()`
/// or use `CGQ_ASSIGN_OR_RETURN`.
template <typename T>
class Result {
 public:
  /// Implicit so `return value;` works in functions returning Result<T>.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit so `return status;` propagates errors.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      // A Result must never hold an OK status without a value.
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(repr_);
  }

  const T& ValueOrDie() const& {
    if (!ok()) std::abort();
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    if (!ok()) std::abort();
    return std::get<T>(repr_);
  }
  T ValueOrDie() && {
    if (!ok()) std::abort();
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<Status, T> repr_;
};

/// Evaluates `rexpr` (a Result<T>), propagating its error, else binding the
/// value to `lhs`. `lhs` may include a declaration, e.g.
/// `CGQ_ASSIGN_OR_RETURN(auto plan, Optimize(q));`
#define CGQ_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).ValueOrDie()

#define CGQ_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define CGQ_ASSIGN_OR_RETURN_NAME(x, y) CGQ_ASSIGN_OR_RETURN_CONCAT(x, y)

#define CGQ_ASSIGN_OR_RETURN(lhs, rexpr) \
  CGQ_ASSIGN_OR_RETURN_IMPL(             \
      CGQ_ASSIGN_OR_RETURN_NAME(_cgq_result_, __COUNTER__), lhs, rexpr)

}  // namespace cgq

#endif  // CGQ_COMMON_RESULT_H_
