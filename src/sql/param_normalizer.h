#ifndef CGQ_SQL_PARAM_NORMALIZER_H_
#define CGQ_SQL_PARAM_NORMALIZER_H_

#include <string>
#include <vector>

#include "types/value.h"

namespace cgq {

/// A query text split into a literal-free skeleton and its constants.
///
/// The skeleton is the canonical token stream (lower-cased identifiers,
/// single spaces) with every literal replaced by a typed placeholder
/// (`?i` int, `?f` float, `?s` string, `?d` date), so same-shape queries
/// that differ only in constants share one plan-cache fingerprint.
/// `params[k]` is the value of the k-th placeholder; the parser assigns
/// the same ordinals to the literal Expr nodes it creates (in token
/// order), which is what lets a cached plan be rebound at lookup time.
///
/// The skeleton is a fingerprint string, never re-parsed.
struct ParameterizedSql {
  std::string skeleton;
  std::vector<Value> params;
  /// False when the text does not lex: skeleton is then the raw input and
  /// params is empty (the query can still be cached, exact-match only).
  bool parameterized = false;
};

/// Splits `sql` into skeleton + parameters. Folding rules mirror the
/// parser exactly: a unary minus and its numeric literal fold into one
/// negated parameter, `date 'YYYY-MM-DD'` folds into one date parameter,
/// and the LIMIT count stays in the skeleton verbatim (it is part of the
/// plan, not a rebindable literal slot).
ParameterizedSql ParameterizeSql(const std::string& sql);

}  // namespace cgq

#endif  // CGQ_SQL_PARAM_NORMALIZER_H_
