#include "sql/lexer.h"

#include <cctype>

#include "common/str_util.h"

namespace cgq {

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  auto push = [&](TokenType t, size_t offset) {
    Token tok;
    tok.type = t;
    tok.offset = offset;
    tokens.push_back(tok);
  };
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(input[j])) ||
                       input[j] == '_')) {
        ++j;
      }
      Token tok;
      tok.type = TokenType::kIdentifier;
      tok.text = ToLower(input.substr(i, j - i));
      tok.offset = start;
      tokens.push_back(tok);
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool is_float = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) ++j;
      if (j < n && input[j] == '.' && j + 1 < n &&
          std::isdigit(static_cast<unsigned char>(input[j + 1]))) {
        is_float = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) {
          ++j;
        }
      }
      Token tok;
      tok.offset = start;
      std::string text = input.substr(i, j - i);
      if (is_float) {
        tok.type = TokenType::kFloat;
        tok.float_value = std::stod(text);
      } else {
        tok.type = TokenType::kInteger;
        tok.int_value = std::stoll(text);
      }
      tokens.push_back(tok);
      i = j;
      continue;
    }
    if (c == '\'') {
      size_t j = i + 1;
      std::string contents;
      bool closed = false;
      while (j < n) {
        if (input[j] == '\'') {
          if (j + 1 < n && input[j + 1] == '\'') {  // escaped quote
            contents += '\'';
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        contents += input[j++];
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal at offset " +
                                       std::to_string(start));
      }
      Token tok;
      tok.type = TokenType::kString;
      tok.text = std::move(contents);
      tok.offset = start;
      tokens.push_back(tok);
      i = j;
      continue;
    }
    switch (c) {
      case ',':
        push(TokenType::kComma, start);
        ++i;
        break;
      case '.':
        push(TokenType::kDot, start);
        ++i;
        break;
      case '*':
        push(TokenType::kStar, start);
        ++i;
        break;
      case '(':
        push(TokenType::kLParen, start);
        ++i;
        break;
      case ')':
        push(TokenType::kRParen, start);
        ++i;
        break;
      case '+':
        push(TokenType::kPlus, start);
        ++i;
        break;
      case '-':
        push(TokenType::kMinus, start);
        ++i;
        break;
      case '/':
        push(TokenType::kSlash, start);
        ++i;
        break;
      case ';':
        push(TokenType::kSemicolon, start);
        ++i;
        break;
      case '=':
        push(TokenType::kEq, start);
        ++i;
        break;
      case '!':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenType::kNe, start);
          i += 2;
        } else {
          return Status::InvalidArgument("unexpected '!' at offset " +
                                         std::to_string(start));
        }
        break;
      case '<':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenType::kLe, start);
          i += 2;
        } else if (i + 1 < n && input[i + 1] == '>') {
          push(TokenType::kNe, start);
          i += 2;
        } else {
          push(TokenType::kLt, start);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenType::kGe, start);
          i += 2;
        } else {
          push(TokenType::kGt, start);
          ++i;
        }
        break;
      default:
        return Status::InvalidArgument(std::string("unexpected character '") +
                                       c + "' at offset " +
                                       std::to_string(start));
    }
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace cgq
