#ifndef CGQ_SQL_TOKEN_H_
#define CGQ_SQL_TOKEN_H_

#include <cstdint>
#include <string>

namespace cgq {

enum class TokenType {
  kIdentifier,  ///< lower-cased keyword-or-name; parser decides
  kInteger,
  kFloat,
  kString,  ///< contents of a single-quoted literal
  // Punctuation and operators.
  kComma,
  kDot,
  kStar,
  kLParen,
  kRParen,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kSlash,
  kSemicolon,
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;       ///< identifier (lower-cased) or string contents
  int64_t int_value = 0;
  double float_value = 0;
  size_t offset = 0;      ///< byte offset in the input, for error messages
};

}  // namespace cgq

#endif  // CGQ_SQL_TOKEN_H_
