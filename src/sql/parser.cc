#include "sql/parser.h"

#include <cctype>
#include <optional>

#include "sql/lexer.h"
#include "types/date.h"

namespace cgq {

namespace {

// Keywords that terminate identifier-based clauses.
bool IsKeyword(const std::string& s) {
  static const char* kKeywords[] = {
      "select", "from",  "where", "group", "by",    "order", "asc",
      "desc",   "limit", "as",    "and",   "or",    "not",   "like",
      "in",     "between", "sum", "avg",   "min",   "max",   "count",
      "ship",   "to",    "aggregates", "date", "distinct", "having",
      "exists"};
  for (const char* k : kKeywords) {
    if (s == k) return true;
  }
  return false;
}

std::optional<AggFn> AggFnFromName(const std::string& s) {
  if (s == "sum") return AggFn::kSum;
  if (s == "avg") return AggFn::kAvg;
  if (s == "min") return AggFn::kMin;
  if (s == "max") return AggFn::kMax;
  if (s == "count") return AggFn::kCount;
  return std::nullopt;
}

/// Recursive-descent parser over a token stream. Methods return Status /
/// Result; the cursor is only advanced on success paths.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<QueryAst> ParseQuery();
  Result<PolicyExprAst> ParsePolicy();

 private:
  Status ParseQueryBody(QueryAst* q);

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Check(TokenType t) const { return Peek().type == t; }
  bool CheckIdent(const char* word) const {
    return Peek().type == TokenType::kIdentifier && Peek().text == word;
  }
  bool Match(TokenType t) {
    if (!Check(t)) return false;
    ++pos_;
    return true;
  }
  bool MatchIdent(const char* word) {
    if (!CheckIdent(word)) return false;
    ++pos_;
    return true;
  }
  Status Expect(TokenType t, const char* what) {
    if (Match(t)) return Status::OK();
    return Err(std::string("expected ") + what);
  }
  Status ExpectIdent(const char* word) {
    if (MatchIdent(word)) return Status::OK();
    return Err(std::string("expected '") + word + "'");
  }
  Status Err(const std::string& msg) const {
    return Status::InvalidArgument(msg + " at offset " +
                                   std::to_string(Peek().offset));
  }

  // Expression grammar (loosest to tightest binding).
  Result<ExprPtr> ParseExpr() { return ParseOr(); }
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();

  Result<Value> ParseLiteralValue();
  /// Literal factory: tags the node with the next param ordinal when this
  /// parse is a query (never for policy expressions — policy constants
  /// must not be rebindable by the parameterized plan cache).
  ExprPtr MakeLiteral(Value v) {
    return tag_literals_ ? Expr::ParamLiteral(std::move(v),
                                              next_param_ordinal_++)
                         : Expr::Literal(std::move(v));
  }
  Result<std::string> ParseIdentifier(const char* what);
  Result<std::vector<std::string>> ParseNameList(const char* what);

  // Parses "(SELECT ...)" after the '(' was consumed.
  Result<std::shared_ptr<QueryAst>> ParseSubquery() {
    auto inner = std::make_shared<QueryAst>();
    CGQ_RETURN_NOT_OK(ParseQueryBody(inner.get()));
    CGQ_RETURN_NOT_OK(Expect(TokenType::kRParen, "')' after subquery"));
    return inner;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  QueryAst* current_query_ = nullptr;  // target for subquery predicates
  // Literal-token numbering for parameterized plan caching. Assigned in
  // token order (recursive descent creates literals left to right), which
  // is exactly the order ParameterizeSql() extracts them in.
  bool tag_literals_ = false;
  int next_param_ordinal_ = 0;
};

Result<ExprPtr> Parser::ParseOr() {
  CGQ_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
  while (MatchIdent("or")) {
    CGQ_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
    left = Expr::Binary(ExprOp::kOr, left, right);
  }
  return left;
}

Result<ExprPtr> Parser::ParseAnd() {
  CGQ_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
  while (MatchIdent("and")) {
    CGQ_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
    left = Expr::Binary(ExprOp::kAnd, left, right);
  }
  return left;
}

Result<ExprPtr> Parser::ParseNot() {
  if (MatchIdent("not")) {
    CGQ_ASSIGN_OR_RETURN(ExprPtr inner, ParseNot());
    return Expr::Unary(ExprOp::kNot, inner);
  }
  if (CheckIdent("exists") && Peek(1).type == TokenType::kLParen) {
    Advance();  // EXISTS
    Advance();  // '('
    if (!CheckIdent("select")) return Err("expected SELECT after EXISTS(");
    if (current_query_ == nullptr) {
      return Err("subquery not allowed in this context");
    }
    CGQ_ASSIGN_OR_RETURN(std::shared_ptr<QueryAst> inner, ParseSubquery());
    current_query_->subqueries.push_back(SubqueryPredicate{
        SubqueryPredicate::Kind::kExists, nullptr, std::move(inner)});
    return Expr::Literal(Value::Int64(1));  // placeholder conjunct
  }
  return ParseComparison();
}

Result<ExprPtr> Parser::ParseComparison() {
  CGQ_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
  // [NOT] LIKE / IN / BETWEEN
  bool negated = false;
  size_t saved = pos_;
  if (MatchIdent("not")) {
    if (CheckIdent("like") || CheckIdent("in") || CheckIdent("between")) {
      negated = true;
    } else {
      pos_ = saved;
      return left;
    }
  }
  if (MatchIdent("like")) {
    CGQ_ASSIGN_OR_RETURN(ExprPtr pattern, ParseAdditive());
    return Expr::Binary(negated ? ExprOp::kNotLike : ExprOp::kLike, left,
                        pattern);
  }
  if (MatchIdent("in")) {
    CGQ_RETURN_NOT_OK(Expect(TokenType::kLParen, "'(' after IN"));
    if (CheckIdent("select")) {
      if (negated) return Err("NOT IN subqueries are not supported");
      if (current_query_ == nullptr) {
        return Err("subquery not allowed in this context");
      }
      CGQ_ASSIGN_OR_RETURN(std::shared_ptr<QueryAst> inner, ParseSubquery());
      current_query_->subqueries.push_back(SubqueryPredicate{
          SubqueryPredicate::Kind::kIn, left, std::move(inner)});
      return Expr::Literal(Value::Int64(1));  // placeholder conjunct
    }
    std::vector<Value> values;
    std::vector<int> ordinals;
    do {
      // One ordinal per IN element; a leading minus / DATE prefix folds
      // into the element the same way the normalizer folds it.
      int ordinal = tag_literals_ ? next_param_ordinal_++ : -1;
      CGQ_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
      values.push_back(std::move(v));
      ordinals.push_back(ordinal);
    } while (Match(TokenType::kComma));
    CGQ_RETURN_NOT_OK(Expect(TokenType::kRParen, "')' after IN list"));
    ExprPtr in = tag_literals_
                     ? Expr::InList(left, std::move(values),
                                    std::move(ordinals))
                     : Expr::InList(left, std::move(values));
    return negated ? Expr::Unary(ExprOp::kNot, in) : in;
  }
  if (MatchIdent("between")) {
    CGQ_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
    CGQ_RETURN_NOT_OK(ExpectIdent("and"));
    CGQ_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
    ExprPtr range =
        Expr::Binary(ExprOp::kAnd, Expr::Binary(ExprOp::kGe, left, lo),
                     Expr::Binary(ExprOp::kLe, left, hi));
    return negated ? Expr::Unary(ExprOp::kNot, range) : range;
  }
  ExprOp op;
  switch (Peek().type) {
    case TokenType::kEq:
      op = ExprOp::kEq;
      break;
    case TokenType::kNe:
      op = ExprOp::kNe;
      break;
    case TokenType::kLt:
      op = ExprOp::kLt;
      break;
    case TokenType::kLe:
      op = ExprOp::kLe;
      break;
    case TokenType::kGt:
      op = ExprOp::kGt;
      break;
    case TokenType::kGe:
      op = ExprOp::kGe;
      break;
    default:
      return left;
  }
  Advance();
  // Scalar aggregate subquery: <expr> = (SELECT agg(...) ...).
  if (Check(TokenType::kLParen) && Peek(1).type == TokenType::kIdentifier &&
      Peek(1).text == "select") {
    if (op != ExprOp::kEq) {
      return Err("scalar subqueries support '=' comparisons only");
    }
    if (current_query_ == nullptr) {
      return Err("subquery not allowed in this context");
    }
    Advance();  // '('
    CGQ_ASSIGN_OR_RETURN(std::shared_ptr<QueryAst> inner, ParseSubquery());
    current_query_->subqueries.push_back(SubqueryPredicate{
        SubqueryPredicate::Kind::kEqAgg, left, std::move(inner)});
    return Expr::Literal(Value::Int64(1));  // placeholder conjunct
  }
  CGQ_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
  return Expr::Binary(op, left, right);
}

Result<ExprPtr> Parser::ParseAdditive() {
  CGQ_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
  while (Check(TokenType::kPlus) || Check(TokenType::kMinus)) {
    ExprOp op = Check(TokenType::kPlus) ? ExprOp::kAdd : ExprOp::kSub;
    Advance();
    CGQ_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
    left = Expr::Binary(op, left, right);
  }
  return left;
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  CGQ_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
  while (Check(TokenType::kStar) || Check(TokenType::kSlash)) {
    ExprOp op = Check(TokenType::kStar) ? ExprOp::kMul : ExprOp::kDiv;
    Advance();
    CGQ_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
    left = Expr::Binary(op, left, right);
  }
  return left;
}

Result<ExprPtr> Parser::ParseUnary() {
  if (Match(TokenType::kMinus)) {
    CGQ_ASSIGN_OR_RETURN(ExprPtr inner, ParseUnary());
    // Fold negated numeric literals so -5 stays a literal (range
    // estimation and the implication test rely on column-vs-literal form).
    if (inner->op() == ExprOp::kLiteral) {
      const Value& v = inner->literal();
      // Keep the inner literal's param ordinal: the normalizer folds a
      // unary minus and its numeric literal into one (negated) parameter.
      if (v.is_int64()) {
        return Expr::ParamLiteral(Value::Int64(-v.int64()),
                                  inner->param_ordinal());
      }
      if (v.is_double()) {
        return Expr::ParamLiteral(Value::Double(-v.dbl()),
                                  inner->param_ordinal());
      }
    }
    return Expr::Binary(ExprOp::kSub, Expr::Literal(Value::Int64(0)), inner);
  }
  return ParsePrimary();
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& t = Peek();
  switch (t.type) {
    case TokenType::kInteger:
      Advance();
      return MakeLiteral(Value::Int64(t.int_value));
    case TokenType::kFloat:
      Advance();
      return MakeLiteral(Value::Double(t.float_value));
    case TokenType::kString:
      Advance();
      return MakeLiteral(Value::String(t.text));
    case TokenType::kLParen: {
      Advance();
      CGQ_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      CGQ_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      return e;
    }
    case TokenType::kIdentifier: {
      if (t.text == "date") {
        Advance();
        if (!Check(TokenType::kString)) return Err("expected date string");
        const std::string text = Advance().text;
        CGQ_ASSIGN_OR_RETURN(int64_t days, ParseDate(text));
        return MakeLiteral(Value::Date(days));
      }
      if (IsKeyword(t.text)) return Err("unexpected keyword '" + t.text + "'");
      Advance();
      if (Match(TokenType::kDot)) {
        if (!Check(TokenType::kIdentifier)) return Err("expected column name");
        std::string column = Advance().text;
        return Expr::Column(t.text, column);
      }
      return Expr::Column("", t.text);
    }
    default:
      return Err("expected expression");
  }
}

Result<Value> Parser::ParseLiteralValue() {
  const Token& t = Peek();
  switch (t.type) {
    case TokenType::kInteger:
      Advance();
      return Value::Int64(t.int_value);
    case TokenType::kFloat:
      Advance();
      return Value::Double(t.float_value);
    case TokenType::kString:
      Advance();
      return Value::String(t.text);
    case TokenType::kIdentifier:
      if (t.text == "date") {
        Advance();
        if (!Check(TokenType::kString)) return Err("expected date string");
        CGQ_ASSIGN_OR_RETURN(int64_t days, ParseDate(Advance().text));
        return Value::Date(days);
      }
      return Err("expected literal");
    case TokenType::kMinus: {
      Advance();
      CGQ_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
      if (v.is_int64()) return Value::Int64(-v.int64());
      if (v.is_double()) return Value::Double(-v.dbl());
      return Err("cannot negate literal");
    }
    default:
      return Err("expected literal");
  }
}

Result<std::string> Parser::ParseIdentifier(const char* what) {
  if (!Check(TokenType::kIdentifier) || IsKeyword(Peek().text)) {
    return Err(std::string("expected ") + what);
  }
  return Advance().text;
}

Result<std::vector<std::string>> Parser::ParseNameList(const char* what) {
  std::vector<std::string> names;
  do {
    CGQ_ASSIGN_OR_RETURN(std::string name, ParseIdentifier(what));
    names.push_back(std::move(name));
  } while (Match(TokenType::kComma));
  return names;
}

Result<QueryAst> Parser::ParseQuery() {
  QueryAst q;
  tag_literals_ = true;
  CGQ_RETURN_NOT_OK(ParseQueryBody(&q));
  Match(TokenType::kSemicolon);
  if (!Check(TokenType::kEnd)) return Err("unexpected trailing input");
  return q;
}

Status Parser::ParseQueryBody(QueryAst* out) {
  QueryAst& q = *out;
  QueryAst* saved = current_query_;
  current_query_ = &q;
  // Restore the enclosing query's subquery target on every exit path.
  struct Restore {
    Parser* parser;
    QueryAst* saved;
    ~Restore() { parser->current_query_ = saved; }
  } restore{this, saved};

  CGQ_RETURN_NOT_OK(ExpectIdent("select"));
  if (MatchIdent("distinct")) q.distinct = true;
  do {
    SelectItemAst item;
    // Aggregate call?
    if (Check(TokenType::kIdentifier) && AggFnFromName(Peek().text) &&
        Peek(1).type == TokenType::kLParen) {
      item.agg = AggFnFromName(Advance().text);
      Advance();  // '('
      if (item.agg == AggFn::kCount && Match(TokenType::kStar)) {
        // COUNT(*): count rows; represented as COUNT over the literal 1.
        item.expr = Expr::Literal(Value::Int64(1));
      } else {
        CGQ_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      }
      CGQ_RETURN_NOT_OK(Expect(TokenType::kRParen, "')' after aggregate"));
    } else {
      CGQ_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    }
    if (MatchIdent("as")) {
      CGQ_ASSIGN_OR_RETURN(item.output_name, ParseIdentifier("output name"));
    } else if (item.expr->op() == ExprOp::kColumnRef && !item.agg) {
      item.output_name = item.expr->column();
    } else {
      item.output_name = "col" + std::to_string(q.select.size());
      if (item.agg && item.expr->op() == ExprOp::kColumnRef) {
        item.output_name = std::string(AggFnToString(*item.agg)) + "_" +
                           item.expr->column();
        for (char& ch : item.output_name) {
          ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
        }
      }
    }
    q.select.push_back(std::move(item));
  } while (Match(TokenType::kComma));

  CGQ_RETURN_NOT_OK(ExpectIdent("from"));
  do {
    TableRefAst ref;
    CGQ_ASSIGN_OR_RETURN(ref.table, ParseIdentifier("table name"));
    if (MatchIdent("as")) {
      CGQ_ASSIGN_OR_RETURN(ref.alias, ParseIdentifier("table alias"));
    } else if (Check(TokenType::kIdentifier) && !IsKeyword(Peek().text)) {
      ref.alias = Advance().text;
    } else {
      ref.alias = ref.table;
    }
    q.from.push_back(std::move(ref));
  } while (Match(TokenType::kComma));

  if (MatchIdent("where")) {
    CGQ_ASSIGN_OR_RETURN(q.where, ParseExpr());
  }
  if (MatchIdent("group")) {
    CGQ_RETURN_NOT_OK(ExpectIdent("by"));
    do {
      CGQ_ASSIGN_OR_RETURN(ExprPtr col, ParsePrimary());
      if (col->op() != ExprOp::kColumnRef) {
        return Err("GROUP BY supports column references only");
      }
      q.group_by.push_back(std::move(col));
    } while (Match(TokenType::kComma));
  }
  if (MatchIdent("having")) {
    CGQ_ASSIGN_OR_RETURN(q.having, ParseExpr());
  }
  if (MatchIdent("order")) {
    CGQ_RETURN_NOT_OK(ExpectIdent("by"));
    do {
      OrderItemAst item;
      CGQ_ASSIGN_OR_RETURN(item.name, ParseIdentifier("order column"));
      if (MatchIdent("desc")) {
        item.descending = true;
      } else {
        MatchIdent("asc");
      }
      q.order_by.push_back(std::move(item));
    } while (Match(TokenType::kComma));
  }
  if (MatchIdent("limit")) {
    if (!Check(TokenType::kInteger)) return Err("expected LIMIT count");
    q.limit = Advance().int_value;
  }
  return Status::OK();
}

Result<PolicyExprAst> Parser::ParsePolicy() {
  PolicyExprAst p;
  CGQ_RETURN_NOT_OK(ExpectIdent("ship"));
  if (Match(TokenType::kStar)) {
    p.ship_all = true;
  } else {
    CGQ_ASSIGN_OR_RETURN(p.attributes, ParseNameList("attribute"));
  }
  if (MatchIdent("as")) {
    CGQ_RETURN_NOT_OK(ExpectIdent("aggregates"));
    do {
      // SUM/AVG/... are keywords, so read the raw identifier here.
      if (!Check(TokenType::kIdentifier)) return Err("expected aggregate fn");
      std::string fn = Advance().text;
      std::optional<AggFn> agg = AggFnFromName(fn);
      if (!agg) return Err("unknown aggregate function '" + fn + "'");
      p.agg_fns.push_back(*agg);
    } while (Match(TokenType::kComma));
  }
  CGQ_RETURN_NOT_OK(ExpectIdent("from"));
  CGQ_ASSIGN_OR_RETURN(p.table, ParseIdentifier("table name"));
  if (Check(TokenType::kIdentifier) && !IsKeyword(Peek().text)) {
    p.alias = Advance().text;
  } else {
    p.alias = p.table;
  }
  CGQ_RETURN_NOT_OK(ExpectIdent("to"));
  if (Match(TokenType::kStar)) {
    p.to_all = true;
  } else {
    CGQ_ASSIGN_OR_RETURN(p.to_locations, ParseNameList("location"));
  }
  if (MatchIdent("where")) {
    CGQ_ASSIGN_OR_RETURN(p.where, ParseExpr());
  }
  if (MatchIdent("group")) {
    CGQ_RETURN_NOT_OK(ExpectIdent("by"));
    CGQ_ASSIGN_OR_RETURN(p.group_by, ParseNameList("group-by attribute"));
  }
  Match(TokenType::kSemicolon);
  if (!Check(TokenType::kEnd)) return Err("unexpected trailing input");
  return p;
}

}  // namespace

Result<QueryAst> ParseQuery(const std::string& sql) {
  CGQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseQuery();
}

Result<PolicyExprAst> ParsePolicyExpression(const std::string& text) {
  CGQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParsePolicy();
}

}  // namespace cgq
