#ifndef CGQ_SQL_AST_H_
#define CGQ_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "expr/expr.h"

namespace cgq {

struct QueryAst;

/// One subquery predicate of a WHERE clause. Supported forms (all are
/// decorrelated into joins by the query planner):
///   <expr> IN (SELECT <column> FROM ... [WHERE ...])      -- uncorrelated
///   <expr> =  (SELECT <agg>(<expr>) FROM ... [WHERE ...]) -- the inner
///       WHERE may contain equality correlations to outer relations
///       (TPC-H Q2's MIN-supplycost shape)
///   EXISTS (SELECT ... FROM ... WHERE ...)                -- with at
///       least one equality correlation (TPC-H Q4's shape)
/// Subquery predicates must appear as top-level conjuncts of the WHERE
/// clause; the parser substitutes a literal-TRUE placeholder in the
/// predicate tree and records the subquery here.
struct SubqueryPredicate {
  enum class Kind { kIn, kEqAgg, kExists };
  Kind kind = Kind::kIn;
  ExprPtr outer_expr;                ///< left-hand side; null for EXISTS
  std::shared_ptr<QueryAst> inner;   ///< the subquery
};

/// One `table [AS alias]` entry of a FROM clause.
struct TableRefAst {
  std::string table;  ///< lower-cased
  std::string alias;  ///< lower-cased; equals `table` when omitted
};

/// One SELECT-list item: either a plain scalar expression or a single
/// aggregate call over a scalar expression.
struct SelectItemAst {
  ExprPtr expr;                ///< unbound; the aggregate argument when agg set
  std::optional<AggFn> agg;
  std::string output_name;     ///< derived or from AS
};

struct OrderItemAst {
  std::string name;  ///< output column name
  bool descending = false;
};

/// Parsed SELECT query (unbound).
struct QueryAst {
  bool distinct = false;  ///< SELECT DISTINCT (desugars to GROUP BY all)
  std::vector<SelectItemAst> select;
  std::vector<TableRefAst> from;
  ExprPtr where;  ///< null when absent
  std::vector<SubqueryPredicate> subqueries;  ///< WHERE subquery conjuncts
  std::vector<ExprPtr> group_by;  ///< unbound column refs
  ExprPtr having;  ///< null when absent; references output names
  std::vector<OrderItemAst> order_by;
  std::optional<int64_t> limit;
};

/// Parsed policy expression (§4):
///   SHIP <attrs|*> [AS AGGREGATES fn, ...] FROM table [alias]
///   TO <locations|*> [WHERE cond] [GROUP BY attrs]
struct PolicyExprAst {
  bool ship_all = false;
  std::vector<std::string> attributes;  ///< lower-cased column names
  std::vector<AggFn> agg_fns;           ///< non-empty => aggregate expression
  std::string table;                    ///< lower-cased
  std::string alias;                    ///< for WHERE qualification
  bool to_all = false;
  std::vector<std::string> to_locations;
  ExprPtr where;                        ///< null when absent
  std::vector<std::string> group_by;    ///< lower-cased column names
};

}  // namespace cgq

#endif  // CGQ_SQL_AST_H_
