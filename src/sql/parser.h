#ifndef CGQ_SQL_PARSER_H_
#define CGQ_SQL_PARSER_H_

#include <string>

#include "common/result.h"
#include "sql/ast.h"

namespace cgq {

/// Parses the supported SQL subset:
///
///   SELECT item [, item]*
///   FROM table [AS alias] [, table [AS alias]]*
///   [WHERE predicate]
///   [GROUP BY column [, column]*]
///   [ORDER BY name [ASC|DESC] [, ...]]
///   [LIMIT n]
///
/// where `item` is a scalar expression or `SUM|AVG|MIN|MAX|COUNT(expr)`
/// (optionally `AS name`). Predicates support AND/OR/NOT, the six
/// comparisons, [NOT] LIKE, IN (literal list), BETWEEN (desugared), +-*/,
/// parentheses, and DATE 'YYYY-MM-DD' literals. No subqueries.
Result<QueryAst> ParseQuery(const std::string& sql);

/// Parses a dataflow policy expression (§4):
///
///   SHIP <*|attr [, attr]*> [AS AGGREGATES fn [, fn]*]
///   FROM table [alias] TO <*|location [, location]*>
///   [WHERE predicate] [GROUP BY attr [, attr]*]
Result<PolicyExprAst> ParsePolicyExpression(const std::string& text);

}  // namespace cgq

#endif  // CGQ_SQL_PARSER_H_
