#include "sql/param_normalizer.h"

#include <cstdio>

#include "sql/lexer.h"
#include "types/date.h"

namespace cgq {
namespace {

const char* Symbol(TokenType t) {
  switch (t) {
    case TokenType::kComma:
      return ",";
    case TokenType::kDot:
      return ".";
    case TokenType::kStar:
      return "*";
    case TokenType::kLParen:
      return "(";
    case TokenType::kRParen:
      return ")";
    case TokenType::kEq:
      return "=";
    case TokenType::kNe:
      return "<>";
    case TokenType::kLt:
      return "<";
    case TokenType::kLe:
      return "<=";
    case TokenType::kGt:
      return ">";
    case TokenType::kGe:
      return ">=";
    case TokenType::kPlus:
      return "+";
    case TokenType::kMinus:
      return "-";
    case TokenType::kSlash:
      return "/";
    case TokenType::kSemicolon:
      return ";";
    default:
      return "";
  }
}

/// True when a '-' after `prev` is a sign, not subtraction — mirrors
/// ParseUnary, which is only reached with these tokens before it.
bool UnaryPosition(const Token* prev) {
  if (prev == nullptr) return true;  // start of input
  switch (prev->type) {
    case TokenType::kComma:
    case TokenType::kLParen:
    case TokenType::kEq:
    case TokenType::kNe:
    case TokenType::kLt:
    case TokenType::kLe:
    case TokenType::kGt:
    case TokenType::kGe:
    case TokenType::kPlus:
    case TokenType::kMinus:
    case TokenType::kStar:
    case TokenType::kSlash:
      return true;
    case TokenType::kIdentifier:
      // Keywords an expression may start right after.
      return prev->text == "select" || prev->text == "where" ||
             prev->text == "and" || prev->text == "or" ||
             prev->text == "not" || prev->text == "like" ||
             prev->text == "between" || prev->text == "having";
    default:
      return false;
  }
}

std::string RenderString(const std::string& contents) {
  std::string out = "'";
  for (char c : contents) {
    if (c == '\'') out += '\'';
    out += c;
  }
  out += '\'';
  return out;
}

std::string RenderToken(const Token& t) {
  switch (t.type) {
    case TokenType::kIdentifier:
      return t.text;
    case TokenType::kInteger:
      return std::to_string(t.int_value);
    case TokenType::kFloat: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", t.float_value);
      return buf;
    }
    case TokenType::kString:
      return RenderString(t.text);
    default:
      return Symbol(t.type);
  }
}

}  // namespace

ParameterizedSql ParameterizeSql(const std::string& sql) {
  ParameterizedSql out;
  Result<std::vector<Token>> tokens = Tokenize(sql);
  if (!tokens.ok()) {
    out.skeleton = sql;
    return out;
  }
  out.parameterized = true;

  auto emit = [&out](const std::string& text) {
    if (!out.skeleton.empty()) out.skeleton += ' ';
    out.skeleton += text;
  };
  auto mask = [&out, &emit](const char* placeholder, Value v) {
    emit(placeholder);
    out.params.push_back(std::move(v));
  };

  const std::vector<Token>& ts = *tokens;
  const Token* prev = nullptr;
  bool limit_arg = false;  // next literal is the LIMIT count: keep it
  for (size_t i = 0; i < ts.size() && ts[i].type != TokenType::kEnd; ++i) {
    const Token& t = ts[i];
    switch (t.type) {
      case TokenType::kMinus:
        // Sign + numeric literal fold into one negated parameter, the
        // same fold ParseUnary applies to the Expr tree.
        if (UnaryPosition(prev) && i + 1 < ts.size() && !limit_arg) {
          const Token& next = ts[i + 1];
          if (next.type == TokenType::kInteger) {
            mask("?i", Value::Int64(-next.int_value));
            prev = &next;
            limit_arg = false;
            ++i;
            continue;
          }
          if (next.type == TokenType::kFloat) {
            mask("?f", Value::Double(-next.float_value));
            prev = &next;
            limit_arg = false;
            ++i;
            continue;
          }
        }
        emit("-");
        break;
      case TokenType::kInteger:
        if (limit_arg) {
          emit(RenderToken(t));
        } else {
          mask("?i", Value::Int64(t.int_value));
        }
        break;
      case TokenType::kFloat:
        if (limit_arg) {
          emit(RenderToken(t));
        } else {
          mask("?f", Value::Double(t.float_value));
        }
        break;
      case TokenType::kString:
        mask("?s", Value::String(t.text));
        break;
      case TokenType::kIdentifier:
        if (t.text == "date" && i + 1 < ts.size() &&
            ts[i + 1].type == TokenType::kString) {
          Result<int64_t> days = ParseDate(ts[i + 1].text);
          if (days.ok()) {
            mask("?d", Value::Date(*days));
            prev = &ts[i + 1];
            limit_arg = false;
            ++i;
            continue;
          }
        }
        emit(RenderToken(t));
        break;
      default:
        emit(RenderToken(t));
        break;
    }
    limit_arg = t.type == TokenType::kIdentifier && t.text == "limit";
    prev = &t;
  }
  return out;
}

}  // namespace cgq
