#ifndef CGQ_SQL_LEXER_H_
#define CGQ_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "sql/token.h"

namespace cgq {

/// Tokenizes a SQL query or policy expression. Identifiers and keywords are
/// lower-cased; string literals keep their case. `--` starts a line comment.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace cgq

#endif  // CGQ_SQL_LEXER_H_
