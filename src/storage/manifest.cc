#include "storage/manifest.h"

#include "net/wire_protocol.h"
#include "storage/format.h"

namespace cgq {
namespace storage {

Result<std::string> Manifest::Encode() const {
  wire::Writer w;
  w.PutU64(version);
  w.PutU64(wal_version);
  w.PutU64(next_block_id);
  w.PutU32(static_cast<uint32_t>(fragments.size()));
  for (const ManifestFragment& frag : fragments) {
    w.PutU32(frag.location);
    w.PutString(frag.table);
    w.PutU32(static_cast<uint32_t>(frag.blocks.size()));
    for (const ManifestBlock& block : frag.blocks) {
      w.PutU64(block.id);
      w.PutU32(block.rows);
    }
  }
  return EncodeFileFrame(kManifestMagic, 0, w.Take());
}

Result<Manifest> Manifest::Decode(const std::string& bytes,
                                  const std::string& what) {
  if (bytes.size() < kFrameHeaderSize) {
    return Status::DataLoss(what + ": manifest truncated to " +
                            std::to_string(bytes.size()) + " bytes");
  }
  const uint8_t* data = reinterpret_cast<const uint8_t*>(bytes.data());
  CGQ_ASSIGN_OR_RETURN(
      FileFrameHeader header,
      DecodeFileFrameHeader(kManifestMagic, data, kFrameHeaderSize, what));
  if (bytes.size() != kFrameHeaderSize + header.payload_len) {
    return Status::DataLoss(
        what + ": manifest file is " + std::to_string(bytes.size()) +
        " bytes, header names " +
        std::to_string(kFrameHeaderSize + header.payload_len));
  }
  CGQ_RETURN_NOT_OK(VerifyFilePayload(header, data + kFrameHeaderSize, what));

  wire::Reader r(data + kFrameHeaderSize, header.payload_len);
  Manifest m;
  CGQ_ASSIGN_OR_RETURN(m.version, r.U64());
  CGQ_ASSIGN_OR_RETURN(m.wal_version, r.U64());
  CGQ_ASSIGN_OR_RETURN(m.next_block_id, r.U64());
  CGQ_ASSIGN_OR_RETURN(uint32_t nfrags, r.U32());
  m.fragments.reserve(nfrags);
  for (uint32_t i = 0; i < nfrags; ++i) {
    ManifestFragment frag;
    CGQ_ASSIGN_OR_RETURN(frag.location, r.U32());
    CGQ_ASSIGN_OR_RETURN(frag.table, r.String());
    CGQ_ASSIGN_OR_RETURN(uint32_t nblocks, r.U32());
    frag.blocks.reserve(nblocks);
    for (uint32_t b = 0; b < nblocks; ++b) {
      ManifestBlock block;
      CGQ_ASSIGN_OR_RETURN(block.id, r.U64());
      CGQ_ASSIGN_OR_RETURN(block.rows, r.U32());
      frag.blocks.push_back(block);
    }
    m.fragments.push_back(std::move(frag));
  }
  if (!r.AtEnd()) {
    return Status::DataLoss(what + ": " + std::to_string(r.remaining()) +
                            " trailing bytes in manifest");
  }
  return m;
}

std::string ManifestFileName(uint64_t version) {
  return "MANIFEST-" + std::to_string(version);
}

std::string WalFileName(uint64_t version) {
  return "wal-" + std::to_string(version) + ".log";
}

std::string BlockFileName(uint64_t id) {
  return "b" + std::to_string(id) + ".blk";
}

}  // namespace storage
}  // namespace cgq
