#ifndef CGQ_STORAGE_BLOCK_H_
#define CGQ_STORAGE_BLOCK_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/format.h"
#include "types/value.h"

namespace cgq {
namespace storage {

/// Immutable checksummed data block (`b<id>.blk`): one file frame with
/// kBlockMagic. The payload is columnar when every row has the same
/// width (the normal case for table fragments):
///
///   u32 rows, u32 cols, then column-major values (col 0 row 0..n,
///   col 1 row 0..n, ...)
///
/// and row-major otherwise (u32 rows, then each row as PutRow, which
/// carries its own width). The header `type` field is a flag word:
inline constexpr uint16_t kBlockColumnar = 1;  ///< bit 0: columnar payload

/// Encodes rows as a complete block file (header + payload).
/// kInvalidArgument when the payload would exceed kMaxFrameBytes (the
/// engine cuts blocks far smaller; only a single enormous row can hit
/// this, and it must fail here, not at read time).
Result<std::string> EncodeBlockFile(const std::vector<Row>& rows);

/// Decodes and checksum-verifies a whole block file. Corruption —
/// wrong magic, bad checksum, truncation, trailing garbage — is typed
/// kDataLoss; a block is never partially decoded into wrong rows.
Result<std::vector<Row>> DecodeBlockFile(const std::string& bytes,
                                         const std::string& what);

}  // namespace storage
}  // namespace cgq

#endif  // CGQ_STORAGE_BLOCK_H_
