#include "storage/block.h"

#include "net/wire_protocol.h"

namespace cgq {
namespace storage {

Result<std::string> EncodeBlockFile(const std::vector<Row>& rows) {
  bool uniform = true;
  const size_t width = rows.empty() ? 0 : rows.front().size();
  for (const Row& row : rows) {
    if (row.size() != width) {
      uniform = false;
      break;
    }
  }
  wire::Writer w;
  if (uniform) {
    w.PutU32(static_cast<uint32_t>(rows.size()));
    w.PutU32(static_cast<uint32_t>(width));
    for (size_t c = 0; c < width; ++c) {
      for (const Row& row : rows) w.PutValue(row[c]);
    }
  } else {
    w.PutU32(static_cast<uint32_t>(rows.size()));
    for (const Row& row : rows) w.PutRow(row);
  }
  return EncodeFileFrame(kBlockMagic, uniform ? kBlockColumnar : 0, w.Take());
}

Result<std::vector<Row>> DecodeBlockFile(const std::string& bytes,
                                         const std::string& what) {
  if (bytes.size() < kFrameHeaderSize) {
    return Status::DataLoss(what + ": block truncated to " +
                            std::to_string(bytes.size()) + " bytes");
  }
  const uint8_t* data = reinterpret_cast<const uint8_t*>(bytes.data());
  CGQ_ASSIGN_OR_RETURN(
      FileFrameHeader header,
      DecodeFileFrameHeader(kBlockMagic, data, kFrameHeaderSize, what));
  if (bytes.size() != kFrameHeaderSize + header.payload_len) {
    return Status::DataLoss(
        what + ": block file is " + std::to_string(bytes.size()) +
        " bytes, header names " +
        std::to_string(kFrameHeaderSize + header.payload_len));
  }
  CGQ_RETURN_NOT_OK(VerifyFilePayload(header, data + kFrameHeaderSize, what));

  wire::Reader r(data + kFrameHeaderSize, header.payload_len);
  std::vector<Row> rows;
  if (header.type & kBlockColumnar) {
    CGQ_ASSIGN_OR_RETURN(uint32_t n, r.U32());
    CGQ_ASSIGN_OR_RETURN(uint32_t width, r.U32());
    rows.assign(n, Row(width));
    for (uint32_t c = 0; c < width; ++c) {
      for (uint32_t i = 0; i < n; ++i) {
        auto v = r.ReadValue();
        if (!v.ok()) return Status::DataLoss(what + ": " +
                                             v.status().message());
        rows[i][c] = std::move(*v);
      }
    }
  } else {
    CGQ_ASSIGN_OR_RETURN(uint32_t n, r.U32());
    rows.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      auto row = r.ReadRow();
      if (!row.ok()) return Status::DataLoss(what + ": " +
                                             row.status().message());
      rows.push_back(std::move(*row));
    }
  }
  if (!r.AtEnd()) {
    return Status::DataLoss(what + ": " + std::to_string(r.remaining()) +
                            " trailing bytes after block rows");
  }
  return rows;
}

}  // namespace storage
}  // namespace cgq
