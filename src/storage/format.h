#ifndef CGQ_STORAGE_FORMAT_H_
#define CGQ_STORAGE_FORMAT_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace cgq {
namespace storage {

/// On-disk framing of the per-location storage engine (DESIGN.md §16).
/// Every persistent artifact — data block, commit-log record, manifest —
/// is one *file frame* with the same 20-byte header shape as the wire
/// protocol (DESIGN.md §13), distinguished by magic:
///
///   offset  size  field
///        0     4  magic     kBlockMagic / kWalMagic / kManifestMagic
///        4     2  version   format version (kFormatVersion)
///        6     2  type      artifact-specific (block flags, WAL record
///                           type, 0 for manifests)
///        8     4  len       payload length in bytes
///       12     8  checksum  FNV-1a over the payload bytes
///       20   len  payload
///
/// All integers little-endian via wire::Writer/Reader, so the encoding is
/// byte-stable across platforms. A checksum mismatch on a complete frame
/// is typed kDataLoss; a frame cut short at end-of-file is *torn* and the
/// caller decides (clean replay stop for the commit-log tail, kDataLoss
/// for blocks and manifests, which are only referenced once fully
/// written).
inline constexpr uint32_t kBlockMagic = 0x42514743u;     // "CGQB"
inline constexpr uint32_t kWalMagic = 0x4C514743u;       // "CGQL"
inline constexpr uint32_t kManifestMagic = 0x4D514743u;  // "CGQM"
inline constexpr uint16_t kFormatVersion = 1;
inline constexpr size_t kFrameHeaderSize = 20;
/// Resource guard against garbage length prefixes (far above any frame
/// the engine writes: blocks target ~256 KiB, WAL records are chunked).
inline constexpr uint32_t kMaxFrameBytes = 1u << 30;

struct FileFrameHeader {
  uint16_t version = 0;
  uint16_t type = 0;
  uint32_t payload_len = 0;
  uint64_t checksum = 0;
};

/// One complete file frame: header + payload. A payload over
/// kMaxFrameBytes is rejected here (kInvalidArgument) rather than
/// written: the length field is a u32 and the read side enforces the
/// same limit, so an oversized frame would be acknowledged on disk but
/// unreadable (kDataLoss) at recovery.
Result<std::string> EncodeFileFrame(uint32_t magic, uint16_t type,
                                    const std::string& payload);

/// Parses a header from exactly kFrameHeaderSize bytes. Wrong magic or
/// an over-limit length is kDataLoss (`what` names the artifact in the
/// message); a version from the future is kUnsupported.
Result<FileFrameHeader> DecodeFileFrameHeader(uint32_t magic,
                                              const uint8_t* data, size_t len,
                                              const std::string& what);

/// Verifies the payload checksum; kDataLoss on mismatch.
Status VerifyFilePayload(const FileFrameHeader& header, const uint8_t* payload,
                         const std::string& what);

/// Reads a whole file; kNotFound when absent, kUnavailable on I/O error.
Result<std::string> ReadFile(const std::string& path);

/// Writes a whole file via `<path>.tmp` + rename, so readers never see a
/// half-written manifest or CURRENT pointer.
Status WriteFileAtomic(const std::string& path, const std::string& bytes);

}  // namespace storage
}  // namespace cgq

#endif  // CGQ_STORAGE_FORMAT_H_
