#ifndef CGQ_STORAGE_STORAGE_ENGINE_H_
#define CGQ_STORAGE_STORAGE_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "catalog/location.h"
#include "common/result.h"
#include "storage/manifest.h"
#include "storage/wal.h"
#include "types/value.h"

namespace cgq {
namespace storage {

/// Knobs of the per-location store. The defaults suit production; tests
/// shrink them to force many blocks and frequent checkpoints.
struct StorageOptions {
  /// Target size of one data block; a fragment's unflushed tail is cut
  /// into blocks of roughly this many payload bytes.
  size_t block_target_bytes = 256 * 1024;
  /// Commit-log bytes that trigger an automatic checkpoint (tail flush +
  /// new manifest + log switch). 0 disables automatic checkpoints.
  size_t wal_checkpoint_bytes = 8 * 1024 * 1024;
};

/// Per-location, per-table on-disk columnar-block store (DESIGN.md §16):
/// append-only checksummed blocks + a write-ahead commit log + a
/// versioned manifest. One StorageEngine owns one directory:
///
///   CURRENT        -> "MANIFEST-<v>"   (tmp+rename, always valid)
///   MANIFEST-<v>   live block set + paired commit-log version
///   wal-<w>.log    mutations since MANIFEST-<v>
///   b<id>.blk      immutable data blocks
///
/// Every Put/Append is logged and flushed before it returns, so a
/// SIGKILL never loses an acknowledged mutation: recovery loads the
/// manifest, replays log-after-manifest, truncates a torn log tail
/// cleanly, and types real corruption (checksum mismatch, missing
/// manifest over live data) as kDataLoss — never silent wrong rows.
///
/// Thread safety: none here. TableStore serializes access under its own
/// mutex; Cursors snapshot the block list + tail at Scan() time and read
/// immutable block files afterwards, so they may outlive the lock.
class StorageEngine {
 public:
  StorageEngine() = default;
  StorageEngine(const StorageEngine&) = delete;
  StorageEngine& operator=(const StorageEngine&) = delete;

  /// Opens (empty or missing dir) or recovers (existing dir) the store.
  Status Open(const std::string& dir, StorageOptions options = {});

  /// Replaces the fragment's rows. Durable (logged + flushed) on OK.
  Status Put(LocationId location, const std::string& table,
             const std::vector<Row>& rows);
  /// Appends rows to the fragment. Durable (logged + flushed) on OK.
  Status Append(LocationId location, const std::string& table,
                const std::vector<Row>& rows);

  /// Flushes every unflushed tail to blocks, writes the next manifest,
  /// switches to a fresh commit log and collects dead files. Failure
  /// leaves the previous manifest + log authoritative (recoverable).
  Status Checkpoint();

  struct FragmentInfo {
    LocationId location = 0;
    std::string table;
    size_t rows = 0;
  };
  /// Live fragments sorted by (location, table).
  std::vector<FragmentInfo> ListFragments() const;
  bool Contains(LocationId location, const std::string& table) const;
  Result<size_t> FragmentRows(LocationId location,
                              const std::string& table) const;
  size_t TotalRows() const;

  /// Streaming reader over one fragment: one Next() call yields one
  /// block's rows (or the unflushed tail). Snapshot semantics: mutations
  /// after Scan() are not observed.
  class Cursor {
   public:
    /// Appends the next chunk to *out (cleared first). False when the
    /// fragment is exhausted. Block corruption is typed kDataLoss.
    Result<bool> Next(std::vector<Row>* out);
    int64_t blocks_read() const { return blocks_read_; }

   private:
    friend class StorageEngine;
    std::string dir_;
    std::vector<ManifestBlock> blocks_;
    std::vector<Row> tail_;
    size_t next_block_ = 0;
    bool tail_done_ = false;
    int64_t blocks_read_ = 0;
  };
  Result<Cursor> Scan(LocationId location, const std::string& table) const;

  /// Reads a whole fragment into *out (the disk -> RAM migration path).
  Status ReadAll(LocationId location, const std::string& table,
                 std::vector<Row>* out) const;

  const std::string& dir() const { return dir_; }
  bool is_open() const { return wal_ != nullptr; }
  /// Data blocks written since Open (flushes + checkpoints).
  int64_t blocks_written() const { return blocks_written_; }
  /// Commit-log records replayed by the last Open (0 = clean start).
  int64_t recovery_replays() const { return recovery_replays_; }

 private:
  struct FragmentState {
    std::vector<ManifestBlock> blocks;
    std::vector<Row> tail;  ///< logged rows not yet flushed to a block
    size_t tail_bytes = 0;
  };
  using FragmentKey = std::pair<LocationId, std::string>;

  std::string PathOf(const std::string& name) const;
  Status ApplyRecord(WalRecord rec);
  /// Logs one mutation (chunked) and applies it to the in-memory state
  /// chunk-by-chunk, exactly mirroring what replay would reconstruct.
  Status LogAndApply(WalRecordType type, LocationId location,
                     const std::string& table, const std::vector<Row>& rows);
  Status FlushTail(FragmentState* frag);
  Status MaybeCheckpoint();
  /// Deletes on-disk files not referenced by `manifest` (interrupted
  /// checkpoints leave orphans behind; recovery sweeps them).
  void CollectOrphans(const Manifest& manifest);

  std::string dir_;
  StorageOptions options_;
  std::map<FragmentKey, FragmentState> fragments_;
  uint64_t manifest_version_ = 0;
  uint64_t wal_version_ = 0;
  uint64_t next_block_id_ = 1;
  std::unique_ptr<WalWriter> wal_;
  /// Blocks dropped by Put but still named by the current manifest;
  /// deletable only after the next manifest lands.
  std::vector<uint64_t> gc_blocks_;
  int64_t blocks_written_ = 0;
  int64_t recovery_replays_ = 0;
};

}  // namespace storage
}  // namespace cgq

#endif  // CGQ_STORAGE_STORAGE_ENGINE_H_
