#include "storage/storage_engine.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>

#include "common/failpoint.h"
#include "common/trace.h"
#include "storage/block.h"
#include "storage/format.h"

namespace cgq {
namespace storage {

namespace {

namespace fs = std::filesystem;

/// Bounds on one commit-log record, so huge Puts stream in frames
/// instead of one giant allocation at replay. The byte bound keeps every
/// multi-row record far under kMaxFrameBytes, so an acknowledged record
/// can always be re-read (only a single over-limit row can fail, and it
/// fails loudly at encode time, before the ack).
constexpr size_t kWalChunkRows = 8192;
constexpr size_t kWalChunkBytes = 64 * 1024 * 1024;

size_t RowBytes(const Row& row) {
  size_t bytes = sizeof(Row);
  for (const Value& v : row) bytes += v.ByteSize();
  return bytes;
}

Result<std::string> ReadCurrent(const std::string& path) {
  CGQ_ASSIGN_OR_RETURN(std::string bytes, ReadFile(path));
  while (!bytes.empty() && (bytes.back() == '\n' || bytes.back() == '\r')) {
    bytes.pop_back();
  }
  if (bytes.empty() || bytes.rfind("MANIFEST-", 0) != 0) {
    return Status::DataLoss(path + ": CURRENT names no manifest");
  }
  return bytes;
}

}  // namespace

std::string StorageEngine::PathOf(const std::string& name) const {
  return dir_ + "/" + name;
}

Status StorageEngine::Open(const std::string& dir, StorageOptions options) {
  if (is_open()) return Status::Internal("StorageEngine::Open called twice");
  dir_ = dir;
  options_ = options;
  fragments_.clear();
  gc_blocks_.clear();
  recovery_replays_ = 0;

  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    return Status::Unavailable(dir_ + ": create failed: " + ec.message());
  }

  const std::string current_path = PathOf("CURRENT");
  auto current_or = ReadCurrent(current_path);
  if (current_or.status().IsNotFound()) {
    // No CURRENT pointer. Real state (a data block, a non-empty commit
    // log, a manifest naming fragments) without its root pointer is data
    // loss — refuse to guess. But a crash during a *fresh* init can only
    // leave benign leftovers (an empty commit log, a manifest naming no
    // fragments); those are swept and the init restarted rather than
    // bricking an empty store.
    std::vector<fs::path> leftovers;
    for (const auto& entry : fs::directory_iterator(dir_, ec)) {
      const std::string name = entry.path().filename().string();
      const bool is_manifest = name.rfind("MANIFEST-", 0) == 0;
      const bool is_wal = name.rfind("wal-", 0) == 0;
      const bool is_block =
          name.size() > 4 && name.compare(name.size() - 4, 4, ".blk") == 0;
      if (!is_manifest && !is_wal && !is_block) continue;
      bool benign = false;
      if (is_wal) {
        std::error_code size_ec;
        benign = fs::file_size(entry.path(), size_ec) == 0 && !size_ec;
      } else if (is_manifest) {
        auto bytes = ReadFile(entry.path().string());
        if (bytes.ok()) {
          auto decoded = Manifest::Decode(*bytes, entry.path().string());
          benign = decoded.ok() && decoded->fragments.empty();
        }
      }
      if (!benign) {
        return Status::DataLoss(dir_ +
                                ": CURRENT missing but storage files exist "
                                "(first: " +
                                name + ")");
      }
      leftovers.push_back(entry.path());
    }
    for (const fs::path& leftover : leftovers) fs::remove(leftover, ec);
    manifest_version_ = 1;
    wal_version_ = 1;
    next_block_id_ = 1;
    Manifest fresh;
    fresh.version = manifest_version_;
    fresh.wal_version = wal_version_;
    fresh.next_block_id = next_block_id_;
    // Manifest, then CURRENT, then the commit log: a kill after CURRENT
    // lands recovers through the normal path (a missing log replays as
    // empty); a kill before it finds only the benign leftovers above.
    CGQ_ASSIGN_OR_RETURN(std::string fresh_bytes, fresh.Encode());
    CGQ_RETURN_NOT_OK(WriteFileAtomic(PathOf(ManifestFileName(fresh.version)),
                                      fresh_bytes));
    CGQ_RETURN_NOT_OK(WriteFileAtomic(
        current_path, ManifestFileName(manifest_version_) + "\n"));
    auto wal = std::make_unique<WalWriter>();
    CGQ_RETURN_NOT_OK(wal->Open(PathOf(WalFileName(wal_version_))));
    wal_ = std::move(wal);
    return Status::OK();
  }
  CGQ_ASSIGN_OR_RETURN(std::string current, std::move(current_or));

  CGQ_ASSIGN_OR_RETURN(std::string manifest_bytes,
                       [&]() -> Result<std::string> {
                         auto bytes = ReadFile(PathOf(current));
                         if (bytes.status().IsNotFound()) {
                           return Status::DataLoss(
                               dir_ + ": CURRENT names missing " + current);
                         }
                         return bytes;
                       }());
  CGQ_ASSIGN_OR_RETURN(Manifest manifest,
                       Manifest::Decode(manifest_bytes, PathOf(current)));
  manifest_version_ = manifest.version;
  wal_version_ = manifest.wal_version;
  next_block_id_ = manifest.next_block_id;
  for (const ManifestFragment& frag : manifest.fragments) {
    FragmentState& state = fragments_[{frag.location, frag.table}];
    state.blocks = frag.blocks;
  }

  // Replay acknowledged mutations since the manifest; a torn tail (the
  // in-flight write of the crash) is truncated, anything else corrupt is
  // typed kDataLoss before a single wrong row can be served.
  CGQ_ASSIGN_OR_RETURN(
      size_t replayed,
      ReplayWal(PathOf(WalFileName(wal_version_)),
                [this](WalRecord rec) { return ApplyRecord(std::move(rec)); }));
  recovery_replays_ = static_cast<int64_t>(replayed);

  CollectOrphans(manifest);

  auto wal = std::make_unique<WalWriter>();
  CGQ_RETURN_NOT_OK(wal->Open(PathOf(WalFileName(wal_version_))));
  wal_ = std::move(wal);
  return Status::OK();
}

void StorageEngine::CollectOrphans(const Manifest& manifest) {
  std::set<std::string> live;
  live.insert("CURRENT");
  live.insert(ManifestFileName(manifest.version));
  live.insert(WalFileName(manifest.wal_version));
  for (const ManifestFragment& frag : manifest.fragments) {
    for (const ManifestBlock& block : frag.blocks) {
      live.insert(BlockFileName(block.id));
    }
  }
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    const bool storage_file =
        name.rfind("MANIFEST-", 0) == 0 || name.rfind("wal-", 0) == 0 ||
        (name.size() > 4 && name.compare(name.size() - 4, 4, ".blk") == 0) ||
        name.rfind("CURRENT.tmp", 0) == 0 ||
        (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0);
    if (storage_file && live.count(name) == 0) {
      fs::remove(entry.path(), ec);
    }
  }
}

Status StorageEngine::ApplyRecord(WalRecord rec) {
  FragmentState& frag = fragments_[{rec.location, rec.table}];
  if (rec.type == WalRecordType::kPut) {
    for (const ManifestBlock& block : frag.blocks) {
      gc_blocks_.push_back(block.id);
    }
    frag.blocks.clear();
    frag.tail.clear();
    frag.tail_bytes = 0;
  }
  for (Row& row : rec.rows) {
    frag.tail_bytes += RowBytes(row);
    frag.tail.push_back(std::move(row));
  }
  return Status::OK();
}

Status StorageEngine::LogAndApply(WalRecordType type, LocationId location,
                                  const std::string& table,
                                  const std::vector<Row>& rows) {
  if (!is_open()) return Status::Internal("storage engine not open");
  // Chunked: each record is logged, then applied, so the in-memory state
  // always equals what replaying the log so far would rebuild — a failed
  // chunk leaves the acknowledged prefix applied, same as a crash there.
  size_t offset = 0;
  bool first = true;
  do {
    size_t n = 0;
    size_t chunk_bytes = 0;
    while (offset + n < rows.size() && n < kWalChunkRows &&
           chunk_bytes < kWalChunkBytes) {
      chunk_bytes += RowBytes(rows[offset + n]);
      ++n;
    }
    WalRecord rec;
    rec.type = first ? type : WalRecordType::kAppend;
    rec.location = location;
    rec.table = table;
    rec.rows.assign(rows.begin() + static_cast<ptrdiff_t>(offset),
                    rows.begin() + static_cast<ptrdiff_t>(offset + n));
    CGQ_RETURN_NOT_OK(wal_->Append(rec));
    CGQ_RETURN_NOT_OK(ApplyRecord(std::move(rec)));
    offset += n;
    first = false;
  } while (offset < rows.size());

  // The mutation is durable (and applied) once its records are in the
  // commit log; a failing size-triggered flush or checkpoint must not
  // retract that acknowledgment — recovery would replay the record and
  // "resurrect" an op the caller was told failed. A failed flush leaves
  // the rows in the tail (still log-covered) and a failed checkpoint
  // leaves the old manifest + log authoritative, so the engine just
  // retries both at the next trigger.
  FragmentState& frag = fragments_[{location, table}];
  if (frag.tail_bytes >= options_.block_target_bytes) {
    Status flushed = FlushTail(&frag);
    if (!flushed.ok()) CGQ_COUNTER_ADD("storage.checkpoint_failures", 1);
  }
  Status compacted = MaybeCheckpoint();
  if (!compacted.ok()) CGQ_COUNTER_ADD("storage.checkpoint_failures", 1);
  return Status::OK();
}

Status StorageEngine::Put(LocationId location, const std::string& table,
                          const std::vector<Row>& rows) {
  return LogAndApply(WalRecordType::kPut, location, table, rows);
}

Status StorageEngine::Append(LocationId location, const std::string& table,
                             const std::vector<Row>& rows) {
  if (rows.empty()) return Status::OK();
  return LogAndApply(WalRecordType::kAppend, location, table, rows);
}

Status StorageEngine::FlushTail(FragmentState* frag) {
  // Cut the tail into blocks of ~block_target_bytes, front first. Rows
  // leave the tail only once their block is fully on disk, so a failed
  // write (ENOSPC, injected fault) leaves the fragment exactly as if
  // the flush had stopped between blocks: the remaining tail is intact
  // and still covered by the commit log, and scans never see moved-from
  // rows. A crash mid-flush leaves only orphan files, never lost rows.
  while (!frag->tail.empty()) {
    size_t bytes = 0;
    size_t end = 0;
    while (end < frag->tail.size() && bytes < options_.block_target_bytes) {
      bytes += RowBytes(frag->tail[end]);
      ++end;
    }
    std::vector<Row> chunk(
        std::make_move_iterator(frag->tail.begin()),
        std::make_move_iterator(frag->tail.begin() +
                                static_cast<ptrdiff_t>(end)));
    const std::string path = PathOf(BlockFileName(next_block_id_));
    Status written = [&]() -> Status {
      if (CGQ_FAILPOINT("storage.flush")) {
        return Status::Unavailable(path +
                                   ": injected block-write failure (site "
                                   "storage.flush)");
      }
      CGQ_ASSIGN_OR_RETURN(const std::string bytes_out,
                           EncodeBlockFile(chunk));
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      if (!out) return Status::Unavailable(path + ": open failed");
      out.write(bytes_out.data(),
                static_cast<std::streamsize>(bytes_out.size()));
      out.flush();
      if (!out) return Status::Unavailable(path + ": write failed");
      return Status::OK();
    }();
    if (!written.ok()) {
      // Undo the move: the attempted rows return to their tail slots,
      // restoring the fragment byte-identical to before this block.
      std::move(chunk.begin(), chunk.end(), frag->tail.begin());
      std::error_code ec;
      fs::remove(path, ec);
      return written;
    }
    frag->blocks.push_back(ManifestBlock{
        next_block_id_++, static_cast<uint32_t>(chunk.size())});
    ++blocks_written_;
    frag->tail.erase(frag->tail.begin(),
                     frag->tail.begin() + static_cast<ptrdiff_t>(end));
    frag->tail_bytes -= std::min(frag->tail_bytes, bytes);
  }
  frag->tail_bytes = 0;
  return Status::OK();
}

Status StorageEngine::MaybeCheckpoint() {
  if (options_.wal_checkpoint_bytes == 0) return Status::OK();
  if (wal_ == nullptr ||
      wal_->bytes_written() < options_.wal_checkpoint_bytes) {
    return Status::OK();
  }
  return Checkpoint();
}

Status StorageEngine::Checkpoint() {
  if (!is_open()) return Status::Internal("storage engine not open");
  for (auto& [key, frag] : fragments_) {
    if (!frag.tail.empty()) CGQ_RETURN_NOT_OK(FlushTail(&frag));
  }

  Manifest next;
  next.version = manifest_version_ + 1;
  next.wal_version = wal_version_ + 1;
  next.next_block_id = next_block_id_;
  for (const auto& [key, frag] : fragments_) {
    ManifestFragment out;
    out.location = key.first;
    out.table = key.second;
    out.blocks = frag.blocks;
    next.fragments.push_back(std::move(out));
  }
  CGQ_ASSIGN_OR_RETURN(std::string next_bytes, next.Encode());
  CGQ_RETURN_NOT_OK(WriteFileAtomic(PathOf(ManifestFileName(next.version)),
                                    next_bytes));
  if (CGQ_FAILPOINT("storage.commit")) {
    // Simulated crash between the new manifest and the CURRENT switch:
    // the old manifest + old log stay authoritative, both on disk and in
    // this process (versions are only bumped below).
    return Status::Unavailable(dir_ +
                               ": injected checkpoint failure (site "
                               "storage.commit) before CURRENT switch");
  }
  auto new_wal = std::make_unique<WalWriter>();
  CGQ_RETURN_NOT_OK(new_wal->Open(PathOf(WalFileName(next.wal_version))));
  CGQ_RETURN_NOT_OK(WriteFileAtomic(PathOf("CURRENT"),
                                    ManifestFileName(next.version) + "\n"));

  // The new manifest is authoritative; retire the old generation.
  std::error_code ec;
  fs::remove(PathOf(WalFileName(wal_version_)), ec);
  fs::remove(PathOf(ManifestFileName(manifest_version_)), ec);
  for (uint64_t id : gc_blocks_) fs::remove(PathOf(BlockFileName(id)), ec);
  gc_blocks_.clear();
  manifest_version_ = next.version;
  wal_version_ = next.wal_version;
  wal_ = std::move(new_wal);
  return Status::OK();
}

std::vector<StorageEngine::FragmentInfo> StorageEngine::ListFragments()
    const {
  std::vector<FragmentInfo> out;
  out.reserve(fragments_.size());
  for (const auto& [key, frag] : fragments_) {
    size_t rows = frag.tail.size();
    for (const ManifestBlock& block : frag.blocks) rows += block.rows;
    out.push_back(FragmentInfo{key.first, key.second, rows});
  }
  return out;
}

bool StorageEngine::Contains(LocationId location,
                             const std::string& table) const {
  return fragments_.count({location, table}) > 0;
}

Result<size_t> StorageEngine::FragmentRows(LocationId location,
                                           const std::string& table) const {
  auto it = fragments_.find({location, table});
  if (it == fragments_.end()) {
    return Status::NotFound("no fragment of '" + table + "' at location " +
                            std::to_string(location));
  }
  size_t rows = it->second.tail.size();
  for (const ManifestBlock& block : it->second.blocks) rows += block.rows;
  return rows;
}

size_t StorageEngine::TotalRows() const {
  size_t rows = 0;
  for (const FragmentInfo& frag : ListFragments()) rows += frag.rows;
  return rows;
}

Result<StorageEngine::Cursor> StorageEngine::Scan(
    LocationId location, const std::string& table) const {
  auto it = fragments_.find({location, table});
  if (it == fragments_.end()) {
    return Status::NotFound("no fragment of '" + table + "' at location " +
                            std::to_string(location));
  }
  Cursor cursor;
  cursor.dir_ = dir_;
  cursor.blocks_ = it->second.blocks;
  cursor.tail_ = it->second.tail;
  return cursor;
}

Result<bool> StorageEngine::Cursor::Next(std::vector<Row>* out) {
  out->clear();
  if (next_block_ < blocks_.size()) {
    const ManifestBlock& block = blocks_[next_block_++];
    const std::string path = dir_ + "/" + BlockFileName(block.id);
    auto bytes = ReadFile(path);
    if (bytes.status().IsNotFound()) {
      return Status::DataLoss(path + ": live block file missing");
    }
    CGQ_ASSIGN_OR_RETURN(std::string raw, std::move(bytes));
    CGQ_ASSIGN_OR_RETURN(*out, DecodeBlockFile(raw, path));
    if (out->size() != block.rows) {
      return Status::DataLoss(path + ": block holds " +
                              std::to_string(out->size()) +
                              " rows, manifest names " +
                              std::to_string(block.rows));
    }
    ++blocks_read_;
    CGQ_COUNTER_ADD("storage.blocks_read", 1);
    return true;
  }
  if (!tail_done_) {
    tail_done_ = true;
    if (!tail_.empty()) {
      *out = std::move(tail_);
      tail_.clear();
      return true;
    }
  }
  return false;
}

Status StorageEngine::ReadAll(LocationId location, const std::string& table,
                              std::vector<Row>* out) const {
  out->clear();
  CGQ_ASSIGN_OR_RETURN(Cursor cursor, Scan(location, table));
  std::vector<Row> chunk;
  while (true) {
    CGQ_ASSIGN_OR_RETURN(bool more, cursor.Next(&chunk));
    if (!more) break;
    for (Row& row : chunk) out->push_back(std::move(row));
  }
  return Status::OK();
}

}  // namespace storage
}  // namespace cgq
