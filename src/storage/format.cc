#include "storage/format.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "net/wire_protocol.h"

namespace cgq {
namespace storage {

namespace {

std::string MagicName(uint32_t magic) {
  switch (magic) {
    case kBlockMagic:
      return "block";
    case kWalMagic:
      return "commit log";
    case kManifestMagic:
      return "manifest";
  }
  return "frame";
}

}  // namespace

Result<std::string> EncodeFileFrame(uint32_t magic, uint16_t type,
                                    const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument(
        MagicName(magic) + " payload of " + std::to_string(payload.size()) +
        " bytes exceeds the " + std::to_string(kMaxFrameBytes) +
        "-byte frame limit");
  }
  wire::Writer w;
  w.PutU32(magic);
  w.PutU16(kFormatVersion);
  w.PutU16(type);
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutU64(wire::Fnv1a(reinterpret_cast<const uint8_t*>(payload.data()),
                       payload.size()));
  std::string frame = w.Take();
  frame += payload;
  return frame;
}

Result<FileFrameHeader> DecodeFileFrameHeader(uint32_t magic,
                                              const uint8_t* data, size_t len,
                                              const std::string& what) {
  wire::Reader r(data, len);
  CGQ_ASSIGN_OR_RETURN(uint32_t got_magic, r.U32());
  if (got_magic != magic) {
    return Status::DataLoss(what + ": bad " + MagicName(magic) + " magic 0x" +
                            [&] {
                              char buf[16];
                              std::snprintf(buf, sizeof(buf), "%08x",
                                            got_magic);
                              return std::string(buf);
                            }());
  }
  FileFrameHeader header;
  CGQ_ASSIGN_OR_RETURN(header.version, r.U16());
  CGQ_ASSIGN_OR_RETURN(header.type, r.U16());
  CGQ_ASSIGN_OR_RETURN(header.payload_len, r.U32());
  CGQ_ASSIGN_OR_RETURN(header.checksum, r.U64());
  if (header.version > kFormatVersion) {
    return Status::Unsupported(what + ": " + MagicName(magic) +
                               " format version " +
                               std::to_string(header.version) +
                               " is newer than " +
                               std::to_string(kFormatVersion));
  }
  if (header.payload_len > kMaxFrameBytes) {
    return Status::DataLoss(what + ": " + MagicName(magic) + " claims " +
                            std::to_string(header.payload_len) +
                            " payload bytes (limit " +
                            std::to_string(kMaxFrameBytes) + ")");
  }
  return header;
}

Status VerifyFilePayload(const FileFrameHeader& header, const uint8_t* payload,
                         const std::string& what) {
  uint64_t got = wire::Fnv1a(payload, header.payload_len);
  if (got != header.checksum) {
    return Status::DataLoss(what + ": checksum mismatch (stored " +
                            std::to_string(header.checksum) + ", computed " +
                            std::to_string(got) + ")");
  }
  return Status::OK();
}

Result<std::string> ReadFile(const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) {
    return Status::NotFound(path + ": no such file");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::Unavailable(path + ": open failed");
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::Unavailable(path + ": read failed");
  return buf.str();
}

Status WriteFileAtomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::Unavailable(tmp + ": open failed");
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) return Status::Unavailable(tmp + ": write failed");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::Unavailable(path + ": rename failed: " + ec.message());
  }
  return Status::OK();
}

}  // namespace storage
}  // namespace cgq
