#ifndef CGQ_STORAGE_WAL_H_
#define CGQ_STORAGE_WAL_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "catalog/location.h"
#include "common/result.h"
#include "types/value.h"

namespace cgq {
namespace storage {

/// Write-ahead commit log (`wal-<v>.log`): a sequence of file frames
/// with kWalMagic, one per mutation, appended and flushed before the
/// mutation is acknowledged. The frame `type` field is the record type;
/// the payload is
///
///   u32 location, string table, u32 num_rows, rows (PutRow each)
///
/// Recovery replays records after the manifest: kPut replaces the
/// fragment's unflushed tail (and drops its manifest blocks), kAppend
/// extends it. A record cut short at end-of-file is a *torn tail* —
/// the write it logged was never acknowledged — so replay stops there
/// cleanly and truncates it; corruption anywhere else (bad magic, bad
/// checksum on a complete record) is typed kDataLoss.
enum class WalRecordType : uint16_t {
  kPut = 1,     ///< replace the fragment with these rows
  kAppend = 2,  ///< append these rows to the fragment
};

struct WalRecord {
  WalRecordType type = WalRecordType::kPut;
  LocationId location = 0;
  std::string table;
  std::vector<Row> rows;
};

/// Encodes one record as a complete file frame. kInvalidArgument when
/// the payload would exceed kMaxFrameBytes (LogAndApply chunks records
/// by rows *and* bytes, so only a single enormous row can hit this).
Result<std::string> EncodeWalRecord(const WalRecord& rec);

/// Appender over one log file. Every Append is flushed to the OS before
/// returning, so a SIGKILL after an acknowledged mutation never loses
/// it. Carries the `storage.commit` failpoint: when armed and fired, a
/// torn prefix of the record is written (simulating a crash mid-commit)
/// and the append fails kUnavailable — the writer is then *wounded* and
/// refuses further appends until reopened, exactly like a crashed
/// process.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter() { Close(); }
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens `path` for appending (created if absent).
  Status Open(const std::string& path);
  Status Append(const WalRecord& rec);
  void Close();

  bool is_open() const { return file_ != nullptr; }
  /// Bytes appended through this writer (drives checkpoint scheduling).
  size_t bytes_written() const { return bytes_written_; }

 private:
  FILE* file_ = nullptr;
  std::string path_;
  size_t bytes_written_ = 0;
  bool wounded_ = false;
};

/// Replays every complete record of `path` through `fn`, in order.
/// A torn tail stops replay and truncates the file to the last complete
/// record so later appends never follow garbage; a missing file replays
/// zero records. Returns the number of records replayed.
Result<size_t> ReplayWal(const std::string& path,
                         const std::function<Status(WalRecord)>& fn);

}  // namespace storage
}  // namespace cgq

#endif  // CGQ_STORAGE_WAL_H_
