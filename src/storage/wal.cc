#include "storage/wal.h"

#include <filesystem>

#include "common/failpoint.h"
#include "net/wire_protocol.h"
#include "storage/format.h"

namespace cgq {
namespace storage {

Result<std::string> EncodeWalRecord(const WalRecord& rec) {
  wire::Writer w;
  w.PutU32(rec.location);
  w.PutString(rec.table);
  w.PutU32(static_cast<uint32_t>(rec.rows.size()));
  for (const Row& row : rec.rows) w.PutRow(row);
  return EncodeFileFrame(kWalMagic, static_cast<uint16_t>(rec.type),
                         w.Take());
}

Status WalWriter::Open(const std::string& path) {
  Close();
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::Unavailable(path + ": open for append failed");
  }
  path_ = path;
  bytes_written_ = 0;
  wounded_ = false;
  return Status::OK();
}

Status WalWriter::Append(const WalRecord& rec) {
  if (file_ == nullptr) {
    return Status::Internal("WalWriter::Append on a closed log");
  }
  if (wounded_) {
    return Status::Unavailable(path_ +
                               ": commit log needs recovery after a failed "
                               "append");
  }
  // An encode failure (over-limit record) writes nothing, so it does
  // not wound the log — the caller just sees the mutation refused.
  CGQ_ASSIGN_OR_RETURN(const std::string frame, EncodeWalRecord(rec));
  if (CGQ_FAILPOINT("storage.commit")) {
    // Simulate a crash mid-commit: a torn prefix reaches the disk, the
    // acknowledgement never happens. Recovery must replay cleanly past
    // (i.e. stop at) this tail.
    wounded_ = true;
    const size_t torn = frame.size() / 2;
    std::fwrite(frame.data(), 1, torn, file_);
    std::fflush(file_);
    return Status::Unavailable(path_ + ": injected commit failure (site "
                               "storage.commit), wrote torn " +
                               std::to_string(torn) + "/" +
                               std::to_string(frame.size()) + " bytes");
  }
  const size_t wrote = std::fwrite(frame.data(), 1, frame.size(), file_);
  if (wrote != frame.size() || std::fflush(file_) != 0) {
    wounded_ = true;
    return Status::Unavailable(path_ + ": commit log append failed after " +
                               std::to_string(wrote) + "/" +
                               std::to_string(frame.size()) + " bytes");
  }
  bytes_written_ += frame.size();
  return Status::OK();
}

void WalWriter::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Result<size_t> ReplayWal(const std::string& path,
                         const std::function<Status(WalRecord)>& fn) {
  auto bytes_or = ReadFile(path);
  if (bytes_or.status().IsNotFound()) return size_t{0};
  CGQ_ASSIGN_OR_RETURN(std::string bytes, std::move(bytes_or));

  const uint8_t* data = reinterpret_cast<const uint8_t*>(bytes.data());
  size_t pos = 0;
  size_t replayed = 0;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kFrameHeaderSize) break;  // torn header at tail
    CGQ_ASSIGN_OR_RETURN(
        FileFrameHeader header,
        DecodeFileFrameHeader(kWalMagic, data + pos, kFrameHeaderSize,
                              path + " @" + std::to_string(pos)));
    if (bytes.size() - pos - kFrameHeaderSize < header.payload_len) {
      break;  // torn payload at tail: the mutation was never acknowledged
    }
    const uint8_t* payload = data + pos + kFrameHeaderSize;
    CGQ_RETURN_NOT_OK(VerifyFilePayload(header, payload,
                                        path + " @" + std::to_string(pos)));
    if (header.type != static_cast<uint16_t>(WalRecordType::kPut) &&
        header.type != static_cast<uint16_t>(WalRecordType::kAppend)) {
      return Status::DataLoss(path + " @" + std::to_string(pos) +
                              ": unknown commit-log record type " +
                              std::to_string(header.type));
    }

    WalRecord rec;
    rec.type = static_cast<WalRecordType>(header.type);
    wire::Reader r(payload, header.payload_len);
    CGQ_ASSIGN_OR_RETURN(rec.location, r.U32());
    CGQ_ASSIGN_OR_RETURN(rec.table, r.String());
    CGQ_ASSIGN_OR_RETURN(uint32_t n, r.U32());
    rec.rows.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      auto row = r.ReadRow();
      if (!row.ok()) {
        return Status::DataLoss(path + " @" + std::to_string(pos) + ": " +
                                row.status().message());
      }
      rec.rows.push_back(std::move(*row));
    }
    if (!r.AtEnd()) {
      return Status::DataLoss(path + " @" + std::to_string(pos) + ": " +
                              std::to_string(r.remaining()) +
                              " trailing bytes in commit-log record");
    }

    CGQ_RETURN_NOT_OK(fn(std::move(rec)));
    pos += kFrameHeaderSize + header.payload_len;
    ++replayed;
  }

  if (pos < bytes.size()) {
    // Torn tail: drop it so later appends never follow garbage.
    std::error_code ec;
    std::filesystem::resize_file(path, pos, ec);
    if (ec) {
      return Status::Unavailable(path + ": truncating torn tail failed: " +
                                 ec.message());
    }
  }
  return replayed;
}

}  // namespace storage
}  // namespace cgq
