#ifndef CGQ_STORAGE_MANIFEST_H_
#define CGQ_STORAGE_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/location.h"
#include "common/result.h"
#include "types/value.h"

namespace cgq {
namespace storage {

/// Versioned manifest (`MANIFEST-<v>`): one file frame with
/// kManifestMagic naming the live block set. The `CURRENT` file holds
/// the name of the authoritative manifest; both are written tmp+rename
/// so a crash never exposes a half-written pointer. The payload is
///
///   u64 manifest_version, u64 wal_version, u64 next_block_id,
///   u32 num_fragments, per fragment:
///     u32 location, string table, u32 num_blocks,
///     per block: u64 block_id, u32 rows
///
/// Recovery reads CURRENT -> MANIFEST-<v> -> replays wal-<wal_version>;
/// blocks named here are authoritative, everything else on disk is
/// garbage from an interrupted checkpoint and is collected.
struct ManifestBlock {
  uint64_t id = 0;
  uint32_t rows = 0;
};

struct ManifestFragment {
  LocationId location = 0;
  std::string table;
  std::vector<ManifestBlock> blocks;
};

struct Manifest {
  uint64_t version = 0;
  uint64_t wal_version = 0;
  uint64_t next_block_id = 1;
  std::vector<ManifestFragment> fragments;

  /// Complete file bytes (header + payload); kInvalidArgument when the
  /// payload would exceed kMaxFrameBytes.
  Result<std::string> Encode() const;
  /// Decodes + checksum-verifies; corruption is typed kDataLoss.
  static Result<Manifest> Decode(const std::string& bytes,
                                 const std::string& what);
};

/// File-name helpers shared by the engine and its tests.
std::string ManifestFileName(uint64_t version);
std::string WalFileName(uint64_t version);
std::string BlockFileName(uint64_t id);

}  // namespace storage
}  // namespace cgq

#endif  // CGQ_STORAGE_MANIFEST_H_
