#ifndef CGQ_EXEC_CSV_H_
#define CGQ_EXEC_CSV_H_

#include <string>

#include "catalog/catalog.h"
#include "common/result.h"
#include "exec/table_store.h"

namespace cgq {

/// Loads CSV text into `table`'s fragment at `location`.
///
/// - One record per line, comma-separated, no header row.
/// - Fields may be double-quoted; embedded quotes escape as "".
/// - Empty unquoted fields load as NULL.
/// - Values are typed by the table's schema (int64 / double / string /
///   date as YYYY-MM-DD); type errors name the offending line.
///
/// Returns the number of loaded rows.
Result<size_t> LoadCsv(const Catalog& catalog, const std::string& table,
                       LocationId location, const std::string& csv_text,
                       TableStore* store);

}  // namespace cgq

#endif  // CGQ_EXEC_CSV_H_
