#include "exec/fragment_executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <iterator>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "exec/exec_internal.h"
#include "exec/fragmenter.h"

namespace cgq {

using exec_internal::HashAggregator;
using exec_internal::JoinHashTable;
using exec_internal::JoinSpec;
using exec_internal::LayoutOf;
using exec_internal::PositionsOf;

namespace {

using OptBatch = std::optional<RowBatch>;

/// Cooperative cancellation (ExecutorOptions::cancel), checked per batch
/// and inside materialized-join loops. nullptr = not cancellable.
Status CheckCancelled(const std::atomic<bool>* cancel) {
  if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
    return Status::Cancelled("query cancelled");
  }
  return Status::OK();
}

/// Shared state of one fragmented execution.
struct RunState {
  const TableStore* store = nullptr;
  const ExecutorOptions* options = nullptr;
  const FragmentedPlan* fp = nullptr;
  std::vector<std::unique_ptr<ShipChannel>> channels;
  std::atomic<bool> failed{false};

  std::mutex error_mu;
  Status first_error;

  /// Records the first (temporally) failure and aborts every channel with
  /// it, so blocked siblings wake up carrying the original structured
  /// status rather than a generic secondary error.
  void Fail(const Status& status) {
    {
      std::lock_guard<std::mutex> lock(error_mu);
      if (first_error.ok()) first_error = status;
    }
    failed.store(true, std::memory_order_release);
    for (auto& ch : channels) ch->Abort(status);
  }

  Status FirstError() {
    std::lock_guard<std::mutex> lock(error_mu);
    return first_error;
  }
};

/// The compliance guard of the recovery path: a fragment may only (re)run
/// at the site the located plan assigned it, and that site must lie in
/// the root operator's execution trait; the SHIP it feeds must target a
/// site inside the shipping trait. Plans built outside the optimizer may
/// carry empty (unannotated) traits, which the guard treats as
/// unconstrained.
Status CheckFragmentPlacement(const PlanFragment& fragment) {
  const LocationSet& exec = fragment.root->exec_trait;
  if (!exec.empty() && !exec.Contains(fragment.site)) {
    return Status::Internal(
        "compliance violation: fragment #" + std::to_string(fragment.id) +
        " placed at l" + std::to_string(fragment.site) +
        " outside its execution trait");
  }
  if (fragment.ship != nullptr) {
    const LocationSet& ship_trait = fragment.ship->ship_trait;
    if (!ship_trait.empty() && !ship_trait.Contains(fragment.ship->ship_to)) {
      return Status::Internal(
          "compliance violation: fragment #" + std::to_string(fragment.id) +
          " ships to l" + std::to_string(fragment.ship->ship_to) +
          " outside its shipping trait");
    }
  }
  return Status::OK();
}

/// Pull-based batch operator: Next() returns the next (non-empty) batch of
/// at most `batch_size` rows, an empty optional at end-of-stream, or an
/// error.
class BatchOp {
 public:
  virtual ~BatchOp() = default;
  virtual Result<OptBatch> Next() = 0;
  /// Static output layout (known before any batch is produced).
  virtual const RowLayout& layout() const = 0;
};

using BatchOpPtr = std::unique_ptr<BatchOp>;

class ScanOp : public BatchOp {
 public:
  ScanOp(const PlanNode* node, const std::vector<Row>* rows,
         size_t batch_size, int64_t* rows_scanned)
      : node_(node),
        rows_(rows),
        batch_size_(batch_size),
        rows_scanned_(rows_scanned),
        layout_(LayoutOf(*node)) {}

  Result<OptBatch> Next() override {
    if (offset_ >= rows_->size()) return OptBatch();
    size_t end = std::min(offset_ + batch_size_, rows_->size());
    RowBatch out;
    out.layout = layout_;
    out.rows.reserve(end - offset_);
    for (size_t i = offset_; i < end; ++i) {
      if ((*rows_)[i].size() != layout_.size()) {
        return Status::Internal("stored row width mismatch for table '" +
                                node_->table + "'");
      }
      out.rows.push_back((*rows_)[i]);
    }
    *rows_scanned_ += static_cast<int64_t>(out.rows.size());
    offset_ = end;
    return OptBatch(std::move(out));
  }

  const RowLayout& layout() const override { return layout_; }

 private:
  const PlanNode* node_;
  const std::vector<Row>* rows_;
  const size_t batch_size_;
  int64_t* rows_scanned_;
  RowLayout layout_;
  size_t offset_ = 0;
};

class ChannelSourceOp : public BatchOp {
 public:
  ChannelSourceOp(const PlanNode* ship, ShipChannel* channel,
                  const std::atomic<bool>* failed)
      : channel_(channel),
        failed_(failed),
        layout_(LayoutOf(*ship->child(0))) {}

  Result<OptBatch> Next() override {
    RowBatch batch;
    CGQ_ASSIGN_OR_RETURN(bool got, channel_->Recv(&batch));
    if (!got) {
      if (failed_->load(std::memory_order_acquire)) {
        Status abort = channel_->abort_status();
        return abort.ok() ? Status::Internal("fragment execution aborted")
                          : abort;
      }
      return OptBatch();
    }
    return OptBatch(std::move(batch));
  }

  const RowLayout& layout() const override { return layout_; }

 private:
  ShipChannel* channel_;
  const std::atomic<bool>* failed_;
  RowLayout layout_;
};

class FilterOp : public BatchOp {
 public:
  FilterOp(const PlanNode* node, BatchOpPtr child)
      : node_(node), child_(std::move(child)) {}

  Result<OptBatch> Next() override {
    while (true) {
      CGQ_ASSIGN_OR_RETURN(OptBatch in, child_->Next());
      if (!in) return OptBatch();
      RowBatch out;
      out.layout = in->layout;
      for (Row& row : in->rows) {
        CGQ_ASSIGN_OR_RETURN(
            bool keep,
            exec_internal::KeepRow(node_->conjuncts, row, in->layout));
        if (keep) out.rows.push_back(std::move(row));
      }
      if (!out.rows.empty()) return OptBatch(std::move(out));
    }
  }

  const RowLayout& layout() const override { return child_->layout(); }

 private:
  const PlanNode* node_;
  BatchOpPtr child_;
};

class ProjectOp : public BatchOp {
 public:
  static Result<BatchOpPtr> Make(const PlanNode* node, BatchOpPtr child) {
    CGQ_ASSIGN_OR_RETURN(std::vector<size_t> positions,
                         PositionsOf(node->project_ids, child->layout(),
                                     "projection input"));
    return BatchOpPtr(
        new ProjectOp(node, std::move(child), std::move(positions)));
  }

  Result<OptBatch> Next() override {
    CGQ_ASSIGN_OR_RETURN(OptBatch in, child_->Next());
    if (!in) return OptBatch();
    RowBatch out;
    out.layout = layout_;
    out.rows.reserve(in->rows.size());
    for (const Row& row : in->rows) {
      Row projected;
      projected.reserve(positions_.size());
      for (size_t p : positions_) projected.push_back(row[p]);
      out.rows.push_back(std::move(projected));
    }
    return OptBatch(std::move(out));
  }

  const RowLayout& layout() const override { return layout_; }

 private:
  ProjectOp(const PlanNode* node, BatchOpPtr child,
            std::vector<size_t> positions)
      : child_(std::move(child)),
        positions_(std::move(positions)),
        layout_(LayoutOf(*node)) {}

  BatchOpPtr child_;
  std::vector<size_t> positions_;
  RowLayout layout_;
};

/// Emits `rows` in batch_size chunks, preserving order.
class Chunker {
 public:
  explicit Chunker(size_t batch_size) : batch_size_(batch_size) {}

  void Add(std::vector<Row> rows) {
    if (rows_.empty()) {
      rows_ = std::move(rows);
    } else {
      rows_.insert(rows_.end(), std::make_move_iterator(rows.begin()),
                   std::make_move_iterator(rows.end()));
    }
  }

  bool HasFullBatch() const { return rows_.size() - pos_ >= batch_size_; }
  bool Empty() const { return pos_ >= rows_.size(); }

  RowBatch Take(const RowLayout& layout) {
    RowBatch out;
    out.layout = layout;
    size_t end = std::min(pos_ + batch_size_, rows_.size());
    out.rows.assign(std::make_move_iterator(rows_.begin() + pos_),
                    std::make_move_iterator(rows_.begin() + end));
    pos_ = end;
    if (pos_ >= rows_.size()) {
      rows_.clear();
      pos_ = 0;
    }
    return out;
  }

 private:
  const size_t batch_size_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

class JoinOp : public BatchOp {
 public:
  JoinOp(const PlanNode* node, BatchOpPtr left, BatchOpPtr right,
         size_t batch_size, const std::atomic<bool>* cancel)
      : node_(node),
        left_(std::move(left)),
        right_(std::move(right)),
        chunker_(batch_size),
        layout_(LayoutOf(*node)),
        cancel_(cancel) {}

  Result<OptBatch> Next() override {
    if (!initialized_) {
      CGQ_RETURN_NOT_OK(Init());
      initialized_ = true;
    }
    while (true) {
      if (chunker_.HasFullBatch() || (drained_ && !chunker_.Empty())) {
        return OptBatch(chunker_.Take(layout_));
      }
      if (drained_) return OptBatch();
      CGQ_ASSIGN_OR_RETURN(OptBatch in, right_->Next());
      if (!in) {
        drained_ = true;
        continue;
      }
      std::vector<Row> matched;
      for (const Row& r : in->rows) {
        CGQ_RETURN_NOT_OK(table_.Probe(r, spec_, [&](const Row& l) {
          return spec_.EmitIfMatch(l, r, &matched).status();
        }));
      }
      chunker_.Add(std::move(matched));
    }
  }

  const RowLayout& layout() const override { return layout_; }

 private:
  Status Init() {
    // The build (left) side is always fully materialized, mirroring the
    // row interpreter; the probe side streams for hash joins. Nested-loop
    // and sort-merge joins materialize both sides (their output order is
    // left-major, which a right-side stream cannot produce).
    std::vector<Row> left_rows;
    CGQ_RETURN_NOT_OK(Drain(left_.get(), &left_rows));
    CGQ_ASSIGN_OR_RETURN(
        spec_, JoinSpec::Make(*node_, left_->layout(), right_->layout()));

    if (spec_.RequiresNestedLoop() ||
        node_->join_method == JoinMethod::kNestedLoop) {
      std::vector<Row> right_rows;
      CGQ_RETURN_NOT_OK(Drain(right_.get(), &right_rows));
      std::vector<Row> matched;
      for (const Row& l : left_rows) {
        CGQ_RETURN_NOT_OK(CheckCancelled(cancel_));
        for (const Row& r : right_rows) {
          CGQ_RETURN_NOT_OK(spec_.EmitIfMatch(l, r, &matched).status());
        }
      }
      chunker_.Add(std::move(matched));
      drained_ = true;
    } else if (node_->join_method == JoinMethod::kSortMerge) {
      std::vector<Row> right_rows;
      CGQ_RETURN_NOT_OK(Drain(right_.get(), &right_rows));
      std::vector<Row> matched;
      CGQ_RETURN_NOT_OK(exec_internal::SortMergeJoin(
          left_rows, right_rows, spec_.key_positions,
          [&](const Row& l, const Row& r) {
            return spec_.EmitIfMatch(l, r, &matched).status();
          }));
      chunker_.Add(std::move(matched));
      drained_ = true;
    } else {
      build_rows_ = std::move(left_rows);
      table_.Build(build_rows_, spec_);
    }
    return Status::OK();
  }

  static Status Drain(BatchOp* op, std::vector<Row>* out) {
    while (true) {
      CGQ_ASSIGN_OR_RETURN(OptBatch b, op->Next());
      if (!b) return Status::OK();
      out->insert(out->end(), std::make_move_iterator(b->rows.begin()),
                  std::make_move_iterator(b->rows.end()));
    }
  }

  const PlanNode* node_;
  BatchOpPtr left_;
  BatchOpPtr right_;
  Chunker chunker_;
  RowLayout layout_;
  JoinSpec spec_;
  std::vector<Row> build_rows_;
  JoinHashTable table_;
  const std::atomic<bool>* cancel_ = nullptr;
  bool initialized_ = false;
  bool drained_ = false;
};

class AggregateOp : public BatchOp {
 public:
  AggregateOp(const PlanNode* node, BatchOpPtr child, size_t batch_size)
      : node_(node),
        child_(std::move(child)),
        chunker_(batch_size),
        layout_(LayoutOf(*node)) {}

  Result<OptBatch> Next() override {
    if (!finished_) {
      HashAggregator agg(node_);
      CGQ_RETURN_NOT_OK(agg.Init(child_->layout()));
      while (true) {
        CGQ_ASSIGN_OR_RETURN(OptBatch in, child_->Next());
        if (!in) break;
        for (const Row& row : in->rows) {
          CGQ_RETURN_NOT_OK(agg.Add(row));
        }
      }
      chunker_.Add(agg.Finish());
      finished_ = true;
    }
    if (chunker_.Empty()) return OptBatch();
    return OptBatch(chunker_.Take(layout_));
  }

  const RowLayout& layout() const override { return layout_; }

 private:
  const PlanNode* node_;
  BatchOpPtr child_;
  Chunker chunker_;
  RowLayout layout_;
  bool finished_ = false;
};

class UnionOp : public BatchOp {
 public:
  static Result<BatchOpPtr> Make(const PlanNode* node,
                                 std::vector<BatchOpPtr> children) {
    RowLayout layout = LayoutOf(*node);
    std::vector<std::vector<size_t>> remaps;
    remaps.reserve(children.size());
    for (const BatchOpPtr& child : children) {
      CGQ_ASSIGN_OR_RETURN(
          std::vector<size_t> positions,
          PositionsOf(layout.attrs(), child->layout(), "union branch"));
      remaps.push_back(std::move(positions));
    }
    return BatchOpPtr(new UnionOp(std::move(layout), std::move(children),
                                  std::move(remaps)));
  }

  Result<OptBatch> Next() override {
    while (current_ < children_.size()) {
      CGQ_ASSIGN_OR_RETURN(OptBatch in, children_[current_]->Next());
      if (!in) {
        ++current_;
        continue;
      }
      const std::vector<size_t>& positions = remaps_[current_];
      RowBatch out;
      out.layout = layout_;
      out.rows.reserve(in->rows.size());
      for (const Row& row : in->rows) {
        Row mapped;
        mapped.reserve(positions.size());
        for (size_t p : positions) mapped.push_back(row[p]);
        out.rows.push_back(std::move(mapped));
      }
      return OptBatch(std::move(out));
    }
    return OptBatch();
  }

  const RowLayout& layout() const override { return layout_; }

 private:
  UnionOp(RowLayout layout, std::vector<BatchOpPtr> children,
          std::vector<std::vector<size_t>> remaps)
      : layout_(std::move(layout)),
        children_(std::move(children)),
        remaps_(std::move(remaps)) {}

  RowLayout layout_;
  std::vector<BatchOpPtr> children_;
  std::vector<std::vector<size_t>> remaps_;
  size_t current_ = 0;
};

/// Builds the batch-operator tree of one fragment. SHIP nodes inside the
/// subtree become channel sources (their subtrees belong to other
/// fragments).
Result<BatchOpPtr> BuildOp(const PlanNode& node, RunState* st,
                           FragmentMetrics* fm) {
  const size_t batch_size =
      static_cast<size_t>(std::max(1, st->options->batch_size));
  switch (node.kind()) {
    case PlanKind::kShip: {
      int channel = st->fp->channel_of_ship.at(&node);
      return BatchOpPtr(new ChannelSourceOp(
          &node, st->channels[channel].get(), &st->failed));
    }
    case PlanKind::kScan: {
      CGQ_ASSIGN_OR_RETURN(const std::vector<Row>* rows,
                           st->store->Get(node.scan_location, node.table));
      return BatchOpPtr(
          new ScanOp(&node, rows, batch_size, &fm->rows_scanned));
    }
    case PlanKind::kFilter: {
      CGQ_ASSIGN_OR_RETURN(BatchOpPtr child, BuildOp(*node.child(0), st, fm));
      return BatchOpPtr(new FilterOp(&node, std::move(child)));
    }
    case PlanKind::kProject: {
      CGQ_ASSIGN_OR_RETURN(BatchOpPtr child, BuildOp(*node.child(0), st, fm));
      return ProjectOp::Make(&node, std::move(child));
    }
    case PlanKind::kJoin: {
      CGQ_ASSIGN_OR_RETURN(BatchOpPtr left, BuildOp(*node.child(0), st, fm));
      CGQ_ASSIGN_OR_RETURN(BatchOpPtr right, BuildOp(*node.child(1), st, fm));
      return BatchOpPtr(new JoinOp(&node, std::move(left), std::move(right),
                                   batch_size, st->options->cancel.get()));
    }
    case PlanKind::kAggregate: {
      CGQ_ASSIGN_OR_RETURN(BatchOpPtr child, BuildOp(*node.child(0), st, fm));
      return BatchOpPtr(
          new AggregateOp(&node, std::move(child), batch_size));
    }
    case PlanKind::kUnion: {
      std::vector<BatchOpPtr> children;
      children.reserve(node.children().size());
      for (const PlanNodePtr& c : node.children()) {
        CGQ_ASSIGN_OR_RETURN(BatchOpPtr child, BuildOp(*c, st, fm));
        children.push_back(std::move(child));
      }
      return UnionOp::Make(&node, std::move(children));
    }
  }
  return Status::Internal("unhandled plan kind");
}

/// Drives one fragment to completion: producer fragments push batches into
/// their output channel, the top fragment collects the query result.
Status RunFragment(const PlanFragment& fragment, RunState* st,
                   FragmentMetrics* fm, std::vector<Row>* result_rows) {
  if (CGQ_FAILPOINT("fragment.start")) {
    return Status::Unavailable("injected failure: fragment #" +
                               std::to_string(fragment.id) +
                               " died at start");
  }
  CGQ_ASSIGN_OR_RETURN(BatchOpPtr op, BuildOp(*fragment.root, st, fm));
  const std::atomic<bool>* cancel = st->options->cancel.get();
  if (fragment.output_channel >= 0) {
    ShipChannel* channel = st->channels[fragment.output_channel].get();
    while (true) {
      CGQ_RETURN_NOT_OK(CheckCancelled(cancel));
      CGQ_ASSIGN_OR_RETURN(OptBatch batch, op->Next());
      if (!batch) break;
      if (batch->Empty()) continue;
      fm->rows_out += static_cast<int64_t>(batch->NumRows());
      CGQ_RETURN_NOT_OK(channel->Send(std::move(*batch)));
    }
    channel->CloseProducer();
    return Status::OK();
  }
  while (true) {
    CGQ_RETURN_NOT_OK(CheckCancelled(cancel));
    CGQ_ASSIGN_OR_RETURN(OptBatch batch, op->Next());
    if (!batch) break;
    fm->rows_out += static_cast<int64_t>(batch->NumRows());
    result_rows->insert(result_rows->end(),
                        std::make_move_iterator(batch->rows.begin()),
                        std::make_move_iterator(batch->rows.end()));
  }
  return Status::OK();
}

}  // namespace

Result<QueryResult> ExecuteFragmentedPlan(const PlanNode& plan,
                                          const TableStore* store,
                                          const NetworkModel* net,
                                          const ExecutorOptions& options) {
  FragmentedPlan fp = FragmentPlan(plan);
  const size_t n = fp.fragments.size();

  // One worker per fragment keeps bounded channels deadlock-free: every
  // blocking producer/consumer owns a thread. With threads == 1 (or when
  // called from inside a pool worker, where fanning out again could
  // starve), fragments instead run bottom-up on the calling thread and
  // channels buffer whole intermediates.
  const bool sequential =
      options.threads == 1 || n == 1 || ThreadPool::InWorkerThread();

  RunState st;
  st.store = store;
  st.options = &options;
  st.fp = &fp;
  // Channels are created below on this thread, before any worker starts,
  // so their "ship" spans attach to the current span in deterministic
  // (plan post-order) creation order. Workers re-install the context
  // themselves (thread locals do not cross into the pool).
  TraceSession* trace = TraceSession::Current();
  int64_t trace_parent = TraceSession::CurrentSpanId();
  CGQ_GAUGE_SET("exec.fragments", static_cast<int64_t>(n));
  const size_t capacity =
      sequential ? 0
                 : static_cast<size_t>(std::max(0, options.channel_capacity));
  st.channels.reserve(fp.num_channels());
  for (const PlanNode* ship : fp.ship_of_channel) {
    st.channels.push_back(std::make_unique<ShipChannel>(
        ship->ship_from, ship->ship_to, capacity, net, options.retry));
  }

  std::vector<FragmentMetrics> fmetrics(n);
  std::vector<Row> result_rows;

  auto run = [&](size_t i) {
    auto start = std::chrono::steady_clock::now();
    const PlanFragment& fragment = fp.fragments[i];
    FragmentMetrics& fm = fmetrics[i];
    fm.id = fragment.id;
    fm.site = fragment.site;
    ScopedTraceContext trace_ctx(trace, trace_parent,
                                 /*track=*/static_cast<int>(i) + 1);
    TraceSpan fragment_span("fragment", /*ordinal=*/static_cast<int>(i));
    fragment_span.AddArg("id", fragment.id);
    fragment_span.AddArg("site", static_cast<int64_t>(fragment.site));
    // Recovery: a *source* fragment (no input channels; its inputs are
    // idempotent scans of stable storage) may restart after a transient
    // (kUnavailable) failure. Its output channel replays: partial
    // undelivered batches are drained and the already-delivered row
    // prefix of the deterministic re-execution is suppressed, so the
    // consumer sees each row exactly once. Interior fragments rely on
    // send-level retries; when those are exhausted, the query aborts
    // with the structured status — never a partial result. Every attempt
    // re-runs at the site the located plan assigned, re-checked against
    // the execution/shipping traits.
    const bool restartable = fragment.input_channels.empty();
    const size_t result_base = result_rows.size();
    Status s;
    for (int attempt = 0;; ++attempt) {
      s = CheckFragmentPlacement(fragment);
      if (s.ok()) s = RunFragment(fragment, &st, &fm, &result_rows);
      if (s.ok() || !s.IsUnavailable() || !restartable ||
          attempt >= options.retry.max_retries ||
          st.failed.load(std::memory_order_acquire)) {
        break;
      }
      fm.restarts += 1;
      if (fragment.output_channel >= 0) {
        st.channels[fragment.output_channel]->BeginReplay();
      } else {
        // Top fragment: discard the partial result of the failed attempt.
        result_rows.resize(result_base);
      }
    }
    fm.wall_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
    // Only deterministic values (no wall time) so traces stay
    // byte-stable per seed.
    fragment_span.AddArg("rows_out", fm.rows_out);
    fragment_span.AddArg("rows_scanned", fm.rows_scanned);
    fragment_span.AddArg("restarts", fm.restarts);
    if (!s.ok()) st.Fail(s);
  };

  if (sequential) {
    for (size_t i = 0; i < n; ++i) {
      run(i);
      if (st.failed.load()) break;
    }
  } else {
    ThreadPool pool(n - 1);
    pool.ParallelFor(n, n, run);
  }

  if (st.failed.load(std::memory_order_acquire)) {
    return st.FirstError();
  }

  QueryResult result;
  for (const OutputCol& c : plan.outputs) {
    result.column_names.push_back(c.name);
  }
  result.rows = std::move(result_rows);

  ExecMetrics& m = result.metrics;
  for (const auto& channel : st.channels) {
    ChannelStats stats = channel->stats();
    m.ships += 1;
    m.rows_shipped += stats.rows;
    m.bytes_shipped += stats.bytes;
    m.network_ms += stats.network_ms;
    m.send_retries += stats.send_retries;
    m.dropped_batches += stats.dropped_batches;
    m.send_timeouts += stats.send_timeouts;
    m.recv_timeouts += stats.recv_timeouts;
    m.backoff_ms += stats.backoff_ms;
    m.edges.push_back(stats);
  }
  for (const FragmentMetrics& fm : fmetrics) {
    m.rows_scanned += fm.rows_scanned;
    m.fragment_restarts += fm.restarts;
  }
  m.fragments = std::move(fmetrics);
  return result;
}

}  // namespace cgq
