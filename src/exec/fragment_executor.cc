#include "exec/fragment_executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <iterator>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "exec/batch_ops.h"
#include "exec/exec_internal.h"
#include "exec/fragmenter.h"

namespace cgq {

using exec_internal::BatchOp;
using exec_internal::BatchOpEnv;
using exec_internal::BatchOpPtr;
using exec_internal::BuildBatchOp;
using exec_internal::CheckCancelled;
using exec_internal::LayoutOf;
using exec_internal::OptBatch;

namespace {

/// Shared state of one fragmented execution.
struct RunState {
  const TableStore* store = nullptr;
  const ExecutorOptions* options = nullptr;
  const FragmentedPlan* fp = nullptr;
  std::vector<std::unique_ptr<ShipChannel>> channels;
  std::atomic<bool> failed{false};

  std::mutex error_mu;
  Status first_error;

  /// Records the first (temporally) failure and aborts every channel with
  /// it, so blocked siblings wake up carrying the original structured
  /// status rather than a generic secondary error.
  void Fail(const Status& status) {
    {
      std::lock_guard<std::mutex> lock(error_mu);
      if (first_error.ok()) first_error = status;
    }
    failed.store(true, std::memory_order_release);
    for (auto& ch : channels) ch->Abort(status);
  }

  Status FirstError() {
    std::lock_guard<std::mutex> lock(error_mu);
    return first_error;
  }
};

class ChannelSourceOp : public BatchOp {
 public:
  ChannelSourceOp(const PlanNode* ship, ShipChannel* channel,
                  const std::atomic<bool>* failed)
      : channel_(channel),
        failed_(failed),
        layout_(LayoutOf(*ship->child(0))) {}

  Result<OptBatch> Next() override {
    RowBatch batch;
    CGQ_ASSIGN_OR_RETURN(bool got, channel_->Recv(&batch));
    if (!got) {
      if (failed_->load(std::memory_order_acquire)) {
        Status abort = channel_->abort_status();
        return abort.ok() ? Status::Internal("fragment execution aborted")
                          : abort;
      }
      return OptBatch();
    }
    return OptBatch(std::move(batch));
  }

  const RowLayout& layout() const override { return layout_; }

 private:
  ShipChannel* channel_;
  const std::atomic<bool>* failed_;
  RowLayout layout_;
};

/// Per-fragment storage accounting (disk scans + spill joins); folded
/// into ExecMetrics after all fragments finish. Like rows_scanned, the
/// counts accumulate across restart attempts.
struct StorageCounters {
  int64_t blocks_read = 0;
  int64_t spill_partitions = 0;
  int64_t spill_bytes = 0;
};

/// Drives one fragment to completion: producer fragments push batches into
/// their output channel, the top fragment collects the query result.
Status RunFragment(const PlanFragment& fragment, RunState* st,
                   FragmentMetrics* fm, StorageCounters* sc,
                   std::vector<Row>* result_rows) {
  if (CGQ_FAILPOINT("fragment.start")) {
    return Status::Unavailable("injected failure: fragment #" +
                               std::to_string(fragment.id) +
                               " died at start");
  }
  BatchOpEnv env;
  env.store = st->store;
  env.batch_size =
      static_cast<size_t>(std::max(1, st->options->batch_size));
  env.cancel = st->options->cancel.get();
  env.rows_scanned = &fm->rows_scanned;
  env.storage_blocks_read = &sc->blocks_read;
  env.spill_partitions = &sc->spill_partitions;
  env.spill_bytes = &sc->spill_bytes;
  env.memory_budget_bytes = st->options->memory_budget_bytes;
  env.spill_dir = st->options->spill_dir;
  env.ship_source = [st](const PlanNode& ship) -> Result<BatchOpPtr> {
    int channel = st->fp->channel_of_ship.at(&ship);
    return BatchOpPtr(new ChannelSourceOp(
        &ship, st->channels[channel].get(), &st->failed));
  };
  CGQ_ASSIGN_OR_RETURN(BatchOpPtr op, BuildBatchOp(*fragment.root, env));
  const std::atomic<bool>* cancel = st->options->cancel.get();
  if (fragment.output_channel >= 0) {
    ShipChannel* channel = st->channels[fragment.output_channel].get();
    while (true) {
      CGQ_RETURN_NOT_OK(CheckCancelled(cancel));
      CGQ_ASSIGN_OR_RETURN(OptBatch batch, op->Next());
      if (!batch) break;
      if (batch->Empty()) continue;
      fm->rows_out += static_cast<int64_t>(batch->NumRows());
      CGQ_RETURN_NOT_OK(channel->Send(std::move(*batch)));
    }
    channel->CloseProducer();
    return Status::OK();
  }
  while (true) {
    CGQ_RETURN_NOT_OK(CheckCancelled(cancel));
    CGQ_ASSIGN_OR_RETURN(OptBatch batch, op->Next());
    if (!batch) break;
    fm->rows_out += static_cast<int64_t>(batch->NumRows());
    result_rows->insert(result_rows->end(),
                        std::make_move_iterator(batch->rows.begin()),
                        std::make_move_iterator(batch->rows.end()));
  }
  return Status::OK();
}

}  // namespace

Result<QueryResult> ExecuteFragmentedPlan(const PlanNode& plan,
                                          const TableStore* store,
                                          const NetworkModel* net,
                                          const ExecutorOptions& options) {
  FragmentedPlan fp = FragmentPlan(plan);
  const size_t n = fp.fragments.size();

  // One worker per fragment keeps bounded channels deadlock-free: every
  // blocking producer/consumer owns a thread. With threads == 1 (or when
  // called from inside a pool worker, where fanning out again could
  // starve), fragments instead run bottom-up on the calling thread and
  // channels buffer whole intermediates.
  const bool sequential =
      options.threads == 1 || n == 1 || ThreadPool::InWorkerThread();

  RunState st;
  st.store = store;
  st.options = &options;
  st.fp = &fp;
  // Channels are created below on this thread, before any worker starts,
  // so their "ship" spans attach to the current span in deterministic
  // (plan post-order) creation order. Workers re-install the context
  // themselves (thread locals do not cross into the pool).
  TraceSession* trace = TraceSession::Current();
  int64_t trace_parent = TraceSession::CurrentSpanId();
  CGQ_GAUGE_SET("exec.fragments", static_cast<int64_t>(n));
  const size_t capacity =
      sequential ? 0
                 : static_cast<size_t>(std::max(0, options.channel_capacity));
  st.channels.reserve(fp.num_channels());
  for (const PlanNode* ship : fp.ship_of_channel) {
    st.channels.push_back(std::make_unique<ShipChannel>(
        ship->ship_from, ship->ship_to, capacity, net, options.retry));
  }

  std::vector<FragmentMetrics> fmetrics(n);
  std::vector<StorageCounters> scounters(n);
  std::vector<Row> result_rows;

  auto run = [&](size_t i) {
    auto start = std::chrono::steady_clock::now();
    const PlanFragment& fragment = fp.fragments[i];
    FragmentMetrics& fm = fmetrics[i];
    fm.id = fragment.id;
    fm.site = fragment.site;
    ScopedTraceContext trace_ctx(trace, trace_parent,
                                 /*track=*/static_cast<int>(i) + 1);
    TraceSpan fragment_span("fragment", /*ordinal=*/static_cast<int>(i));
    fragment_span.AddArg("id", fragment.id);
    fragment_span.AddArg("site", static_cast<int64_t>(fragment.site));
    // Recovery: a *source* fragment (no input channels; its inputs are
    // idempotent scans of stable storage) may restart after a transient
    // (kUnavailable) failure. Its output channel replays: partial
    // undelivered batches are drained and the already-delivered row
    // prefix of the deterministic re-execution is suppressed, so the
    // consumer sees each row exactly once. Interior fragments rely on
    // send-level retries; when those are exhausted, the query aborts
    // with the structured status — never a partial result. Every attempt
    // re-runs at the site the located plan assigned, re-checked against
    // the execution/shipping traits.
    const bool restartable = fragment.input_channels.empty();
    const size_t result_base = result_rows.size();
    Status s;
    for (int attempt = 0;; ++attempt) {
      s = CheckFragmentPlacement(fragment);
      if (s.ok()) {
        s = RunFragment(fragment, &st, &fm, &scounters[i], &result_rows);
      }
      if (s.ok() || !s.IsUnavailable() || !restartable ||
          attempt >= options.retry.max_retries ||
          st.failed.load(std::memory_order_acquire)) {
        break;
      }
      fm.restarts += 1;
      if (fragment.output_channel >= 0) {
        st.channels[fragment.output_channel]->BeginReplay();
      } else {
        // Top fragment: discard the partial result of the failed attempt.
        result_rows.resize(result_base);
      }
    }
    fm.wall_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
    // Only deterministic values (no wall time) so traces stay
    // byte-stable per seed.
    fragment_span.AddArg("rows_out", fm.rows_out);
    fragment_span.AddArg("rows_scanned", fm.rows_scanned);
    fragment_span.AddArg("restarts", fm.restarts);
    if (!s.ok()) st.Fail(s);
  };

  if (sequential) {
    for (size_t i = 0; i < n; ++i) {
      run(i);
      if (st.failed.load()) break;
    }
  } else {
    ThreadPool pool(n - 1);
    pool.ParallelFor(n, n, run);
  }

  if (st.failed.load(std::memory_order_acquire)) {
    return st.FirstError();
  }

  QueryResult result;
  for (const OutputCol& c : plan.outputs) {
    result.column_names.push_back(c.name);
  }
  result.rows = std::move(result_rows);

  ExecMetrics& m = result.metrics;
  for (const auto& channel : st.channels) {
    ChannelStats stats = channel->stats();
    m.ships += 1;
    m.rows_shipped += stats.rows;
    m.bytes_shipped += stats.bytes;
    m.network_ms += stats.network_ms;
    m.send_retries += stats.send_retries;
    m.dropped_batches += stats.dropped_batches;
    m.send_timeouts += stats.send_timeouts;
    m.recv_timeouts += stats.recv_timeouts;
    m.backoff_ms += stats.backoff_ms;
    m.edges.push_back(stats);
  }
  for (const FragmentMetrics& fm : fmetrics) {
    m.rows_scanned += fm.rows_scanned;
    m.fragment_restarts += fm.restarts;
  }
  for (const StorageCounters& sc : scounters) {
    m.storage_blocks_read += sc.blocks_read;
    m.spill_partitions += sc.spill_partitions;
    m.spill_bytes += sc.spill_bytes;
  }
  m.fragments = std::move(fmetrics);
  return result;
}

}  // namespace cgq
