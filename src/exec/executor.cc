#include "exec/executor.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "expr/eval.h"

namespace cgq {

namespace {

// Materialized intermediate result: rows positioned per `layout`.
struct Batch {
  RowLayout layout;
  std::vector<Row> rows;
};

RowLayout LayoutOf(const PlanNode& node) {
  std::vector<AttrId> ids;
  ids.reserve(node.outputs.size());
  for (const OutputCol& c : node.outputs) ids.push_back(c.id);
  return RowLayout(std::move(ids));
}

// Hash-table key wrapper with structural row equality.
struct RowKey {
  Row values;
  bool operator==(const RowKey& other) const {
    return RowsStructurallyEqual(values, other.values);
  }
};
struct RowKeyHash {
  size_t operator()(const RowKey& k) const { return HashRow(k.values); }
};

class PlanInterpreter {
 public:
  PlanInterpreter(const TableStore* store, const NetworkModel* net,
                  ExecMetrics* metrics)
      : store_(store), net_(net), metrics_(metrics) {}

  Result<Batch> Exec(const PlanNode& node) {
    switch (node.kind()) {
      case PlanKind::kScan:
        return ExecScan(node);
      case PlanKind::kFilter:
        return ExecFilter(node);
      case PlanKind::kProject:
        return ExecProject(node);
      case PlanKind::kJoin:
        return ExecJoin(node);
      case PlanKind::kAggregate:
        return ExecAggregate(node);
      case PlanKind::kUnion:
        return ExecUnion(node);
      case PlanKind::kShip:
        return ExecShip(node);
    }
    return Status::Internal("unhandled plan kind");
  }

 private:
  Result<Batch> ExecScan(const PlanNode& node) {
    CGQ_ASSIGN_OR_RETURN(const std::vector<Row>* rows,
                         store_->Get(node.scan_location, node.table));
    Batch out;
    out.layout = LayoutOf(node);
    out.rows = *rows;
    metrics_->rows_scanned += static_cast<int64_t>(rows->size());
    for (const Row& r : out.rows) {
      if (r.size() != out.layout.size()) {
        return Status::Internal("stored row width mismatch for table '" +
                                node.table + "'");
      }
    }
    return out;
  }

  Result<Batch> ExecFilter(const PlanNode& node) {
    CGQ_ASSIGN_OR_RETURN(Batch in, Exec(*node.child(0)));
    Batch out;
    out.layout = in.layout;
    for (Row& row : in.rows) {
      bool keep = true;
      for (const ExprPtr& c : node.conjuncts) {
        CGQ_ASSIGN_OR_RETURN(bool ok, EvalPredicate(*c, row, in.layout));
        keep &= ok;
        if (!keep) break;
      }
      if (keep) out.rows.push_back(std::move(row));
    }
    return out;
  }

  Result<Batch> ExecProject(const PlanNode& node) {
    CGQ_ASSIGN_OR_RETURN(Batch in, Exec(*node.child(0)));
    Batch out;
    out.layout = LayoutOf(node);
    std::vector<size_t> positions;
    for (AttrId id : node.project_ids) {
      size_t pos = in.layout.PositionOf(id);
      if (pos == RowLayout::kNotFound) {
        return Status::Internal("projection input misses attr " +
                                std::to_string(id));
      }
      positions.push_back(pos);
    }
    out.rows.reserve(in.rows.size());
    for (const Row& row : in.rows) {
      Row projected;
      projected.reserve(positions.size());
      for (size_t p : positions) projected.push_back(row[p]);
      out.rows.push_back(std::move(projected));
    }
    return out;
  }

  Result<Batch> ExecJoin(const PlanNode& node) {
    CGQ_ASSIGN_OR_RETURN(Batch left, Exec(*node.child(0)));
    CGQ_ASSIGN_OR_RETURN(Batch right, Exec(*node.child(1)));

    // Split conjuncts into equi-pairs usable as hash keys and residuals.
    std::vector<std::pair<size_t, size_t>> key_positions;  // (left, right)
    std::vector<ExprPtr> residual;
    for (const ExprPtr& c : node.conjuncts) {
      bool is_key = false;
      if (c->op() == ExprOp::kEq &&
          c->child(0)->op() == ExprOp::kColumnRef &&
          c->child(1)->op() == ExprOp::kColumnRef) {
        AttrId a = c->child(0)->attr_id();
        AttrId b = c->child(1)->attr_id();
        size_t la = left.layout.PositionOf(a);
        size_t rb = right.layout.PositionOf(b);
        if (la != RowLayout::kNotFound && rb != RowLayout::kNotFound) {
          key_positions.emplace_back(la, rb);
          is_key = true;
        } else {
          size_t lb = left.layout.PositionOf(b);
          size_t ra = right.layout.PositionOf(a);
          if (lb != RowLayout::kNotFound && ra != RowLayout::kNotFound) {
            key_positions.emplace_back(lb, ra);
            is_key = true;
          }
        }
      }
      if (!is_key) residual.push_back(c);
    }

    Batch out;
    out.layout = LayoutOf(node);
    RowLayout combined = [&] {
      std::vector<AttrId> ids = left.layout.attrs();
      ids.insert(ids.end(), right.layout.attrs().begin(),
                 right.layout.attrs().end());
      return RowLayout(std::move(ids));
    }();

    auto emit = [&](const Row& l, const Row& r) -> Status {
      Row joined = l;
      joined.insert(joined.end(), r.begin(), r.end());
      for (const ExprPtr& c : residual) {
        CGQ_ASSIGN_OR_RETURN(bool ok, EvalPredicate(*c, joined, combined));
        if (!ok) return Status::OK();
      }
      // Reorder to the node's output layout (left ++ right by definition,
      // but the memo's canonical outputs may differ after commutes).
      Row final_row(out.layout.size());
      for (size_t i = 0; i < out.layout.attrs().size(); ++i) {
        size_t pos = combined.PositionOf(out.layout.attrs()[i]);
        if (pos == RowLayout::kNotFound) {
          return Status::Internal("join output attr missing from inputs");
        }
        final_row[i] = joined[pos];
      }
      out.rows.push_back(std::move(final_row));
      return Status::OK();
    };

    if (key_positions.empty() ||
        node.join_method == JoinMethod::kNestedLoop) {
      for (const Row& l : left.rows) {
        for (const Row& r : right.rows) {
          CGQ_RETURN_NOT_OK(emit(l, r));
        }
      }
    } else if (node.join_method == JoinMethod::kSortMerge) {
      CGQ_RETURN_NOT_OK(SortMergeJoin(left, right, key_positions, emit));
    } else {
      std::unordered_multimap<RowKey, size_t, RowKeyHash> table;
      table.reserve(left.rows.size());
      for (size_t i = 0; i < left.rows.size(); ++i) {
        RowKey key;
        bool has_null = false;
        for (auto [lp, rp] : key_positions) {
          has_null |= left.rows[i][lp].is_null();
          key.values.push_back(left.rows[i][lp]);
        }
        if (!has_null) table.emplace(std::move(key), i);
      }
      for (const Row& r : right.rows) {
        RowKey key;
        bool has_null = false;
        for (auto [lp, rp] : key_positions) {
          has_null |= r[rp].is_null();
          key.values.push_back(r[rp]);
        }
        if (has_null) continue;
        auto range = table.equal_range(key);
        for (auto it = range.first; it != range.second; ++it) {
          CGQ_RETURN_NOT_OK(emit(left.rows[it->second], r));
        }
      }
    }
    return out;
  }

  // Classic sort-merge: sorts both inputs on the equi-keys and merges
  // duplicate blocks. Rows with NULL keys do not participate.
  template <typename EmitFn>
  Status SortMergeJoin(
      Batch& left, Batch& right,
      const std::vector<std::pair<size_t, size_t>>& key_positions,
      const EmitFn& emit) {
    auto key_compare = [&](const Row& a, const Row& b, bool a_left,
                           bool b_left) {
      for (auto [lp, rp] : key_positions) {
        const Value& va = a[a_left ? lp : rp];
        const Value& vb = b[b_left ? lp : rp];
        int c = va.Compare(vb);
        if (c != 0) return c;
      }
      return 0;
    };
    auto drop_null_keys = [&](std::vector<Row>* rows, bool is_left) {
      rows->erase(std::remove_if(rows->begin(), rows->end(),
                                 [&](const Row& r) {
                                   for (auto [lp, rp] : key_positions) {
                                     if (r[is_left ? lp : rp].is_null()) {
                                       return true;
                                     }
                                   }
                                   return false;
                                 }),
                  rows->end());
    };
    drop_null_keys(&left.rows, true);
    drop_null_keys(&right.rows, false);
    auto sort_side = [&](std::vector<Row>* rows, bool is_left) {
      std::sort(rows->begin(), rows->end(),
                [&](const Row& a, const Row& b) {
                  return key_compare(a, b, is_left, is_left) < 0;
                });
    };
    sort_side(&left.rows, true);
    sort_side(&right.rows, false);

    size_t i = 0, j = 0;
    while (i < left.rows.size() && j < right.rows.size()) {
      int c = key_compare(left.rows[i], right.rows[j], true, false);
      if (c < 0) {
        ++i;
      } else if (c > 0) {
        ++j;
      } else {
        // Duplicate blocks with equal keys on both sides.
        size_t i_end = i + 1;
        while (i_end < left.rows.size() &&
               key_compare(left.rows[i], left.rows[i_end], true, true) == 0) {
          ++i_end;
        }
        size_t j_end = j + 1;
        while (j_end < right.rows.size() &&
               key_compare(right.rows[j], right.rows[j_end], false, false) ==
                   0) {
          ++j_end;
        }
        for (size_t a = i; a < i_end; ++a) {
          for (size_t b = j; b < j_end; ++b) {
            CGQ_RETURN_NOT_OK(emit(left.rows[a], right.rows[b]));
          }
        }
        i = i_end;
        j = j_end;
      }
    }
    return Status::OK();
  }

  Result<Batch> ExecAggregate(const PlanNode& node) {
    CGQ_ASSIGN_OR_RETURN(Batch in, Exec(*node.child(0)));
    Batch out;
    out.layout = LayoutOf(node);

    std::vector<size_t> group_positions;
    for (AttrId g : node.group_ids) {
      size_t pos = in.layout.PositionOf(g);
      if (pos == RowLayout::kNotFound) {
        return Status::Internal("group key missing from aggregate input");
      }
      group_positions.push_back(pos);
    }

    struct GroupState {
      Row key;
      std::vector<AggAccumulator> accs;
    };
    std::unordered_map<RowKey, GroupState, RowKeyHash> groups;

    for (const Row& row : in.rows) {
      RowKey key;
      for (size_t p : group_positions) key.values.push_back(row[p]);
      auto it = groups.find(key);
      if (it == groups.end()) {
        GroupState state;
        state.key = key.values;
        for (const AggCall& call : node.agg_calls) {
          state.accs.emplace_back(call.fn);
        }
        it = groups.emplace(std::move(key), std::move(state)).first;
      }
      for (size_t i = 0; i < node.agg_calls.size(); ++i) {
        CGQ_ASSIGN_OR_RETURN(
            Value v, EvalExpr(*node.agg_calls[i].arg, row, in.layout));
        it->second.accs[i].Add(v);
      }
    }

    // SQL semantics: a global aggregate over an empty input yields one row.
    if (groups.empty() && node.group_ids.empty()) {
      GroupState state;
      for (const AggCall& call : node.agg_calls) {
        state.accs.emplace_back(call.fn);
      }
      groups.emplace(RowKey{}, std::move(state));
    }

    for (auto& [key, state] : groups) {
      Row row = state.key;
      for (const AggAccumulator& acc : state.accs) {
        row.push_back(acc.Finish());
      }
      out.rows.push_back(std::move(row));
    }
    return out;
  }

  Result<Batch> ExecUnion(const PlanNode& node) {
    Batch out;
    out.layout = LayoutOf(node);
    for (const PlanNodePtr& child : node.children()) {
      CGQ_ASSIGN_OR_RETURN(Batch b, Exec(*child));
      // Remap to the union's canonical attribute order.
      std::vector<size_t> positions;
      for (AttrId id : out.layout.attrs()) {
        size_t pos = b.layout.PositionOf(id);
        if (pos == RowLayout::kNotFound) {
          return Status::Internal("union branch misses attr " +
                                  std::to_string(id));
        }
        positions.push_back(pos);
      }
      for (const Row& row : b.rows) {
        Row mapped;
        mapped.reserve(positions.size());
        for (size_t p : positions) mapped.push_back(row[p]);
        out.rows.push_back(std::move(mapped));
      }
    }
    return out;
  }

  Result<Batch> ExecShip(const PlanNode& node) {
    CGQ_ASSIGN_OR_RETURN(Batch in, Exec(*node.child(0)));
    double bytes = 0;
    for (const Row& row : in.rows) {
      for (const Value& v : row) bytes += static_cast<double>(v.ByteSize());
    }
    metrics_->ships += 1;
    metrics_->rows_shipped += static_cast<int64_t>(in.rows.size());
    metrics_->bytes_shipped += bytes;
    metrics_->network_ms += net_->Cost(node.ship_from, node.ship_to, bytes);
    return in;
  }

  const TableStore* store_;
  const NetworkModel* net_;
  ExecMetrics* metrics_;
};

}  // namespace

Result<QueryResult> Executor::ExecutePlan(const PlanNode& plan) const {
  QueryResult result;
  PlanInterpreter interp(store_, net_, &result.metrics);
  CGQ_ASSIGN_OR_RETURN(Batch batch, interp.Exec(plan));
  for (const OutputCol& c : plan.outputs) result.column_names.push_back(c.name);
  result.rows = std::move(batch.rows);
  return result;
}

Result<QueryResult> Executor::Execute(const OptimizedQuery& query) const {
  CGQ_ASSIGN_OR_RETURN(QueryResult result, ExecutePlan(*query.plan));
  if (!query.order_by.empty()) {
    std::vector<std::pair<size_t, bool>> keys;  // (column index, desc)
    for (const OrderItemAst& item : query.order_by) {
      bool found = false;
      for (size_t i = 0; i < result.column_names.size(); ++i) {
        if (result.column_names[i] == item.name) {
          keys.emplace_back(i, item.descending);
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::Internal("ORDER BY column '" + item.name +
                                "' missing from result");
      }
    }
    std::stable_sort(result.rows.begin(), result.rows.end(),
                     [&](const Row& a, const Row& b) {
                       for (auto [idx, desc] : keys) {
                         const Value& va = a[idx];
                         const Value& vb = b[idx];
                         if (va.is_null() || vb.is_null()) {
                           if (va.is_null() != vb.is_null()) {
                             return desc ? !va.is_null() : va.is_null();
                           }
                           continue;
                         }
                         int c = va.Compare(vb);
                         if (c != 0) return desc ? c > 0 : c < 0;
                       }
                       return false;
                     });
  }
  if (query.limit && result.rows.size() > static_cast<size_t>(*query.limit)) {
    result.rows.resize(static_cast<size_t>(*query.limit));
  }
  return result;
}

}  // namespace cgq
