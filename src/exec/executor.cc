#include "exec/executor.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <unordered_map>

#include "common/logging.h"
#include "common/trace.h"
#include "exec/distributed_executor.h"
#include "exec/exec_internal.h"
#include "exec/fragment_executor.h"
#include "exec/spill_join.h"
#include "exec/vector/vector_executor.h"
#include "expr/eval.h"

namespace cgq {

using exec_internal::HashAggregator;
using exec_internal::JoinHashTable;
using exec_internal::JoinSpec;
using exec_internal::LayoutOf;
using exec_internal::PositionsOf;

const char* ExecModeToString(ExecMode mode) {
  switch (mode) {
    case ExecMode::kRow:
      return "row";
    case ExecMode::kFragment:
      return "fragment";
    case ExecMode::kVector:
      return "vector";
    case ExecMode::kDistributed:
      return "distributed";
  }
  return "?";
}

namespace {

class PlanInterpreter {
 public:
  PlanInterpreter(const TableStore* store, const NetworkModel* net,
                  const ExecutorOptions* options, ExecMetrics* metrics)
      : store_(store), net_(net), options_(options), metrics_(metrics) {}

  Result<RowBatch> Exec(const PlanNode& node) {
    CGQ_RETURN_NOT_OK(CheckCancelled());
    switch (node.kind()) {
      case PlanKind::kScan:
        return ExecScan(node);
      case PlanKind::kFilter:
        return ExecFilter(node);
      case PlanKind::kProject:
        return ExecProject(node);
      case PlanKind::kJoin:
        return ExecJoin(node);
      case PlanKind::kAggregate:
        return ExecAggregate(node);
      case PlanKind::kUnion:
        return ExecUnion(node);
      case PlanKind::kShip:
        return ExecShip(node);
    }
    return Status::Internal("unhandled plan kind");
  }

 private:
  Result<RowBatch> ExecScan(const PlanNode& node) {
    RowBatch out;
    out.layout = LayoutOf(node);
    if (store_->storage_mode() == StorageMode::kDisk) {
      // Disk mode: stream checksummed blocks instead of pinning the
      // fragment in RAM.
      CGQ_ASSIGN_OR_RETURN(TableStore::Cursor cursor,
                           store_->Scan(node.scan_location, node.table));
      out.rows.reserve(cursor.total_rows());
      std::vector<Row> chunk;
      while (true) {
        CGQ_ASSIGN_OR_RETURN(bool more, cursor.Next(&chunk));
        if (!more) break;
        CGQ_RETURN_NOT_OK(CheckCancelled());
        for (Row& r : chunk) out.rows.push_back(std::move(r));
      }
      metrics_->storage_blocks_read += cursor.blocks_read();
    } else {
      CGQ_ASSIGN_OR_RETURN(const std::vector<Row>* rows,
                           store_->Get(node.scan_location, node.table));
      out.rows = *rows;
    }
    metrics_->rows_scanned += static_cast<int64_t>(out.rows.size());
    for (const Row& r : out.rows) {
      if (r.size() != out.layout.size()) {
        return Status::Internal("stored row width mismatch for table '" +
                                node.table + "'");
      }
    }
    return out;
  }

  Result<RowBatch> ExecFilter(const PlanNode& node) {
    CGQ_ASSIGN_OR_RETURN(RowBatch in, Exec(*node.child(0)));
    RowBatch out;
    out.layout = in.layout;
    for (Row& row : in.rows) {
      CGQ_ASSIGN_OR_RETURN(
          bool keep, exec_internal::KeepRow(node.conjuncts, row, in.layout));
      if (keep) out.rows.push_back(std::move(row));
    }
    return out;
  }

  Result<RowBatch> ExecProject(const PlanNode& node) {
    CGQ_ASSIGN_OR_RETURN(RowBatch in, Exec(*node.child(0)));
    RowBatch out;
    out.layout = LayoutOf(node);
    CGQ_ASSIGN_OR_RETURN(
        std::vector<size_t> positions,
        PositionsOf(node.project_ids, in.layout, "projection input"));
    out.rows.reserve(in.rows.size());
    for (const Row& row : in.rows) {
      Row projected;
      projected.reserve(positions.size());
      for (size_t p : positions) projected.push_back(row[p]);
      out.rows.push_back(std::move(projected));
    }
    return out;
  }

  Result<RowBatch> ExecJoin(const PlanNode& node) {
    CGQ_ASSIGN_OR_RETURN(RowBatch left, Exec(*node.child(0)));
    CGQ_ASSIGN_OR_RETURN(RowBatch right, Exec(*node.child(1)));
    CGQ_ASSIGN_OR_RETURN(JoinSpec spec,
                         JoinSpec::Make(node, left.layout, right.layout));

    RowBatch out;
    out.layout = LayoutOf(node);

    if (spec.RequiresNestedLoop() ||
        node.join_method == JoinMethod::kNestedLoop) {
      for (const Row& l : left.rows) {
        CGQ_RETURN_NOT_OK(CheckCancelled());
        for (const Row& r : right.rows) {
          CGQ_RETURN_NOT_OK(spec.EmitIfMatch(l, r, &out.rows).status());
        }
      }
    } else if (node.join_method == JoinMethod::kSortMerge) {
      CGQ_RETURN_NOT_OK(exec_internal::SortMergeJoin(
          left.rows, right.rows, spec.key_positions,
          [&](const Row& l, const Row& r) {
            return spec.EmitIfMatch(l, r, &out.rows).status();
          }));
    } else {
      const double build_bytes = left.ByteSize();
      metrics_->max_build_bytes = std::max(
          metrics_->max_build_bytes, static_cast<int64_t>(build_bytes));
      if (options_->memory_budget_bytes > 0 &&
          build_bytes > static_cast<double>(options_->memory_budget_bytes)) {
        // Build side over budget: grace/partitioned spill join. Output
        // is byte-identical to the in-memory hash path below.
        CGQ_RETURN_NOT_OK(SpillJoin(spec, left.rows, right.rows,
                                    static_cast<uint64_t>(build_bytes),
                                    &out.rows));
      } else {
        JoinHashTable table;
        table.Build(left.rows, spec);
        size_t probed = 0;
        for (const Row& r : right.rows) {
          if ((probed++ & 0x3ff) == 0) CGQ_RETURN_NOT_OK(CheckCancelled());
          CGQ_RETURN_NOT_OK(table.Probe(r, spec, [&](const Row& l) {
            return spec.EmitIfMatch(l, r, &out.rows).status();
          }));
        }
      }
    }
    return out;
  }

  Status SpillJoin(const JoinSpec& spec, const std::vector<Row>& build,
                   const std::vector<Row>& probe, uint64_t build_bytes,
                   std::vector<Row>* out) {
    exec_internal::SpillHashJoin join(
        &spec,
        exec_internal::SpillHashJoin::MakeSpillDir(options_->spill_dir),
        exec_internal::SpillHashJoin::PickPartitions(
            build_bytes, options_->memory_budget_bytes),
        options_->cancel.get());
    CGQ_RETURN_NOT_OK(join.Init());
    for (const Row& row : build) CGQ_RETURN_NOT_OK(join.AddBuild(row));
    for (const Row& row : probe) CGQ_RETURN_NOT_OK(join.AddProbe(row));
    CGQ_RETURN_NOT_OK(join.Finish([&](Row row) {
      out->push_back(std::move(row));
      return Status::OK();
    }));
    metrics_->spill_partitions += join.partitions();
    metrics_->spill_bytes += join.spill_bytes();
    return Status::OK();
  }

  Result<RowBatch> ExecAggregate(const PlanNode& node) {
    CGQ_ASSIGN_OR_RETURN(RowBatch in, Exec(*node.child(0)));
    RowBatch out;
    out.layout = LayoutOf(node);
    HashAggregator agg(&node);
    CGQ_RETURN_NOT_OK(agg.Init(in.layout));
    for (const Row& row : in.rows) {
      CGQ_RETURN_NOT_OK(agg.Add(row));
    }
    out.rows = agg.Finish();
    return out;
  }

  Result<RowBatch> ExecUnion(const PlanNode& node) {
    RowBatch out;
    out.layout = LayoutOf(node);
    for (const PlanNodePtr& child : node.children()) {
      CGQ_ASSIGN_OR_RETURN(RowBatch b, Exec(*child));
      // Remap to the union's canonical attribute order.
      CGQ_ASSIGN_OR_RETURN(
          std::vector<size_t> positions,
          PositionsOf(out.layout.attrs(), b.layout, "union branch"));
      for (const Row& row : b.rows) {
        Row mapped;
        mapped.reserve(positions.size());
        for (size_t p : positions) mapped.push_back(row[p]);
        out.rows.push_back(std::move(mapped));
      }
    }
    return out;
  }

  Result<RowBatch> ExecShip(const PlanNode& node) {
    CGQ_ASSIGN_OR_RETURN(RowBatch in, Exec(*node.child(0)));
    // Route the one-message transfer through a ShipChannel so both
    // backends share the fault simulation, retry and accounting
    // semantics (the intermediate moves through, no copy). A failed
    // transfer — link down, retries exhausted — aborts the query with
    // the channel's structured status, never a partial result.
    RowLayout layout = in.layout;
    ShipChannel channel(node.ship_from, node.ship_to, /*capacity=*/0,
                        net_, options_->retry);
    CGQ_RETURN_NOT_OK(channel.Send(std::move(in)));
    channel.CloseProducer();
    RowBatch out;
    if (!channel.Pop(&out)) {
      out = RowBatch();
      out.layout = std::move(layout);
    }

    ChannelStats edge = channel.stats();
    metrics_->ships += 1;
    metrics_->rows_shipped += edge.rows;
    metrics_->bytes_shipped += edge.bytes;
    metrics_->network_ms += edge.network_ms;
    metrics_->send_retries += edge.send_retries;
    metrics_->dropped_batches += edge.dropped_batches;
    metrics_->send_timeouts += edge.send_timeouts;
    metrics_->recv_timeouts += edge.recv_timeouts;
    metrics_->backoff_ms += edge.backoff_ms;
    metrics_->edges.push_back(edge);
    return out;
  }

  Status CheckCancelled() const {
    if (options_->cancel != nullptr &&
        options_->cancel->load(std::memory_order_relaxed)) {
      return Status::Cancelled("query cancelled");
    }
    return Status::OK();
  }

  const TableStore* store_;
  const NetworkModel* net_;
  const ExecutorOptions* options_;
  ExecMetrics* metrics_;
};

}  // namespace

std::string FormatPhaseTimings(const OptimizationStats& opt,
                               const ExecMetrics& metrics) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  os << "timing: optimize " << opt.total_ms << " ms (parse+bind "
     << opt.prepare_ms << ", explore " << opt.explore_ms << ", annotate "
     << opt.annotate_ms << ", site " << opt.site_ms << ")";
  if (metrics.exec_wall_ms > 0) {
    os << ", execute " << metrics.exec_wall_ms << " ms (simulated WAN "
       << metrics.network_ms << " ms)";
  }
  os << "\n";
  if (opt.cache_consulted) {
    os << "plan cache: "
       << (opt.cache_hit ? (opt.cache_param_hit ? "hit (parameterized)"
                                                : "hit (exact)")
                         : "miss")
       << ", epoch "
       << opt.policy_epoch << ", " << opt.cache_entries << " entr"
       << (opt.cache_entries == 1 ? "y" : "ies") << " / "
       << opt.cache_bytes / 1024.0 << " KB resident\n";
  }
  return os.str();
}

std::string FormatExecMetrics(const ExecMetrics& metrics,
                              const LocationCatalog* locations) {
  auto site_name = [&](LocationId l) {
    return locations != nullptr ? locations->GetName(l)
                                : "l" + std::to_string(l);
  };
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(1);
  os << "execution: " << metrics.rows_scanned << " rows scanned, "
     << metrics.ships << " ship edge(s), " << metrics.rows_shipped
     << " rows / " << metrics.bytes_shipped / 1024.0
     << " KB shipped, simulated WAN time " << metrics.network_ms << " ms\n";
  if (metrics.send_retries != 0 || metrics.dropped_batches != 0 ||
      metrics.send_timeouts != 0 || metrics.recv_timeouts != 0 ||
      metrics.fragment_restarts != 0) {
    os << "recovery: " << metrics.send_retries << " send retr"
       << (metrics.send_retries == 1 ? "y" : "ies") << ", "
       << metrics.dropped_batches << " dropped batch(es), "
       << metrics.send_timeouts + metrics.recv_timeouts << " timeout(s), "
       << metrics.fragment_restarts << " fragment restart(s), "
       << metrics.backoff_ms << " ms backoff (shipped volume includes "
       << "reattempts)\n";
  }
  if (metrics.storage_blocks_read != 0 || metrics.spill_partitions != 0 ||
      metrics.spill_bytes != 0) {
    os << "storage: " << metrics.storage_blocks_read
       << " block(s) read, " << metrics.spill_partitions
       << " spill partition(s), " << metrics.spill_bytes / 1024.0
       << " KB spilled\n";
  }
  for (const ChannelStats& e : metrics.edges) {
    os << "  ship " << site_name(e.from) << " -> " << site_name(e.to)
       << ": " << e.rows << " rows / " << e.bytes / 1024.0 << " KB in "
       << e.batches << " batch(es), peak " << e.peak_in_flight
       << " in flight, " << e.network_ms << " net ms";
    if (e.send_retries != 0 || e.dropped_batches != 0) {
      os << ", " << e.send_retries << " retr"
         << (e.send_retries == 1 ? "y" : "ies") << " / "
         << e.dropped_batches << " dropped";
    }
    os << "\n";
  }
  for (const FragmentMetrics& f : metrics.fragments) {
    os << "  fragment #" << f.id << " @ " << site_name(f.site) << ": "
       << f.wall_ms << " ms wall, " << f.rows_scanned << " rows scanned, "
       << f.rows_out << " rows out";
    if (f.restarts != 0) os << ", " << f.restarts << " restart(s)";
    os << "\n";
  }
  return os.str();
}

Result<QueryResult> Executor::ExecutePlan(const PlanNode& plan) const {
  if (options_.mode == ExecMode::kFragment) {
    return ExecuteFragmentedPlan(plan, store_, net_, options_);
  }
  if (options_.mode == ExecMode::kVector) {
    return ExecuteVectorPlan(plan, store_, net_, options_);
  }
  if (options_.mode == ExecMode::kDistributed) {
    return ExecuteDistributedPlan(plan, store_, net_, options_);
  }
  QueryResult result;
  PlanInterpreter interp(store_, net_, &options_, &result.metrics);
  CGQ_ASSIGN_OR_RETURN(RowBatch batch, interp.Exec(plan));
  for (const OutputCol& c : plan.outputs) result.column_names.push_back(c.name);
  result.rows = std::move(batch.rows);
  return result;
}

Result<QueryResult> Executor::Execute(const OptimizedQuery& query) const {
  auto start = std::chrono::steady_clock::now();
  TraceSpan span("execute");
  span.AddArg("mode", std::string(ExecModeToString(options_.mode)));
  CGQ_ASSIGN_OR_RETURN(QueryResult result, ExecutePlan(*query.plan));
  if (!query.order_by.empty()) {
    std::vector<std::pair<size_t, bool>> keys;  // (column index, desc)
    for (const OrderItemAst& item : query.order_by) {
      bool found = false;
      for (size_t i = 0; i < result.column_names.size(); ++i) {
        if (result.column_names[i] == item.name) {
          keys.emplace_back(i, item.descending);
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::Internal("ORDER BY column '" + item.name +
                                "' missing from result");
      }
    }
    std::stable_sort(result.rows.begin(), result.rows.end(),
                     [&](const Row& a, const Row& b) {
                       for (auto [idx, desc] : keys) {
                         const Value& va = a[idx];
                         const Value& vb = b[idx];
                         if (va.is_null() || vb.is_null()) {
                           if (va.is_null() != vb.is_null()) {
                             return desc ? !va.is_null() : va.is_null();
                           }
                           continue;
                         }
                         int c = va.Compare(vb);
                         if (c != 0) return desc ? c > 0 : c < 0;
                       }
                       return false;
                     });
  }
  if (query.limit && result.rows.size() > static_cast<size_t>(*query.limit)) {
    result.rows.resize(static_cast<size_t>(*query.limit));
  }
  result.opt_stats = query.stats;
  result.metrics.exec_wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  // Span arguments stay deterministic: only simulated / counted values,
  // never real wall time.
  span.AddArg("ships", result.metrics.ships);
  span.AddArg("rows_shipped", result.metrics.rows_shipped);
  span.AddArg("bytes_shipped", result.metrics.bytes_shipped);
  span.AddArg("rows_scanned", result.metrics.rows_scanned);
  span.AddArg("send_retries", result.metrics.send_retries);
  span.AddArg("network_ms", result.metrics.network_ms);
  CGQ_COUNTER_ADD("exec.queries", 1);
  CGQ_COUNTER_ADD("exec.ships", result.metrics.ships);
  CGQ_COUNTER_ADD("exec.rows_shipped", result.metrics.rows_shipped);
  CGQ_COUNTER_ADD("exec.bytes_shipped",
                  static_cast<int64_t>(result.metrics.bytes_shipped));
  CGQ_COUNTER_ADD("exec.rows_scanned", result.metrics.rows_scanned);
  CGQ_COUNTER_ADD("exec.send_retries", result.metrics.send_retries);
  CGQ_COUNTER_ADD("exec.dropped_batches", result.metrics.dropped_batches);
  CGQ_COUNTER_ADD("exec.timeouts", result.metrics.send_timeouts +
                                       result.metrics.recv_timeouts);
  CGQ_COUNTER_ADD("exec.fragment_restarts",
                  result.metrics.fragment_restarts);
  // storage.blocks_read / storage.spill_* registry counters are bumped at
  // the cursor / spill-file write sites; here only the span is annotated.
  span.AddArg("storage_blocks_read", result.metrics.storage_blocks_read);
  span.AddArg("spill_partitions", result.metrics.spill_partitions);
  return result;
}

}  // namespace cgq
