#include "exec/distributed_executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <iterator>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "exec/batch_ops.h"
#include "exec/channel.h"
#include "exec/fragmenter.h"
#include "net/cluster_client.h"
#include "net/socket.h"
#include "net/wire_protocol.h"

namespace cgq {

using exec_internal::CheckCancelled;

namespace {

/// Shared state of one distributed execution (the coordinator-side twin
/// of the fragmented runtime's RunState).
struct RunState {
  const ExecutorOptions* options = nullptr;
  const FragmentedPlan* fp = nullptr;
  std::vector<std::unique_ptr<ShipChannel>> channels;
  std::atomic<bool> failed{false};

  std::mutex error_mu;
  Status first_error;

  void Fail(const Status& status) {
    {
      std::lock_guard<std::mutex> lock(error_mu);
      if (first_error.ok()) first_error = status;
    }
    failed.store(true, std::memory_order_release);
    for (auto& ch : channels) ch->Abort(status);
  }

  Status FirstError() {
    std::lock_guard<std::mutex> lock(error_mu);
    return first_error;
  }
};

/// Client-side frame send with the socket fault injection sites. These
/// mirror the in-process "channel.send"-style failpoints at the wire
/// level: a reset drops the connection before any byte, a partial write
/// leaves the server holding a truncated frame (it sees EOF mid-frame
/// when the coordinator abandons the connection).
Status SendFrameFp(const net::Socket& socket, wire::FrameType type,
                   const std::string& payload, int timeout_ms) {
  if (CGQ_FAILPOINT("net.client.send")) {
    return Status::Unavailable(
        "injected failure: connection reset during send");
  }
  std::string frame = wire::EncodeFrame(type, payload);
  if (CGQ_FAILPOINT("net.client.partial_write")) {
    (void)socket.SendAll(frame.data(), frame.size() / 2, timeout_ms);
    return Status::Unavailable("injected failure: partial frame write");
  }
  return socket.SendAll(frame.data(), frame.size(), timeout_ms);
}

Result<net::Frame> RecvFrameFp(const net::Socket& socket,
                               int timeout_ms) {
  if (CGQ_FAILPOINT("net.client.recv")) {
    return Status::Unavailable("injected failure: recv timed out");
  }
  return net::RecvFrame(socket, timeout_ms);
}

/// One fragment attempt against its location server: dial, dispatch,
/// relay the input channels, stream the output back through the
/// in-process channel (or into the final result).
Status RunRemoteFragment(const PlanFragment& fragment, RunState* st,
                         FragmentMetrics* fm,
                         std::vector<Row>* result_rows) {
  // Same site as the in-process runtime fires before starting a
  // fragment, so armed "fragment.start" policies hit both backends
  // identically.
  if (CGQ_FAILPOINT("fragment.start")) {
    return Status::Unavailable("injected failure: fragment #" +
                               std::to_string(fragment.id) +
                               " died at start");
  }
  const ExecutorOptions& options = *st->options;
  const int send_timeout =
      net::EffectiveTimeoutMs(options.retry.send_timeout_ms);
  const int recv_timeout =
      net::EffectiveTimeoutMs(options.retry.recv_timeout_ms);

  CGQ_ASSIGN_OR_RETURN(
      net::Socket socket,
      options.cluster->Dial(fragment.site, send_timeout));

  wire::StartFragment start;
  start.fragment_id = fragment.id;
  start.site = fragment.site;
  start.batch_size =
      static_cast<uint32_t>(std::max(1, options.batch_size));
  if (fragment.ship != nullptr) {
    start.has_output_ship = true;
    start.ship_to = fragment.ship->ship_to;
    start.ship_trait_bits = fragment.ship->ship_trait.bits();
  }
  // Non-owning alias: Encode only reads the tree, which the plan owns.
  start.root = PlanNodePtr(PlanNodePtr(),
                           const_cast<PlanNode*>(fragment.root));
  CGQ_ASSIGN_OR_RETURN(std::string start_payload,
                       start.Encode(st->fp->channel_of_ship));
  CGQ_RETURN_NOT_OK(SendFrameFp(socket, wire::FrameType::kStartFragment,
                                start_payload, send_timeout));

  // The server re-checks placement before acknowledging; a compliance
  // refusal comes back as a typed kError, a simulated crash as a dropped
  // connection (kUnavailable).
  CGQ_ASSIGN_OR_RETURN(net::Frame ack,
                       RecvFrameFp(socket, recv_timeout));
  if (ack.type == wire::FrameType::kError) {
    CGQ_ASSIGN_OR_RETURN(wire::ErrorMsg err,
                         wire::ErrorMsg::Decode(ack.payload));
    return err.ToStatus();
  }
  if (ack.type != wire::FrameType::kStartAck) {
    return Status::InvalidArgument(
        "expected StartAck, got " +
        std::string(wire::FrameTypeToString(ack.type)));
  }

  // Relay every input channel to the server: whatever the in-process
  // channel delivers (post fault-injection, retries and replays) is what
  // the remote operator tree consumes. Relays run on their own threads
  // because under the pipelined schedule the producers are still live.
  std::mutex send_mu;
  std::mutex relay_mu;
  Status relay_error;
  auto relay = [&](int channel_id) {
    ShipChannel* channel = st->channels[channel_id].get();
    Status s = [&]() -> Status {
      while (true) {
        RowBatch batch;
        CGQ_ASSIGN_OR_RETURN(bool got, channel->Recv(&batch));
        if (!got) break;
        wire::InputBatch msg;
        msg.channel = channel_id;
        msg.batch = std::move(batch);
        std::lock_guard<std::mutex> lock(send_mu);
        CGQ_RETURN_NOT_OK(SendFrameFp(socket,
                                      wire::FrameType::kInputBatch,
                                      msg.Encode(), send_timeout));
      }
      wire::InputEnd end;
      end.channel = channel_id;
      std::lock_guard<std::mutex> lock(send_mu);
      return SendFrameFp(socket, wire::FrameType::kInputEnd,
                         end.Encode(), send_timeout);
    }();
    if (!s.ok()) {
      {
        std::lock_guard<std::mutex> lock(relay_mu);
        if (relay_error.ok()) relay_error = s;
      }
      if (!channel->abort_status().ok()) s = channel->abort_status();
      // Wake the server out of its input wait so its error (or our
      // closed connection) unblocks the output loop below.
      std::lock_guard<std::mutex> lock(send_mu);
      (void)SendFrameFp(socket, wire::FrameType::kCancel, std::string(),
                        send_timeout);
    }
  };
  std::vector<std::thread> relays;
  relays.reserve(fragment.input_channels.size());
  for (int channel_id : fragment.input_channels) {
    relays.emplace_back(relay, channel_id);
  }
  auto join_relays = [&] {
    for (std::thread& t : relays) {
      if (t.joinable()) t.join();
    }
  };

  // Stream the fragment's output back.
  const std::atomic<bool>* cancel = options.cancel.get();
  ShipChannel* out = fragment.output_channel >= 0
                         ? st->channels[fragment.output_channel].get()
                         : nullptr;
  Status s = [&]() -> Status {
    while (true) {
      CGQ_RETURN_NOT_OK(CheckCancelled(cancel));
      // Distinct site from net.client.recv: this one only fires inside
      // the output stream (after StartAck), modelling a connection reset
      // mid-stream rather than a dead server.
      if (CGQ_FAILPOINT("net.client.recv.stream")) {
        return Status::Unavailable(
            "injected failure: connection reset mid-stream");
      }
      CGQ_ASSIGN_OR_RETURN(net::Frame frame,
                           RecvFrameFp(socket, recv_timeout));
      switch (frame.type) {
        case wire::FrameType::kOutputBatch: {
          CGQ_ASSIGN_OR_RETURN(wire::OutputBatch msg,
                               wire::OutputBatch::Decode(frame.payload));
          fm->rows_out += static_cast<int64_t>(msg.batch.NumRows());
          if (out != nullptr) {
            CGQ_RETURN_NOT_OK(out->Send(std::move(msg.batch)));
          } else {
            result_rows->insert(
                result_rows->end(),
                std::make_move_iterator(msg.batch.rows.begin()),
                std::make_move_iterator(msg.batch.rows.end()));
          }
          break;
        }
        case wire::FrameType::kOutputEnd: {
          CGQ_ASSIGN_OR_RETURN(wire::OutputEnd msg,
                               wire::OutputEnd::Decode(frame.payload));
          fm->rows_scanned += msg.rows_scanned;
          return Status::OK();
        }
        case wire::FrameType::kError: {
          CGQ_ASSIGN_OR_RETURN(wire::ErrorMsg err,
                               wire::ErrorMsg::Decode(frame.payload));
          return err.ToStatus();
        }
        default:
          return Status::InvalidArgument(
              "unexpected frame " +
              std::string(wire::FrameTypeToString(frame.type)) +
              " in fragment output stream");
      }
    }
  }();
  if (!s.ok()) {
    // Dropping the connection aborts the server-side session; the relays
    // unblock via the channel abort that our caller will issue (or have
    // already issued).
    socket.Close();
  }
  join_relays();
  if (s.ok()) {
    std::lock_guard<std::mutex> lock(relay_mu);
    if (!relay_error.ok()) s = relay_error;
  }
  if (s.ok() && out != nullptr) out->CloseProducer();
  return s;
}

}  // namespace

Result<QueryResult> ExecuteDistributedPlan(const PlanNode& plan,
                                           const TableStore* store,
                                           const NetworkModel* net,
                                           const ExecutorOptions& options) {
  (void)store;  // the coordinator reads no base data; servers hold it
  if (options.cluster == nullptr || !options.cluster->connected()) {
    return Status::InvalidArgument(
        "distributed execution requires a connected cluster "
        "(ExecutorOptions::cluster)");
  }
  FragmentedPlan fp = FragmentPlan(plan);
  const size_t n = fp.fragments.size();
  for (const PlanFragment& fragment : fp.fragments) {
    if (!options.cluster->HasServer(fragment.site)) {
      return Status::InvalidArgument(
          "no server mapped for location l" +
          std::to_string(fragment.site));
    }
  }

  // Scheduling mirrors the fragmented runtime: sequential bottom-up with
  // buffering channels, or one coordinator thread per fragment with
  // bounded channels. (The operator trees themselves always run
  // concurrently on the servers; "sequential" refers to the coordinator's
  // dispatch/relay schedule.)
  const bool sequential =
      options.threads == 1 || n == 1 || ThreadPool::InWorkerThread();

  RunState st;
  st.options = &options;
  st.fp = &fp;
  TraceSession* trace = TraceSession::Current();
  int64_t trace_parent = TraceSession::CurrentSpanId();
  CGQ_GAUGE_SET("exec.fragments", static_cast<int64_t>(n));
  const size_t capacity =
      sequential ? 0
                 : static_cast<size_t>(std::max(0, options.channel_capacity));
  st.channels.reserve(fp.num_channels());
  for (const PlanNode* ship : fp.ship_of_channel) {
    st.channels.push_back(std::make_unique<ShipChannel>(
        ship->ship_from, ship->ship_to, capacity, net, options.retry));
  }

  std::vector<FragmentMetrics> fmetrics(n);
  std::vector<Row> result_rows;

  auto run = [&](size_t i) {
    auto start = std::chrono::steady_clock::now();
    const PlanFragment& fragment = fp.fragments[i];
    FragmentMetrics& fm = fmetrics[i];
    fm.id = fragment.id;
    fm.site = fragment.site;
    ScopedTraceContext trace_ctx(trace, trace_parent,
                                 /*track=*/static_cast<int>(i) + 1);
    TraceSpan fragment_span("fragment", /*ordinal=*/static_cast<int>(i));
    fragment_span.AddArg("id", fragment.id);
    fragment_span.AddArg("site", static_cast<int64_t>(fragment.site));
    // Same recovery contract as the in-process runtime: only source
    // fragments restart, every attempt re-checks placement on the
    // coordinator AND on the receiving server, and the output channel
    // replays so the consumer sees each row exactly once.
    const bool restartable = fragment.input_channels.empty();
    const size_t result_base = result_rows.size();
    Status s;
    for (int attempt = 0;; ++attempt) {
      s = CheckFragmentPlacement(fragment);
      if (s.ok()) s = RunRemoteFragment(fragment, &st, &fm, &result_rows);
      if (s.ok() || !s.IsUnavailable() || !restartable ||
          attempt >= options.retry.max_retries ||
          st.failed.load(std::memory_order_acquire)) {
        break;
      }
      fm.restarts += 1;
      if (fragment.output_channel >= 0) {
        st.channels[fragment.output_channel]->BeginReplay();
      } else {
        result_rows.resize(result_base);
      }
    }
    fm.wall_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
    fragment_span.AddArg("rows_out", fm.rows_out);
    fragment_span.AddArg("rows_scanned", fm.rows_scanned);
    fragment_span.AddArg("restarts", fm.restarts);
    if (!s.ok()) st.Fail(s);
  };

  if (sequential) {
    for (size_t i = 0; i < n; ++i) {
      run(i);
      if (st.failed.load()) break;
    }
  } else {
    ThreadPool pool(n - 1);
    pool.ParallelFor(n, n, run);
  }

  if (st.failed.load(std::memory_order_acquire)) {
    return st.FirstError();
  }

  QueryResult result;
  for (const OutputCol& c : plan.outputs) {
    result.column_names.push_back(c.name);
  }
  result.rows = std::move(result_rows);

  ExecMetrics& m = result.metrics;
  for (const auto& channel : st.channels) {
    ChannelStats stats = channel->stats();
    m.ships += 1;
    m.rows_shipped += stats.rows;
    m.bytes_shipped += stats.bytes;
    m.network_ms += stats.network_ms;
    m.send_retries += stats.send_retries;
    m.dropped_batches += stats.dropped_batches;
    m.send_timeouts += stats.send_timeouts;
    m.recv_timeouts += stats.recv_timeouts;
    m.backoff_ms += stats.backoff_ms;
    m.edges.push_back(stats);
  }
  for (const FragmentMetrics& fm : fmetrics) {
    m.rows_scanned += fm.rows_scanned;
    m.fragment_restarts += fm.restarts;
  }
  m.fragments = std::move(fmetrics);
  return result;
}

}  // namespace cgq
