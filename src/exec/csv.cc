#include "exec/csv.h"

#include <cstdlib>

#include "types/date.h"

namespace cgq {

namespace {

// Splits one CSV record; supports quoted fields with "" escapes. Returns
// the fields and whether each was quoted (quoted empty = empty string,
// unquoted empty = NULL).
void SplitRecord(const std::string& line, std::vector<std::string>* fields,
                 std::vector<bool>* quoted) {
  fields->clear();
  quoted->clear();
  std::string current;
  bool in_quotes = false;
  bool was_quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
      was_quoted = true;
    } else if (c == ',') {
      fields->push_back(current);
      quoted->push_back(was_quoted);
      current.clear();
      was_quoted = false;
    } else {
      current += c;
    }
  }
  fields->push_back(current);
  quoted->push_back(was_quoted);
}

Result<Value> ParseField(const std::string& field, bool was_quoted,
                         DataType type, int line_no) {
  if (field.empty() && !was_quoted) return Value::Null();
  auto err = [&](const char* what) {
    return Status::InvalidArgument("CSV line " + std::to_string(line_no) +
                                   ": bad " + what + " value '" + field +
                                   "'");
  };
  switch (type) {
    case DataType::kInt64: {
      char* end = nullptr;
      long long v = std::strtoll(field.c_str(), &end, 10);
      if (end == field.c_str() || *end != '\0') return err("int64");
      return Value::Int64(v);
    }
    case DataType::kDouble: {
      char* end = nullptr;
      double v = std::strtod(field.c_str(), &end);
      if (end == field.c_str() || *end != '\0') return err("double");
      return Value::Double(v);
    }
    case DataType::kDate: {
      auto days = ParseDate(field);
      if (!days.ok()) return err("date");
      return Value::Date(*days);
    }
    case DataType::kString:
      return Value::String(field);
  }
  return err("typed");
}

}  // namespace

Result<size_t> LoadCsv(const Catalog& catalog, const std::string& table,
                       LocationId location, const std::string& csv_text,
                       TableStore* store) {
  CGQ_ASSIGN_OR_RETURN(const TableDef* def, catalog.GetTable(table));
  if (!def->LocationsOf().Contains(location)) {
    return Status::InvalidArgument("table '" + def->name +
                                   "' has no fragment at location " +
                                   std::to_string(location));
  }
  const size_t num_columns = def->schema.num_columns();

  size_t loaded = 0;
  std::vector<std::string> fields;
  std::vector<bool> quoted;
  size_t start = 0;
  int line_no = 0;
  while (start <= csv_text.size()) {
    size_t end = csv_text.find('\n', start);
    std::string line = csv_text.substr(
        start, end == std::string::npos ? std::string::npos : end - start);
    start = end == std::string::npos ? csv_text.size() + 1 : end + 1;
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;

    SplitRecord(line, &fields, &quoted);
    if (fields.size() != num_columns) {
      return Status::InvalidArgument(
          "CSV line " + std::to_string(line_no) + ": expected " +
          std::to_string(num_columns) + " fields, got " +
          std::to_string(fields.size()));
    }
    Row row;
    row.reserve(num_columns);
    for (size_t c = 0; c < num_columns; ++c) {
      CGQ_ASSIGN_OR_RETURN(
          Value v, ParseField(fields[c], quoted[c],
                              def->schema.column(c).type, line_no));
      row.push_back(std::move(v));
    }
    store->Append(location, def->name, std::move(row));
    ++loaded;
  }
  return loaded;
}

}  // namespace cgq
