#ifndef CGQ_EXEC_EXEC_INTERNAL_H_
#define CGQ_EXEC_EXEC_INTERNAL_H_

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "exec/batch.h"
#include "expr/eval.h"
#include "plan/plan_node.h"

namespace cgq {
namespace exec_internal {

/// Shared operator machinery of the executor backends. The row
/// interpreter and the fragmented runtime both delegate here so that they
/// produce byte-identical results in identical row order, which the
/// equivalence tests assert. The columnar vectorized backend
/// (exec/vector/) re-implements the same operators against typed columns;
/// it can only be validated byte-for-byte because the orders below are
/// *defined*, not accidents of standard-library hash containers:
///
///  - Hash join: probe rows in input order; per probe row, matching build
///    rows in build (insertion) order.
///  - Aggregation: groups emitted in first-seen order of their keys.
///
/// (See DESIGN.md §12, "the row-reference validation contract".)

/// Layout of an operator's output rows.
RowLayout LayoutOf(const PlanNode& node);

/// Hash-table key wrapper with structural row equality.
struct RowKey {
  Row values;
  bool operator==(const RowKey& other) const {
    return RowsStructurallyEqual(values, other.values);
  }
};
struct RowKeyHash {
  size_t operator()(const RowKey& k) const { return HashRow(k.values); }
};

/// Positions of `ids` inside `layout`; error mentions `context` when an
/// attribute is missing.
Result<std::vector<size_t>> PositionsOf(const std::vector<AttrId>& ids,
                                        const RowLayout& layout,
                                        const char* context);

/// True when the row passes every conjunct (NULL-rejecting).
Result<bool> KeepRow(const std::vector<ExprPtr>& conjuncts, const Row& row,
                     const RowLayout& layout);

/// A join's physical recipe against concrete child layouts: equi-key
/// positions usable for hashing/merging, residual conjuncts, and the
/// mapping from the concatenated (left ++ right) row to the node's
/// canonical output order.
struct JoinSpec {
  std::vector<std::pair<size_t, size_t>> key_positions;  // (left, right)
  std::vector<ExprPtr> residual;
  RowLayout combined;                // left ++ right
  std::vector<size_t> out_positions; // combined position per output attr
  JoinMethod method = JoinMethod::kHash;

  static Result<JoinSpec> Make(const PlanNode& node, const RowLayout& left,
                               const RowLayout& right);

  /// True when nested-loop is required (no usable equi-keys).
  bool RequiresNestedLoop() const { return key_positions.empty(); }

  /// Applies the residual conjuncts to l ++ r; on success appends the
  /// reordered output row to `*out` and returns true.
  Result<bool> EmitIfMatch(const Row& l, const Row& r,
                           std::vector<Row>* out) const;
};

/// Build/probe hash table over the left input of an equi-join. Building
/// inserts left rows in index order; Probe emits matches in build order
/// per key (the defined order every backend must reproduce).
class JoinHashTable {
 public:
  void Build(const std::vector<Row>& left, const JoinSpec& spec);

  /// Invokes `fn(left_row)` for every left row whose keys match
  /// `right_row` (skipping NULL keys), in build (insertion) order.
  template <typename Fn>
  Status Probe(const Row& right_row, const JoinSpec& spec,
               const Fn& fn) const {
    RowKey key;
    bool has_null = false;
    for (auto [lp, rp] : spec.key_positions) {
      has_null |= right_row[rp].is_null();
      key.values.push_back(right_row[rp]);
    }
    if (has_null) return Status::OK();
    auto it = table_.find(key);
    if (it == table_.end()) return Status::OK();
    for (size_t index : it->second) {
      CGQ_RETURN_NOT_OK(fn((*left_)[index]));
    }
    return Status::OK();
  }

 private:
  const std::vector<Row>* left_ = nullptr;
  /// Key -> left row indices in build order.
  std::unordered_map<RowKey, std::vector<size_t>, RowKeyHash> table_;
};

/// Classic sort-merge: sorts both inputs on the equi-keys and merges
/// duplicate blocks. Rows with NULL keys do not participate. `emit` is
/// `Status(const Row& left, const Row& right)`.
template <typename EmitFn>
Status SortMergeJoin(std::vector<Row>& left, std::vector<Row>& right,
                     const std::vector<std::pair<size_t, size_t>>& keys,
                     const EmitFn& emit) {
  auto key_compare = [&](const Row& a, const Row& b, bool a_left,
                         bool b_left) {
    for (auto [lp, rp] : keys) {
      const Value& va = a[a_left ? lp : rp];
      const Value& vb = b[b_left ? lp : rp];
      int c = va.Compare(vb);
      if (c != 0) return c;
    }
    return 0;
  };
  auto drop_null_keys = [&](std::vector<Row>* rows, bool is_left) {
    rows->erase(std::remove_if(rows->begin(), rows->end(),
                               [&](const Row& r) {
                                 for (auto [lp, rp] : keys) {
                                   if (r[is_left ? lp : rp].is_null()) {
                                     return true;
                                   }
                                 }
                                 return false;
                               }),
                rows->end());
  };
  drop_null_keys(&left, true);
  drop_null_keys(&right, false);
  auto sort_side = [&](std::vector<Row>* rows, bool is_left) {
    std::sort(rows->begin(), rows->end(), [&](const Row& a, const Row& b) {
      return key_compare(a, b, is_left, is_left) < 0;
    });
  };
  sort_side(&left, true);
  sort_side(&right, false);

  size_t i = 0, j = 0;
  while (i < left.size() && j < right.size()) {
    int c = key_compare(left[i], right[j], true, false);
    if (c < 0) {
      ++i;
    } else if (c > 0) {
      ++j;
    } else {
      // Duplicate blocks with equal keys on both sides.
      size_t i_end = i + 1;
      while (i_end < left.size() &&
             key_compare(left[i], left[i_end], true, true) == 0) {
        ++i_end;
      }
      size_t j_end = j + 1;
      while (j_end < right.size() &&
             key_compare(right[j], right[j_end], false, false) == 0) {
        ++j_end;
      }
      for (size_t a = i; a < i_end; ++a) {
        for (size_t b = j; b < j_end; ++b) {
          CGQ_RETURN_NOT_OK(emit(left[a], right[b]));
        }
      }
      i = i_end;
      j = j_end;
    }
  }
  return Status::OK();
}

/// Streaming hash aggregation with the exact accumulation and output-order
/// semantics every backend must reproduce: rows are folded one at a time
/// in input order, and Finish() emits groups in first-seen order of their
/// keys.
class HashAggregator {
 public:
  /// `node` must outlive the aggregator.
  explicit HashAggregator(const PlanNode* node) : node_(node) {}

  Status Init(const RowLayout& in_layout);
  Status Add(const Row& row);
  /// SQL semantics: a global aggregate over an empty input yields one row.
  std::vector<Row> Finish();

 private:
  struct GroupState {
    Row key;
    std::vector<AggAccumulator> accs;
  };

  const PlanNode* node_;
  RowLayout in_layout_;
  std::vector<size_t> group_positions_;
  /// Key -> index into `groups_` (which keeps first-seen order).
  std::unordered_map<RowKey, size_t, RowKeyHash> group_index_;
  std::vector<GroupState> groups_;
};

}  // namespace exec_internal
}  // namespace cgq

#endif  // CGQ_EXEC_EXEC_INTERNAL_H_
