#ifndef CGQ_EXEC_SPILL_JOIN_H_
#define CGQ_EXEC_SPILL_JOIN_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/exec_internal.h"
#include "types/value.h"

namespace cgq {
namespace exec_internal {

/// Grace (partitioned) hash join: the out-of-core path every backend
/// takes when a hash join's build side exceeds
/// ExecutorOptions::memory_budget_bytes.
///
/// Both sides are hash-partitioned on the equi-key into P spill files
/// (the same key always lands in the same partition), then each
/// partition pair is joined independently with the regular in-memory
/// JoinHashTable — so resident memory is ~build_bytes / P, not
/// build_bytes. The reference output order (probe rows in input order,
/// matches per probe row in build-insertion order; DESIGN.md §12) is
/// reproduced exactly:
///
///  - build rows are written to their partition in arrival order, so
///    per-key build order inside a partition equals the global one
///    (equal keys share a partition);
///  - every probe row is tagged with its global arrival ordinal, and a
///    probe row's matches live in exactly one partition;
///  - per-partition outputs are runs sorted by ordinal by construction,
///    and Finish() k-way-merges the P runs back into ordinal order.
///
/// Byte-identical to the non-spilled join, pinned by spill_join_test.
class SpillHashJoin {
 public:
  /// `spec` must outlive the join. `dir` is created by Init() and
  /// removed (with every spill file) by the destructor. `cancel` may be
  /// null; when set, long loops abort with kCancelled once it flips.
  SpillHashJoin(const JoinSpec* spec, std::string dir, int num_partitions,
                const std::atomic<bool>* cancel);
  ~SpillHashJoin();
  SpillHashJoin(const SpillHashJoin&) = delete;
  SpillHashJoin& operator=(const SpillHashJoin&) = delete;

  /// Partition count for a build side of `build_bytes` under `budget`:
  /// enough that one partition's build rows fit in roughly half the
  /// budget, clamped to [2, 64].
  static int PickPartitions(uint64_t build_bytes, uint64_t budget);

  Status Init();
  /// Routes one build-side row to its partition file (NULL-key rows are
  /// dropped, as JoinHashTable::Build drops them).
  Status AddBuild(const Row& row);
  /// Routes one probe-side row, tagging it with the next global ordinal
  /// (NULL-key rows are dropped, as JoinHashTable::Probe skips them).
  Status AddProbe(const Row& row);
  /// Joins every partition pair and streams the merged output rows (in
  /// the exact reference order) through `emit`.
  Status Finish(const std::function<Status(Row)>& emit);

  int64_t partitions() const { return num_partitions_; }
  /// Bytes written across all spill files (both sides + output runs).
  int64_t spill_bytes() const { return spill_bytes_; }

  /// A process-unique spill directory under `base` (or the system temp
  /// dir when `base` is empty) for one spilling operator.
  static std::string MakeSpillDir(const std::string& base);

 private:
  /// One append-then-rescan spill file of length-prefixed records.
  struct SpillFile {
    std::string path;
    FILE* file = nullptr;  // write handle until Finish, then read handle
  };

  size_t PartitionOf(const Row& row, bool is_build) const;
  Status WriteRecord(SpillFile* file, const std::string& payload);
  Status CheckCancel() const;

  const JoinSpec* spec_;
  std::string dir_;
  int64_t num_partitions_;
  const std::atomic<bool>* cancel_;
  std::vector<SpillFile> build_files_;
  std::vector<SpillFile> probe_files_;
  uint64_t next_ordinal_ = 0;
  int64_t spill_bytes_ = 0;
  int64_t ops_since_cancel_check_ = 0;
  bool initialized_ = false;
};

}  // namespace exec_internal
}  // namespace cgq

#endif  // CGQ_EXEC_SPILL_JOIN_H_
