#include "exec/table_store.h"

#include <algorithm>
#include <utility>

#include "common/str_util.h"
#include "common/trace.h"

namespace cgq {

TableStore::TableStore(const TableStore& other) {
  std::lock_guard<std::mutex> lock(other.mu_);
  if (other.engine_ != nullptr) {
    // A StorageEngine owns its directory exclusively, so a copy
    // materializes the disk contents into a memory-mode store.
    for (const auto& frag : other.engine_->ListFragments()) {
      std::vector<Row> rows;
      if (other.engine_->ReadAll(frag.location, frag.table, &rows).ok()) {
        fragments_[Key(frag.location, frag.table)] = std::move(rows);
      }
    }
  } else {
    fragments_ = other.fragments_;
  }
}

TableStore::TableStore(TableStore&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mu_);
  fragments_ = std::move(other.fragments_);
  engine_ = std::move(other.engine_);
}

TableStore& TableStore::operator=(const TableStore& other) {
  if (this != &other) {
    std::scoped_lock lock(mu_, other.mu_);
    fragments_.clear();
    engine_.reset();
    if (other.engine_ != nullptr) {
      for (const auto& frag : other.engine_->ListFragments()) {
        std::vector<Row> rows;
        if (other.engine_->ReadAll(frag.location, frag.table, &rows).ok()) {
          fragments_[Key(frag.location, frag.table)] = std::move(rows);
        }
      }
    } else {
      fragments_ = other.fragments_;
    }
    std::lock_guard<std::mutex> clock(columnar_mu_);
    columnar_.clear();
  }
  return *this;
}

TableStore& TableStore::operator=(TableStore&& other) noexcept {
  if (this != &other) {
    std::scoped_lock lock(mu_, other.mu_);
    fragments_ = std::move(other.fragments_);
    engine_ = std::move(other.engine_);
    std::lock_guard<std::mutex> clock(columnar_mu_);
    columnar_.clear();
  }
  return *this;
}

Status TableStore::EnableDiskStorage(const std::string& dir,
                                     storage::StorageOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (engine_ != nullptr) {
    if (engine_->dir() == dir) return Status::OK();
    return Status::InvalidArgument("disk storage already enabled at '" +
                                   engine_->dir() + "'");
  }
  auto engine = std::make_unique<storage::StorageEngine>();
  CGQ_RETURN_NOT_OK(engine->Open(dir, options));
  CGQ_COUNTER_ADD("storage.recovery_replays", engine->recovery_replays());
  // Migrate what RAM holds; fragments recovered from disk that RAM does
  // not shadow stay as recovered.
  for (const auto& [key, rows] : fragments_) {
    const size_t slash = key.find('/');
    const LocationId location =
        static_cast<LocationId>(std::stoul(key.substr(0, slash)));
    CGQ_RETURN_NOT_OK(engine->Put(location, key.substr(slash + 1), rows));
  }
  CGQ_RETURN_NOT_OK(engine->Checkpoint());
  engine_ = std::move(engine);
  fragments_.clear();
  std::lock_guard<std::mutex> clock(columnar_mu_);
  columnar_.clear();
  return Status::OK();
}

Status TableStore::DisableDiskStorage() {
  std::lock_guard<std::mutex> lock(mu_);
  if (engine_ == nullptr) return Status::OK();
  CGQ_RETURN_NOT_OK(engine_->Checkpoint());
  std::unordered_map<std::string, std::vector<Row>> restored;
  for (const auto& frag : engine_->ListFragments()) {
    std::vector<Row> rows;
    CGQ_RETURN_NOT_OK(engine_->ReadAll(frag.location, frag.table, &rows));
    restored[Key(frag.location, frag.table)] = std::move(rows);
  }
  fragments_ = std::move(restored);
  engine_.reset();
  std::lock_guard<std::mutex> clock(columnar_mu_);
  columnar_.clear();
  return Status::OK();
}

StorageMode TableStore::storage_mode() const {
  std::lock_guard<std::mutex> lock(mu_);
  return engine_ == nullptr ? StorageMode::kMemory : StorageMode::kDisk;
}

std::string TableStore::data_dir() const {
  std::lock_guard<std::mutex> lock(mu_);
  return engine_ == nullptr ? std::string() : engine_->dir();
}

Status TableStore::PutLocked(LocationId location, std::string table,
                             std::vector<Row> rows) {
  std::string key = Key(location, table);
  if (engine_ != nullptr) {
    const int64_t before = engine_->blocks_written();
    CGQ_RETURN_NOT_OK(engine_->Put(location, table, rows));
    CGQ_COUNTER_ADD("storage.blocks_written",
                    engine_->blocks_written() - before);
  } else {
    fragments_[key] = std::move(rows);
  }
  std::lock_guard<std::mutex> clock(columnar_mu_);
  columnar_.erase(key);
  return Status::OK();
}

Status TableStore::Put(LocationId location, const std::string& table,
                       std::vector<Row> rows) {
  std::lock_guard<std::mutex> lock(mu_);
  return PutLocked(location, ToLower(table), std::move(rows));
}

Status TableStore::Append(LocationId location, const std::string& table,
                          Row row) {
  std::vector<Row> rows;
  rows.push_back(std::move(row));
  return AppendRows(location, table, std::move(rows));
}

Status TableStore::AppendRows(LocationId location, const std::string& table,
                              std::vector<Row> rows) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string lowered = ToLower(table);
  std::string key = Key(location, lowered);
  if (engine_ != nullptr) {
    const int64_t before = engine_->blocks_written();
    CGQ_RETURN_NOT_OK(engine_->Append(location, lowered, rows));
    CGQ_COUNTER_ADD("storage.blocks_written",
                    engine_->blocks_written() - before);
  } else {
    std::vector<Row>& frag = fragments_[key];
    for (Row& row : rows) frag.push_back(std::move(row));
  }
  std::lock_guard<std::mutex> clock(columnar_mu_);
  columnar_.erase(key);
  return Status::OK();
}

Result<const std::vector<Row>*> TableStore::Get(
    LocationId location, const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (engine_ != nullptr) {
    return Status::Unsupported(
        "TableStore::Get pins rows in RAM and requires StorageMode::kMemory; "
        "stream disk-backed fragments with Scan()");
  }
  auto it = fragments_.find(Key(location, ToLower(table)));
  if (it == fragments_.end()) {
    return Status::NotFound("no fragment of table '" + table +
                            "' at location " + std::to_string(location));
  }
  return &it->second;
}

Result<size_t> TableStore::FragmentRows(LocationId location,
                                        const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string lowered = ToLower(table);
  if (engine_ != nullptr) return engine_->FragmentRows(location, lowered);
  auto it = fragments_.find(Key(location, lowered));
  if (it == fragments_.end()) {
    return Status::NotFound("no fragment of table '" + table +
                            "' at location " + std::to_string(location));
  }
  return it->second.size();
}

Result<TableStore::Cursor> TableStore::Scan(LocationId location,
                                            const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string lowered = ToLower(table);
  Cursor cursor;
  if (engine_ != nullptr) {
    cursor.is_disk_ = true;
    CGQ_ASSIGN_OR_RETURN(cursor.disk_, engine_->Scan(location, lowered));
    CGQ_ASSIGN_OR_RETURN(cursor.total_rows_,
                         engine_->FragmentRows(location, lowered));
    return cursor;
  }
  auto it = fragments_.find(Key(location, lowered));
  if (it == fragments_.end()) {
    return Status::NotFound("no fragment of table '" + table +
                            "' at location " + std::to_string(location));
  }
  cursor.memory_rows_ = it->second;  // snapshot: stays valid past the lock
  cursor.total_rows_ = cursor.memory_rows_.size();
  return cursor;
}

Result<bool> TableStore::Cursor::Next(std::vector<Row>* out) {
  if (is_disk_) {
    CGQ_ASSIGN_OR_RETURN(bool more, disk_.Next(out));
    return more;
  }
  out->clear();
  if (memory_done_) return false;
  memory_done_ = true;
  if (memory_rows_.empty()) return false;
  *out = std::move(memory_rows_);
  memory_rows_.clear();
  return true;
}

int64_t TableStore::Cursor::blocks_read() const {
  return is_disk_ ? disk_.blocks_read() : 0;
}

Status TableStore::AppendToColumns(const std::vector<Row>& rows, size_t width,
                                   const std::string& table,
                                   std::vector<vec::ColumnVector>* cols) {
  for (const Row& row : rows) {
    if (row.size() != width) {
      return Status::Internal("stored row width mismatch for table '" +
                              table + "'");
    }
    for (size_t c = 0; c < width; ++c) (*cols)[c].AppendValue(row[c]);
  }
  return Status::OK();
}

Result<std::shared_ptr<const std::vector<vec::ColumnPtr>>>
TableStore::GetColumnar(LocationId location, const std::string& table,
                        int64_t* blocks_read) const {
  std::string lowered = ToLower(table);
  std::string key = Key(location, lowered);
  std::unique_lock<std::mutex> lock(mu_);
  if (engine_ != nullptr) {
    // Out-of-core: stream the blocks into columns for this call only —
    // no cache, so at most one fragment's columns are resident here.
    CGQ_ASSIGN_OR_RETURN(storage::StorageEngine::Cursor cursor,
                         engine_->Scan(location, lowered));
    CGQ_ASSIGN_OR_RETURN(size_t total,
                         engine_->FragmentRows(location, lowered));
    lock.unlock();
    auto built = std::make_shared<ColumnarFragment>();
    if (total == 0) return std::shared_ptr<const ColumnarFragment>(built);
    std::vector<vec::ColumnVector> cols;
    std::vector<Row> chunk;
    while (true) {
      CGQ_ASSIGN_OR_RETURN(bool more, cursor.Next(&chunk));
      if (!more) break;
      if (chunk.empty()) continue;
      if (cols.empty()) {
        cols.resize(chunk.front().size());
        for (vec::ColumnVector& c : cols) c.Reserve(total);
      }
      CGQ_RETURN_NOT_OK(AppendToColumns(chunk, cols.size(), table, &cols));
    }
    if (blocks_read != nullptr) *blocks_read += cursor.blocks_read();
    built->reserve(cols.size());
    for (vec::ColumnVector& c : cols) {
      built->push_back(vec::MakeColumn(std::move(c)));
    }
    return std::shared_ptr<const ColumnarFragment>(built);
  }

  {
    std::lock_guard<std::mutex> clock(columnar_mu_);
    auto it = columnar_.find(key);
    if (it != columnar_.end()) return it->second;
  }
  auto rows_it = fragments_.find(key);
  if (rows_it == fragments_.end()) {
    return Status::NotFound("no fragment of table '" + table +
                            "' at location " + std::to_string(location));
  }
  const std::vector<Row>& rows = rows_it->second;
  auto built = std::make_shared<ColumnarFragment>();
  if (!rows.empty()) {
    const size_t width = rows[0].size();
    std::vector<vec::ColumnVector> cols(width);
    for (vec::ColumnVector& c : cols) c.Reserve(rows.size());
    CGQ_RETURN_NOT_OK(AppendToColumns(rows, width, table, &cols));
    built->reserve(width);
    for (vec::ColumnVector& c : cols) {
      built->push_back(vec::MakeColumn(std::move(c)));
    }
  }
  std::lock_guard<std::mutex> clock(columnar_mu_);
  // Keep the winner of a build race; both are equivalent.
  auto [it, inserted] = columnar_.emplace(key, std::move(built));
  return it->second;
}

std::vector<TableStore::FragmentRef> TableStore::ListFragments() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FragmentRef> out;
  if (engine_ != nullptr) {
    for (const auto& frag : engine_->ListFragments()) {
      out.push_back(FragmentRef{frag.location, frag.table, frag.rows});
    }
    return out;  // engine enumeration is already (location, table) sorted
  }
  out.reserve(fragments_.size());
  for (const auto& [key, rows] : fragments_) {
    const size_t slash = key.find('/');
    FragmentRef ref;
    ref.location =
        static_cast<LocationId>(std::stoul(key.substr(0, slash)));
    ref.table = key.substr(slash + 1);
    ref.row_count = rows.size();
    out.push_back(std::move(ref));
  }
  std::sort(out.begin(), out.end(),
            [](const FragmentRef& a, const FragmentRef& b) {
              return a.location != b.location ? a.location < b.location
                                              : a.table < b.table;
            });
  return out;
}

size_t TableStore::TotalRows() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (engine_ != nullptr) return engine_->TotalRows();
  size_t n = 0;
  for (const auto& [k, rows] : fragments_) n += rows.size();
  return n;
}

}  // namespace cgq
