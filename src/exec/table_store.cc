#include "exec/table_store.h"

#include <algorithm>

#include "common/str_util.h"

namespace cgq {

void TableStore::Put(LocationId location, const std::string& table,
                     std::vector<Row> rows) {
  std::string key = Key(location, ToLower(table));
  fragments_[key] = std::move(rows);
  std::lock_guard<std::mutex> lock(columnar_mu_);
  columnar_.erase(key);
}

void TableStore::Append(LocationId location, const std::string& table,
                        Row row) {
  std::string key = Key(location, ToLower(table));
  fragments_[key].push_back(std::move(row));
  std::lock_guard<std::mutex> lock(columnar_mu_);
  columnar_.erase(key);
}

Result<const std::vector<Row>*> TableStore::Get(
    LocationId location, const std::string& table) const {
  auto it = fragments_.find(Key(location, ToLower(table)));
  if (it == fragments_.end()) {
    return Status::NotFound("no fragment of table '" + table +
                            "' at location " + std::to_string(location));
  }
  return &it->second;
}

Result<std::shared_ptr<const std::vector<vec::ColumnPtr>>>
TableStore::GetColumnar(LocationId location, const std::string& table) const {
  std::string key = Key(location, ToLower(table));
  {
    std::lock_guard<std::mutex> lock(columnar_mu_);
    auto it = columnar_.find(key);
    if (it != columnar_.end()) return it->second;
  }
  auto rows_it = fragments_.find(key);
  if (rows_it == fragments_.end()) {
    return Status::NotFound("no fragment of table '" + table +
                            "' at location " + std::to_string(location));
  }
  const std::vector<Row>& rows = rows_it->second;
  auto built = std::make_shared<ColumnarFragment>();
  if (!rows.empty()) {
    const size_t width = rows[0].size();
    std::vector<vec::ColumnVector> cols(width);
    for (vec::ColumnVector& c : cols) c.Reserve(rows.size());
    for (const Row& row : rows) {
      if (row.size() != width) {
        return Status::Internal("stored row width mismatch for table '" +
                                table + "'");
      }
      for (size_t c = 0; c < width; ++c) cols[c].AppendValue(row[c]);
    }
    built->reserve(width);
    for (vec::ColumnVector& c : cols) {
      built->push_back(vec::MakeColumn(std::move(c)));
    }
  }
  std::lock_guard<std::mutex> lock(columnar_mu_);
  // Keep the winner of a build race; both are equivalent.
  auto [it, inserted] = columnar_.emplace(key, std::move(built));
  return it->second;
}

std::vector<TableStore::FragmentRef> TableStore::ListFragments() const {
  std::vector<FragmentRef> out;
  out.reserve(fragments_.size());
  for (const auto& [key, rows] : fragments_) {
    const size_t slash = key.find('/');
    FragmentRef ref;
    ref.location =
        static_cast<LocationId>(std::stoul(key.substr(0, slash)));
    ref.table = key.substr(slash + 1);
    ref.rows = &rows;
    out.push_back(std::move(ref));
  }
  std::sort(out.begin(), out.end(),
            [](const FragmentRef& a, const FragmentRef& b) {
              return a.location != b.location ? a.location < b.location
                                              : a.table < b.table;
            });
  return out;
}

size_t TableStore::TotalRows() const {
  size_t n = 0;
  for (const auto& [k, rows] : fragments_) n += rows.size();
  return n;
}

}  // namespace cgq
