#include "exec/table_store.h"

#include "common/str_util.h"

namespace cgq {

void TableStore::Put(LocationId location, const std::string& table,
                     std::vector<Row> rows) {
  fragments_[Key(location, ToLower(table))] = std::move(rows);
}

void TableStore::Append(LocationId location, const std::string& table,
                        Row row) {
  fragments_[Key(location, ToLower(table))].push_back(std::move(row));
}

Result<const std::vector<Row>*> TableStore::Get(
    LocationId location, const std::string& table) const {
  auto it = fragments_.find(Key(location, ToLower(table)));
  if (it == fragments_.end()) {
    return Status::NotFound("no fragment of table '" + table +
                            "' at location " + std::to_string(location));
  }
  return &it->second;
}

size_t TableStore::TotalRows() const {
  size_t n = 0;
  for (const auto& [k, rows] : fragments_) n += rows.size();
  return n;
}

}  // namespace cgq
