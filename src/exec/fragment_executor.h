#ifndef CGQ_EXEC_FRAGMENT_EXECUTOR_H_
#define CGQ_EXEC_FRAGMENT_EXECUTOR_H_

#include "common/result.h"
#include "exec/executor.h"
#include "exec/table_store.h"
#include "net/network_model.h"
#include "plan/plan_node.h"

namespace cgq {

/// Fragmented runtime: splits `plan` at its SHIP edges into per-site
/// fragments (see exec/fragmenter.h), connects them with bounded ship
/// channels that charge the network model per batch, and runs them
/// concurrently — one worker per fragment on a dedicated thread pool —
/// with operators pulling fixed-size row batches.
///
/// `options.threads == 1` (or a call from inside a pool worker) selects
/// the sequential schedule instead: fragments run bottom-up on the
/// calling thread with buffering channels. Results and ship metrics are
/// identical to the row interpreter in every configuration.
Result<QueryResult> ExecuteFragmentedPlan(const PlanNode& plan,
                                          const TableStore* store,
                                          const NetworkModel* net,
                                          const ExecutorOptions& options);

}  // namespace cgq

#endif  // CGQ_EXEC_FRAGMENT_EXECUTOR_H_
