#include "exec/analyze.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "common/str_util.h"

namespace cgq {

namespace {

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};
struct ValueEq {
  bool operator()(const Value& a, const Value& b) const {
    return a.StructurallyEquals(b);
  }
};

}  // namespace

Status AnalyzeTable(const TableStore& store, const std::string& table,
                    Catalog* catalog) {
  CGQ_ASSIGN_OR_RETURN(const TableDef* def, catalog->GetTable(table));
  const size_t num_columns = def->schema.num_columns();

  std::vector<std::unordered_set<Value, ValueHash, ValueEq>> distinct(
      num_columns);
  std::vector<double> width_sum(num_columns, 0);
  std::vector<std::optional<double>> mins(num_columns), maxs(num_columns);
  double total_rows = 0;
  std::vector<double> fragment_rows;

  // Replicated tables: every fragment is a full copy; analyze one and
  // verify the copies agree on cardinality.
  std::vector<TableFragment> fragments_to_scan = def->fragments;
  if (def->replicated) {
    size_t first_size = 0;
    for (size_t i = 0; i < def->fragments.size(); ++i) {
      CGQ_ASSIGN_OR_RETURN(
          size_t rows,
          store.FragmentRows(def->fragments[i].location, table));
      if (i == 0) {
        first_size = rows;
      } else if (rows != first_size) {
        return Status::InvalidArgument(
            "replicas of table '" + def->name +
            "' disagree on row count; refusing to analyze");
      }
    }
    fragments_to_scan = {def->fragments[0]};
  }

  for (const TableFragment& fragment : fragments_to_scan) {
    // Cursor streaming works in both storage modes (disk-backed
    // fragments are never pinned in RAM for stats collection).
    CGQ_ASSIGN_OR_RETURN(TableStore::Cursor cursor,
                         store.Scan(fragment.location, table));
    double frag_rows = 0;
    std::vector<Row> chunk;
    while (true) {
      CGQ_ASSIGN_OR_RETURN(bool more, cursor.Next(&chunk));
      if (!more) break;
      frag_rows += static_cast<double>(chunk.size());
      for (const Row& row : chunk) {
        if (row.size() != num_columns) {
          return Status::InvalidArgument("row width mismatch in table '" +
                                         def->name + "'");
        }
        for (size_t c = 0; c < num_columns; ++c) {
          const Value& v = row[c];
          distinct[c].insert(v);
          width_sum[c] += static_cast<double>(v.ByteSize());
          if (v.is_numeric()) {
            double d = v.AsDouble();
            if (!mins[c] || d < *mins[c]) mins[c] = d;
            if (!maxs[c] || d > *maxs[c]) maxs[c] = d;
          }
        }
      }
    }
    fragment_rows.push_back(frag_rows);
    total_rows += frag_rows;
  }

  TableStats stats;
  stats.row_count = total_rows;
  for (size_t c = 0; c < num_columns; ++c) {
    ColumnStats cs;
    cs.distinct_count = static_cast<double>(distinct[c].size());
    cs.min = mins[c];
    cs.max = maxs[c];
    cs.avg_width = total_rows > 0 ? width_sum[c] / total_rows : 8;
    stats.columns[ToLower(def->schema.column(c).name)] = cs;
  }
  CGQ_RETURN_NOT_OK(catalog->SetStats(def->name, stats));

  if (total_rows > 0 && !def->replicated) {
    std::vector<TableFragment> fragments = def->fragments;
    for (size_t i = 0; i < fragments.size(); ++i) {
      fragments[i].row_fraction = fragment_rows[i] / total_rows;
    }
    CGQ_RETURN_NOT_OK(catalog->SetFragments(def->name, fragments));
  }
  return Status::OK();
}

Status AnalyzeAll(const TableStore& store, Catalog* catalog) {
  for (const std::string& table : catalog->TableNames()) {
    CGQ_RETURN_NOT_OK(AnalyzeTable(store, table, catalog));
  }
  return Status::OK();
}

}  // namespace cgq
