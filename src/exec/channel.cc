#include "exec/channel.h"

#include <utility>

namespace cgq {

ShipChannel::ShipChannel(LocationId from, LocationId to, size_t capacity,
                         const NetworkModel* net)
    : from_(from), to_(to), capacity_(capacity), net_(net) {
  stats_.from = from;
  stats_.to = to;
}

bool ShipChannel::Push(RowBatch batch) {
  std::unique_lock<std::mutex> lock(mu_);
  can_push_.wait(lock, [this] {
    return aborted_ || capacity_ == 0 || queue_.size() < capacity_;
  });
  if (aborted_) return false;

  double bytes = batch.ByteSize();
  // First batch pays the start-up latency alpha; every batch pays the
  // per-byte cost, so the edge total matches a single message of the same
  // volume: alpha + beta * sum(bytes).
  stats_.network_ms += stats_.batches == 0
                           ? net_->Cost(from_, to_, bytes)
                           : net_->MarginalCost(from_, to_, bytes);
  stats_.batches += 1;
  stats_.rows += static_cast<int64_t>(batch.NumRows());
  stats_.bytes += bytes;

  queue_.push_back(std::move(batch));
  stats_.peak_in_flight =
      std::max(stats_.peak_in_flight, static_cast<int64_t>(queue_.size()));
  can_pop_.notify_one();
  return true;
}

void ShipChannel::CloseProducer() {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;
  closed_ = true;
  if (stats_.batches == 0 && !aborted_) {
    stats_.network_ms += net_->Cost(from_, to_, 0);
  }
  can_pop_.notify_all();
}

bool ShipChannel::Pop(RowBatch* out) {
  std::unique_lock<std::mutex> lock(mu_);
  can_pop_.wait(lock, [this] {
    return aborted_ || closed_ || !queue_.empty();
  });
  if (aborted_ || queue_.empty()) return false;
  *out = std::move(queue_.front());
  queue_.pop_front();
  can_push_.notify_one();
  return true;
}

void ShipChannel::Abort() {
  std::lock_guard<std::mutex> lock(mu_);
  aborted_ = true;
  queue_.clear();
  can_push_.notify_all();
  can_pop_.notify_all();
}

ChannelStats ShipChannel::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace cgq
