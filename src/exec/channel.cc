#include "exec/channel.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/failpoint.h"

namespace cgq {

namespace {

/// Per-edge deterministic stream: the same fault seed yields the same
/// drop/jitter schedule for a given edge in both backends.
uint64_t MixSeed(uint64_t seed, LocationId from, LocationId to) {
  uint64_t edge = (static_cast<uint64_t>(from) << 32) | to;
  return (seed + 0x9E3779B97F4A7C15ULL) * 0xBF58476D1CE4E5B9ULL ^ edge;
}

std::chrono::duration<double, std::milli> Millis(double ms) {
  return std::chrono::duration<double, std::milli>(ms);
}

}  // namespace

ShipChannel::ShipChannel(LocationId from, LocationId to, size_t capacity,
                         const NetworkModel* net, RetryPolicy retry)
    : from_(from),
      to_(to),
      capacity_(capacity),
      net_(net),
      retry_(retry),
      rng_(MixSeed(retry.fault_seed, from, to)) {
  stats_.from = from;
  stats_.to = to;
#ifdef CGQ_TRACING
  trace_ = TraceSession::Current();
  if (trace_ != nullptr) {
    trace_span_ =
        trace_->BeginSpan("ship", TraceSession::CurrentSpanId(),
                          /*ordinal=*/-1, TraceSession::CurrentTrack());
    trace_->AddSpanArg(trace_span_, "from", static_cast<int64_t>(from_));
    trace_->AddSpanArg(trace_span_, "to", static_cast<int64_t>(to_));
  }
#endif
}

ShipChannel::~ShipChannel() {
#ifdef CGQ_TRACING
  if (trace_ != nullptr) {
    // The producer has closed and the fragments joined by the time the
    // channel dies, so this snapshot is final and reconciles exactly
    // with the ChannelStats entry recorded in ExecMetrics::edges.
    ChannelStats s = stats();
    trace_->AddSpanArg(trace_span_, "batches", s.batches);
    trace_->AddSpanArg(trace_span_, "rows", s.rows);
    trace_->AddSpanArg(trace_span_, "bytes", s.bytes);
    trace_->AddSpanArg(trace_span_, "network_ms", s.network_ms);
    trace_->AddSpanArg(trace_span_, "send_retries", s.send_retries);
    trace_->AddSpanArg(trace_span_, "dropped_batches", s.dropped_batches);
    trace_->AddSpanArg(trace_span_, "send_timeouts", s.send_timeouts);
    trace_->AddSpanArg(trace_span_, "recv_timeouts", s.recv_timeouts);
    trace_->AddSpanArg(trace_span_, "replays", s.replays);
    trace_->AddSpanArg(trace_span_, "backoff_ms", s.backoff_ms);
    trace_->EndSpan(trace_span_);
  }
#endif
}

void ShipChannel::ChargeAttemptLocked(int64_t rows, double bytes,
                                      bool recharge_alpha,
                                      const LinkFault* fault) {
  // First attempt on the edge pays the start-up latency alpha; later
  // batches pay the per-byte cost only — unless they are reattempts,
  // which re-establish the transfer and pay alpha again. On a healthy
  // run the edge total therefore matches a single message of the same
  // volume: alpha + beta * sum(bytes).
  double cost = (stats_.batches == 0 || recharge_alpha)
                    ? net_->Cost(from_, to_, bytes)
                    : net_->MarginalCost(from_, to_, bytes);
  if (fault != nullptr && from_ != to_) cost += fault->extra_latency_ms;
  stats_.network_ms += cost;
  stats_.batches += 1;
  stats_.rows += rows;
  stats_.bytes += bytes;
}

void ShipChannel::AccountBackoffLocked(int attempt) {
  if (retry_.backoff_base_ms <= 0) return;
  double delay = retry_.backoff_base_ms;
  for (int i = 1; i < attempt && delay < retry_.backoff_max_ms; ++i) {
    delay *= 2;
  }
  delay = std::min(delay, retry_.backoff_max_ms);
  // Jitter in [0.5, 1) from the deterministic stream, decorrelating
  // concurrent retries without losing reproducibility.
  delay *= 0.5 + 0.5 * rng_.NextDouble();
  stats_.backoff_ms += delay;
}

Status ShipChannel::Send(RowBatch batch) {
  const int64_t rows = static_cast<int64_t>(batch.NumRows());
  const double bytes = batch.ByteSize();

  std::unique_lock<std::mutex> lock(mu_);
  const LinkFault* fault = net_->link_fault(from_, to_);
  int reattempts = 0;
  while (true) {
    // Wait for queue space (backpressure), bounded by the send timeout.
    auto writable = [this] {
      return aborted_ || closed_ || capacity_ == 0 ||
             queue_.size() < capacity_;
    };
    bool ready = true;
    if (retry_.send_timeout_ms < 0) {
      can_push_.wait(lock, writable);
    } else {
      ready = can_push_.wait_for(lock, Millis(retry_.send_timeout_ms),
                                 writable);
    }
    if (aborted_) return abort_status_;
    if (closed_) {
      // Close() raced with a blocked send: fail the channel so both sides
      // observe the same structured abort instead of hanging.
      aborted_ = true;
      abort_status_ =
          Status::Internal("ship channel closed during a blocked send");
      queue_.clear();
      can_pop_.notify_all();
      return abort_status_;
    }
    if (!ready) {
      // Timed out waiting for the consumer; nothing was transmitted.
      stats_.send_timeouts += 1;
      if (reattempts >= retry_.max_retries) {
        return Status::Unavailable(
            "ship edge l" + std::to_string(from_) + "->l" +
            std::to_string(to_) + ": send timed out after " +
            std::to_string(reattempts) + " retries");
      }
      reattempts += 1;
      stats_.send_retries += 1;
      AccountBackoffLocked(reattempts);
      continue;
    }

    // Simulated transmission. A hard link failure transmits nothing; a
    // sampled drop (or the channel.send failpoint) loses the bytes on the
    // wire, so the wasted attempt is still charged and counted.
    if (fault != nullptr && fault->down) {
      stats_.dropped_batches += 1;
      return Status::Unavailable("ship edge l" + std::to_string(from_) +
                                 "->l" + std::to_string(to_) +
                                 ": link is down");
    }
    bool lost = CGQ_FAILPOINT("channel.send");
    if (!lost && fault != nullptr && fault->drop_probability > 0) {
      lost = rng_.Bernoulli(fault->drop_probability);
    }
    ChargeAttemptLocked(rows, bytes, reattempts > 0, fault);
    if (lost) {
      stats_.dropped_batches += 1;
      if (reattempts >= retry_.max_retries) {
        return Status::Unavailable(
            "ship edge l" + std::to_string(from_) + "->l" +
            std::to_string(to_) + ": batch lost " +
            std::to_string(reattempts + 1) + " times, retries exhausted");
      }
      reattempts += 1;
      stats_.send_retries += 1;
      AccountBackoffLocked(reattempts);
      continue;
    }

    // Delivered. During a replay, suppress the row prefix the consumer
    // already received from the previous incarnation (the deterministic
    // re-execution resends a byte-identical stream).
    if (skip_rows_ > 0) {
      if (rows <= skip_rows_) {
        skip_rows_ -= rows;
        return Status::OK();
      }
      batch.rows.erase(batch.rows.begin(),
                       batch.rows.begin() + static_cast<long>(skip_rows_));
      skip_rows_ = 0;
    }
    if (!batch.rows.empty()) {
      queue_.push_back(std::move(batch));
      stats_.peak_in_flight = std::max(
          stats_.peak_in_flight, static_cast<int64_t>(queue_.size()));
      can_pop_.notify_one();
    }
    return Status::OK();
  }
}

bool ShipChannel::Push(RowBatch batch) {
  std::unique_lock<std::mutex> lock(mu_);
  can_push_.wait(lock, [this] {
    return aborted_ || closed_ || capacity_ == 0 ||
           queue_.size() < capacity_;
  });
  if (aborted_ || closed_) return false;

  ChargeAttemptLocked(static_cast<int64_t>(batch.NumRows()),
                      batch.ByteSize(), /*recharge_alpha=*/false,
                      /*fault=*/nullptr);
  queue_.push_back(std::move(batch));
  stats_.peak_in_flight =
      std::max(stats_.peak_in_flight, static_cast<int64_t>(queue_.size()));
  can_pop_.notify_one();
  return true;
}

void ShipChannel::CloseProducer() {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;
  closed_ = true;
  if (stats_.batches == 0 && !aborted_) {
    stats_.network_ms += net_->Cost(from_, to_, 0);
  }
  can_pop_.notify_all();
  // Wake a sender blocked on backpressure (the close/abort race): it
  // must observe closed_ and fail instead of waiting forever.
  can_push_.notify_all();
}

Result<bool> ShipChannel::Recv(RowBatch* out) {
  std::unique_lock<std::mutex> lock(mu_);
  int timeouts = 0;
  while (true) {
    // The channel.recv failpoint simulates one timed-out receive without
    // the wall-clock wait.
    bool injected = CGQ_FAILPOINT("channel.recv");
    auto readable = [this] {
      return aborted_ || closed_ || !queue_.empty();
    };
    bool ready = !injected;
    if (!injected) {
      if (retry_.recv_timeout_ms < 0) {
        can_pop_.wait(lock, readable);
      } else {
        ready = can_pop_.wait_for(lock, Millis(retry_.recv_timeout_ms),
                                  readable);
      }
    }
    if (!ready) {
      stats_.recv_timeouts += 1;
      if (timeouts >= retry_.max_retries) {
        return Status::Unavailable(
            "ship edge l" + std::to_string(from_) + "->l" +
            std::to_string(to_) + ": recv timed out after " +
            std::to_string(timeouts) + " retries");
      }
      timeouts += 1;
      AccountBackoffLocked(timeouts);
      continue;
    }
    if (aborted_) return abort_status_;
    if (!queue_.empty()) {
      *out = std::move(queue_.front());
      queue_.pop_front();
      delivered_rows_ += static_cast<int64_t>(out->NumRows());
      can_push_.notify_one();
      return true;
    }
    return false;  // closed and drained: end-of-stream
  }
}

bool ShipChannel::Pop(RowBatch* out) {
  std::unique_lock<std::mutex> lock(mu_);
  can_pop_.wait(lock,
                [this] { return aborted_ || closed_ || !queue_.empty(); });
  if (aborted_ || queue_.empty()) return false;
  *out = std::move(queue_.front());
  queue_.pop_front();
  delivered_rows_ += static_cast<int64_t>(out->NumRows());
  can_push_.notify_one();
  return true;
}

void ShipChannel::Abort(Status status) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!aborted_) {
    aborted_ = true;
    abort_status_ = status.ok()
                        ? Status::Internal("fragment execution aborted")
                        : std::move(status);
  }
  queue_.clear();
  can_push_.notify_all();
  can_pop_.notify_all();
}

Status ShipChannel::abort_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return abort_status_;
}

void ShipChannel::BeginReplay() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.replays += 1;
  // Drain partial (undelivered) batches, then suppress the delivered
  // prefix of the replayed stream: together the consumer sees each row
  // exactly once.
  queue_.clear();
  skip_rows_ = delivered_rows_;
  closed_ = false;
  can_push_.notify_all();
}

ChannelStats ShipChannel::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace cgq
