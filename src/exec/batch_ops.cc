#include "exec/batch_ops.h"

#include <algorithm>
#include <iterator>
#include <utility>
#include <vector>

#include "exec/exec_internal.h"
#include "exec/spill_join.h"

namespace cgq {
namespace exec_internal {

Status CheckCancelled(const std::atomic<bool>* cancel) {
  if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
    return Status::Cancelled("query cancelled");
  }
  return Status::OK();
}

namespace {

class ScanOp : public BatchOp {
 public:
  ScanOp(const PlanNode* node, const std::vector<Row>* rows,
         size_t batch_size, int64_t* rows_scanned)
      : node_(node),
        rows_(rows),
        batch_size_(batch_size),
        rows_scanned_(rows_scanned),
        layout_(LayoutOf(*node)) {}

  Result<OptBatch> Next() override {
    if (offset_ >= rows_->size()) return OptBatch();
    size_t end = std::min(offset_ + batch_size_, rows_->size());
    RowBatch out;
    out.layout = layout_;
    out.rows.reserve(end - offset_);
    for (size_t i = offset_; i < end; ++i) {
      if ((*rows_)[i].size() != layout_.size()) {
        return Status::Internal("stored row width mismatch for table '" +
                                node_->table + "'");
      }
      out.rows.push_back((*rows_)[i]);
    }
    *rows_scanned_ += static_cast<int64_t>(out.rows.size());
    offset_ = end;
    return OptBatch(std::move(out));
  }

  const RowLayout& layout() const override { return layout_; }

 private:
  const PlanNode* node_;
  const std::vector<Row>* rows_;
  const size_t batch_size_;
  int64_t* rows_scanned_;
  RowLayout layout_;
  size_t offset_ = 0;
};

/// Serialized volume of the rows, matching RowBatch::ByteSize (the
/// build-side size a join compares against the memory budget).
double RowsByteSize(const std::vector<Row>& rows) {
  double bytes = 0;
  for (const Row& row : rows) {
    for (const Value& v : row) bytes += static_cast<double>(v.ByteSize());
  }
  return bytes;
}

/// Disk-mode scan: streams one fragment's checksummed blocks through a
/// TableStore::Cursor, re-chunked to batch_size (identical batch
/// boundaries to the in-memory ScanOp).
class DiskScanOp : public BatchOp {
 public:
  DiskScanOp(const PlanNode* node, TableStore::Cursor cursor,
             size_t batch_size, int64_t* rows_scanned,
             int64_t* storage_blocks_read)
      : node_(node),
        cursor_(std::move(cursor)),
        batch_size_(batch_size),
        rows_scanned_(rows_scanned),
        storage_blocks_read_(storage_blocks_read),
        layout_(LayoutOf(*node)) {}

  Result<OptBatch> Next() override {
    while (true) {
      if (buffer_.size() - pos_ >= batch_size_ ||
          (drained_ && pos_ < buffer_.size())) {
        return TakeBatch();
      }
      if (drained_) return OptBatch();
      if (pos_ > 0) {
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() + static_cast<ptrdiff_t>(pos_));
        pos_ = 0;
      }
      std::vector<Row> chunk;
      CGQ_ASSIGN_OR_RETURN(bool more, cursor_.Next(&chunk));
      if (storage_blocks_read_ != nullptr) {
        *storage_blocks_read_ += cursor_.blocks_read() - blocks_folded_;
        blocks_folded_ = cursor_.blocks_read();
      }
      if (!more) {
        drained_ = true;
        continue;
      }
      for (Row& r : chunk) {
        if (r.size() != layout_.size()) {
          return Status::Internal("stored row width mismatch for table '" +
                                  node_->table + "'");
        }
        buffer_.push_back(std::move(r));
      }
    }
  }

  const RowLayout& layout() const override { return layout_; }

 private:
  Result<OptBatch> TakeBatch() {
    size_t end = std::min(pos_ + batch_size_, buffer_.size());
    RowBatch out;
    out.layout = layout_;
    out.rows.assign(std::make_move_iterator(buffer_.begin() +
                                            static_cast<ptrdiff_t>(pos_)),
                    std::make_move_iterator(buffer_.begin() +
                                            static_cast<ptrdiff_t>(end)));
    pos_ = end;
    *rows_scanned_ += static_cast<int64_t>(out.rows.size());
    return OptBatch(std::move(out));
  }

  const PlanNode* node_;
  TableStore::Cursor cursor_;
  const size_t batch_size_;
  int64_t* rows_scanned_;
  int64_t* storage_blocks_read_;
  RowLayout layout_;
  std::vector<Row> buffer_;
  size_t pos_ = 0;
  int64_t blocks_folded_ = 0;
  bool drained_ = false;
};

class FilterOp : public BatchOp {
 public:
  FilterOp(const PlanNode* node, BatchOpPtr child)
      : node_(node), child_(std::move(child)) {}

  Result<OptBatch> Next() override {
    while (true) {
      CGQ_ASSIGN_OR_RETURN(OptBatch in, child_->Next());
      if (!in) return OptBatch();
      RowBatch out;
      out.layout = in->layout;
      for (Row& row : in->rows) {
        CGQ_ASSIGN_OR_RETURN(
            bool keep,
            exec_internal::KeepRow(node_->conjuncts, row, in->layout));
        if (keep) out.rows.push_back(std::move(row));
      }
      if (!out.rows.empty()) return OptBatch(std::move(out));
    }
  }

  const RowLayout& layout() const override { return child_->layout(); }

 private:
  const PlanNode* node_;
  BatchOpPtr child_;
};

class ProjectOp : public BatchOp {
 public:
  static Result<BatchOpPtr> Make(const PlanNode* node, BatchOpPtr child) {
    CGQ_ASSIGN_OR_RETURN(std::vector<size_t> positions,
                         PositionsOf(node->project_ids, child->layout(),
                                     "projection input"));
    return BatchOpPtr(
        new ProjectOp(node, std::move(child), std::move(positions)));
  }

  Result<OptBatch> Next() override {
    CGQ_ASSIGN_OR_RETURN(OptBatch in, child_->Next());
    if (!in) return OptBatch();
    RowBatch out;
    out.layout = layout_;
    out.rows.reserve(in->rows.size());
    for (const Row& row : in->rows) {
      Row projected;
      projected.reserve(positions_.size());
      for (size_t p : positions_) projected.push_back(row[p]);
      out.rows.push_back(std::move(projected));
    }
    return OptBatch(std::move(out));
  }

  const RowLayout& layout() const override { return layout_; }

 private:
  ProjectOp(const PlanNode* node, BatchOpPtr child,
            std::vector<size_t> positions)
      : child_(std::move(child)),
        positions_(std::move(positions)),
        layout_(LayoutOf(*node)) {}

  BatchOpPtr child_;
  std::vector<size_t> positions_;
  RowLayout layout_;
};

/// Emits `rows` in batch_size chunks, preserving order.
class Chunker {
 public:
  explicit Chunker(size_t batch_size) : batch_size_(batch_size) {}

  void Add(std::vector<Row> rows) {
    if (rows_.empty()) {
      rows_ = std::move(rows);
    } else {
      rows_.insert(rows_.end(), std::make_move_iterator(rows.begin()),
                   std::make_move_iterator(rows.end()));
    }
  }

  bool HasFullBatch() const { return rows_.size() - pos_ >= batch_size_; }
  bool Empty() const { return pos_ >= rows_.size(); }

  RowBatch Take(const RowLayout& layout) {
    RowBatch out;
    out.layout = layout;
    size_t end = std::min(pos_ + batch_size_, rows_.size());
    out.rows.assign(std::make_move_iterator(rows_.begin() + pos_),
                    std::make_move_iterator(rows_.begin() + end));
    pos_ = end;
    if (pos_ >= rows_.size()) {
      rows_.clear();
      pos_ = 0;
    }
    return out;
  }

 private:
  const size_t batch_size_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

class JoinOp : public BatchOp {
 public:
  JoinOp(const PlanNode* node, BatchOpPtr left, BatchOpPtr right,
         size_t batch_size, const BatchOpEnv& env)
      : node_(node),
        left_(std::move(left)),
        right_(std::move(right)),
        chunker_(batch_size),
        layout_(LayoutOf(*node)),
        cancel_(env.cancel),
        memory_budget_bytes_(env.memory_budget_bytes),
        spill_dir_(env.spill_dir),
        spill_partitions_(env.spill_partitions),
        spill_bytes_(env.spill_bytes) {}

  Result<OptBatch> Next() override {
    if (!initialized_) {
      CGQ_RETURN_NOT_OK(Init());
      initialized_ = true;
    }
    while (true) {
      if (chunker_.HasFullBatch() || (drained_ && !chunker_.Empty())) {
        return OptBatch(chunker_.Take(layout_));
      }
      if (drained_) return OptBatch();
      CGQ_ASSIGN_OR_RETURN(OptBatch in, right_->Next());
      if (!in) {
        if (spill_ != nullptr) {
          // Probe side fully routed to partitions: join partition pairs
          // and merge the runs back into reference order.
          std::vector<Row> matched;
          CGQ_RETURN_NOT_OK(spill_->Finish([&](Row row) {
            matched.push_back(std::move(row));
            return Status::OK();
          }));
          if (spill_partitions_ != nullptr) {
            *spill_partitions_ += spill_->partitions();
          }
          if (spill_bytes_ != nullptr) *spill_bytes_ += spill_->spill_bytes();
          spill_.reset();
          chunker_.Add(std::move(matched));
        }
        drained_ = true;
        continue;
      }
      if (spill_ != nullptr) {
        for (const Row& r : in->rows) CGQ_RETURN_NOT_OK(spill_->AddProbe(r));
        continue;
      }
      std::vector<Row> matched;
      for (const Row& r : in->rows) {
        CGQ_RETURN_NOT_OK(table_.Probe(r, spec_, [&](const Row& l) {
          return spec_.EmitIfMatch(l, r, &matched).status();
        }));
      }
      chunker_.Add(std::move(matched));
    }
  }

  const RowLayout& layout() const override { return layout_; }

 private:
  Status Init() {
    // The build (left) side is always fully materialized, mirroring the
    // row interpreter; the probe side streams for hash joins. Nested-loop
    // and sort-merge joins materialize both sides (their output order is
    // left-major, which a right-side stream cannot produce).
    std::vector<Row> left_rows;
    CGQ_RETURN_NOT_OK(Drain(left_.get(), &left_rows));
    CGQ_ASSIGN_OR_RETURN(
        spec_, JoinSpec::Make(*node_, left_->layout(), right_->layout()));

    if (spec_.RequiresNestedLoop() ||
        node_->join_method == JoinMethod::kNestedLoop) {
      std::vector<Row> right_rows;
      CGQ_RETURN_NOT_OK(Drain(right_.get(), &right_rows));
      std::vector<Row> matched;
      for (const Row& l : left_rows) {
        CGQ_RETURN_NOT_OK(CheckCancelled(cancel_));
        for (const Row& r : right_rows) {
          CGQ_RETURN_NOT_OK(spec_.EmitIfMatch(l, r, &matched).status());
        }
      }
      chunker_.Add(std::move(matched));
      drained_ = true;
    } else if (node_->join_method == JoinMethod::kSortMerge) {
      std::vector<Row> right_rows;
      CGQ_RETURN_NOT_OK(Drain(right_.get(), &right_rows));
      std::vector<Row> matched;
      CGQ_RETURN_NOT_OK(exec_internal::SortMergeJoin(
          left_rows, right_rows, spec_.key_positions,
          [&](const Row& l, const Row& r) {
            return spec_.EmitIfMatch(l, r, &matched).status();
          }));
      chunker_.Add(std::move(matched));
      drained_ = true;
    } else if (memory_budget_bytes_ > 0 &&
               RowsByteSize(left_rows) >
                   static_cast<double>(memory_budget_bytes_)) {
      // Build side over budget: grace spill. Probe batches stream into
      // the partitions from Next(); output is byte-identical to the
      // in-memory hash path.
      spill_ = std::make_unique<SpillHashJoin>(
          &spec_, SpillHashJoin::MakeSpillDir(spill_dir_),
          SpillHashJoin::PickPartitions(
              static_cast<uint64_t>(RowsByteSize(left_rows)),
              memory_budget_bytes_),
          cancel_);
      CGQ_RETURN_NOT_OK(spill_->Init());
      for (const Row& row : left_rows) {
        CGQ_RETURN_NOT_OK(spill_->AddBuild(row));
      }
    } else {
      build_rows_ = std::move(left_rows);
      table_.Build(build_rows_, spec_);
    }
    return Status::OK();
  }

  static Status Drain(BatchOp* op, std::vector<Row>* out) {
    while (true) {
      CGQ_ASSIGN_OR_RETURN(OptBatch b, op->Next());
      if (!b) return Status::OK();
      out->insert(out->end(), std::make_move_iterator(b->rows.begin()),
                  std::make_move_iterator(b->rows.end()));
    }
  }

  const PlanNode* node_;
  BatchOpPtr left_;
  BatchOpPtr right_;
  Chunker chunker_;
  RowLayout layout_;
  JoinSpec spec_;
  std::vector<Row> build_rows_;
  JoinHashTable table_;
  const std::atomic<bool>* cancel_ = nullptr;
  uint64_t memory_budget_bytes_ = 0;
  std::string spill_dir_;
  int64_t* spill_partitions_ = nullptr;
  int64_t* spill_bytes_ = nullptr;
  std::unique_ptr<SpillHashJoin> spill_;
  bool initialized_ = false;
  bool drained_ = false;
};

class AggregateOp : public BatchOp {
 public:
  AggregateOp(const PlanNode* node, BatchOpPtr child, size_t batch_size)
      : node_(node),
        child_(std::move(child)),
        chunker_(batch_size),
        layout_(LayoutOf(*node)) {}

  Result<OptBatch> Next() override {
    if (!finished_) {
      HashAggregator agg(node_);
      CGQ_RETURN_NOT_OK(agg.Init(child_->layout()));
      while (true) {
        CGQ_ASSIGN_OR_RETURN(OptBatch in, child_->Next());
        if (!in) break;
        for (const Row& row : in->rows) {
          CGQ_RETURN_NOT_OK(agg.Add(row));
        }
      }
      chunker_.Add(agg.Finish());
      finished_ = true;
    }
    if (chunker_.Empty()) return OptBatch();
    return OptBatch(chunker_.Take(layout_));
  }

  const RowLayout& layout() const override { return layout_; }

 private:
  const PlanNode* node_;
  BatchOpPtr child_;
  Chunker chunker_;
  RowLayout layout_;
  bool finished_ = false;
};

class UnionOp : public BatchOp {
 public:
  static Result<BatchOpPtr> Make(const PlanNode* node,
                                 std::vector<BatchOpPtr> children) {
    RowLayout layout = LayoutOf(*node);
    std::vector<std::vector<size_t>> remaps;
    remaps.reserve(children.size());
    for (const BatchOpPtr& child : children) {
      CGQ_ASSIGN_OR_RETURN(
          std::vector<size_t> positions,
          PositionsOf(layout.attrs(), child->layout(), "union branch"));
      remaps.push_back(std::move(positions));
    }
    return BatchOpPtr(new UnionOp(std::move(layout), std::move(children),
                                  std::move(remaps)));
  }

  Result<OptBatch> Next() override {
    while (current_ < children_.size()) {
      CGQ_ASSIGN_OR_RETURN(OptBatch in, children_[current_]->Next());
      if (!in) {
        ++current_;
        continue;
      }
      const std::vector<size_t>& positions = remaps_[current_];
      RowBatch out;
      out.layout = layout_;
      out.rows.reserve(in->rows.size());
      for (const Row& row : in->rows) {
        Row mapped;
        mapped.reserve(positions.size());
        for (size_t p : positions) mapped.push_back(row[p]);
        out.rows.push_back(std::move(mapped));
      }
      return OptBatch(std::move(out));
    }
    return OptBatch();
  }

  const RowLayout& layout() const override { return layout_; }

 private:
  UnionOp(RowLayout layout, std::vector<BatchOpPtr> children,
          std::vector<std::vector<size_t>> remaps)
      : layout_(std::move(layout)),
        children_(std::move(children)),
        remaps_(std::move(remaps)) {}

  RowLayout layout_;
  std::vector<BatchOpPtr> children_;
  std::vector<std::vector<size_t>> remaps_;
  size_t current_ = 0;
};

}  // namespace

Result<BatchOpPtr> BuildBatchOp(const PlanNode& node, const BatchOpEnv& env) {
  const size_t batch_size = std::max<size_t>(1, env.batch_size);
  switch (node.kind()) {
    case PlanKind::kShip: {
      if (!env.ship_source) {
        return Status::Internal("fragment subtree contains a SHIP but no "
                                "ship source factory was supplied");
      }
      return env.ship_source(node);
    }
    case PlanKind::kScan: {
      if (env.store->storage_mode() == StorageMode::kDisk) {
        CGQ_ASSIGN_OR_RETURN(TableStore::Cursor cursor,
                             env.store->Scan(node.scan_location, node.table));
        return BatchOpPtr(new DiskScanOp(&node, std::move(cursor),
                                         batch_size, env.rows_scanned,
                                         env.storage_blocks_read));
      }
      CGQ_ASSIGN_OR_RETURN(const std::vector<Row>* rows,
                           env.store->Get(node.scan_location, node.table));
      return BatchOpPtr(
          new ScanOp(&node, rows, batch_size, env.rows_scanned));
    }
    case PlanKind::kFilter: {
      CGQ_ASSIGN_OR_RETURN(BatchOpPtr child, BuildBatchOp(*node.child(0), env));
      return BatchOpPtr(new FilterOp(&node, std::move(child)));
    }
    case PlanKind::kProject: {
      CGQ_ASSIGN_OR_RETURN(BatchOpPtr child, BuildBatchOp(*node.child(0), env));
      return ProjectOp::Make(&node, std::move(child));
    }
    case PlanKind::kJoin: {
      CGQ_ASSIGN_OR_RETURN(BatchOpPtr left, BuildBatchOp(*node.child(0), env));
      CGQ_ASSIGN_OR_RETURN(BatchOpPtr right, BuildBatchOp(*node.child(1), env));
      return BatchOpPtr(new JoinOp(&node, std::move(left), std::move(right),
                                   batch_size, env));
    }
    case PlanKind::kAggregate: {
      CGQ_ASSIGN_OR_RETURN(BatchOpPtr child, BuildBatchOp(*node.child(0), env));
      return BatchOpPtr(
          new AggregateOp(&node, std::move(child), batch_size));
    }
    case PlanKind::kUnion: {
      std::vector<BatchOpPtr> children;
      children.reserve(node.children().size());
      for (const PlanNodePtr& c : node.children()) {
        CGQ_ASSIGN_OR_RETURN(BatchOpPtr child, BuildBatchOp(*c, env));
        children.push_back(std::move(child));
      }
      return UnionOp::Make(&node, std::move(children));
    }
  }
  return Status::Internal("unhandled plan kind");
}

}  // namespace exec_internal
}  // namespace cgq
