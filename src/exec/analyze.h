#ifndef CGQ_EXEC_ANALYZE_H_
#define CGQ_EXEC_ANALYZE_H_

#include <string>

#include "catalog/catalog.h"
#include "exec/table_store.h"

namespace cgq {

/// Recomputes the statistics of `table` from the rows actually loaded in
/// `store` (across all fragments) and installs them into `catalog`:
///  - table row count and per-fragment row fractions;
///  - exact per-column distinct counts (hash-based);
///  - numeric/date min and max;
///  - average serialized width.
/// Fails when some fragment has no data loaded.
Status AnalyzeTable(const TableStore& store, const std::string& table,
                    Catalog* catalog);

/// Analyzes every table in the catalog.
Status AnalyzeAll(const TableStore& store, Catalog* catalog);

}  // namespace cgq

#endif  // CGQ_EXEC_ANALYZE_H_
