#ifndef CGQ_EXEC_FRAGMENTER_H_
#define CGQ_EXEC_FRAGMENTER_H_

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "plan/plan_node.h"

namespace cgq {

/// One per-site execution unit of a located plan: the maximal SHIP-free
/// subtree rooted just below a SHIP edge (or at the plan root). A fragment
/// consumes batches from the channels of the SHIP nodes inside its
/// subtree and produces batches either into its own output channel (when
/// it feeds a SHIP) or into the final query result.
struct PlanFragment {
  int id = 0;
  /// Root of this fragment's operator tree (the child of the SHIP it
  /// feeds, or the plan root for the top fragment).
  const PlanNode* root = nullptr;
  /// The SHIP node this fragment feeds; null for the top fragment.
  const PlanNode* ship = nullptr;
  /// Channel this fragment produces into; -1 for the top fragment.
  int output_channel = -1;
  /// Channels this fragment consumes (the SHIP nodes replaced by channel
  /// sources inside its subtree).
  std::vector<int> input_channels;
  /// Execution site (ship_from of the SHIP fed, or the root's location).
  LocationId site = 0;
};

/// A located plan split at its SHIP edges. Fragments are listed in
/// post-order — every producer precedes its consumer — so running them
/// in index order with buffering channels is a valid sequential schedule,
/// and channel ids are deterministic for a given plan.
struct FragmentedPlan {
  std::vector<PlanFragment> fragments;
  /// Channel id of every SHIP node (one channel per SHIP edge).
  std::unordered_map<const PlanNode*, int> channel_of_ship;
  /// Inverse: channel id -> SHIP node.
  std::vector<const PlanNode*> ship_of_channel;

  size_t num_channels() const { return ship_of_channel.size(); }
  const PlanFragment& top() const { return fragments.back(); }
};

/// Splits `root` (a located physical plan, possibly containing SHIP
/// nodes) into per-site fragments connected by channels. A plan without
/// SHIP nodes yields a single fragment.
FragmentedPlan FragmentPlan(const PlanNode& root);

/// The compliance guard of the recovery path: a fragment may only (re)run
/// at the site the located plan assigned it, and that site must lie in
/// the root operator's execution trait; the SHIP it feeds must target a
/// site inside the shipping trait. Plans built outside the optimizer may
/// carry empty (unannotated) traits, which the guard treats as
/// unconstrained. Shared by every backend: the fragmented runtime and the
/// distributed coordinator check before each attempt, and the location
/// server re-checks on *receipt* of a fragment before executing it.
Status CheckFragmentPlacement(int fragment_id, LocationId site,
                              const LocationSet& exec_trait,
                              const PlanNode* ship);
Status CheckFragmentPlacement(const PlanFragment& fragment);

}  // namespace cgq

#endif  // CGQ_EXEC_FRAGMENTER_H_
