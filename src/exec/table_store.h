#ifndef CGQ_EXEC_TABLE_STORE_H_
#define CGQ_EXEC_TABLE_STORE_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/location.h"
#include "common/result.h"
#include "exec/vector/column_batch.h"
#include "types/value.h"

namespace cgq {

/// In-process stand-in for the geo-distributed databases: each location
/// holds the rows of its table fragments (rows are in base-schema column
/// order). The executor's Scan operators read from here; SHIP operators
/// model the transfer between locations.
class TableStore {
 public:
  TableStore() = default;
  // Copies/moves transfer the fragments but not the columnar cache (it
  // regenerates on demand); the mutex makes the defaults unavailable.
  TableStore(const TableStore& other) : fragments_(other.fragments_) {}
  TableStore(TableStore&& other) noexcept
      : fragments_(std::move(other.fragments_)) {}
  TableStore& operator=(const TableStore& other) {
    if (this != &other) {
      fragments_ = other.fragments_;
      std::lock_guard<std::mutex> lock(columnar_mu_);
      columnar_.clear();
    }
    return *this;
  }
  TableStore& operator=(TableStore&& other) noexcept {
    if (this != &other) {
      fragments_ = std::move(other.fragments_);
      std::lock_guard<std::mutex> lock(columnar_mu_);
      columnar_.clear();
    }
    return *this;
  }

  /// Registers the rows of `table`'s fragment at `location` (replaces any
  /// previous content).
  void Put(LocationId location, const std::string& table,
           std::vector<Row> rows);

  /// Appends rows to a fragment.
  void Append(LocationId location, const std::string& table, Row row);

  /// Rows of the fragment; error when no fragment was loaded there.
  Result<const std::vector<Row>*> Get(LocationId location,
                                      const std::string& table) const;

  /// The fragment in columnar form (one immutable column per stored-row
  /// position), converted on first use and cached until the fragment is
  /// replaced or appended to. Vector-backend scans share the cached
  /// columns instead of re-converting the rows on every execution; the
  /// caller wraps them in its per-query RowLayout. Errors when the
  /// fragment is missing or its rows disagree on width. Thread-safe
  /// against concurrent GetColumnar calls (but, like Get, not against a
  /// concurrent Put/Append).
  Result<std::shared_ptr<const std::vector<vec::ColumnPtr>>> GetColumnar(
      LocationId location, const std::string& table) const;

  size_t TotalRows() const;

  /// One stored table fragment, for enumeration (deployment pushes every
  /// fragment to the server hosting its location).
  struct FragmentRef {
    LocationId location = 0;
    std::string table;
    const std::vector<Row>* rows = nullptr;
  };

  /// All stored fragments, sorted by (location, table) so deployment
  /// order is deterministic.
  std::vector<FragmentRef> ListFragments() const;

 private:
  using ColumnarFragment = std::vector<vec::ColumnPtr>;

  static std::string Key(LocationId location, const std::string& table) {
    return std::to_string(location) + "/" + table;
  }
  std::unordered_map<std::string, std::vector<Row>> fragments_;
  mutable std::mutex columnar_mu_;
  mutable std::unordered_map<std::string,
                             std::shared_ptr<const ColumnarFragment>>
      columnar_;
};

}  // namespace cgq

#endif  // CGQ_EXEC_TABLE_STORE_H_
