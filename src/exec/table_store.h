#ifndef CGQ_EXEC_TABLE_STORE_H_
#define CGQ_EXEC_TABLE_STORE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/location.h"
#include "common/result.h"
#include "types/value.h"

namespace cgq {

/// In-process stand-in for the geo-distributed databases: each location
/// holds the rows of its table fragments (rows are in base-schema column
/// order). The executor's Scan operators read from here; SHIP operators
/// model the transfer between locations.
class TableStore {
 public:
  /// Registers the rows of `table`'s fragment at `location` (replaces any
  /// previous content).
  void Put(LocationId location, const std::string& table,
           std::vector<Row> rows);

  /// Appends rows to a fragment.
  void Append(LocationId location, const std::string& table, Row row);

  /// Rows of the fragment; error when no fragment was loaded there.
  Result<const std::vector<Row>*> Get(LocationId location,
                                      const std::string& table) const;

  size_t TotalRows() const;

 private:
  static std::string Key(LocationId location, const std::string& table) {
    return std::to_string(location) + "/" + table;
  }
  std::unordered_map<std::string, std::vector<Row>> fragments_;
};

}  // namespace cgq

#endif  // CGQ_EXEC_TABLE_STORE_H_
