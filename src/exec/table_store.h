#ifndef CGQ_EXEC_TABLE_STORE_H_
#define CGQ_EXEC_TABLE_STORE_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/location.h"
#include "common/result.h"
#include "exec/vector/column_batch.h"
#include "storage/storage_engine.h"
#include "types/value.h"

namespace cgq {

/// Where a TableStore keeps its fragments. kMemory is the default and
/// the byte-identical reference; kDisk routes every fragment through the
/// per-location storage engine (src/storage/) so data survives restarts
/// and scans stream block-by-block instead of pinning tables in RAM.
enum class StorageMode {
  kMemory,
  kDisk,
};

/// In-process stand-in for the geo-distributed databases: each location
/// holds the rows of its table fragments (rows are in base-schema column
/// order). The executor's Scan operators read from here; SHIP operators
/// model the transfer between locations.
///
/// Thread safety: all members are safe against concurrent Put/Append/
/// readers (one internal mutex). `Get` returns a pointer into the store,
/// so its *referent* is only stable while no concurrent mutation runs —
/// the executor upholds that (loads never overlap queries on the same
/// fragment). Cursors snapshot at Scan() time and stay valid regardless.
class TableStore {
 public:
  TableStore() = default;
  // Copies transfer the fragments but not the columnar cache (it
  // regenerates on demand) and materialize disk-backed stores back into
  // a memory-mode copy: a StorageEngine owns its directory exclusively.
  // Both sides' mutexes are held, so copying from a store under
  // concurrent mutation is well-defined.
  TableStore(const TableStore& other);
  TableStore(TableStore&& other) noexcept;
  TableStore& operator=(const TableStore& other);
  TableStore& operator=(TableStore&& other) noexcept;

  /// Switches to StorageMode::kDisk backed by `dir`: recovers whatever a
  /// previous engine persisted there (manifest + commit-log replay),
  /// then migrates any fragments currently in RAM onto disk (same-name
  /// fragments are replaced by the RAM content). On error the store
  /// stays in memory mode, untouched.
  Status EnableDiskStorage(const std::string& dir,
                           storage::StorageOptions options = {});

  /// Reads every fragment back into RAM and returns to kMemory mode.
  /// The on-disk state is checkpointed first and left behind intact.
  Status DisableDiskStorage();

  StorageMode storage_mode() const;
  /// The storage directory; empty in memory mode.
  std::string data_dir() const;

  /// Registers the rows of `table`'s fragment at `location` (replaces any
  /// previous content). In disk mode the rows are logged + flushed before
  /// OK is returned (durable against SIGKILL).
  Status Put(LocationId location, const std::string& table,
             std::vector<Row> rows);

  /// Appends one row to a fragment (durable in disk mode, like Put).
  Status Append(LocationId location, const std::string& table, Row row);

  /// Appends many rows in one durable commit-log record (the bulk-load
  /// path; equivalent to appending each row, but one fsync-equivalent
  /// instead of N).
  Status AppendRows(LocationId location, const std::string& table,
                    std::vector<Row> rows);

  /// Rows of the fragment; error when no fragment was loaded there.
  /// Memory mode only — disk-backed fragments are not pinned in RAM, so
  /// callers stream them with Scan() instead.
  Result<const std::vector<Row>*> Get(LocationId location,
                                      const std::string& table) const;

  /// Row count of the fragment (both modes; no materialization).
  Result<size_t> FragmentRows(LocationId location,
                              const std::string& table) const;

  /// Streaming reader over one fragment, usable in both modes. Memory
  /// mode yields the whole fragment in one chunk (a snapshot copy); disk
  /// mode yields one checksummed block per Next() and counts them.
  class Cursor {
   public:
    /// Fills *out (cleared first) with the next chunk; false when the
    /// fragment is exhausted. Disk corruption is typed kDataLoss.
    Result<bool> Next(std::vector<Row>* out);
    /// Data blocks read so far (0 in memory mode).
    int64_t blocks_read() const;
    /// Total rows this cursor will yield.
    size_t total_rows() const { return total_rows_; }

   private:
    friend class TableStore;
    std::vector<Row> memory_rows_;
    bool memory_done_ = false;
    bool is_disk_ = false;
    storage::StorageEngine::Cursor disk_;
    size_t total_rows_ = 0;
  };
  Result<Cursor> Scan(LocationId location, const std::string& table) const;

  /// The fragment in columnar form (one immutable column per stored-row
  /// position), converted on first use and cached until the fragment is
  /// replaced or appended to; vector-backend scans share the cached
  /// columns. In disk mode the columns are streamed from blocks and NOT
  /// cached (the out-of-core contract: only one fragment's columns are
  /// resident at a time). Errors when the fragment is missing or its
  /// rows disagree on width. `blocks_read`, when non-null, is bumped by
  /// the number of data blocks streamed (0 in memory mode / cache hits).
  Result<std::shared_ptr<const std::vector<vec::ColumnPtr>>> GetColumnar(
      LocationId location, const std::string& table,
      int64_t* blocks_read = nullptr) const;

  size_t TotalRows() const;

  /// One stored table fragment, for enumeration (deployment pushes every
  /// fragment to the server hosting its location; rows stream via Scan).
  struct FragmentRef {
    LocationId location = 0;
    std::string table;
    size_t row_count = 0;
  };

  /// All stored fragments, sorted by (location, table) so deployment
  /// order is deterministic.
  std::vector<FragmentRef> ListFragments() const;

 private:
  using ColumnarFragment = std::vector<vec::ColumnPtr>;

  static std::string Key(LocationId location, const std::string& table) {
    return std::to_string(location) + "/" + table;
  }
  /// Builds columns from rows (shared by the cached and streamed paths).
  static Status AppendToColumns(const std::vector<Row>& rows, size_t width,
                                const std::string& table,
                                std::vector<vec::ColumnVector>* cols);

  Status PutLocked(LocationId location, std::string table,
                   std::vector<Row> rows);

  /// Guards fragments_, engine_ and the mode; columnar_mu_ nests inside.
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::vector<Row>> fragments_;
  std::unique_ptr<storage::StorageEngine> engine_;
  mutable std::mutex columnar_mu_;
  mutable std::unordered_map<std::string,
                             std::shared_ptr<const ColumnarFragment>>
      columnar_;
};

}  // namespace cgq

#endif  // CGQ_EXEC_TABLE_STORE_H_
