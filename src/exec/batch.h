#ifndef CGQ_EXEC_BATCH_H_
#define CGQ_EXEC_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "expr/eval.h"
#include "types/value.h"

namespace cgq {

/// Default number of rows per batch in the fragmented runtime. Small enough
/// to keep intermediates cache-resident, large enough to amortize the
/// per-batch channel hand-off.
inline constexpr int kDefaultBatchSize = 1024;

/// A fixed-size slice of an operator's output: rows positioned per
/// `layout`. Both executor backends exchange these — the row interpreter
/// materializes one batch per operator, the fragmented runtime streams
/// many bounded ones through ship channels.
struct RowBatch {
  RowLayout layout;
  std::vector<Row> rows;

  size_t NumRows() const { return rows.size(); }
  bool Empty() const { return rows.empty(); }

  /// Serialized volume of all rows (the quantity charged to the network
  /// model when the batch crosses a SHIP edge).
  double ByteSize() const {
    double bytes = 0;
    for (const Row& row : rows) {
      for (const Value& v : row) bytes += static_cast<double>(v.ByteSize());
    }
    return bytes;
  }
};

}  // namespace cgq

#endif  // CGQ_EXEC_BATCH_H_
