#ifndef CGQ_EXEC_VECTOR_VECTOR_EXECUTOR_H_
#define CGQ_EXEC_VECTOR_VECTOR_EXECUTOR_H_

#include "common/result.h"
#include "exec/executor.h"
#include "exec/table_store.h"
#include "net/network_model.h"
#include "plan/plan_node.h"

namespace cgq {

/// Columnar vectorized backend: every operator materializes its output as
/// a ColumnBatch (per-column typed vectors + null bitmaps) and processes
/// rows in selection-vector chunks of `options.batch_size`. Expressions
/// run through the vectorized kernels (exec/vector/kernels.h); the hash
/// join builds/probes on columns and gathers matches batch-at-a-time;
/// aggregation folds typed columns group-at-a-time.
///
/// Results are byte-identical to the row interpreter — same rows in the
/// same order, same ships / rows_shipped / bytes_shipped — because the
/// operators reproduce the defined orders of exec/exec_internal.h and
/// every SHIP edge converts to a RowBatch and moves through the same
/// ShipChannel (fault injection, retries and tracing included). See
/// DESIGN.md §12.
Result<QueryResult> ExecuteVectorPlan(const PlanNode& plan,
                                      const TableStore* store,
                                      const NetworkModel* net,
                                      const ExecutorOptions& options);

}  // namespace cgq

#endif  // CGQ_EXEC_VECTOR_VECTOR_EXECUTOR_H_
