#ifndef CGQ_EXEC_VECTOR_KERNELS_H_
#define CGQ_EXEC_VECTOR_KERNELS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.h"
#include "exec/vector/column_batch.h"
#include "expr/expr.h"

namespace cgq {
namespace vec {

/// Row positions into a ColumnBatch, strictly increasing within one
/// operator pass. Filters narrow one; gathers materialize one.
using SelVec = std::vector<uint32_t>;

/// Identity selection [0, n).
SelVec IdentitySel(size_t n);

/// Result of evaluating an expression over the selected rows of a batch.
/// Exactly one representation is active:
///  - a constant (the same Value for every selected row),
///  - a reference to a batch column, indexed *through* the selection
///    vector (zero-copy column refs), or
///  - an owned column parallel to the selection vector (kernel outputs).
struct VecVal {
  bool is_const = false;
  Value cval;
  const ColumnVector* ref = nullptr;
  ColumnVector owned;

  static VecVal Const(Value v) {
    VecVal out;
    out.is_const = true;
    out.cval = std::move(v);
    return out;
  }
  static VecVal Ref(const ColumnVector* col) {
    VecVal out;
    out.ref = col;
    return out;
  }
  static VecVal Owned(ColumnVector col) {
    VecVal out;
    out.owned = std::move(col);
    return out;
  }

  const ColumnVector& col() const { return ref != nullptr ? *ref : owned; }
  /// Physical index of selected row `k` in col().
  size_t IndexOf(const SelVec& sel, size_t k) const {
    return ref != nullptr ? sel[k] : k;
  }
  /// Value of selected row `k` (materializing; kernels use typed access).
  Value At(const SelVec& sel, size_t k) const {
    return is_const ? cval : col().GetValue(IndexOf(sel, k));
  }
};

/// Vectorized EvalExpr: evaluates `expr` for every row in `sel`.
///
/// Produces the exact per-row values of the scalar evaluator (typed fast
/// paths mirror Value::Compare / EvalArithmeticValues semantics; kValue
/// columns degrade to the scalar reference elementwise). One deliberate
/// deviation: on *ill-typed* expressions the error may surface from a
/// different row/operand than in the row backend, because kernels do not
/// short-circuit row-by-row — byte identity is contractual for successful
/// evaluation only (see DESIGN.md §12).
Result<VecVal> EvalExprVec(const Expr& expr, const ColumnBatch& batch,
                           const SelVec& sel);

/// Narrows `*sel` to the rows passing every conjunct. Conjuncts run in
/// order, each only over the survivors of the previous ones — the
/// vectorized form of KeepRow's short-circuit.
Status FilterSel(const std::vector<ExprPtr>& conjuncts,
                 const ColumnBatch& batch, SelVec* sel);

}  // namespace vec
}  // namespace cgq

#endif  // CGQ_EXEC_VECTOR_KERNELS_H_
