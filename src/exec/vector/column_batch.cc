#include "exec/vector/column_batch.h"

namespace cgq {
namespace vec {

const char* ColumnTagToString(ColumnTag tag) {
  switch (tag) {
    case ColumnTag::kInt64:
      return "int64";
    case ColumnTag::kDouble:
      return "double";
    case ColumnTag::kString:
      return "string";
    case ColumnTag::kValue:
      return "value";
  }
  return "?";
}

void ColumnVector::Reserve(size_t n) {
  switch (tag) {
    case ColumnTag::kInt64:
      i64.reserve(n);
      break;
    case ColumnTag::kDouble:
      f64.reserve(n);
      break;
    case ColumnTag::kString:
      str.reserve(n);
      break;
    case ColumnTag::kValue:
      vals.reserve(n);
      break;
  }
}

void ColumnVector::DemoteToValues() {
  std::vector<Value> out;
  out.reserve(size());
  for (size_t i = 0; i < size(); ++i) out.push_back(GetValue(i));
  vals = std::move(out);
  i64.clear();
  f64.clear();
  str.clear();
  tag = ColumnTag::kValue;
}

void ColumnVector::AppendValue(const Value& v) {
  if (tag == ColumnTag::kValue) {
    vals.push_back(v);
    nulls.AppendBit(v.is_null());
    return;
  }
  if (v.is_null()) {
    // A leading run of NULLs stays typed (kInt64 by default); the first
    // non-null value may still retag an all-null column below.
    switch (tag) {
      case ColumnTag::kInt64:
        i64.push_back(0);
        break;
      case ColumnTag::kDouble:
        f64.push_back(0);
        break;
      case ColumnTag::kString:
        str.emplace_back();
        break;
      case ColumnTag::kValue:
        break;
    }
    nulls.AppendBit(true);
    return;
  }
  // A column that has only seen NULLs (or nothing) has no committed type
  // yet: adopt the tag of the first non-null value.
  const bool uncommitted =
      nulls.null_count() == static_cast<int64_t>(size());
  if (uncommitted && tag == ColumnTag::kInt64 && !v.is_int64()) {
    if (v.is_double()) {
      f64.assign(i64.size(), 0);
      i64.clear();
      tag = ColumnTag::kDouble;
    } else {
      str.assign(i64.size(), std::string());
      i64.clear();
      tag = ColumnTag::kString;
    }
  }
  switch (tag) {
    case ColumnTag::kInt64:
      if (v.is_int64()) {
        i64.push_back(v.int64());
        nulls.AppendBit(false);
        return;
      }
      break;
    case ColumnTag::kDouble:
      if (v.is_double()) {
        f64.push_back(v.dbl());
        nulls.AppendBit(false);
        return;
      }
      break;
    case ColumnTag::kString:
      if (v.is_string()) {
        str.push_back(v.str());
        nulls.AppendBit(false);
        return;
      }
      break;
    case ColumnTag::kValue:
      break;
  }
  // Type mismatch within one column: lossless fallback.
  DemoteToValues();
  vals.push_back(v);
  nulls.AppendBit(false);
}

void ColumnVector::AppendFrom(const ColumnVector& other, size_t i) {
  if (tag == other.tag && tag != ColumnTag::kValue) {
    bool is_null = other.nulls.IsNull(i);
    if (is_null && nulls.AllNull() && other.tag != ColumnTag::kInt64) {
      // Keep the generic retagging path in charge of all-null columns.
      AppendValue(Value::Null());
      return;
    }
    switch (tag) {
      case ColumnTag::kInt64:
        i64.push_back(is_null ? 0 : other.i64[i]);
        break;
      case ColumnTag::kDouble:
        f64.push_back(is_null ? 0 : other.f64[i]);
        break;
      case ColumnTag::kString:
        str.push_back(is_null ? std::string() : other.str[i]);
        break;
      case ColumnTag::kValue:
        break;
    }
    nulls.AppendBit(is_null);
    return;
  }
  AppendValue(other.GetValue(i));
}

ColumnVector ColumnVector::Gather(const std::vector<uint32_t>& sel) const {
  ColumnVector out;
  out.tag = tag;
  out.nulls = NullBitmap(sel.size());
  switch (tag) {
    case ColumnTag::kInt64:
      out.i64.resize(sel.size());
      for (size_t k = 0; k < sel.size(); ++k) out.i64[k] = i64[sel[k]];
      break;
    case ColumnTag::kDouble:
      out.f64.resize(sel.size());
      for (size_t k = 0; k < sel.size(); ++k) out.f64[k] = f64[sel[k]];
      break;
    case ColumnTag::kString:
      out.str.resize(sel.size());
      for (size_t k = 0; k < sel.size(); ++k) out.str[k] = str[sel[k]];
      break;
    case ColumnTag::kValue:
      out.vals.resize(sel.size());
      for (size_t k = 0; k < sel.size(); ++k) out.vals[k] = vals[sel[k]];
      break;
  }
  if (nulls.AnyNull()) {
    for (size_t k = 0; k < sel.size(); ++k) {
      if (nulls.IsNull(sel[k])) out.nulls.SetNull(k);
    }
  }
  return out;
}

size_t ColumnVector::ByteSize() const {
  // Mirrors Value::ByteSize per row: 1 byte for NULL, 8 for numerics,
  // size+4 for strings. NULL slots of typed columns hold a zero/empty
  // payload, so the string sum below charges nothing extra for them.
  const size_t n = size();
  const size_t null_n = static_cast<size_t>(nulls.null_count());
  switch (tag) {
    case ColumnTag::kInt64:
    case ColumnTag::kDouble:
      return (n - null_n) * 8 + null_n;
    case ColumnTag::kString: {
      size_t bytes = (n - null_n) * 4 + null_n;
      for (const std::string& s : str) bytes += s.size();
      return bytes;
    }
    case ColumnTag::kValue: {
      size_t bytes = 0;
      for (const Value& v : vals) bytes += v.ByteSize();
      return bytes;
    }
  }
  return 0;
}

ColumnBatch ColumnBatch::Gather(const std::vector<uint32_t>& sel) const {
  ColumnBatch out;
  out.layout = layout;
  out.columns.reserve(columns.size());
  for (const ColumnPtr& c : columns) {
    out.columns.push_back(MakeColumn(c->Gather(sel)));
  }
  return out;
}

double ColumnBatch::ByteSize() const {
  double bytes = 0;
  for (const ColumnPtr& c : columns) {
    bytes += static_cast<double>(c->ByteSize());
  }
  return bytes;
}

Result<ColumnBatch> FromRows(const RowLayout& layout,
                             const std::vector<Row>& rows) {
  std::vector<ColumnVector> cols(layout.size());
  for (ColumnVector& c : cols) c.Reserve(rows.size());
  for (const Row& row : rows) {
    if (row.size() != layout.size()) {
      return Status::Internal("row width " + std::to_string(row.size()) +
                              " does not match layout width " +
                              std::to_string(layout.size()));
    }
    for (size_t c = 0; c < row.size(); ++c) {
      cols[c].AppendValue(row[c]);
    }
  }
  ColumnBatch out;
  out.layout = layout;
  out.columns.reserve(cols.size());
  for (ColumnVector& c : cols) out.columns.push_back(MakeColumn(std::move(c)));
  return out;
}

Result<ColumnBatch> FromRowBatch(const RowBatch& batch) {
  return FromRows(batch.layout, batch.rows);
}

RowBatch ToRowBatch(const ColumnBatch& batch) {
  RowBatch out;
  out.layout = batch.layout;
  const size_t n = batch.NumRows();
  out.rows.resize(n);
  for (size_t i = 0; i < n; ++i) {
    Row& row = out.rows[i];
    row.reserve(batch.columns.size());
    for (const ColumnPtr& c : batch.columns) {
      row.push_back(c->GetValue(i));
    }
  }
  return out;
}

}  // namespace vec
}  // namespace cgq
