#include "exec/vector/vector_executor.h"

#include <algorithm>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "exec/exec_internal.h"
#include "exec/spill_join.h"
#include "exec/vector/column_batch.h"
#include "exec/vector/kernels.h"
#include "expr/eval.h"

namespace cgq {
namespace {

using exec_internal::JoinSpec;
using exec_internal::LayoutOf;
using exec_internal::PositionsOf;
using exec_internal::RowKey;
using exec_internal::RowKeyHash;
using vec::ColumnBatch;
using vec::ColumnPtr;
using vec::ColumnTag;
using vec::ColumnVector;
using vec::SelVec;
using vec::VecVal;

/// Rearranges `in`'s columns into the order given by `positions`, under
/// the new `layout`. Columns are shared handles, so repeats and drops
/// cost nothing.
ColumnBatch SelectColumns(const ColumnBatch& in,
                          const std::vector<size_t>& positions,
                          RowLayout layout) {
  ColumnBatch out;
  out.layout = std::move(layout);
  out.columns.reserve(positions.size());
  for (size_t p : positions) out.columns.push_back(in.columns[p]);
  return out;
}

class VectorInterpreter {
 public:
  VectorInterpreter(const TableStore* store, const NetworkModel* net,
                    const ExecutorOptions* options, ExecMetrics* metrics)
      : store_(store), net_(net), options_(options), metrics_(metrics) {}

  Result<ColumnBatch> Exec(const PlanNode& node) {
    CGQ_RETURN_NOT_OK(CheckCancelled());
    switch (node.kind()) {
      case PlanKind::kScan:
        return ExecScan(node);
      case PlanKind::kFilter:
        return ExecFilter(node);
      case PlanKind::kProject:
        return ExecProject(node);
      case PlanKind::kJoin:
        return ExecJoin(node);
      case PlanKind::kAggregate:
        return ExecAggregate(node);
      case PlanKind::kUnion:
        return ExecUnion(node);
      case PlanKind::kShip:
        return ExecShip(node);
    }
    return Status::Internal("unhandled plan kind");
  }

 private:
  /// Selection-vector chunk granularity (rows per kernel invocation).
  size_t ChunkRows() const {
    return options_->batch_size > 0
               ? static_cast<size_t>(options_->batch_size)
               : static_cast<size_t>(kDefaultBatchSize);
  }

  /// Rows of `batch` passing every conjunct, evaluated chunk-at-a-time.
  Result<SelVec> PassingRows(const ColumnBatch& batch,
                             const std::vector<ExprPtr>& conjuncts) {
    const size_t n = batch.NumRows();
    SelVec keep;
    keep.reserve(n);
    const size_t chunk = ChunkRows();
    for (size_t base = 0; base < n; base += chunk) {
      CGQ_RETURN_NOT_OK(CheckCancelled());
      const size_t end = std::min(base + chunk, n);
      SelVec sel;
      sel.reserve(end - base);
      for (size_t i = base; i < end; ++i) {
        sel.push_back(static_cast<uint32_t>(i));
      }
      CGQ_RETURN_NOT_OK(vec::FilterSel(conjuncts, batch, &sel));
      keep.insert(keep.end(), sel.begin(), sel.end());
    }
    return keep;
  }

  Result<ColumnBatch> ExecScan(const PlanNode& node) {
    CGQ_ASSIGN_OR_RETURN(
        size_t fragment_rows,
        store_->FragmentRows(node.scan_location, node.table));
    RowLayout layout = LayoutOf(node);
    metrics_->rows_scanned += static_cast<int64_t>(fragment_rows);
    // Memory mode shares the store's cached columnar fragment: the
    // conversion runs once per fragment, not once per execution, and the
    // columns are immutable so sharing is safe. Disk mode streams the
    // fragment's blocks into fresh columns instead (nothing cached).
    // Only the query-local layout wrapper is built here.
    CGQ_ASSIGN_OR_RETURN(
        std::shared_ptr<const std::vector<ColumnPtr>> columns,
        store_->GetColumnar(node.scan_location, node.table,
                            &metrics_->storage_blocks_read));
    const size_t width = layout.size();
    ColumnBatch out;
    out.layout = std::move(layout);
    if (columns->size() != width) {
      if (fragment_rows != 0) {
        return Status::Internal("stored row width mismatch for table '" +
                                node.table + "'");
      }
      out.columns.reserve(width);
      for (size_t c = 0; c < width; ++c) {
        out.columns.push_back(vec::MakeColumn(ColumnVector()));
      }
      return out;
    }
    out.columns = *columns;
    return out;
  }

  Result<ColumnBatch> ExecFilter(const PlanNode& node) {
    CGQ_ASSIGN_OR_RETURN(ColumnBatch in, Exec(*node.child(0)));
    CGQ_ASSIGN_OR_RETURN(SelVec keep, PassingRows(in, node.conjuncts));
    if (keep.size() == in.NumRows()) return in;
    return in.Gather(keep);
  }

  Result<ColumnBatch> ExecProject(const PlanNode& node) {
    CGQ_ASSIGN_OR_RETURN(ColumnBatch in, Exec(*node.child(0)));
    CGQ_ASSIGN_OR_RETURN(
        std::vector<size_t> positions,
        PositionsOf(node.project_ids, in.layout, "projection input"));
    return SelectColumns(in, positions, LayoutOf(node));
  }

  Result<ColumnBatch> ExecJoin(const PlanNode& node) {
    CGQ_ASSIGN_OR_RETURN(ColumnBatch left, Exec(*node.child(0)));
    CGQ_ASSIGN_OR_RETURN(ColumnBatch right, Exec(*node.child(1)));
    CGQ_ASSIGN_OR_RETURN(JoinSpec spec,
                         JoinSpec::Make(node, left.layout, right.layout));

    if (spec.RequiresNestedLoop() ||
        node.join_method == JoinMethod::kNestedLoop ||
        node.join_method == JoinMethod::kSortMerge) {
      // Rare methods (cross / non-equi / explicit sort-merge) reuse the
      // shared row machinery rather than a second columnar code path.
      return ExecJoinRowFallback(node, spec, left, right);
    }

    // The budget check reads the columnar batch in place (same bytes
    // ToRowBatch would report); rows are only materialized once the
    // spill path is actually taken, so an under-budget join never pays
    // for — or gets charged the memory of — a row-form copy.
    if (options_->memory_budget_bytes > 0 &&
        left.ByteSize() >
            static_cast<double>(options_->memory_budget_bytes)) {
      // Build side over budget: grace spill through the shared row
      // machinery — byte-identical to the columnar hash path below.
      return ExecJoinSpill(node, spec, vec::ToRowBatch(left),
                           vec::ToRowBatch(right));
    }

    // Build/probe on columns, collecting matched (left, right) index
    // pairs: probe rows in input order, matches in build (insertion)
    // order per key — the defined match order. Rows with a NULL key do
    // not participate.
    std::vector<uint32_t> li, ri;
    CGQ_RETURN_NOT_OK(HashJoinMatches(left, right, spec, &li, &ri));

    // Only the columns the output or the residual reference are gathered
    // out of the conceptual combined (left ++ right) batch.
    const size_t left_cols = left.NumColumns();
    const size_t width = left_cols + right.NumColumns();
    constexpr size_t kUnused = static_cast<size_t>(-1);
    std::vector<size_t> to_reduced(width, kUnused);
    std::vector<size_t> needed;
    auto require = [&](size_t pos) {
      if (to_reduced[pos] == kUnused) {
        to_reduced[pos] = needed.size();
        needed.push_back(pos);
      }
    };
    for (size_t p : spec.out_positions) require(p);
    std::vector<AttrId> residual_ids;
    for (const ExprPtr& c : spec.residual) c->CollectAttrIds(&residual_ids);
    for (AttrId id : residual_ids) {
      size_t pos = spec.combined.PositionOf(id);
      if (pos != RowLayout::kNotFound) require(pos);
    }

    ColumnBatch reduced;
    std::vector<AttrId> reduced_attrs;
    reduced_attrs.reserve(needed.size());
    for (size_t pos : needed) {
      reduced_attrs.push_back(spec.combined.attrs()[pos]);
    }
    reduced.layout = RowLayout(std::move(reduced_attrs));
    reduced.columns.reserve(needed.size());
    for (size_t pos : needed) {
      const ColumnVector& src = pos < left_cols
                                    ? *left.columns[pos]
                                    : *right.columns[pos - left_cols];
      reduced.columns.push_back(
          vec::MakeColumn(src.Gather(pos < left_cols ? li : ri)));
    }
    if (!spec.residual.empty()) {
      CGQ_ASSIGN_OR_RETURN(SelVec keep, PassingRows(reduced, spec.residual));
      if (keep.size() != reduced.NumRows()) {
        reduced = reduced.Gather(keep);
      }
    }
    std::vector<size_t> out_positions;
    out_positions.reserve(spec.out_positions.size());
    for (size_t p : spec.out_positions) out_positions.push_back(to_reduced[p]);
    return SelectColumns(reduced, out_positions, LayoutOf(node));
  }

  /// Equi-join match finder. The single-int64-key shape (every TPC-H
  /// join) gets a primitive-key hash table; the general shape hashes
  /// materialized RowKeys exactly like the row backend.
  Status HashJoinMatches(const ColumnBatch& left, const ColumnBatch& right,
                         const JoinSpec& spec, std::vector<uint32_t>* li,
                         std::vector<uint32_t>* ri) {
    const size_t n_left = left.NumRows();
    const size_t n_right = right.NumRows();
    if (spec.key_positions.size() == 1) {
      const ColumnVector& lk = *left.columns[spec.key_positions[0].first];
      const ColumnVector& rk = *right.columns[spec.key_positions[0].second];
      if (lk.tag == ColumnTag::kInt64 && rk.tag == ColumnTag::kInt64) {
        std::unordered_map<int64_t, std::vector<uint32_t>> table;
        table.reserve(n_left);
        for (size_t i = 0; i < n_left; ++i) {
          if (lk.nulls.IsNull(i)) continue;
          table[lk.i64[i]].push_back(static_cast<uint32_t>(i));
        }
        for (size_t r = 0; r < n_right; ++r) {
          if ((r & 0x3ff) == 0) CGQ_RETURN_NOT_OK(CheckCancelled());
          if (rk.nulls.IsNull(r)) continue;
          auto it = table.find(rk.i64[r]);
          if (it == table.end()) continue;
          for (uint32_t l : it->second) {
            li->push_back(l);
            ri->push_back(static_cast<uint32_t>(r));
          }
        }
        return Status::OK();
      }
    }
    std::unordered_map<RowKey, std::vector<uint32_t>, RowKeyHash> table;
    table.reserve(n_left);
    for (size_t i = 0; i < n_left; ++i) {
      RowKey key;
      bool has_null = false;
      for (auto [lp, rp] : spec.key_positions) {
        Value v = left.columns[lp]->GetValue(i);
        has_null |= v.is_null();
        key.values.push_back(std::move(v));
      }
      if (!has_null) table[std::move(key)].push_back(static_cast<uint32_t>(i));
    }
    for (size_t r = 0; r < n_right; ++r) {
      if ((r & 0x3ff) == 0) CGQ_RETURN_NOT_OK(CheckCancelled());
      RowKey key;
      bool has_null = false;
      for (auto [lp, rp] : spec.key_positions) {
        Value v = right.columns[rp]->GetValue(r);
        has_null |= v.is_null();
        key.values.push_back(std::move(v));
      }
      if (has_null) continue;
      auto it = table.find(key);
      if (it == table.end()) continue;
      for (uint32_t l : it->second) {
        li->push_back(l);
        ri->push_back(static_cast<uint32_t>(r));
      }
    }
    return Status::OK();
  }

  Result<ColumnBatch> ExecJoinSpill(const PlanNode& node,
                                    const JoinSpec& spec, RowBatch lb,
                                    RowBatch rb) {
    exec_internal::SpillHashJoin join(
        &spec,
        exec_internal::SpillHashJoin::MakeSpillDir(options_->spill_dir),
        exec_internal::SpillHashJoin::PickPartitions(
            static_cast<uint64_t>(lb.ByteSize()),
            options_->memory_budget_bytes),
        options_->cancel.get());
    CGQ_RETURN_NOT_OK(join.Init());
    for (const Row& row : lb.rows) CGQ_RETURN_NOT_OK(join.AddBuild(row));
    for (const Row& row : rb.rows) CGQ_RETURN_NOT_OK(join.AddProbe(row));
    std::vector<Row> out_rows;
    CGQ_RETURN_NOT_OK(join.Finish([&](Row row) {
      out_rows.push_back(std::move(row));
      return Status::OK();
    }));
    metrics_->spill_partitions += join.partitions();
    metrics_->spill_bytes += join.spill_bytes();
    return vec::FromRows(LayoutOf(node), out_rows);
  }

  Result<ColumnBatch> ExecJoinRowFallback(const PlanNode& node,
                                          const JoinSpec& spec,
                                          const ColumnBatch& left,
                                          const ColumnBatch& right) {
    RowBatch lb = vec::ToRowBatch(left);
    RowBatch rb = vec::ToRowBatch(right);
    std::vector<Row> out_rows;
    if (spec.RequiresNestedLoop() ||
        node.join_method == JoinMethod::kNestedLoop) {
      for (const Row& l : lb.rows) {
        CGQ_RETURN_NOT_OK(CheckCancelled());
        for (const Row& r : rb.rows) {
          CGQ_RETURN_NOT_OK(spec.EmitIfMatch(l, r, &out_rows).status());
        }
      }
    } else {
      CGQ_RETURN_NOT_OK(exec_internal::SortMergeJoin(
          lb.rows, rb.rows, spec.key_positions,
          [&](const Row& l, const Row& r) {
            return spec.EmitIfMatch(l, r, &out_rows).status();
          }));
    }
    return vec::FromRows(LayoutOf(node), out_rows);
  }

  Result<ColumnBatch> ExecAggregate(const PlanNode& node) {
    CGQ_ASSIGN_OR_RETURN(ColumnBatch in, Exec(*node.child(0)));
    CGQ_ASSIGN_OR_RETURN(
        std::vector<size_t> group_positions,
        PositionsOf(node.group_ids, in.layout, "aggregate input"));

    // Arguments evaluate column-at-a-time over the whole input; rows then
    // fold into their group's accumulators in input order (the exact
    // accumulation order of the scalar AggAccumulator).
    const size_t n = in.NumRows();
    SelVec all = vec::IdentitySel(n);
    std::vector<VecVal> args;
    args.reserve(node.agg_calls.size());
    for (const AggCall& call : node.agg_calls) {
      CGQ_ASSIGN_OR_RETURN(VecVal v, vec::EvalExprVec(*call.arg, in, all));
      args.push_back(std::move(v));
    }

    struct GroupState {
      Row key;
      std::vector<AggAccumulator> accs;
    };
    auto new_group = [&node](Row key) {
      GroupState state;
      state.key = std::move(key);
      state.accs.reserve(node.agg_calls.size());
      for (const AggCall& call : node.agg_calls) {
        state.accs.emplace_back(call.fn);
      }
      return state;
    };
    std::unordered_map<RowKey, size_t, RowKeyHash> group_index;
    std::vector<GroupState> groups;

    if (group_positions.empty()) {
      // Global aggregate: one group, no keying.
      groups.push_back(new_group(Row()));
      for (size_t i = 0; i < n; ++i) {
        for (size_t a = 0; a < args.size(); ++a) {
          groups[0].accs[a].Add(args[a].At(all, i));
        }
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        RowKey key;
        for (size_t p : group_positions) {
          key.values.push_back(in.columns[p]->GetValue(i));
        }
        auto it = group_index.find(key);
        if (it == group_index.end()) {
          Row key_row = key.values;
          it = group_index.emplace(std::move(key), groups.size()).first;
          groups.push_back(new_group(std::move(key_row)));
        }
        GroupState& state = groups[it->second];
        for (size_t a = 0; a < args.size(); ++a) {
          state.accs[a].Add(args[a].At(all, i));
        }
      }
    }

    ColumnBatch out;
    out.layout = LayoutOf(node);
    std::vector<ColumnVector> cols(out.layout.size());
    for (ColumnVector& c : cols) c.Reserve(groups.size());
    for (GroupState& state : groups) {
      size_t c = 0;
      for (const Value& v : state.key) cols[c++].AppendValue(v);
      for (const AggAccumulator& acc : state.accs) {
        cols[c++].AppendValue(acc.Finish());
      }
    }
    out.columns.reserve(cols.size());
    for (ColumnVector& c : cols) {
      out.columns.push_back(vec::MakeColumn(std::move(c)));
    }
    return out;
  }

  Result<ColumnBatch> ExecUnion(const PlanNode& node) {
    ColumnBatch out;
    out.layout = LayoutOf(node);
    std::vector<ColumnVector> acc(out.layout.size());
    for (const PlanNodePtr& child : node.children()) {
      CGQ_ASSIGN_OR_RETURN(ColumnBatch b, Exec(*child));
      // Remap to the union's canonical attribute order.
      CGQ_ASSIGN_OR_RETURN(
          std::vector<size_t> positions,
          PositionsOf(out.layout.attrs(), b.layout, "union branch"));
      const size_t rows = b.NumRows();
      for (size_t c = 0; c < positions.size(); ++c) {
        const ColumnVector& src = *b.columns[positions[c]];
        for (size_t i = 0; i < rows; ++i) acc[c].AppendFrom(src, i);
      }
    }
    out.columns.reserve(acc.size());
    for (ColumnVector& c : acc) {
      out.columns.push_back(vec::MakeColumn(std::move(c)));
    }
    return out;
  }

  Result<ColumnBatch> ExecShip(const PlanNode& node) {
    CGQ_ASSIGN_OR_RETURN(ColumnBatch in, Exec(*node.child(0)));
    // The transfer happens in row form through the same one-message
    // ShipChannel as the row interpreter, so fault simulation, retries and
    // the ships / rows / bytes accounting stay byte-identical across
    // backends. The channel delivers exactly the rows that were sent
    // (retries resend, never mutate), so on success the already-columnar
    // input doubles as the received batch — no row -> column rebuild.
    ShipChannel channel(node.ship_from, node.ship_to, /*capacity=*/0, net_,
                        options_->retry);
    CGQ_RETURN_NOT_OK(channel.Send(vec::ToRowBatch(in)));
    channel.CloseProducer();
    RowBatch row_out;
    const bool delivered = channel.Pop(&row_out);

    ChannelStats edge = channel.stats();
    metrics_->ships += 1;
    metrics_->rows_shipped += edge.rows;
    metrics_->bytes_shipped += edge.bytes;
    metrics_->network_ms += edge.network_ms;
    metrics_->send_retries += edge.send_retries;
    metrics_->dropped_batches += edge.dropped_batches;
    metrics_->send_timeouts += edge.send_timeouts;
    metrics_->recv_timeouts += edge.recv_timeouts;
    metrics_->backoff_ms += edge.backoff_ms;
    metrics_->edges.push_back(edge);
    if (!delivered) {
      ColumnBatch empty;
      empty.layout = in.layout;
      empty.columns.reserve(in.NumColumns());
      for (size_t c = 0; c < in.NumColumns(); ++c) {
        empty.columns.push_back(vec::MakeColumn(ColumnVector()));
      }
      return empty;
    }
    return in;
  }

  Status CheckCancelled() const {
    if (options_->cancel != nullptr &&
        options_->cancel->load(std::memory_order_relaxed)) {
      return Status::Cancelled("query cancelled");
    }
    return Status::OK();
  }

  const TableStore* store_;
  const NetworkModel* net_;
  const ExecutorOptions* options_;
  ExecMetrics* metrics_;
};

}  // namespace

Result<QueryResult> ExecuteVectorPlan(const PlanNode& plan,
                                      const TableStore* store,
                                      const NetworkModel* net,
                                      const ExecutorOptions& options) {
  QueryResult result;
  VectorInterpreter interp(store, net, &options, &result.metrics);
  CGQ_ASSIGN_OR_RETURN(ColumnBatch batch, interp.Exec(plan));
  for (const OutputCol& c : plan.outputs) {
    result.column_names.push_back(c.name);
  }
  RowBatch rows = vec::ToRowBatch(batch);
  result.rows = std::move(rows.rows);
  return result;
}

}  // namespace cgq
