#include "exec/vector/kernels.h"

#include <string>

#include "common/str_util.h"
#include "expr/eval.h"

namespace cgq {
namespace vec {

SelVec IdentitySel(size_t n) {
  SelVec sel(n);
  for (size_t i = 0; i < n; ++i) sel[i] = static_cast<uint32_t>(i);
  return sel;
}

namespace {

/// Tri-state predicate outcome per selected row (SQL three-valued logic).
enum Tri : uint8_t { kTriFalse = 0, kTriTrue = 1, kTriNull = 2 };

/// One comparison/arithmetic operand classified for the typed fast paths.
/// kGeneric covers kValue columns; family mixes between the sides route
/// the whole kernel to the elementwise scalar fallback instead.
struct Operand {
  enum Kind {
    kConstInt,
    kConstDouble,
    kConstString,
    kIntCol,
    kDoubleCol,
    kStringCol,
    kGeneric,
  };
  Kind kind = kGeneric;
  int64_t ci = 0;
  double cd = 0;
  const std::string* cs = nullptr;
  const ColumnVector* col = nullptr;
  bool indirect = false;  ///< column indexed via sel (a batch-column ref)

  bool IsNumeric() const {
    return kind == kConstInt || kind == kConstDouble || kind == kIntCol ||
           kind == kDoubleCol;
  }
  bool IsString() const {
    return kind == kConstString || kind == kStringCol;
  }
  bool IsInt() const { return kind == kConstInt || kind == kIntCol; }
  bool IsCol() const {
    return kind == kIntCol || kind == kDoubleCol || kind == kStringCol;
  }

  size_t Index(const SelVec& sel, size_t k) const {
    return indirect ? sel[k] : k;
  }
  bool NullAt(const SelVec& sel, size_t k) const {
    return IsCol() && col->nulls.IsNull(Index(sel, k));
  }
  int64_t IntAt(const SelVec& sel, size_t k) const {
    return kind == kConstInt ? ci : col->i64[Index(sel, k)];
  }
  double DoubleAt(const SelVec& sel, size_t k) const {
    switch (kind) {
      case kConstInt:
        return static_cast<double>(ci);
      case kConstDouble:
        return cd;
      case kIntCol:
        return static_cast<double>(col->i64[Index(sel, k)]);
      default:
        return col->f64[Index(sel, k)];
    }
  }
  const std::string& StrAt(const SelVec& sel, size_t k) const {
    return kind == kConstString ? *cs : col->str[Index(sel, k)];
  }
};

Operand Classify(const VecVal& v) {
  Operand op;
  if (v.is_const) {
    // Const NULLs are short-circuited by the kernels before Classify.
    if (v.cval.is_int64()) {
      op.kind = Operand::kConstInt;
      op.ci = v.cval.int64();
    } else if (v.cval.is_double()) {
      op.kind = Operand::kConstDouble;
      op.cd = v.cval.dbl();
    } else if (v.cval.is_string()) {
      op.kind = Operand::kConstString;
      op.cs = &v.cval.str();
    }
    return op;
  }
  op.col = &v.col();
  op.indirect = v.ref != nullptr;
  switch (op.col->tag) {
    case ColumnTag::kInt64:
      op.kind = Operand::kIntCol;
      break;
    case ColumnTag::kDouble:
      op.kind = Operand::kDoubleCol;
      break;
    case ColumnTag::kString:
      op.kind = Operand::kStringCol;
      break;
    case ColumnTag::kValue:
      op.kind = Operand::kGeneric;
      break;
  }
  return op;
}

/// Fresh int64 boolean output column with `n` slots reserved.
ColumnVector BoolCol(size_t n) {
  ColumnVector out;
  out.tag = ColumnTag::kInt64;
  out.i64.reserve(n);
  return out;
}

void PushBool(ColumnVector* out, bool b) {
  out->i64.push_back(b ? 1 : 0);
  out->nulls.AppendBit(false);
}

void PushNull(ColumnVector* out) {
  switch (out->tag) {
    case ColumnTag::kInt64:
      out->i64.push_back(0);
      break;
    case ColumnTag::kDouble:
      out->f64.push_back(0);
      break;
    default:
      break;
  }
  out->nulls.AppendBit(true);
}

bool ApplyCmp(ExprOp op, int c) {
  switch (op) {
    case ExprOp::kEq:
      return c == 0;
    case ExprOp::kNe:
      return c != 0;
    case ExprOp::kLt:
      return c < 0;
    case ExprOp::kLe:
      return c <= 0;
    case ExprOp::kGt:
      return c > 0;
    default:
      return c >= 0;  // kGe
  }
}

Result<VecVal> CompareVec(ExprOp op, const VecVal& l, const VecVal& r,
                          const SelVec& sel) {
  // NULL compared to anything is NULL — checked before operand families,
  // exactly like the scalar evaluator.
  if ((l.is_const && l.cval.is_null()) ||
      (r.is_const && r.cval.is_null())) {
    return VecVal::Const(Value::Null());
  }
  if (l.is_const && r.is_const) {
    CGQ_ASSIGN_OR_RETURN(Value v, EvalComparisonValues(op, l.cval, r.cval));
    return VecVal::Const(std::move(v));
  }
  const size_t n = sel.size();
  Operand a = Classify(l);
  Operand b = Classify(r);
  ColumnVector out = BoolCol(n);
  if (a.IsNumeric() && b.IsNumeric()) {
    if (a.IsInt() && b.IsInt()) {
      for (size_t k = 0; k < n; ++k) {
        if (a.NullAt(sel, k) || b.NullAt(sel, k)) {
          PushNull(&out);
          continue;
        }
        int64_t x = a.IntAt(sel, k), y = b.IntAt(sel, k);
        PushBool(&out, ApplyCmp(op, x < y ? -1 : (x > y ? 1 : 0)));
      }
    } else {
      for (size_t k = 0; k < n; ++k) {
        if (a.NullAt(sel, k) || b.NullAt(sel, k)) {
          PushNull(&out);
          continue;
        }
        double x = a.DoubleAt(sel, k), y = b.DoubleAt(sel, k);
        PushBool(&out, ApplyCmp(op, x < y ? -1 : (x > y ? 1 : 0)));
      }
    }
  } else if (a.IsString() && b.IsString()) {
    for (size_t k = 0; k < n; ++k) {
      if (a.NullAt(sel, k) || b.NullAt(sel, k)) {
        PushNull(&out);
        continue;
      }
      const std::string& x = a.StrAt(sel, k);
      const std::string& y = b.StrAt(sel, k);
      PushBool(&out, ApplyCmp(op, x.compare(y) < 0 ? -1 : (x == y ? 0 : 1)));
    }
  } else {
    // kValue columns or family mixes: the scalar reference, elementwise.
    for (size_t k = 0; k < n; ++k) {
      CGQ_ASSIGN_OR_RETURN(
          Value v, EvalComparisonValues(op, l.At(sel, k), r.At(sel, k)));
      out.AppendValue(v);
    }
  }
  return VecVal::Owned(std::move(out));
}

Result<VecVal> ArithmeticVec(ExprOp op, const VecVal& l, const VecVal& r,
                             const SelVec& sel) {
  if ((l.is_const && l.cval.is_null()) ||
      (r.is_const && r.cval.is_null())) {
    return VecVal::Const(Value::Null());
  }
  if (l.is_const && r.is_const) {
    CGQ_ASSIGN_OR_RETURN(Value v, EvalArithmeticValues(op, l.cval, r.cval));
    return VecVal::Const(std::move(v));
  }
  const size_t n = sel.size();
  Operand a = Classify(l);
  Operand b = Classify(r);
  ColumnVector out;
  if (a.IsNumeric() && b.IsNumeric()) {
    if (op == ExprOp::kDiv) {
      // Division is always double; a zero divisor yields NULL.
      out.tag = ColumnTag::kDouble;
      out.f64.reserve(n);
      for (size_t k = 0; k < n; ++k) {
        if (a.NullAt(sel, k) || b.NullAt(sel, k)) {
          PushNull(&out);
          continue;
        }
        double d = b.DoubleAt(sel, k);
        if (d == 0) {
          PushNull(&out);
          continue;
        }
        out.f64.push_back(a.DoubleAt(sel, k) / d);
        out.nulls.AppendBit(false);
      }
    } else if (a.IsInt() && b.IsInt()) {
      out.tag = ColumnTag::kInt64;
      out.i64.reserve(n);
      for (size_t k = 0; k < n; ++k) {
        if (a.NullAt(sel, k) || b.NullAt(sel, k)) {
          PushNull(&out);
          continue;
        }
        int64_t x = a.IntAt(sel, k), y = b.IntAt(sel, k);
        out.i64.push_back(op == ExprOp::kAdd   ? x + y
                          : op == ExprOp::kSub ? x - y
                                               : x * y);
        out.nulls.AppendBit(false);
      }
    } else {
      out.tag = ColumnTag::kDouble;
      out.f64.reserve(n);
      for (size_t k = 0; k < n; ++k) {
        if (a.NullAt(sel, k) || b.NullAt(sel, k)) {
          PushNull(&out);
          continue;
        }
        double x = a.DoubleAt(sel, k), y = b.DoubleAt(sel, k);
        out.f64.push_back(op == ExprOp::kAdd   ? x + y
                          : op == ExprOp::kSub ? x - y
                                               : x * y);
        out.nulls.AppendBit(false);
      }
    }
  } else {
    for (size_t k = 0; k < n; ++k) {
      CGQ_ASSIGN_OR_RETURN(
          Value v, EvalArithmeticValues(op, l.At(sel, k), r.At(sel, k)));
      out.AppendValue(v);
    }
  }
  return VecVal::Owned(std::move(out));
}

/// SQL truthiness of every selected row as a tri-state vector.
std::vector<uint8_t> TriOf(const VecVal& v, const SelVec& sel) {
  const size_t n = sel.size();
  std::vector<uint8_t> out(n);
  if (v.is_const) {
    uint8_t t = v.cval.is_null()
                    ? kTriNull
                    : (IsTruthyValue(v.cval) ? kTriTrue : kTriFalse);
    for (size_t k = 0; k < n; ++k) out[k] = t;
    return out;
  }
  const ColumnVector& c = v.col();
  for (size_t k = 0; k < n; ++k) {
    size_t i = v.IndexOf(sel, k);
    switch (c.tag) {
      case ColumnTag::kInt64:
        out[k] = c.nulls.IsNull(i) ? kTriNull
                                   : (c.i64[i] != 0 ? kTriTrue : kTriFalse);
        break;
      case ColumnTag::kDouble:
        out[k] = c.nulls.IsNull(i) ? kTriNull
                                   : (c.f64[i] != 0 ? kTriTrue : kTriFalse);
        break;
      case ColumnTag::kString:
        out[k] = c.nulls.IsNull(i)
                     ? kTriNull
                     : (!c.str[i].empty() ? kTriTrue : kTriFalse);
        break;
      case ColumnTag::kValue: {
        const Value& val = c.vals[i];
        out[k] = val.is_null()
                     ? kTriNull
                     : (IsTruthyValue(val) ? kTriTrue : kTriFalse);
        break;
      }
    }
  }
  return out;
}

Result<VecVal> LikeVec(ExprOp op, const VecVal& l, const VecVal& r,
                       const SelVec& sel) {
  if ((l.is_const && l.cval.is_null()) ||
      (r.is_const && r.cval.is_null())) {
    return VecVal::Const(Value::Null());
  }
  const bool negate = op == ExprOp::kNotLike;
  const size_t n = sel.size();
  Operand a = Classify(l);
  Operand b = Classify(r);
  ColumnVector out = BoolCol(n);
  if (a.IsString() && b.IsString()) {
    for (size_t k = 0; k < n; ++k) {
      if (a.NullAt(sel, k) || b.NullAt(sel, k)) {
        PushNull(&out);
        continue;
      }
      bool m = LikeMatch(a.StrAt(sel, k), b.StrAt(sel, k));
      PushBool(&out, negate ? !m : m);
    }
  } else {
    for (size_t k = 0; k < n; ++k) {
      Value lv = l.At(sel, k);
      Value rv = r.At(sel, k);
      if (lv.is_null() || rv.is_null()) {
        PushNull(&out);
        continue;
      }
      if (!lv.is_string() || !rv.is_string()) {
        return Status::InvalidArgument("LIKE requires string operands");
      }
      bool m = LikeMatch(lv.str(), rv.str());
      PushBool(&out, negate ? !m : m);
    }
  }
  return VecVal::Owned(std::move(out));
}

Result<VecVal> InVec(const Expr& expr, const ColumnBatch& batch,
                     const SelVec& sel) {
  CGQ_ASSIGN_OR_RETURN(VecVal needle,
                       EvalExprVec(*expr.child(0), batch, sel));
  auto member = [&expr](const Value& v) {
    for (const Value& candidate : expr.in_list()) {
      if (!candidate.is_null() && v.Equals(candidate)) return true;
    }
    return false;
  };
  if (needle.is_const) {
    if (needle.cval.is_null()) return VecVal::Const(Value::Null());
    return VecVal::Const(Value::Int64(member(needle.cval) ? 1 : 0));
  }
  const size_t n = sel.size();
  ColumnVector out = BoolCol(n);
  for (size_t k = 0; k < n; ++k) {
    Value v = needle.At(sel, k);
    if (v.is_null()) {
      PushNull(&out);
      continue;
    }
    PushBool(&out, member(v));
  }
  return VecVal::Owned(std::move(out));
}

}  // namespace

Result<VecVal> EvalExprVec(const Expr& expr, const ColumnBatch& batch,
                           const SelVec& sel) {
  switch (expr.op()) {
    case ExprOp::kLiteral:
      return VecVal::Const(expr.literal());
    case ExprOp::kColumnRef: {
      size_t pos = batch.layout.PositionOf(expr.attr_id());
      if (pos == RowLayout::kNotFound) {
        return Status::Internal("attr " + expr.ToString() +
                                " not in row layout");
      }
      return VecVal::Ref(batch.columns[pos].get());
    }
    case ExprOp::kAnd:
    case ExprOp::kOr: {
      CGQ_ASSIGN_OR_RETURN(VecVal lv,
                           EvalExprVec(*expr.child(0), batch, sel));
      CGQ_ASSIGN_OR_RETURN(VecVal rv,
                           EvalExprVec(*expr.child(1), batch, sel));
      std::vector<uint8_t> lt = TriOf(lv, sel);
      std::vector<uint8_t> rt = TriOf(rv, sel);
      const bool is_and = expr.op() == ExprOp::kAnd;
      ColumnVector out = BoolCol(sel.size());
      for (size_t k = 0; k < sel.size(); ++k) {
        // Kleene logic: a decided side dominates NULL on the other.
        uint8_t decided = is_and ? kTriFalse : kTriTrue;
        if (lt[k] == decided || rt[k] == decided) {
          PushBool(&out, !is_and);
        } else if (lt[k] == kTriNull || rt[k] == kTriNull) {
          PushNull(&out);
        } else {
          PushBool(&out, is_and);
        }
      }
      return VecVal::Owned(std::move(out));
    }
    case ExprOp::kNot: {
      CGQ_ASSIGN_OR_RETURN(VecVal v, EvalExprVec(*expr.child(0), batch, sel));
      std::vector<uint8_t> t = TriOf(v, sel);
      ColumnVector out = BoolCol(sel.size());
      for (size_t k = 0; k < sel.size(); ++k) {
        if (t[k] == kTriNull) {
          PushNull(&out);
        } else {
          PushBool(&out, t[k] == kTriFalse);
        }
      }
      return VecVal::Owned(std::move(out));
    }
    case ExprOp::kEq:
    case ExprOp::kNe:
    case ExprOp::kLt:
    case ExprOp::kLe:
    case ExprOp::kGt:
    case ExprOp::kGe: {
      CGQ_ASSIGN_OR_RETURN(VecVal l, EvalExprVec(*expr.child(0), batch, sel));
      CGQ_ASSIGN_OR_RETURN(VecVal r, EvalExprVec(*expr.child(1), batch, sel));
      return CompareVec(expr.op(), l, r, sel);
    }
    case ExprOp::kAdd:
    case ExprOp::kSub:
    case ExprOp::kMul:
    case ExprOp::kDiv: {
      CGQ_ASSIGN_OR_RETURN(VecVal l, EvalExprVec(*expr.child(0), batch, sel));
      CGQ_ASSIGN_OR_RETURN(VecVal r, EvalExprVec(*expr.child(1), batch, sel));
      return ArithmeticVec(expr.op(), l, r, sel);
    }
    case ExprOp::kLike:
    case ExprOp::kNotLike: {
      CGQ_ASSIGN_OR_RETURN(VecVal l, EvalExprVec(*expr.child(0), batch, sel));
      CGQ_ASSIGN_OR_RETURN(VecVal r, EvalExprVec(*expr.child(1), batch, sel));
      return LikeVec(expr.op(), l, r, sel);
    }
    case ExprOp::kIn:
      return InVec(expr, batch, sel);
  }
  return Status::Internal("unhandled expression op");
}

Status FilterSel(const std::vector<ExprPtr>& conjuncts,
                 const ColumnBatch& batch, SelVec* sel) {
  for (const ExprPtr& c : conjuncts) {
    if (sel->empty()) return Status::OK();
    CGQ_ASSIGN_OR_RETURN(VecVal v, EvalExprVec(*c, batch, *sel));
    if (v.is_const) {
      if (!v.cval.is_null() && IsTruthyValue(v.cval)) continue;
      sel->clear();
      return Status::OK();
    }
    SelVec next;
    next.reserve(sel->size());
    const ColumnVector& col = v.col();
    if (col.tag == ColumnTag::kInt64) {
      for (size_t k = 0; k < sel->size(); ++k) {
        size_t i = v.IndexOf(*sel, k);
        if (!col.nulls.IsNull(i) && col.i64[i] != 0) {
          next.push_back((*sel)[k]);
        }
      }
    } else {
      for (size_t k = 0; k < sel->size(); ++k) {
        Value val = v.At(*sel, k);
        if (!val.is_null() && IsTruthyValue(val)) next.push_back((*sel)[k]);
      }
    }
    *sel = std::move(next);
  }
  return Status::OK();
}

}  // namespace vec
}  // namespace cgq
