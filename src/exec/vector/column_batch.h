#ifndef CGQ_EXEC_VECTOR_COLUMN_BATCH_H_
#define CGQ_EXEC_VECTOR_COLUMN_BATCH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "exec/batch.h"
#include "expr/eval.h"
#include "types/value.h"

namespace cgq {
namespace vec {

/// Bit-packed validity companion of one column: bit i set means row i is
/// NULL. Mostly-zero words make the common no-nulls case branch-free to
/// test, and all-null columns cost one bit per row regardless of type.
class NullBitmap {
 public:
  NullBitmap() = default;
  explicit NullBitmap(size_t size) : size_(size), words_((size + 63) / 64) {}

  size_t size() const { return size_; }

  void Resize(size_t size) {
    size_ = size;
    words_.resize((size + 63) / 64);
  }

  bool IsNull(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void SetNull(size_t i) {
    words_[i >> 6] |= uint64_t{1} << (i & 63);
    ++null_count_;
  }
  void AppendBit(bool is_null) {
    size_t i = size_++;
    if ((i & 63) == 0) words_.push_back(0);
    if (is_null) {
      words_[i >> 6] |= uint64_t{1} << (i & 63);
      ++null_count_;
    }
  }

  int64_t null_count() const { return null_count_; }
  bool AnyNull() const { return null_count_ != 0; }
  bool AllNull() const {
    return size_ != 0 && null_count_ == static_cast<int64_t>(size_);
  }

 private:
  size_t size_ = 0;
  int64_t null_count_ = 0;
  std::vector<uint64_t> words_;
};

/// Physical representation of one column vector. Dates share kInt64 (as in
/// Value); kValue is the lossless fallback for columns that are not
/// type-uniform (it stores the original Values and every kernel degrades
/// to the scalar reference semantics elementwise).
enum class ColumnTag { kInt64, kDouble, kString, kValue };

const char* ColumnTagToString(ColumnTag tag);

/// One column of a ColumnBatch: a contiguous typed vector plus a null
/// bitmap. NULL slots of typed columns hold a zero / empty payload; the
/// bitmap is authoritative. An all-null column (no non-null value to
/// infer a type from) is kInt64 with every bit set.
struct ColumnVector {
  ColumnTag tag = ColumnTag::kInt64;
  NullBitmap nulls;
  std::vector<int64_t> i64;
  std::vector<double> f64;
  std::vector<std::string> str;
  std::vector<Value> vals;  ///< kValue fallback only

  size_t size() const { return nulls.size(); }

  /// Reserves payload capacity for `n` rows under the current tag.
  void Reserve(size_t n);

  /// Materializes row `i` as a Value, byte-identical to the Value the
  /// column was built from.
  Value GetValue(size_t i) const {
    if (tag != ColumnTag::kValue && nulls.IsNull(i)) return Value::Null();
    switch (tag) {
      case ColumnTag::kInt64:
        return Value::Int64(i64[i]);
      case ColumnTag::kDouble:
        return Value::Double(f64[i]);
      case ColumnTag::kString:
        return Value::String(str[i]);
      case ColumnTag::kValue:
        return vals[i];
    }
    return Value::Null();
  }

  /// Appends one Value, demoting the whole column to the kValue fallback
  /// when the value does not fit the current tag (first non-null value
  /// decides the tag of a fresh column).
  void AppendValue(const Value& v);

  /// Appends row `i` of `other` (same-tag fast path, generic otherwise).
  void AppendFrom(const ColumnVector& other, size_t i);

  /// New column holding rows `sel` of this one, in selection order.
  ColumnVector Gather(const std::vector<uint32_t>& sel) const;

  /// Serialized volume of the column's values, computed in place —
  /// exactly what RowBatch::ByteSize would report for this column after
  /// ToRowBatch, without materializing any row.
  size_t ByteSize() const;

 private:
  /// Converts a typed column (with however many rows it already has) to
  /// the kValue representation.
  void DemoteToValues();
};

/// Shared immutable column handle. Operators build a ColumnVector, then
/// freeze it behind a shared_ptr; downstream operators that keep a column
/// unchanged (projection, all-pass filters, the scan cache) share the
/// handle instead of copying the payload.
using ColumnPtr = std::shared_ptr<const ColumnVector>;

inline ColumnPtr MakeColumn(ColumnVector&& col) {
  return std::make_shared<ColumnVector>(std::move(col));
}

/// Columnar counterpart of RowBatch: per-column contiguous vectors +
/// null bitmaps, positioned per `layout`. The vectorized backend's
/// operators exchange these; conversion to/from RowBatch happens only at
/// ShipChannel and result boundaries (see DESIGN.md §12), so fragment
/// shipping, fault injection/replay, and tracing semantics are untouched.
struct ColumnBatch {
  RowLayout layout;
  std::vector<ColumnPtr> columns;  ///< parallel to layout.attrs()

  size_t NumRows() const {
    return columns.empty() ? 0 : columns[0]->size();
  }
  size_t NumColumns() const { return columns.size(); }

  /// New batch holding rows `sel`, in selection order.
  ColumnBatch Gather(const std::vector<uint32_t>& sel) const;

  /// Serialized volume of all rows, equal to ToRowBatch(*this).ByteSize()
  /// but computed from the columns (no row materialization).
  double ByteSize() const;
};

/// Row -> column conversion. Column tags are inferred from the first
/// non-null value of each column; mixed columns fall back to kValue.
/// Fails only on a row/layout width mismatch.
Result<ColumnBatch> FromRowBatch(const RowBatch& batch);

/// Same, directly from stored rows (the scan path; skips the RowBatch).
Result<ColumnBatch> FromRows(const RowLayout& layout,
                             const std::vector<Row>& rows);

/// Column -> row conversion, value-identical to what FromRowBatch
/// consumed: round-tripping any RowBatch reproduces it byte-for-byte.
RowBatch ToRowBatch(const ColumnBatch& batch);

}  // namespace vec
}  // namespace cgq

#endif  // CGQ_EXEC_VECTOR_COLUMN_BATCH_H_
