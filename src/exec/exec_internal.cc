#include "exec/exec_internal.h"

namespace cgq {
namespace exec_internal {

RowLayout LayoutOf(const PlanNode& node) {
  std::vector<AttrId> ids;
  ids.reserve(node.outputs.size());
  for (const OutputCol& c : node.outputs) ids.push_back(c.id);
  return RowLayout(std::move(ids));
}

Result<std::vector<size_t>> PositionsOf(const std::vector<AttrId>& ids,
                                        const RowLayout& layout,
                                        const char* context) {
  std::vector<size_t> positions;
  positions.reserve(ids.size());
  for (AttrId id : ids) {
    size_t pos = layout.PositionOf(id);
    if (pos == RowLayout::kNotFound) {
      return Status::Internal(std::string(context) + " misses attr " +
                              std::to_string(id));
    }
    positions.push_back(pos);
  }
  return positions;
}

Result<bool> KeepRow(const std::vector<ExprPtr>& conjuncts, const Row& row,
                     const RowLayout& layout) {
  for (const ExprPtr& c : conjuncts) {
    CGQ_ASSIGN_OR_RETURN(bool ok, EvalPredicate(*c, row, layout));
    if (!ok) return false;
  }
  return true;
}

Result<JoinSpec> JoinSpec::Make(const PlanNode& node, const RowLayout& left,
                                const RowLayout& right) {
  JoinSpec spec;
  spec.method = node.join_method;

  // Split conjuncts into equi-pairs usable as hash keys and residuals.
  for (const ExprPtr& c : node.conjuncts) {
    bool is_key = false;
    if (c->op() == ExprOp::kEq && c->child(0)->op() == ExprOp::kColumnRef &&
        c->child(1)->op() == ExprOp::kColumnRef) {
      AttrId a = c->child(0)->attr_id();
      AttrId b = c->child(1)->attr_id();
      size_t la = left.PositionOf(a);
      size_t rb = right.PositionOf(b);
      if (la != RowLayout::kNotFound && rb != RowLayout::kNotFound) {
        spec.key_positions.emplace_back(la, rb);
        is_key = true;
      } else {
        size_t lb = left.PositionOf(b);
        size_t ra = right.PositionOf(a);
        if (lb != RowLayout::kNotFound && ra != RowLayout::kNotFound) {
          spec.key_positions.emplace_back(lb, ra);
          is_key = true;
        }
      }
    }
    if (!is_key) spec.residual.push_back(c);
  }

  std::vector<AttrId> ids = left.attrs();
  ids.insert(ids.end(), right.attrs().begin(), right.attrs().end());
  spec.combined = RowLayout(std::move(ids));

  // Map the node's canonical output order (which may differ from
  // left ++ right after commutes) to combined positions.
  RowLayout out = LayoutOf(node);
  CGQ_ASSIGN_OR_RETURN(spec.out_positions,
                       PositionsOf(out.attrs(), spec.combined,
                                   "join output"));
  return spec;
}

Result<bool> JoinSpec::EmitIfMatch(const Row& l, const Row& r,
                                   std::vector<Row>* out) const {
  Row joined = l;
  joined.insert(joined.end(), r.begin(), r.end());
  for (const ExprPtr& c : residual) {
    CGQ_ASSIGN_OR_RETURN(bool ok, EvalPredicate(*c, joined, combined));
    if (!ok) return false;
  }
  Row final_row(out_positions.size());
  for (size_t i = 0; i < out_positions.size(); ++i) {
    final_row[i] = joined[out_positions[i]];
  }
  out->push_back(std::move(final_row));
  return true;
}

void JoinHashTable::Build(const std::vector<Row>& left,
                          const JoinSpec& spec) {
  left_ = &left;
  table_.clear();
  table_.reserve(left.size());
  for (size_t i = 0; i < left.size(); ++i) {
    RowKey key;
    bool has_null = false;
    for (auto [lp, rp] : spec.key_positions) {
      has_null |= left[i][lp].is_null();
      key.values.push_back(left[i][lp]);
    }
    if (!has_null) table_[std::move(key)].push_back(i);
  }
}

Status HashAggregator::Init(const RowLayout& in_layout) {
  in_layout_ = in_layout;
  CGQ_ASSIGN_OR_RETURN(group_positions_,
                       PositionsOf(node_->group_ids, in_layout_,
                                   "aggregate input"));
  return Status::OK();
}

Status HashAggregator::Add(const Row& row) {
  RowKey key;
  for (size_t p : group_positions_) key.values.push_back(row[p]);
  auto it = group_index_.find(key);
  if (it == group_index_.end()) {
    GroupState state;
    state.key = key.values;
    for (const AggCall& call : node_->agg_calls) {
      state.accs.emplace_back(call.fn);
    }
    it = group_index_.emplace(std::move(key), groups_.size()).first;
    groups_.push_back(std::move(state));
  }
  GroupState& state = groups_[it->second];
  for (size_t i = 0; i < node_->agg_calls.size(); ++i) {
    CGQ_ASSIGN_OR_RETURN(
        Value v, EvalExpr(*node_->agg_calls[i].arg, row, in_layout_));
    state.accs[i].Add(v);
  }
  return Status::OK();
}

std::vector<Row> HashAggregator::Finish() {
  if (groups_.empty() && node_->group_ids.empty()) {
    GroupState state;
    for (const AggCall& call : node_->agg_calls) {
      state.accs.emplace_back(call.fn);
    }
    groups_.push_back(std::move(state));
  }
  std::vector<Row> out;
  out.reserve(groups_.size());
  for (GroupState& state : groups_) {
    Row row = std::move(state.key);
    for (const AggAccumulator& acc : state.accs) {
      row.push_back(acc.Finish());
    }
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace exec_internal
}  // namespace cgq
