#ifndef CGQ_EXEC_EXECUTOR_H_
#define CGQ_EXEC_EXECUTOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/optimizer.h"
#include "exec/table_store.h"
#include "net/network_model.h"
#include "plan/plan_node.h"

namespace cgq {

/// Observed execution-side costs, driven by actual intermediate sizes (the
/// quality metric of §7.4 / Fig. 6g,h).
struct ExecMetrics {
  int64_t ships = 0;
  int64_t rows_shipped = 0;
  double bytes_shipped = 0;
  /// Simulated wall-clock of all transfers under the message cost model.
  double network_ms = 0;
  int64_t rows_scanned = 0;
};

/// Rows of a query result plus transfer metrics.
struct QueryResult {
  std::vector<std::string> column_names;
  std::vector<Row> rows;
  ExecMetrics metrics;
};

/// Row-at-a-time interpreter for located physical plans. Each operator
/// materializes its output; SHIP operators charge the network model with
/// the measured byte volume. Correctness-oriented (the paper measures
/// communication cost, not single-node throughput).
class Executor {
 public:
  Executor(const TableStore* store, const NetworkModel* net)
      : store_(store), net_(net) {}

  /// Executes an optimized query, applying its ORDER BY / LIMIT at the
  /// result site.
  Result<QueryResult> Execute(const OptimizedQuery& query) const;

  /// Executes a bare plan tree (no presentation steps).
  Result<QueryResult> ExecutePlan(const PlanNode& plan) const;

 private:
  const TableStore* store_;
  const NetworkModel* net_;
};

}  // namespace cgq

#endif  // CGQ_EXEC_EXECUTOR_H_
