#ifndef CGQ_EXEC_EXECUTOR_H_
#define CGQ_EXEC_EXECUTOR_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/optimizer.h"
#include "exec/channel.h"
#include "exec/table_store.h"
#include "net/network_model.h"
#include "plan/plan_node.h"

namespace cgq {

namespace net {
class ClusterClient;
}  // namespace net

/// Which runtime executes located plans.
enum class ExecMode {
  /// Row-at-a-time interpreter: every operator materializes its output on
  /// one thread. The reference backend.
  kRow,
  /// Fragmented runtime: the plan is split at its SHIP edges into
  /// per-site fragments that exchange bounded row batches through ship
  /// channels and run concurrently. Byte-identical results and identical
  /// ship metrics to the row backend.
  kFragment,
  /// Columnar vectorized backend: operators exchange per-column typed
  /// vectors with null bitmaps and evaluate expressions over selection
  /// vectors in batch_size chunks (see exec/vector/). Byte-identical
  /// results and identical ship metrics to the row backend.
  kVector,
  /// Wire-level deployment: fragments are dispatched over TCP to
  /// per-location servers (ExecutorOptions::cluster) and their result
  /// batches streamed back; every SHIP edge still runs through the
  /// coordinator's in-process channel, so results AND ship metrics stay
  /// byte-identical to the in-process backends (see
  /// exec/distributed_executor.h).
  kDistributed,
};

const char* ExecModeToString(ExecMode mode);

/// Runtime configuration of the executor (the execution-side counterpart
/// of OptimizerOptions).
struct ExecutorOptions {
  ExecMode mode = ExecMode::kRow;
  /// Rows per batch in the fragmented runtime; also the selection-vector
  /// chunk granularity of the vectorized backend.
  int batch_size = kDefaultBatchSize;
  /// Batches in flight per ship channel before the producer blocks
  /// (backpressure). 0 = unbounded.
  int channel_capacity = 4;
  /// Fragment scheduling: 1 = run fragments sequentially bottom-up
  /// (channels buffer whole intermediates, like the row backend's
  /// materialization); any other value = pipelined, one worker per
  /// fragment on a thread pool, bounded channels. Results are identical
  /// at every setting.
  int threads = 0;
  /// Send/recv timeouts, bounded retries with exponential backoff, and
  /// the deterministic fault seed — the recovery knobs of both backends.
  /// `retry.max_retries` also bounds restarts of a failed source
  /// fragment.
  RetryPolicy retry;
  /// Cooperative cancellation token (set by QueryService::Cancel).
  /// Checked at operator boundaries and inside join/batch loops; when it
  /// flips to true the query aborts with StatusCode::kCancelled. nullptr
  /// = not cancellable.
  std::shared_ptr<std::atomic<bool>> cancel;
  /// Connected deployment for ExecMode::kDistributed (required there,
  /// ignored by the in-process backends). Not owned.
  net::ClusterClient* cluster = nullptr;
  /// Per-query memory budget for blocking operators. 0 = unlimited.
  /// When the build side of a hash join exceeds the budget, the join
  /// switches to the grace/partitioned spill path (exec/spill_join.h):
  /// both sides are partitioned to checksummed spill files and joined
  /// partition-pairwise, with byte-identical output. Scans are already
  /// out-of-core in StorageMode::kDisk regardless of this knob.
  uint64_t memory_budget_bytes = 0;
  /// Directory for spill partition files; empty = a per-query directory
  /// under the system temp dir, removed when the query finishes.
  std::string spill_dir;
};

/// Wall time and output volume of one executed fragment.
struct FragmentMetrics {
  int id = 0;
  LocationId site = 0;
  double wall_ms = 0;
  int64_t rows_out = 0;
  int64_t rows_scanned = 0;
  /// Times the fragment was restarted after a transient failure. Every
  /// restart re-ran at the same compliant site (`site`); recovery never
  /// re-places a fragment.
  int64_t restarts = 0;
};

/// Observed execution-side costs, driven by actual intermediate sizes (the
/// quality metric of §7.4 / Fig. 6g,h), plus per-edge and per-fragment
/// breakdowns from the fragmented runtime.
struct ExecMetrics {
  int64_t ships = 0;
  int64_t rows_shipped = 0;
  double bytes_shipped = 0;
  /// Simulated wall-clock of all transfers under the message cost model.
  double network_ms = 0;
  /// Real wall-clock of Execute() (optimizer time excluded). Filled by
  /// Executor::Execute, not ExecutePlan.
  double exec_wall_ms = 0;
  int64_t rows_scanned = 0;
  /// Recovery accounting, aggregated over all edges and fragments. All
  /// zero on a fault-free run; under injected faults, `rows_shipped` /
  /// `bytes_shipped` above include every reattempted transmission.
  int64_t send_retries = 0;
  int64_t dropped_batches = 0;
  int64_t send_timeouts = 0;
  int64_t recv_timeouts = 0;
  int64_t fragment_restarts = 0;
  double backoff_ms = 0;
  /// Storage-engine accounting (all zero for in-memory fault-free runs):
  /// checksummed data blocks streamed by disk-mode scans, and the
  /// grace-hash-join spill volume under `memory_budget_bytes`.
  int64_t storage_blocks_read = 0;
  int64_t spill_partitions = 0;
  int64_t spill_bytes = 0;
  /// Largest hash-join build side seen, in estimated row bytes. Row
  /// backend only (the reference interpreter pays the extra pass); used
  /// to derive spill-sweep budgets as fractions of the build side.
  int64_t max_build_bytes = 0;
  /// One entry per SHIP edge, in plan post-order (row backend: one
  /// single-batch entry per executed SHIP).
  std::vector<ChannelStats> edges;
  /// One entry per fragment (fragment mode only).
  std::vector<FragmentMetrics> fragments;
};

/// Human-readable per-site / per-channel breakdown of `metrics`, appended
/// to result footers (cgq_shell, analyze output). `locations` may be null.
std::string FormatExecMetrics(const ExecMetrics& metrics,
                              const LocationCatalog* locations);

/// Rows of a query result plus transfer metrics.
struct QueryResult {
  std::vector<std::string> column_names;
  std::vector<Row> rows;
  ExecMetrics metrics;
  /// Per-phase optimizer timing of the query that produced this result
  /// (copied by Executor::Execute; zeroed for bare ExecutePlan calls).
  OptimizationStats opt_stats;
};

/// One-line EXPLAIN ANALYZE-style per-phase breakdown: optimizer phases
/// (parse+bind, explore, annotate, site selection) and, when
/// `metrics.exec_wall_ms` is non-zero, executor wall time with the
/// simulated WAN component. Appended to result footers next to
/// FormatExecMetrics.
std::string FormatPhaseTimings(const OptimizationStats& opt,
                               const ExecMetrics& metrics);

/// Multi-site executor for located physical plans. Three backends (see
/// ExecMode): the row-at-a-time reference interpreter, the fragmented
/// batch runtime, and the columnar vectorized backend. SHIP operators
/// charge the network model with the measured byte volume in every mode.
class Executor {
 public:
  Executor(const TableStore* store, const NetworkModel* net)
      : store_(store), net_(net) {}
  Executor(const TableStore* store, const NetworkModel* net,
           ExecutorOptions options)
      : store_(store), net_(net), options_(options) {}

  const ExecutorOptions& options() const { return options_; }

  /// Executes an optimized query, applying its ORDER BY / LIMIT at the
  /// result site.
  Result<QueryResult> Execute(const OptimizedQuery& query) const;

  /// Executes a bare plan tree (no presentation steps).
  Result<QueryResult> ExecutePlan(const PlanNode& plan) const;

 private:
  const TableStore* store_;
  const NetworkModel* net_;
  ExecutorOptions options_;
};

}  // namespace cgq

#endif  // CGQ_EXEC_EXECUTOR_H_
