#include "exec/fragmenter.h"

namespace cgq {

namespace {

int BuildFragment(const PlanNode& subtree, const PlanNode* ship,
                  FragmentedPlan* out);

// Collects the channel inputs of the fragment being built, creating a
// nested fragment (and its channel) for every SHIP node encountered.
void Walk(const PlanNode& node, FragmentedPlan* out,
          std::vector<int>* inputs) {
  if (node.kind() == PlanKind::kShip) {
    int channel = BuildFragment(*node.child(0), &node, out);
    out->channel_of_ship[&node] = channel;
    inputs->push_back(channel);
    return;
  }
  for (const PlanNodePtr& child : node.children()) {
    Walk(*child, out, inputs);
  }
}

// Creates the fragment rooted at `subtree` (post-order: nested fragments
// first). Returns the new fragment's output channel id (== fragment id)
// when it feeds a SHIP, or -1 for the top fragment.
int BuildFragment(const PlanNode& subtree, const PlanNode* ship,
                  FragmentedPlan* out) {
  PlanFragment fragment;
  Walk(subtree, out, &fragment.input_channels);
  fragment.id = static_cast<int>(out->fragments.size());
  fragment.root = &subtree;
  fragment.ship = ship;
  fragment.site = ship ? ship->ship_from : subtree.location;
  if (ship != nullptr) {
    fragment.output_channel = fragment.id;
    out->ship_of_channel.push_back(ship);
  }
  out->fragments.push_back(std::move(fragment));
  return out->fragments.back().output_channel;
}

}  // namespace

FragmentedPlan FragmentPlan(const PlanNode& root) {
  FragmentedPlan out;
  BuildFragment(root, nullptr, &out);
  return out;
}

Status CheckFragmentPlacement(int fragment_id, LocationId site,
                              const LocationSet& exec_trait,
                              const PlanNode* ship) {
  if (!exec_trait.empty() && !exec_trait.Contains(site)) {
    return Status::Internal(
        "compliance violation: fragment #" + std::to_string(fragment_id) +
        " placed at l" + std::to_string(site) +
        " outside its execution trait");
  }
  if (ship != nullptr) {
    const LocationSet& ship_trait = ship->ship_trait;
    if (!ship_trait.empty() && !ship_trait.Contains(ship->ship_to)) {
      return Status::Internal(
          "compliance violation: fragment #" + std::to_string(fragment_id) +
          " ships to l" + std::to_string(ship->ship_to) +
          " outside its shipping trait");
    }
  }
  return Status::OK();
}

Status CheckFragmentPlacement(const PlanFragment& fragment) {
  return CheckFragmentPlacement(fragment.id, fragment.site,
                                fragment.root->exec_trait, fragment.ship);
}

}  // namespace cgq
