#ifndef CGQ_EXEC_CHANNEL_H_
#define CGQ_EXEC_CHANNEL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "catalog/location.h"
#include "exec/batch.h"
#include "net/network_model.h"

namespace cgq {

/// Accumulated traffic of one ship channel (== one SHIP edge of the
/// located plan). `network_ms` charges the message cost model once per
/// edge for the start-up latency (alpha) plus the per-byte cost (beta) of
/// every batch, so the total equals the row interpreter's single-message
/// charge for the same volume.
struct ChannelStats {
  LocationId from = 0;
  LocationId to = 0;
  int64_t batches = 0;
  int64_t rows = 0;
  double bytes = 0;
  /// Largest number of batches ever queued (bounded by the capacity; a
  /// measure of how far the producer ran ahead of the consumer).
  int64_t peak_in_flight = 0;
  double network_ms = 0;
};

/// Bounded single-producer single-consumer queue of row batches modelling
/// one inter-site transfer. Push blocks when `capacity` batches are in
/// flight (backpressure); Pop blocks until a batch arrives or the producer
/// closes. Abort() releases both sides, for error propagation across
/// fragments.
class ShipChannel {
 public:
  /// `capacity` = 0 means unbounded (used by the sequential fragment
  /// schedule, where the producer completes before the consumer starts).
  /// `net` must outlive the channel.
  ShipChannel(LocationId from, LocationId to, size_t capacity,
              const NetworkModel* net);

  ShipChannel(const ShipChannel&) = delete;
  ShipChannel& operator=(const ShipChannel&) = delete;

  /// Transfers one batch, charging the network model. Returns false when
  /// the channel was aborted (the batch is dropped).
  bool Push(RowBatch batch);

  /// Producer is done; Pop drains the queue and then reports end-of-stream.
  /// An edge that never carried a batch still pays the start-up latency
  /// (the row interpreter ships one — possibly empty — message per edge).
  void CloseProducer();

  /// Blocks until a batch is available. Returns false at end-of-stream or
  /// abort.
  bool Pop(RowBatch* out);

  /// Wakes and fails both sides; used when a sibling fragment errored.
  void Abort();

  /// Snapshot of the traffic counters. Only stable once the producer has
  /// closed (callers read it after joining the fragment tasks).
  ChannelStats stats() const;

 private:
  const LocationId from_;
  const LocationId to_;
  const size_t capacity_;
  const NetworkModel* net_;

  mutable std::mutex mu_;
  std::condition_variable can_push_;
  std::condition_variable can_pop_;
  std::deque<RowBatch> queue_;
  bool closed_ = false;
  bool aborted_ = false;
  ChannelStats stats_;
};

}  // namespace cgq

#endif  // CGQ_EXEC_CHANNEL_H_
