#ifndef CGQ_EXEC_CHANNEL_H_
#define CGQ_EXEC_CHANNEL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "catalog/location.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/trace.h"
#include "exec/batch.h"
#include "net/network_model.h"

namespace cgq {

/// Retry / timeout policy of one execution's ship transfers (shared by all
/// channels of a fragmented run, and by the row interpreter's SHIPs).
struct RetryPolicy {
  /// Reattempts after the first failed transmission of a batch. Once they
  /// are exhausted the send fails with StatusCode::kUnavailable and the
  /// query aborts (never a partial result).
  int max_retries = 3;
  /// Wall-clock bound on one backpressured send attempt; < 0 blocks
  /// forever. A timed-out attempt counts against max_retries.
  double send_timeout_ms = -1;
  /// Wall-clock bound on one receive wait; < 0 blocks forever.
  double recv_timeout_ms = -1;
  /// Exponential backoff between reattempts: attempt k waits
  /// min(backoff_max_ms, backoff_base_ms * 2^k), scaled by a jitter factor
  /// in [0.5, 1) drawn from the deterministic fault stream. The wait is
  /// simulated (accounted, not slept), like the network cost model.
  double backoff_base_ms = 1.0;
  double backoff_max_ms = 64.0;
  /// Seed of the per-channel deterministic stream used for drop sampling
  /// and backoff jitter. Same seed + same fault model = same schedule of
  /// drops and retries.
  uint64_t fault_seed = 0;
};

/// Accumulated traffic of one ship channel (== one SHIP edge of the
/// located plan). `network_ms` charges the message cost model once per
/// edge for the start-up latency (alpha) plus the per-byte cost (beta) of
/// every batch, so the total equals the row interpreter's single-message
/// charge for the same volume. Every *transmission attempt* is counted:
/// a batch dropped by an injected link fault and retransmitted appears
/// twice in `batches`/`rows`/`bytes` (and the reattempt re-pays alpha).
struct ChannelStats {
  LocationId from = 0;
  LocationId to = 0;
  int64_t batches = 0;
  int64_t rows = 0;
  double bytes = 0;
  /// Largest number of batches ever queued (bounded by the capacity; a
  /// measure of how far the producer ran ahead of the consumer).
  int64_t peak_in_flight = 0;
  double network_ms = 0;

  // Recovery counters (all zero on a healthy run).
  int64_t send_retries = 0;     ///< Reattempts after drops/timeouts.
  int64_t dropped_batches = 0;  ///< Attempts lost to link faults/failpoints.
  int64_t send_timeouts = 0;    ///< Backpressured sends that timed out.
  int64_t recv_timeouts = 0;    ///< Receive waits that timed out.
  int64_t replays = 0;          ///< Producer restarts (fragment recovery).
  double backoff_ms = 0;        ///< Simulated backoff wait between retries.
};

/// Bounded single-producer single-consumer queue of row batches modelling
/// one inter-site transfer. Send blocks when `capacity` batches are in
/// flight (backpressure); Recv blocks until a batch arrives or the
/// producer closes. Abort() releases both sides, for error propagation
/// across fragments.
///
/// Fault handling: Send consults the network model's LinkFault for its
/// edge and the "channel.send" failpoint; a lost attempt is retried per
/// the RetryPolicy (re-paying the start-up latency alpha), and exhausted
/// retries surface as StatusCode::kUnavailable. BeginReplay() supports
/// idempotent producer restart: undelivered batches are drained and the
/// already-delivered row prefix of the (deterministic) replay stream is
/// suppressed, so the consumer sees every row exactly once.
class ShipChannel {
 public:
  /// `capacity` = 0 means unbounded (used by the sequential fragment
  /// schedule, where the producer completes before the consumer starts).
  /// `net` must outlive the channel.
  ShipChannel(LocationId from, LocationId to, size_t capacity,
              const NetworkModel* net, RetryPolicy retry = RetryPolicy());
  ~ShipChannel();

  ShipChannel(const ShipChannel&) = delete;
  ShipChannel& operator=(const ShipChannel&) = delete;

  /// Transfers one batch with fault simulation and bounded retries. Fails
  /// with kUnavailable when retries are exhausted (link down, repeated
  /// drops or send timeouts) and with the abort status when the channel
  /// was aborted or closed underneath the sender.
  Status Send(RowBatch batch);

  /// Single-attempt transfer without fault simulation (legacy surface;
  /// Send with a healthy link behaves identically). Returns false when
  /// the channel was aborted (the batch is dropped).
  bool Push(RowBatch batch);

  /// Producer is done; Recv drains the queue and then reports
  /// end-of-stream. An edge that never carried a batch still pays the
  /// start-up latency (the row interpreter ships one — possibly empty —
  /// message per edge). Threadsafe against a concurrently blocked Send,
  /// which wakes and fails with the abort status.
  void CloseProducer();

  /// Receives the next batch: ok(true) with `*out` filled, ok(false) at
  /// end-of-stream, kUnavailable after recv_timeout_ms expired
  /// max_retries+1 times (or the "channel.recv" failpoint fired as a
  /// simulated timeout), or the abort status.
  Result<bool> Recv(RowBatch* out);

  /// Legacy receive: blocks forever, returns false at end-of-stream or
  /// abort.
  bool Pop(RowBatch* out);

  /// Wakes and fails both sides with `status` (first abort wins; the
  /// default tags a generic aborted-execution error). Used when a sibling
  /// fragment errored.
  void Abort(Status status);
  void Abort() { Abort(Status::Internal("fragment execution aborted")); }

  /// Status carried by Abort(); OK when the channel was never aborted.
  Status abort_status() const;

  /// Prepares the channel for an idempotent producer restart: drains
  /// queued-but-undelivered batches, re-opens the producer side, and arms
  /// suppression of the first `delivered rows` rows the replay sends
  /// (re-execution is deterministic, so that prefix is byte-identical to
  /// what the consumer already got). Transmission stats of the replayed
  /// prefix still accrue — a retransmission is a real transfer.
  void BeginReplay();

  /// Snapshot of the traffic counters. Only stable once the producer has
  /// closed (callers read it after joining the fragment tasks).
  ChannelStats stats() const;

 private:
  /// Charges one transmission attempt to the stats. `recharge_alpha` is
  /// true for the first attempt on the edge and for every reattempt (a
  /// re-established connection pays the start-up latency again).
  void ChargeAttemptLocked(int64_t rows, double bytes, bool recharge_alpha,
                           const LinkFault* fault);
  /// Simulated exponential-backoff-with-jitter wait before reattempt
  /// `attempt` (1-based).
  void AccountBackoffLocked(int attempt);

  const LocationId from_;
  const LocationId to_;
  const size_t capacity_;
  const NetworkModel* net_;
  const RetryPolicy retry_;

  mutable std::mutex mu_;
  std::condition_variable can_push_;
  std::condition_variable can_pop_;
  std::deque<RowBatch> queue_;
  bool closed_ = false;
  bool aborted_ = false;
  Status abort_status_;
  /// Rows handed to the consumer; the suppression baseline for replays.
  int64_t delivered_rows_ = 0;
  /// Rows of the current replay still to suppress before enqueueing.
  int64_t skip_rows_ = 0;
  Rng rng_;
  ChannelStats stats_;
#ifdef CGQ_TRACING
  /// One "ship" span per edge, begun at construction against the creating
  /// thread's trace context (channels are created sequentially before any
  /// workers start, so span order is deterministic) and ended at
  /// destruction with the final traffic counters as arguments.
  TraceSession* trace_ = nullptr;
  int64_t trace_span_ = -1;
#endif
};

}  // namespace cgq

#endif  // CGQ_EXEC_CHANNEL_H_
