#ifndef CGQ_EXEC_DISTRIBUTED_EXECUTOR_H_
#define CGQ_EXEC_DISTRIBUTED_EXECUTOR_H_

#include "common/result.h"
#include "exec/executor.h"
#include "exec/table_store.h"
#include "net/network_model.h"
#include "plan/plan_node.h"

namespace cgq {

/// Coordinator side of ExecMode::kDistributed: splits the located plan at
/// its SHIP edges exactly like the fragmented runtime, but dispatches
/// each fragment over TCP to the location server hosting its site
/// (options.cluster) and streams the result batches back.
///
/// Topology is a star: every SHIP edge still runs through an in-process
/// ShipChannel on the coordinator — the coordinator receives a producer
/// fragment's output stream from its server, sends it through the
/// channel (charging the network model, fault injection, retry/replay
/// accounting), and relays whatever the channel delivers to the
/// consumer fragment's server. That makes ships / rows_shipped /
/// bytes_shipped / network_ms and the recovery counters byte-identical
/// to the in-process backends, while the operator trees themselves run
/// remotely against each server's store slice.
///
/// Recovery: a fragment attempt uses a fresh connection; any socket-level
/// failure (refused, reset, partial frame, recv timeout, crash before
/// ack) surfaces as kUnavailable and drives the same bounded
/// restart-and-replay loop as the in-process backends. Placement is
/// compliance-checked twice per attempt: here before dispatch, and on
/// the receiving server before it acknowledges.
Result<QueryResult> ExecuteDistributedPlan(const PlanNode& plan,
                                           const TableStore* store,
                                           const NetworkModel* net,
                                           const ExecutorOptions& options);

}  // namespace cgq

#endif  // CGQ_EXEC_DISTRIBUTED_EXECUTOR_H_
