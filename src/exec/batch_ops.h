#ifndef CGQ_EXEC_BATCH_OPS_H_
#define CGQ_EXEC_BATCH_OPS_H_

#include <atomic>
#include <functional>
#include <memory>
#include <optional>

#include "common/result.h"
#include "exec/batch.h"
#include "exec/table_store.h"
#include "plan/plan_node.h"

namespace cgq {
namespace exec_internal {

using OptBatch = std::optional<RowBatch>;

/// Cooperative cancellation (ExecutorOptions::cancel), checked per batch
/// and inside materialized-join loops. nullptr = not cancellable.
Status CheckCancelled(const std::atomic<bool>* cancel);

/// Pull-based batch operator: Next() returns the next (non-empty) batch of
/// at most `batch_size` rows, an empty optional at end-of-stream, or an
/// error.
class BatchOp {
 public:
  virtual ~BatchOp() = default;
  virtual Result<OptBatch> Next() = 0;
  /// Static output layout (known before any batch is produced).
  virtual const RowLayout& layout() const = 0;
};

using BatchOpPtr = std::unique_ptr<BatchOp>;

/// Environment one fragment's operator tree is built against. The
/// fragmented runtime supplies SHIP sources backed by in-process
/// `ShipChannel`s; the location server (src/net) supplies sources fed by
/// decoded wire frames. Everything else — scans, filters, projections,
/// joins, aggregation, unions — is this shared core, which is what makes
/// the loopback deployment byte-identical to the in-process backends.
struct BatchOpEnv {
  const TableStore* store = nullptr;
  size_t batch_size = static_cast<size_t>(kDefaultBatchSize);
  /// Cooperative cancellation token; nullptr = not cancellable.
  const std::atomic<bool>* cancel = nullptr;
  /// Incremented by scan operators; must outlive the operator tree.
  int64_t* rows_scanned = nullptr;
  /// Storage accounting sinks (disk-mode scans and spilling joins add to
  /// them when non-null); must outlive the operator tree.
  int64_t* storage_blocks_read = nullptr;
  int64_t* spill_partitions = nullptr;
  int64_t* spill_bytes = nullptr;
  /// Per-query memory budget (ExecutorOptions::memory_budget_bytes):
  /// hash joins whose build side exceeds it take the grace spill path.
  /// 0 = unlimited.
  uint64_t memory_budget_bytes = 0;
  /// Spill directory base (ExecutorOptions::spill_dir; empty = temp dir).
  std::string spill_dir;
  /// Creates the source operator of a SHIP leaf inside the fragment
  /// subtree (its producing subtree belongs to another fragment).
  std::function<Result<BatchOpPtr>(const PlanNode&)> ship_source;
};

/// Builds the batch-operator tree of one fragment rooted at `node`.
/// `env` must outlive the construction call; the returned operators keep
/// only the store/cancel/rows_scanned pointers, not `env` itself.
Result<BatchOpPtr> BuildBatchOp(const PlanNode& node, const BatchOpEnv& env);

}  // namespace exec_internal
}  // namespace cgq

#endif  // CGQ_EXEC_BATCH_OPS_H_
