#include "exec/spill_join.h"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <queue>

#include "common/trace.h"
#include "net/wire_protocol.h"

namespace cgq {
namespace exec_internal {

namespace {

namespace fs = std::filesystem;

/// Reads length-prefixed records back from a spill file.
struct SpillFileReader {
  FILE* file = nullptr;
  std::string path;

  Status Open(const std::string& p) {
    path = p;
    file = std::fopen(p.c_str(), "rb");
    if (file == nullptr && !fs::exists(p)) return Status::OK();  // empty
    if (file == nullptr) {
      return Status::Unavailable(p + ": open for read failed");
    }
    return Status::OK();
  }
  /// False at end of file.
  Result<bool> Next(std::string* payload) {
    if (file == nullptr) return false;
    uint8_t len_bytes[4];
    size_t got = std::fread(len_bytes, 1, sizeof(len_bytes), file);
    if (got == 0) return false;
    if (got != sizeof(len_bytes)) {
      return Status::Internal(path + ": torn spill record length");
    }
    const uint32_t len = static_cast<uint32_t>(len_bytes[0]) |
                         (static_cast<uint32_t>(len_bytes[1]) << 8) |
                         (static_cast<uint32_t>(len_bytes[2]) << 16) |
                         (static_cast<uint32_t>(len_bytes[3]) << 24);
    payload->resize(len);
    if (std::fread(payload->data(), 1, len, file) != len) {
      return Status::Internal(path + ": torn spill record payload");
    }
    return true;
  }
  ~SpillFileReader() {
    if (file != nullptr) std::fclose(file);
  }
};

}  // namespace

SpillHashJoin::SpillHashJoin(const JoinSpec* spec, std::string dir,
                             int num_partitions,
                             const std::atomic<bool>* cancel)
    : spec_(spec),
      dir_(std::move(dir)),
      num_partitions_(std::max(2, num_partitions)),
      cancel_(cancel) {}

SpillHashJoin::~SpillHashJoin() {
  for (auto* files : {&build_files_, &probe_files_}) {
    for (SpillFile& f : *files) {
      if (f.file != nullptr) std::fclose(f.file);
      f.file = nullptr;
    }
  }
  std::error_code ec;
  fs::remove_all(dir_, ec);
}

int SpillHashJoin::PickPartitions(uint64_t build_bytes, uint64_t budget) {
  const uint64_t per_partition = std::max<uint64_t>(budget / 2, 1);
  const uint64_t wanted = build_bytes / per_partition + 1;
  return static_cast<int>(std::clamp<uint64_t>(wanted, 2, 64));
}

std::string SpillHashJoin::MakeSpillDir(const std::string& base) {
  static std::atomic<uint64_t> counter{0};
  std::string root = base;
  if (root.empty()) {
    std::error_code ec;
    root = (fs::temp_directory_path(ec) / "cgq-spill").string();
  }
  return root + "/sj-" + std::to_string(::getpid()) + "-" +
         std::to_string(counter.fetch_add(1));
}

Status SpillHashJoin::Init() {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    return Status::Unavailable(dir_ + ": create spill dir failed: " +
                               ec.message());
  }
  build_files_.resize(static_cast<size_t>(num_partitions_));
  probe_files_.resize(static_cast<size_t>(num_partitions_));
  for (int64_t p = 0; p < num_partitions_; ++p) {
    for (auto [files, tag] : {std::pair{&build_files_, "build"},
                              std::pair{&probe_files_, "probe"}}) {
      SpillFile& f = (*files)[static_cast<size_t>(p)];
      f.path = dir_ + "/" + tag + "-" + std::to_string(p) + ".spl";
      f.file = std::fopen(f.path.c_str(), "wb");
      if (f.file == nullptr) {
        return Status::Unavailable(f.path + ": open spill file failed");
      }
    }
  }
  initialized_ = true;
  CGQ_COUNTER_ADD("storage.spill_partitions", num_partitions_);
  return Status::OK();
}

size_t SpillHashJoin::PartitionOf(const Row& row, bool is_build) const {
  Row key;
  key.reserve(spec_->key_positions.size());
  for (auto [lp, rp] : spec_->key_positions) {
    key.push_back(row[is_build ? lp : rp]);
  }
  return HashRow(key) % static_cast<size_t>(num_partitions_);
}

Status SpillHashJoin::WriteRecord(SpillFile* file,
                                  const std::string& payload) {
  const uint32_t len = static_cast<uint32_t>(payload.size());
  uint8_t len_bytes[4] = {static_cast<uint8_t>(len),
                          static_cast<uint8_t>(len >> 8),
                          static_cast<uint8_t>(len >> 16),
                          static_cast<uint8_t>(len >> 24)};
  if (std::fwrite(len_bytes, 1, sizeof(len_bytes), file->file) !=
          sizeof(len_bytes) ||
      std::fwrite(payload.data(), 1, payload.size(), file->file) !=
          payload.size()) {
    return Status::Unavailable(file->path + ": spill write failed");
  }
  const int64_t written =
      static_cast<int64_t>(sizeof(len_bytes) + payload.size());
  spill_bytes_ += written;
  CGQ_COUNTER_ADD("storage.spill_bytes", written);
  return Status::OK();
}

Status SpillHashJoin::CheckCancel() const {
  if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
    return Status::Cancelled("query cancelled during spill join");
  }
  return Status::OK();
}

Status SpillHashJoin::AddBuild(const Row& row) {
  if (!initialized_) return Status::Internal("spill join not initialized");
  for (auto [lp, rp] : spec_->key_positions) {
    if (row[lp].is_null()) return Status::OK();  // unmatched, as in Build()
  }
  if ((++ops_since_cancel_check_ & 0x3ff) == 0) {
    CGQ_RETURN_NOT_OK(CheckCancel());
  }
  wire::Writer w;
  w.PutRow(row);
  return WriteRecord(&build_files_[PartitionOf(row, /*is_build=*/true)],
                     w.Take());
}

Status SpillHashJoin::AddProbe(const Row& row) {
  if (!initialized_) return Status::Internal("spill join not initialized");
  const uint64_t ordinal = next_ordinal_++;
  for (auto [lp, rp] : spec_->key_positions) {
    if (row[rp].is_null()) return Status::OK();  // no matches, as in Probe()
  }
  if ((++ops_since_cancel_check_ & 0x3ff) == 0) {
    CGQ_RETURN_NOT_OK(CheckCancel());
  }
  wire::Writer w;
  w.PutU64(ordinal);
  w.PutRow(row);
  return WriteRecord(&probe_files_[PartitionOf(row, /*is_build=*/false)],
                     w.Take());
}

Status SpillHashJoin::Finish(const std::function<Status(Row)>& emit) {
  if (!initialized_) return Status::Internal("spill join not initialized");
  // Switch every partition file from append to read mode.
  for (auto* files : {&build_files_, &probe_files_}) {
    for (SpillFile& f : *files) {
      if (std::fflush(f.file) != 0) {
        return Status::Unavailable(f.path + ": spill flush failed");
      }
      std::fclose(f.file);
      f.file = nullptr;
    }
  }

  // Phase 1: join each partition pair; outputs form per-partition runs
  // naturally sorted by probe ordinal.
  std::vector<SpillFile> run_files(static_cast<size_t>(num_partitions_));
  for (int64_t p = 0; p < num_partitions_; ++p) {
    CGQ_RETURN_NOT_OK(CheckCancel());
    const size_t idx = static_cast<size_t>(p);

    std::vector<Row> build_rows;
    {
      SpillFileReader reader;
      CGQ_RETURN_NOT_OK(reader.Open(build_files_[idx].path));
      std::string payload;
      while (true) {
        CGQ_ASSIGN_OR_RETURN(bool more, reader.Next(&payload));
        if (!more) break;
        wire::Reader r(payload);
        CGQ_ASSIGN_OR_RETURN(Row row, r.ReadRow());
        build_rows.push_back(std::move(row));
      }
    }
    JoinHashTable table;
    table.Build(build_rows, *spec_);

    SpillFile& run = run_files[idx];
    run.path = dir_ + "/run-" + std::to_string(p) + ".spl";
    run.file = std::fopen(run.path.c_str(), "wb");
    if (run.file == nullptr) {
      return Status::Unavailable(run.path + ": open run file failed");
    }

    SpillFileReader reader;
    CGQ_RETURN_NOT_OK(reader.Open(probe_files_[idx].path));
    std::string payload;
    std::vector<Row> matches;
    int64_t probed = 0;
    while (true) {
      CGQ_ASSIGN_OR_RETURN(bool more, reader.Next(&payload));
      if (!more) break;
      if ((probed++ & 0x3ff) == 0) CGQ_RETURN_NOT_OK(CheckCancel());
      wire::Reader r(payload);
      CGQ_ASSIGN_OR_RETURN(uint64_t ordinal, r.U64());
      CGQ_ASSIGN_OR_RETURN(Row probe_row, r.ReadRow());
      matches.clear();
      CGQ_RETURN_NOT_OK(table.Probe(
          probe_row, *spec_, [&](const Row& build_row) -> Status {
            CGQ_ASSIGN_OR_RETURN(
                bool emitted,
                spec_->EmitIfMatch(build_row, probe_row, &matches));
            (void)emitted;
            return Status::OK();
          }));
      if (matches.empty()) continue;
      wire::Writer w;
      w.PutU64(ordinal);
      w.PutU32(static_cast<uint32_t>(matches.size()));
      for (const Row& row : matches) w.PutRow(row);
      CGQ_RETURN_NOT_OK(WriteRecord(&run, w.Take()));
    }
    if (std::fflush(run.file) != 0) {
      return Status::Unavailable(run.path + ": run flush failed");
    }
    std::fclose(run.file);
    run.file = nullptr;
  }

  // Phase 2: k-way merge of the runs back into global probe order. Each
  // probe row's matches live in exactly one partition, so ordinals are
  // unique across runs and the merge reproduces the reference order.
  struct RunHead {
    uint64_t ordinal = 0;
    std::vector<Row> rows;
    size_t run = 0;
  };
  auto later = [](const RunHead& a, const RunHead& b) {
    return a.ordinal > b.ordinal;
  };
  std::priority_queue<RunHead, std::vector<RunHead>, decltype(later)> heap(
      later);
  std::vector<SpillFileReader> readers(run_files.size());
  auto advance = [&](size_t run) -> Status {
    std::string payload;
    CGQ_ASSIGN_OR_RETURN(bool more, readers[run].Next(&payload));
    if (!more) return Status::OK();
    wire::Reader r(payload);
    RunHead head;
    head.run = run;
    CGQ_ASSIGN_OR_RETURN(head.ordinal, r.U64());
    CGQ_ASSIGN_OR_RETURN(uint32_t n, r.U32());
    head.rows.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      CGQ_ASSIGN_OR_RETURN(Row row, r.ReadRow());
      head.rows.push_back(std::move(row));
    }
    heap.push(std::move(head));
    return Status::OK();
  };
  for (size_t run = 0; run < run_files.size(); ++run) {
    CGQ_RETURN_NOT_OK(readers[run].Open(run_files[run].path));
    CGQ_RETURN_NOT_OK(advance(run));
  }
  int64_t merged = 0;
  while (!heap.empty()) {
    RunHead head = heap.top();
    heap.pop();
    if ((merged++ & 0x3ff) == 0) CGQ_RETURN_NOT_OK(CheckCancel());
    for (Row& row : head.rows) CGQ_RETURN_NOT_OK(emit(std::move(row)));
    CGQ_RETURN_NOT_OK(advance(head.run));
  }
  return Status::OK();
}

}  // namespace exec_internal
}  // namespace cgq
