#ifndef CGQ_PLAN_QUERY_PLANNER_H_
#define CGQ_PLAN_QUERY_PLANNER_H_

#include "common/result.h"
#include "plan/builder.h"
#include "sql/ast.h"

namespace cgq {

/// Plans a full query AST, decorrelating subquery predicates into joins:
///
///  - `x IN (SELECT col FROM ...)` (uncorrelated) becomes a semi-join:
///    the inner side is deduplicated (GROUP BY its referenced columns)
///    and joined on `x = col`, so outer multiplicities are preserved.
///
///  - `x = (SELECT agg(e) FROM ... WHERE inner.c = outer.c AND ...)`
///    becomes a join with `Γ_{c; agg(e)}(inner)` on the correlation
///    equalities plus `x = agg`, the classic TPC-H Q2 decorrelation.
///    Uncorrelated scalar aggregates join a one-row global aggregate.
///
/// The rewritten plan consists solely of ordinary relational operators, so
/// the compliance machinery (summaries, AR1-AR4, Algorithm 1) applies
/// unchanged. Restrictions (kUnsupported otherwise): subquery predicates
/// are top-level WHERE conjuncts; inner queries are plain SELECTs (no
/// DISTINCT/GROUP BY/HAVING/ORDER BY/LIMIT, no nested subqueries); IN
/// subqueries must be uncorrelated; scalar-aggregate correlations must be
/// column equalities.
Result<LogicalPlan> PlanQueryAst(const QueryAst& ast, PlannerContext* ctx);

}  // namespace cgq

#endif  // CGQ_PLAN_QUERY_PLANNER_H_
