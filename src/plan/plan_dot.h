#ifndef CGQ_PLAN_PLAN_DOT_H_
#define CGQ_PLAN_PLAN_DOT_H_

#include <string>

#include "plan/plan_node.h"

namespace cgq {

/// Renders a located plan as a Graphviz digraph: one node per operator
/// (labelled with its description, site, cardinality and traits), SHIP
/// edges highlighted and annotated with the source/target sites. Paste the
/// output into `dot -Tsvg` to visualize plans from papers or debugging
/// sessions.
std::string PlanToDot(const PlanNode& root, const LocationCatalog* locations);

}  // namespace cgq

#endif  // CGQ_PLAN_PLAN_DOT_H_
