#include "plan/planner_context.h"

#include "common/logging.h"
#include "common/str_util.h"

namespace cgq {

Result<uint32_t> PlannerContext::AddInstance(const std::string& alias,
                                             const std::string& table) {
  std::string lower_alias = ToLower(alias);
  if (FindInstance(lower_alias) != nullptr) {
    return Status::InvalidArgument("duplicate relation alias '" +
                                   lower_alias + "'");
  }
  CGQ_ASSIGN_OR_RETURN(const TableDef* def, catalog_->GetTable(table));
  uint32_t rel_index = static_cast<uint32_t>(instances_.size());
  instances_.push_back(RelInstance{lower_alias, def, rel_index});

  const Schema& schema = def->schema;
  for (uint32_t c = 0; c < schema.num_columns(); ++c) {
    const ColumnDef& col = schema.column(c);
    AttrInfo info;
    info.name = col.name;
    info.type = col.type;
    info.base_table = def->name;
    info.column = ToLower(col.name);
    const ColumnStats* stats = def->stats.FindColumn(info.column);
    if (stats != nullptr) {
      if (stats->distinct_count > 0) info.ndv = stats->distinct_count;
      info.width = stats->avg_width;
      info.min = stats->min;
      info.max = stats->max;
    } else {
      info.ndv = def->stats.row_count > 0 ? def->stats.row_count : 100;
      info.width = col.type == DataType::kString ? 16 : 8;
    }
    attrs_[MakeBaseAttrId(rel_index, c)] = std::move(info);
  }
  return rel_index;
}

const RelInstance* PlannerContext::FindInstance(
    const std::string& alias) const {
  for (const RelInstance& inst : instances_) {
    if (inst.alias == alias) return &inst;
  }
  return nullptr;
}

AttrId PlannerContext::AddSynthetic(AttrInfo info) {
  AttrId id = next_synthetic_++;
  attrs_[id] = std::move(info);
  return id;
}

const AttrInfo& PlannerContext::attr(AttrId id) const {
  auto it = attrs_.find(id);
  CGQ_CHECK(it != attrs_.end()) << "unknown attr id " << id;
  return it->second;
}

}  // namespace cgq
