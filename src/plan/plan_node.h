#ifndef CGQ_PLAN_PLAN_NODE_H_
#define CGQ_PLAN_PLAN_NODE_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "expr/expr.h"

namespace cgq {

/// Operator kinds shared by logical plans (memo payloads) and physical
/// (located) plans. SHIP nodes exist only in final, located plans.
enum class PlanKind {
  kScan,       ///< one fragment of a base table at one location
  kFilter,     ///< conjunctive selection
  kProject,    ///< column selection/renaming (masking projection)
  kJoin,       ///< inner join with conjunctive predicate (may be cross)
  kAggregate,  ///< hash aggregation (also used for eager partial aggregates)
  kUnion,      ///< UNION ALL of table fragments (§7.5 distributed tables)
  kShip,       ///< transfer of the child's output between two sites
};

const char* PlanKindToString(PlanKind kind);

/// Physical join algorithm, chosen by the optimizer's implementation step.
enum class JoinMethod {
  kHash,       ///< build/probe on the equi-conjuncts (default)
  kSortMerge,  ///< sort both inputs on the equi-keys, merge
  kNestedLoop, ///< fallback for non-equi / cross joins
};

const char* JoinMethodToString(JoinMethod method);

/// One output column of a plan operator.
struct OutputCol {
  AttrId id = 0;
  std::string name;
  DataType type = DataType::kInt64;
};

class PlanNode;
using PlanNodePtr = std::shared_ptr<PlanNode>;

/// A query plan operator.
///
/// The same structure serves three roles:
///  1. node of the normalized logical plan handed to the optimizer;
///  2. payload of a memo multi-expression (children empty, referenced by
///     group ids externally);
///  3. node of the final physical plan, annotated with traits, the selected
///     execution site, and cost estimates, possibly with SHIP nodes.
class PlanNode {
 public:
  explicit PlanNode(PlanKind kind) : kind_(kind) {}

  PlanKind kind() const { return kind_; }

  std::vector<PlanNodePtr>& children() { return children_; }
  const std::vector<PlanNodePtr>& children() const { return children_; }
  const PlanNodePtr& child(size_t i) const { return children_[i]; }

  // --- Scan payload ---
  std::string table;          ///< base table (lower-cased)
  std::string alias;          ///< relation instance alias (lower-cased)
  uint32_t rel_index = 0;     ///< instance index within the query
  LocationId scan_location = 0;
  int fragment_ordinal = 0;   ///< which fragment of a distributed table
  double row_fraction = 1.0;  ///< fraction of the table in this fragment

  // --- Filter / Join payload ---
  std::vector<ExprPtr> conjuncts;
  JoinMethod join_method = JoinMethod::kHash;  ///< physical choice (joins)

  // --- Project payload ---
  std::vector<AttrId> project_ids;
  std::vector<std::string> project_names;

  // --- Aggregate payload ---
  std::vector<AttrId> group_ids;
  std::vector<AggCall> agg_calls;
  std::vector<AttrId> agg_out_ids;  ///< parallel to agg_calls
  bool is_partial_agg = false;      ///< introduced by eager aggregation

  // --- Ship payload ---
  LocationId ship_from = 0;
  LocationId ship_to = 0;

  // --- Annotations (filled by planner / optimizer / site selector) ---
  std::vector<OutputCol> outputs;
  LocationSet exec_trait;  ///< ℰ: where this operator may legally run
  LocationSet ship_trait;  ///< 𝒮: where its output may legally be shipped
  LocationId location = 0;  ///< execution site chosen in phase 2
  double est_rows = 0;
  double est_row_bytes = 0;  ///< average bytes per output row
  double local_cost = 0;     ///< phase-1 cumulative cost of the subtree

  /// Estimated output bytes (est_rows * est_row_bytes).
  double EstBytes() const { return est_rows * est_row_bytes; }

  /// Payload equality, ignoring children and annotations. Conjunct order is
  /// insignificant.
  bool PayloadEquals(const PlanNode& other) const;
  /// Payload hash consistent with PayloadEquals.
  size_t PayloadHash() const;

  /// Short one-line description, e.g. "Join[o.custkey = c.custkey]".
  std::string Describe() const;

 private:
  PlanKind kind_;
  std::vector<PlanNodePtr> children_;
};

/// Computes the output columns of an operator given its children's outputs.
/// For payload-only use (memo), pass the child groups' canonical outputs.
std::vector<OutputCol> ComputeOutputs(
    const PlanNode& node,
    const std::vector<const std::vector<OutputCol>*>& child_outputs);

/// Renders an indented plan tree with per-node annotations; `locations` is
/// used to print location names (may be null).
std::string PlanToString(const PlanNode& root,
                         const LocationCatalog* locations);

/// Deep-copies a plan tree (annotations included).
PlanNodePtr ClonePlan(const PlanNode& root);

}  // namespace cgq

#endif  // CGQ_PLAN_PLAN_NODE_H_
