#include "plan/summary.h"

#include <algorithm>

#include "common/logging.h"

namespace cgq {

namespace {

void AddGroupAttr(std::vector<BaseAttr>* attrs, const BaseAttr& a) {
  if (std::find(attrs->begin(), attrs->end(), a) == attrs->end()) {
    attrs->push_back(a);
  }
}

}  // namespace

QuerySummary SummarizeOp(const PlanNode& payload,
                         const std::vector<const QuerySummary*>& children) {
  QuerySummary s;
  switch (payload.kind()) {
    case PlanKind::kScan: {
      s.spg_valid = true;
      s.source_locations.Add(payload.scan_location);
      s.alias_tables.emplace_back(payload.alias, payload.table);
      for (const OutputCol& c : payload.outputs) {
        SummaryOutput out;
        out.bases.push_back(BaseAttr{payload.table, c.name});
        s.outputs[c.id] = std::move(out);
      }
      return s;
    }
    case PlanKind::kFilter: {
      CGQ_CHECK(children.size() == 1);
      s = *children[0];
      // A filter above an aggregation (HAVING) leaves the single-block form.
      if (s.is_aggregate) s.spg_valid = false;
      for (const ExprPtr& c : payload.conjuncts) s.predicate.push_back(c);
      return s;
    }
    case PlanKind::kShip: {
      CGQ_CHECK(children.size() == 1);
      return *children[0];
    }
    case PlanKind::kProject: {
      CGQ_CHECK(children.size() == 1);
      s = *children[0];
      std::map<AttrId, SummaryOutput> kept;
      for (AttrId id : payload.project_ids) {
        auto it = s.outputs.find(id);
        if (it != s.outputs.end()) {
          kept[id] = it->second;
        } else {
          s.spg_valid = false;  // unknown provenance: be conservative
        }
      }
      s.outputs = std::move(kept);
      return s;
    }
    case PlanKind::kJoin: {
      CGQ_CHECK(children.size() == 2);
      const QuerySummary& l = *children[0];
      const QuerySummary& r = *children[1];
      s.spg_valid = l.spg_valid && r.spg_valid && !l.is_aggregate &&
                    !r.is_aggregate;
      s.is_aggregate = false;
      s.source_locations = l.source_locations.Union(r.source_locations);
      s.outputs = l.outputs;
      s.outputs.insert(r.outputs.begin(), r.outputs.end());
      s.predicate = l.predicate;
      s.predicate.insert(s.predicate.end(), r.predicate.begin(),
                         r.predicate.end());
      for (const ExprPtr& c : payload.conjuncts) s.predicate.push_back(c);
      s.alias_tables = l.alias_tables;
      s.alias_tables.insert(s.alias_tables.end(), r.alias_tables.begin(),
                            r.alias_tables.end());
      return s;
    }
    case PlanKind::kAggregate: {
      CGQ_CHECK(children.size() == 1);
      const QuerySummary& c = *children[0];
      s = c;
      s.outputs.clear();
      s.group_attrs.clear();
      // Nested aggregation is not a single SPG block.
      s.spg_valid = c.spg_valid && !c.is_aggregate;
      s.is_aggregate = true;
      for (AttrId g : payload.group_ids) {
        auto it = c.outputs.find(g);
        if (it == c.outputs.end() || it->second.fn.has_value() ||
            it->second.bases.size() != 1) {
          s.spg_valid = false;
          continue;
        }
        s.outputs[g] = it->second;
        AddGroupAttr(&s.group_attrs, it->second.bases[0]);
      }
      for (size_t i = 0; i < payload.agg_calls.size(); ++i) {
        const AggCall& call = payload.agg_calls[i];
        SummaryOutput out;
        out.fn = call.fn;
        std::vector<AttrId> ids;
        call.arg->CollectAttrIds(&ids);
        for (AttrId id : ids) {
          auto it = c.outputs.find(id);
          if (it == c.outputs.end() || it->second.fn.has_value()) {
            // Aggregating an already-aggregated attribute: not SPG.
            s.spg_valid = false;
            continue;
          }
          for (const BaseAttr& b : it->second.bases) {
            if (std::find(out.bases.begin(), out.bases.end(), b) ==
                out.bases.end()) {
              out.bases.push_back(b);
            }
          }
        }
        s.outputs[payload.agg_out_ids[i]] = std::move(out);
      }
      return s;
    }
    case PlanKind::kUnion: {
      CGQ_CHECK(!children.empty());
      s = *children[0];
      for (size_t i = 1; i < children.size(); ++i) {
        s.spg_valid &= children[i]->spg_valid;
        s.source_locations =
            s.source_locations.Union(children[i]->source_locations);
      }
      return s;
    }
  }
  return s;
}

QuerySummary SummarizePlan(const PlanNode& root) {
  std::vector<QuerySummary> child_summaries;
  child_summaries.reserve(root.children().size());
  for (const PlanNodePtr& c : root.children()) {
    child_summaries.push_back(SummarizePlan(*c));
  }
  std::vector<const QuerySummary*> ptrs;
  ptrs.reserve(child_summaries.size());
  for (const QuerySummary& cs : child_summaries) ptrs.push_back(&cs);
  return SummarizeOp(root, ptrs);
}

}  // namespace cgq
