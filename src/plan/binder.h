#ifndef CGQ_PLAN_BINDER_H_
#define CGQ_PLAN_BINDER_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "plan/planner_context.h"
#include "sql/ast.h"

namespace cgq {

/// A SELECT-list item after name resolution.
struct BoundSelectItem {
  ExprPtr expr;                ///< bound; aggregate argument when agg set
  std::optional<AggFn> agg;
  std::string name;            ///< output column name
  /// Output attribute: the column's id for plain items, a synthetic id
  /// (allocated by the binder) for aggregate items.
  AttrId out_id = 0;
};

/// A query after name resolution and semantic validation.
struct BoundQuery {
  /// Relation instances registered by this query's FROM clause (indexes
  /// into the PlannerContext; an outer query and its subqueries share the
  /// context but own disjoint instance ranges).
  std::vector<uint32_t> rel_indexes;
  std::vector<BoundSelectItem> select;
  std::vector<ExprPtr> where_conjuncts;  ///< bound conjuncts
  std::vector<AttrId> group_ids;         ///< bound GROUP BY columns
  bool is_aggregate = false;
  /// HAVING conjuncts; references resolved to output attributes.
  std::vector<ExprPtr> having_conjuncts;
  std::vector<OrderItemAst> order_by;    ///< by output column name
  std::optional<int64_t> limit;
};

/// Resolves names in `ast` against the catalog, registering relation
/// instances and attributes in `ctx`. Validates:
///  - every column resolves to exactly one visible relation instance;
///  - in aggregate queries, plain select items are GROUP BY columns;
///  - GROUP BY entries are column references;
///  - ORDER BY names match select-list output names.
Result<BoundQuery> BindQuery(const QueryAst& ast, PlannerContext* ctx);

/// Binds a scalar expression against the instances registered in `ctx`.
/// Exposed for policy binding and tests.
Result<ExprPtr> BindExpr(const ExprPtr& expr, const PlannerContext& ctx);

}  // namespace cgq

#endif  // CGQ_PLAN_BINDER_H_
