#include "plan/query_planner.h"

#include <algorithm>
#include <set>

#include "plan/binder.h"

namespace cgq {

namespace {

bool IsInnerRel(const BoundQuery& inner, uint32_t rel) {
  return std::find(inner.rel_indexes.begin(), inner.rel_indexes.end(),
                   rel) != inner.rel_indexes.end();
}

// Splits the inner query's conjuncts into purely-inner ones (stay below)
// and correlation conjuncts (become join conditions).
void SplitCorrelations(BoundQuery* inner,
                       std::vector<ExprPtr>* correlations) {
  std::vector<ExprPtr> pure;
  for (const ExprPtr& c : inner->where_conjuncts) {
    std::vector<AttrId> ids;
    c->CollectAttrIds(&ids);
    bool all_inner = true;
    for (AttrId id : ids) {
      all_inner &= IsInnerRel(*inner, PlannerContext::RelIndexOf(id));
    }
    if (all_inner) {
      pure.push_back(c);
    } else {
      correlations->push_back(c);
    }
  }
  inner->where_conjuncts = std::move(pure);
}

Status ValidateInner(const QueryAst& inner) {
  if (inner.distinct || !inner.group_by.empty() || inner.having != nullptr ||
      !inner.order_by.empty() || inner.limit.has_value() ||
      !inner.subqueries.empty()) {
    return Status::Unsupported(
        "subqueries must be plain SELECTs (no DISTINCT/GROUP BY/HAVING/"
        "ORDER BY/LIMIT/nested subqueries)");
  }
  if (inner.select.size() != 1) {
    return Status::Unsupported("subqueries must select exactly one column");
  }
  return Status::OK();
}

}  // namespace

Result<LogicalPlan> PlanQueryAst(const QueryAst& ast, PlannerContext* ctx) {
  CGQ_ASSIGN_OR_RETURN(BoundQuery outer, BindQuery(ast, ctx));
  if (ast.subqueries.empty()) {
    CGQ_ASSIGN_OR_RETURN(PlanNodePtr acc, BuildJoinTree(outer, ctx, {}));
    return FinishPlan(outer, acc, ctx);
  }

  // Pass 1: bind everything and collect what the outer tree must expose.
  struct PlannedSubquery {
    const SubqueryPredicate* pred;
    ExprPtr outer_expr;                 // bound
    BoundQuery inner;
    std::vector<ExprPtr> correlations;  // bound, mixed-side conjuncts
  };
  std::vector<PlannedSubquery> planned;
  std::vector<AttrId> outer_extra;

  for (const SubqueryPredicate& sq : ast.subqueries) {
    PlannedSubquery p;
    p.pred = &sq;
    // Bind the left-hand side against the *outer* instances (inner ones
    // are not registered yet, so inner names cannot capture it).
    if (sq.outer_expr != nullptr) {
      CGQ_ASSIGN_OR_RETURN(p.outer_expr, BindExpr(sq.outer_expr, *ctx));
    }
    CGQ_RETURN_NOT_OK(ValidateInner(*sq.inner));
    CGQ_ASSIGN_OR_RETURN(p.inner, BindQuery(*sq.inner, ctx));
    SplitCorrelations(&p.inner, &p.correlations);

    std::vector<AttrId> ids;
    if (p.outer_expr != nullptr) p.outer_expr->CollectAttrIds(&ids);
    for (const ExprPtr& c : p.correlations) c->CollectAttrIds(&ids);
    for (AttrId id : ids) {
      if (!IsInnerRel(p.inner, PlannerContext::RelIndexOf(id))) {
        outer_extra.push_back(id);
      }
    }
    planned.push_back(std::move(p));
  }

  // Pass 2: outer join tree, then one decorrelated join per subquery.
  CGQ_ASSIGN_OR_RETURN(PlanNodePtr acc,
                       BuildJoinTree(outer, ctx, outer_extra));

  for (PlannedSubquery& p : planned) {
    const BoundSelectItem& item = p.inner.select[0];
    std::vector<ExprPtr> join_conjuncts = p.correlations;

    if (p.pred->kind == SubqueryPredicate::Kind::kIn) {
      if (!p.correlations.empty()) {
        return Status::Unsupported(
            "correlated IN subqueries are not supported");
      }
      if (item.agg) {
        return Status::Unsupported(
            "IN subqueries must select a plain column");
      }
      if (item.expr->op() != ExprOp::kColumnRef) {
        return Status::Unsupported(
            "IN subqueries must select a plain column");
      }
      CGQ_ASSIGN_OR_RETURN(
          PlanNodePtr inner_tree,
          BuildJoinTree(p.inner, ctx, {item.expr->attr_id()}));
      // Semi-join: deduplicate the matched column, then equi-join.
      auto dedup = std::make_shared<PlanNode>(PlanKind::kAggregate);
      dedup->group_ids = {item.expr->attr_id()};
      dedup->children().push_back(std::move(inner_tree));
      AnnotateOutputs(dedup);

      join_conjuncts.push_back(
          Expr::Binary(ExprOp::kEq, p.outer_expr, item.expr));
      auto join = std::make_shared<PlanNode>(PlanKind::kJoin);
      join->conjuncts = std::move(join_conjuncts);
      join->children() = {acc, dedup};
      AnnotateOutputs(join);
      acc = join;
      continue;
    }

    if (p.pred->kind == SubqueryPredicate::Kind::kExists) {
      // Correlated EXISTS: deduplicate the inner side on the equality
      // correlation columns — each outer row then matches at most one
      // dedup row, so the join is an exact semi-join.
      if (p.correlations.empty()) {
        return Status::Unsupported(
            "EXISTS subqueries must be correlated via column equalities");
      }
      std::set<AttrId> dedup_ids;
      for (const ExprPtr& c : p.correlations) {
        if (c->op() != ExprOp::kEq ||
            c->child(0)->op() != ExprOp::kColumnRef ||
            c->child(1)->op() != ExprOp::kColumnRef) {
          return Status::Unsupported(
              "EXISTS correlations must be column equalities");
        }
        for (int side = 0; side < 2; ++side) {
          AttrId id = c->child(side)->attr_id();
          if (IsInnerRel(p.inner, PlannerContext::RelIndexOf(id))) {
            dedup_ids.insert(id);
          }
        }
      }
      std::vector<AttrId> inner_extra(dedup_ids.begin(), dedup_ids.end());
      CGQ_ASSIGN_OR_RETURN(PlanNodePtr inner_tree,
                           BuildJoinTree(p.inner, ctx, inner_extra));
      auto dedup = std::make_shared<PlanNode>(PlanKind::kAggregate);
      dedup->group_ids.assign(dedup_ids.begin(), dedup_ids.end());
      dedup->children().push_back(std::move(inner_tree));
      AnnotateOutputs(dedup);

      auto join = std::make_shared<PlanNode>(PlanKind::kJoin);
      join->conjuncts = std::move(join_conjuncts);
      join->children() = {acc, dedup};
      AnnotateOutputs(join);
      acc = join;
      continue;
    }

    // kEqAgg: group the inner side by its correlation columns.
    if (!item.agg) {
      return Status::Unsupported(
          "scalar subqueries must select a single aggregate");
    }
    std::set<AttrId> group_ids;
    for (const ExprPtr& c : p.correlations) {
      if (c->op() != ExprOp::kEq ||
          c->child(0)->op() != ExprOp::kColumnRef ||
          c->child(1)->op() != ExprOp::kColumnRef) {
        return Status::Unsupported(
            "scalar-subquery correlations must be column equalities");
      }
      for (int side = 0; side < 2; ++side) {
        AttrId id = c->child(side)->attr_id();
        if (IsInnerRel(p.inner, PlannerContext::RelIndexOf(id))) {
          group_ids.insert(id);
        }
      }
    }
    std::vector<AttrId> inner_extra(group_ids.begin(), group_ids.end());
    {
      std::vector<AttrId> arg_ids;
      item.expr->CollectAttrIds(&arg_ids);
      inner_extra.insert(inner_extra.end(), arg_ids.begin(), arg_ids.end());
    }
    CGQ_ASSIGN_OR_RETURN(PlanNodePtr inner_tree,
                         BuildJoinTree(p.inner, ctx, inner_extra));

    auto agg = std::make_shared<PlanNode>(PlanKind::kAggregate);
    agg->group_ids.assign(group_ids.begin(), group_ids.end());
    agg->agg_calls = {AggCall{*item.agg, item.expr}};
    agg->agg_out_ids = {item.out_id};
    agg->children().push_back(std::move(inner_tree));
    AnnotateOutputs(agg);

    const AttrInfo& out_info = ctx->attr(item.out_id);
    join_conjuncts.push_back(Expr::Binary(
        ExprOp::kEq, p.outer_expr,
        Expr::BoundColumn(item.out_id, "", out_info.name, "",
                          out_info.type)));
    auto join = std::make_shared<PlanNode>(PlanKind::kJoin);
    join->conjuncts = std::move(join_conjuncts);
    join->children() = {acc, agg};
    AnnotateOutputs(join);
    acc = join;
  }

  return FinishPlan(outer, acc, ctx);
}

}  // namespace cgq
