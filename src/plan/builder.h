#ifndef CGQ_PLAN_BUILDER_H_
#define CGQ_PLAN_BUILDER_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "plan/binder.h"
#include "plan/plan_node.h"
#include "plan/planner_context.h"
#include "sql/ast.h"

namespace cgq {

/// A normalized logical plan plus post-optimization presentation steps
/// (ORDER BY / LIMIT are applied at the final site and do not participate in
/// the optimizer's search).
struct LogicalPlan {
  PlanNodePtr root;
  std::vector<OrderItemAst> order_by;
  std::optional<int64_t> limit;
};

/// Builds the normalized logical plan for a bound query:
///  - one Scan per table fragment; fragmented tables become UNION ALL of
///    their fragment subplans (§7.5);
///  - single-instance WHERE conjuncts pushed below the joins (Filter directly
///    above each Scan);
///  - masking projections: every instance is pruned to the attributes needed
///    upstream (the paper's Π-masking, e.g. Fig 1(b) operator 2);
///  - left-deep initial join tree in FROM order, join conjuncts attached to
///    the lowest join that covers their relations;
///  - Aggregate node for aggregate queries (synthetic output attributes
///    allocated in `ctx`), and a final Project emitting the SELECT list.
Result<LogicalPlan> BuildLogicalPlan(const BoundQuery& query,
                                     PlannerContext* ctx);

/// Builds only the scan/filter/projection/join part of `query` (steps 1-4
/// of BuildLogicalPlan). `extra_needed` lists attributes that must survive
/// the masking projections although the query itself does not reference
/// them — the subquery decorrelator uses this for correlation columns.
/// Only the query's own relation instances participate.
Result<PlanNodePtr> BuildJoinTree(const BoundQuery& query,
                                  PlannerContext* ctx,
                                  const std::vector<AttrId>& extra_needed);

/// Applies aggregation, HAVING and the final projection on top of a join
/// tree (steps 5-6 of BuildLogicalPlan).
Result<LogicalPlan> FinishPlan(const BoundQuery& query, PlanNodePtr acc,
                               PlannerContext* ctx);

/// Recomputes `node->outputs` from its children's outputs (children must
/// already be annotated). Scans are expected to carry their outputs.
void AnnotateOutputs(const PlanNodePtr& node);

}  // namespace cgq

#endif  // CGQ_PLAN_BUILDER_H_
