#include "plan/param_binding.h"

namespace cgq {
namespace {

/// Visits every tagged (ordinal, value) slot of an expression tree.
template <typename Fn>
void VisitExprSlots(const ExprPtr& e, const Fn& fn) {
  if (e == nullptr) return;
  if (e->op() == ExprOp::kLiteral && e->param_ordinal() >= 0) {
    fn(e->param_ordinal(), e->literal());
  }
  const std::vector<int>& ordinals = e->in_list_ordinals();
  for (size_t i = 0; i < ordinals.size(); ++i) {
    if (ordinals[i] >= 0) fn(ordinals[i], e->in_list()[i]);
  }
  for (const ExprPtr& c : e->children()) VisitExprSlots(c, fn);
}

template <typename Fn>
void VisitPlanSlots(const PlanNode& node, const Fn& fn) {
  for (const ExprPtr& c : node.conjuncts) VisitExprSlots(c, fn);
  for (const AggCall& call : node.agg_calls) VisitExprSlots(call.arg, fn);
  for (const PlanNodePtr& c : node.children()) VisitPlanSlots(*c, fn);
}

ExprPtr RebindExpr(const ExprPtr& e, const std::vector<Value>& params) {
  if (e == nullptr) return e;
  const size_t n = params.size();
  if (e->op() == ExprOp::kLiteral) {
    const int ord = e->param_ordinal();
    if (ord >= 0 && static_cast<size_t>(ord) < n &&
        !e->literal().StructurallyEquals(params[ord])) {
      return Expr::ParamLiteral(params[ord], ord);
    }
    return e;
  }
  if (e->op() == ExprOp::kIn && !e->in_list_ordinals().empty()) {
    ExprPtr needle = RebindExpr(e->child(0), params);
    std::vector<Value> values = e->in_list();
    bool changed = needle.get() != e->child(0).get();
    const std::vector<int>& ordinals = e->in_list_ordinals();
    for (size_t i = 0; i < ordinals.size(); ++i) {
      const int ord = ordinals[i];
      if (ord >= 0 && static_cast<size_t>(ord) < n &&
          !values[i].StructurallyEquals(params[ord])) {
        values[i] = params[ord];
        changed = true;
      }
    }
    if (!changed) return e;
    return Expr::InList(std::move(needle), std::move(values),
                        e->in_list_ordinals());
  }
  if (e->children().empty()) return e;
  bool changed = false;
  std::vector<ExprPtr> children;
  children.reserve(e->children().size());
  for (const ExprPtr& c : e->children()) {
    ExprPtr nc = RebindExpr(c, params);
    changed |= nc.get() != c.get();
    children.push_back(std::move(nc));
  }
  if (!changed) return e;
  switch (e->op()) {
    case ExprOp::kNot:
      return Expr::Unary(ExprOp::kNot, children[0]);
    case ExprOp::kIn:
      return Expr::InList(children[0], e->in_list(), e->in_list_ordinals());
    default:
      return Expr::Binary(e->op(), children[0], children[1]);
  }
}

}  // namespace

bool PlanParamsBindable(const PlanNode& root,
                        const std::vector<Value>& params) {
  std::vector<bool> seen(params.size(), false);
  bool ok = true;
  VisitPlanSlots(root, [&](int ordinal, const Value& v) {
    if (ordinal < 0 || static_cast<size_t>(ordinal) >= params.size()) {
      ok = false;  // slot the normalizer did not extract: never rebind
      return;
    }
    if (!v.StructurallyEquals(params[ordinal])) {
      ok = false;  // value diverged from the text (e.g. folded negation)
      return;
    }
    seen[ordinal] = true;
  });
  if (!ok) return false;
  for (bool s : seen) {
    if (!s) return false;  // a literal vanished from the plan entirely
  }
  return true;
}

void BindPlanParams(PlanNode* root, const std::vector<Value>& params) {
  for (ExprPtr& c : root->conjuncts) c = RebindExpr(c, params);
  for (AggCall& call : root->agg_calls) {
    call.arg = RebindExpr(call.arg, params);
  }
  for (const PlanNodePtr& c : root->children()) {
    BindPlanParams(c.get(), params);
  }
}

}  // namespace cgq
