#ifndef CGQ_PLAN_SUMMARY_H_
#define CGQ_PLAN_SUMMARY_H_

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "catalog/location.h"
#include "expr/expr.h"
#include "plan/plan_node.h"

namespace cgq {

/// Policy-relevant description of one output attribute of a (sub)query:
/// which base attributes it derives from and the aggregate applied, if any.
struct SummaryOutput {
  std::vector<BaseAttr> bases;
  std::optional<AggFn> fn;
};

/// The (A_q, P_q, G_q, f_a) description of a subplan used by the policy
/// evaluator (§5) and annotation rule AR4 (§6.1).
///
/// `spg_valid` says whether the subplan is expressible as a single
/// Select-Project-[GroupBy] block (joins allowed, nested aggregation not).
/// AR4 additionally requires all sources at one location.
struct QuerySummary {
  bool spg_valid = false;
  bool is_aggregate = false;
  LocationSet source_locations;
  /// Output attributes keyed by AttrId.
  std::map<AttrId, SummaryOutput> outputs;
  /// G_q as base attributes (empty for non-aggregate blocks).
  std::vector<BaseAttr> group_attrs;
  /// P_q: all predicate conjuncts applied in the block (incl. join
  /// predicates), bound, with alias qualifiers intact.
  std::vector<ExprPtr> predicate;
  /// Relation instances in the block: (alias, base table).
  std::vector<std::pair<std::string, std::string>> alias_tables;

  /// True when AR4 may apply: a valid block over exactly one location.
  bool IsSingleDatabaseBlock() const {
    return spg_valid && source_locations.Count() == 1;
  }
};

/// Computes the summary of one operator given its children's summaries
/// (memo-friendly: the payload's children are not inspected).
QuerySummary SummarizeOp(const PlanNode& payload,
                         const std::vector<const QuerySummary*>& children);

/// Computes the summary of a whole plan tree recursively.
QuerySummary SummarizePlan(const PlanNode& root);

}  // namespace cgq

#endif  // CGQ_PLAN_SUMMARY_H_
