#include "plan/builder.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace cgq {

namespace {

// Set of relation indexes referenced by an expression.
std::set<uint32_t> RelsOf(const Expr& e) {
  std::vector<AttrId> ids;
  e.CollectAttrIds(&ids);
  std::set<uint32_t> rels;
  for (AttrId id : ids) {
    if (!IsSyntheticAttr(id)) rels.insert(PlannerContext::RelIndexOf(id));
  }
  return rels;
}

PlanNodePtr MakeScan(const RelInstance& inst, size_t fragment_ordinal,
                     const TableFragment& fragment) {
  auto scan = std::make_shared<PlanNode>(PlanKind::kScan);
  scan->table = inst.table->name;
  scan->alias = inst.alias;
  scan->rel_index = inst.rel_index;
  scan->scan_location = fragment.location;
  scan->fragment_ordinal = static_cast<int>(fragment_ordinal);
  scan->row_fraction = fragment.row_fraction;
  const Schema& schema = inst.table->schema;
  for (uint32_t c = 0; c < schema.num_columns(); ++c) {
    OutputCol col;
    col.id = PlannerContext::MakeBaseAttrId(inst.rel_index, c);
    col.name = schema.column(c).name;
    col.type = schema.column(c).type;
    scan->outputs.push_back(std::move(col));
  }
  return scan;
}

// Scan -> [Filter] -> [Project] for one fragment.
PlanNodePtr BuildFragmentSubtree(const RelInstance& inst,
                                 size_t fragment_ordinal,
                                 const TableFragment& fragment,
                                 const std::vector<ExprPtr>& local_conjuncts,
                                 const std::vector<AttrId>& kept_ids) {
  PlanNodePtr node = MakeScan(inst, fragment_ordinal, fragment);
  if (!local_conjuncts.empty()) {
    auto filter = std::make_shared<PlanNode>(PlanKind::kFilter);
    filter->conjuncts = local_conjuncts;
    filter->children().push_back(node);
    AnnotateOutputs(filter);
    node = filter;
  }
  if (kept_ids.size() < inst.table->schema.num_columns()) {
    auto project = std::make_shared<PlanNode>(PlanKind::kProject);
    project->project_ids = kept_ids;
    for (AttrId id : kept_ids) {
      for (const OutputCol& c : node->outputs) {
        if (c.id == id) {
          project->project_names.push_back(c.name);
          break;
        }
      }
    }
    project->children().push_back(node);
    AnnotateOutputs(project);
    node = project;
  }
  return node;
}

}  // namespace

void AnnotateOutputs(const PlanNodePtr& node) {
  std::vector<const std::vector<OutputCol>*> child_outputs;
  child_outputs.reserve(node->children().size());
  for (const PlanNodePtr& c : node->children()) {
    child_outputs.push_back(&c->outputs);
  }
  node->outputs = ComputeOutputs(*node, child_outputs);
}

Result<PlanNodePtr> BuildJoinTree(const BoundQuery& query,
                                  PlannerContext* ctx,
                                  const std::vector<AttrId>& extra_needed) {
  const std::vector<uint32_t>& rels_here = query.rel_indexes;
  const size_t n = rels_here.size();
  auto rel_slot = [&](uint32_t rel) -> int {
    for (size_t i = 0; i < n; ++i) {
      if (rels_here[i] == rel) return static_cast<int>(i);
    }
    return -1;
  };

  // 1. Classify WHERE conjuncts into per-instance filters and join conjuncts.
  std::vector<std::vector<ExprPtr>> local_conjuncts(n);
  std::vector<ExprPtr> join_conjuncts;
  for (const ExprPtr& c : query.where_conjuncts) {
    std::set<uint32_t> rels = RelsOf(*c);
    if (rels.size() <= 1) {
      int slot = rels.empty() ? 0 : rel_slot(*rels.begin());
      if (slot < 0) {
        return Status::Internal("conjunct references foreign relation: " +
                                c->ToString());
      }
      local_conjuncts[static_cast<size_t>(slot)].push_back(c);
    } else {
      join_conjuncts.push_back(c);
    }
  }

  // 2. Needed-upstream attributes per instance (select, group by, join
  //    conjuncts, caller extras). This drives the masking projections.
  std::vector<std::set<AttrId>> needed(n);
  auto note_id = [&](AttrId id) {
    if (IsSyntheticAttr(id)) return;
    int slot = rel_slot(PlannerContext::RelIndexOf(id));
    if (slot >= 0) needed[static_cast<size_t>(slot)].insert(id);
  };
  auto note_expr = [&](const Expr& e) {
    std::vector<AttrId> ids;
    e.CollectAttrIds(&ids);
    for (AttrId id : ids) note_id(id);
  };
  for (const BoundSelectItem& item : query.select) note_expr(*item.expr);
  for (AttrId id : query.group_ids) note_id(id);
  for (const ExprPtr& c : join_conjuncts) note_expr(*c);
  for (AttrId id : extra_needed) note_id(id);

  // 3. Per-instance subtrees (fragment scans unioned for distributed
  //    tables), with filters and masking projections pushed down.
  std::vector<PlanNodePtr> subtrees(n);
  for (size_t i = 0; i < n; ++i) {
    const RelInstance& inst = ctx->instances()[rels_here[i]];
    std::vector<AttrId> kept(needed[i].begin(), needed[i].end());
    if (kept.empty()) {
      // Keep at least one column so the relation still contributes rows.
      kept.push_back(PlannerContext::MakeBaseAttrId(inst.rel_index, 0));
    }
    const std::vector<TableFragment>& fragments = inst.table->fragments;
    if (fragments.size() == 1 || inst.table->replicated) {
      // Replicated tables seed the plan with replica 0; the optimizer's
      // replica-expansion rule adds the alternatives.
      subtrees[i] = BuildFragmentSubtree(inst, 0, fragments[0],
                                         local_conjuncts[i], kept);
    } else {
      auto union_node = std::make_shared<PlanNode>(PlanKind::kUnion);
      for (size_t f = 0; f < fragments.size(); ++f) {
        union_node->children().push_back(BuildFragmentSubtree(
            inst, f, fragments[f], local_conjuncts[i], kept));
      }
      AnnotateOutputs(union_node);
      subtrees[i] = union_node;
    }
  }

  // 4. Left-deep join tree in FROM order.
  PlanNodePtr acc = subtrees[0];
  std::set<uint32_t> acc_rels = {rels_here[0]};
  std::vector<bool> placed(join_conjuncts.size(), false);
  for (size_t i = 1; i < n; ++i) {
    acc_rels.insert(rels_here[i]);
    auto join = std::make_shared<PlanNode>(PlanKind::kJoin);
    join->children().push_back(acc);
    join->children().push_back(subtrees[i]);
    for (size_t k = 0; k < join_conjuncts.size(); ++k) {
      if (placed[k]) continue;
      std::set<uint32_t> rels = RelsOf(*join_conjuncts[k]);
      if (std::includes(acc_rels.begin(), acc_rels.end(), rels.begin(),
                        rels.end())) {
        join->conjuncts.push_back(join_conjuncts[k]);
        placed[k] = true;
      }
    }
    AnnotateOutputs(join);
    acc = join;
  }
  for (size_t k = 0; k < join_conjuncts.size(); ++k) {
    if (!placed[k]) {
      return Status::Internal("join conjunct not placed: " +
                              join_conjuncts[k]->ToString());
    }
  }
  return acc;
}

Result<LogicalPlan> FinishPlan(const BoundQuery& query, PlanNodePtr acc,
                               PlannerContext* ctx) {
  (void)ctx;
  // 5. Aggregation.
  std::vector<AttrId> select_ids;  // final project inputs, in SELECT order
  if (query.is_aggregate) {
    auto agg = std::make_shared<PlanNode>(PlanKind::kAggregate);
    agg->group_ids = query.group_ids;
    for (const BoundSelectItem& item : query.select) {
      if (!item.agg) {
        select_ids.push_back(item.expr->attr_id());
        continue;
      }
      AggCall call{*item.agg, item.expr};
      agg->agg_calls.push_back(std::move(call));
      agg->agg_out_ids.push_back(item.out_id);  // allocated by the binder
      select_ids.push_back(item.out_id);
    }
    agg->children().push_back(acc);
    AnnotateOutputs(agg);
    acc = agg;
    if (!query.having_conjuncts.empty()) {
      auto having = std::make_shared<PlanNode>(PlanKind::kFilter);
      having->conjuncts = query.having_conjuncts;
      having->children().push_back(acc);
      AnnotateOutputs(having);
      acc = having;
    }
  } else {
    for (const BoundSelectItem& item : query.select) {
      select_ids.push_back(item.expr->attr_id());
    }
  }

  // 6. Final projection to SELECT order and names.
  auto project = std::make_shared<PlanNode>(PlanKind::kProject);
  project->project_ids = select_ids;
  for (const BoundSelectItem& item : query.select) {
    project->project_names.push_back(item.name);
  }
  project->children().push_back(acc);
  AnnotateOutputs(project);

  LogicalPlan plan;
  plan.root = project;
  plan.order_by = query.order_by;
  plan.limit = query.limit;
  return plan;
}

Result<LogicalPlan> BuildLogicalPlan(const BoundQuery& query,
                                     PlannerContext* ctx) {
  CGQ_ASSIGN_OR_RETURN(PlanNodePtr acc, BuildJoinTree(query, ctx, {}));
  return FinishPlan(query, acc, ctx);
}

}  // namespace cgq
