#include "plan/plan_dot.h"

#include <sstream>

namespace cgq {

namespace {

std::string Escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

int EmitNode(const PlanNode& node, const LocationCatalog* locations,
             int* counter, std::ostringstream* os) {
  int id = (*counter)++;
  std::string label = Escape(node.Describe());
  if (locations != nullptr) {
    label += "\\n@" + locations->GetName(node.location);
    if (!node.exec_trait.empty()) {
      label += "  E=" + locations->SetToString(node.exec_trait);
    }
  }
  if (node.est_rows > 0) {
    label += "\\nrows=" + std::to_string(static_cast<int64_t>(node.est_rows));
  }
  const char* shape = "box";
  const char* color = "black";
  if (node.kind() == PlanKind::kShip) {
    shape = "cds";
    color = "red";
  } else if (node.kind() == PlanKind::kScan) {
    shape = "cylinder";
  } else if (node.kind() == PlanKind::kAggregate) {
    shape = "ellipse";
  }
  *os << "  n" << id << " [shape=" << shape << ", color=" << color
      << ", label=\"" << label << "\"];\n";
  for (const PlanNodePtr& c : node.children()) {
    int child_id = EmitNode(*c, locations, counter, os);
    *os << "  n" << child_id << "->n" << id;
    if (c->kind() == PlanKind::kShip) {
      *os << " [color=red, penwidth=2]";
    }
    *os << ";\n";
  }
  return id;
}

}  // namespace

std::string PlanToDot(const PlanNode& root,
                      const LocationCatalog* locations) {
  std::ostringstream os;
  os << "digraph plan {\n  rankdir=BT;\n  node [fontname=\"monospace\", "
        "fontsize=10];\n";
  int counter = 0;
  EmitNode(root, locations, &counter, &os);
  os << "}\n";
  return os.str();
}

}  // namespace cgq
