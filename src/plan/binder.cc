#include "plan/binder.h"

#include <algorithm>

#include "common/str_util.h"

namespace cgq {

namespace {

// Resolves one textual column reference to a bound column expression.
Result<ExprPtr> ResolveColumn(const Expr& ref, const PlannerContext& ctx) {
  const std::string& qualifier = ref.qualifier();
  const std::string& column = ToLower(ref.column());
  const RelInstance* match = nullptr;
  size_t col_index = 0;
  if (!qualifier.empty()) {
    const RelInstance* inst = ctx.FindInstance(qualifier);
    if (inst == nullptr) {
      return Status::NotFound("unknown relation alias '" + qualifier + "'");
    }
    std::optional<size_t> idx = inst->table->schema.IndexOf(column);
    if (!idx) {
      return Status::NotFound("no column '" + column + "' in '" + qualifier +
                              "'");
    }
    match = inst;
    col_index = *idx;
  } else {
    for (const RelInstance& inst : ctx.instances()) {
      std::optional<size_t> idx = inst.table->schema.IndexOf(column);
      if (idx) {
        if (match != nullptr) {
          return Status::InvalidArgument("ambiguous column '" + column + "'");
        }
        match = &inst;
        col_index = *idx;
      }
    }
    if (match == nullptr) {
      return Status::NotFound("unknown column '" + column + "'");
    }
  }
  AttrId id = PlannerContext::MakeBaseAttrId(match->rel_index,
                                             static_cast<uint32_t>(col_index));
  return Expr::BoundColumn(id, match->alias, column, match->table->name,
                           ctx.attr(id).type);
}

// Binds an expression that may reference SELECT-list output names (used by
// HAVING). Unqualified names matching an output alias resolve to that
// output's attribute; everything else binds normally.
Result<ExprPtr> BindOutputExpr(const ExprPtr& expr,
                               const std::vector<BoundSelectItem>& select,
                               const PlannerContext& ctx) {
  if (expr->op() == ExprOp::kColumnRef) {
    if (expr->is_bound()) return expr;
    if (expr->qualifier().empty()) {
      for (const BoundSelectItem& item : select) {
        if (item.name == ToLower(expr->column())) {
          DataType type = item.agg
                              ? (item.agg == AggFn::kCount
                                     ? DataType::kInt64
                                     : (item.agg == AggFn::kAvg
                                            ? DataType::kDouble
                                            : item.expr->type()))
                              : item.expr->type();
          return Expr::BoundColumn(item.out_id, "", item.name, "", type);
        }
      }
    }
    return BindExpr(expr, ctx);
  }
  if (expr->children().empty()) return expr;
  std::vector<ExprPtr> bound_children;
  for (const ExprPtr& c : expr->children()) {
    CGQ_ASSIGN_OR_RETURN(ExprPtr b, BindOutputExpr(c, select, ctx));
    bound_children.push_back(std::move(b));
  }
  switch (expr->op()) {
    case ExprOp::kNot:
      return Expr::Unary(ExprOp::kNot, bound_children[0]);
    case ExprOp::kIn:
      return Expr::InList(bound_children[0], expr->in_list(),
                          expr->in_list_ordinals());
    default:
      return Expr::Binary(expr->op(), bound_children[0], bound_children[1]);
  }
}

}  // namespace

Result<ExprPtr> BindExpr(const ExprPtr& expr, const PlannerContext& ctx) {
  if (expr->op() == ExprOp::kColumnRef) {
    if (expr->is_bound()) return expr;
    return ResolveColumn(*expr, ctx);
  }
  if (expr->children().empty()) return expr;
  std::vector<ExprPtr> bound_children;
  bound_children.reserve(expr->children().size());
  for (const ExprPtr& c : expr->children()) {
    CGQ_ASSIGN_OR_RETURN(ExprPtr b, BindExpr(c, ctx));
    bound_children.push_back(std::move(b));
  }
  switch (expr->op()) {
    case ExprOp::kNot:
      return Expr::Unary(ExprOp::kNot, bound_children[0]);
    case ExprOp::kIn:
      return Expr::InList(bound_children[0], expr->in_list(),
                          expr->in_list_ordinals());
    default:
      return Expr::Binary(expr->op(), bound_children[0], bound_children[1]);
  }
}

Result<BoundQuery> BindQuery(const QueryAst& ast, PlannerContext* ctx) {
  if (ast.from.empty()) {
    return Status::InvalidArgument("FROM clause must not be empty");
  }
  BoundQuery out;
  for (const TableRefAst& ref : ast.from) {
    CGQ_ASSIGN_OR_RETURN(uint32_t rel, ctx->AddInstance(ref.alias, ref.table));
    out.rel_indexes.push_back(rel);
  }
  // GROUP BY first: needed to validate select items.
  for (const ExprPtr& g : ast.group_by) {
    CGQ_ASSIGN_OR_RETURN(ExprPtr bound, BindExpr(g, *ctx));
    if (bound->op() != ExprOp::kColumnRef) {
      return Status::Unsupported("GROUP BY supports column references only");
    }
    if (std::find(out.group_ids.begin(), out.group_ids.end(),
                  bound->attr_id()) == out.group_ids.end()) {
      out.group_ids.push_back(bound->attr_id());
    }
  }

  bool has_agg_item = false;
  for (const SelectItemAst& item : ast.select) {
    BoundSelectItem bound;
    CGQ_ASSIGN_OR_RETURN(bound.expr, BindExpr(item.expr, *ctx));
    bound.agg = item.agg;
    bound.name = ToLower(item.output_name);
    has_agg_item |= item.agg.has_value();
    if (item.agg) {
      // Allocate the aggregate's output attribute here so HAVING (and the
      // plan builder) can reference it.
      AttrInfo info;
      info.name = bound.name;
      info.type = *item.agg == AggFn::kCount
                      ? DataType::kInt64
                      : (*item.agg == AggFn::kAvg ? DataType::kDouble
                                                  : bound.expr->type());
      info.width = 8;
      bound.out_id = ctx->AddSynthetic(std::move(info));
    } else if (bound.expr->op() == ExprOp::kColumnRef) {
      bound.out_id = bound.expr->attr_id();
    }
    out.select.push_back(std::move(bound));
  }
  out.is_aggregate = has_agg_item || !out.group_ids.empty();

  // SELECT DISTINCT desugars to grouping by every output column.
  if (ast.distinct) {
    if (out.is_aggregate) {
      return Status::Unsupported(
          "SELECT DISTINCT cannot be combined with aggregation");
    }
    out.is_aggregate = true;
    for (const BoundSelectItem& item : out.select) {
      if (std::find(out.group_ids.begin(), out.group_ids.end(),
                    item.out_id) == out.group_ids.end()) {
        out.group_ids.push_back(item.out_id);
      }
    }
  }

  if (out.is_aggregate) {
    for (const BoundSelectItem& item : out.select) {
      if (item.agg) continue;
      if (item.expr->op() != ExprOp::kColumnRef) {
        return Status::Unsupported(
            "non-aggregate select items must be plain columns");
      }
      if (std::find(out.group_ids.begin(), out.group_ids.end(),
                    item.expr->attr_id()) == out.group_ids.end()) {
        return Status::InvalidArgument("select column '" +
                                       item.expr->ToString() +
                                       "' is not in GROUP BY");
      }
    }
  } else {
    for (const BoundSelectItem& item : out.select) {
      if (item.expr->op() != ExprOp::kColumnRef) {
        return Status::Unsupported(
            "computed non-aggregate select items are not supported");
      }
    }
  }

  if (ast.where != nullptr) {
    CGQ_ASSIGN_OR_RETURN(ExprPtr where, BindExpr(ast.where, *ctx));
    out.where_conjuncts = SplitConjuncts(where);
  }

  if (ast.having != nullptr) {
    if (!out.is_aggregate) {
      return Status::InvalidArgument("HAVING requires GROUP BY");
    }
    CGQ_ASSIGN_OR_RETURN(ExprPtr having,
                         BindOutputExpr(ast.having, out.select, *ctx));
    out.having_conjuncts = SplitConjuncts(having);
  }

  for (const OrderItemAst& item : ast.order_by) {
    std::string name = ToLower(item.name);
    bool found = false;
    for (const BoundSelectItem& sel : out.select) {
      found |= sel.name == name;
    }
    if (!found) {
      return Status::InvalidArgument("ORDER BY column '" + name +
                                     "' is not an output column");
    }
    out.order_by.push_back(OrderItemAst{name, item.descending});
  }
  out.limit = ast.limit;
  return out;
}

}  // namespace cgq
