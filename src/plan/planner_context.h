#ifndef CGQ_PLAN_PLANNER_CONTEXT_H_
#define CGQ_PLAN_PLANNER_CONTEXT_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "expr/expr.h"

namespace cgq {

/// One relation instance (a FROM-clause entry) of the query being planned.
struct RelInstance {
  std::string alias;  ///< lower-cased, unique within the query
  const TableDef* table = nullptr;
  uint32_t rel_index = 0;
};

/// Metadata of one attribute (base or synthetic) visible during planning.
struct AttrInfo {
  std::string name;
  DataType type = DataType::kInt64;
  /// Base table / column this attribute comes from; empty for synthetic
  /// attributes (partial/final aggregate outputs).
  std::string base_table;
  std::string column;
  double ndv = 100;   ///< distinct-count estimate
  double width = 8;   ///< average width in bytes
  std::optional<double> min;
  std::optional<double> max;
};

/// Per-query planning state: relation instances, attribute metadata, and
/// the synthetic-attribute allocator shared by binder, optimizer rules and
/// cardinality estimation.
class PlannerContext {
 public:
  explicit PlannerContext(const Catalog* catalog) : catalog_(catalog) {}

  const Catalog& catalog() const { return *catalog_; }

  /// Registers a FROM-clause instance; fails on duplicate alias / unknown
  /// table. Also registers AttrInfo for every column of the table.
  Result<uint32_t> AddInstance(const std::string& alias,
                               const std::string& table);

  const std::vector<RelInstance>& instances() const { return instances_; }
  const RelInstance* FindInstance(const std::string& alias) const;

  static AttrId MakeBaseAttrId(uint32_t rel_index, uint32_t col_index) {
    return (rel_index << 16) | col_index;
  }
  static uint32_t RelIndexOf(AttrId id) { return id >> 16; }

  /// Allocates a fresh synthetic attribute (aggregate output).
  AttrId AddSynthetic(AttrInfo info);

  const AttrInfo& attr(AttrId id) const;
  bool HasAttr(AttrId id) const { return attrs_.count(id) != 0; }

  /// Updates the ndv estimate of a synthetic attribute (set after the
  /// producing aggregate's cardinality is known).
  void SetAttrNdv(AttrId id, double ndv) { attrs_[id].ndv = ndv; }

  /// Cache used by the eager-aggregation rule so that re-derivations of the
  /// same partial aggregate reuse output ids (keeps the memo deduplicated).
  std::unordered_map<size_t, std::vector<AttrId>>& partial_agg_ids() {
    return partial_agg_ids_;
  }

 private:
  const Catalog* catalog_;
  std::vector<RelInstance> instances_;
  std::unordered_map<AttrId, AttrInfo> attrs_;
  AttrId next_synthetic_ = kFirstSyntheticAttr;
  std::unordered_map<size_t, std::vector<AttrId>> partial_agg_ids_;
};

}  // namespace cgq

#endif  // CGQ_PLAN_PLANNER_CONTEXT_H_
