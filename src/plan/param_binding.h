#ifndef CGQ_PLAN_PARAM_BINDING_H_
#define CGQ_PLAN_PARAM_BINDING_H_

#include <vector>

#include "plan/plan_node.h"
#include "types/value.h"

namespace cgq {

/// Checks that a plan optimized from a query with extracted parameters
/// `params` is safe to rebind: every ordinal in [0, params.size()) must
/// appear at least once as a tagged literal slot in the plan (conjuncts,
/// aggregate arguments, IN lists), and every tagged slot's value must
/// structurally equal `params[ordinal]`.
///
/// A false return means some literal influenced the plan through a path
/// binding cannot reach (folded away, pruned, negated through parentheses)
/// — such a plan may only be served for byte-identical parameter vectors.
bool PlanParamsBindable(const PlanNode& root,
                        const std::vector<Value>& params);

/// Rewrites every tagged literal slot in the (privately owned, mutable)
/// plan tree to the corresponding value of `params`. Expression trees are
/// rebuilt copy-on-write — Expr nodes are immutable and may be shared with
/// other clones of the same cached entry.
void BindPlanParams(PlanNode* root, const std::vector<Value>& params);

}  // namespace cgq

#endif  // CGQ_PLAN_PARAM_BINDING_H_
