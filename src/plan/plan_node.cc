#include "plan/plan_node.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace cgq {

const char* JoinMethodToString(JoinMethod method) {
  switch (method) {
    case JoinMethod::kHash:
      return "hash";
    case JoinMethod::kSortMerge:
      return "merge";
    case JoinMethod::kNestedLoop:
      return "nl";
  }
  return "?";
}

const char* PlanKindToString(PlanKind kind) {
  switch (kind) {
    case PlanKind::kScan:
      return "Scan";
    case PlanKind::kFilter:
      return "Filter";
    case PlanKind::kProject:
      return "Project";
    case PlanKind::kJoin:
      return "Join";
    case PlanKind::kAggregate:
      return "Aggregate";
    case PlanKind::kUnion:
      return "Union";
    case PlanKind::kShip:
      return "Ship";
  }
  return "?";
}

namespace {

std::vector<size_t> SortedConjunctHashes(const std::vector<ExprPtr>& cs) {
  std::vector<size_t> hs;
  hs.reserve(cs.size());
  for (const ExprPtr& c : cs) hs.push_back(c->Hash());
  std::sort(hs.begin(), hs.end());
  return hs;
}

bool ConjunctSetsEqual(const std::vector<ExprPtr>& a,
                       const std::vector<ExprPtr>& b) {
  if (a.size() != b.size()) return false;
  // Order-insensitive: every conjunct of a must appear in b (multiset-ish;
  // duplicates are unusual and harmless here).
  for (const ExprPtr& x : a) {
    bool found = false;
    for (const ExprPtr& y : b) {
      if (x->Equals(*y)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

}  // namespace

bool PlanNode::PayloadEquals(const PlanNode& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case PlanKind::kScan:
      return rel_index == other.rel_index &&
             fragment_ordinal == other.fragment_ordinal;
    case PlanKind::kFilter:
    case PlanKind::kJoin:
      return ConjunctSetsEqual(conjuncts, other.conjuncts);
    case PlanKind::kProject:
      return project_ids == other.project_ids &&
             project_names == other.project_names;
    case PlanKind::kAggregate: {
      if (group_ids != other.group_ids ||
          agg_out_ids != other.agg_out_ids ||
          agg_calls.size() != other.agg_calls.size()) {
        return false;
      }
      for (size_t i = 0; i < agg_calls.size(); ++i) {
        if (!agg_calls[i].Equals(other.agg_calls[i])) return false;
      }
      return true;
    }
    case PlanKind::kUnion:
      return true;
    case PlanKind::kShip:
      return ship_from == other.ship_from && ship_to == other.ship_to;
  }
  return false;
}

size_t PlanNode::PayloadHash() const {
  size_t h = std::hash<int>()(static_cast<int>(kind_));
  auto mix = [&h](size_t v) { h = h * 1000003u ^ v; };
  switch (kind_) {
    case PlanKind::kScan:
      mix(rel_index);
      mix(static_cast<size_t>(fragment_ordinal) + 17);
      break;
    case PlanKind::kFilter:
    case PlanKind::kJoin:
      for (size_t v : SortedConjunctHashes(conjuncts)) mix(v);
      break;
    case PlanKind::kProject:
      for (AttrId id : project_ids) mix(id);
      for (const std::string& n : project_names) {
        mix(std::hash<std::string>()(n));
      }
      break;
    case PlanKind::kAggregate:
      for (AttrId id : group_ids) mix(id);
      for (AttrId id : agg_out_ids) mix(id);
      for (const AggCall& c : agg_calls) {
        mix(std::hash<int>()(static_cast<int>(c.fn)));
        mix(c.arg->Hash());
      }
      break;
    case PlanKind::kUnion:
      break;
    case PlanKind::kShip:
      mix(ship_from);
      mix(ship_to);
      break;
  }
  return h;
}

std::string PlanNode::Describe() const {
  std::ostringstream os;
  os << PlanKindToString(kind_);
  if (kind_ == PlanKind::kJoin) {
    os << "(" << JoinMethodToString(join_method) << ")";
  }
  switch (kind_) {
    case PlanKind::kScan:
      os << "[" << table;
      if (alias != table) os << " AS " << alias;
      if (fragment_ordinal > 0 || row_fraction < 1.0) {
        os << " frag" << fragment_ordinal;
      }
      os << "]";
      break;
    case PlanKind::kFilter:
    case PlanKind::kJoin: {
      os << "[";
      for (size_t i = 0; i < conjuncts.size(); ++i) {
        if (i > 0) os << " AND ";
        os << conjuncts[i]->ToString();
      }
      os << "]";
      break;
    }
    case PlanKind::kProject: {
      os << "[";
      for (size_t i = 0; i < project_names.size(); ++i) {
        if (i > 0) os << ", ";
        os << project_names[i];
      }
      os << "]";
      break;
    }
    case PlanKind::kAggregate: {
      os << (is_partial_agg ? "(partial)[" : "[");
      for (size_t i = 0; i < group_ids.size(); ++i) {
        if (i > 0) os << ", ";
        os << "#" << group_ids[i];
      }
      if (!group_ids.empty() && !agg_calls.empty()) os << "; ";
      for (size_t i = 0; i < agg_calls.size(); ++i) {
        if (i > 0) os << ", ";
        os << agg_calls[i].ToString();
      }
      os << "]";
      break;
    }
    case PlanKind::kUnion:
      break;
    case PlanKind::kShip:
      os << "[" << ship_from << " -> " << ship_to << "]";
      break;
  }
  return os.str();
}

std::vector<OutputCol> ComputeOutputs(
    const PlanNode& node,
    const std::vector<const std::vector<OutputCol>*>& child_outputs) {
  switch (node.kind()) {
    case PlanKind::kScan: {
      // Caller (builder) fills scan outputs directly from the catalog; memo
      // payload scans carry their outputs already.
      return node.outputs;
    }
    case PlanKind::kFilter:
    case PlanKind::kShip:
      CGQ_CHECK(child_outputs.size() == 1);
      return *child_outputs[0];
    case PlanKind::kUnion:
      CGQ_CHECK(!child_outputs.empty());
      return *child_outputs[0];
    case PlanKind::kProject: {
      CGQ_CHECK(child_outputs.size() == 1);
      std::vector<OutputCol> out;
      out.reserve(node.project_ids.size());
      for (size_t i = 0; i < node.project_ids.size(); ++i) {
        AttrId id = node.project_ids[i];
        const OutputCol* found = nullptr;
        for (const OutputCol& c : *child_outputs[0]) {
          if (c.id == id) {
            found = &c;
            break;
          }
        }
        CGQ_CHECK(found != nullptr) << "project references missing attr " << id;
        OutputCol col = *found;
        if (i < node.project_names.size() && !node.project_names[i].empty()) {
          col.name = node.project_names[i];
        }
        out.push_back(std::move(col));
      }
      return out;
    }
    case PlanKind::kJoin: {
      CGQ_CHECK(child_outputs.size() == 2);
      std::vector<OutputCol> out = *child_outputs[0];
      out.insert(out.end(), child_outputs[1]->begin(),
                 child_outputs[1]->end());
      return out;
    }
    case PlanKind::kAggregate: {
      CGQ_CHECK(child_outputs.size() == 1);
      std::vector<OutputCol> out;
      for (AttrId id : node.group_ids) {
        const OutputCol* found = nullptr;
        for (const OutputCol& c : *child_outputs[0]) {
          if (c.id == id) {
            found = &c;
            break;
          }
        }
        CGQ_CHECK(found != nullptr) << "group key missing attr " << id;
        out.push_back(*found);
      }
      for (size_t i = 0; i < node.agg_calls.size(); ++i) {
        OutputCol col;
        col.id = node.agg_out_ids[i];
        col.name = node.agg_calls[i].ToString();
        switch (node.agg_calls[i].fn) {
          case AggFn::kCount:
            col.type = DataType::kInt64;
            break;
          case AggFn::kAvg:
            col.type = DataType::kDouble;
            break;
          default:
            col.type = node.agg_calls[i].arg->type();
            break;
        }
        out.push_back(std::move(col));
      }
      return out;
    }
  }
  return {};
}

namespace {

void PrintPlanRec(const PlanNode& node, const LocationCatalog* locations,
                  int depth, std::ostringstream* os) {
  for (int i = 0; i < depth; ++i) *os << "  ";
  *os << node.Describe();
  if (locations != nullptr) {
    *os << " @" << locations->GetName(node.location);
    if (!node.exec_trait.empty()) {
      *os << " E=" << locations->SetToString(node.exec_trait);
    }
    if (!node.ship_trait.empty()) {
      *os << " S=" << locations->SetToString(node.ship_trait);
    }
  }
  if (node.est_rows > 0) {
    *os << " rows=" << static_cast<int64_t>(node.est_rows);
  }
  *os << "\n";
  for (const PlanNodePtr& c : node.children()) {
    PrintPlanRec(*c, locations, depth + 1, os);
  }
}

}  // namespace

std::string PlanToString(const PlanNode& root,
                         const LocationCatalog* locations) {
  std::ostringstream os;
  PrintPlanRec(root, locations, 0, &os);
  return os.str();
}

PlanNodePtr ClonePlan(const PlanNode& root) {
  auto copy = std::make_shared<PlanNode>(root);
  copy->children().clear();
  for (const PlanNodePtr& c : root.children()) {
    copy->children().push_back(ClonePlan(*c));
  }
  return copy;
}

}  // namespace cgq
