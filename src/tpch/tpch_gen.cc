#include <string>
#include <vector>

#include "common/rng.h"
#include "tpch/tpch.h"
#include "types/date.h"

namespace cgq {
namespace tpch {

namespace {

constexpr int64_t kMinOrderDate = 8035;   // 1992-01-01
constexpr int64_t kMaxOrderDate = 10440;  // 1998-08-02

const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                          "MIDDLE EAST"};
// Nation -> region mapping per the TPC-H specification.
const char* kNations[] = {
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};
const int kNationRegion[] = {0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2,
                             4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1};

const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                           "MACHINERY", "HOUSEHOLD"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kTypes1[] = {"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY",
                         "PROMO"};
const char* kTypes2[] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                         "BRUSHED"};
const char* kTypes3[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
const char* kContainers1[] = {"SM", "LG", "MED", "JUMBO", "WRAP"};
const char* kContainers2[] = {"CASE", "BOX", "BAG", "JAR", "PKG", "PACK",
                              "CAN", "DRUM"};
const char* kPartWords[] = {"almond", "antique", "aquamarine", "azure",
                            "beige", "bisque", "black", "blanched", "blue",
                            "blush", "brown", "burlywood", "burnished",
                            "chartreuse", "chiffon", "chocolate", "coral",
                            "cornflower", "cream", "cyan", "dark", "deep",
                            "dim", "dodger", "drab", "firebrick", "floral",
                            "forest", "frosted", "gainsboro", "ghost",
                            "goldenrod", "green", "grey", "honeydew",
                            "hot", "hotpink", "indian", "ivory", "khaki"};
const char* kShipModes[] = {"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK",
                            "MAIL", "FOB"};

// Distributes row i of a table over its fragments (round-robin).
LocationId FragmentOf(const TableDef& def, int64_t i) {
  return def.fragments[static_cast<size_t>(i) % def.fragments.size()]
      .location;
}

std::string Phone(Rng* rng) {
  std::string s = std::to_string(10 + rng->Uniform(0, 24)) + "-";
  for (int g = 0; g < 3; ++g) {
    s += std::to_string(rng->Uniform(100, 999));
    if (g < 2) s += "-";
  }
  return s;
}

std::string Address(Rng* rng) {
  std::string s;
  int len = static_cast<int>(rng->Uniform(10, 30));
  for (int i = 0; i < len; ++i) {
    s += static_cast<char>('a' + rng->Uniform(0, 25));
  }
  return s;
}

}  // namespace

Status GenerateData(const Catalog& catalog, const TpchConfig& config,
                    TableStore* store) {
  Rng rng(config.seed);
  const double sf = config.scale_factor;

  auto table = [&](const char* name) -> Result<const TableDef*> {
    return catalog.GetTable(name);
  };

  // region / nation.
  {
    CGQ_ASSIGN_OR_RETURN(const TableDef* region, table("region"));
    for (int64_t i = 0; i < 5; ++i) {
      store->Append(FragmentOf(*region, i), "region",
                    {Value::Int64(i), Value::String(kRegions[i])});
    }
    CGQ_ASSIGN_OR_RETURN(const TableDef* nation, table("nation"));
    for (int64_t i = 0; i < 25; ++i) {
      store->Append(FragmentOf(*nation, i), "nation",
                    {Value::Int64(i), Value::String(kNations[i]),
                     Value::Int64(kNationRegion[i])});
    }
  }

  const int64_t num_supplier = static_cast<int64_t>(RowsOf("supplier", sf));
  const int64_t num_part = static_cast<int64_t>(RowsOf("part", sf));
  const int64_t num_customer = static_cast<int64_t>(RowsOf("customer", sf));
  const int64_t num_orders = static_cast<int64_t>(RowsOf("orders", sf));

  {
    CGQ_ASSIGN_OR_RETURN(const TableDef* supplier, table("supplier"));
    for (int64_t i = 1; i <= num_supplier; ++i) {
      store->Append(
          FragmentOf(*supplier, i), "supplier",
          {Value::Int64(i), Value::String("Supplier#" + std::to_string(i)),
           Value::String(Address(&rng)), Value::Int64(rng.Uniform(0, 24)),
           Value::String(Phone(&rng)),
           Value::Double(rng.Uniform(-99999, 999999) / 100.0)});
    }
  }
  {
    CGQ_ASSIGN_OR_RETURN(const TableDef* part, table("part"));
    for (int64_t i = 1; i <= num_part; ++i) {
      std::string type = std::string(rng.Pick(std::vector<const char*>(
                             std::begin(kTypes1), std::end(kTypes1)))) +
                         " " +
                         rng.Pick(std::vector<const char*>(
                             std::begin(kTypes2), std::end(kTypes2))) +
                         " " +
                         rng.Pick(std::vector<const char*>(
                             std::begin(kTypes3), std::end(kTypes3)));
      int64_t m = rng.Uniform(1, 5);
      std::string name =
          std::string(kPartWords[rng.Uniform(0, 39)]) + " " +
          kPartWords[rng.Uniform(0, 39)];
      store->Append(
          FragmentOf(*part, i), "part",
          {Value::Int64(i), Value::String(name),
           Value::String("Manufacturer#" + std::to_string(m)),
           Value::String("Brand#" + std::to_string(m * 10 +
                                                   rng.Uniform(1, 5))),
           Value::String(type), Value::Int64(rng.Uniform(1, 50)),
           Value::String(std::string(kContainers1[rng.Uniform(0, 4)]) + " " +
                         kContainers2[rng.Uniform(0, 7)]),
           Value::Double(900 + (i % 1000) + rng.Uniform(0, 99) / 100.0)});
    }
  }
  {
    CGQ_ASSIGN_OR_RETURN(const TableDef* partsupp, table("partsupp"));
    for (int64_t p = 1; p <= num_part; ++p) {
      for (int64_t s = 0; s < 4; ++s) {
        int64_t suppkey =
            1 + (p + s * (num_supplier / 4 + 1)) % num_supplier;
        store->Append(FragmentOf(*partsupp, p * 4 + s), "partsupp",
                      {Value::Int64(p), Value::Int64(suppkey),
                       Value::Int64(rng.Uniform(1, 9999)),
                       Value::Double(rng.Uniform(100, 100000) / 100.0)});
      }
    }
  }
  {
    CGQ_ASSIGN_OR_RETURN(const TableDef* customer, table("customer"));
    for (int64_t i = 1; i <= num_customer; ++i) {
      store->Append(
          FragmentOf(*customer, i), "customer",
          {Value::Int64(i),
           Value::String("Customer#" + std::to_string(i)),
           Value::String(Address(&rng)), Value::Int64(rng.Uniform(0, 24)),
           Value::String(Phone(&rng)),
           Value::Double(rng.Uniform(-99999, 999999) / 100.0),
           Value::String(kSegments[rng.Uniform(0, 4)])});
    }
  }
  {
    CGQ_ASSIGN_OR_RETURN(const TableDef* orders, table("orders"));
    CGQ_ASSIGN_OR_RETURN(const TableDef* lineitem, table("lineitem"));
    int64_t line_counter = 0;
    for (int64_t i = 1; i <= num_orders; ++i) {
      int64_t orderdate = rng.Uniform(kMinOrderDate, kMaxOrderDate);
      const char* status_pool = "FOP";
      store->Append(
          FragmentOf(*orders, i), "orders",
          {Value::Int64(i), Value::Int64(rng.Uniform(1, num_customer)),
           Value::String(std::string(1, status_pool[rng.Uniform(0, 2)])),
           Value::Double(rng.Uniform(85000, 55000000) / 100.0),
           Value::Date(orderdate),
           Value::String(kPriorities[rng.Uniform(0, 4)]),
           Value::Int64(0)});
      int64_t lines = rng.Uniform(1, 7);
      for (int64_t ln = 1; ln <= lines; ++ln) {
        int64_t quantity = rng.Uniform(1, 50);
        double price = rng.Uniform(90000, 10500000) / 100.0;
        const char* rf_pool = "RAN";
        const char* ls_pool = "OF";
        int64_t shipdate = orderdate + rng.Uniform(1, 121);
        store->Append(
            FragmentOf(*lineitem, line_counter++), "lineitem",
            {Value::Int64(i), Value::Int64(rng.Uniform(1, num_part)),
             Value::Int64(rng.Uniform(1, num_supplier)),
             Value::Int64(ln), Value::Int64(quantity),
             Value::Double(price),
             Value::Double(rng.Uniform(0, 10) / 100.0),
             Value::Double(rng.Uniform(0, 8) / 100.0),
             Value::String(std::string(1, rf_pool[rng.Uniform(0, 2)])),
             Value::String(std::string(1, ls_pool[rng.Uniform(0, 1)])),
             Value::Date(shipdate),
             Value::Date(orderdate + rng.Uniform(30, 90)),
             Value::Date(shipdate + rng.Uniform(1, 30)),
             Value::String(kShipModes[rng.Uniform(0, 6)])});
      }
    }
  }
  return Status::OK();
}

}  // namespace tpch
}  // namespace cgq
