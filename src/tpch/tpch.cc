#include "tpch/tpch.h"

#include <cmath>

#include "types/date.h"

namespace cgq {
namespace tpch {

namespace {

ColumnStats Num(double ndv, double min, double max, double width = 8) {
  ColumnStats s;
  s.distinct_count = ndv;
  s.min = min;
  s.max = max;
  s.avg_width = width;
  return s;
}

ColumnStats Str(double ndv, double width) {
  ColumnStats s;
  s.distinct_count = ndv;
  s.avg_width = width;
  return s;
}

constexpr int64_t kMinOrderDate = 8035;   // 1992-01-01
constexpr int64_t kMaxOrderDate = 10440;  // 1998-08-02

}  // namespace

double RowsOf(const std::string& table, double sf) {
  if (table == "region") return 5;
  if (table == "nation") return 25;
  if (table == "supplier") return std::max(1.0, 10000 * sf);
  if (table == "part") return std::max(1.0, 200000 * sf);
  if (table == "partsupp") return std::max(1.0, 800000 * sf);
  if (table == "customer") return std::max(1.0, 150000 * sf);
  if (table == "orders") return std::max(1.0, 1500000 * sf);
  if (table == "lineitem") return std::max(1.0, 6001215 * sf);
  return 0;
}

Result<Catalog> BuildCatalog(const TpchConfig& config) {
  Catalog catalog;
  if (config.num_locations < 5) {
    return Status::InvalidArgument("TPC-H setup needs at least 5 locations");
  }
  for (size_t i = 1; i <= config.num_locations; ++i) {
    CGQ_RETURN_NOT_OK(
        catalog.mutable_locations().AddLocation("l" + std::to_string(i))
            .status());
  }
  const double sf = config.scale_factor;

  auto add = [&](TableDef def, LocationId home) -> Status {
    def.fragments = {TableFragment{home, 1.0}};
    def.stats.row_count = RowsOf(def.name, sf);
    return catalog.AddTable(std::move(def));
  };

  {
    TableDef t;
    t.name = "region";
    t.schema = Schema({{"regionkey", DataType::kInt64},
                       {"name", DataType::kString}});
    t.stats.columns["regionkey"] = Num(5, 0, 4);
    t.stats.columns["name"] = Str(5, 11);
    CGQ_RETURN_NOT_OK(add(t, 4));
  }
  {
    TableDef t;
    t.name = "nation";
    t.schema = Schema({{"nationkey", DataType::kInt64},
                       {"name", DataType::kString},
                       {"regionkey", DataType::kInt64}});
    t.stats.columns["nationkey"] = Num(25, 0, 24);
    t.stats.columns["name"] = Str(25, 12);
    t.stats.columns["regionkey"] = Num(5, 0, 4);
    CGQ_RETURN_NOT_OK(add(t, 4));
  }
  {
    TableDef t;
    t.name = "supplier";
    t.schema = Schema({{"suppkey", DataType::kInt64},
                       {"name", DataType::kString},
                       {"address", DataType::kString},
                       {"nationkey", DataType::kInt64},
                       {"phone", DataType::kString},
                       {"acctbal", DataType::kDouble}});
    double n = RowsOf("supplier", sf);
    t.stats.columns["suppkey"] = Num(n, 1, n);
    t.stats.columns["name"] = Str(n, 18);
    t.stats.columns["address"] = Str(n, 24);
    t.stats.columns["nationkey"] = Num(25, 0, 24);
    t.stats.columns["phone"] = Str(n, 15);
    t.stats.columns["acctbal"] = Num(n, -999.99, 9999.99);
    CGQ_RETURN_NOT_OK(add(t, 1));
  }
  {
    TableDef t;
    t.name = "part";
    t.schema = Schema({{"partkey", DataType::kInt64},
                       {"name", DataType::kString},
                       {"mfgr", DataType::kString},
                       {"brand", DataType::kString},
                       {"type", DataType::kString},
                       {"size", DataType::kInt64},
                       {"container", DataType::kString},
                       {"retailprice", DataType::kDouble}});
    double n = RowsOf("part", sf);
    t.stats.columns["partkey"] = Num(n, 1, n);
    t.stats.columns["name"] = Str(n, 32);
    t.stats.columns["mfgr"] = Str(5, 14);
    t.stats.columns["brand"] = Str(25, 10);
    t.stats.columns["type"] = Str(150, 20);
    t.stats.columns["size"] = Num(50, 1, 50);
    t.stats.columns["container"] = Str(40, 10);
    t.stats.columns["retailprice"] = Num(n, 900, 2100);
    CGQ_RETURN_NOT_OK(add(t, 2));
  }
  {
    TableDef t;
    t.name = "partsupp";
    t.schema = Schema({{"partkey", DataType::kInt64},
                       {"suppkey", DataType::kInt64},
                       {"availqty", DataType::kInt64},
                       {"supplycost", DataType::kDouble}});
    t.stats.columns["partkey"] = Num(RowsOf("part", sf), 1, RowsOf("part", sf));
    t.stats.columns["suppkey"] =
        Num(RowsOf("supplier", sf), 1, RowsOf("supplier", sf));
    t.stats.columns["availqty"] = Num(9999, 1, 9999);
    t.stats.columns["supplycost"] = Num(99901, 1, 1000);
    CGQ_RETURN_NOT_OK(add(t, 1));
  }
  {
    TableDef t;
    t.name = "customer";
    t.schema = Schema({{"custkey", DataType::kInt64},
                       {"name", DataType::kString},
                       {"address", DataType::kString},
                       {"nationkey", DataType::kInt64},
                       {"phone", DataType::kString},
                       {"acctbal", DataType::kDouble},
                       {"mktsegment", DataType::kString}});
    double n = RowsOf("customer", sf);
    t.stats.columns["custkey"] = Num(n, 1, n);
    t.stats.columns["name"] = Str(n, 18);
    t.stats.columns["address"] = Str(n, 24);
    t.stats.columns["nationkey"] = Num(25, 0, 24);
    t.stats.columns["phone"] = Str(n, 15);
    t.stats.columns["acctbal"] = Num(n, -999.99, 9999.99);
    t.stats.columns["mktsegment"] = Str(5, 10);
    CGQ_RETURN_NOT_OK(add(t, 0));
  }
  {
    TableDef t;
    t.name = "orders";
    t.schema = Schema({{"orderkey", DataType::kInt64},
                       {"custkey", DataType::kInt64},
                       {"orderstatus", DataType::kString},
                       {"totalprice", DataType::kDouble},
                       {"orderdate", DataType::kDate},
                       {"orderpriority", DataType::kString},
                       {"shippriority", DataType::kInt64}});
    double n = RowsOf("orders", sf);
    t.stats.columns["orderkey"] = Num(n, 1, n);
    t.stats.columns["custkey"] =
        Num(RowsOf("customer", sf), 1, RowsOf("customer", sf));
    t.stats.columns["orderstatus"] = Str(3, 1);
    t.stats.columns["totalprice"] = Num(n, 850, 550000);
    t.stats.columns["orderdate"] =
        Num(2406, kMinOrderDate, kMaxOrderDate);
    t.stats.columns["orderpriority"] = Str(5, 15);
    t.stats.columns["shippriority"] = Num(1, 0, 0);
    CGQ_RETURN_NOT_OK(add(t, 0));
  }
  {
    TableDef t;
    t.name = "lineitem";
    t.schema = Schema({{"orderkey", DataType::kInt64},
                       {"partkey", DataType::kInt64},
                       {"suppkey", DataType::kInt64},
                       {"linenumber", DataType::kInt64},
                       {"quantity", DataType::kInt64},
                       {"extendedprice", DataType::kDouble},
                       {"discount", DataType::kDouble},
                       {"tax", DataType::kDouble},
                       {"returnflag", DataType::kString},
                       {"linestatus", DataType::kString},
                       {"shipdate", DataType::kDate},
                       {"commitdate", DataType::kDate},
                       {"receiptdate", DataType::kDate},
                       {"shipmode", DataType::kString}});
    double n = RowsOf("lineitem", sf);
    t.stats.columns["orderkey"] =
        Num(RowsOf("orders", sf), 1, RowsOf("orders", sf));
    t.stats.columns["partkey"] =
        Num(RowsOf("part", sf), 1, RowsOf("part", sf));
    t.stats.columns["suppkey"] =
        Num(RowsOf("supplier", sf), 1, RowsOf("supplier", sf));
    t.stats.columns["linenumber"] = Num(7, 1, 7);
    t.stats.columns["quantity"] = Num(50, 1, 50);
    t.stats.columns["extendedprice"] = Num(n, 900, 105000);
    t.stats.columns["discount"] = Num(11, 0, 0.10);
    t.stats.columns["tax"] = Num(9, 0, 0.08);
    t.stats.columns["returnflag"] = Str(3, 1);
    t.stats.columns["linestatus"] = Str(2, 1);
    t.stats.columns["shipdate"] =
        Num(2526, kMinOrderDate + 1, kMaxOrderDate + 121);
    t.stats.columns["commitdate"] =
        Num(2466, kMinOrderDate + 30, kMaxOrderDate + 90);
    t.stats.columns["receiptdate"] =
        Num(2554, kMinOrderDate + 1, kMaxOrderDate + 151);
    t.stats.columns["shipmode"] = Str(7, 8);
    CGQ_RETURN_NOT_OK(add(t, 3));
  }
  return catalog;
}

}  // namespace tpch
}  // namespace cgq
