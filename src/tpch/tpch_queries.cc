#include "tpch/tpch.h"

namespace cgq {
namespace tpch {

namespace {

// Q2 with its correlated MIN-supplycost subquery, decorrelated by the
// query planner into a join with Γ_{partkey; MIN(supplycost)} over the
// inner join (8 join operators after the rewrite; the paper reports 13
// after Calcite's decorrelation).
constexpr const char* kQ2 = R"sql(
SELECT s.acctbal, s.name, n.name AS nation, p.partkey, p.mfgr
FROM part p, supplier s, partsupp ps, nation n, region r
WHERE p.partkey = ps.partkey AND s.suppkey = ps.suppkey
  AND p.size = 15 AND p.type LIKE '%BRASS'
  AND s.nationkey = n.nationkey AND n.regionkey = r.regionkey
  AND r.name = 'EUROPE'
  AND ps.supplycost = (
    SELECT MIN(ps2.supplycost)
    FROM partsupp ps2, supplier s2, nation n2, region r2
    WHERE ps2.partkey = p.partkey AND s2.suppkey = ps2.suppkey
      AND s2.nationkey = n2.nationkey AND n2.regionkey = r2.regionkey
      AND r2.name = 'EUROPE')
ORDER BY acctbal DESC LIMIT 100
)sql";

constexpr const char* kQ3 = R"sql(
SELECT l.orderkey, SUM(l.extendedprice * (1 - l.discount)) AS revenue,
       o.orderdate, o.shippriority
FROM customer c, orders o, lineitem l
WHERE c.mktsegment = 'BUILDING'
  AND c.custkey = o.custkey AND l.orderkey = o.orderkey
  AND o.orderdate < DATE '1995-03-15'
  AND l.shipdate > DATE '1995-03-15'
GROUP BY l.orderkey, o.orderdate, o.shippriority
ORDER BY revenue DESC, orderdate LIMIT 10
)sql";

constexpr const char* kQ5 = R"sql(
SELECT n.name, SUM(l.extendedprice * (1 - l.discount)) AS revenue
FROM customer c, orders o, lineitem l, supplier s, nation n, region r
WHERE c.custkey = o.custkey AND l.orderkey = o.orderkey
  AND l.suppkey = s.suppkey AND c.nationkey = s.nationkey
  AND s.nationkey = n.nationkey AND n.regionkey = r.regionkey
  AND r.name = 'ASIA'
  AND o.orderdate >= DATE '1994-01-01'
  AND o.orderdate < DATE '1995-01-01'
GROUP BY n.name
ORDER BY revenue DESC
)sql";

// Q8 without the EXTRACT(year) grouping and CASE expression: national
// market share reduced to volume per supplier nation.
constexpr const char* kQ8 = R"sql(
SELECT n2.name, SUM(l.extendedprice * (1 - l.discount)) AS volume
FROM part p, supplier s, lineitem l, orders o, customer c,
     nation n1, nation n2, region r
WHERE p.partkey = l.partkey AND s.suppkey = l.suppkey
  AND l.orderkey = o.orderkey AND o.custkey = c.custkey
  AND c.nationkey = n1.nationkey AND n1.regionkey = r.regionkey
  AND r.name = 'AMERICA'
  AND s.nationkey = n2.nationkey
  AND o.orderdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
  AND p.type = 'ECONOMY ANODIZED STEEL'
GROUP BY n2.name
)sql";

// Q9 without the EXTRACT(year) grouping: profit per supplier nation.
constexpr const char* kQ9 = R"sql(
SELECT n.name,
       SUM(l.extendedprice * (1 - l.discount) - ps.supplycost * l.quantity)
           AS profit
FROM part p, supplier s, lineitem l, partsupp ps, orders o, nation n
WHERE s.suppkey = l.suppkey AND ps.suppkey = l.suppkey
  AND ps.partkey = l.partkey AND p.partkey = l.partkey
  AND o.orderkey = l.orderkey AND s.nationkey = n.nationkey
  AND p.name LIKE '%green%'
GROUP BY n.name
)sql";

constexpr const char* kQ10 = R"sql(
SELECT c.custkey, c.name, SUM(l.extendedprice * (1 - l.discount)) AS revenue,
       c.acctbal, n.name AS nation, c.address, c.phone
FROM customer c, orders o, lineitem l, nation n
WHERE c.custkey = o.custkey AND l.orderkey = o.orderkey
  AND o.orderdate >= DATE '1993-10-01'
  AND o.orderdate < DATE '1994-01-01'
  AND l.returnflag = 'R'
  AND c.nationkey = n.nationkey
GROUP BY c.custkey, c.name, c.acctbal, c.phone, n.name, c.address
ORDER BY revenue DESC LIMIT 20
)sql";

// ---- Extended workload (not part of the paper's figures) ----
// Adapted to the dialect: COUNT(*) -> COUNT(column), no CASE/EXTRACT.

constexpr const char* kQ1 = R"sql(
SELECT l.returnflag, l.linestatus,
       SUM(l.quantity) AS sum_qty,
       SUM(l.extendedprice) AS sum_base_price,
       SUM(l.extendedprice * (1 - l.discount)) AS sum_disc_price,
       AVG(l.quantity) AS avg_qty,
       AVG(l.extendedprice) AS avg_price,
       AVG(l.discount) AS avg_disc,
       COUNT(l.orderkey) AS count_order
FROM lineitem l
WHERE l.shipdate <= DATE '1998-09-02'
GROUP BY l.returnflag, l.linestatus
ORDER BY returnflag, linestatus
)sql";

// Q4 with its correlated EXISTS (decorrelated into a semi-join).
constexpr const char* kQ4 = R"sql(
SELECT o.orderpriority, COUNT(*) AS order_count
FROM orders o
WHERE o.orderdate >= DATE '1993-07-01'
  AND o.orderdate < DATE '1993-10-01'
  AND EXISTS (
    SELECT l.orderkey FROM lineitem l
    WHERE l.orderkey = o.orderkey AND l.commitdate < l.receiptdate)
GROUP BY o.orderpriority
ORDER BY orderpriority
)sql";

constexpr const char* kQ6 = R"sql(
SELECT SUM(l.extendedprice * l.discount) AS revenue
FROM lineitem l
WHERE l.shipdate >= DATE '1994-01-01' AND l.shipdate < DATE '1995-01-01'
  AND l.discount BETWEEN 0.05 AND 0.07 AND l.quantity < 24
)sql";

constexpr const char* kQ12 = R"sql(
SELECT l.shipmode, COUNT(o.orderkey) AS order_count
FROM orders o, lineitem l
WHERE o.orderkey = l.orderkey
  AND l.shipmode IN ('MAIL', 'SHIP')
  AND l.commitdate < l.receiptdate AND l.shipdate < l.commitdate
  AND l.receiptdate >= DATE '1994-01-01'
  AND l.receiptdate < DATE '1995-01-01'
GROUP BY l.shipmode
ORDER BY shipmode
)sql";

constexpr const char* kQ14 = R"sql(
SELECT SUM(l.extendedprice * (1 - l.discount)) AS promo_revenue
FROM lineitem l, part p
WHERE l.partkey = p.partkey AND p.type LIKE 'PROMO%'
  AND l.shipdate >= DATE '1995-09-01' AND l.shipdate < DATE '1995-10-01'
)sql";

constexpr const char* kQ19 = R"sql(
SELECT SUM(l.extendedprice * (1 - l.discount)) AS revenue
FROM lineitem l, part p
WHERE p.partkey = l.partkey
  AND ((p.brand = 'Brand#12' AND l.quantity BETWEEN 1 AND 11
        AND p.size BETWEEN 1 AND 5)
    OR (p.brand = 'Brand#23' AND l.quantity BETWEEN 10 AND 20
        AND p.size BETWEEN 1 AND 10)
    OR (p.brand = 'Brand#34' AND l.quantity BETWEEN 20 AND 30
        AND p.size BETWEEN 1 AND 15))
  AND l.shipmode IN ('AIR', 'REG AIR')
)sql";

}  // namespace

Result<std::string> Query(int number) {
  switch (number) {
    case 1:
      return std::string(kQ1);
    case 4:
      return std::string(kQ4);
    case 6:
      return std::string(kQ6);
    case 12:
      return std::string(kQ12);
    case 14:
      return std::string(kQ14);
    case 19:
      return std::string(kQ19);
    case 2:
      return std::string(kQ2);
    case 3:
      return std::string(kQ3);
    case 5:
      return std::string(kQ5);
    case 8:
      return std::string(kQ8);
    case 9:
      return std::string(kQ9);
    case 10:
      return std::string(kQ10);
    default:
      return Status::NotFound("TPC-H Q" + std::to_string(number) +
                              " is not part of the workload");
  }
}

int JoinCountOf(int number) {
  switch (number) {
    case 1:
    case 6:
      return 0;
    case 4:
    case 12:
    case 14:
    case 19:
      return 1;
    case 2:
      return 8;
    case 3:
      return 2;
    case 5:
      return 5;
    case 8:
      return 7;
    case 9:
      return 5;
    case 10:
      return 3;
    default:
      return 0;
  }
}

std::vector<int> QueryNumbers() { return {2, 3, 5, 8, 9, 10}; }

std::vector<int> ExtendedQueryNumbers() { return {1, 4, 6, 12, 14, 19}; }

}  // namespace tpch
}  // namespace cgq
