#ifndef CGQ_TPCH_TPCH_H_
#define CGQ_TPCH_TPCH_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "core/policy.h"
#include "exec/table_store.h"

namespace cgq {
namespace tpch {

/// Configuration of the geo-distributed TPC-H instance (§7.1).
struct TpchConfig {
  /// TPC-H scale factor. Statistics always reflect this value; data
  /// generation is intended for small factors (<= 0.1).
  double scale_factor = 0.01;
  uint64_t seed = 42;
  /// Number of locations (>= 5). Locations are named l1, l2, ... Table 2's
  /// placement uses the first five.
  size_t num_locations = 5;
};

/// Builds the geo-distributed TPC-H catalog: locations l1..ln, the eight
/// tables placed per Table 2 of the paper
///   l1: customer, orders   l2: supplier, partsupp   l3: part
///   l4: lineitem           l5: nation, region
/// and per-column statistics scaled to `scale_factor`.
Result<Catalog> BuildCatalog(const TpchConfig& config);

/// Row counts per table at the configured scale factor.
double RowsOf(const std::string& table, double scale_factor);

/// Deterministically generates data for all tables into `store`,
/// distributing each table's rows round-robin over its fragments (so the
/// same function serves the §7.5 distributed-table setup after
/// Catalog::SetFragments).
Status GenerateData(const Catalog& catalog, const TpchConfig& config,
                    TableStore* store);

/// The six evaluation queries (§7.1) in this repo's SQL dialect, keyed by
/// TPC-H number: 2, 3, 5, 8, 9, 10. Q2 keeps its correlated MIN subquery
/// (decorrelated by the planner); Q8/Q9 drop the EXTRACT(year) grouping
/// (see DESIGN.md).
Result<std::string> Query(int number);

/// Join count of each workload query (paper: Q2=13 via Calcite
/// decorrelation; here 8 from the hand-flattened form).
int JoinCountOf(int number);

/// The paper's six workload query numbers, in ascending order.
std::vector<int> QueryNumbers();

/// Extended workload beyond the paper's figures: Q1, Q4, Q6, Q12, Q14,
/// Q19 (adapted where TPC-H uses CASE/EXTRACT; Q4 keeps its correlated
/// EXISTS).
std::vector<int> ExtendedQueryNumbers();

/// The four curated policy-expression sets of §7.1. Template names:
/// "T" (whole-table), "C" (columns), "CR" (columns+rows),
/// "CRA" (columns+rows+aggregates). Each set is feasible: every workload
/// query retains at least one compliant plan (all tables may reach the
/// l4 hub in some form).
Result<std::vector<std::string>> PolicySet(const std::string& name);

/// Installs a policy set into `policies` (clears existing content).
Status InstallPolicySet(const std::string& name, PolicyCatalog* policies);

/// Policies that impose no restriction at all: `ship * from t to *` for
/// each table (the minimal-overhead setup of Fig. 6b).
Status InstallUnrestrictedPolicies(PolicyCatalog* policies);

}  // namespace tpch
}  // namespace cgq

#endif  // CGQ_TPCH_TPCH_H_
