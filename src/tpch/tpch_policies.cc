#include "tpch/tpch.h"

namespace cgq {
namespace tpch {

namespace {

// Whole-table restrictions (template T, 8 expressions). l4 (lineitem's
// home) acts as the hub every table may reach, which keeps all six
// workload queries feasible.
const char* kSetT[] = {
    "ship * from nation to *",
    "ship * from region to *",
    "ship * from customer to l4, l5",
    "ship * from orders to l4, l5",
    "ship * from supplier to l3, l4",
    "ship * from partsupp to l3, l4",
    "ship * from part to l4",
    "ship * from lineitem to l1",
};

// Column restrictions (template C, 10 expressions): unused columns of each
// table are no longer shippable (e.g. order priorities, part containers).
const char* kSetC[] = {
    "ship * from nation to *",
    "ship * from region to *",
    "ship custkey, name, address, nationkey, phone, acctbal, mktsegment "
    "from customer to l4, l5",
    "ship orderkey, custkey, orderdate, orderpriority, shippriority from orders to l4, l5",
    "ship suppkey, name, acctbal, nationkey from supplier to l1, l3, l4",
    "ship partkey, suppkey, supplycost from partsupp to l3, l4",
    "ship partkey, name, mfgr, brand, size, type from part to l4",
    "ship orderkey, partkey, suppkey, quantity, extendedprice, discount, "
    "shipdate, returnflag from lineitem to l1",
    "ship suppkey, name, nationkey from supplier to l5",
    "ship custkey, nationkey from customer to l2, l3",
};

// Column + row restrictions (template CR, 10 expressions): account
// balances only leave with the BUILDING segment; parts only reach l2 for
// large or copper parts (e4 of Table 3).
const char* kSetCR[] = {
    "ship * from nation to *",
    "ship * from region to *",
    "ship custkey, name, address, phone, nationkey, mktsegment "
    "from customer to l4, l5",
    "ship custkey, name, address, phone, acctbal, nationkey, mktsegment "
    "from customer to l4, l5 where mktsegment = 'BUILDING'",
    "ship orderkey, custkey, orderdate, orderpriority, shippriority from orders to l4, l5",
    "ship suppkey, name, acctbal, nationkey from supplier to l1, l3, l4",
    "ship partkey, suppkey, supplycost from partsupp to l3, l4",
    "ship partkey, name, mfgr, brand, size, type from part to l4",
    "ship partkey, name, mfgr, brand, size, type from part to l2, l4 "
    "where size > 40 or type like '%COPPER%'",
    "ship orderkey, partkey, suppkey, quantity, extendedprice, discount, "
    "shipdate, returnflag from lineitem to l1",
};

// Column + row + aggregate restrictions (template CR+A, 10 expressions):
// lineitem measures leave l4 raw only for recent shipments, otherwise only
// as per-order/part/supplier aggregates (e5 of Table 3).
const char* kSetCRA[] = {
    "ship * from nation to *",
    "ship * from region to *",
    "ship custkey, name, address, phone, nationkey, mktsegment "
    "from customer to l3, l4, l5",
    "ship custkey, name, address, phone, acctbal, nationkey, mktsegment "
    "from customer to l4, l5 where mktsegment = 'BUILDING'",
    "ship orderkey, custkey, orderdate, orderpriority, shippriority from orders "
    "to l3, l4, l5",
    "ship suppkey, name, acctbal, nationkey from supplier to l1, l3, l4",
    "ship partkey, suppkey, supplycost from partsupp to l3, l4",
    "ship partkey, name, mfgr, brand, size, type from part to l4",
    "ship orderkey, partkey, suppkey, quantity, extendedprice, discount, "
    "shipdate, returnflag from lineitem to l1 "
    "where shipdate > date '1995-03-15'",
    "ship extendedprice, discount, quantity as aggregates sum, min, max "
    "from lineitem to l1, l2, l3, l5 "
    "group by orderkey, partkey, suppkey, shipdate, returnflag",
};

// Registers one expression at every location hosting a fragment of its
// table (relevant for the §7.5 distributed-table experiments).
Status AddForAllFragments(const std::string& text, PolicyCatalog* policies) {
  size_t pos = text.find("from ");
  size_t start = pos + 5;
  size_t end = text.find_first_of(" \n", start);
  std::string table = text.substr(
      start, end == std::string::npos ? std::string::npos : end - start);
  const Catalog& catalog = policies->catalog();
  CGQ_ASSIGN_OR_RETURN(const TableDef* def, catalog.GetTable(table));
  for (LocationId l : def->LocationsOf().ToVector()) {
    CGQ_RETURN_NOT_OK(
        policies->AddPolicyText(catalog.locations().GetName(l), text));
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<std::string>> PolicySet(const std::string& name) {
  std::vector<std::string> out;
  if (name == "T") {
    out.assign(std::begin(kSetT), std::end(kSetT));
  } else if (name == "C") {
    out.assign(std::begin(kSetC), std::end(kSetC));
  } else if (name == "CR") {
    out.assign(std::begin(kSetCR), std::end(kSetCR));
  } else if (name == "CRA" || name == "CR+A") {
    out.assign(std::begin(kSetCRA), std::end(kSetCRA));
  } else {
    return Status::NotFound("unknown policy set '" + name + "'");
  }
  return out;
}

Status InstallPolicySet(const std::string& name, PolicyCatalog* policies) {
  CGQ_ASSIGN_OR_RETURN(std::vector<std::string> exprs, PolicySet(name));
  policies->Clear();
  for (const std::string& text : exprs) {
    CGQ_RETURN_NOT_OK(AddForAllFragments(text, policies));
  }
  return Status::OK();
}

Status InstallUnrestrictedPolicies(PolicyCatalog* policies) {
  policies->Clear();
  for (const char* table :
       {"nation", "region", "customer", "orders", "supplier", "partsupp",
        "part", "lineitem"}) {
    CGQ_RETURN_NOT_OK(AddForAllFragments(
        std::string("ship * from ") + table + " to *", policies));
  }
  return Status::OK();
}

}  // namespace tpch
}  // namespace cgq
