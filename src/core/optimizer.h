#ifndef CGQ_CORE_OPTIMIZER_H_
#define CGQ_CORE_OPTIMIZER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/compliance_checker.h"
#include "core/policy.h"
#include "core/policy_evaluator.h"
#include "net/network_model.h"
#include "plan/plan_node.h"
#include "sql/ast.h"

namespace cgq {

/// Configuration of a query optimizer instance.
struct OptimizerOptions {
  /// true: the compliance-based optimizer (§6). false: the traditional
  /// cost-based baseline (Calcite-as-is in the paper's experiments) —
  /// same search, traits ignored, all sites legal in phase 2.
  bool compliant = true;
  /// Enables the eager-aggregation rules (aggregate masking). Disable for
  /// the ablation benchmark.
  bool enable_agg_pushdown = true;
  /// When non-empty, the result must be produced at one of these sites.
  LocationSet required_result;
  /// Phase-2 objective: false = total communication cost (paper default),
  /// true = response time (parallel transfers; §3.3 Discussion).
  bool response_time_objective = false;
  /// Implementation rule preference: sort-merge join instead of hash join
  /// for equi-joins.
  bool prefer_sort_merge_join = false;
  /// Fan-out width for independent policy/implication checks (per-policy
  /// inside the evaluator, per-(group, database) AR4 prewarm inside the
  /// annotator). 1 = fully sequential (identical results either way; the
  /// parallel merge is deterministic). 0 = one per hardware thread.
  int threads = 1;
  /// Memoize implication-test results in the process-wide cache keyed by
  /// canonical (premise, conclusion) fingerprints. Disable for the uncached
  /// baseline in the fig7/fig8 scalability benches.
  bool implication_cache = true;
};

/// Timings and search-space counters for the overhead experiments
/// (Fig. 6b–f, 7, 8).
struct OptimizationStats {
  double prepare_ms = 0;   ///< parse + bind + normalize
  double explore_ms = 0;   ///< rule-based memo expansion
  double annotate_ms = 0;  ///< phase 1 (plan annotator)
  double site_ms = 0;      ///< phase 2 (site selector)
  double total_ms = 0;
  size_t memo_groups = 0;
  size_t memo_exprs = 0;
  PolicyEvalStats policy;  ///< incl. η (Fig. 7a–c)

  // --- Plan-cache outcome (filled by Engine when a PlanCache is
  // installed; see service/plan_cache.h) ---
  bool cache_consulted = false;  ///< a PlanCache was in front of the optimizer
  bool cache_hit = false;        ///< served from cache (phase timings ~0)
  /// The hit rebound a parameterized entry to this query's constants
  /// (false on exact hits and misses).
  bool cache_param_hit = false;
  uint64_t policy_epoch = 0;     ///< catalog epoch the plan is valid at
  size_t cache_entries = 0;      ///< resident entries after this query
  size_t cache_bytes = 0;        ///< resident bytes after this query
};

/// A fully optimized, located query plan.
struct OptimizedQuery {
  PlanNodePtr plan;  ///< physical plan with SHIP operators and locations
  double phase1_cost = 0;    ///< local cost model value of the chosen plan
  double comm_cost_ms = 0;   ///< estimated communication cost (Fig. 6g,h)
  LocationId result_location = 0;
  /// Verdict of the independent Definition-1 checker. Always true for the
  /// compliance-based optimizer (Theorem 1); the baseline may emit
  /// non-compliant plans.
  bool compliant = false;
  std::vector<std::string> violations;
  // Presentation steps executed at the result site.
  std::vector<OrderItemAst> order_by;
  std::optional<int64_t> limit;
  OptimizationStats stats;
};

/// End-to-end optimizer: SQL text (or AST) to located physical plan.
/// Thread-compatible; one instance may serve many queries.
class QueryOptimizer {
 public:
  QueryOptimizer(const Catalog* catalog, const PolicyCatalog* policies,
                 const NetworkModel* net, OptimizerOptions options)
      : catalog_(catalog),
        policies_(policies),
        net_(net),
        options_(options) {}

  Result<OptimizedQuery> Optimize(const std::string& sql) const;
  Result<OptimizedQuery> OptimizeAst(const QueryAst& ast) const;

  const OptimizerOptions& options() const { return options_; }

 private:
  const Catalog* catalog_;
  const PolicyCatalog* policies_;
  const NetworkModel* net_;
  OptimizerOptions options_;
};

}  // namespace cgq

#endif  // CGQ_CORE_OPTIMIZER_H_
