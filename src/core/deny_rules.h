#ifndef CGQ_CORE_DENY_RULES_H_
#define CGQ_CORE_DENY_RULES_H_

#include <string>
#include <vector>

#include "core/policy.h"

namespace cgq {

/// Negative policy instances (§4, Disclosure Model).
///
/// The paper's policy expressions are positive (default-deny: nothing ships
/// unless permitted). It notes that "in some cases negative instances,
/// i.e., specifying what is not allowed, may be more convenient. This can
/// be handled by an additional preprocessing step under a closed world
/// assumption." This module is that preprocessing step.
///
/// A deny rule
///
///   deny <attrs|*> from <table> to <locations|*>
///
/// is expanded — closed world: everything not denied is allowed — into the
/// positive expressions
///
///   ship <all columns except attrs> from <table> to *
///   ship <attrs> from <table> to <all locations except locations>
///
/// at the attribute x location granularity. Multiple deny rules for one
/// table compose by intersection of the allowed (attribute, location)
/// matrix; `ExpandDenyRules` performs the exact expansion by emitting one
/// positive expression per group of attributes with equal allowed-location
/// sets.
struct DenyRule {
  std::string table;                 ///< lower-cased
  bool all_attributes = false;
  std::vector<std::string> attributes;
  bool all_locations = false;
  LocationSet locations;
};

/// Parses `deny <attrs|*> from <table> to <locations|*>`.
Result<DenyRule> ParseDenyRule(const Catalog& catalog,
                               const std::string& text);

/// Expands a set of deny rules for one table into positive policy
/// expressions under the closed-world assumption. All rules must target
/// the same table.
Result<std::vector<PolicyExpression>> ExpandDenyRules(
    const Catalog& catalog, const std::vector<DenyRule>& rules);

/// Convenience: parses the deny rules, expands them, and installs the
/// resulting positive expressions for `location`.
Status AddDenyPolicies(const std::string& location,
                       const std::vector<std::string>& deny_texts,
                       PolicyCatalog* policies);

}  // namespace cgq

#endif  // CGQ_CORE_DENY_RULES_H_
