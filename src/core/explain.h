#ifndef CGQ_CORE_EXPLAIN_H_
#define CGQ_CORE_EXPLAIN_H_

#include <string>

#include "core/policy_evaluator.h"
#include "plan/plan_node.h"

namespace cgq {

/// Renders a compliance provenance report for a located plan: for every
/// SHIP operator, *why* the transfer is legal — either the policy
/// expressions that grant each disclosed attribute of a single-database
/// subquery (AR4), or the derivation through the inputs' shipping traits
/// for cross-database intermediates (AR2/AR3). Violations are flagged
/// inline, so the report doubles as a human-readable audit of the
/// Definition-1 check.
std::string ExplainCompliance(const PlanNode& located_root,
                              const PolicyEvaluator& evaluator,
                              const LocationCatalog& locations);

}  // namespace cgq

#endif  // CGQ_CORE_EXPLAIN_H_
