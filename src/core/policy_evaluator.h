#ifndef CGQ_CORE_POLICY_EVALUATOR_H_
#define CGQ_CORE_POLICY_EVALUATOR_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "catalog/location.h"
#include "common/thread_pool.h"
#include "core/policy.h"
#include "expr/implication.h"
#include "plan/summary.h"

namespace cgq {

/// Instrumentation counters for the scalability analysis (§7.5, Fig. 7):
/// `eta` counts how often an expression is *considered* — i.e. its ship
/// attributes intersect the query's output attributes AND the implication
/// test passes (Algorithm 1 reaching line 4).
struct PolicyEvalStats {
  int64_t evaluations = 0;        ///< calls to Evaluate()
  /// Expressions walked by the per-policy pass. Flat mode: everything the
  /// index hands back. Hierarchical mode: only entries whose implication
  /// already held for every instance (bucket memo) plus the unmaskable
  /// catch-all — bucket entries that fail implication never reach the walk
  /// (they show up in implication_tests when their bucket is filled cold),
  /// and a summary answered by the evaluation memo walks nothing at all.
  int64_t candidates = 0;
  int64_t expressions_matched = 0;  ///< A_q ∩ A_e ≠ ∅
  /// Implication tests actually dispatched (direct / cache / plain). In
  /// hierarchical mode a warm Evaluate() re-uses bucket-memoized outcomes
  /// and may report 0.
  int64_t implication_tests = 0;
  int64_t implication_cache_hits = 0;    ///< tests answered from the cache
  int64_t implication_cache_misses = 0;  ///< tests actually run
  /// Expressions skipped because their (bucket-shared) predicate mask
  /// requires columns no (non-contradictory) instance premise mentions —
  /// the hierarchical index's bucket pre-filter, plus the per-instance
  /// fallback for unmaskable entries; always 0 in flat mode.
  int64_t prefilter_skips = 0;
  int64_t eta = 0;                ///< implication passed (line 4 reached)
  double eval_ms = 0;             ///< total time spent inside Evaluate()
};

/// The policy evaluation algorithm 𝒜 (Algorithm 1, §5).
///
/// Given the summary of a subquery q pertaining to the single database at
/// location `db`, computes the set 𝒜(q, D, P_D) of locations to which q's
/// output may legally be shipped:
///
///   - per output attribute a (flattened to (base attribute, aggregate fn)
///     pairs), collect locations L_a from every expression e whose ship (or
///     group) attributes mention a and whose predicate is implied (P_q ⟹
///     P_e), distinguishing the three cases of §5;
///   - self-joins: the implication must hold for *every* instance of e's
///     table in q (each instance's own single-table conjuncts form the
///     premise);
///   - result is the intersection over all output attributes (∅ when any
///     attribute has no permitting expression).
/// Why one disclosed attribute of a subquery may be shipped somewhere:
/// the policy expressions whose `to` set granted it.
struct AttrGrant {
  BaseAttr base;
  std::optional<AggFn> fn;           ///< aggregate applied, if any
  LocationSet granted;               ///< union of granting expressions' to
  std::vector<const PolicyExpression*> granted_by;
};

/// Thread-safe: Evaluate() may be called concurrently (the plan annotator
/// fans AR4 evaluations of independent (group, database) pairs across a
/// pool). Per-policy work inside one Evaluate() call is itself fanned out
/// when a pool is configured; results are merged in policy order, so the
/// outcome is bit-identical to the sequential evaluation at any thread
/// count.
class PolicyEvaluator {
 public:
  PolicyEvaluator(const Catalog* catalog, const PolicyCatalog* policies)
      : catalog_(catalog), policies_(policies) {}

  /// Evaluates 𝒜 for a summary whose sources all live at `db`. The summary
  /// must be a valid single-block (callers check IsSingleDatabaseBlock()).
  /// When `grants` is non-null, also records, per disclosed attribute, the
  /// expressions that granted locations (compliance provenance).
  LocationSet Evaluate(const QuerySummary& summary, LocationId db,
                       std::vector<AttrGrant>* grants = nullptr) const;

  /// The catalog this evaluator consults (for index-aware callers like the
  /// plan annotator's AR4 prewarm).
  const PolicyCatalog* policies() const { return policies_; }

  /// Memoizes implication results in `cache` (default: the process-wide
  /// cache). nullptr runs every test directly — the uncached baseline.
  void set_implication_cache(ImplicationCache* cache) { cache_ = cache; }
  ImplicationCache* implication_cache() const { return cache_; }

  /// Fans per-policy implication checks of one Evaluate() call across up to
  /// `width` threads of `pool`. width <= 1 keeps evaluation sequential.
  void set_parallelism(ThreadPool* pool, int width) {
    pool_ = pool;
    width_ = width;
  }

  PolicyEvalStats stats() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return stats_;
  }
  void ResetStats() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_ = PolicyEvalStats{};
  }

 private:
  const Catalog* catalog_;
  const PolicyCatalog* policies_;
  ImplicationCache* cache_ = ImplicationCache::Global();
  ThreadPool* pool_ = nullptr;
  int width_ = 1;

  mutable std::mutex stats_mu_;
  mutable PolicyEvalStats stats_;
};

}  // namespace cgq

#endif  // CGQ_CORE_POLICY_EVALUATOR_H_
