#ifndef CGQ_CORE_POLICY_LINT_H_
#define CGQ_CORE_POLICY_LINT_H_

#include <string>
#include <vector>

#include "core/policy.h"

namespace cgq {

/// One lint finding about the installed policy catalog.
struct PolicyLintFinding {
  enum class Severity { kInfo, kWarning };
  Severity severity = Severity::kInfo;
  std::string location;  ///< location whose catalog entry is concerned
  std::string message;

  std::string ToString() const {
    return std::string(severity == Severity::kWarning ? "[warn] " :
                                                        "[info] ") +
           location + ": " + message;
  }
};

/// Static analysis of a policy catalog, for data officers (offline step of
/// Fig. 2). Reports:
///  - attributes of locally stored tables with no egress expression at all
///    (they can never leave — often intended, surfaced as info);
///  - expressions registered at a location that stores no fragment of
///    their table (they will never be consulted — warning);
///  - expressions that only permit shipping to the data's own location
///    (no-ops — info);
///  - basic expressions fully subsumed by another basic expression on the
///    same table (attributes ⊆, locations ⊆, and the subsumer's condition
///    is implied by the subsumee's — redundant, info).
std::vector<PolicyLintFinding> LintPolicies(const Catalog& catalog,
                                            const PolicyCatalog& policies);

}  // namespace cgq

#endif  // CGQ_CORE_POLICY_LINT_H_
