#include "core/plan_annotator.h"

#include <algorithm>

#include "common/logging.h"
#include "common/trace.h"

namespace cgq {

double PlanAnnotator::OpCost(const MExpr& expr) const {
  const Group& g = memo_->group(expr.group);
  switch (expr.payload->kind()) {
    case PlanKind::kScan:
      return g.card.rows;
    case PlanKind::kFilter:
    case PlanKind::kProject:
    case PlanKind::kUnion: {
      double in = 0;
      for (int c : expr.child_groups) in += memo_->group(c).card.rows;
      return in;
    }
    case PlanKind::kJoin: {
      double in = 0;
      for (int c : expr.child_groups) in += memo_->group(c).card.rows;
      return in + g.card.rows;
    }
    case PlanKind::kAggregate:
      return memo_->group(expr.child_groups[0]).card.rows + g.card.rows;
    case PlanKind::kShip:
      return 0;
  }
  return 0;
}

LocationSet PlanAnnotator::Ar4Trait(int group_id, LocationSet sources) {
  Group& g = memo_->group(group_id);
  // AR4 needs a single-block expression over exactly one database. The
  // database is a property of the chosen plan (replicas!), so it is keyed
  // per winner's source set rather than per group.
  if (!g.summary.spg_valid || sources.Count() != 1) return LocationSet();
  LocationId db = sources.ToVector().front();
  auto it = g.ar4_cache.find(db);
  if (it != g.ar4_cache.end()) {
    ++rules_.ar4_cache_hits;
    return it->second;
  }
  ++rules_.ar4_evaluations;
  LocationSet result = evaluator_->Evaluate(g.summary, db);
  g.ar4_cache.emplace(db, result);
  return result;
}

void PlanAnnotator::PrewarmAr4(int root_group) {
  // Candidate single-database sources per group, bottom-up over the memo
  // DAG: a scan can be sourced at its fragment's site; a composite can be
  // entirely sourced at db d only when every child can. The union over a
  // group's alternatives covers every `sources` set (of size 1) a winner of
  // that group can carry, so every Ar4Trait call the search makes is
  // prewarmed.
  std::vector<LocationSet> single_db(memo_->num_groups());
  std::vector<char> computed(memo_->num_groups(), 0);
  auto sources_of = [&](auto&& self, int gid) -> LocationSet {
    if (computed[gid]) return single_db[gid];
    computed[gid] = 1;  // groups form a DAG, no cycles
    LocationSet s;
    for (int expr_id : memo_->group(gid).mexprs) {
      const MExpr& expr = memo_->mexpr(expr_id);
      if (expr.child_groups.empty()) {
        if (expr.payload->kind() == PlanKind::kScan) {
          s.Add(expr.payload->scan_location);
        }
        continue;
      }
      LocationSet inter = memo_->ctx()->catalog().locations().All();
      for (int c : expr.child_groups) {
        inter = inter.Intersect(self(self, c));
        if (inter.empty()) break;
      }
      s = s.Union(inter);
    }
    single_db[gid] = s;
    return s;
  };
  sources_of(sources_of, root_group);

  struct Item {
    int group;
    LocationId db;
  };
  std::vector<Item> items;
  const PolicyCatalog* policies = evaluator_->policies();
  std::vector<std::string> group_tables;
  for (size_t gid = 0; gid < memo_->num_groups(); ++gid) {
    Group& g = memo_->group(static_cast<int>(gid));
    if (!computed[gid] || !g.summary.spg_valid) continue;
    group_tables.clear();
    for (const auto& [alias, table] : g.summary.alias_tables) {
      group_tables.push_back(table);
    }
    for (LocationId db : single_db[gid].ToVector()) {
      if (g.ar4_cache.find(db) != g.ar4_cache.end()) continue;
      if (!policies->HasPoliciesFor(db, group_tables)) {
        // No expression governs any of the group's tables at db, so 𝒜 is
        // identically empty — cache the rejection without a walk.
        g.ar4_cache.emplace(db, LocationSet());
        ++rules_.ar4_prewarm_skips;
        continue;
      }
      items.push_back({static_cast<int>(gid), db});
    }
  }
  if (items.empty()) return;

  // Each task writes only its result slot; the group caches are filled
  // sequentially afterwards (unordered_map insertion is not thread-safe).
  // Workers do not inherit the caller's trace context, so it is
  // re-installed per item; the item ordinal keeps the span order
  // deterministic under any scheduling.
  TraceSession* trace = TraceSession::Current();
  int64_t trace_parent = TraceSession::CurrentSpanId();
  int trace_track = TraceSession::CurrentTrack();
  std::vector<LocationSet> results(items.size());
  pool_->ParallelFor(items.size(), static_cast<size_t>(width_), [&](size_t i) {
    ScopedTraceContext ctx(trace, trace_parent, trace_track);
    TraceSpan item_span("ar4_item", static_cast<int>(i));
    item_span.AddArg("group", items[i].group);
    item_span.AddArg("db", static_cast<int64_t>(items[i].db));
    results[i] =
        evaluator_->Evaluate(memo_->group(items[i].group).summary, items[i].db);
  });
  for (size_t i = 0; i < items.size(); ++i) {
    memo_->group(items[i].group).ar4_cache.emplace(items[i].db, results[i]);
  }
}

void PlanAnnotator::AddWinner(std::vector<Winner>* winners,
                              Winner candidate) const {
  // Dominance: an existing winner with superset traits, lower-or-equal
  // cost and the *same* source set makes the candidate useless, and vice
  // versa. Sources must match because ancestors' AR4 depends on them.
  for (const Winner& w : *winners) {
    if (candidate.ship_trait.IsSubsetOf(w.ship_trait) &&
        candidate.exec_trait.IsSubsetOf(w.exec_trait) &&
        w.sources == candidate.sources && w.cost <= candidate.cost) {
      return;
    }
  }
  winners->erase(
      std::remove_if(winners->begin(), winners->end(),
                     [&](const Winner& w) {
                       return w.ship_trait.IsSubsetOf(candidate.ship_trait) &&
                              w.exec_trait.IsSubsetOf(candidate.exec_trait) &&
                              w.sources == candidate.sources &&
                              candidate.cost <= w.cost;
                     }),
      winners->end());
  winners->push_back(std::move(candidate));
  if (winners->size() > kMaxWinnersPerGroup) {
    std::sort(winners->begin(), winners->end(),
              [](const Winner& a, const Winner& b) { return a.cost < b.cost; });
    winners->resize(kMaxWinnersPerGroup);
  }
}

const std::vector<Winner>& PlanAnnotator::Winners(int group_id) {
  Group& g = memo_->group(group_id);
  if (g.winners_computed) return g.winners;
  g.winners_computed = true;  // set first: groups form a DAG, no cycles

  const LocationSet all = memo_->ctx()->catalog().locations().All();

  for (int expr_id : g.mexprs) {
    const MExpr& expr = memo_->mexpr(expr_id);
    double op_cost = OpCost(expr);

    if (mode_ == Mode::kCostOnly) {
      // Traditional baseline: single cheapest plan; scans stay pinned to
      // their fragment's site, everything else may run anywhere.
      double cost = op_cost;
      std::vector<int> child_idx;
      bool ok = true;
      for (int c : expr.child_groups) {
        const std::vector<Winner>& cw = Winners(c);
        if (cw.empty()) {
          ok = false;
          break;
        }
        // Single winner in this mode.
        child_idx.push_back(0);
        cost += cw[0].cost;
      }
      if (!ok) continue;
      Winner w;
      w.exec_trait = expr.payload->kind() == PlanKind::kScan
                         ? LocationSet::Single(expr.payload->scan_location)
                         : all;
      w.ship_trait = all;
      w.cost = cost;
      w.mexpr = expr_id;
      w.child_winners = std::move(child_idx);
      if (g.winners.empty() || w.cost < g.winners[0].cost) {
        g.winners.assign(1, std::move(w));
      }
      continue;
    }

    // Compliant mode: enumerate combinations of child winners.
    if (expr.child_groups.empty()) {
      ++rules_.ar1_leaves;
      ++rules_.ar3_unions;
      Winner w;
      w.exec_trait = LocationSet::Single(expr.payload->scan_location);  // AR1
      w.sources = w.exec_trait;
      w.ship_trait =
          w.exec_trait.Union(Ar4Trait(group_id, w.sources));  // AR3 + AR4
      w.cost = op_cost;
      w.mexpr = expr_id;
      AddWinner(&g.winners, std::move(w));
      continue;
    }

    std::vector<const std::vector<Winner>*> child_winners;
    bool feasible = true;
    for (int c : expr.child_groups) {
      const std::vector<Winner>& cw = Winners(c);
      if (cw.empty()) {
        feasible = false;
        break;
      }
      child_winners.push_back(&cw);
    }
    if (!feasible) continue;

    // Odometer over child winner combinations (bounded: a UNION over many
    // fragments with rich frontiers could otherwise explode).
    constexpr size_t kMaxCombos = 100000;
    size_t combos = 0;
    std::vector<size_t> idx(expr.child_groups.size(), 0);
    while (combos++ < kMaxCombos) {
      LocationSet exec = all;
      LocationSet sources;
      double cost = op_cost;
      for (size_t i = 0; i < idx.size(); ++i) {
        const Winner& cw = (*child_winners[i])[idx[i]];
        exec = exec.Intersect(cw.ship_trait);  // AR2
        sources = sources.Union(cw.sources);
        cost += cw.cost;
      }
      ++rules_.ar2_intersections;
      if (!exec.empty()) {  // compliance-based cost function: ∞ otherwise
        ++rules_.ar3_unions;
        Winner w;
        w.exec_trait = exec;
        w.sources = sources;
        w.ship_trait = exec.Union(Ar4Trait(group_id, sources));  // AR3+AR4
        w.cost = cost;
        w.mexpr = expr_id;
        w.child_winners.assign(idx.begin(), idx.end());
        AddWinner(&g.winners, std::move(w));
      }
      // Advance the odometer.
      size_t k = 0;
      while (k < idx.size()) {
        if (++idx[k] < child_winners[k]->size()) break;
        idx[k] = 0;
        ++k;
      }
      if (k == idx.size()) break;
    }
  }
  return g.winners;
}

namespace {

// Implementation rule: physical join selection. Hash (or sort-merge when
// preferred) whenever a usable equi-conjunct exists; nested loop otherwise.
JoinMethod ChooseJoinMethod(const PlanNode& join, bool prefer_sort_merge) {
  auto side_has = [&](size_t side, AttrId id) {
    for (const OutputCol& c : join.child(side)->outputs) {
      if (c.id == id) return true;
    }
    return false;
  };
  for (const ExprPtr& c : join.conjuncts) {
    if (c->op() != ExprOp::kEq) continue;
    if (c->child(0)->op() != ExprOp::kColumnRef ||
        c->child(1)->op() != ExprOp::kColumnRef) {
      continue;
    }
    AttrId a = c->child(0)->attr_id();
    AttrId b = c->child(1)->attr_id();
    if ((side_has(0, a) && side_has(1, b)) ||
        (side_has(0, b) && side_has(1, a))) {
      return prefer_sort_merge ? JoinMethod::kSortMerge : JoinMethod::kHash;
    }
  }
  return JoinMethod::kNestedLoop;
}

}  // namespace

PlanNodePtr PlanAnnotator::Extract(int group_id, const Winner& winner) {
  const Group& g = memo_->group(group_id);
  const MExpr& expr = memo_->mexpr(winner.mexpr);
  auto node = std::make_shared<PlanNode>(*expr.payload);
  node->children().clear();
  for (size_t i = 0; i < expr.child_groups.size(); ++i) {
    int cg = expr.child_groups[i];
    const Winner& cw = memo_->group(cg).winners[winner.child_winners[i]];
    node->children().push_back(Extract(cg, cw));
  }
  if (node->kind() == PlanKind::kJoin) {
    node->join_method = ChooseJoinMethod(*node, prefer_sort_merge_);
  }
  node->outputs = g.outputs;
  node->exec_trait = winner.exec_trait;
  node->ship_trait = winner.ship_trait;
  node->est_rows = g.card.rows;
  node->est_row_bytes = g.card.row_bytes;
  node->local_cost = winner.cost;
  return node;
}

Result<PlanNodePtr> PlanAnnotator::BestPlan(int root_group,
                                            LocationSet required_result) {
  if (mode_ == Mode::kCompliant && pool_ != nullptr && width_ > 1) {
    TraceSpan prewarm_span("annotate.prewarm_ar4");
    PrewarmAr4(root_group);
  }
  TraceSpan search_span("annotate.search");
  const std::vector<Winner>& winners = Winners(root_group);
  search_span.AddArg("root_winners", static_cast<int64_t>(winners.size()));
  search_span.End();
  // Retrospective per-rule attribution: one marker span per annotation
  // rule with its application count, in rule order.
  {
    TraceSpan ar1("rule.AR1");
    ar1.AddArg("applications", rules_.ar1_leaves);
  }
  {
    TraceSpan ar2("rule.AR2");
    ar2.AddArg("applications", rules_.ar2_intersections);
  }
  {
    TraceSpan ar3("rule.AR3");
    ar3.AddArg("applications", rules_.ar3_unions);
  }
  {
    TraceSpan ar4("rule.AR4");
    ar4.AddArg("applications", rules_.ar4_evaluations);
    ar4.AddArg("cache_hits", rules_.ar4_cache_hits);
    ar4.AddArg("prewarm_skips", rules_.ar4_prewarm_skips);
  }
  const Winner* best = nullptr;
  for (const Winner& w : winners) {
    if (!required_result.empty() &&
        w.ship_trait.Intersect(required_result).empty()) {
      continue;  // this alternative cannot deliver the result there
    }
    if (best == nullptr || w.cost < best->cost) best = &w;
  }
  if (best == nullptr) {
    return Status::NonCompliant(
        winners.empty()
            ? "no compliant execution plan exists for this query under "
              "the current dataflow policies"
            : "no compliant execution plan can deliver the result at the "
              "required location(s)");
  }
  return Extract(root_group, *best);
}

}  // namespace cgq
