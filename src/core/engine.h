#ifndef CGQ_CORE_ENGINE_H_
#define CGQ_CORE_ENGINE_H_

#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "common/trace.h"
#include "core/optimizer.h"
#include "core/policy.h"
#include "exec/executor.h"
#include "exec/table_store.h"
#include "net/cluster_client.h"
#include "net/network_model.h"

namespace cgq {

class PlanCache;

/// The compliance-based query processor of Fig. 2: policy catalog +
/// compliance-based optimizer (plan annotator, policy evaluator, site
/// selector) + query executor over the geo-distributed table store.
///
/// Typical use:
///
///   Engine engine(std::move(catalog), NetworkModel::DefaultGeo(5));
///   engine.AddPolicy("europe", "ship name from customer to asia");
///   engine.LoadTable(...);                    // or via tpch::GenerateData
///   auto result = engine.Run("SELECT ...");   // rejected if non-compliant
///
/// Non-compliant queries are rejected with StatusCode::kNonCompliant
/// *before* any data moves.
class Engine {
 public:
  Engine(Catalog catalog, NetworkModel net)
      : catalog_(std::make_unique<Catalog>(std::move(catalog))),
        net_(std::make_unique<NetworkModel>(std::move(net))),
        policies_(std::make_unique<PolicyCatalog>(catalog_.get())) {}

  Catalog& catalog() { return *catalog_; }
  const Catalog& catalog() const { return *catalog_; }
  PolicyCatalog& policies() { return *policies_; }
  TableStore& store() { return store_; }
  const NetworkModel& net() const { return *net_; }
  /// Mutable access for fault injection (NetworkModel::SetLinkFault /
  /// ApplyLossyProfile): configure faults between queries, never while
  /// one runs.
  NetworkModel& mutable_net() { return *net_; }

  /// Registers a dataflow policy (offline step of Fig. 2).
  Status AddPolicy(const std::string& location, const std::string& text) {
    return policies_->AddPolicyText(location, text);
  }

  /// Selects the policy-index layout (the `--policy-index` knob). Flat is
  /// the reference; hierarchical buckets policies by predicate signature
  /// and merges subsumed ones, with identical decisions. Only legal before
  /// any policy is installed.
  Status set_policy_index_mode(PolicyIndexMode mode) {
    return policies_->set_index_mode(mode);
  }

  /// Default optimizer configuration applied by the no-options overloads of
  /// Optimize()/Run(). Mutate to configure the engine once, e.g.
  /// `engine.default_options().threads = 8;`.
  OptimizerOptions& default_options() { return default_options_; }
  const OptimizerOptions& default_options() const { return default_options_; }

  /// Fan-out width for policy evaluation during optimization (the
  /// `--threads` knob of the bench harness). 1 = sequential, 0 = one per
  /// hardware thread. Results are identical at every setting.
  void set_threads(int threads) { default_options_.threads = threads; }

  /// Toggles the process-wide implication-result cache for this engine's
  /// optimizations.
  void set_implication_cache_enabled(bool enabled) {
    default_options_.implication_cache = enabled;
  }

  /// Default executor configuration applied by Run(). Mutate to select the
  /// runtime once, e.g. `engine.default_exec_options().mode =
  /// ExecMode::kFragment;`.
  ExecutorOptions& default_exec_options() { return default_exec_options_; }
  const ExecutorOptions& default_exec_options() const {
    return default_exec_options_;
  }

  /// Selects the execution backend for Run() (see ExecMode). Results are
  /// identical for both backends.
  void set_exec_mode(ExecMode mode) { default_exec_options_.mode = mode; }

  /// Recovery knobs applied by Run(): send/recv timeouts, bounded retries
  /// with exponential backoff, and the deterministic fault seed.
  void set_retry_policy(const RetryPolicy& retry) {
    default_exec_options_.retry = retry;
  }

  /// Connects this engine to a deployed cluster of location servers and
  /// routes ExecMode::kDistributed runs to it. The endpoint map
  /// (location -> server address) is handshake-verified against each
  /// server's hosted set.
  Status ConnectCluster(
      const std::map<LocationId, net::Endpoint>& endpoints) {
    CGQ_RETURN_NOT_OK(cluster_.Connect(endpoints));
    default_exec_options_.cluster = &cluster_;
    return Status::OK();
  }

  /// Pushes the engine's local store, sliced per location, to the
  /// connected servers (the deployment step before distributed runs).
  Status DeployStore() { return cluster_.Deploy(store_); }

  /// Switches the store to disk-backed StorageMode::kDisk under `dir`
  /// (recovering whatever a previous engine persisted there, then
  /// migrating current RAM fragments). See TableStore::EnableDiskStorage.
  Status EnableDiskStorage(const std::string& dir,
                           storage::StorageOptions options = {}) {
    return store_.EnableDiskStorage(dir, options);
  }

  /// Reads every fragment back into RAM and returns to memory mode; the
  /// on-disk state is checkpointed and left intact.
  Status DisableDiskStorage() { return store_.DisableDiskStorage(); }

  net::ClusterClient& cluster() { return cluster_; }
  const net::ClusterClient& cluster() const { return cluster_; }

  /// Enables per-query tracing: each Run() records a TraceSession whose
  /// spans cover parse, policy evaluation, annotation (AR1-AR4), site
  /// selection, the compliance check, per-fragment execution and every
  /// ship edge. Retrieve via last_trace()/DumpTrace(). Requires a build
  /// with CGQ_TRACING=ON (the default); a no-op otherwise.
  void set_tracing(bool enabled) { tracing_ = enabled; }
  bool tracing() const { return tracing_; }

  /// Timestamp mode for recorded traces. The default, kDeterministic,
  /// renumbers spans with virtual ticks at dump time so the serialized
  /// trace is byte-identical across runs with the same seed and thread
  /// count; kWall records microseconds.
  void set_trace_clock(TraceClock clock) { trace_clock_ = clock; }

  /// The trace of the most recent traced Run(); nullptr before the first
  /// one (or when tracing is off).
  const TraceSession* last_trace() const { return last_trace_.get(); }

  /// Serializes the last trace as Chrome trace_event JSON (load in
  /// chrome://tracing or https://ui.perfetto.dev). Empty event list when
  /// no traced query has run.
  std::string DumpTrace() const;
  Status DumpTraceToFile(const std::string& path) const;

  /// Installs a compliant plan cache (non-owning; see
  /// service/plan_cache.h) consulted by Run() before the optimizer. On a
  /// hit the engine re-runs the Definition-1 checker against the live
  /// policy catalog before executing (belt-and-braces); on a compliant
  /// miss the optimized plan is inserted. nullptr (the default) disables
  /// caching.
  void set_plan_cache(PlanCache* cache) { plan_cache_ = cache; }
  PlanCache* plan_cache() const { return plan_cache_; }

  /// Optimizes under the compliance-based optimizer. Fails with
  /// kNonCompliant when no compliant plan exists.
  Result<OptimizedQuery> Optimize(const std::string& sql) const {
    return Optimize(sql, default_options_);
  }
  Result<OptimizedQuery> Optimize(const std::string& sql,
                                  OptimizerOptions options) const {
    QueryOptimizer optimizer(catalog_.get(), policies_.get(), net_.get(),
                             options);
    return optimizer.Optimize(sql);
  }

  /// Optimize + execute. The compliant path of Fig. 2: reject or run.
  Result<QueryResult> Run(const std::string& sql) const {
    return Run(sql, default_options_);
  }
  Result<QueryResult> Run(const std::string& sql,
                          OptimizerOptions options) const {
    return Run(sql, options, default_exec_options_);
  }
  Result<QueryResult> Run(const std::string& sql, OptimizerOptions options,
                          ExecutorOptions exec_options) const;

 private:
  /// Optimize() fronted by the installed plan cache (or a plain
  /// Optimize() when none is installed). Implements the hit protocol:
  /// lookup → compliance re-check → serve, or optimize → insert.
  Result<OptimizedQuery> OptimizeMaybeCached(const std::string& sql,
                                             const OptimizerOptions& options)
      const;

  OptimizerOptions default_options_;
  ExecutorOptions default_exec_options_;
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<NetworkModel> net_;
  std::unique_ptr<PolicyCatalog> policies_;
  TableStore store_;
  net::ClusterClient cluster_;
  PlanCache* plan_cache_ = nullptr;
  bool tracing_ = false;
  TraceClock trace_clock_ = TraceClock::kDeterministic;
  /// Owned by the engine so shells/benches can dump after Run returns;
  /// mutable because tracing is observability, not query semantics.
  mutable std::unique_ptr<TraceSession> last_trace_;
};

}  // namespace cgq

#endif  // CGQ_CORE_ENGINE_H_
