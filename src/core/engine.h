#ifndef CGQ_CORE_ENGINE_H_
#define CGQ_CORE_ENGINE_H_

#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "core/optimizer.h"
#include "core/policy.h"
#include "exec/executor.h"
#include "exec/table_store.h"
#include "net/network_model.h"

namespace cgq {

/// The compliance-based query processor of Fig. 2: policy catalog +
/// compliance-based optimizer (plan annotator, policy evaluator, site
/// selector) + query executor over the geo-distributed table store.
///
/// Typical use:
///
///   Engine engine(std::move(catalog), NetworkModel::DefaultGeo(5));
///   engine.AddPolicy("europe", "ship name from customer to asia");
///   engine.LoadTable(...);                    // or via tpch::GenerateData
///   auto result = engine.Run("SELECT ...");   // rejected if non-compliant
///
/// Non-compliant queries are rejected with StatusCode::kNonCompliant
/// *before* any data moves.
class Engine {
 public:
  Engine(Catalog catalog, NetworkModel net)
      : catalog_(std::make_unique<Catalog>(std::move(catalog))),
        net_(std::make_unique<NetworkModel>(std::move(net))),
        policies_(std::make_unique<PolicyCatalog>(catalog_.get())) {}

  Catalog& catalog() { return *catalog_; }
  const Catalog& catalog() const { return *catalog_; }
  PolicyCatalog& policies() { return *policies_; }
  TableStore& store() { return store_; }
  const NetworkModel& net() const { return *net_; }

  /// Registers a dataflow policy (offline step of Fig. 2).
  Status AddPolicy(const std::string& location, const std::string& text) {
    return policies_->AddPolicyText(location, text);
  }

  /// Optimizes under the compliance-based optimizer. Fails with
  /// kNonCompliant when no compliant plan exists.
  Result<OptimizedQuery> Optimize(const std::string& sql,
                                  OptimizerOptions options = {}) const {
    QueryOptimizer optimizer(catalog_.get(), policies_.get(), net_.get(),
                             options);
    return optimizer.Optimize(sql);
  }

  /// Optimize + execute. The compliant path of Fig. 2: reject or run.
  Result<QueryResult> Run(const std::string& sql,
                          OptimizerOptions options = {}) const {
    CGQ_ASSIGN_OR_RETURN(OptimizedQuery q, Optimize(sql, options));
    Executor executor(&store_, net_.get());
    return executor.Execute(q);
  }

 private:
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<NetworkModel> net_;
  std::unique_ptr<PolicyCatalog> policies_;
  TableStore store_;
};

}  // namespace cgq

#endif  // CGQ_CORE_ENGINE_H_
