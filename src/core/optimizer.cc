#include "core/optimizer.h"

#include <chrono>

#include "common/trace.h"
#include "core/plan_annotator.h"
#include "core/site_selector.h"
#include "optimizer/cardinality.h"
#include "optimizer/memo.h"
#include "plan/planner_context.h"
#include "plan/query_planner.h"
#include "sql/parser.h"

namespace cgq {

namespace {

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

Result<OptimizedQuery> QueryOptimizer::Optimize(const std::string& sql) const {
  TraceSpan parse_span("parse");
  Result<QueryAst> ast = ParseQuery(sql);
  parse_span.End();
  CGQ_RETURN_NOT_OK(ast.status());
  return OptimizeAst(*ast);
}

Result<OptimizedQuery> QueryOptimizer::OptimizeAst(const QueryAst& ast) const {
  OptimizedQuery out;
  auto t_total = std::chrono::steady_clock::now();
  TraceSpan optimize_span("optimize");

  // 1. Bind + normalize.
  auto t0 = std::chrono::steady_clock::now();
  TraceSpan bind_span("bind");
  PlannerContext ctx(catalog_);
  CGQ_ASSIGN_OR_RETURN(LogicalPlan logical, PlanQueryAst(ast, &ctx));
  bind_span.End();
  out.stats.prepare_ms = ElapsedMs(t0);

  // 2. Memo exploration (transformation rules to fixpoint).
  t0 = std::chrono::steady_clock::now();
  TraceSpan explore_span("explore");
  CardinalityEstimator estimator(&ctx);
  Memo memo(&ctx, &estimator);
  int root_group = memo.InsertTree(*logical.root);
  memo.Explore(options_.enable_agg_pushdown);
  explore_span.AddArg("memo_groups",
                      static_cast<int64_t>(memo.num_groups()));
  explore_span.AddArg("memo_exprs", static_cast<int64_t>(memo.num_exprs()));
  explore_span.End();
  out.stats.explore_ms = ElapsedMs(t0);
  out.stats.memo_groups = memo.num_groups();
  out.stats.memo_exprs = memo.num_exprs();

  // 3. Phase 1: plan annotator.
  t0 = std::chrono::steady_clock::now();
  TraceSpan annotate_span("annotate");
  PolicyEvaluator evaluator(catalog_, policies_);
  if (!options_.implication_cache) evaluator.set_implication_cache(nullptr);
  int width = options_.threads == 0
                  ? static_cast<int>(ThreadPool::Shared()->num_threads())
                  : options_.threads;
  if (width > 1) {
    evaluator.set_parallelism(ThreadPool::Shared(), width);
  }
  PlanAnnotator annotator(&memo, &evaluator,
                          options_.compliant ? PlanAnnotator::Mode::kCompliant
                                             : PlanAnnotator::Mode::kCostOnly);
  annotator.set_prefer_sort_merge(options_.prefer_sort_merge_join);
  if (width > 1) annotator.set_parallelism(ThreadPool::Shared(), width);
  CGQ_ASSIGN_OR_RETURN(
      PlanNodePtr annotated,
      annotator.BestPlan(root_group, options_.compliant
                                         ? options_.required_result
                                         : LocationSet()));
  annotate_span.End();
  out.stats.annotate_ms = ElapsedMs(t0);
  out.phase1_cost = annotated->local_cost;

  // 4. Phase 2: site selection + SHIP insertion.
  t0 = std::chrono::steady_clock::now();
  SiteSelector selector(net_, options_.response_time_objective
                                  ? SiteSelector::Objective::kResponseTime
                                  : SiteSelector::Objective::kTotalCost);
  LocationSet result_sites = options_.required_result;
  CGQ_ASSIGN_OR_RETURN(SitedPlan sited,
                       selector.Place(annotated, result_sites));
  out.stats.site_ms = ElapsedMs(t0);
  out.plan = sited.root;
  out.comm_cost_ms = sited.comm_cost_ms;
  out.result_location = sited.result_location;

  // 5. Independent compliance verdict (Definition 1).
  TraceSpan compliance_span("compliance_check");
  ComplianceReport report =
      CheckCompliance(*out.plan, evaluator, catalog_->locations());
  out.compliant = report.compliant;
  out.violations = std::move(report.violations);
  compliance_span.AddArg("compliant", static_cast<int64_t>(out.compliant));
  compliance_span.AddArg("violations",
                         static_cast<int64_t>(out.violations.size()));
  compliance_span.End();

  out.order_by = logical.order_by;
  out.limit = logical.limit;
  out.stats.policy = evaluator.stats();
  out.stats.total_ms = ElapsedMs(t_total);
  optimize_span.End();
  CGQ_COUNTER_ADD("optimizer.queries", 1);
  CGQ_COUNTER_ADD("optimizer.implication_tests",
                  out.stats.policy.implication_tests);
  CGQ_COUNTER_ADD("optimizer.implication_cache_hits",
                  out.stats.policy.implication_cache_hits);
  return out;
}

}  // namespace cgq
