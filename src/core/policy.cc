#include "core/policy.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/str_util.h"
#include "plan/binder.h"
#include "plan/planner_context.h"
#include "sql/parser.h"

namespace cgq {

namespace {

// Every element of `sub` appears in `super` (attribute lists are short and
// lower-cased, so linear find beats any set machinery).
bool StringsSubset(const std::vector<std::string>& sub,
                   const std::vector<std::string>& super) {
  for (const std::string& s : sub) {
    if (std::find(super.begin(), super.end(), s) == super.end()) return false;
  }
  return true;
}

bool AggFnsSubset(const std::vector<AggFn>& sub,
                  const std::vector<AggFn>& super) {
  for (AggFn f : sub) {
    if (std::find(super.begin(), super.end(), f) == super.end()) return false;
  }
  return true;
}

// Bit mask of every column ref in the subtree. `*ok` is cleared when a ref
// cannot be mapped to a schema bit (unknown column, index >= 64).
uint64_t SubtreeColumnMask(const Expr& e, const Schema& schema, bool* ok) {
  if (e.op() == ExprOp::kColumnRef) {
    std::optional<size_t> i = schema.IndexOf(e.column());
    if (!i || *i >= 64) {
      *ok = false;
      return 0;
    }
    return uint64_t{1} << *i;
  }
  uint64_t mask = 0;
  for (const ExprPtr& c : e.children()) {
    mask |= SubtreeColumnMask(*c, schema, ok);
  }
  return mask;
}

void FlattenOr(const Expr& e, std::vector<const Expr*>* branches) {
  if (e.op() == ExprOp::kOr) {
    FlattenOr(*e.child(0), branches);
    FlattenOr(*e.child(1), branches);
    return;
  }
  branches->push_back(&e);
}

// Columns the premise must mention for this conclusion conjunct to be
// implied (absent a contradictory premise): a non-OR atom is only implied
// through constraints or structural matches on its own columns; an OR atom
// is implied when any one branch is, so only the columns common to every
// branch are truly required.
uint64_t ConjunctRequiredMask(const Expr& c, const Schema& schema, bool* ok) {
  if (c.op() != ExprOp::kOr) return SubtreeColumnMask(c, schema, ok);
  std::vector<const Expr*> branches;
  FlattenOr(c, &branches);
  uint64_t required = ~uint64_t{0};
  for (const Expr* b : branches) {
    required &= SubtreeColumnMask(*b, schema, ok);
  }
  return required;
}

// Fills predicate_fp and all column bitmasks of `expr`.
void ComputeDerived(const Catalog& catalog, PolicyExpression* expr) {
  expr->predicate_fp = FingerprintConjuncts(expr->predicate);
  expr->ship_mask = 0;
  expr->group_mask = 0;
  expr->masks_valid = false;
  expr->pred_mask = 0;
  expr->pred_mask_valid = false;
  auto def = catalog.GetTable(expr->table);
  if (!def.ok()) return;
  const Schema& schema = (*def)->schema;
  bool ok = true;
  auto to_mask = [&](const std::vector<std::string>& cols, uint64_t* mask) {
    for (const std::string& c : cols) {
      std::optional<size_t> i = schema.IndexOf(c);
      if (!i || *i >= 64) {
        ok = false;
        return;
      }
      *mask |= uint64_t{1} << *i;
    }
  };
  to_mask(expr->attributes, &expr->ship_mask);
  to_mask(expr->group_by, &expr->group_mask);
  expr->masks_valid = ok;

  bool pred_ok = true;
  uint64_t pred_mask = 0;
  for (const ExprPtr& c : expr->predicate) {
    pred_mask |= ConjunctRequiredMask(*c, schema, &pred_ok);
  }
  expr->pred_mask = pred_ok ? pred_mask : 0;
  expr->pred_mask_valid = pred_ok;
}

}  // namespace

bool PolicyExpression::HasShipAttribute(const std::string& column) const {
  return std::find(attributes.begin(), attributes.end(), column) !=
         attributes.end();
}

bool PolicyExpression::HasGroupAttribute(const std::string& column) const {
  return std::find(group_by.begin(), group_by.end(), column) !=
         group_by.end();
}

bool PolicyExpression::AllowsAggFn(AggFn fn) const {
  return std::find(agg_fns.begin(), agg_fns.end(), fn) != agg_fns.end();
}

std::string PolicyExpression::ToString(
    const LocationCatalog& locations) const {
  std::string out = "ship " + Join(attributes, ", ");
  if (is_aggregate()) {
    out += " as aggregates ";
    for (size_t i = 0; i < agg_fns.size(); ++i) {
      if (i > 0) out += ", ";
      out += ToLower(AggFnToString(agg_fns[i]));
    }
  }
  out += " from " + table + " to ";
  if (to == locations.All()) {
    out += "*";
  } else {
    std::vector<std::string> names;
    for (LocationId l : to.ToVector()) names.push_back(locations.GetName(l));
    out += Join(names, ", ");
  }
  if (!predicate.empty()) {
    out += " where ";
    for (size_t i = 0; i < predicate.size(); ++i) {
      if (i > 0) out += " and ";
      out += predicate[i]->ToString();
    }
  }
  if (!group_by.empty()) {
    out += " group by " + Join(group_by, ", ");
  }
  return out;
}

Result<PolicyIndexMode> ParsePolicyIndexMode(const std::string& name) {
  std::string n = ToLower(name);
  if (n == "flat") return PolicyIndexMode::kFlat;
  if (n == "hier" || n == "hierarchical") return PolicyIndexMode::kHierarchical;
  return Status::InvalidArgument("unknown policy index mode '" + name +
                                 "' (expected flat|hier)");
}

bool PolicySubsumes(const PolicyExpression& super, const PolicyExpression& sub,
                    SubsumptionMode mode) {
  if (super.table != sub.table) return false;
  if (!sub.to.IsSubsetOf(super.to)) return false;

  if (mode == SubsumptionMode::kSemantic) {
    if (super.is_aggregate() || sub.is_aggregate()) return false;
    if (!StringsSubset(sub.attributes, super.attributes)) return false;
    // sub's rows must all satisfy super's condition: P_sub ⟹ P_super.
    return PredicateImplies(sub.predicate, super.predicate);
  }

  // kDecisionSafe. The algorithmic implication test is not transitive, so
  // the predicates may only differ in ways every premise agrees on: equal
  // fingerprints (the implication cache key — identical results for any
  // premise) or an empty superseding predicate (implied by everything).
  if (!(sub.predicate_fp == super.predicate_fp) && !super.predicate.empty()) {
    return false;
  }
  if (!super.is_aggregate()) {
    // A basic expression grants its ship attributes at every aggregation
    // level, so it covers a basic sub (attrs ⊆) and an aggregate sub
    // (ship and group attrs both ⊆ its ship attrs, any aggregate fn).
    return StringsSubset(sub.attributes, super.attributes) &&
           StringsSubset(sub.group_by, super.attributes);
  }
  // An aggregate super only grants on aggregate queries — it can never
  // cover a basic sub.
  if (!sub.is_aggregate()) return false;
  return StringsSubset(sub.attributes, super.attributes) &&
         StringsSubset(sub.group_by, super.group_by) &&
         AggFnsSubset(sub.agg_fns, super.agg_fns);
}

Status PolicyCatalog::set_index_mode(PolicyIndexMode mode) {
  if (TotalCount() != 0) {
    return Status::InvalidArgument(
        "policy index mode can only change while the catalog is empty");
  }
  mode_ = mode;
  return Status::OK();
}

Status PolicyCatalog::AddPolicyText(const std::string& location_name,
                                    const std::string& text) {
  CGQ_ASSIGN_OR_RETURN(LocationId location,
                       catalog_->locations().GetId(location_name));
  CGQ_ASSIGN_OR_RETURN(PolicyExprAst ast, ParsePolicyExpression(text));

  CGQ_ASSIGN_OR_RETURN(const TableDef* table, catalog_->GetTable(ast.table));

  PolicyExpression expr;
  expr.table = table->name;

  if (ast.ship_all) {
    for (const ColumnDef& col : table->schema.columns()) {
      expr.attributes.push_back(ToLower(col.name));
    }
  } else {
    for (const std::string& attr : ast.attributes) {
      if (!table->schema.IndexOf(attr)) {
        return Status::InvalidArgument("policy references unknown column '" +
                                       attr + "' of table '" + expr.table +
                                       "'");
      }
      expr.attributes.push_back(attr);
    }
  }

  expr.agg_fns = ast.agg_fns;
  if (!ast.group_by.empty() && ast.agg_fns.empty()) {
    return Status::InvalidArgument(
        "GROUP BY requires an AS AGGREGATES clause");
  }
  for (const std::string& g : ast.group_by) {
    if (!table->schema.IndexOf(g)) {
      return Status::InvalidArgument("policy GROUP BY references unknown "
                                     "column '" + g + "'");
    }
    expr.group_by.push_back(g);
  }

  if (ast.to_all) {
    expr.to = catalog_->locations().All();
  } else {
    for (const std::string& name : ast.to_locations) {
      CGQ_ASSIGN_OR_RETURN(LocationId l, catalog_->locations().GetId(name));
      expr.to.Add(l);
    }
  }

  if (ast.where != nullptr) {
    PlannerContext ctx(catalog_);
    CGQ_RETURN_NOT_OK(ctx.AddInstance(ast.alias, ast.table).status());
    CGQ_ASSIGN_OR_RETURN(ExprPtr bound, BindExpr(ast.where, ctx));
    expr.predicate = SplitConjuncts(bound);
  }

  return AddPolicy(location, std::move(expr));
}

void PolicyCatalog::EnsureLocation(LocationId location) {
  if (by_location_.size() <= location) by_location_.resize(location + 1);
  if (table_index_.size() <= location) table_index_.resize(location + 1);
  if (bucket_index_.size() <= location) bucket_index_.resize(location + 1);
  if (absorbed_.size() <= location) absorbed_.resize(location + 1);
}

Status PolicyCatalog::AddPolicy(LocationId location, PolicyExpression expr) {
  if (location >= catalog_->locations().num_locations()) {
    return Status::InvalidArgument("unknown location id " +
                                   std::to_string(location));
  }
  EnsureLocation(location);
  ComputeDerived(*catalog_, &expr);
  expr.id = next_id_++;

  if (mode_ == PolicyIndexMode::kHierarchical) {
    int64_t absorber = FindAbsorber(location, expr);
    if (absorber >= 0) {
      absorbed_[location].push_back({std::move(expr), absorber});
    } else {
      InstallActive(location, std::move(expr));
    }
  } else {
    table_index_[location][expr.table].push_back(
        by_location_[location].size());
    by_location_[location].push_back(std::move(expr));
  }
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

int64_t PolicyCatalog::FindAbsorber(LocationId location,
                                    const PolicyExpression& expr) const {
  auto it = bucket_index_[location].find(expr.table);
  if (it == bucket_index_[location].end()) return -1;
  const TableBuckets& tb = it->second;
  const std::vector<PolicyExpression>& exprs = by_location_[location];
  const uint64_t needed = expr.ship_mask | expr.group_mask;

  // An absorber's attribute sets are supersets of ours, so its signature
  // covers `needed` — skip buckets that cannot (unless our own masks are
  // unreliable, in which case every bucket stays in play).
  for (const Bucket& b : tb.buckets) {
    if (expr.masks_valid && (needed & ~b.signature) != 0) continue;
    for (size_t idx : b.entries) {
      if (PolicySubsumes(exprs[idx], expr, SubsumptionMode::kDecisionSafe)) {
        return exprs[idx].id;
      }
    }
  }
  for (size_t idx : tb.unmaskable) {
    if (PolicySubsumes(exprs[idx], expr, SubsumptionMode::kDecisionSafe)) {
      return exprs[idx].id;
    }
  }
  return -1;
}

void PolicyCatalog::InstallActive(LocationId location, PolicyExpression expr) {
  std::vector<PolicyExpression>& exprs = by_location_[location];

  // The broader incoming expression may subsume existing actives — move
  // them to the absorbed store (they keep their ids and resurrect if this
  // expression is ever removed). Victims' signatures are subsets of ours.
  std::vector<size_t> victims;
  if (auto it = bucket_index_[location].find(expr.table);
      it != bucket_index_[location].end()) {
    const uint64_t sig = expr.ship_mask | expr.group_mask;
    for (const Bucket& b : it->second.buckets) {
      if (expr.masks_valid && (b.signature & ~sig) != 0) continue;
      for (size_t idx : b.entries) {
        if (PolicySubsumes(expr, exprs[idx], SubsumptionMode::kDecisionSafe)) {
          victims.push_back(idx);
        }
      }
    }
    for (size_t idx : it->second.unmaskable) {
      if (PolicySubsumes(expr, exprs[idx], SubsumptionMode::kDecisionSafe)) {
        victims.push_back(idx);
      }
    }
  }
  if (!victims.empty()) {
    std::sort(victims.begin(), victims.end());
    for (size_t idx : victims) {
      absorbed_[location].push_back({std::move(exprs[idx]), expr.id});
    }
    for (size_t i = victims.size(); i > 0; --i) {
      exprs.erase(exprs.begin() + static_cast<ptrdiff_t>(victims[i - 1]));
    }
  }

  exprs.push_back(std::move(expr));
  if (victims.empty()) {
    // Fast path: only the tail changed.
    size_t index = exprs.size() - 1;
    table_index_[location][exprs[index].table].push_back(index);
    IndexActive(location, index);
  } else {
    RebuildIndexes(location);
  }
}

void PolicyCatalog::Reinstall(LocationId location, PolicyExpression expr) {
  int64_t absorber = FindAbsorber(location, expr);
  if (absorber >= 0) {
    absorbed_[location].push_back({std::move(expr), absorber});
  } else {
    InstallActive(location, std::move(expr));
  }
}

Status PolicyCatalog::RemovePolicy(int64_t id) {
  for (LocationId loc = 0; loc < by_location_.size(); ++loc) {
    std::vector<PolicyExpression>& exprs = by_location_[loc];
    for (size_t i = 0; i < exprs.size(); ++i) {
      if (exprs[i].id != id) continue;
      exprs.erase(exprs.begin() + static_cast<ptrdiff_t>(i));
      // Stored indices after `i` all shifted down by one.
      RebuildIndexes(loc);
      // Un-merge: donors the removed expression had absorbed come back —
      // each either re-absorbs under another active or turns active again.
      std::vector<PolicyExpression> donors;
      if (loc < absorbed_.size()) {
        auto& abs = absorbed_[loc];
        for (auto it = abs.begin(); it != abs.end();) {
          if (it->absorbed_by == id) {
            donors.push_back(std::move(it->expr));
            it = abs.erase(it);
          } else {
            ++it;
          }
        }
      }
      for (PolicyExpression& d : donors) Reinstall(loc, std::move(d));
      epoch_.fetch_add(1, std::memory_order_acq_rel);
      return Status::OK();
    }
  }
  // Not active — possibly an absorbed expression (hierarchical mode).
  for (LocationId loc = 0; loc < absorbed_.size(); ++loc) {
    auto& abs = absorbed_[loc];
    for (size_t i = 0; i < abs.size(); ++i) {
      if (abs[i].expr.id != id) continue;
      abs.erase(abs.begin() + static_cast<ptrdiff_t>(i));
      // Donors chained under the removed entry (it absorbed them back when
      // it was active) re-parent to a live absorber or turn active.
      std::vector<PolicyExpression> donors;
      for (auto it = abs.begin(); it != abs.end();) {
        if (it->absorbed_by == id) {
          donors.push_back(std::move(it->expr));
          it = abs.erase(it);
        } else {
          ++it;
        }
      }
      for (PolicyExpression& d : donors) Reinstall(loc, std::move(d));
      epoch_.fetch_add(1, std::memory_order_acq_rel);
      return Status::OK();
    }
  }
  return Status::NotFound("no policy with id " + std::to_string(id));
}

void PolicyCatalog::IndexActive(LocationId location, size_t index) {
  const PolicyExpression& e = by_location_[location][index];
  TableBuckets& tb = bucket_index_[location][e.table];
  if (!e.masks_valid) {
    tb.unmaskable.push_back(index);
    return;
  }
  const uint64_t sig = e.ship_mask | e.group_mask;
  const uint64_t pred = e.pred_mask_valid ? e.pred_mask : 0;
  for (Bucket& b : tb.buckets) {
    if (b.signature == sig && b.pred_mask == pred &&
        b.pred_valid == e.pred_mask_valid) {
      b.entries.push_back(index);
      return;
    }
  }
  tb.buckets.push_back(Bucket{sig, pred, e.pred_mask_valid, {index}});
}

void PolicyCatalog::RebuildIndexes(LocationId location) {
  auto& index = table_index_[location];
  index.clear();
  bucket_index_[location].clear();
  const std::vector<PolicyExpression>& exprs = by_location_[location];
  for (size_t i = 0; i < exprs.size(); ++i) {
    index[exprs[i].table].push_back(i);
    if (mode_ == PolicyIndexMode::kHierarchical) IndexActive(location, i);
  }
}

uint64_t PolicyCatalog::TablePolicyFingerprint(
    LocationId location, const std::string& table) const {
  // FNV-1a over the content of every expression governing (location,
  // table), in index order. Seeded with the pair itself so distinct
  // empty dependency sets still hash apart.
  uint64_t h = 14695981039346656037ULL;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  auto mix_str = [&h](const std::string& s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ULL;
    }
    h ^= 0xff;  // terminator, so {"ab","c"} != {"a","bc"}
    h *= 1099511628211ULL;
  };
  mix(location);
  mix_str(table);
  for (size_t idx : ForTable(location, table)) {
    const PolicyExpression& e = by_location_[location][idx];
    mix(e.predicate_fp.hi);
    mix(e.predicate_fp.lo);
    mix(e.to.bits());
    mix(static_cast<uint64_t>(e.attributes.size()));
    for (const std::string& a : e.attributes) mix_str(a);
    mix(static_cast<uint64_t>(e.agg_fns.size()));
    for (AggFn fn : e.agg_fns) mix(static_cast<uint64_t>(fn));
    mix(static_cast<uint64_t>(e.group_by.size()));
    for (const std::string& g : e.group_by) mix_str(g);
  }
  if (h == 0) h = 1;  // reserve 0 for "not computed"
  return h;
}

const std::vector<PolicyExpression>& PolicyCatalog::For(
    LocationId location) const {
  static const std::vector<PolicyExpression> kEmpty;
  if (location >= by_location_.size()) return kEmpty;
  return by_location_[location];
}

const std::vector<size_t>& PolicyCatalog::ForTable(
    LocationId location, const std::string& table) const {
  static const std::vector<size_t> kEmpty;
  if (location >= table_index_.size()) return kEmpty;
  auto it = table_index_[location].find(table);
  return it != table_index_[location].end() ? it->second : kEmpty;
}

const std::vector<PolicyCatalog::AbsorbedPolicy>& PolicyCatalog::Absorbed(
    LocationId location) const {
  static const std::vector<AbsorbedPolicy> kEmpty;
  if (location >= absorbed_.size()) return kEmpty;
  return absorbed_[location];
}

void PolicyCatalog::AppendCandidates(LocationId location,
                                     const std::string& table,
                                     uint64_t query_mask, bool mask_exact,
                                     uint64_t premise_cap,
                                     bool premise_capped,
                                     std::vector<size_t>* out,
                                     size_t* prefiltered) const {
  if (mode_ == PolicyIndexMode::kFlat) {
    const std::vector<size_t>& in_table = ForTable(location, table);
    out->insert(out->end(), in_table.begin(), in_table.end());
    return;
  }
  if (location >= bucket_index_.size()) return;
  auto it = bucket_index_[location].find(table);
  if (it == bucket_index_[location].end()) return;
  const TableBuckets& tb = it->second;
  for (const Bucket& b : tb.buckets) {
    if (mask_exact && (b.signature & query_mask) == 0) continue;
    if (b.pred_valid && premise_capped && (b.pred_mask & ~premise_cap) != 0) {
      // The shared predicate needs a column some (non-contradictory)
      // instance premise never constrains: P_q ⟹ P_e fails for every
      // entry, none can grant anything.
      if (prefiltered != nullptr) *prefiltered += b.entries.size();
      continue;
    }
    out->insert(out->end(), b.entries.begin(), b.entries.end());
  }
  out->insert(out->end(), tb.unmaskable.begin(), tb.unmaskable.end());
}

bool PolicyCatalog::ForEachBucket(
    LocationId location, const std::string& table, uint64_t query_mask,
    bool mask_exact, uint64_t premise_cap, bool premise_capped,
    const std::function<void(size_t, const std::vector<size_t>&)>& fn,
    std::vector<size_t>* unmaskable, size_t* prefiltered) const {
  if (mode_ != PolicyIndexMode::kHierarchical) return false;
  if (location >= bucket_index_.size()) return true;
  auto it = bucket_index_[location].find(table);
  if (it == bucket_index_[location].end()) return true;
  const TableBuckets& tb = it->second;
  for (size_t bi = 0; bi < tb.buckets.size(); ++bi) {
    const Bucket& b = tb.buckets[bi];
    if (mask_exact && (b.signature & query_mask) == 0) continue;
    if (b.pred_valid && premise_capped && (b.pred_mask & ~premise_cap) != 0) {
      if (prefiltered != nullptr) *prefiltered += b.entries.size();
      continue;
    }
    fn(bi, b.entries);
  }
  unmaskable->insert(unmaskable->end(), tb.unmaskable.begin(),
                     tb.unmaskable.end());
  return true;
}

std::shared_ptr<const std::vector<uint32_t>> PolicyCatalog::FindBucketMemo(
    uint64_t a, uint64_t b) const {
  MemoShard& shard = memo_shards_[a % kMemoShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(MemoKey{a, b});
  if (it == shard.map.end()) return nullptr;
  return it->second;
}

void PolicyCatalog::StoreBucketMemo(
    uint64_t a, uint64_t b,
    std::shared_ptr<const std::vector<uint32_t>> implied) const {
  MemoShard& shard = memo_shards_[a % kMemoShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.map.size() >= kMemoShardCap) shard.map.clear();
  shard.map[MemoKey{a, b}] = std::move(implied);
}

std::optional<LocationSet> PolicyCatalog::FindEvalMemo(uint64_t a,
                                                       uint64_t b) const {
  const EvalShard& shard = eval_shards_[a % kMemoShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(MemoKey{a, b});
  if (it == shard.map.end()) return std::nullopt;
  return it->second;
}

void PolicyCatalog::StoreEvalMemo(uint64_t a, uint64_t b,
                                  LocationSet legal) const {
  EvalShard& shard = eval_shards_[a % kMemoShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.map.size() >= kMemoShardCap) shard.map.clear();
  shard.map[MemoKey{a, b}] = legal;
}

bool PolicyCatalog::HasPoliciesFor(
    LocationId location, const std::vector<std::string>& tables) const {
  for (const std::string& t : tables) {
    if (!ForTable(location, t).empty()) return true;
  }
  return false;
}

size_t PolicyCatalog::ActiveCount() const {
  size_t n = 0;
  for (const auto& v : by_location_) n += v.size();
  return n;
}

size_t PolicyCatalog::TotalCount() const {
  size_t n = ActiveCount();
  for (const auto& v : absorbed_) n += v.size();
  return n;
}

PolicyCatalog::IndexStats PolicyCatalog::Stats() const {
  IndexStats out;
  out.active = ActiveCount();
  for (const auto& v : absorbed_) out.absorbed += v.size();
  for (const auto& per_loc : table_index_) {
    for (const auto& [table, entries] : per_loc) {
      if (!entries.empty()) ++out.tables;
    }
  }
  for (const auto& per_loc : bucket_index_) {
    for (const auto& [table, tb] : per_loc) {
      out.buckets += tb.buckets.size();
      for (const Bucket& b : tb.buckets) {
        out.max_bucket = std::max(out.max_bucket, b.entries.size());
      }
      out.max_bucket = std::max(out.max_bucket, tb.unmaskable.size());
    }
  }
  return out;
}

void PolicyCatalog::ShuffleBucketsForTest(uint64_t seed) {
  uint64_t state = seed * 0x9E3779B97F4A7C15ULL + 0x2545F4914F6CDD1DULL;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  auto shuffle = [&next](auto& v) {
    for (size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[next() % i]);
    }
  };
  for (auto& per_loc : bucket_index_) {
    for (auto& [table, tb] : per_loc) {
      shuffle(tb.buckets);
      for (Bucket& b : tb.buckets) shuffle(b.entries);
      shuffle(tb.unmaskable);
    }
  }
  // Bucket ordinals moved: orphan every memo entry keyed on them.
  epoch_.fetch_add(1, std::memory_order_acq_rel);
}

void PolicyCatalog::Clear() {
  by_location_.clear();
  table_index_.clear();
  bucket_index_.clear();
  absorbed_.clear();
  epoch_.fetch_add(1, std::memory_order_acq_rel);
}

}  // namespace cgq
