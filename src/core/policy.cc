#include "core/policy.h"

#include <algorithm>

#include "common/str_util.h"
#include "plan/binder.h"
#include "plan/planner_context.h"
#include "sql/parser.h"

namespace cgq {

bool PolicyExpression::HasShipAttribute(const std::string& column) const {
  return std::find(attributes.begin(), attributes.end(), column) !=
         attributes.end();
}

bool PolicyExpression::HasGroupAttribute(const std::string& column) const {
  return std::find(group_by.begin(), group_by.end(), column) !=
         group_by.end();
}

bool PolicyExpression::AllowsAggFn(AggFn fn) const {
  return std::find(agg_fns.begin(), agg_fns.end(), fn) != agg_fns.end();
}

std::string PolicyExpression::ToString(
    const LocationCatalog& locations) const {
  std::string out = "ship " + Join(attributes, ", ");
  if (is_aggregate()) {
    out += " as aggregates ";
    for (size_t i = 0; i < agg_fns.size(); ++i) {
      if (i > 0) out += ", ";
      out += ToLower(AggFnToString(agg_fns[i]));
    }
  }
  out += " from " + table + " to ";
  if (to == locations.All()) {
    out += "*";
  } else {
    std::vector<std::string> names;
    for (LocationId l : to.ToVector()) names.push_back(locations.GetName(l));
    out += Join(names, ", ");
  }
  if (!predicate.empty()) {
    out += " where ";
    for (size_t i = 0; i < predicate.size(); ++i) {
      if (i > 0) out += " and ";
      out += predicate[i]->ToString();
    }
  }
  if (!group_by.empty()) {
    out += " group by " + Join(group_by, ", ");
  }
  return out;
}

Status PolicyCatalog::AddPolicyText(const std::string& location_name,
                                    const std::string& text) {
  CGQ_ASSIGN_OR_RETURN(LocationId location,
                       catalog_->locations().GetId(location_name));
  CGQ_ASSIGN_OR_RETURN(PolicyExprAst ast, ParsePolicyExpression(text));

  CGQ_ASSIGN_OR_RETURN(const TableDef* table, catalog_->GetTable(ast.table));

  PolicyExpression expr;
  expr.table = table->name;

  if (ast.ship_all) {
    for (const ColumnDef& col : table->schema.columns()) {
      expr.attributes.push_back(ToLower(col.name));
    }
  } else {
    for (const std::string& attr : ast.attributes) {
      if (!table->schema.IndexOf(attr)) {
        return Status::InvalidArgument("policy references unknown column '" +
                                       attr + "' of table '" + expr.table +
                                       "'");
      }
      expr.attributes.push_back(attr);
    }
  }

  expr.agg_fns = ast.agg_fns;
  if (!ast.group_by.empty() && ast.agg_fns.empty()) {
    return Status::InvalidArgument(
        "GROUP BY requires an AS AGGREGATES clause");
  }
  for (const std::string& g : ast.group_by) {
    if (!table->schema.IndexOf(g)) {
      return Status::InvalidArgument("policy GROUP BY references unknown "
                                     "column '" + g + "'");
    }
    expr.group_by.push_back(g);
  }

  if (ast.to_all) {
    expr.to = catalog_->locations().All();
  } else {
    for (const std::string& name : ast.to_locations) {
      CGQ_ASSIGN_OR_RETURN(LocationId l, catalog_->locations().GetId(name));
      expr.to.Add(l);
    }
  }

  if (ast.where != nullptr) {
    PlannerContext ctx(catalog_);
    CGQ_RETURN_NOT_OK(ctx.AddInstance(ast.alias, ast.table).status());
    CGQ_ASSIGN_OR_RETURN(ExprPtr bound, BindExpr(ast.where, ctx));
    expr.predicate = SplitConjuncts(bound);
  }

  return AddPolicy(location, std::move(expr));
}

Status PolicyCatalog::AddPolicy(LocationId location, PolicyExpression expr) {
  if (location >= catalog_->locations().num_locations()) {
    return Status::InvalidArgument("unknown location id " +
                                   std::to_string(location));
  }
  if (by_location_.size() <= location) by_location_.resize(location + 1);
  if (table_index_.size() <= location) table_index_.resize(location + 1);
  expr.predicate_fp = FingerprintConjuncts(expr.predicate);
  expr.ship_mask = 0;
  expr.group_mask = 0;
  expr.masks_valid = false;
  if (auto def = catalog_->GetTable(expr.table); def.ok()) {
    const Schema& schema = (*def)->schema;
    bool ok = true;
    auto to_mask = [&](const std::vector<std::string>& cols, uint64_t* mask) {
      for (const std::string& c : cols) {
        std::optional<size_t> i = schema.IndexOf(c);
        if (!i || *i >= 64) {
          ok = false;
          return;
        }
        *mask |= uint64_t{1} << *i;
      }
    };
    to_mask(expr.attributes, &expr.ship_mask);
    to_mask(expr.group_by, &expr.group_mask);
    expr.masks_valid = ok;
  }
  table_index_[location][expr.table].push_back(by_location_[location].size());
  by_location_[location].push_back(std::move(expr));
  return Status::OK();
}

const std::vector<PolicyExpression>& PolicyCatalog::For(
    LocationId location) const {
  static const std::vector<PolicyExpression> kEmpty;
  if (location >= by_location_.size()) return kEmpty;
  return by_location_[location];
}

const std::vector<size_t>& PolicyCatalog::ForTable(
    LocationId location, const std::string& table) const {
  static const std::vector<size_t> kEmpty;
  if (location >= table_index_.size()) return kEmpty;
  auto it = table_index_[location].find(table);
  return it != table_index_[location].end() ? it->second : kEmpty;
}

size_t PolicyCatalog::TotalCount() const {
  size_t n = 0;
  for (const auto& v : by_location_) n += v.size();
  return n;
}

void PolicyCatalog::Clear() {
  by_location_.clear();
  table_index_.clear();
}

}  // namespace cgq
