#include "core/policy.h"

#include <algorithm>

#include "common/str_util.h"
#include "plan/binder.h"
#include "plan/planner_context.h"
#include "sql/parser.h"

namespace cgq {

bool PolicyExpression::HasShipAttribute(const std::string& column) const {
  return std::find(attributes.begin(), attributes.end(), column) !=
         attributes.end();
}

bool PolicyExpression::HasGroupAttribute(const std::string& column) const {
  return std::find(group_by.begin(), group_by.end(), column) !=
         group_by.end();
}

bool PolicyExpression::AllowsAggFn(AggFn fn) const {
  return std::find(agg_fns.begin(), agg_fns.end(), fn) != agg_fns.end();
}

std::string PolicyExpression::ToString(
    const LocationCatalog& locations) const {
  std::string out = "ship " + Join(attributes, ", ");
  if (is_aggregate()) {
    out += " as aggregates ";
    for (size_t i = 0; i < agg_fns.size(); ++i) {
      if (i > 0) out += ", ";
      out += ToLower(AggFnToString(agg_fns[i]));
    }
  }
  out += " from " + table + " to ";
  if (to == locations.All()) {
    out += "*";
  } else {
    std::vector<std::string> names;
    for (LocationId l : to.ToVector()) names.push_back(locations.GetName(l));
    out += Join(names, ", ");
  }
  if (!predicate.empty()) {
    out += " where ";
    for (size_t i = 0; i < predicate.size(); ++i) {
      if (i > 0) out += " and ";
      out += predicate[i]->ToString();
    }
  }
  if (!group_by.empty()) {
    out += " group by " + Join(group_by, ", ");
  }
  return out;
}

Status PolicyCatalog::AddPolicyText(const std::string& location_name,
                                    const std::string& text) {
  CGQ_ASSIGN_OR_RETURN(LocationId location,
                       catalog_->locations().GetId(location_name));
  CGQ_ASSIGN_OR_RETURN(PolicyExprAst ast, ParsePolicyExpression(text));

  CGQ_ASSIGN_OR_RETURN(const TableDef* table, catalog_->GetTable(ast.table));

  PolicyExpression expr;
  expr.table = table->name;

  if (ast.ship_all) {
    for (const ColumnDef& col : table->schema.columns()) {
      expr.attributes.push_back(ToLower(col.name));
    }
  } else {
    for (const std::string& attr : ast.attributes) {
      if (!table->schema.IndexOf(attr)) {
        return Status::InvalidArgument("policy references unknown column '" +
                                       attr + "' of table '" + expr.table +
                                       "'");
      }
      expr.attributes.push_back(attr);
    }
  }

  expr.agg_fns = ast.agg_fns;
  if (!ast.group_by.empty() && ast.agg_fns.empty()) {
    return Status::InvalidArgument(
        "GROUP BY requires an AS AGGREGATES clause");
  }
  for (const std::string& g : ast.group_by) {
    if (!table->schema.IndexOf(g)) {
      return Status::InvalidArgument("policy GROUP BY references unknown "
                                     "column '" + g + "'");
    }
    expr.group_by.push_back(g);
  }

  if (ast.to_all) {
    expr.to = catalog_->locations().All();
  } else {
    for (const std::string& name : ast.to_locations) {
      CGQ_ASSIGN_OR_RETURN(LocationId l, catalog_->locations().GetId(name));
      expr.to.Add(l);
    }
  }

  if (ast.where != nullptr) {
    PlannerContext ctx(catalog_);
    CGQ_RETURN_NOT_OK(ctx.AddInstance(ast.alias, ast.table).status());
    CGQ_ASSIGN_OR_RETURN(ExprPtr bound, BindExpr(ast.where, ctx));
    expr.predicate = SplitConjuncts(bound);
  }

  return AddPolicy(location, std::move(expr));
}

Status PolicyCatalog::AddPolicy(LocationId location, PolicyExpression expr) {
  if (location >= catalog_->locations().num_locations()) {
    return Status::InvalidArgument("unknown location id " +
                                   std::to_string(location));
  }
  if (by_location_.size() <= location) by_location_.resize(location + 1);
  if (table_index_.size() <= location) table_index_.resize(location + 1);
  expr.predicate_fp = FingerprintConjuncts(expr.predicate);
  expr.ship_mask = 0;
  expr.group_mask = 0;
  expr.masks_valid = false;
  if (auto def = catalog_->GetTable(expr.table); def.ok()) {
    const Schema& schema = (*def)->schema;
    bool ok = true;
    auto to_mask = [&](const std::vector<std::string>& cols, uint64_t* mask) {
      for (const std::string& c : cols) {
        std::optional<size_t> i = schema.IndexOf(c);
        if (!i || *i >= 64) {
          ok = false;
          return;
        }
        *mask |= uint64_t{1} << *i;
      }
    };
    to_mask(expr.attributes, &expr.ship_mask);
    to_mask(expr.group_by, &expr.group_mask);
    expr.masks_valid = ok;
  }
  table_index_[location][expr.table].push_back(by_location_[location].size());
  expr.id = next_id_++;
  by_location_[location].push_back(std::move(expr));
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

Status PolicyCatalog::RemovePolicy(int64_t id) {
  for (LocationId loc = 0; loc < by_location_.size(); ++loc) {
    std::vector<PolicyExpression>& exprs = by_location_[loc];
    for (size_t i = 0; i < exprs.size(); ++i) {
      if (exprs[i].id != id) continue;
      exprs.erase(exprs.begin() + static_cast<ptrdiff_t>(i));
      // Stored indices after `i` all shifted down by one.
      RebuildTableIndex(loc);
      epoch_.fetch_add(1, std::memory_order_acq_rel);
      return Status::OK();
    }
  }
  return Status::NotFound("no policy with id " + std::to_string(id));
}

void PolicyCatalog::RebuildTableIndex(LocationId location) {
  auto& index = table_index_[location];
  index.clear();
  const std::vector<PolicyExpression>& exprs = by_location_[location];
  for (size_t i = 0; i < exprs.size(); ++i) {
    index[exprs[i].table].push_back(i);
  }
}

uint64_t PolicyCatalog::TablePolicyFingerprint(
    LocationId location, const std::string& table) const {
  // FNV-1a over the content of every expression governing (location,
  // table), in index order. Seeded with the pair itself so distinct
  // empty dependency sets still hash apart.
  uint64_t h = 14695981039346656037ULL;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  auto mix_str = [&h](const std::string& s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ULL;
    }
    h ^= 0xff;  // terminator, so {"ab","c"} != {"a","bc"}
    h *= 1099511628211ULL;
  };
  mix(location);
  mix_str(table);
  for (size_t idx : ForTable(location, table)) {
    const PolicyExpression& e = by_location_[location][idx];
    mix(e.predicate_fp.hi);
    mix(e.predicate_fp.lo);
    mix(e.to.bits());
    mix(static_cast<uint64_t>(e.attributes.size()));
    for (const std::string& a : e.attributes) mix_str(a);
    mix(static_cast<uint64_t>(e.agg_fns.size()));
    for (AggFn fn : e.agg_fns) mix(static_cast<uint64_t>(fn));
    mix(static_cast<uint64_t>(e.group_by.size()));
    for (const std::string& g : e.group_by) mix_str(g);
  }
  if (h == 0) h = 1;  // reserve 0 for "not computed"
  return h;
}

const std::vector<PolicyExpression>& PolicyCatalog::For(
    LocationId location) const {
  static const std::vector<PolicyExpression> kEmpty;
  if (location >= by_location_.size()) return kEmpty;
  return by_location_[location];
}

const std::vector<size_t>& PolicyCatalog::ForTable(
    LocationId location, const std::string& table) const {
  static const std::vector<size_t> kEmpty;
  if (location >= table_index_.size()) return kEmpty;
  auto it = table_index_[location].find(table);
  return it != table_index_[location].end() ? it->second : kEmpty;
}

size_t PolicyCatalog::TotalCount() const {
  size_t n = 0;
  for (const auto& v : by_location_) n += v.size();
  return n;
}

void PolicyCatalog::Clear() {
  by_location_.clear();
  table_index_.clear();
  epoch_.fetch_add(1, std::memory_order_acq_rel);
}

}  // namespace cgq
