#include "core/engine.h"

#include <chrono>
#include <cstdio>
#include <utility>

#include "core/compliance_checker.h"
#include "service/plan_cache.h"
#include "sql/param_normalizer.h"

namespace cgq {

Result<OptimizedQuery> Engine::OptimizeMaybeCached(
    const std::string& sql, const OptimizerOptions& options) const {
  if (plan_cache_ == nullptr) return Optimize(sql, options);

  const auto start = std::chrono::steady_clock::now();
  auto elapsed_ms = [&start]() {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
  // Fingerprint the literal-free skeleton so same-shape queries with
  // different constants share one entry; the extracted constants are
  // rebound into the cached plan's tagged literal slots on a hit.
  const ParameterizedSql param_sql = ParameterizeSql(sql);
  const PlanCache::Key key = PlanCache::ComputeKey(param_sql.skeleton, options);
  {
    TraceSpan span("plan_cache_lookup");
    bool param_hit = false;
    std::optional<OptimizedQuery> cached =
        plan_cache_->Lookup(key, param_sql.params, *policies_, &param_hit);
    if (cached.has_value()) {
      // Belt-and-braces (Theorem 1 only covers the policy set the plan
      // was optimized under): independently re-verify Definition 1
      // against the live catalog before anything executes. Cheap — one
      // bottom-up pass over the located plan, no memo search. This runs
      // on the *bound* plan, so a parameterized hit re-proves compliance
      // for this query's constants, not the insert-time ones.
      PolicyEvaluator evaluator(catalog_.get(), policies_.get());
      if (!options.implication_cache) evaluator.set_implication_cache(nullptr);
      ComplianceReport report =
          CheckCompliance(*cached->plan, evaluator, catalog_->locations());
      plan_cache_->RecordRevalidation();
      span.AddArg("hit", report.compliant ? 1 : 0);
      if (report.compliant) {
        // Phase timings belong to the (skipped) optimizer run; total_ms
        // is what the cached path actually cost.
        cached->stats = OptimizationStats{};
        cached->stats.total_ms = elapsed_ms();
        cached->stats.cache_consulted = true;
        cached->stats.cache_hit = true;
        cached->stats.cache_param_hit = param_hit;
        cached->stats.policy_epoch = policies_->epoch();
        PlanCacheStats cs = plan_cache_->stats();
        cached->stats.cache_entries = cs.entries;
        cached->stats.cache_bytes = cs.bytes;
        return std::move(*cached);
      }
      plan_cache_->Invalidate(key);
    } else {
      span.AddArg("hit", 0);
    }
  }

  CGQ_ASSIGN_OR_RETURN(OptimizedQuery q, Optimize(sql, options));
  // Only compliance-optimized plans are cacheable: the baseline
  // optimizer's output carries no Theorem-1 guarantee.
  if (options.compliant && q.compliant) {
    plan_cache_->Insert(key, q, param_sql.params, *policies_);
  }
  q.stats.cache_consulted = true;
  q.stats.cache_hit = false;
  q.stats.policy_epoch = policies_->epoch();
  PlanCacheStats cs = plan_cache_->stats();
  q.stats.cache_entries = cs.entries;
  q.stats.cache_bytes = cs.bytes;
  return q;
}

Result<QueryResult> Engine::Run(const std::string& sql,
                                OptimizerOptions options,
                                ExecutorOptions exec_options) const {
  if (!tracing_) {
    CGQ_ASSIGN_OR_RETURN(OptimizedQuery q, OptimizeMaybeCached(sql, options));
    Executor executor(&store_, net_.get(), exec_options);
    Result<QueryResult> result = executor.Execute(q);
    CGQ_COUNTER_ADD("engine.queries", 1);
    return result;
  }

  auto session = std::make_unique<TraceSession>(sql, trace_clock_);
  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    ScopedTraceContext ctx(session.get());
    TraceSpan root("query");
    Result<OptimizedQuery> q = OptimizeMaybeCached(sql, options);
    if (!q.ok()) {
      root.AddArg("status", q.status().ToString());
      return q.status();
    }
    Executor executor(&store_, net_.get(), exec_options);
    Result<QueryResult> r = executor.Execute(*q);
    if (r.ok()) root.AddArg("rows", static_cast<int64_t>(r->rows.size()));
    return r;
  }();
  CGQ_COUNTER_ADD("engine.queries", 1);
  if (!result.ok()) CGQ_COUNTER_ADD("engine.rejected", 1);
  last_trace_ = std::move(session);
  return result;
}

std::string Engine::DumpTrace() const {
  if (last_trace_ == nullptr) {
    return "{\"traceEvents\":[]}\n";
  }
  return last_trace_->ToChromeJson();
}

Status Engine::DumpTraceToFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open trace file '" + path + "'");
  }
  std::string json = DumpTrace();
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::Internal("short write to trace file '" + path + "'");
  }
  return Status::OK();
}

}  // namespace cgq
