#include "core/engine.h"

#include <cstdio>
#include <utility>

namespace cgq {

Result<QueryResult> Engine::Run(const std::string& sql,
                                OptimizerOptions options,
                                ExecutorOptions exec_options) const {
  if (!tracing_) {
    CGQ_ASSIGN_OR_RETURN(OptimizedQuery q, Optimize(sql, options));
    Executor executor(&store_, net_.get(), exec_options);
    Result<QueryResult> result = executor.Execute(q);
    CGQ_COUNTER_ADD("engine.queries", 1);
    return result;
  }

  auto session = std::make_unique<TraceSession>(sql, trace_clock_);
  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    ScopedTraceContext ctx(session.get());
    TraceSpan root("query");
    Result<OptimizedQuery> q = Optimize(sql, options);
    if (!q.ok()) {
      root.AddArg("status", q.status().ToString());
      return q.status();
    }
    Executor executor(&store_, net_.get(), exec_options);
    Result<QueryResult> r = executor.Execute(*q);
    if (r.ok()) root.AddArg("rows", static_cast<int64_t>(r->rows.size()));
    return r;
  }();
  CGQ_COUNTER_ADD("engine.queries", 1);
  if (!result.ok()) CGQ_COUNTER_ADD("engine.rejected", 1);
  last_trace_ = std::move(session);
  return result;
}

std::string Engine::DumpTrace() const {
  if (last_trace_ == nullptr) {
    return "{\"traceEvents\":[]}\n";
  }
  return last_trace_->ToChromeJson();
}

Status Engine::DumpTraceToFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open trace file '" + path + "'");
  }
  std::string json = DumpTrace();
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::Internal("short write to trace file '" + path + "'");
  }
  return Status::OK();
}

}  // namespace cgq
