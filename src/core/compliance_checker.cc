#include "core/compliance_checker.h"

#include "plan/summary.h"

namespace cgq {

namespace {

struct SubtreeInfo {
  LocationSet ship_trait;
  QuerySummary summary;
};

SubtreeInfo Walk(const PlanNode& node, const PolicyEvaluator& evaluator,
                 const LocationCatalog& locations,
                 ComplianceReport* report) {
  std::vector<SubtreeInfo> child_info;
  std::vector<const QuerySummary*> child_summaries;
  for (const PlanNodePtr& c : node.children()) {
    child_info.push_back(Walk(*c, evaluator, locations, report));
  }
  for (const SubtreeInfo& ci : child_info) {
    child_summaries.push_back(&ci.summary);
  }

  SubtreeInfo info;
  info.summary = SummarizeOp(node, child_summaries);

  if (node.kind() == PlanKind::kShip) {
    // A SHIP is legal iff its target is in the child's shipping trait; it
    // confers no new rights (relaying does not launder data).
    info.ship_trait = child_info[0].ship_trait;
    if (!info.ship_trait.Contains(node.ship_to)) {
      report->compliant = false;
      report->violations.push_back(
          "SHIP to " + locations.GetName(node.ship_to) +
          " violates the dataflow policies of its input (legal targets: " +
          locations.SetToString(info.ship_trait) + ")");
    }
    return info;
  }

  // Execution trait of the concrete node (AR1 / AR2).
  LocationSet exec;
  if (node.kind() == PlanKind::kScan) {
    exec = LocationSet::Single(node.scan_location);
  } else {
    exec = locations.All();
    for (const SubtreeInfo& ci : child_info) {
      exec = exec.Intersect(ci.ship_trait);
    }
  }
  if (!exec.Contains(node.location)) {
    report->compliant = false;
    report->violations.push_back(
        node.Describe() + " executed at " + locations.GetName(node.location) +
        " but may only run at " + locations.SetToString(exec));
  }

  // Shipping trait: AR3 + AR4.
  info.ship_trait = exec;
  if (info.summary.IsSingleDatabaseBlock()) {
    LocationId db = info.summary.source_locations.ToVector().front();
    info.ship_trait =
        info.ship_trait.Union(evaluator.Evaluate(info.summary, db));
  }
  return info;
}

}  // namespace

ComplianceReport CheckCompliance(const PlanNode& located_root,
                                 const PolicyEvaluator& evaluator,
                                 const LocationCatalog& locations) {
  ComplianceReport report;
  Walk(located_root, evaluator, locations, &report);
  return report;
}

}  // namespace cgq
