#include "core/site_selector.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/trace.h"

namespace cgq {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct NodeTable {
  // cost[l] = minimum shipping cost of executing this subtree with the
  // node at location l; kInf when l ∉ ℰ.
  std::vector<double> cost;
  // choice[l][i] = location selected for child i when this node runs at l.
  std::vector<std::vector<LocationId>> choice;
};

class Placer {
 public:
  Placer(const NetworkModel* net, size_t num_locations,
         SiteSelector::Objective objective)
      : net_(net), n_(num_locations), objective_(objective) {}

  const NodeTable& CostOf(const PlanNode* node) {
    auto it = tables_.find(node);
    if (it != tables_.end()) {
      ++memo_hits_;
      return it->second;
    }
    ++memo_misses_;

    NodeTable table;
    table.cost.assign(n_, kInf);
    table.choice.assign(n_, {});

    if (node->kind() == PlanKind::kScan) {
      table.cost[node->scan_location] = 0;  // Algorithm 2 base case
      tables_.emplace(node, std::move(table));
      return tables_.at(node);
    }

    std::vector<const NodeTable*> children;
    children.reserve(node->children().size());
    for (const PlanNodePtr& c : node->children()) {
      children.push_back(&CostOf(c.get()));
    }

    for (LocationId l = 0; l < n_; ++l) {
      if (!node->exec_trait.Contains(l)) continue;
      double total = 0;
      std::vector<LocationId> picks;
      bool ok = true;
      for (size_t i = 0; i < node->children().size(); ++i) {
        const PlanNode& child = *node->children()[i];
        const NodeTable& ct = *children[i];
        double best = kInf;
        LocationId best_l = 0;
        for (LocationId lc = 0; lc < n_; ++lc) {
          if (ct.cost[lc] == kInf) continue;
          double c = ct.cost[lc] + net_->Cost(lc, l, child.EstBytes());
          if (c < best) {
            best = c;
            best_l = lc;
          }
        }
        if (best == kInf) {
          ok = false;
          break;
        }
        if (objective_ == SiteSelector::Objective::kResponseTime) {
          total = std::max(total, best);  // inputs arrive in parallel
        } else {
          total += best;
        }
        picks.push_back(best_l);
      }
      if (!ok) continue;
      table.cost[l] = total;
      table.choice[l] = std::move(picks);
    }
    tables_.emplace(node, std::move(table));
    return tables_.at(node);
  }

  // Walks down assigning locations and wrapping cross-site edges in SHIPs.
  void Assign(const PlanNodePtr& node, LocationId l) {
    node->location = l;
    if (node->kind() == PlanKind::kScan) return;
    const NodeTable& table = tables_.at(node.get());
    CGQ_CHECK(!table.choice[l].empty() || node->children().empty());
    for (size_t i = 0; i < node->children().size(); ++i) {
      LocationId lc = table.choice[l][i];
      Assign(node->children()[i], lc);
      if (lc != l) {
        const PlanNodePtr& child = node->children()[i];
        auto ship = std::make_shared<PlanNode>(PlanKind::kShip);
        ship->ship_from = lc;
        ship->ship_to = l;
        ship->location = l;
        ship->outputs = child->outputs;
        ship->est_rows = child->est_rows;
        ship->est_row_bytes = child->est_row_bytes;
        ship->exec_trait = LocationSet::Single(l);
        ship->ship_trait = child->ship_trait;
        ship->children().push_back(child);
        node->children()[i] = ship;
      }
    }
  }

  int64_t memo_hits() const { return memo_hits_; }
  int64_t memo_misses() const { return memo_misses_; }

 private:
  const NetworkModel* net_;
  size_t n_;
  SiteSelector::Objective objective_;
  std::unordered_map<const PlanNode*, NodeTable> tables_;
  int64_t memo_hits_ = 0;
  int64_t memo_misses_ = 0;
};

}  // namespace

Result<SitedPlan> SiteSelector::Place(PlanNodePtr annotated,
                                      LocationSet required_result) const {
  TraceSpan span("site_select");
  Placer placer(net_, net_->num_locations(), objective_);
  const NodeTable& root = placer.CostOf(annotated.get());

  // Choose the root site l and the delivery site r. When r ∉ ℰ(root) but
  // r ∈ 𝒮(root), a final SHIP moves the finished result there.
  double best = kInf;
  LocationId best_l = 0, best_r = 0;
  for (LocationId l = 0; l < net_->num_locations(); ++l) {
    if (root.cost[l] == kInf) continue;
    if (required_result.empty()) {
      if (root.cost[l] < best) {
        best = root.cost[l];
        best_l = best_r = l;
      }
      continue;
    }
    for (LocationId r : required_result.ToVector()) {
      if (r != l && !annotated->ship_trait.Contains(r)) continue;
      double c = root.cost[l] +
                 net_->Cost(l, r, annotated->EstBytes());
      if (c < best) {
        best = c;
        best_l = l;
        best_r = r;
      }
    }
  }
  span.AddArg("memo_hits", placer.memo_hits());
  span.AddArg("memo_misses", placer.memo_misses());
  CGQ_COUNTER_ADD("site_selector.memo_hits", placer.memo_hits());
  CGQ_COUNTER_ADD("site_selector.memo_misses", placer.memo_misses());
  if (best == kInf) {
    return Status::NonCompliant(
        "site selection found no feasible placement for the annotated plan");
  }
  placer.Assign(annotated, best_l);
  span.AddArg("result_site", static_cast<int64_t>(best_r));
  span.AddArg("comm_cost_ms", best);

  SitedPlan out;
  if (best_r != best_l) {
    auto ship = std::make_shared<PlanNode>(PlanKind::kShip);
    ship->ship_from = best_l;
    ship->ship_to = best_r;
    ship->location = best_r;
    ship->outputs = annotated->outputs;
    ship->est_rows = annotated->est_rows;
    ship->est_row_bytes = annotated->est_row_bytes;
    ship->exec_trait = LocationSet::Single(best_r);
    ship->ship_trait = annotated->ship_trait;
    ship->children().push_back(annotated);
    out.root = std::move(ship);
  } else {
    out.root = std::move(annotated);
  }
  out.comm_cost_ms = best;
  out.result_location = best_r;
  return out;
}

}  // namespace cgq
