#ifndef CGQ_CORE_PLAN_ANNOTATOR_H_
#define CGQ_CORE_PLAN_ANNOTATOR_H_

#include "common/result.h"
#include "core/policy_evaluator.h"
#include "optimizer/memo.h"

namespace cgq {

/// Phase 1 of the two-phase optimization (§6.2): searches the explored memo
/// for the cheapest *annotated* plan.
///
/// Execution and shipping traits are derived bottom-up per the annotation
/// rules of §6.1:
///   AR1  leaf (tablescan): ℰ = { table's location }
///   AR2  ℰ(n) ⊇ ∩ over inputs of 𝒮(input)
///   AR3  𝒮(n) ⊇ ℰ(n)
///   AR4  𝒮(n) ⊇ 𝒜(Q_n, D, P_D) for single-database subqueries
///
/// Instead of committing to one best plan per memo group, the annotator
/// keeps a Pareto frontier of winners keyed by (𝒮, ℰ): a costlier subplan
/// with a larger trait may enable the only compliant parent. The
/// compliance-based cost function (∞ when ℰ = ∅) appears here as skipping
/// un-annotatable combinations. The compliance-based optimization goal —
/// a non-empty shipping trait at the root — turns into "the root group has
/// at least one winner"; otherwise the query is rejected (kNonCompliant).
///
/// `Mode::kCostOnly` turns the annotator into the traditional cost-based
/// baseline: traits are ignored (every operator may run anywhere) and only
/// the cheapest plan per group survives.
class PlanAnnotator {
 public:
  enum class Mode { kCompliant, kCostOnly };

  /// How often each annotation rule fired during the winner search, for
  /// trace attribution (spans "rule.AR1".."rule.AR4" under "annotate").
  struct RuleCounts {
    int64_t ar1_leaves = 0;         ///< AR1: leaf exec traits pinned
    int64_t ar2_intersections = 0;  ///< AR2: child-combination intersections
    int64_t ar3_unions = 0;         ///< AR3: ship traits seeded from exec
    int64_t ar4_evaluations = 0;    ///< AR4: 𝒜 evaluator calls (cache misses)
    int64_t ar4_cache_hits = 0;     ///< AR4: answered from Group::ar4_cache
    /// AR4 prewarm items answered "empty" directly because no policy
    /// governs any of the group's tables at the candidate database.
    int64_t ar4_prewarm_skips = 0;
  };

  PlanAnnotator(Memo* memo, const PolicyEvaluator* evaluator, Mode mode)
      : memo_(memo), evaluator_(evaluator), mode_(mode) {}

  /// Implementation-rule preference: use sort-merge instead of hash for
  /// equi-joins (ablation / testing of physical alternatives).
  void set_prefer_sort_merge(bool value) { prefer_sort_merge_ = value; }

  /// Fans independent AR4 evaluations — one per (single-database group,
  /// candidate database) pair — across up to `width` threads of `pool`
  /// before the sequential winner search runs (see PrewarmAr4). width <= 1
  /// disables the fan-out. Winners are unaffected: the prewarm only fills
  /// the per-group AR4 caches the search would fill lazily.
  void set_parallelism(ThreadPool* pool, int width) {
    pool_ = pool;
    width_ = width;
  }

  /// Computes (and caches) the winner frontier of a group.
  const std::vector<Winner>& Winners(int group);

  /// Extracts the cheapest annotated plan of `root_group` as a physical
  /// tree (traits, cardinalities and costs filled in). When
  /// `required_result` is non-empty, only winners whose shipping trait can
  /// reach one of those sites qualify. Returns kNonCompliant when no
  /// compliant plan exists in the search space.
  Result<PlanNodePtr> BestPlan(int root_group,
                               LocationSet required_result = LocationSet());

  /// Maximum winners kept per group (Pareto frontier cap).
  static constexpr size_t kMaxWinnersPerGroup = 24;

  /// Rule-application counts accumulated by BestPlan()/Winners().
  const RuleCounts& rule_counts() const { return rules_; }

 private:
  double OpCost(const MExpr& expr) const;
  LocationSet Ar4Trait(int group, LocationSet sources);
  void AddWinner(std::vector<Winner>* winners, Winner candidate) const;
  PlanNodePtr Extract(int group, const Winner& winner);

  /// Evaluates 𝒜 for every (group, db) pair the winner search can request
  /// — all single-block groups × the databases they can be entirely sourced
  /// from — in parallel, filling Group::ar4_cache up front so Ar4Trait
  /// becomes a pure lookup.
  void PrewarmAr4(int root_group);

  Memo* memo_;
  const PolicyEvaluator* evaluator_;
  Mode mode_;
  bool prefer_sort_merge_ = false;
  ThreadPool* pool_ = nullptr;
  int width_ = 1;
  RuleCounts rules_;
};

}  // namespace cgq

#endif  // CGQ_CORE_PLAN_ANNOTATOR_H_
