#ifndef CGQ_CORE_SITE_SELECTOR_H_
#define CGQ_CORE_SITE_SELECTOR_H_

#include "common/result.h"
#include "net/network_model.h"
#include "plan/plan_node.h"

namespace cgq {

/// Result of phase 2: the located plan with SHIP operators inserted and the
/// total estimated communication cost (message cost model, §7.4).
struct SitedPlan {
  PlanNodePtr root;
  double comm_cost_ms = 0;
  LocationId result_location = 0;
};

/// Phase 2 of the two-phase optimization (§6.3, Algorithm 2): assigns each
/// operator of an annotated plan an execution site from its execution trait
/// ℰ, minimizing total shipping cost via memoized dynamic programming, then
/// materializes SHIP operators on every cross-site edge.
///
/// Scans are pinned to their fragment's location. A node placed at `l`
/// receives each input from the input's cheapest (site, ship) combination:
///   CostOf(n, l) = Σ_inputs min_{l' ∈ ℰ_input} ShipCost(input, l', l)
///                                              + CostOf(input, l')
/// The root site minimizes CostOf over ℰ_root (optionally restricted via
/// `required_result`, e.g. to the query-issuing site).
class SiteSelector {
 public:
  /// Phase-2 objective (§3.3 Discussion: "our methods ... can also be
  /// adapted to other cost models (e.g., that determine query response
  /// time)").
  enum class Objective {
    /// Total communication cost: inputs transfer sequentially; a node's
    /// cost is the SUM of its input-side costs. (Paper default.)
    kTotalCost,
    /// Response time: inputs transfer/execute in parallel; a node's cost
    /// is the MAX of its input-side costs.
    kResponseTime,
  };

  explicit SiteSelector(const NetworkModel* net,
                        Objective objective = Objective::kTotalCost)
      : net_(net), objective_(objective) {}

  /// Places `annotated` (consumed; mutated in place by inserting SHIPs).
  /// Fails with kNonCompliant when a node has an empty candidate set
  /// (cannot happen for plans produced by the PlanAnnotator).
  Result<SitedPlan> Place(PlanNodePtr annotated,
                          LocationSet required_result = LocationSet()) const;

 private:
  const NetworkModel* net_;
  Objective objective_;
};

}  // namespace cgq

#endif  // CGQ_CORE_SITE_SELECTOR_H_
