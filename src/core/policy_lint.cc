#include "core/policy_lint.h"

#include <algorithm>
#include <set>

#include "common/str_util.h"
#include "expr/implication.h"

namespace cgq {

namespace {

using Severity = PolicyLintFinding::Severity;

// e1 subsumes e2 when every shipment e2 permits, e1 permits too.
bool Subsumes(const PolicyExpression& e1, const PolicyExpression& e2) {
  if (e1.is_aggregate() || e2.is_aggregate()) return false;  // basic only
  if (e1.table != e2.table) return false;
  for (const std::string& a : e2.attributes) {
    if (!e1.HasShipAttribute(a)) return false;
  }
  if (!e2.to.IsSubsetOf(e1.to)) return false;
  // e2's rows must all satisfy e1's condition: P_e2 ⟹ P_e1.
  return PredicateImplies(e2.predicate, e1.predicate);
}

}  // namespace

std::vector<PolicyLintFinding> LintPolicies(const Catalog& catalog,
                                            const PolicyCatalog& policies) {
  std::vector<PolicyLintFinding> findings;
  const LocationCatalog& locs = catalog.locations();

  for (LocationId l = 0; l < locs.num_locations(); ++l) {
    const std::string& loc_name = locs.GetName(l);
    const std::vector<PolicyExpression>& exprs = policies.For(l);

    // Misplaced expressions & no-op targets.
    for (const PolicyExpression& e : exprs) {
      auto table = catalog.GetTable(e.table);
      if (!table.ok()) continue;  // validated at install; defensive
      if (!(*table)->LocationsOf().Contains(l)) {
        findings.push_back(
            {Severity::kWarning, loc_name,
             "expression \"" + e.ToString(locs) + "\" governs table '" +
                 e.table + "', which stores no fragment here; it will "
                 "never be consulted"});
      }
      if (e.to == LocationSet::Single(l)) {
        findings.push_back(
            {Severity::kInfo, loc_name,
             "expression \"" + e.ToString(locs) +
                 "\" only permits shipping to this location itself (a "
                 "no-op: data may always stay home)"});
      }
    }

    // Redundant (subsumed) basic expressions.
    for (size_t i = 0; i < exprs.size(); ++i) {
      for (size_t j = 0; j < exprs.size(); ++j) {
        if (i == j) continue;
        if (Subsumes(exprs[i], exprs[j]) && !Subsumes(exprs[j], exprs[i])) {
          findings.push_back(
              {Severity::kInfo, loc_name,
               "expression \"" + exprs[j].ToString(locs) +
                   "\" is subsumed by \"" + exprs[i].ToString(locs) +
                   "\" and can be removed"});
        }
      }
    }

    // Attributes with no egress at all.
    for (const std::string& table_name : catalog.TableNames()) {
      auto table = catalog.GetTable(table_name);
      if (!table.ok() || !(*table)->LocationsOf().Contains(l)) continue;
      std::vector<std::string> stuck;
      for (const ColumnDef& col : (*table)->schema.columns()) {
        std::string column = ToLower(col.name);
        bool covered = false;
        for (const PolicyExpression& e : exprs) {
          if (e.table != table_name) continue;
          covered |= e.HasShipAttribute(column);
          covered |= e.is_aggregate() && e.HasGroupAttribute(column);
        }
        if (!covered) stuck.push_back(column);
      }
      if (!stuck.empty() &&
          stuck.size() < (*table)->schema.num_columns()) {
        findings.push_back(
            {Severity::kInfo, loc_name,
             "table '" + table_name + "': attribute(s) " +
                 Join(stuck, ", ") +
                 " have no egress expression and can never leave"});
      } else if (stuck.size() == (*table)->schema.num_columns()) {
        findings.push_back({Severity::kInfo, loc_name,
                            "table '" + table_name +
                                "' has no egress expressions at all; its "
                                "data is pinned here"});
      }
    }
  }
  return findings;
}

}  // namespace cgq
