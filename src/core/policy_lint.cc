#include "core/policy_lint.h"

#include <algorithm>
#include <set>

#include "common/str_util.h"

namespace cgq {

namespace {

using Severity = PolicyLintFinding::Severity;

// e1 subsumes e2 when every shipment e2 permits, e1 permits too. Lint uses
// the semantic (implication-based) strength: advisory findings may rely on
// the full test, unlike the catalog's decision-safe online merge.
bool Subsumes(const PolicyExpression& e1, const PolicyExpression& e2) {
  return PolicySubsumes(e1, e2, SubsumptionMode::kSemantic);
}

}  // namespace

std::vector<PolicyLintFinding> LintPolicies(const Catalog& catalog,
                                            const PolicyCatalog& policies) {
  std::vector<PolicyLintFinding> findings;
  const LocationCatalog& locs = catalog.locations();

  for (LocationId l = 0; l < locs.num_locations(); ++l) {
    const std::string& loc_name = locs.GetName(l);
    const std::vector<PolicyExpression>& exprs = policies.For(l);

    // Misplaced expressions & no-op targets.
    for (const PolicyExpression& e : exprs) {
      auto table = catalog.GetTable(e.table);
      if (!table.ok()) continue;  // validated at install; defensive
      if (!(*table)->LocationsOf().Contains(l)) {
        findings.push_back(
            {Severity::kWarning, loc_name,
             "expression \"" + e.ToString(locs) + "\" governs table '" +
                 e.table + "', which stores no fragment here; it will "
                 "never be consulted"});
      }
      if (e.to == LocationSet::Single(l)) {
        findings.push_back(
            {Severity::kInfo, loc_name,
             "expression \"" + e.ToString(locs) +
                 "\" only permits shipping to this location itself (a "
                 "no-op: data may always stay home)"});
      }
    }

    // Redundant (subsumed) basic expressions.
    for (size_t i = 0; i < exprs.size(); ++i) {
      for (size_t j = 0; j < exprs.size(); ++j) {
        if (i == j) continue;
        if (Subsumes(exprs[i], exprs[j]) && !Subsumes(exprs[j], exprs[i])) {
          findings.push_back(
              {Severity::kInfo, loc_name,
               "expression \"" + exprs[j].ToString(locs) +
                   "\" is subsumed by \"" + exprs[i].ToString(locs) +
                   "\" and can be removed"});
        }
      }
    }

    // Expressions absorbed by the catalog's online merge (hierarchical
    // index mode): shadowed by construction — the absorber grants a
    // superset for every query.
    for (const auto& ab : policies.Absorbed(l)) {
      findings.push_back(
          {Severity::kInfo, loc_name,
           "expression \"" + ab.expr.ToString(locs) + "\" (id " +
               std::to_string(ab.expr.id) + ") is merged into policy id " +
               std::to_string(ab.absorbed_by) +
               ", which grants a superset of its shipments"});
    }

    // Attributes with no egress at all.
    for (const std::string& table_name : catalog.TableNames()) {
      auto table = catalog.GetTable(table_name);
      if (!table.ok() || !(*table)->LocationsOf().Contains(l)) continue;
      std::vector<std::string> stuck;
      for (const ColumnDef& col : (*table)->schema.columns()) {
        std::string column = ToLower(col.name);
        bool covered = false;
        for (const PolicyExpression& e : exprs) {
          if (e.table != table_name) continue;
          covered |= e.HasShipAttribute(column);
          covered |= e.is_aggregate() && e.HasGroupAttribute(column);
        }
        if (!covered) stuck.push_back(column);
      }
      if (!stuck.empty() &&
          stuck.size() < (*table)->schema.num_columns()) {
        findings.push_back(
            {Severity::kInfo, loc_name,
             "table '" + table_name + "': attribute(s) " +
                 Join(stuck, ", ") +
                 " have no egress expression and can never leave"});
      } else if (stuck.size() == (*table)->schema.num_columns()) {
        findings.push_back({Severity::kInfo, loc_name,
                            "table '" + table_name +
                                "' has no egress expressions at all; its "
                                "data is pinned here"});
      }
    }
  }
  return findings;
}

}  // namespace cgq
