#include "core/policy_evaluator.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <optional>

#include "expr/implication.h"

namespace cgq {

namespace {

// One element of the flattened A_q: a base attribute together with the
// aggregate function applied to the output it appears in (if any).
struct AttrFnPair {
  BaseAttr base;
  std::optional<AggFn> fn;

  bool operator<(const AttrFnPair& other) const {
    if (!(base == other.base)) return base < other.base;
    if (fn.has_value() != other.fn.has_value()) return !fn.has_value();
    if (!fn) return false;
    return static_cast<int>(*fn) < static_cast<int>(*other.fn);
  }
};

// Single-instance premise: conjuncts whose column refs all belong to
// `alias`.
std::vector<ExprPtr> PremiseForAlias(const QuerySummary& summary,
                                     const std::string& alias) {
  std::vector<ExprPtr> premise;
  for (const ExprPtr& c : summary.predicate) {
    std::vector<const Expr*> refs;
    c->CollectColumnRefs(&refs);
    bool all_match = !refs.empty();
    for (const Expr* r : refs) {
      all_match &= (r->qualifier() == alias);
    }
    if (all_match || refs.empty()) premise.push_back(c);
  }
  return premise;
}

}  // namespace

namespace {

/// RAII accumulator for PolicyEvalStats::eval_ms.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* sink)
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    *sink_ += std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
  }

 private:
  double* sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

LocationSet PolicyEvaluator::Evaluate(const QuerySummary& summary,
                                      LocationId db,
                                      std::vector<AttrGrant>* grants) const {
  ScopedTimer timer(&stats_.eval_ms);
  ++stats_.evaluations;
  std::map<AttrFnPair, std::vector<const PolicyExpression*>> granted_by;

  // Flatten A_q into (base attribute, aggregate fn) pairs. Besides the
  // output attributes, attributes accessed by predicates and grouping are
  // disclosed as well (cf. §4 Example 1/2: the output of
  // Γsum(acctbal)(σ name='abc'(C)) "cannot be shipped at all" because the
  // selection accesses `name`). They join A_q as un-aggregated pairs.
  std::map<AttrFnPair, LocationSet> legal;
  for (const auto& [id, out] : summary.outputs) {
    for (const BaseAttr& b : out.bases) {
      legal.emplace(AttrFnPair{b, out.fn}, LocationSet());
    }
  }
  for (const ExprPtr& c : summary.predicate) {
    std::vector<BaseAttr> bases;
    c->CollectBaseAttrs(&bases);
    for (const BaseAttr& b : bases) {
      legal.emplace(AttrFnPair{b, std::nullopt}, LocationSet());
    }
  }
  for (const BaseAttr& g : summary.group_attrs) {
    legal.emplace(AttrFnPair{g, std::nullopt}, LocationSet());
  }
  if (legal.empty()) return LocationSet();

  for (const PolicyExpression& e : policies_->For(db)) {
    // A_q ∩ (A_e ∪ G_e): which output pairs does this expression speak to?
    std::vector<const AttrFnPair*> relevant;
    for (const auto& [pair, locs] : legal) {
      if (pair.base.table != e.table) continue;
      if (e.HasShipAttribute(pair.base.column) ||
          (summary.is_aggregate && e.is_aggregate() &&
           e.HasGroupAttribute(pair.base.column))) {
        relevant.push_back(&pair);
      }
    }
    if (relevant.empty()) continue;
    ++stats_.expressions_matched;

    // P_q ⟹ P_e, for every instance of e's table in the query.
    bool implied = true;
    bool any_instance = false;
    for (const auto& [alias, table] : summary.alias_tables) {
      if (table != e.table) continue;
      any_instance = true;
      ++stats_.implication_tests;
      if (!PredicateImplies(PremiseForAlias(summary, alias), e.predicate)) {
        implied = false;
        break;
      }
    }
    if (!any_instance || !implied) continue;
    ++stats_.eta;  // Algorithm 1 reaches line 4.

    if (!e.is_aggregate()) {
      // Cases 1 & 2: a basic expression permits the cells at any
      // aggregation level, for its ship attributes.
      for (const AttrFnPair* pair : relevant) {
        if (e.HasShipAttribute(pair->base.column)) {
          legal[*pair] = legal[*pair].Union(e.to);
          granted_by[*pair].push_back(&e);
        }
      }
      continue;
    }

    // Case 3: aggregate expression — only covers aggregate queries.
    if (!summary.is_aggregate) continue;

    // G_q (restricted to e's table) ⊆ G_e; the empty subset qualifies.
    bool groups_ok = true;
    for (const BaseAttr& g : summary.group_attrs) {
      if (g.table != e.table) continue;
      groups_ok &= e.HasGroupAttribute(g.column);
    }
    if (!groups_ok) continue;

    for (const AttrFnPair* pair : relevant) {
      bool allowed = false;
      if (!pair->fn.has_value()) {
        // Grouping attribute: implicitly shippable when listed in G_e.
        allowed = e.HasGroupAttribute(pair->base.column);
      } else {
        allowed = e.HasShipAttribute(pair->base.column) &&
                  e.AllowsAggFn(*pair->fn);
      }
      if (allowed) {
        legal[*pair] = legal[*pair].Union(e.to);
        granted_by[*pair].push_back(&e);
      }
    }
  }

  if (grants != nullptr) {
    grants->clear();
    for (const auto& [pair, locs] : legal) {
      AttrGrant grant;
      grant.base = pair.base;
      grant.fn = pair.fn;
      grant.granted = locs;
      auto it = granted_by.find(pair);
      if (it != granted_by.end()) grant.granted_by = it->second;
      grants->push_back(std::move(grant));
    }
  }

  LocationSet result = catalog_->locations().All();
  for (const auto& [pair, locs] : legal) {
    result = result.Intersect(locs);
    if (result.empty()) return result;
  }
  return result;
}

}  // namespace cgq
