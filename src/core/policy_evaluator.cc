#include "core/policy_evaluator.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <optional>
#include <utility>

#include "common/trace.h"
#include "expr/implication.h"

namespace cgq {

namespace {

// One element of the flattened A_q: a base attribute together with the
// aggregate function applied to the output it appears in (if any).
struct AttrFnPair {
  BaseAttr base;
  std::optional<AggFn> fn;

  bool operator<(const AttrFnPair& other) const {
    if (!(base == other.base)) return base < other.base;
    if (fn.has_value() != other.fn.has_value()) return !fn.has_value();
    if (!fn) return false;
    return static_cast<int>(*fn) < static_cast<int>(*other.fn);
  }
};

// Single-instance premise: conjuncts whose column refs all belong to
// `alias`.
std::vector<ExprPtr> PremiseForAlias(const QuerySummary& summary,
                                     const std::string& alias) {
  std::vector<ExprPtr> premise;
  for (const ExprPtr& c : summary.predicate) {
    std::vector<const Expr*> refs;
    c->CollectColumnRefs(&refs);
    bool all_match = !refs.empty();
    for (const Expr* r : refs) {
      all_match &= (r->qualifier() == alias);
    }
    if (all_match || refs.empty()) premise.push_back(c);
  }
  return premise;
}

// One relation instance's premise, hashed once per Evaluate() call and
// tested against every policy of its table.
struct AliasPremise {
  const std::string* table;
  std::vector<ExprPtr> premise;
  ExprFingerprint fp;
};

// What one policy expression contributes; computed independently per policy
// (possibly on a pool thread), applied sequentially in policy order.
// Grants carry the disclosed pair's position so the merge is an indexed
// store, not a map lookup.
struct PolicyOutcome {
  bool matched = false;  ///< relevance: A_q ∩ (A_e ∪ G_e) ≠ ∅
  bool eta = false;      ///< implication held for every instance
  int32_t implication_tests = 0;
  int32_t cache_hits = 0;
  std::vector<size_t> grants;
};

}  // namespace

LocationSet PolicyEvaluator::Evaluate(const QuerySummary& summary,
                                      LocationId db,
                                      std::vector<AttrGrant>* grants) const {
  auto start = std::chrono::steady_clock::now();
  TraceSpan span("policy_eval");
  span.AddArg("db", static_cast<int64_t>(db));
  PolicyEvalStats local;
  local.evaluations = 1;
  auto merge_stats = [&] {
    local.eval_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.evaluations += local.evaluations;
    stats_.expressions_matched += local.expressions_matched;
    stats_.implication_tests += local.implication_tests;
    stats_.implication_cache_hits += local.implication_cache_hits;
    stats_.implication_cache_misses += local.implication_cache_misses;
    stats_.eta += local.eta;
    stats_.eval_ms += local.eval_ms;
  };

  // Flatten A_q into (base attribute, aggregate fn) pairs. Besides the
  // output attributes, attributes accessed by predicates and grouping are
  // disclosed as well (cf. §4 Example 1/2: the output of
  // Γsum(acctbal)(σ name='abc'(C)) "cannot be shipped at all" because the
  // selection accesses `name`). They join A_q as un-aggregated pairs.
  std::map<AttrFnPair, LocationSet> legal;
  for (const auto& [id, out] : summary.outputs) {
    for (const BaseAttr& b : out.bases) {
      legal.emplace(AttrFnPair{b, out.fn}, LocationSet());
    }
  }
  for (const ExprPtr& c : summary.predicate) {
    std::vector<BaseAttr> bases;
    c->CollectBaseAttrs(&bases);
    for (const BaseAttr& b : bases) {
      legal.emplace(AttrFnPair{b, std::nullopt}, LocationSet());
    }
  }
  for (const BaseAttr& g : summary.group_attrs) {
    legal.emplace(AttrFnPair{g, std::nullopt}, LocationSet());
  }
  if (legal.empty()) {
    merge_stats();
    span.AddArg("policies", static_cast<int64_t>(0));
    return LocationSet();
  }

  const std::vector<PolicyExpression>& exprs = policies_->For(db);

  // Premise (and fingerprint) per relation instance, shared by all policies.
  std::vector<AliasPremise> instances;
  instances.reserve(summary.alias_tables.size());
  for (const auto& [alias, table] : summary.alias_tables) {
    AliasPremise ap;
    ap.table = &table;
    ap.premise = PremiseForAlias(summary, alias);
    if (cache_ != nullptr) ap.fp = FingerprintConjuncts(ap.premise);
    instances.push_back(std::move(ap));
  }

  // Flatten the deduplicated pairs into index-addressable parallel arrays:
  // the merge below stores into `pair_locs[idx]` instead of re-searching
  // the map per grant.
  std::vector<const AttrFnPair*> pairs;
  pairs.reserve(legal.size());
  for (const auto& [pair, locs] : legal) pairs.push_back(&pair);
  std::vector<LocationSet> pair_locs(pairs.size());

  // Candidate policies: only expressions over tables the query discloses
  // (legal is sorted by table, so its pairs group into contiguous runs).
  // Candidates are grouped by table run, not globally sorted — every
  // per-policy contribution is merged with commutative operations
  // (LocationSet::Union, counter sums), so the visit order is free; the
  // provenance lists are re-sorted into catalog order at the end.
  // Each pair carries its schema-column bit so relevance against a policy's
  // precomputed ship/group masks is a single AND (bit 0 = not maskable,
  // fall back to string comparison).
  struct PairBit {
    size_t idx;    ///< position in `pairs`
    uint64_t bit;  ///< 1 << schema column index, or 0
  };
  std::vector<std::vector<PairBit>> table_pairs;
  std::vector<size_t> candidates;
  std::vector<size_t> candidate_table;  ///< candidate -> table_pairs index
  {
    const std::string* current = nullptr;
    const Schema* schema = nullptr;
    for (size_t idx = 0; idx < pairs.size(); ++idx) {
      const AttrFnPair& pair = *pairs[idx];
      if (current == nullptr || pair.base.table != *current) {
        current = &pair.base.table;
        const std::vector<size_t>& in_table =
            policies_->ForTable(db, pair.base.table);
        candidates.insert(candidates.end(), in_table.begin(),
                          in_table.end());
        candidate_table.resize(candidates.size(), table_pairs.size());
        table_pairs.emplace_back();
        auto def = catalog_->GetTable(pair.base.table);
        schema = def.ok() ? &(*def)->schema : nullptr;
      }
      uint64_t bit = 0;
      if (schema != nullptr) {
        if (std::optional<size_t> i = schema->IndexOf(pair.base.column);
            i && *i < 64) {
          bit = uint64_t{1} << *i;
        }
      }
      table_pairs.back().push_back(PairBit{idx, bit});
    }
  }

  // Per-policy evaluation: reads `legal` keys and the summary, writes only
  // its own outcome slot — safe to fan out.
  std::vector<PolicyOutcome> outcomes(candidates.size());
  auto eval_policy = [&](size_t ci) {
    const PolicyExpression& e = exprs[candidates[ci]];
    PolicyOutcome& o = outcomes[ci];

    // A_q ∩ (A_e ∪ G_e): does this expression speak to any output pair?
    // Mask tests are cheap enough that the grant passes below re-derive
    // per-pair relevance instead of materializing a `relevant` list.
    const bool group_counts =
        summary.is_aggregate && e.is_aggregate();
    const std::vector<PairBit>& epairs = table_pairs[candidate_table[ci]];
    auto ships = [&](const PairBit& pb) {
      return (e.masks_valid && pb.bit != 0)
                 ? (e.ship_mask & pb.bit) != 0
                 : e.HasShipAttribute(pairs[pb.idx]->base.column);
    };
    auto groups = [&](const PairBit& pb) {
      return (e.masks_valid && pb.bit != 0)
                 ? (e.group_mask & pb.bit) != 0
                 : e.HasGroupAttribute(pairs[pb.idx]->base.column);
    };
    for (const PairBit& pb : epairs) {
      if (ships(pb) || (group_counts && groups(pb))) {
        o.matched = true;
        break;
      }
    }
    if (!o.matched) return;

    // P_q ⟹ P_e, for every instance of e's table in the query.
    bool implied = true;
    bool any_instance = false;
    for (size_t ii = 0; ii < instances.size(); ++ii) {
      const AliasPremise& ap = instances[ii];
      if (*ap.table != e.table) continue;
      any_instance = true;
      ++o.implication_tests;
      bool ok;
      if (cache_ != nullptr) {
        bool hit = false;
        ok = cache_->ImpliesPrehashed(ap.fp, ap.premise, e.predicate_fp,
                                      e.predicate, &hit);
        o.cache_hits += hit ? 1 : 0;
      } else {
        ok = PredicateImplies(ap.premise, e.predicate);
      }
      if (!ok) {
        implied = false;
        break;
      }
    }
    if (!any_instance || !implied) return;
    o.eta = true;  // Algorithm 1 reaches line 4.

    if (!e.is_aggregate()) {
      // Cases 1 & 2: a basic expression permits the cells at any
      // aggregation level, for its ship attributes.
      for (const PairBit& pb : epairs) {
        if (ships(pb)) o.grants.push_back(pb.idx);
      }
      return;
    }

    // Case 3: aggregate expression — only covers aggregate queries.
    if (!summary.is_aggregate) return;

    // G_q (restricted to e's table) ⊆ G_e; the empty subset qualifies.
    bool groups_ok = true;
    for (const BaseAttr& g : summary.group_attrs) {
      if (g.table != e.table) continue;
      groups_ok &= e.HasGroupAttribute(g.column);
    }
    if (!groups_ok) return;

    for (const PairBit& pb : epairs) {
      const AttrFnPair& pair = *pairs[pb.idx];
      bool allowed = false;
      if (!pair.fn.has_value()) {
        // Grouping attribute: implicitly shippable when listed in G_e.
        allowed = groups(pb);
      } else {
        allowed = ships(pb) && e.AllowsAggFn(*pair.fn);
      }
      if (allowed) o.grants.push_back(pb.idx);
    }
  };

  constexpr size_t kMinPoliciesForFanout = 8;
  if (pool_ != nullptr && width_ > 1 &&
      candidates.size() >= kMinPoliciesForFanout) {
    pool_->ParallelFor(candidates.size(), static_cast<size_t>(width_),
                       eval_policy);
  } else {
    for (size_t ci = 0; ci < candidates.size(); ++ci) eval_policy(ci);
  }

  // Merge: all per-policy contributions are commutative (set unions,
  // counter sums), so walking outcomes in their fixed candidate order is
  // identical to the sequential evaluation regardless of scheduling.
  // Provenance lists are only materialized when the caller asked for them.
  std::vector<std::vector<const PolicyExpression*>> granted_by;
  if (grants != nullptr) granted_by.resize(pairs.size());
  for (size_t ci = 0; ci < outcomes.size(); ++ci) {
    const PolicyOutcome& o = outcomes[ci];
    local.expressions_matched += o.matched ? 1 : 0;
    local.implication_tests += o.implication_tests;
    if (cache_ != nullptr) {
      local.implication_cache_hits += o.cache_hits;
      local.implication_cache_misses += o.implication_tests - o.cache_hits;
    }
    local.eta += o.eta ? 1 : 0;
    const PolicyExpression& e = exprs[candidates[ci]];
    for (size_t idx : o.grants) {
      pair_locs[idx] = pair_locs[idx].Union(e.to);
      if (grants != nullptr) granted_by[idx].push_back(&e);
    }
  }

  if (grants != nullptr) {
    grants->clear();
    for (size_t idx = 0; idx < pairs.size(); ++idx) {
      AttrGrant grant;
      grant.base = pairs[idx]->base;
      grant.fn = pairs[idx]->fn;
      grant.granted = pair_locs[idx];
      grant.granted_by = std::move(granted_by[idx]);
      // Candidates were grouped by table run; catalog order = address
      // order within the per-location expression vector.
      std::sort(grant.granted_by.begin(), grant.granted_by.end());
      grants->push_back(std::move(grant));
    }
  }

  LocationSet result = catalog_->locations().All();
  for (const LocationSet& locs : pair_locs) {
    result = result.Intersect(locs);
    if (result.empty()) break;
  }
  merge_stats();
  span.AddArg("policies", static_cast<int64_t>(candidates.size()));
  span.AddArg("matched", local.expressions_matched);
  span.AddArg("implication_tests", local.implication_tests);
  span.AddArg("cache_hits", local.implication_cache_hits);
  span.AddArg("eta", local.eta);
  return result;
}

}  // namespace cgq
